(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations called out in DESIGN.md, a bechamel
   micro-benchmark suite, and a perf-regression section (BENCH_sim.json).

   Profiles (CLANBFT_BENCH environment variable):
     quick — scaled-down sizes, ~2 minutes; CI smoke run.
     paper — the default: the paper's system sizes with trimmed load sweeps
             (the knee-revealing points); ~20-25 minutes on one core.
     full  — the complete 13-point sweeps of §7; hours.

   Parallelism: every (protocol × n × load) simulation point is an
   independent deterministic job; points fan out across a Domain pool
   (--jobs N / CLANBFT_JOBS, default Domain.recommended_domain_count).

   Output discipline: stdout carries only deterministic tables — every
   simulation point runs from a seed derived from its (protocol, n, load)
   key, so stdout is byte-identical at any --jobs width and diffable
   across runs. Wall-clock timings, progress lines and measured
   micro-benchmark numbers go to stderr (and, for the perf section, to
   BENCH_sim.json).

   Sections can be selected on the command line:
     dune exec bench/main.exe -- [--jobs N] [--paper-scale] table1 fig1 \
       concrete fig5a fig5b fig5c fig6 paper-scale ablation-latency \
       ablation-rbc faults recovery metrics micro analysis profile \
       attacks perf

   --paper-scale (or CLANBFT_PAPER_SCALE=1) unlocks the n=150 work: the
   paper-scale sweep section, the n=150 perf-baseline entry and the
   n=150 self-profiler run. *)

open Clanbft
open Clanbft.Sim
module Rng = Util.Rng
module Pool = Util.Pool

type profile = Quick | Paper | Full

let profile =
  match Sys.getenv_opt "CLANBFT_BENCH" with
  | Some "quick" -> Quick
  | Some "full" -> Full
  | Some "paper" | None -> Paper
  | Some other ->
      Printf.eprintf "unknown CLANBFT_BENCH=%s (quick|paper|full)\n%!" other;
      exit 2

let profile_name = match profile with Quick -> "quick" | Paper -> "paper" | Full -> "full"

(* Paper-scale knob: the n=150 sweep and the n=150 perf-baseline entry are
   minutes of single-core work, so they only run when explicitly requested
   (--paper-scale or CLANBFT_PAPER_SCALE=1). The default quick profile
   stays CI-fast. *)
let paper_scale_enabled = ref (Sys.getenv_opt "CLANBFT_PAPER_SCALE" <> None)

let section_header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Progress / timing output: stderr only, one atomic write per line so
   worker domains don't tear each other's lines. *)
let progress fmt =
  Printf.ksprintf
    (fun s ->
      prerr_string s;
      flush stderr)
    fmt

(* ------------------------------------------------------------------ *)
(* Worker pool: set from --jobs / CLANBFT_JOBS before sections run. *)

let requested_jobs = ref None

let pool =
  lazy
    (let jobs =
       match !requested_jobs with Some j -> j | None -> Pool.default_jobs ()
     in
     progress "using %d worker domain(s)\n" jobs;
     Pool.create ~jobs ())

(* ------------------------------------------------------------------ *)
(* Table 1: inter-region RTTs used by the simulator *)

let table1 () =
  section_header "Table 1. Ping latencies (ms) between GCP regions (simulator input)";
  let regions = Topology.gcp_regions in
  Printf.printf "%-24s" "Source \\ Destination";
  Array.iter (fun r -> Printf.printf "%10s" (String.sub r 0 (min 9 (String.length r)))) regions;
  print_newline ();
  Array.iteri
    (fun i row ->
      Printf.printf "%-24s" regions.(i);
      Array.iter (fun ms -> Printf.printf "%10.2f" ms) row;
      print_newline ())
    Topology.gcp_rtt_ms

(* ------------------------------------------------------------------ *)
(* Figure 1: clan size vs n at failure < 1e-9 *)

let fig1 () =
  section_header
    "Figure 1. Clan sizes ensuring an honest majority w.p. > 1 - 1e-9 (exact Eq. 1)";
  let threshold = Bigint.Rat.of_ints 1 1_000_000_000 in
  let max_n = match profile with Quick -> 400 | Paper | Full -> 1000 in
  Printf.printf "%8s %6s %10s %22s\n" "n" "f" "clan size" "failure probability";
  let rec go n =
    if n <= max_n then begin
      let f = Committee.default_f n in
      match Committee.min_clan_size ~n ~f ~threshold () with
      | Some nc ->
          let p = Committee.single_clan_failure ~n ~f ~nc in
          Printf.printf "%8d %6d %10d %22s\n%!" n f nc (Bigint.Rat.to_scientific p);
          go (n + 100)
      | None ->
          Printf.printf "%8d %6d %10s\n%!" n f "-";
          go (n + 100)
    end
  in
  go 100

(* ------------------------------------------------------------------ *)
(* §6.2 concrete numbers *)

let concrete () =
  section_header "Section 6.2: multi-clan dishonest-majority probabilities (exact)";
  let show ~n ~q ~paper =
    let f = Committee.default_f n in
    let nc = n / q in
    let p = Committee.multi_clan_failure ~n ~f ~q ~nc in
    Printf.printf
      "  n=%-4d f=%-4d q=%d (clans of %d): Pr[dishonest clan] = %s   (paper: %s)\n"
      n f q nc (Bigint.Rat.to_scientific p) paper
  in
  show ~n:150 ~q:2 ~paper:"4.015e-06";
  show ~n:387 ~q:3 ~paper:"1.11e-06";
  (* §7: clan sizes used in the experiments at failure ~1e-6. *)
  let th = Bigint.Rat.of_ints 1 1_000_000 in
  Printf.printf
    "\n  Experimental clan sizes at failure <= 1e-6 (paper used 32/60/80):\n";
  List.iter
    (fun n ->
      match Committee.min_clan_size ~n ~f:(Committee.default_f n) ~threshold:th () with
      | Some nc -> Printf.printf "  n=%-4d -> minimum nc=%d\n" n nc
      | None -> ())
    [ 50; 100; 150 ]

(* ------------------------------------------------------------------ *)
(* Figures 5a/5b/5c and 6: throughput vs latency, by protocol.

   Every (protocol, n, load) point is one independent simulation job.
   [prefetch] fans the uncached points of a figure out across the pool;
   the printing code then reads results from the cache in deterministic
   order. Each point derives its RNG seed from its own key, so a result
   does not depend on which domain (or in which order) computed it. *)

type point = {
  pn : int;
  pprotocol : Runner.protocol;
  pload : int;
  pduration : float;
  pwarmup : float;
  pscale : int;
}

let point_key p =
  Printf.sprintf "%s/%d/%d" (Runner.protocol_label p.pprotocol) p.pn p.pload

(* FNV-1a over the point key: a fixed, scheduling-independent seed per
   simulation point. *)
let point_seed key =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    key;
  !h

let spec_of_point p =
  {
    Runner.default_spec with
    n = p.pn;
    protocol = p.pprotocol;
    txns_per_proposal = p.pload;
    txn_scale = p.pscale;
    duration = Time.s p.pduration;
    warmup = Time.s p.pwarmup;
    seed = point_seed (point_key p);
  }

let result_cache : (string, Runner.result) Hashtbl.t = Hashtbl.create 64

let compute_point p =
  let r, secs = wall (fun () -> Runner.run (spec_of_point p)) in
  progress "    %-26s load=%-5d -> %8.1f kTPS  %7.1f ms  [%4.0fs wall]\n"
    (Runner.protocol_label p.pprotocol)
    p.pload r.throughput_ktps r.latency_mean_ms secs;
  r

let prefetch points =
  let seen = Hashtbl.create 16 in
  let todo =
    List.filter
      (fun p ->
        let k = point_key p in
        if Hashtbl.mem result_cache k || Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      points
  in
  if todo <> [] then begin
    let todo = Array.of_list todo in
    let results = Pool.map (Lazy.force pool) compute_point todo in
    Array.iteri
      (fun i r -> Hashtbl.replace result_cache (point_key todo.(i)) r)
      results
  end

let run_point p =
  match Hashtbl.find_opt result_cache (point_key p) with
  | Some r -> r
  | None ->
      let r = compute_point p in
      Hashtbl.replace result_cache (point_key p) r;
      r

let print_figure_rows title points =
  Printf.printf "\n  %s\n" title;
  Printf.printf "  %-26s %8s %12s %12s %10s %8s\n" "protocol" "load/prop"
    "tput (kTPS)" "latency (ms)" "MB/s/node" "agree";
  List.iter
    (fun (r : Runner.result) ->
      Printf.printf "  %-26s %8s %12.1f %12.1f %10.1f %8b\n"
        r.label "" r.throughput_ktps r.latency_mean_ms r.mb_per_node_per_s r.agreement)
    points

let fig5_sizes () =
  (* (figure, n, clan size, multi-clan q option, loads, duration, warmup, scale) *)
  let paper_loads = [ 1; 32; 63; 125; 250; 500; 1000; 1500; 2000; 3000; 4000; 5000; 6000 ] in
  match profile with
  | Quick ->
      [
        ("Figure 5a (scaled: n=20, clan 13)", 20, 13, None, [ 500; 2000; 6000 ], 6.0, 2.0, 10);
        ("Figure 5c (scaled: n=30, clan 17, q=2)", 30, 17, Some 2, [ 500; 2000 ], 6.0, 2.0, 10);
      ]
  | Paper ->
      [
        ("Figure 5a (n=50, clan 32)", 50, 32, None, [ 125; 500; 1500; 3000; 6000 ], 6.0, 2.0, 25);
        ("Figure 5b (n=100, clan 60)", 100, 60, None, [ 500; 1500; 6000 ], 4.5, 1.5, 25);
        ("Figure 5c (n=150, clan 80, q=2)", 150, 80, Some 2, [ 500; 1500 ], 3.0, 0.9, 50);
      ]
  | Full ->
      [
        ("Figure 5a (n=50, clan 32)", 50, 32, None, paper_loads, 10.0, 3.0, 10);
        ("Figure 5b (n=100, clan 60)", 100, 60, None, paper_loads, 10.0, 3.0, 10);
        ("Figure 5c (n=150, clan 80, q=2)", 150, 80, Some 2, paper_loads, 10.0, 3.0, 25);
      ]

let figure_protocols ~nc ~multi =
  [ Runner.Full; Runner.Single_clan { nc } ]
  @ (match multi with Some q -> [ Runner.Multi_clan { q } ] | None -> [])

let figure_points ~n ~protocols ~loads ~duration ~warmup ~scale =
  List.concat_map
    (fun protocol ->
      List.map
        (fun load ->
          {
            pn = n;
            pprotocol = protocol;
            pload = load;
            pduration = duration;
            pwarmup = warmup;
            pscale = scale;
          })
        loads)
    protocols

let fig5 which () =
  let sizes = fig5_sizes () in
  let idx = match which with `A -> 0 | `B -> 1 | `C -> 2 in
  if idx < List.length sizes then begin
    let title, n, nc, multi, loads, duration, warmup, scale = List.nth sizes idx in
    section_header
      (Printf.sprintf "%s — throughput vs latency [%s profile]" title profile_name);
    let protocols = figure_protocols ~nc ~multi in
    prefetch (figure_points ~n ~protocols ~loads ~duration ~warmup ~scale);
    List.iter
      (fun protocol ->
        let points =
          List.map
            (fun load ->
              run_point
                { pn = n; pprotocol = protocol; pload = load; pduration = duration;
                  pwarmup = warmup; pscale = scale })
            loads
        in
        print_figure_rows (Runner.protocol_label protocol) points)
      protocols;
    Printf.printf
      "\n  Expected shape (paper): Sailfish saturates first; single-clan reaches\n\
      \  higher throughput with lower latency; multi-clan roughly doubles the\n\
      \  single-clan throughput at n=150.\n"
  end

(* Figure 6 re-presents the Figure 5c sweep as throughput vs input load. *)
let fig6 () =
  let sizes = fig5_sizes () in
  let title, n, nc, multi, loads, duration, warmup, scale =
    List.nth sizes (List.length sizes - 1)
  in
  ignore title;
  section_header
    (Printf.sprintf
       "Figure 6. Throughput vs transactions per proposal at n=%d [%s profile]" n
       profile_name);
  let protocols = figure_protocols ~nc ~multi in
  prefetch (figure_points ~n ~protocols ~loads ~duration ~warmup ~scale);
  Printf.printf "  %-12s" "load";
  List.iter (fun p -> Printf.printf "%26s" (Runner.protocol_label p)) protocols;
  Printf.printf "\n";
  List.iter
    (fun load ->
      Printf.printf "  %-12d" load;
      List.iter
        (fun protocol ->
          let r =
            run_point
              { pn = n; pprotocol = protocol; pload = load; pduration = duration;
                pwarmup = warmup; pscale = scale }
          in
          Printf.printf "%20.1f kTPS" r.throughput_ktps)
        protocols;
      Printf.printf "\n%!")
    loads

(* ------------------------------------------------------------------ *)
(* Paper-scale sweep: the full n=150 system size of Fig. 5c, all three
   protocols, exercising the batched fan-out fast path at its design
   scale (149 remote copies per broadcast). *)

let paper_scale () =
  section_header "Paper-scale sweep — n=150, clan 80, all three protocols (Fig. 5 shape)";
  if not !paper_scale_enabled then
    Printf.printf
      "  skipped: pass --paper-scale (or set CLANBFT_PAPER_SCALE=1) to run\n"
  else begin
    let n = 150 and nc = 80 in
    let loads = [ 500; 1500 ] in
    let duration = 3.0 and warmup = 0.9 and scale = 50 in
    let protocols = figure_protocols ~nc ~multi:(Some 2) in
    prefetch (figure_points ~n ~protocols ~loads ~duration ~warmup ~scale);
    let result protocol load =
      run_point
        { pn = n; pprotocol = protocol; pload = load; pduration = duration;
          pwarmup = warmup; pscale = scale }
    in
    List.iter
      (fun protocol ->
        print_figure_rows (Runner.protocol_label protocol)
          (List.map (result protocol) loads))
      protocols;
    (* The Fig. 5a-c story, checked mechanically at the saturating load:
       single-clan beats Sailfish on throughput (payload leaves one uplink
       set, not every uplink), and multi-clan recovers proposer parallelism
       on top of that. *)
    let peak protocol =
      List.fold_left
        (fun acc load -> Float.max acc (result protocol load).Runner.throughput_ktps)
        0.0 loads
    in
    let sailfish = peak Runner.Full in
    let single = peak (Runner.Single_clan { nc }) in
    let multi = peak (Runner.Multi_clan { q = 2 }) in
    Printf.printf
      "\n  Peak throughput: sailfish %.1f kTPS, single-clan %.1f kTPS, multi-clan %.1f kTPS\n"
      sailfish single multi;
    Printf.printf "  shape: single-clan > sailfish: %b; multi-clan > single-clan: %b\n"
      (single > sailfish) (multi > single)
  end

(* ------------------------------------------------------------------ *)
(* Ablation A1: latency architecture comparison (§1, §8) *)

let ablation_latency () =
  section_header "Ablation A1. Good-case commit latency by architecture (units of delta)";
  List.iter
    (fun d ->
      Printf.printf "  %-28s %2d delta  (%6.0f ms at delta = 100 ms)\n"
        (Latency_model.name d) (Latency_model.deltas d)
        (Latency_model.estimate_ms ~delta_ms:100.0 d))
    Latency_model.all;
  (* Cross-check the 3-delta claim against the simulator: uniform topology,
     negligible payload, measure mean commit latency / delta. *)
  let delta_ms = 40.0 in
  let r =
    Runner.run
      {
        Runner.default_spec with
        n = 10;
        topology = `Uniform delta_ms;
        txns_per_proposal = 1;
        duration = Time.s 8.;
        warmup = Time.s 2.;
      }
  in
  Printf.printf
    "\n  Measured (simulated Sailfish, n=10, uniform delta=%.0f ms):\n\
    \  mean commit latency %.1f ms = %.2f delta  (leaders commit at 3delta,\n\
    \  non-leaders at 5delta; commit-by-ALL-replicas adds up to one more delta)\n"
    delta_ms r.latency_mean_ms
    (r.latency_mean_ms /. delta_ms);
  (* And the PoA-then-order architectures, measured end to end on the same
     simulator (benign case, Poisson-free fixed submission cadence). *)
  let measure_poa name params =
    let n = 10 in
    let topology = Topology.uniform ~n ~one_way_ms:delta_ms in
    let world =
      Poa_smr.create ~n ~params:{ params with Poa_smr.batch_interval = Time.ms (2.0 *. delta_ms) }
        ~topology ~net_config:{ Net.default_config with jitter = 0.0 }
        ~seed:5L ~payload_bytes:512 ()
    in
    let engine = Poa_smr.engine world in
    for i = 0 to 59 do
      Engine.schedule_at engine (Time.ms (float_of_int (50 * i))) (fun () ->
          Poa_smr.submit_payload world ~proposer:(i mod n))
    done;
    Engine.run ~until:(Time.s 12.) engine;
    Printf.printf "  %-28s measured %7.1f ms = %.2f delta  (%d payloads)\n" name
      (Poa_smr.mean_commit_latency_ms world)
      (Poa_smr.mean_commit_latency_ms world /. delta_ms)
      (Poa_smr.committed world)
  in
  Printf.printf "\n  PoA-then-order designs, same delta, measured:\n";
  measure_poa "straw-man (3-hop SMR)" Poa_smr.strawman;
  measure_poa "Arete-style (Jolteon, 5-hop)" Poa_smr.arete

(* ------------------------------------------------------------------ *)
(* Ablation A2: RBC primitives — rounds and bytes *)

let ablation_rbc () =
  section_header "Ablation A2. Reliable broadcast primitives (n=40, clan 16, 1 MB value)";
  let n = 40 in
  let clan = Array.init 16 (fun i -> i) in
  Printf.printf "  %-16s %14s %14s %12s\n" "protocol" "latency (ms)" "total MB" "messages";
  List.iter
    (fun protocol ->
      let engine = Engine.create () in
      let topology = Topology.gcp_table1 ~n in
      let net =
        Net.create ~engine ~topology ~config:Net.default_config
          ~size:(Rbc.msg_size ~n) ~rng:(Rng.create 13L) ()
      in
      let keychain = Crypto.Keychain.create ~seed:17L ~n in
      let last_delivery = ref 0 in
      let nodes =
        Array.init n (fun me ->
            Rbc.create ~me ~n ~clan ~protocol ~engine ~net ~keychain
              ~on_deliver:(fun ~sender:_ ~round:_ _ ->
                last_delivery := max !last_delivery (Engine.now engine))
              ())
      in
      Rbc.broadcast nodes.(0) ~round:1 (String.make 1_000_000 'x');
      Engine.run engine;
      Printf.printf "  %-16s %14.1f %14.2f %12d\n"
        (Rbc.protocol_name protocol)
        (Time.to_ms !last_delivery)
        (float_of_int (Net.total_bytes net) /. 1e6)
        (Net.total_messages net))
    Rbc.[ Bracha; Signed_two_round; Tribe_bracha; Tribe_signed ];
  Printf.printf
    "\n  Tribe-assisted variants ship the payload to the clan only (16/40 nodes);\n\
    \  the signed variants finish one message round earlier.\n"

(* ------------------------------------------------------------------ *)
(* Ablation A3: behaviour under injected faults (adversary harness) *)

let faults () =
  section_header
    "Ablation A3. Tribe-assisted RBC and full SMR under injected faults";
  let n = 40 and nc = 16 in
  let clan = Committee.elect_balanced ~n ~nc in
  let fc = ((nc + 1) / 2) - 1 in
  let value = String.make 100_000 'x' in
  (* One Byzantine sender scenario per tribe protocol: the sender reveals
     the payload to the bare minimum f_c+1 clan members, and the network
     drops every ECHO addressed to one stiffed clan member — that member
     agrees on the digest via READYs/certificate with an empty echo table,
     the regression that used to stall its pull path forever. *)
  let rbc_scenario protocol behaviour plan_specs =
    let engine = Engine.create () in
    let topology = Topology.gcp_table1 ~n in
    let rng = Rng.create 911L in
    let net =
      Net.create ~engine ~topology ~config:Net.default_config
        ~size:(Rbc.msg_size ~n) ~rng ()
    in
    let keychain = Crypto.Keychain.create ~seed:17L ~n in
    let plan =
      match Faults.plan_of_specs ~rules:plan_specs () with
      | Ok p -> p
      | Error e -> failwith e
    in
    let injector =
      if Faults.is_empty plan then None
      else
        Some
          (Faults.install ~engine ~net ~rng:(Rng.split rng)
             ~classify:Rbc.msg_tag ~round_of:Rbc.msg_round plan)
    in
    let values = ref 0 and digests = ref 0 and last = ref 0 in
    let _nodes =
      Array.init n (fun me ->
          if me = 0 then begin
            Net.set_handler net me (fun ~src:_ _ -> ());
            None
          end
          else
            Some
              (Rbc.create ~me ~n ~clan ~protocol ~engine ~net ~keychain
                 ~on_deliver:(fun ~sender:_ ~round:_ outcome ->
                   last := Engine.now engine;
                   match outcome with
                   | Rbc.Value _ -> incr values
                   | Rbc.Digest_only _ -> incr digests)
                 ()))
    in
    Adversary.run ~sender:0 ~n ~clan ~protocol ~net ~round:1 behaviour;
    Engine.run ~until:(Time.s 30.) engine;
    Printf.printf "  %-16s %-22s %3d full %3d digest %5.0f ms%s\n"
      (Rbc.protocol_name protocol)
      (Adversary.behaviour_name behaviour)
      !values !digests (Time.to_ms !last)
      (match injector with
      | None -> ""
      | Some i -> Printf.sprintf "  (%d msgs dropped)" (Faults.dropped i))
  in
  Printf.printf
    "  Byzantine sender 0, n=%d, clan %d (f_c=%d), 100 kB value, 30 s horizon:\n"
    n nc fc;
  List.iter
    (fun protocol ->
      rbc_scenario protocol
        (Adversary.Withhold { value; reveal = fc + 1 })
        [ Printf.sprintf "drop:kind=echo:dst=%d" clan.(nc - 1) ])
    Rbc.[ Tribe_bracha; Tribe_signed ];
  List.iter
    (fun protocol ->
      rbc_scenario protocol
        (Adversary.Equivocate_biased
           { value; decoy = String.make 100_000 'y'; decoys = 1 })
        [])
    Rbc.[ Bracha; Signed_two_round; Tribe_bracha; Tribe_signed ];
  (* Full-protocol run under a pre-GST partition plus lossy links: agreement
     must hold and the system must still commit after the partition heals. *)
  Printf.printf
    "\n  Single-clan SMR under a 2 s partition + 20%% proposal loss until 4 s:\n";
  let plan =
    match
      Faults.plan_of_specs
        ~rules:[ "drop=0.2:kind=val:until=4s" ]
        ~partitions:[ "0,1,2,3,4,5,6,7|8,9,10,11,12,13,14,15:until=2s" ]
        ()
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let spec =
    {
      Runner.default_spec with
      n = 16;
      protocol = Runner.Single_clan { nc = 11 };
      txns_per_proposal = 100;
      duration = Time.s 10.;
      warmup = Time.s 4.;
      fault_plan = plan;
    }
  in
  let r, secs = wall (fun () -> Runner.run spec) in
  progress "  faults SMR run: %.0fs wall\n" secs;
  Printf.printf "  %-26s -> %8.1f kTPS  %7.1f ms  agree=%b\n" r.label
    r.throughput_ktps r.latency_mean_ms r.agreement;
  if not r.agreement then begin
    Printf.eprintf "  AGREEMENT VIOLATED under faults\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Crash–recovery: WAL replay + state sync (docs/RECOVERY.md) *)

let recovery () =
  section_header
    "Crash-recovery — replica 3 crashes at 4 s, restarts from its WAL at 8 s";
  let obs = Obs.metrics_only () in
  let spec =
    {
      Runner.default_spec with
      n = 16;
      protocol = Runner.Single_clan { nc = 11 };
      txns_per_proposal = 200;
      duration = Time.s 12.;
      warmup = Time.s 2.;
      seed = point_seed "recovery-n16";
      restarts =
        [ { Faults.node = 3; crash_at = Time.s 4.; recover_at = Time.s 8. } ];
      obs = Some obs;
    }
  in
  let r, secs = wall (fun () -> Runner.run spec) in
  progress "  recovery run: %.0fs wall\n" secs;
  Printf.printf "  %-26s -> %8.1f kTPS  %7.1f ms  agree=%b\n" r.label
    r.throughput_ktps r.latency_mean_ms r.agreement;
  let fetched =
    Metrics.fold obs.Obs.metrics ~init:0 ~f:(fun acc ~name ~labels:_ v ->
        match (name, v) with
        | "recovery_rounds_fetched", Metrics.Counter_v c -> acc + c
        | _ -> acc)
  in
  Printf.printf "  state sync fetched %d rounds of certified vertices\n" fetched;
  List.iter
    (fun (node, c) ->
      Printf.printf "  post-recovery commits [replica %d]: %d\n" node c)
    r.post_recovery_commits;
  Printf.printf "  commit fingerprint: %#x\n" r.commit_fingerprint;
  if not r.agreement then begin
    Printf.eprintf "  AGREEMENT VIOLATED after recovery\n";
    exit 1
  end;
  if fetched = 0 || List.exists (fun (_, c) -> c = 0) r.post_recovery_commits
  then begin
    Printf.eprintf "  recovered replica made no post-recovery progress\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Metrics dumps: per-protocol observability registries (Fig. 5 companion) *)

let metrics_dir = "bench_metrics"

let sanitize_label label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    label

let metrics () =
  section_header
    (Printf.sprintf
       "Metrics dumps — per-protocol registries under %s/ [%s profile]"
       metrics_dir profile_name);
  if not (Sys.file_exists metrics_dir) then Unix.mkdir metrics_dir 0o755;
  let n, nc, duration, warmup, load =
    match profile with
    | Quick -> (16, 11, 4.0, 1.0, 100)
    | Paper | Full -> (50, 32, 6.0, 2.0, 500)
  in
  let protocols =
    [| Runner.Full; Runner.Single_clan { nc }; Runner.Multi_clan { q = 2 } |]
  in
  (* Each run owns a private registry, so the three protocols fan out
     across the pool; rows print sequentially afterwards. *)
  let runs =
    Pool.map (Lazy.force pool)
      (fun protocol ->
        let obs = Obs.metrics_only () in
        let spec =
          {
            Runner.default_spec with
            n;
            protocol;
            txns_per_proposal = load;
            duration = Time.s duration;
            warmup = Time.s warmup;
            obs = Some obs;
          }
        in
        let r, secs = wall (fun () -> Runner.run spec) in
        progress "  %-26s done [%3.0fs wall]\n" r.Runner.label secs;
        (protocol, obs, r))
      protocols
  in
  Array.iter
    (fun (protocol, obs, (r : Runner.result)) ->
      Printf.printf "\n  %-26s %8.1f kTPS  %7.1f ms  agree=%b\n"
        r.label r.throughput_ktps r.latency_mean_ms r.agreement;
      (* Per-kind byte breakdown: the numbers behind Fig. 5's bandwidth
         story — clan modes shift bytes from val (payload) to header-sized
         vertex/echo/ready traffic. *)
      Printf.printf "  %-12s %14s %12s %9s\n" "kind" "bytes" "messages" "share";
      let total = float_of_int (max 1 r.bytes_total) in
      let rows =
        Metrics.fold obs.Obs.metrics ~init:[] ~f:(fun acc ~name ~labels v ->
            match (name, labels, v) with
            | "net_bytes_by_kind", [ ("kind", k) ], Metrics.Counter_v b ->
                let msgs =
                  match
                    Metrics.find obs.Obs.metrics ~labels "net_messages_by_kind"
                  with
                  | Some (Metrics.Counter_v m) -> m
                  | _ -> 0
                in
                (k, b, msgs) :: acc
            | _ -> acc)
      in
      List.iter
        (fun (k, b, m) ->
          Printf.printf "  %-12s %14d %12d %8.1f%%\n" k b m
            (100.0 *. float_of_int b /. total))
        (List.sort (fun (_, a, _) (_, b, _) -> compare b a) rows);
      let path =
        Filename.concat metrics_dir
          (sanitize_label (Runner.protocol_label protocol) ^ ".metrics.json")
      in
      Metrics.write_json obs.Obs.metrics path;
      Printf.printf "  registry -> %s\n%!" path)
    runs

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel) *)

let micro () =
  section_header
    "Micro-benchmarks (bechamel; measured ns/op and derived throughput on stderr)";
  let open Bechamel in
  let open Toolkit in
  let payload_1k = String.make 1024 'x' in
  let payload_64k = String.make 65536 'x' in
  let kc = Crypto.Keychain.create ~seed:1L ~n:100 in
  let txns =
    Array.init 100 (fun i -> Transaction.make ~id:i ~client:0 ~created_at:0 ())
  in
  let block = Block.make ~proposer:0 ~round:1 ~txns in
  let big_txns =
    Array.init 6000 (fun i -> Transaction.make ~id:i ~client:0 ~created_at:0 ())
  in
  let big_block = Block.make ~proposer:0 ~round:1 ~txns:big_txns in
  let vertex =
    Vertex.make ~round:1 ~source:0 ~block_digest:(Block.digest big_block)
      ~strong_edges:
        (Array.init 11 (fun i ->
             { Vertex.round = 0; source = i; digest = Block.digest block }))
      ~weak_edges:[||] ()
  in
  let val_msg =
    Msg.Val
      {
        vertex;
        block = Some big_block;
        signature = Crypto.Keychain.sign kc ~signer:0 "v";
      }
  in
  let echo =
    Msg.Echo
      {
        round = 1;
        source = 0;
        vertex_digest = Block.digest block;
        signer = 3;
        signature = Crypto.Keychain.sign kc ~signer:3 "x";
      }
  in
  let encoded_echo = Codec.encode ~n:100 echo in
  let rng = Rng.create 99L in
  let tests =
    Test.make_grouped ~name:"clanbft"
      [
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () ->
            ignore (Crypto.Sha256.digest_string payload_1k)));
        Test.make ~name:"sha256-64KiB" (Staged.stage (fun () ->
            ignore (Crypto.Sha256.digest_string payload_64k)));
        Test.make ~name:"block-digest-100txn" (Staged.stage (fun () ->
            ignore (Block.make ~proposer:0 ~round:1 ~txns)));
        Test.make ~name:"binomial-C(500,166)-cached" (Staged.stage (fun () ->
            ignore (Committee.binomial 500 166)));
        Test.make ~name:"codec-encode-echo" (Staged.stage (fun () ->
            ignore (Codec.encode ~n:100 echo)));
        Test.make ~name:"codec-decode-echo" (Staged.stage (fun () ->
            ignore (Codec.decode ~n:100 encoded_echo)));
        Test.make ~name:"wire-size-val-6000txn" (Staged.stage (fun () ->
            ignore (Msg.wire_size ~n:100 val_msg)));
        Test.make ~name:"rng-int" (Staged.stage (fun () -> ignore (Rng.int rng 1000)));
        Test.make ~name:"sign" (Staged.stage (fun () ->
            ignore (Crypto.Keychain.sign kc ~signer:1 payload_1k)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Bechamel.Time.second 0.3) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let estimates =
    List.filter_map
      (fun (name, v) ->
        match Analyze.OLS.estimates v with
        | Some [ est ] -> Some (name, est)
        | _ -> None)
      rows
    |> List.sort compare
  in
  (* Measured numbers vary run to run: stderr, like every other timing. *)
  List.iter
    (fun (name, est) -> progress "  %-34s %12.1f ns/run\n" name est)
    estimates;
  let find name = List.assoc_opt ("clanbft/" ^ name) estimates in
  Option.iter
    (fun ns -> progress "  %-34s %12.1f MB/s\n" "sha256 throughput" (65536.0 /. ns *. 1e3))
    (find "sha256-64KiB");
  Option.iter
    (fun ns -> progress "  %-34s %12.2f Mops/s\n" "codec encode" (1e3 /. ns))
    (find "codec-encode-echo");
  Option.iter
    (fun ns -> progress "  %-34s %12.2f Mops/s\n" "codec decode" (1e3 /. ns))
    (find "codec-decode-echo");
  (* Deterministic part for stdout: the suite composition. *)
  List.iter (fun (name, _) -> Printf.printf "  measured %s\n" name) estimates

(* ------------------------------------------------------------------ *)
(* Perf section: the regression baseline (BENCH_sim.json).

   Pinned scenarios — identical across profiles — run sequentially (never
   through the pool: wall-clock and allocation numbers must not be
   polluted by concurrent domains), plus single-thread micro throughput
   measurements of the hot paths. Deterministic facts (events, commits,
   fingerprints) go to stdout; timings go to stderr and into the JSON. *)

let bench_sim_json = "BENCH_sim.json"

type perf_scenario = { ps_name : string; ps_spec : Runner.spec }

let mk_perf_scenario ?(n = 16) ?(duration = 4.) ?(warmup = 1.) name protocol load =
  {
    ps_name = name;
    ps_spec =
      {
        Runner.default_spec with
        n;
        protocol;
        txns_per_proposal = load;
        duration = Time.s duration;
        warmup = Time.s warmup;
        seed = point_seed name;
      };
  }

(* The four pinned n=16 scenarios: the fingerprinted determinism anchors,
   and the only ones traced for the analysis section (tracing an n=150 run
   would dominate the whole bench). *)
let pinned_perf_scenarios () =
  [
    mk_perf_scenario "sailfish-n16-load200" Runner.Full 200;
    mk_perf_scenario "single-clan-n16-load400" (Runner.Single_clan { nc = 11 }) 400;
    mk_perf_scenario "multi-clan-n16q2-load200" (Runner.Multi_clan { q = 2 }) 200;
    mk_perf_scenario "sparse-n16-load200" (Runner.Sparse { k = 3 }) 200;
  ]

(* Scale scenarios ride in BENCH_sim.json behind the pinned quartet: n=50
   always (cheap enough for CI, catches fan-out regressions the n=16 runs
   under-weight), the dense-vs-sparse n=150 head-to-head plus the n=300
   dense and n=500 sparse stretch runs only at --paper-scale. The stretch
   durations shrink with n: event volume grows with n^3 (echo fan-out),
   so the sim horizon is what keeps the wall time in minutes. *)
let perf_scenarios () =
  pinned_perf_scenarios ()
  @ [
      mk_perf_scenario ~n:50 ~duration:2. ~warmup:0.5 "sailfish-n50-load200"
        Runner.Full 200;
      mk_perf_scenario ~n:50 ~duration:2. ~warmup:0.5 "sparse-n50-load200"
        (Runner.Sparse { k = 6 }) 200;
    ]
  @
  if !paper_scale_enabled then
    [
      mk_perf_scenario ~n:150 ~duration:1. ~warmup:0.25 "sailfish-n150-load200"
        Runner.Full 200;
      mk_perf_scenario ~n:150 ~duration:1. ~warmup:0.25 "sparse-n150-load200"
        (Runner.Sparse { k = 8 }) 200;
      mk_perf_scenario ~n:300 ~duration:0.5 ~warmup:0.1 "sailfish-n300-load200"
        Runner.Full 200;
      mk_perf_scenario ~n:500 ~duration:0.4 ~warmup:0.1 "sparse-n500-load200"
        (Runner.Sparse { k = 9 }) 200;
    ]
  else []

(* Traced re-runs of the pinned perf scenarios, analyzed by the Analyze
   engine. Segment percentiles are simulated-time facts — fully
   deterministic, so they print to stdout and hard-gate in ci.sh
   alongside throughput. Lazy and shared: the [analysis] section and the
   BENCH_sim.json writer both consume it, but the traced runs happen at
   most once per process. *)
let analysis_rows =
  lazy
    (List.map
       (fun sc ->
         let obs = Obs.create () in
         let r, secs =
           wall (fun () -> Runner.run { sc.ps_spec with Runner.obs = Some obs })
         in
         progress "  %-26s %6.2fs wall (traced, %d events)\n" sc.ps_name secs
           (Trace.length obs.Obs.trace);
         assert r.Runner.agreement;
         (sc, Analyze.analyze (Trace.records obs.Obs.trace)))
       (pinned_perf_scenarios ()))

let analysis () =
  section_header
    "Trace analysis — commit critical-path attribution over the perf scenarios";
  Printf.printf "  %-26s %-14s %9s %9s %9s\n" "scenario" "segment" "p50 ms"
    "p99 ms" "max ms";
  List.iter
    (fun (sc, (rep : Analyze.report)) ->
      let row name (d : Analyze.dist) =
        Printf.printf "  %-26s %-14s %9.1f %9.1f %9.1f\n" sc.ps_name name
          (float_of_int d.Analyze.p50_us /. 1000.)
          (float_of_int d.Analyze.p99_us /. 1000.)
          (float_of_int d.Analyze.max_us /. 1000.)
      in
      List.iter
        (fun (seg, d) -> row (Analyze.segment_name seg) d)
        rep.Analyze.segments;
      row "end_to_end" rep.Analyze.e2e;
      Printf.printf "  %-26s %-14s %9d %9d\n" sc.ps_name "paths/stalls"
        rep.Analyze.e2e.Analyze.count
        (List.length rep.Analyze.stalls))
    (Lazy.force analysis_rows)

(* ------------------------------------------------------------------ *)
(* Self-profiler sweep — the pinned perf quartet re-run sequentially with
   the Prof sections enabled (plus the n=150 dense run at --paper-scale).
   Deterministic profiler facts — per-section call counts, allocated
   words, the heap census, the commit fingerprint — go to stdout and into
   BENCH_sim.json; wall-time attribution is a real-clock measurement and
   stays on stderr / in the [_ns]-suffixed JSON fields that determinism
   comparisons strip (see docs/PROFILING.md). Lazy and shared: the
   [profile] section prints the tables, the BENCH_sim.json writer embeds
   the rows, the profiled runs happen once. *)

type profiled_run = {
  pf_name : string;
  pf_fingerprint : int;
  pf_wall_s : float;
  pf_rows : Prof.row list;
  pf_census : (string * int) list;
}

let profile_scenarios () =
  pinned_perf_scenarios ()
  @
  if !paper_scale_enabled then
    [
      mk_perf_scenario ~n:150 ~duration:1. ~warmup:0.25 "sailfish-n150-load200"
        Runner.Full 200;
    ]
  else []

let profile_rows =
  lazy
    (List.map
       (fun sc ->
         Gc.full_major ();
         Prof.reset ();
         Prof.set_enabled true;
         let r, secs = wall (fun () -> Runner.run sc.ps_spec) in
         Prof.set_enabled false;
         let rows = Prof.report () in
         progress "  %-26s %6.2fs wall (profiled, %d sections)\n" sc.ps_name
           secs (List.length rows);
         assert r.Runner.agreement;
         {
           pf_name = sc.ps_name;
           pf_fingerprint = r.Runner.commit_fingerprint;
           pf_wall_s = secs;
           pf_rows = rows;
           pf_census = r.Runner.census;
         })
       (profile_scenarios ()))

let top_by_self k rows =
  List.filteri
    (fun i _ -> i < k)
    (List.sort (fun a b -> compare b.Prof.self_ns a.Prof.self_ns) rows)

let profile_section () =
  section_header
    "Self-profiler — phase/allocation attribution over the pinned scenarios";
  List.iter
    (fun pf ->
      Printf.printf "\n  %s  (fingerprint %#x)\n" pf.pf_name pf.pf_fingerprint;
      Printf.printf "  %-18s %12s %14s %12s\n" "section" "calls" "minor words"
        "major words";
      List.iter
        (fun (r : Prof.row) ->
          Printf.printf "  %-18s %12d %14d %12d\n" r.Prof.name r.Prof.calls
            r.Prof.self_minor_words r.Prof.self_major_words)
        pf.pf_rows;
      List.iter
        (fun (name, words) ->
          Printf.printf "  %-18s %12s %14d   census live\n" name "" words)
        pf.pf_census;
      (* The ranking is by exclusive wall time — machine-dependent, so it
         goes to stderr with the other timings. *)
      List.iteri
        (fun i (r : Prof.row) ->
          progress "  top%d by self time: %-18s %10.1f ms self\n" (i + 1)
            r.Prof.name
            (float_of_int r.Prof.self_ns /. 1e6))
        (top_by_self 3 pf.pf_rows))
    (Lazy.force profile_rows)

(* ------------------------------------------------------------------ *)
(* Attack corpus — every Strategy kind against three protocol shapes
   (dense Sailfish, sparse edges, single-clan tribe), with a benign
   same-seed baseline per shape so the degradation ratios isolate the
   attack. Lazy and shared: the [attacks] section prints the table, the
   BENCH_sim.json writer embeds the rows, the runs happen once. *)

let attack_protocols =
  [
    ("dense", Runner.Full);
    ("sparse", Runner.Sparse { k = 3 });
    ("tribe", Runner.Single_clan { nc = 11 });
  ]

(* Name, DSL spec(s), and whether the run needs a crash–recovery victim
   (sync_storm preys on a recovering replica's state sync). Node 3 is a
   clan member under every shape (balanced election takes ids 0..nc-1),
   so the same adversary id works across the corpus. *)
let attack_corpus =
  [
    ("equivocate", [ "3@equivocate" ], false);
    ("censor", [ "3@censor:0" ], false);
    ("grief", [ "3@grief:0.8" ], false);
    ("sync_storm", [ "2@storm:16" ], true);
    ("reorder", [ "3@reorder:2ms" ], false);
  ]

let attack_restart =
  [ { Faults.node = 5; crash_at = Time.s 1.5; recover_at = Time.s 2.5 } ]

(* Benign baselines come in two flavours: plain, and with the same
   restart schedule the sync_storm run carries — so the storm's ratio
   measures the amplification, not the crash. *)
let attack_baseline_of restart = if restart then "benign+restart" else "benign"

let attack_spec ~proto_name ~protocol ~restart adversaries =
  let adversaries =
    match Strategy.of_specs adversaries with
    | Ok l -> l
    | Error e -> failwith e
  in
  {
    Runner.default_spec with
    n = 16;
    protocol;
    txns_per_proposal = 200;
    duration = Time.s 4.;
    warmup = Time.s 1.;
    seed = point_seed ("attacks-" ^ proto_name);
    adversaries;
    restarts = (if restart then attack_restart else []);
  }

type attack_cell = {
  ac_attack : string;
  ac_protocol : string;
  ac_result : Runner.result;
  ac_base : Runner.result option;  (** [None] on the baseline rows *)
}

let attack_rows =
  lazy
    (let specs =
       List.concat_map
         (fun (pname, protocol) ->
           let mk = attack_spec ~proto_name:pname ~protocol in
           ("benign", pname, mk ~restart:false [])
           :: ("benign+restart", pname, mk ~restart:true [])
           :: List.map
                (fun (aname, dsl, restart) -> (aname, pname, mk ~restart dsl))
                attack_corpus)
         attack_protocols
     in
     let results, secs =
       wall (fun () ->
           Runner.run_many ~pool:(Lazy.force pool)
             (Array.of_list (List.map (fun (_, _, s) -> s) specs)))
     in
     progress "  attack corpus: %d runs, %.0fs wall\n" (Array.length results)
       secs;
     let tagged = List.mapi (fun i (a, p, _) -> (a, p, results.(i))) specs in
     let baseline name pname =
       List.find_map
         (fun (a, p, r) -> if a = name && p = pname then Some r else None)
         tagged
     in
     List.map
       (fun (aname, pname, r) ->
         let base =
           match
             List.find_opt (fun (a, _, _) -> a = aname) attack_corpus
           with
           | Some (_, _, restart) -> baseline (attack_baseline_of restart) pname
           | None -> None
         in
         { ac_attack = aname; ac_protocol = pname; ac_result = r; ac_base = base })
       tagged)

let attacks () =
  section_header
    "Attack corpus — strategic adversaries vs benign same-seed baselines (n=16)";
  Printf.printf "  %-8s %-15s %8s %8s %8s %6s %6s %6s %6s\n" "protocol"
    "attack" "kTPS" "p50 ms" "p99 ms" "tput x" "p50 x" "p99 x" "agree";
  let ratio a b = a /. b in
  List.iter
    (fun c ->
      let r = c.ac_result in
      (match c.ac_base with
      | None ->
          Printf.printf "  %-8s %-15s %8.1f %8.1f %8.1f %6s %6s %6s %6b\n"
            c.ac_protocol c.ac_attack r.Runner.throughput_ktps
            r.Runner.latency_p50_ms r.Runner.latency_p99_ms "-" "-" "-"
            r.Runner.agreement
      | Some b ->
          Printf.printf "  %-8s %-15s %8.1f %8.1f %8.1f %6.2f %6.2f %6.2f %6b\n"
            c.ac_protocol c.ac_attack r.Runner.throughput_ktps
            r.Runner.latency_p50_ms r.Runner.latency_p99_ms
            (ratio r.Runner.throughput_ktps b.Runner.throughput_ktps)
            (ratio r.Runner.latency_p50_ms b.Runner.latency_p50_ms)
            (ratio r.Runner.latency_p99_ms b.Runner.latency_p99_ms)
            r.Runner.agreement);
      if not r.Runner.agreement then begin
        Printf.eprintf "  AGREEMENT VIOLATED under %s/%s\n" c.ac_protocol
          c.ac_attack;
        exit 1
      end;
      if r.Runner.committed_txns = 0 then begin
        Printf.eprintf "  LIVENESS LOST under %s/%s\n" c.ac_protocol
          c.ac_attack;
        exit 1
      end)
    (Lazy.force attack_rows)

(* ops/sec of [f] measured over at least [min_time] seconds, calling [f]
   in batches of [batch] between clock reads. *)
let ops_per_s ?(min_time = 0.3) ?(batch = 100) f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  let count = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    for _ = 1 to batch do
      ignore (f ())
    done;
    count := !count + batch;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int !count /. !elapsed

let perf_micro () =
  (* SHA-256 bulk throughput. *)
  let mb = String.make (1 lsl 20) '\xa7' in
  let hashes = ops_per_s ~batch:2 (fun () -> Crypto.Sha256.digest_string mb) in
  let sha_mb_s = hashes *. float_of_int (String.length mb) /. 1e6 in
  (* Signing over realistic ~64-byte signing strings, cycling 256 distinct
     messages like a broadcast's per-slot signing payloads. *)
  let kc = Crypto.Keychain.create ~seed:1L ~n:64 in
  let msgs =
    Array.init 256 (fun i -> Printf.sprintf "echo|%d|%d|%032d" (i mod 50) i i)
  in
  let i = ref 0 in
  let sign_ops =
    ops_per_s (fun () ->
        incr i;
        Crypto.Keychain.sign kc ~signer:(!i land 63) msgs.(!i land 255))
  in
  (* Codec round-trip ops. *)
  let echo =
    Msg.Echo
      {
        round = 1;
        source = 0;
        vertex_digest = Crypto.Digest32.hash_string "b";
        signer = 3;
        signature = Crypto.Keychain.sign kc ~signer:3 "x";
      }
  in
  let encoded = Codec.encode ~n:100 echo in
  let enc_ops = ops_per_s (fun () -> Codec.encode ~n:100 echo) in
  let dec_ops = ops_per_s (fun () -> Codec.decode ~n:100 encoded) in
  (* Net send path: price + enqueue + uplink accounting + delivery of a
     full-size Val carrying a 500-txn block, on the GCP topology. The
     engine drains between batches so memory stays flat. *)
  let n = 50 in
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~topology:(Topology.gcp_table1 ~n)
      ~config:Net.default_config ~size:(Msg.wire_size ~n) ~kind:Msg.tag
      ~rng:(Rng.create 7L) ()
  in
  for node = 0 to n - 1 do
    Net.set_handler net node (fun ~src:_ _ -> ())
  done;
  let txns =
    Array.init 500 (fun i -> Transaction.make ~id:i ~client:0 ~created_at:0 ())
  in
  let block = Block.make ~proposer:0 ~round:1 ~txns in
  let vertex =
    Vertex.make ~round:1 ~source:0 ~block_digest:(Block.digest block)
      ~strong_edges:[||] ~weak_edges:[||] ()
  in
  let val_msg =
    Msg.Val { vertex; block = Some block; signature = Crypto.Keychain.sign kc ~signer:0 "v" }
  in
  let sent = ref 0 in
  let send_ops =
    ops_per_s ~batch:1 (fun () ->
        for _ = 1 to 1000 do
          incr sent;
          Net.send net ~src:(!sent mod n) ~dst:((!sent + 1) mod n) val_msg
        done;
        Engine.run engine)
  in
  let send_ops = send_ops *. 1000.0 in
  [
    ("sha256_mb_per_s", sha_mb_s);
    ("sign_ops_per_s", sign_ops);
    ("encode_ops_per_s", enc_ops);
    ("decode_ops_per_s", dec_ops);
    ("net_send_ops_per_s", send_ops);
  ]

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    (* NaN is not JSON; latencies can be nan when nothing committed. *)
    if Float.is_nan f then "null" else Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let perf () =
  section_header
    (Printf.sprintf "Perf baseline — pinned scenarios + hot-path micros -> %s"
       bench_sim_json);
  let scenarios = perf_scenarios () in
  Printf.printf "  %-26s %4s %6s %10s %12s %8s %18s\n" "scenario" "n" "load"
    "committed" "events" "agree" "fingerprint";
  let measured =
    List.map
      (fun sc ->
        Gc.full_major ();
        let g0 = Gc.quick_stat () in
        let r, secs = wall (fun () -> Runner.run sc.ps_spec) in
        let g1 = Gc.quick_stat () in
        let minor = g1.Gc.minor_words -. g0.Gc.minor_words in
        let major = g1.Gc.major_words -. g0.Gc.major_words in
        let promoted = g1.Gc.promoted_words -. g0.Gc.promoted_words in
        (* Heap footprint: live words retained once the run's garbage is
           collected (the run's data structures plus anything cached so
           far), and the process peak. [Gc.stat] — not [quick_stat], which
           reports live_words as 0. top_heap_words is monotone across
           scenarios, so only its first growth is attributable. *)
        Gc.full_major ();
        let heap = Gc.stat () in
        let live = heap.Gc.live_words and top = heap.Gc.top_heap_words in
        let events_per_s = float_of_int r.Runner.events /. secs in
        progress
          "  %-26s %6.2fs wall  %9.0f events/s  minor %11.0f w  major %10.0f \
           w  live %9d w  top %9d w\n"
          sc.ps_name secs events_per_s minor major live top;
        Printf.printf "  %-26s %4d %6d %10d %12d %8b %#18x\n" sc.ps_name
          sc.ps_spec.Runner.n sc.ps_spec.Runner.txns_per_proposal
          r.Runner.committed_txns r.Runner.events r.Runner.agreement
          r.Runner.commit_fingerprint;
        (sc, r, secs, events_per_s, minor, major, promoted, live, top))
      scenarios
  in
  let micros = perf_micro () in
  (* Tracing overhead: traced vs untraced same-seed wall ratio for the
     first pinned scenario, measured back-to-back so GC and code-cache
     state are comparable. The ratio rides in the micro object; being a
     wall-clock fact, the detail line goes to stderr. *)
  let trace_overhead =
    let sc = List.hd scenarios in
    Gc.full_major ();
    let plain, plain_s = wall (fun () -> Runner.run sc.ps_spec) in
    Gc.full_major ();
    let obs = Obs.create () in
    let traced, traced_s =
      wall (fun () -> Runner.run { sc.ps_spec with Runner.obs = Some obs })
    in
    if plain.Runner.commit_fingerprint <> traced.Runner.commit_fingerprint
    then begin
      Printf.eprintf "  TRACING CHANGED THE RUN on %s\n" sc.ps_name;
      exit 1
    end;
    let ratio = traced_s /. plain_s in
    progress "  trace overhead (%s): %.2fs untraced, %.2fs traced, x%.3f\n"
      sc.ps_name plain_s traced_s ratio;
    ratio
  in
  let micros = micros @ [ ("trace_overhead", trace_overhead) ] in
  List.iter
    (fun (k, v) -> progress "  %-26s %14.1f\n" k v)
    micros;
  (* The profiler must be pure observation: a profiled run's commit
     fingerprint must match the plain perf run of the same scenario. *)
  let profiled = Lazy.force profile_rows in
  List.iter
    (fun pf ->
      match
        List.find_opt
          (fun (sc, _, _, _, _, _, _, _, _) -> sc.ps_name = pf.pf_name)
          measured
      with
      | Some (_, (r : Runner.result), _, _, _, _, _, _, _) ->
          if r.Runner.commit_fingerprint <> pf.pf_fingerprint then begin
            Printf.eprintf "  PROFILER PERTURBED %s: %#x <> %#x\n" pf.pf_name
              r.Runner.commit_fingerprint pf.pf_fingerprint;
            exit 1
          end
      | None -> ())
    profiled;
  (* BENCH_sim.json *)
  let b = Buffer.create 4096 in
  let analysis_json =
    let dist_json (d : Analyze.dist) =
      Printf.sprintf
        "{\"count\": %d, \"p50_us\": %d, \"p99_us\": %d, \"mean_us\": %s, \
         \"max_us\": %d}"
        d.Analyze.count d.Analyze.p50_us d.Analyze.p99_us
        (json_float d.Analyze.mean_us) d.Analyze.max_us
    in
    List.map
      (fun (sc, (rep : Analyze.report)) ->
        let segs =
          List.map
            (fun (seg, d) ->
              Printf.sprintf "\"%s\": %s" (Analyze.segment_name seg)
                (dist_json d))
            rep.Analyze.segments
        in
        Printf.sprintf
          "    \"%s\": {\"e2e\": %s, \"segments\": {%s}, \"stalls\": %d}"
          (json_escape sc.ps_name)
          (dist_json rep.Analyze.e2e)
          (String.concat ", " segs)
          (List.length rep.Analyze.stalls))
      (Lazy.force analysis_rows)
  in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"clanbft/bench-sim/v3\",\n";
  Buffer.add_string b (Printf.sprintf "  \"profile\": \"%s\",\n" profile_name);
  Buffer.add_string b
    (Printf.sprintf "  \"jobs\": %d,\n" (Pool.jobs (Lazy.force pool)));
  Buffer.add_string b "  \"scenarios\": [\n";
  List.iteri
    (fun i (sc, (r : Runner.result), secs, eps, minor, major, promoted, live, top) ->
      Buffer.add_string b "    {";
      Buffer.add_string b
        (String.concat ", "
           [
             Printf.sprintf "\"name\": \"%s\"" (json_escape sc.ps_name);
             Printf.sprintf "\"protocol\": \"%s\""
               (json_escape (Runner.protocol_label sc.ps_spec.Runner.protocol));
             Printf.sprintf "\"n\": %d" sc.ps_spec.Runner.n;
             Printf.sprintf "\"load\": %d" sc.ps_spec.Runner.txns_per_proposal;
             Printf.sprintf "\"sim_duration_s\": %s"
               (json_float (Time.to_s sc.ps_spec.Runner.duration));
             Printf.sprintf "\"wall_s\": %s" (json_float secs);
             Printf.sprintf "\"events\": %d" r.events;
             Printf.sprintf "\"events_per_s\": %s" (json_float eps);
             Printf.sprintf "\"minor_words\": %s" (json_float minor);
             Printf.sprintf "\"major_words\": %s" (json_float major);
             Printf.sprintf "\"promoted_words\": %s" (json_float promoted);
             Printf.sprintf "\"live_words\": %d" live;
             Printf.sprintf "\"top_heap_words\": %d" top;
             Printf.sprintf "\"committed_txns\": %d" r.committed_txns;
             Printf.sprintf "\"throughput_ktps\": %s" (json_float r.throughput_ktps);
             Printf.sprintf "\"latency_mean_ms\": %s" (json_float r.latency_mean_ms);
             Printf.sprintf "\"agreement\": %b" r.agreement;
             Printf.sprintf "\"commit_fingerprint\": \"%#x\"" r.commit_fingerprint;
           ]);
      Buffer.add_string b
        (if i = List.length measured - 1 then "}\n" else "},\n"))
    measured;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"micro\": {\n";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %s%s\n" k (json_float v)
           (if i = List.length micros - 1 then "" else ",")))
    micros;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"analysis\": {\n";
  Buffer.add_string b (String.concat ",\n" analysis_json);
  Buffer.add_string b "\n  },\n";
  (* Self-profiler rows: calls/words/census are deterministic per seed;
     every [_ns]-suffixed key is wall-clock and must be jq-stripped
     before byte comparisons (docs/PROFILING.md). *)
  let profiler_json =
    List.map
      (fun pf ->
        let rows =
          List.map
            (fun (r : Prof.row) ->
              Printf.sprintf
                "        \"%s\": {\"calls\": %d, \"self_minor_words\": %d, \
                 \"self_major_words\": %d, \"self_ns\": %d, \"incl_ns\": %d}"
                (json_escape r.Prof.name) r.Prof.calls r.Prof.self_minor_words
                r.Prof.self_major_words r.Prof.self_ns r.Prof.incl_ns)
            pf.pf_rows
        in
        let census =
          List.map
            (fun (name, words) ->
              Printf.sprintf "        \"%s\": %d" (json_escape name) words)
            pf.pf_census
        in
        let top =
          List.map
            (fun (r : Prof.row) ->
              Printf.sprintf "\"%s\"" (json_escape r.Prof.name))
            (top_by_self 3 pf.pf_rows)
        in
        Printf.sprintf
          "    \"%s\": {\n      \"commit_fingerprint\": \"%#x\",\n      \
           \"wall_ns\": %.0f,\n      \"top_by_self_ns\": [%s],\n      \
           \"sections\": {\n%s\n      },\n      \"census\": {\n%s\n      \
           }\n    }"
          (json_escape pf.pf_name) pf.pf_fingerprint (pf.pf_wall_s *. 1e9)
          (String.concat ", " top)
          (String.concat ",\n" rows)
          (String.concat ",\n" census))
      profiled
  in
  Buffer.add_string b "  \"profiler\": {\n";
  Buffer.add_string b (String.concat ",\n" profiler_json);
  Buffer.add_string b "\n  },\n";
  let attack_cells = Lazy.force attack_rows in
  Buffer.add_string b "  \"attacks\": [\n";
  List.iteri
    (fun i c ->
      let r = c.ac_result in
      let ratios =
        match c.ac_base with
        | None -> []
        | Some base ->
            [
              Printf.sprintf "\"tput_ratio\": %s"
                (json_float
                   (r.Runner.throughput_ktps /. base.Runner.throughput_ktps));
              Printf.sprintf "\"p50_ratio\": %s"
                (json_float
                   (r.Runner.latency_p50_ms /. base.Runner.latency_p50_ms));
              Printf.sprintf "\"p99_ratio\": %s"
                (json_float
                   (r.Runner.latency_p99_ms /. base.Runner.latency_p99_ms));
            ]
      in
      Buffer.add_string b "    {";
      Buffer.add_string b
        (String.concat ", "
           ([
              Printf.sprintf "\"attack\": \"%s\"" (json_escape c.ac_attack);
              Printf.sprintf "\"protocol\": \"%s\"" (json_escape c.ac_protocol);
              Printf.sprintf "\"throughput_ktps\": %s"
                (json_float r.Runner.throughput_ktps);
              Printf.sprintf "\"p50_ms\": %s" (json_float r.Runner.latency_p50_ms);
              Printf.sprintf "\"p99_ms\": %s" (json_float r.Runner.latency_p99_ms);
            ]
           @ ratios
           @ [
               Printf.sprintf "\"agreement\": %b" r.Runner.agreement;
               Printf.sprintf "\"commit_fingerprint\": \"%#x\""
                 r.Runner.commit_fingerprint;
             ]));
      Buffer.add_string b
        (if i = List.length attack_cells - 1 then "}\n" else "},\n"))
    attack_cells;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out bench_sim_json in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\n  wrote %s\n" bench_sim_json

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1);
    ("fig1", fig1);
    ("concrete", concrete);
    ("fig5a", fig5 `A);
    ("fig5b", fig5 `B);
    ("fig5c", fig5 `C);
    ("fig6", fig6);
    ("paper-scale", paper_scale);
    ("ablation-latency", ablation_latency);
    ("ablation-rbc", ablation_rbc);
    ("faults", faults);
    ("recovery", recovery);
    ("metrics", metrics);
    ("micro", micro);
    ("analysis", analysis);
    ("profile", profile_section);
    ("attacks", attacks);
    ("perf", perf);
  ]

let () =
  let rec parse_args jobs names = function
    | [] -> (jobs, List.rev names)
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> parse_args (Some j) names rest
        | _ ->
            Printf.eprintf "--jobs: expected a positive integer, got %S\n" v;
            exit 2)
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs: missing value\n";
        exit 2
    | "--paper-scale" :: rest ->
        paper_scale_enabled := true;
        parse_args jobs names rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> (
        let v = String.sub arg 7 (String.length arg - 7) in
        match int_of_string_opt v with
        | Some j when j >= 1 -> parse_args (Some j) names rest
        | _ ->
            Printf.eprintf "--jobs: expected a positive integer, got %S\n" v;
            exit 2)
    | name :: rest -> parse_args jobs (name :: names) rest
  in
  let jobs, requested =
    parse_args None [] (List.tl (Array.to_list Sys.argv))
  in
  (* Resolve the width now: a malformed CLANBFT_JOBS should fail before
     any simulation runs, not when the lazy pool is first forced. *)
  let jobs =
    match jobs with
    | Some j -> Some j
    | None -> (
        match Pool.default_jobs () with
        | j -> Some j
        | exception Invalid_argument msg ->
            Printf.eprintf "%s\n" msg;
            exit 2)
  in
  requested_jobs := jobs;
  let requested =
    match requested with [] -> List.map fst sections | names -> names
  in
  Printf.printf "clanbft benchmark harness — profile: %s\n" profile_name;
  Printf.printf "(set CLANBFT_BENCH=quick|paper|full to change scope)\n";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst sections)))
    requested;
  progress "\nTotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0);
  if Lazy.is_val pool then Pool.shutdown (Lazy.force pool)
