(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations called out in DESIGN.md and a bechamel
   micro-benchmark suite.

   Profiles (CLANBFT_BENCH environment variable):
     quick — scaled-down sizes, ~2 minutes; CI smoke run.
     paper — the default: the paper's system sizes with trimmed load sweeps
             (the knee-revealing points); ~20-25 minutes on one core.
     full  — the complete 13-point sweeps of §7; hours.

   Sections can be selected on the command line:
     dune exec bench/main.exe -- table1 fig1 concrete fig5a fig5b fig5c \
       fig6 ablation-latency ablation-rbc faults metrics micro *)

open Clanbft
open Clanbft.Sim
module Rng = Util.Rng

type profile = Quick | Paper | Full

let profile =
  match Sys.getenv_opt "CLANBFT_BENCH" with
  | Some "quick" -> Quick
  | Some "full" -> Full
  | Some "paper" | None -> Paper
  | Some other ->
      Printf.eprintf "unknown CLANBFT_BENCH=%s (quick|paper|full)\n%!" other;
      exit 2

let profile_name = match profile with Quick -> "quick" | Paper -> "paper" | Full -> "full"

let section_header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Table 1: inter-region RTTs used by the simulator *)

let table1 () =
  section_header "Table 1. Ping latencies (ms) between GCP regions (simulator input)";
  let regions = Topology.gcp_regions in
  Printf.printf "%-24s" "Source \\ Destination";
  Array.iter (fun r -> Printf.printf "%10s" (String.sub r 0 (min 9 (String.length r)))) regions;
  print_newline ();
  Array.iteri
    (fun i row ->
      Printf.printf "%-24s" regions.(i);
      Array.iter (fun ms -> Printf.printf "%10.2f" ms) row;
      print_newline ())
    Topology.gcp_rtt_ms

(* ------------------------------------------------------------------ *)
(* Figure 1: clan size vs n at failure < 1e-9 *)

let fig1 () =
  section_header
    "Figure 1. Clan sizes ensuring an honest majority w.p. > 1 - 1e-9 (exact Eq. 1)";
  let threshold = Bigint.Rat.of_ints 1 1_000_000_000 in
  let max_n = match profile with Quick -> 400 | Paper | Full -> 1000 in
  Printf.printf "%8s %6s %10s %22s\n" "n" "f" "clan size" "failure probability";
  let rec go n =
    if n <= max_n then begin
      let f = Committee.default_f n in
      match Committee.min_clan_size ~n ~f ~threshold () with
      | Some nc ->
          let p = Committee.single_clan_failure ~n ~f ~nc in
          Printf.printf "%8d %6d %10d %22s\n%!" n f nc (Bigint.Rat.to_scientific p);
          go (n + 100)
      | None ->
          Printf.printf "%8d %6d %10s\n%!" n f "-";
          go (n + 100)
    end
  in
  go 100

(* ------------------------------------------------------------------ *)
(* §6.2 concrete numbers *)

let concrete () =
  section_header "Section 6.2: multi-clan dishonest-majority probabilities (exact)";
  let show ~n ~q ~paper =
    let f = Committee.default_f n in
    let nc = n / q in
    let p = Committee.multi_clan_failure ~n ~f ~q ~nc in
    Printf.printf
      "  n=%-4d f=%-4d q=%d (clans of %d): Pr[dishonest clan] = %s   (paper: %s)\n"
      n f q nc (Bigint.Rat.to_scientific p) paper
  in
  show ~n:150 ~q:2 ~paper:"4.015e-06";
  show ~n:387 ~q:3 ~paper:"1.11e-06";
  (* §7: clan sizes used in the experiments at failure ~1e-6. *)
  let th = Bigint.Rat.of_ints 1 1_000_000 in
  Printf.printf
    "\n  Experimental clan sizes at failure <= 1e-6 (paper used 32/60/80):\n";
  List.iter
    (fun n ->
      match Committee.min_clan_size ~n ~f:(Committee.default_f n) ~threshold:th () with
      | Some nc -> Printf.printf "  n=%-4d -> minimum nc=%d\n" n nc
      | None -> ())
    [ 50; 100; 150 ]

(* ------------------------------------------------------------------ *)
(* Figures 5a/5b/5c and 6: throughput vs latency, by protocol *)

let result_cache : (string, Runner.result) Hashtbl.t = Hashtbl.create 64

let run_point ~n ~protocol ~load ~duration ~warmup ~scale =
  let key = Printf.sprintf "%s/%d/%d" (Runner.protocol_label protocol) n load in
  match Hashtbl.find_opt result_cache key with
  | Some r -> r
  | None ->
      let spec =
        {
          Runner.default_spec with
          n;
          protocol;
          txns_per_proposal = load;
          txn_scale = scale;
          duration = Time.s duration;
          warmup = Time.s warmup;
        }
      in
      let r, secs = wall (fun () -> Runner.run spec) in
      Printf.printf "    %-26s load=%-5d -> %8.1f kTPS  %7.1f ms  [%4.0fs wall]\n%!"
        (Runner.protocol_label protocol) load r.throughput_ktps r.latency_mean_ms secs;
      Hashtbl.replace result_cache key r;
      r

let print_figure_rows title points =
  Printf.printf "\n  %s\n" title;
  Printf.printf "  %-26s %8s %12s %12s %10s %8s\n" "protocol" "load/prop"
    "tput (kTPS)" "latency (ms)" "MB/s/node" "agree";
  List.iter
    (fun (r : Runner.result) ->
      Printf.printf "  %-26s %8s %12.1f %12.1f %10.1f %8b\n"
        r.label "" r.throughput_ktps r.latency_mean_ms r.mb_per_node_per_s r.agreement)
    points

let fig5_sizes () =
  (* (figure, n, clan size, multi-clan q option, loads, duration, warmup, scale) *)
  let paper_loads = [ 1; 32; 63; 125; 250; 500; 1000; 1500; 2000; 3000; 4000; 5000; 6000 ] in
  match profile with
  | Quick ->
      [
        ("Figure 5a (scaled: n=20, clan 13)", 20, 13, None, [ 500; 2000; 6000 ], 6.0, 2.0, 10);
        ("Figure 5c (scaled: n=30, clan 17, q=2)", 30, 17, Some 2, [ 500; 2000 ], 6.0, 2.0, 10);
      ]
  | Paper ->
      [
        ("Figure 5a (n=50, clan 32)", 50, 32, None, [ 125; 500; 1500; 3000; 6000 ], 6.0, 2.0, 25);
        ("Figure 5b (n=100, clan 60)", 100, 60, None, [ 500; 1500; 6000 ], 4.5, 1.5, 25);
        ("Figure 5c (n=150, clan 80, q=2)", 150, 80, Some 2, [ 500; 1500 ], 3.0, 0.9, 50);
      ]
  | Full ->
      [
        ("Figure 5a (n=50, clan 32)", 50, 32, None, paper_loads, 10.0, 3.0, 10);
        ("Figure 5b (n=100, clan 60)", 100, 60, None, paper_loads, 10.0, 3.0, 10);
        ("Figure 5c (n=150, clan 80, q=2)", 150, 80, Some 2, paper_loads, 10.0, 3.0, 25);
      ]

let fig5 which () =
  let sizes = fig5_sizes () in
  let idx = match which with `A -> 0 | `B -> 1 | `C -> 2 in
  if idx < List.length sizes then begin
    let title, n, nc, multi, loads, duration, warmup, scale = List.nth sizes idx in
    section_header
      (Printf.sprintf "%s — throughput vs latency [%s profile]" title profile_name);
    let protocols =
      [ Runner.Full; Runner.Single_clan { nc } ]
      @ (match multi with Some q -> [ Runner.Multi_clan { q } ] | None -> [])
    in
    List.iter
      (fun protocol ->
        let points =
          List.map (fun load -> run_point ~n ~protocol ~load ~duration ~warmup ~scale) loads
        in
        print_figure_rows (Runner.protocol_label protocol) points)
      protocols;
    Printf.printf
      "\n  Expected shape (paper): Sailfish saturates first; single-clan reaches\n\
      \  higher throughput with lower latency; multi-clan roughly doubles the\n\
      \  single-clan throughput at n=150.\n"
  end

(* Figure 6 re-presents the Figure 5c sweep as throughput vs input load. *)
let fig6 () =
  let sizes = fig5_sizes () in
  let title, n, nc, multi, loads, duration, warmup, scale =
    List.nth sizes (List.length sizes - 1)
  in
  ignore title;
  section_header
    (Printf.sprintf
       "Figure 6. Throughput vs transactions per proposal at n=%d [%s profile]" n
       profile_name);
  let protocols =
    [ Runner.Full; Runner.Single_clan { nc } ]
    @ (match multi with Some q -> [ Runner.Multi_clan { q } ] | None -> [])
  in
  (* Warm the cache first so progress lines don't interleave the table. *)
  List.iter
    (fun load ->
      List.iter
        (fun protocol -> ignore (run_point ~n ~protocol ~load ~duration ~warmup ~scale))
        protocols)
    loads;
  Printf.printf "  %-12s" "load";
  List.iter (fun p -> Printf.printf "%26s" (Runner.protocol_label p)) protocols;
  Printf.printf "\n";
  List.iter
    (fun load ->
      Printf.printf "  %-12d" load;
      List.iter
        (fun protocol ->
          let r = run_point ~n ~protocol ~load ~duration ~warmup ~scale in
          Printf.printf "%20.1f kTPS" r.throughput_ktps)
        protocols;
      Printf.printf "\n%!")
    loads

(* ------------------------------------------------------------------ *)
(* Ablation A1: latency architecture comparison (§1, §8) *)

let ablation_latency () =
  section_header "Ablation A1. Good-case commit latency by architecture (units of delta)";
  List.iter
    (fun d ->
      Printf.printf "  %-28s %2d delta  (%6.0f ms at delta = 100 ms)\n"
        (Latency_model.name d) (Latency_model.deltas d)
        (Latency_model.estimate_ms ~delta_ms:100.0 d))
    Latency_model.all;
  (* Cross-check the 3-delta claim against the simulator: uniform topology,
     negligible payload, measure mean commit latency / delta. *)
  let delta_ms = 40.0 in
  let r =
    Runner.run
      {
        Runner.default_spec with
        n = 10;
        topology = `Uniform delta_ms;
        txns_per_proposal = 1;
        duration = Time.s 8.;
        warmup = Time.s 2.;
      }
  in
  Printf.printf
    "\n  Measured (simulated Sailfish, n=10, uniform delta=%.0f ms):\n\
    \  mean commit latency %.1f ms = %.2f delta  (leaders commit at 3delta,\n\
    \  non-leaders at 5delta; commit-by-ALL-replicas adds up to one more delta)\n"
    delta_ms r.latency_mean_ms
    (r.latency_mean_ms /. delta_ms);
  (* And the PoA-then-order architectures, measured end to end on the same
     simulator (benign case, Poisson-free fixed submission cadence). *)
  let measure_poa name params =
    let n = 10 in
    let topology = Topology.uniform ~n ~one_way_ms:delta_ms in
    let world =
      Poa_smr.create ~n ~params:{ params with Poa_smr.batch_interval = Time.ms (2.0 *. delta_ms) }
        ~topology ~net_config:{ Net.default_config with jitter = 0.0 }
        ~seed:5L ~payload_bytes:512 ()
    in
    let engine = Poa_smr.engine world in
    for i = 0 to 59 do
      Engine.schedule_at engine (Time.ms (float_of_int (50 * i))) (fun () ->
          Poa_smr.submit_payload world ~proposer:(i mod n))
    done;
    Engine.run ~until:(Time.s 12.) engine;
    Printf.printf "  %-28s measured %7.1f ms = %.2f delta  (%d payloads)\n" name
      (Poa_smr.mean_commit_latency_ms world)
      (Poa_smr.mean_commit_latency_ms world /. delta_ms)
      (Poa_smr.committed world)
  in
  Printf.printf "\n  PoA-then-order designs, same delta, measured:\n";
  measure_poa "straw-man (3-hop SMR)" Poa_smr.strawman;
  measure_poa "Arete-style (Jolteon, 5-hop)" Poa_smr.arete

(* ------------------------------------------------------------------ *)
(* Ablation A2: RBC primitives — rounds and bytes *)

let ablation_rbc () =
  section_header "Ablation A2. Reliable broadcast primitives (n=40, clan 16, 1 MB value)";
  let n = 40 in
  let clan = Array.init 16 (fun i -> i) in
  Printf.printf "  %-16s %14s %14s %12s\n" "protocol" "latency (ms)" "total MB" "messages";
  List.iter
    (fun protocol ->
      let engine = Engine.create () in
      let topology = Topology.gcp_table1 ~n in
      let net =
        Net.create ~engine ~topology ~config:Net.default_config
          ~size:(Rbc.msg_size ~n) ~rng:(Rng.create 13L) ()
      in
      let keychain = Crypto.Keychain.create ~seed:17L ~n in
      let last_delivery = ref 0 in
      let nodes =
        Array.init n (fun me ->
            Rbc.create ~me ~n ~clan ~protocol ~engine ~net ~keychain
              ~on_deliver:(fun ~sender:_ ~round:_ _ ->
                last_delivery := max !last_delivery (Engine.now engine))
              ())
      in
      Rbc.broadcast nodes.(0) ~round:1 (String.make 1_000_000 'x');
      Engine.run engine;
      Printf.printf "  %-16s %14.1f %14.2f %12d\n"
        (Rbc.protocol_name protocol)
        (Time.to_ms !last_delivery)
        (float_of_int (Net.total_bytes net) /. 1e6)
        (Net.total_messages net))
    Rbc.[ Bracha; Signed_two_round; Tribe_bracha; Tribe_signed ];
  Printf.printf
    "\n  Tribe-assisted variants ship the payload to the clan only (16/40 nodes);\n\
    \  the signed variants finish one message round earlier.\n"

(* ------------------------------------------------------------------ *)
(* Ablation A3: behaviour under injected faults (adversary harness) *)

let faults () =
  section_header
    "Ablation A3. Tribe-assisted RBC and full SMR under injected faults";
  let n = 40 and nc = 16 in
  let clan = Committee.elect_balanced ~n ~nc in
  let fc = ((nc + 1) / 2) - 1 in
  let value = String.make 100_000 'x' in
  (* One Byzantine sender scenario per tribe protocol: the sender reveals
     the payload to the bare minimum f_c+1 clan members, and the network
     drops every ECHO addressed to one stiffed clan member — that member
     agrees on the digest via READYs/certificate with an empty echo table,
     the regression that used to stall its pull path forever. *)
  let rbc_scenario protocol behaviour plan_specs =
    let engine = Engine.create () in
    let topology = Topology.gcp_table1 ~n in
    let rng = Rng.create 911L in
    let net =
      Net.create ~engine ~topology ~config:Net.default_config
        ~size:(Rbc.msg_size ~n) ~rng ()
    in
    let keychain = Crypto.Keychain.create ~seed:17L ~n in
    let plan =
      match Faults.plan_of_specs ~rules:plan_specs () with
      | Ok p -> p
      | Error e -> failwith e
    in
    let injector =
      if Faults.is_empty plan then None
      else
        Some
          (Faults.install ~engine ~net ~rng:(Rng.split rng)
             ~classify:Rbc.msg_tag ~round_of:Rbc.msg_round plan)
    in
    let values = ref 0 and digests = ref 0 and last = ref 0 in
    let _nodes =
      Array.init n (fun me ->
          if me = 0 then begin
            Net.set_handler net me (fun ~src:_ _ -> ());
            None
          end
          else
            Some
              (Rbc.create ~me ~n ~clan ~protocol ~engine ~net ~keychain
                 ~on_deliver:(fun ~sender:_ ~round:_ outcome ->
                   last := Engine.now engine;
                   match outcome with
                   | Rbc.Value _ -> incr values
                   | Rbc.Digest_only _ -> incr digests)
                 ()))
    in
    Adversary.run ~sender:0 ~n ~clan ~protocol ~net ~round:1 behaviour;
    Engine.run ~until:(Time.s 30.) engine;
    Printf.printf "  %-16s %-22s %3d full %3d digest %5.0f ms%s\n"
      (Rbc.protocol_name protocol)
      (Adversary.behaviour_name behaviour)
      !values !digests (Time.to_ms !last)
      (match injector with
      | None -> ""
      | Some i -> Printf.sprintf "  (%d msgs dropped)" (Faults.dropped i))
  in
  Printf.printf
    "  Byzantine sender 0, n=%d, clan %d (f_c=%d), 100 kB value, 30 s horizon:\n"
    n nc fc;
  List.iter
    (fun protocol ->
      rbc_scenario protocol
        (Adversary.Withhold { value; reveal = fc + 1 })
        [ Printf.sprintf "drop:kind=echo:dst=%d" clan.(nc - 1) ])
    Rbc.[ Tribe_bracha; Tribe_signed ];
  List.iter
    (fun protocol ->
      rbc_scenario protocol
        (Adversary.Equivocate_biased
           { value; decoy = String.make 100_000 'y'; decoys = 1 })
        [])
    Rbc.[ Bracha; Signed_two_round; Tribe_bracha; Tribe_signed ];
  (* Full-protocol run under a pre-GST partition plus lossy links: agreement
     must hold and the system must still commit after the partition heals. *)
  Printf.printf
    "\n  Single-clan SMR under a 2 s partition + 20%% proposal loss until 4 s:\n";
  let plan =
    match
      Faults.plan_of_specs
        ~rules:[ "drop=0.2:kind=val:until=4s" ]
        ~partitions:[ "0,1,2,3,4,5,6,7|8,9,10,11,12,13,14,15:until=2s" ]
        ()
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let spec =
    {
      Runner.default_spec with
      n = 16;
      protocol = Runner.Single_clan { nc = 11 };
      txns_per_proposal = 100;
      duration = Time.s 10.;
      warmup = Time.s 4.;
      fault_plan = plan;
    }
  in
  let r, secs = wall (fun () -> Runner.run spec) in
  Printf.printf
    "  %-26s -> %8.1f kTPS  %7.1f ms  agree=%b  [%4.0fs wall]\n" r.label
    r.throughput_ktps r.latency_mean_ms r.agreement secs;
  if not r.agreement then begin
    Printf.eprintf "  AGREEMENT VIOLATED under faults\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Metrics dumps: per-protocol observability registries (Fig. 5 companion) *)

let metrics_dir = "bench_metrics"

let sanitize_label label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    label

let metrics () =
  section_header
    (Printf.sprintf
       "Metrics dumps — per-protocol registries under %s/ [%s profile]"
       metrics_dir profile_name);
  if not (Sys.file_exists metrics_dir) then Unix.mkdir metrics_dir 0o755;
  let n, nc, duration, warmup, load =
    match profile with
    | Quick -> (16, 11, 4.0, 1.0, 100)
    | Paper | Full -> (50, 32, 6.0, 2.0, 500)
  in
  let protocols =
    [ Runner.Full; Runner.Single_clan { nc }; Runner.Multi_clan { q = 2 } ]
  in
  List.iter
    (fun protocol ->
      let obs = Obs.metrics_only () in
      let spec =
        {
          Runner.default_spec with
          n;
          protocol;
          txns_per_proposal = load;
          duration = Time.s duration;
          warmup = Time.s warmup;
          obs = Some obs;
        }
      in
      let r, secs = wall (fun () -> Runner.run spec) in
      Printf.printf "\n  %-26s %8.1f kTPS  %7.1f ms  agree=%b  [%3.0fs wall]\n"
        r.label r.throughput_ktps r.latency_mean_ms r.agreement secs;
      (* Per-kind byte breakdown: the numbers behind Fig. 5's bandwidth
         story — clan modes shift bytes from val (payload) to header-sized
         vertex/echo/ready traffic. *)
      Printf.printf "  %-12s %14s %12s %9s\n" "kind" "bytes" "messages" "share";
      let total = float_of_int (max 1 r.bytes_total) in
      let rows =
        Metrics.fold obs.Obs.metrics ~init:[] ~f:(fun acc ~name ~labels v ->
            match (name, labels, v) with
            | "net_bytes_by_kind", [ ("kind", k) ], Metrics.Counter_v b ->
                let msgs =
                  match
                    Metrics.find obs.Obs.metrics ~labels "net_messages_by_kind"
                  with
                  | Some (Metrics.Counter_v m) -> m
                  | _ -> 0
                in
                (k, b, msgs) :: acc
            | _ -> acc)
      in
      List.iter
        (fun (k, b, m) ->
          Printf.printf "  %-12s %14d %12d %8.1f%%\n" k b m
            (100.0 *. float_of_int b /. total))
        (List.sort (fun (_, a, _) (_, b, _) -> compare b a) rows);
      let path =
        Filename.concat metrics_dir
          (sanitize_label (Runner.protocol_label protocol) ^ ".metrics.json")
      in
      Metrics.write_json obs.Obs.metrics path;
      Printf.printf "  registry -> %s\n%!" path)
    protocols

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel) *)

let micro () =
  section_header "Micro-benchmarks (bechamel; ns per operation)";
  let open Bechamel in
  let open Toolkit in
  let payload_1k = String.make 1024 'x' in
  let kc = Crypto.Keychain.create ~seed:1L ~n:100 in
  let txns =
    Array.init 100 (fun i -> Transaction.make ~id:i ~client:0 ~created_at:0 ())
  in
  let block = Block.make ~proposer:0 ~round:1 ~txns in
  let echo =
    Msg.Echo
      {
        round = 1;
        source = 0;
        vertex_digest = Block.digest block;
        signer = 3;
        signature = Crypto.Keychain.sign kc ~signer:3 "x";
      }
  in
  let encoded_echo = Codec.encode ~n:100 echo in
  let rng = Rng.create 99L in
  let tests =
    Test.make_grouped ~name:"clanbft"
      [
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () ->
            ignore (Crypto.Sha256.digest_string payload_1k)));
        Test.make ~name:"block-digest-100txn" (Staged.stage (fun () ->
            ignore (Block.make ~proposer:0 ~round:1 ~txns)));
        Test.make ~name:"binomial-C(500,166)-cached" (Staged.stage (fun () ->
            ignore (Committee.binomial 500 166)));
        Test.make ~name:"codec-encode-echo" (Staged.stage (fun () ->
            ignore (Codec.encode ~n:100 echo)));
        Test.make ~name:"codec-decode-echo" (Staged.stage (fun () ->
            ignore (Codec.decode ~n:100 encoded_echo)));
        Test.make ~name:"rng-int" (Staged.stage (fun () -> ignore (Rng.int rng 1000)));
        Test.make ~name:"sign" (Staged.stage (fun () ->
            ignore (Crypto.Keychain.sign kc ~signer:1 payload_1k)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Bechamel.Time.second 0.3) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1);
    ("fig1", fig1);
    ("concrete", concrete);
    ("fig5a", fig5 `A);
    ("fig5b", fig5 `B);
    ("fig5c", fig5 `C);
    ("fig6", fig6);
    ("ablation-latency", ablation_latency);
    ("ablation-rbc", ablation_rbc);
    ("faults", faults);
    ("metrics", metrics);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  Printf.printf "clanbft benchmark harness — profile: %s\n" profile_name;
  Printf.printf "(set CLANBFT_BENCH=quick|paper|full to change scope)\n";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst sections)))
    requested;
  Printf.printf "\nTotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
