(* clanbft command-line interface.

     clanbft sim        — run a simulated experiment and print metrics
     clanbft sweep      — run a load sweep across worker domains
     clanbft profile    — run a scenario under the self-profiler (docs/PROFILING.md)
     clanbft analyze    — analyze a recorded JSONL trace (docs/ANALYSIS.md)
     clanbft clan-size  — exact committee sizing (Fig. 1 / §6.2 machinery)
     clanbft rbc        — broadcast one value through a chosen RBC variant
     clanbft latency    — architectural latency bounds (§1 / §8)          *)

open Cmdliner
open Clanbft
open Clanbft.Sim

(* ------------------------------------------------------------------ *)
(* sim *)

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "full" | "sailfish" -> Ok `Full
    | "single-clan" | "single" -> Ok `Single
    | "multi-clan" | "multi" -> Ok `Multi
    | "sparse" -> Ok `Sparse
    | _ -> Error (`Msg "expected full | single-clan | multi-clan | sparse")
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with
      | `Full -> "full"
      | `Single -> "single-clan"
      | `Multi -> "multi-clan"
      | `Sparse -> "sparse")
  in
  Arg.conv (parse, print)

(* Shared fault-plan flags (see Faults DSL docs / EXPERIMENTS.md). *)
let fault_flags =
  let faults =
    Arg.(value & opt_all string []
         & info [ "fault" ]
             ~doc:"Fault rule, e.g. $(b,drop=0.5:kind=echo:dst=8:until=3s), \
                   $(b,delay=10ms..80ms:src=1) or $(b,dup=2:kind=val). Repeatable.")
  in
  let partitions =
    Arg.(value & opt_all string []
         & info [ "partition" ]
             ~doc:"Network partition, e.g. $(b,0,1,2|3,4:until=2s) (heals at \
                   2 s). Repeatable.")
  in
  let mutes =
    Arg.(value & opt_all string []
         & info [ "mute" ]
             ~doc:"Mute a node, e.g. $(b,3:round=10) or $(b,3:time=2s). \
                   Repeatable.")
  in
  Term.(
    const (fun faults partitions mutes ->
        match Faults.plan_of_specs ~rules:faults ~partitions ~mutes () with
        | Ok plan -> plan
        | Error e ->
            Printf.eprintf "bad fault spec: %s\n" e;
            Stdlib.exit 2)
    $ faults $ partitions $ mutes)

let restarts_flag =
  let restarts =
    Arg.(value & opt_all string []
         & info [ "restart" ]
             ~doc:"Crash–recovery schedule for one replica, \
                   $(b,NODE\\@CRASH:RECOVER), e.g. $(b,3\\@4s:8s): replica 3 \
                   crashes at 4 s and restarts from its write-ahead log at \
                   8 s. Repeatable (at most once per replica).")
  in
  Term.(
    const (fun specs ->
        match Faults.restarts_of_specs specs with
        | Ok rs -> rs
        | Error e ->
            Printf.eprintf "bad restart spec: %s\n" e;
            Stdlib.exit 2)
    $ restarts)

let adversaries_flag =
  let advs =
    Arg.(value & opt_all string []
         & info [ "adversary" ]
             ~doc:"Strategic adversary occupying a node for the whole run, \
                   $(b,NODE\\@STRATEGY[:ARG]): $(b,3\\@equivocate), \
                   $(b,3\\@censor:5) (censor node 5), $(b,3\\@grief:0.8) \
                   (proposals ride at 0.8 x round_timeout), $(b,3\\@storm:32) \
                   (sync-request amplification) or $(b,3\\@reorder:2ms). \
                   Repeatable; see docs/ATTACKS.md.")
  in
  Term.(
    const (fun specs ->
        match Strategy.of_specs specs with
        | Ok a -> a
        | Error e ->
            Printf.eprintf "bad adversary spec: %s\n" e;
            Stdlib.exit 2)
    $ advs)

let sim_cmd =
  let run n protocol nc q sparse_k load size duration warmup seed uniform
      crashed fault_plan restarts adversaries persist trace trace_chrome
      metrics_out verbose =
    if verbose then begin
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.set_level (Some Logs.Debug)
    end;
    let protocol =
      match protocol with
      | `Full -> Runner.Full
      | `Single ->
          let nc =
            match nc with
            | Some nc -> nc
            | None -> (
                let threshold = Bigint.Rat.of_ints 1 1_000_000 in
                match
                  Committee.min_clan_size ~n ~f:(Committee.default_f n) ~threshold ()
                with
                | Some nc -> nc
                | None -> n)
          in
          Runner.Single_clan { nc }
      | `Multi -> Runner.Multi_clan { q }
      | `Sparse -> Runner.Sparse { k = sparse_k }
    in
    List.iter
      (fun (s : Strategy.spec) ->
        if s.node >= n then begin
          Printf.eprintf "bad adversary spec: node %d out of range for n=%d\n"
            s.node n;
          Stdlib.exit 2
        end)
      adversaries;
    let run_with obs =
      Runner.run
        {
          Runner.default_spec with
          n;
          protocol;
          txns_per_proposal = load;
          txn_size = size;
          duration = Time.s duration;
          warmup = Time.s warmup;
          seed = Int64.of_int seed;
          topology = (match uniform with Some ms -> `Uniform ms | None -> `Gcp);
          crashed;
          fault_plan;
          restarts;
          adversaries;
          persist;
          obs;
        }
    in
    (* A plain --trace streams each event straight to the JSONL file, so
       long runs never hold the trace in memory; --trace-chrome needs the
       full buffer (span pairing), and then a co-requested --trace is
       written from the same buffer. Metrics alone skip the buffer too. *)
    let streamed = trace <> None && trace_chrome = None in
    let r, obs =
      if streamed then
        Runner.with_streamed_trace ~path:(Option.get trace) (fun obs ->
            (run_with (Some obs), Some obs))
      else
        let obs =
          if trace <> None || trace_chrome <> None then Some (Obs.create ())
          else if metrics_out <> None then Some (Obs.metrics_only ())
          else None
        in
        (run_with obs, obs)
    in
    Format.printf "%a@." Runner.pp_result r;
    Format.printf
      "committed %d txns over %d rounds; %d leaders; %.1f MB total traffic@."
      r.committed_txns r.rounds r.leaders_committed
      (float_of_int r.bytes_total /. 1e6);
    (* The CI determinism and agreement gates key on the fingerprint —
       including the profile stage, which asserts a profiled run commits
       the exact sequence an unprofiled one does. *)
    Format.printf "commit fingerprint: %d@." r.commit_fingerprint;
    if restarts <> [] then
      List.iter
        (fun (node, commits) ->
          Format.printf "post-recovery commits [replica %d]: %d@." node commits)
        r.post_recovery_commits;
    (match obs with
    | None -> ()
    | Some o ->
        Option.iter
          (fun path ->
            if not streamed then Trace.write_jsonl o.Obs.trace path;
            Format.printf "trace: %d events -> %s@." (Trace.length o.Obs.trace) path)
          trace;
        Option.iter
          (fun path ->
            Trace.write_chrome o.Obs.trace path;
            Format.printf "chrome trace: %d events -> %s@."
              (Trace.length o.Obs.trace) path)
          trace_chrome;
        Option.iter
          (fun path ->
            Metrics.write_json o.Obs.metrics path;
            Format.printf "metrics -> %s@." path)
          metrics_out);
    if not r.agreement then exit 1
  in
  let n = Arg.(value & opt int 16 & info [ "n" ] ~doc:"Tribe size.") in
  let protocol =
    Arg.(value & opt protocol_conv `Single
         & info [ "p"; "protocol" ] ~doc:"full | single-clan | multi-clan | sparse.")
  in
  let nc =
    Arg.(value & opt (some int) None
         & info [ "clan-size" ] ~doc:"Clan size (single-clan); default: exact minimum at 1e-6.")
  in
  let q = Arg.(value & opt int 2 & info [ "clans" ] ~doc:"Clan count (multi-clan).") in
  let sparse_k =
    Arg.(value & opt int 3
         & info [ "sparse-k" ]
             ~doc:"Sampled strong parents per vertex (sparse protocol).")
  in
  let load =
    Arg.(value & opt int 500 & info [ "load" ] ~doc:"Transactions per proposal.")
  in
  let size = Arg.(value & opt int 512 & info [ "txn-size" ] ~doc:"Transaction bytes.") in
  let duration = Arg.(value & opt float 10.0 & info [ "duration" ] ~doc:"Simulated seconds.") in
  let warmup = Arg.(value & opt float 3.0 & info [ "warmup" ] ~doc:"Warm-up seconds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let uniform =
    Arg.(value & opt (some float) None
         & info [ "uniform" ] ~doc:"Uniform one-way delay (ms) instead of the GCP topology.")
  in
  let crashed =
    Arg.(value & opt (list int) [] & info [ "crash" ] ~doc:"Replica ids that never start.")
  in
  let persist =
    Arg.(value & flag
         & info [ "persist" ]
             ~doc:"Run every replica over the simulated persistence layer \
                   (journal deliveries to a write-ahead log). Implied by \
                   $(b,--restart).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a structured event trace and write it as JSONL \
                   (one JSON object per line; schema in docs/OBSERVABILITY.md).")
  in
  let trace_chrome =
    Arg.(value & opt (some string) None
         & info [ "trace-chrome" ] ~docv:"FILE"
             ~doc:"Record a trace and write it in Chrome trace_event format \
                   (load in chrome://tracing or ui.perfetto.dev).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Dump the metric registry (counters, gauges, histograms) \
                   as JSON at the end of the run.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logs.") in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run a simulated geo-distributed experiment")
    Term.(
      const run $ n $ protocol $ nc $ q $ sparse_k $ load $ size $ duration
      $ warmup $ seed $ uniform $ crashed $ fault_flags $ restarts_flag
      $ adversaries_flag $ persist $ trace $ trace_chrome $ metrics_out
      $ verbose)

(* ------------------------------------------------------------------ *)
(* clan-size *)

let clan_size_cmd =
  let run n f q exponent =
    let f = match f with Some f -> f | None -> Committee.default_f n in
    let threshold = Bigint.Rat.pow2 (-exponent) in
    Printf.printf "n=%d f=%d threshold=2^-%d\n" n f exponent;
    match Committee.min_clan_size ~q ~n ~f ~threshold () with
    | Some nc ->
        let p =
          if q = 1 then Committee.single_clan_failure ~n ~f ~nc
          else Committee.multi_clan_failure ~n ~f ~q ~nc
        in
        Printf.printf "minimum clan size: %d (exact failure %s)\n" nc
          (Bigint.Rat.to_scientific p)
    | None -> Printf.printf "no clan size up to n/q achieves the threshold\n"
  in
  let n = Arg.(value & opt int 500 & info [ "n" ] ~doc:"Tribe size.") in
  let f = Arg.(value & opt (some int) None & info [ "f" ] ~doc:"Byzantine bound.") in
  let q = Arg.(value & opt int 1 & info [ "clans" ] ~doc:"Number of disjoint clans.") in
  let mu = Arg.(value & opt int 30 & info [ "mu" ] ~doc:"Security exponent (2^-mu).") in
  Cmd.v
    (Cmd.info "clan-size" ~doc:"Exact minimum clan size (hypergeometric / Eq. 3-7)")
    Term.(const run $ n $ f $ q $ mu)

(* ------------------------------------------------------------------ *)
(* rbc *)

let rbc_cmd =
  let run n nc protocol bytes adversary reveal decoys seed duration fault_plan =
    let protocol =
      match String.lowercase_ascii protocol with
      | "bracha" -> Rbc.Bracha
      | "signed" -> Rbc.Signed_two_round
      | "tribe-bracha" -> Rbc.Tribe_bracha
      | "tribe-signed" -> Rbc.Tribe_signed
      | _ ->
          prerr_endline "protocol: bracha | signed | tribe-bracha | tribe-signed";
          exit 2
    in
    let value = String.make bytes 'x' in
    let behaviour =
      (* Default reveal is f_c + 1: the smallest clan exposure that still
         lets the echo quorum form, forcing the rest of the clan to pull. *)
      let reveal = match reveal with Some r -> r | None -> (nc + 1) / 2 in
      let decoy = String.make bytes 'y' in
      match String.lowercase_ascii adversary with
      | "none" -> None
      | "silent" -> Some Adversary.Silent
      | "equivocate" -> Some (Adversary.Equivocate { values = [ value; decoy ] })
      | "equivocate-biased" ->
          Some (Adversary.Equivocate_biased { value; decoy; decoys })
      | "withhold" -> Some (Adversary.Withhold { value; reveal })
      | _ ->
          prerr_endline
            "adversary: none | silent | equivocate | equivocate-biased | withhold";
          exit 2
    in
    let engine = Engine.create () in
    let topology = Topology.gcp_table1 ~n in
    let rng = Util.Rng.create (Int64.of_int seed) in
    let net =
      Net.create ~engine ~topology ~config:Net.default_config
        ~size:(Rbc.msg_size ~n) ~rng ()
    in
    let keychain = Crypto.Keychain.create ~seed:3L ~n in
    let clan = Committee.elect_balanced ~n ~nc in
    let deliveries = ref [] and last = ref 0 in
    let nodes =
      Array.init n (fun me ->
          if me = 0 && behaviour <> None then begin
            (* The Byzantine sender runs no honest instance. *)
            Net.set_handler net me (fun ~src:_ _ -> ());
            None
          end
          else
            Some
              (Rbc.create ~me ~n ~clan ~protocol ~engine ~net ~keychain
                 ~on_deliver:(fun ~sender:_ ~round:_ outcome ->
                   last := Engine.now engine;
                   deliveries := (me, outcome) :: !deliveries)
                 ()))
    in
    let injector =
      if Faults.is_empty fault_plan then None
      else
        Some
          (Faults.install ~engine ~net ~rng:(Util.Rng.split rng)
             ~classify:Rbc.msg_tag ~round_of:Rbc.msg_round fault_plan)
    in
    (match behaviour with
    | None -> Rbc.broadcast (Option.get nodes.(0)) ~round:1 value
    | Some b -> Adversary.run ~sender:0 ~n ~clan ~protocol ~net ~round:1 b);
    (* Adversarial scenarios can legitimately never deliver (e.g. a silent
       or cleanly equivocating sender), so bound the run. *)
    if behaviour = None && injector = None then Engine.run engine
    else Engine.run ~until:(Time.s duration) engine;
    let values =
      List.length
        (List.filter (fun (_, o) -> match o with Rbc.Value _ -> true | _ -> false)
           !deliveries)
    in
    let digests = List.length !deliveries - values in
    let honest = Array.to_list nodes |> List.filter_map Fun.id in
    let stalled = List.length honest - List.length !deliveries in
    let distinct =
      List.sort_uniq compare
        (List.map
           (fun (_, o) ->
             match o with
             | Rbc.Value v -> Crypto.Digest32.to_raw (Crypto.Digest32.hash_string v)
             | Rbc.Digest_only d -> Crypto.Digest32.to_raw d)
           !deliveries)
    in
    (match behaviour with
    | None -> ()
    | Some b ->
        Printf.printf "adversary: %s (sender 0, seed %d)\n"
          (Adversary.behaviour_name b) seed);
    Printf.printf
      "%s: %d/%d honest nodes delivered (%d full values, %d digests, %d stalled)\n"
      (Rbc.protocol_name protocol)
      (List.length !deliveries) (List.length honest) values digests stalled;
    Printf.printf "agreement: %s\n"
      (if List.length distinct <= 1 then "ok (single digest)"
       else Printf.sprintf "VIOLATED (%d distinct digests)" (List.length distinct));
    if !deliveries <> [] then
      Printf.printf "last delivery at %.1f ms; %.2f MB total on the wire\n"
        (Time.to_ms !last)
        (float_of_int (Net.total_bytes net) /. 1e6);
    (match injector with
    | None -> ()
    | Some i ->
        Printf.printf "fault injector: %d dropped, %d delayed, %d duplicated\n"
          (Faults.dropped i) (Faults.delayed i) (Faults.duplicated i));
    if List.length distinct > 1 then exit 1
  in
  let n = Arg.(value & opt int 40 & info [ "n" ] ~doc:"Tribe size.") in
  let nc = Arg.(value & opt int 16 & info [ "clan-size" ] ~doc:"Clan size.") in
  let protocol =
    Arg.(value & opt string "tribe-signed" & info [ "p"; "protocol" ] ~doc:"RBC variant.")
  in
  let bytes = Arg.(value & opt int 1_000_000 & info [ "bytes" ] ~doc:"Value size.") in
  let adversary =
    Arg.(value & opt string "none"
         & info [ "adversary" ]
             ~doc:"Byzantine sender behaviour: $(b,none) | $(b,silent) | \
                   $(b,equivocate) | $(b,equivocate-biased) | $(b,withhold).")
  in
  let reveal =
    Arg.(value & opt (some int) None
         & info [ "reveal" ]
             ~doc:"Clan members the withholding sender sends the full value \
                   to (default: exactly f_c+1).")
  in
  let decoys =
    Arg.(value & opt int 1
         & info [ "decoys" ]
             ~doc:"Recipients fed the decoy value by equivocate-biased.")
  in
  let seed = Arg.(value & opt int 77 & info [ "seed" ] ~doc:"Random seed.") in
  let dur =
    Arg.(value & opt float 60.0
         & info [ "duration" ] ~doc:"Simulated horizon (s) for adversarial runs.")
  in
  Cmd.v
    (Cmd.info "rbc"
       ~doc:"Run one reliable-broadcast instance (optionally under a \
             Byzantine sender and injected network faults) and report cost")
    Term.(
      const run $ n $ nc $ protocol $ bytes $ adversary $ reveal $ decoys $ seed
      $ dur $ fault_flags)

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweep_cmd =
  let run n protocol nc q sparse_k loads size duration warmup seed uniform
      restarts jobs =
    let protocol =
      match protocol with
      | `Full -> Runner.Full
      | `Single ->
          let nc =
            match nc with
            | Some nc -> nc
            | None -> (
                let threshold = Bigint.Rat.of_ints 1 1_000_000 in
                match
                  Committee.min_clan_size ~n ~f:(Committee.default_f n) ~threshold ()
                with
                | Some nc -> nc
                | None -> n)
          in
          Runner.Single_clan { nc }
      | `Multi -> Runner.Multi_clan { q }
      | `Sparse -> Runner.Sparse { k = sparse_k }
    in
    let specs =
      Array.of_list
        (List.mapi
           (fun i load ->
             {
               Runner.default_spec with
               n;
               protocol;
               txns_per_proposal = load;
               txn_size = size;
               duration = Time.s duration;
               warmup = Time.s warmup;
               (* Each point gets its own seed so results do not depend on
                  which worker domain ran it or in what order. *)
               seed = Int64.add (Int64.of_int seed) (Int64.of_int (i * 7919));
               topology = (match uniform with Some ms -> `Uniform ms | None -> `Gcp);
               restarts;
             })
           loads)
    in
    let jobs = match jobs with Some j -> j | None -> Util.Pool.default_jobs () in
    Printf.eprintf "sweeping %d points across %d worker domain(s)\n%!"
      (Array.length specs) jobs;
    let results =
      Util.Pool.with_pool ~jobs (fun pool -> Runner.run_many ~pool specs)
    in
    Array.iter (fun r -> Format.printf "%a@." Runner.pp_result r) results;
    if Array.exists (fun (r : Runner.result) -> not r.agreement) results then
      exit 1
  in
  let n = Arg.(value & opt int 16 & info [ "n" ] ~doc:"Tribe size.") in
  let protocol =
    Arg.(value & opt protocol_conv `Single
         & info [ "p"; "protocol" ] ~doc:"full | single-clan | multi-clan | sparse.")
  in
  let nc =
    Arg.(value & opt (some int) None
         & info [ "clan-size" ] ~doc:"Clan size (single-clan); default: exact minimum at 1e-6.")
  in
  let q = Arg.(value & opt int 2 & info [ "clans" ] ~doc:"Clan count (multi-clan).") in
  let sparse_k =
    Arg.(value & opt int 3
         & info [ "sparse-k" ]
             ~doc:"Sampled strong parents per vertex (sparse protocol).")
  in
  let loads =
    Arg.(value & opt (list int) [ 125; 500; 1500; 3000; 6000 ]
         & info [ "loads" ] ~doc:"Comma-separated transactions-per-proposal sweep.")
  in
  let size = Arg.(value & opt int 512 & info [ "txn-size" ] ~doc:"Transaction bytes.") in
  let duration = Arg.(value & opt float 10.0 & info [ "duration" ] ~doc:"Simulated seconds.") in
  let warmup = Arg.(value & opt float 3.0 & info [ "warmup" ] ~doc:"Warm-up seconds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base random seed.") in
  let uniform =
    Arg.(value & opt (some float) None
         & info [ "uniform" ] ~doc:"Uniform one-way delay (ms) instead of the GCP topology.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains (default: $(b,CLANBFT_JOBS) or the \
                   recommended domain count).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a load sweep (one simulation per load point) across worker \
             domains; results print in load order and are independent of \
             scheduling")
    Term.(
      const run $ n $ protocol $ nc $ q $ sparse_k $ loads $ size $ duration
      $ warmup $ seed $ uniform $ restarts_flag $ jobs)

(* ------------------------------------------------------------------ *)
(* profile *)

let profile_cmd =
  let run n protocol nc q sparse_k load size duration warmup seed uniform
      persist folded_out json_out =
    let protocol =
      match protocol with
      | `Full -> Runner.Full
      | `Single ->
          let nc =
            match nc with
            | Some nc -> nc
            | None -> (
                let threshold = Bigint.Rat.of_ints 1 1_000_000 in
                match
                  Committee.min_clan_size ~n ~f:(Committee.default_f n) ~threshold ()
                with
                | Some nc -> nc
                | None -> n)
          in
          Runner.Single_clan { nc }
      | `Multi -> Runner.Multi_clan { q }
      | `Sparse -> Runner.Sparse { k = sparse_k }
    in
    Prof.set_enabled true;
    Prof.reset ();
    let r =
      Runner.run
        {
          Runner.default_spec with
          n;
          protocol;
          txns_per_proposal = load;
          txn_size = size;
          duration = Time.s duration;
          warmup = Time.s warmup;
          seed = Int64.of_int seed;
          topology = (match uniform with Some ms -> `Uniform ms | None -> `Gcp);
          persist;
        }
    in
    Prof.set_enabled false;
    Format.printf "%a@." Runner.pp_result r;
    Format.printf "commit fingerprint: %d@." r.commit_fingerprint;
    print_string (Prof.table ~census:r.census ());
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Prof.folded ());
        close_out oc;
        Format.printf "folded stacks -> %s@." path)
      folded_out;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Prof.to_json ~census:r.census ());
        close_out oc;
        Format.printf "profile json -> %s@." path)
      json_out;
    if not r.agreement then exit 1
  in
  let n = Arg.(value & opt int 16 & info [ "n" ] ~doc:"Tribe size.") in
  let protocol =
    Arg.(value & opt protocol_conv `Single
         & info [ "p"; "protocol" ] ~doc:"full | single-clan | multi-clan | sparse.")
  in
  let nc =
    Arg.(value & opt (some int) None
         & info [ "clan-size" ] ~doc:"Clan size (single-clan); default: exact minimum at 1e-6.")
  in
  let q = Arg.(value & opt int 2 & info [ "clans" ] ~doc:"Clan count (multi-clan).") in
  let sparse_k =
    Arg.(value & opt int 3
         & info [ "sparse-k" ]
             ~doc:"Sampled strong parents per vertex (sparse protocol).")
  in
  let load =
    Arg.(value & opt int 500 & info [ "load" ] ~doc:"Transactions per proposal.")
  in
  let size = Arg.(value & opt int 512 & info [ "txn-size" ] ~doc:"Transaction bytes.") in
  let duration = Arg.(value & opt float 10.0 & info [ "duration" ] ~doc:"Simulated seconds.") in
  let warmup = Arg.(value & opt float 3.0 & info [ "warmup" ] ~doc:"Warm-up seconds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let uniform =
    Arg.(value & opt (some float) None
         & info [ "uniform" ] ~doc:"Uniform one-way delay (ms) instead of the GCP topology.")
  in
  let persist =
    Arg.(value & flag
         & info [ "persist" ]
             ~doc:"Run every replica over the simulated persistence layer \
                   (exercises the WAL sections).")
  in
  let folded_out =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write folded call stacks (one $(b,a;b;c microseconds) line \
                   per call path) for flamegraph.pl or speedscope.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the profile as JSON (schema $(b,clanbft/profile/v1)); \
                   $(b,*_ns) fields are wall-clock and non-deterministic, \
                   everything else is byte-stable per seed.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a simulated scenario under the deterministic self-profiler: \
             per-section call counts, self/total wall time, allocation \
             attribution and a per-subsystem heap census (docs/PROFILING.md). \
             Profiling is pure observation — the run's commit fingerprint is \
             identical to an unprofiled run with the same seed.")
    Term.(
      const run $ n $ protocol $ nc $ q $ sparse_k $ load $ size $ duration
      $ warmup $ seed $ uniform $ persist $ folded_out $ json_out)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_cmd =
  let run trace_file json stall_factor top_slow =
    if stall_factor <= 0.0 then begin
      prerr_endline "--stall-factor must be positive";
      exit 2
    end;
    if top_slow < 0 then begin
      prerr_endline "--top-slow must be non-negative";
      exit 2
    end;
    let records = Analyze.load_jsonl trace_file in
    if records = [] then begin
      Printf.eprintf "no parseable trace records in %s\n" trace_file;
      exit 2
    end;
    let report = Analyze.analyze ~stall_factor records in
    print_string (if json then Analyze.to_json report else Analyze.human report);
    if top_slow > 0 && not json then begin
      let slowest =
        List.stable_sort
          (fun (a : Analyze.path) (b : Analyze.path) ->
            compare (b.p_commit - b.p_origin) (a.p_commit - a.p_origin))
          report.Analyze.paths
      in
      let rec take k = function
        | x :: tl when k > 0 -> x :: take (k - 1) tl
        | _ -> []
      in
      let ms us = float_of_int us /. 1000.0 in
      Printf.printf "\nSlowest commits (top %d of %d, creation -> commit)\n"
        (min top_slow (List.length slowest))
        (List.length slowest);
      Printf.printf "  %-5s %-6s %-5s %9s" "node" "round" "src" "total";
      Array.iter
        (fun s -> Printf.printf " %13s" (Analyze.segment_name s))
        Analyze.all_segments;
      print_newline ();
      List.iter
        (fun (p : Analyze.path) ->
          Printf.printf "  %-5d %-6d %-5d %7.1fms" p.p_node p.p_round p.p_source
            (ms (p.p_commit - p.p_origin));
          Array.iter (fun v -> Printf.printf " %11.1fms" (ms v)) p.p_segments;
          print_newline ())
        (take top_slow slowest)
    end
  in
  let trace_file =
    Arg.(required & opt (some file) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"JSONL trace recorded by $(b,clanbft sim --trace) (schema \
                   in docs/OBSERVABILITY.md).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Machine-readable output (schema $(b,clanbft/analysis/v1)) \
                   instead of the human report.")
  in
  let stall_factor =
    Arg.(value & opt float 5.0
         & info [ "stall-factor" ]
             ~doc:"Flag a liveness stall when a progress gap exceeds this \
                   multiple of the median inter-progress gap.")
  in
  let top_slow =
    Arg.(value & opt int 0
         & info [ "top-slow" ] ~docv:"K"
             ~doc:"Also print the K slowest commits with their five-segment \
                   critical-path breakdown (human report only).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analyze a recorded trace: commit critical-path attribution, \
             round timelines, uplink queueing, liveness stall detection \
             (docs/ANALYSIS.md)")
    Term.(const run $ trace_file $ json $ stall_factor $ top_slow)

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd =
  let run model protocol n rounds adversary late_join crashes sparse_k
      exhaustive delay_budget window max_actions no_dpor walks steps seed
      replay schedule_out trace_out =
    let module H = Check.Harness in
    let module E = Check.Explore in
    let module S = Check.Schedule in
    let fail2 msg =
      prerr_endline msg;
      Stdlib.exit 2
    in
    let spec_of_flags () =
      let model =
        match String.lowercase_ascii model with
        | "sailfish" -> H.Sailfish
        | "rbc" -> (
            match String.lowercase_ascii protocol with
            | "bracha" -> H.Rbc Rbc.Bracha
            | "signed" -> H.Rbc Rbc.Signed_two_round
            | "tribe-bracha" -> H.Rbc Rbc.Tribe_bracha
            | "tribe-signed" -> H.Rbc Rbc.Tribe_signed
            | _ -> fail2 "protocol: bracha | signed | tribe-bracha | tribe-signed")
        | _ -> fail2 "model: rbc | sailfish"
      in
      let adversary =
        match String.lowercase_ascii adversary with
        | "none" -> H.No_adversary
        | "equivocate" -> H.Equivocate
        | "collude" -> H.Collude
        | "grief" -> H.Grief
        | _ -> fail2 "adversary: none | equivocate | collude | grief"
      in
      (match (model, adversary) with
      | H.Rbc _, H.Grief -> fail2 "adversary grief needs --model sailfish"
      | H.Sailfish, (H.Equivocate | H.Collude) ->
          fail2 "the sailfish model takes adversary none or grief"
      | _ -> ());
      { H.model; n; rounds; adversary; late_join; crashes; sparse_k }
    in
    let model_name spec = List.assoc "model" (H.spec_meta spec) in
    let dump_trace world path =
      match H.obs world with
      | Some o ->
          Trace.write_jsonl o.Obs.trace path;
          Printf.printf "trace: %d events -> %s\n" (Trace.length o.Obs.trace) path
      | None -> ()
    in
    (* Print the counterexample with resolved delivery annotations and
       write the requested artifacts; the notes come from a deterministic
       re-run of the schedule. *)
    let report_schedule spec sched ~mode ~walk_seed ~invariant =
      let r = E.run_schedule spec sched in
      List.iter2
        (fun a note ->
          Printf.printf "  %-14s # %s\n" (S.action_to_string a) note)
        r.E.executed r.E.notes;
      (match schedule_out with
      | Some path ->
          let meta =
            H.spec_meta spec
            @ [ ("mode", mode); ("invariant", invariant) ]
            @
            match walk_seed with
            | Some s -> [ ("walk_seed", Int64.to_string s) ]
            | None -> []
          in
          S.save ~path ~meta ~notes:r.E.notes r.E.executed;
          Printf.printf "schedule -> %s\n" path
      | None -> ());
      match trace_out with
      | Some path ->
          let rt = E.run_schedule ~trace:true spec sched in
          dump_trace rt.E.world path
      | None -> ()
    in
    match replay with
    | Some path -> (
        match S.load path with
        | Error e -> fail2 ("bad schedule file: " ^ e)
        | Ok (meta, sched) -> (
            match H.spec_of_meta meta with
            | Error e -> fail2 ("bad schedule meta: " ^ e)
            | Ok spec -> (
                let r = E.run_schedule ~trace:(trace_out <> None) spec sched in
                (match r.E.error with
                | Some e -> fail2 ("schedule does not replay: " ^ e)
                | None -> ());
                Printf.printf "replayed %d actions (model=%s); state: %s\n"
                  (List.length r.E.executed) (model_name spec)
                  (H.state_line r.E.world);
                Option.iter (dump_trace r.E.world) trace_out;
                match r.E.run_violation with
                | Some v ->
                    Printf.printf "verdict: VIOLATION invariant=%s\n  %s\n"
                      v.H.invariant v.H.detail;
                    exit 1
                | None -> Printf.printf "verdict: ok\n")))
    | None -> (
        let spec = spec_of_flags () in
        let mode = if exhaustive then "exhaustive" else "walk" in
        let result =
          if exhaustive then
            E.exhaustive ~delay_budget ~window ~max_actions ~dpor:(not no_dpor)
              spec
          else E.walks ~max_actions:steps ~seed:(Int64.of_int seed) ~count:walks spec
        in
        let st = result.E.stats in
        Printf.printf
          "check: model=%s mode=%s runs=%d transitions=%d pruned=%d \
           max-depth=%d truncated=%d\n"
          (model_name spec) mode st.E.runs st.E.transitions st.E.pruned
          st.E.max_depth st.E.truncated;
        match result.E.violation with
        | None -> Printf.printf "verdict: ok (0 violations)\n"
        | Some v ->
            Printf.printf "verdict: VIOLATION invariant=%s\n  %s\n"
              v.H.invariant v.H.detail;
            Option.iter
              (fun s -> Printf.printf "walk seed: %Ld\n" s)
              result.E.seed;
            let minimized = E.minimize spec result.E.schedule in
            Printf.printf "schedule (%d actions, minimized from %d):\n"
              (List.length minimized)
              (List.length result.E.schedule);
            report_schedule spec minimized ~mode ~walk_seed:result.E.seed
              ~invariant:v.H.invariant;
            exit 1)
  in
  let model =
    Arg.(value & opt string "rbc"
         & info [ "model" ] ~doc:"What to check: $(b,rbc) | $(b,sailfish).")
  in
  let protocol =
    Arg.(value & opt string "tribe-bracha"
         & info [ "p"; "protocol" ]
             ~doc:"RBC family (with $(b,--model rbc)): bracha | signed | \
                   tribe-bracha | tribe-signed.")
  in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Tribe size (>= 4).") in
  let rounds =
    Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"Broadcast instances.")
  in
  let adversary =
    Arg.(value & opt string "none"
         & info [ "adversary" ]
             ~doc:"$(b,none) | $(b,equivocate) (1 fault, must stay safe) | \
                   $(b,collude) (2 faults vs f=1, must be caught) | \
                   $(b,grief) (timeout-edge proposal delay; Sailfish model).")
  in
  let late_join =
    Arg.(value & flag
         & info [ "late-join" ]
             ~doc:"Hold the last node out until first quiescence; it rejoins \
                   via request_sync (RBC models).")
  in
  let crashes =
    Arg.(value & opt int 0
         & info [ "crashes" ] ~doc:"Crash/recover scheduling-action budget.")
  in
  let check_sparse_k =
    Arg.(value & opt (some int) None
         & info [ "sparse-k" ]
             ~doc:"Run the Sailfish model over sparse edges with this many \
                   sampled strong parents per vertex (default: dense).")
  in
  let exhaustive =
    Arg.(value & flag
         & info [ "exhaustive" ]
             ~doc:"Delay-bounded exhaustive DFS instead of random walks.")
  in
  let delay_budget =
    Arg.(value & opt int 2
         & info [ "delay-budget" ] ~doc:"Deviation credits per schedule (DFS).")
  in
  let window =
    Arg.(value & opt int 4
         & info [ "window" ] ~doc:"Oldest pending deliveries considered (DFS).")
  in
  let max_actions =
    Arg.(value & opt int 400 & info [ "max-actions" ] ~doc:"Depth cap per run (DFS).")
  in
  let no_dpor =
    Arg.(value & flag
         & info [ "no-dpor" ] ~doc:"Disable sleep-set partial-order reduction.")
  in
  let walks =
    Arg.(value & opt int 1000 & info [ "walks" ] ~doc:"Random walks to run.")
  in
  let steps =
    Arg.(value & opt int 400 & info [ "steps" ] ~doc:"Action cap per walk.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master seed for the walks.")
  in
  let replay =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a schedule file written by $(b,--schedule-out) \
                   (the spec is reconstructed from its metadata) and report \
                   the verdict.")
  in
  let schedule_out =
    Arg.(value & opt (some string) None
         & info [ "schedule-out" ] ~docv:"FILE"
             ~doc:"Write the minimized violating schedule for later \
                   $(b,--replay).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the violating (or replayed) run's structured event \
                   trace as JSONL (same schema as $(b,sim --trace)).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Explore message-delivery schedules of small protocol configs \
             (exhaustively or randomly) and check agreement, totality and \
             no-equivocation invariants; counterexamples are minimized and \
             replayable (docs/CHECKING.md)")
    Term.(
      const run $ model $ protocol $ n $ rounds $ adversary $ late_join
      $ crashes $ check_sparse_k $ exhaustive $ delay_budget $ window
      $ max_actions $ no_dpor $ walks $ steps $ seed $ replay $ schedule_out
      $ trace_out)

(* ------------------------------------------------------------------ *)
(* latency *)

let latency_cmd =
  let run delta_ms =
    List.iter
      (fun d ->
        Printf.printf "%-28s %d delta = %6.0f ms\n" (Latency_model.name d)
          (Latency_model.deltas d)
          (Latency_model.estimate_ms ~delta_ms d))
      Latency_model.all
  in
  let delta = Arg.(value & opt float 100.0 & info [ "delta" ] ~doc:"One-way delay (ms).") in
  Cmd.v
    (Cmd.info "latency" ~doc:"Good-case commit latency bounds by architecture")
    Term.(const run $ delta)

let () =
  let doc = "clan-based DAG BFT SMR (tribe-assisted reliable broadcast)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "clanbft" ~version:"0.1.0" ~doc)
          [
            sim_cmd;
            sweep_cmd;
            profile_cmd;
            analyze_cmd;
            check_cmd;
            clan_size_cmd;
            rbc_cmd;
            latency_cmd;
          ]))
