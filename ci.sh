#!/bin/sh
# Minimal CI gate: build, formatting (when ocamlformat is available), tests.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format check =="
  dune build @fmt
else
  echo "== format check skipped (ocamlformat not installed) =="
fi

echo "== dune runtest =="
dune runtest

if command -v odoc >/dev/null 2>&1; then
  echo "== odoc (warnings in lib/obs are fatal) =="
  doc_log=$(mktemp)
  dune build @doc 2>&1 | tee "$doc_log"
  if grep -i "warning" "$doc_log" | grep -q "obs"; then
    echo "odoc warnings in lib/obs"
    rm -f "$doc_log"
    exit 1
  fi
  rm -f "$doc_log"
else
  echo "== odoc skipped (odoc not installed) =="
fi

echo "== bench metrics smoke =="
smoke_dir=$(mktemp -d)
(cd "$smoke_dir" && CLANBFT_BENCH=quick dune exec --root "$OLDPWD" bench/main.exe -- metrics)
for f in sailfish single-clan_nc_11_ multi-clan_q_2_; do
  test -s "$smoke_dir/bench_metrics/$f.metrics.json" || {
    echo "missing metrics dump: $f.metrics.json"
    exit 1
  }
done
rm -rf "$smoke_dir"

echo "CI OK"
