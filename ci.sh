#!/bin/sh
# Minimal CI gate: build, formatting (when ocamlformat is available), tests.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format check =="
  dune build @fmt
else
  echo "== format check skipped (ocamlformat not installed) =="
fi

echo "== dune runtest =="
dune runtest

if command -v odoc >/dev/null 2>&1; then
  echo "== odoc (warnings in lib/obs are fatal) =="
  doc_log=$(mktemp)
  dune build @doc 2>&1 | tee "$doc_log"
  if grep -i "warning" "$doc_log" | grep -q "obs"; then
    echo "odoc warnings in lib/obs"
    rm -f "$doc_log"
    exit 1
  fi
  rm -f "$doc_log"
else
  echo "== odoc skipped (odoc not installed) =="
fi

echo "== recovery smoke (crash 4 s, recover 8 s, deterministic) =="
smoke_dir=$(mktemp -d)
dune exec bin/clanbft_cli.exe -- sim -n 16 -p single-clan --restart 3@4s:8s \
  --duration 12 --seed 7 >"$smoke_dir/rec1" 2>/dev/null
dune exec bin/clanbft_cli.exe -- sim -n 16 -p single-clan --restart 3@4s:8s \
  --duration 12 --seed 7 >"$smoke_dir/rec2" 2>/dev/null
# Same seed, same schedule: recovery must not break determinism.
if ! cmp -s "$smoke_dir/rec1" "$smoke_dir/rec2"; then
  echo "recovery run differs between two same-seed runs"
  diff "$smoke_dir/rec1" "$smoke_dir/rec2" || true
  exit 1
fi
grep -q "agree=true" "$smoke_dir/rec1" || {
  echo "agreement lost under crash-recovery"
  exit 1
}
commits=$(awk -F': ' '/post-recovery commits \[replica 3\]/ { print $2 }' "$smoke_dir/rec1")
if [ -z "$commits" ] || [ "$commits" -le 0 ]; then
  echo "recovered replica made no post-recovery commits"
  cat "$smoke_dir/rec1"
  exit 1
fi
echo "replica 3 committed $commits vertices after recovering"
rm -rf "$smoke_dir"

echo "== n=50 scale smoke (sailfish, 2 s sim, 90 s wall budget) =="
# The batched fan-out keeps large-committee runs affordable: a 50-node
# sailfish run processes ~2.6M events in a few seconds. Budget is explicit
# wall-clock — blowing it means the fast path regressed, not just noise.
smoke_dir=$(mktemp -d)
if ! timeout 90 dune exec bin/clanbft_cli.exe -- sim -n 50 -p full --load 200 \
  --duration 2 --warmup 0.5 --seed 7 >"$smoke_dir/n50" 2>/dev/null; then
  echo "n=50 smoke failed or exceeded its 90 s wall-clock budget"
  exit 1
fi
grep -q "agree=true" "$smoke_dir/n50" || {
  echo "agreement lost at n=50"
  cat "$smoke_dir/n50"
  exit 1
}
n50_txns=$(awk '/^committed/ { print $2 }' "$smoke_dir/n50")
if [ -z "$n50_txns" ] || [ "$n50_txns" -le 0 ]; then
  echo "n=50 smoke committed no transactions"
  cat "$smoke_dir/n50"
  exit 1
fi
echo "n=50 committed $n50_txns txns within budget"
rm -rf "$smoke_dir"

echo "== sparse smoke (n=16, k=3, same-seed double run) =="
# The sparse edge policy derives every sampled parent from the vertex
# seed: two same-seed runs must be byte-identical, and the O(k) parent
# sets must still reach agreement.
smoke_dir=$(mktemp -d)
dune exec bin/clanbft_cli.exe -- sim -n 16 -p sparse --sparse-k 3 \
  --duration 4 --warmup 1 --seed 7 >"$smoke_dir/sp1" 2>/dev/null
dune exec bin/clanbft_cli.exe -- sim -n 16 -p sparse --sparse-k 3 \
  --duration 4 --warmup 1 --seed 7 >"$smoke_dir/sp2" 2>/dev/null
if ! cmp -s "$smoke_dir/sp1" "$smoke_dir/sp2"; then
  echo "sparse run differs between two same-seed runs"
  diff "$smoke_dir/sp1" "$smoke_dir/sp2" || true
  exit 1
fi
grep -q "agree=true" "$smoke_dir/sp1" || {
  echo "agreement lost under sparse edges"
  cat "$smoke_dir/sp1"
  exit 1
}
sp_txns=$(awk '/^committed/ { print $2 }' "$smoke_dir/sp1")
if [ -z "$sp_txns" ] || [ "$sp_txns" -le 0 ]; then
  echo "sparse smoke committed no transactions"
  cat "$smoke_dir/sp1"
  exit 1
fi
echo "sparse n=16 committed $sp_txns txns, deterministic"
rm -rf "$smoke_dir"

echo "== attack corpus (every strategy at n=16, deterministic, stalls attributed) =="
# Every Strategy kind runs twice from the same seed: the stdouts (which
# carry the commit fingerprint) must be byte-identical and agreement must
# hold. The grief run is traced and fed to the analyzer, which must pin
# every stall on the griefing leader — the misattribution regression gate.
smoke_dir=$(mktemp -d)
attack_sim() {
  out=$1
  shift
  timeout 60 dune exec bin/clanbft_cli.exe -- sim -n 16 -p single-clan \
    --load 200 --duration 4 --warmup 1 --seed 7 "$@" >"$out" 2>/dev/null
}
for atk in 3@equivocate 3@censor:0 3@grief:0.8 3@reorder:2ms; do
  attack_sim "$smoke_dir/a1" --adversary "$atk" || {
    echo "attack run $atk failed or exceeded its 60 s wall cap"
    exit 1
  }
  attack_sim "$smoke_dir/a2" --adversary "$atk" || {
    echo "second attack run $atk failed"
    exit 1
  }
  if ! cmp -s "$smoke_dir/a1" "$smoke_dir/a2"; then
    echo "attack run $atk differs between two same-seed runs"
    diff "$smoke_dir/a1" "$smoke_dir/a2" || true
    exit 1
  fi
  grep -q "agree=true" "$smoke_dir/a1" || {
    echo "agreement lost under $atk"
    cat "$smoke_dir/a1"
    exit 1
  }
  grep -q "commit fingerprint: " "$smoke_dir/a1" || {
    echo "attack run $atk printed no commit fingerprint"
    exit 1
  }
  echo "  $atk: deterministic, agreement holds"
done
# sync_storm preys on a recovering replica, so its run carries a restart;
# the victim must still make post-recovery progress under the amplification.
attack_sim "$smoke_dir/s1" --adversary 2@storm:16 --restart 5@1500ms:2500ms || {
  echo "sync_storm run failed or exceeded its 60 s wall cap"
  exit 1
}
attack_sim "$smoke_dir/s2" --adversary 2@storm:16 --restart 5@1500ms:2500ms || {
  echo "second sync_storm run failed"
  exit 1
}
if ! cmp -s "$smoke_dir/s1" "$smoke_dir/s2"; then
  echo "sync_storm run differs between two same-seed runs"
  diff "$smoke_dir/s1" "$smoke_dir/s2" || true
  exit 1
fi
grep -q "agree=true" "$smoke_dir/s1" || {
  echo "agreement lost under sync_storm"
  cat "$smoke_dir/s1"
  exit 1
}
storm_commits=$(awk -F': ' '/post-recovery commits \[replica 5\]/ { print $2 }' "$smoke_dir/s1")
if [ -z "$storm_commits" ] || [ "$storm_commits" -le 0 ]; then
  echo "sync_storm starved the recovering replica"
  cat "$smoke_dir/s1"
  exit 1
fi
echo "  2@storm:16: deterministic, victim committed $storm_commits post-recovery"
# Grief attribution: the analyzer must name the attack, not "unknown".
attack_sim "$smoke_dir/g" --adversary 3@grief:0.8 --trace "$smoke_dir/g.jsonl" || {
  echo "traced grief run failed"
  exit 1
}
dune exec bin/clanbft_cli.exe -- analyze --trace "$smoke_dir/g.jsonl" --json \
  >"$smoke_dir/g.json"
if command -v jq >/dev/null 2>&1; then
  jq -e '[.stalls[].cause] | length > 0 and all(. == "grief_leader(3)")' \
    "$smoke_dir/g.json" >/dev/null || {
    echo "stall detector failed to attribute the griefing leader"
    cat "$smoke_dir/g.json"
    exit 1
  }
else
  grep -q '"cause":"grief_leader(3)"' "$smoke_dir/g.json" || {
    echo "stall detector failed to attribute the griefing leader"
    cat "$smoke_dir/g.json"
    exit 1
  }
fi
echo "  grief stalls attributed to grief_leader(3)"
# Bad adversary specs must be rejected cleanly (exit 2), never crash.
for bad in "3@bogus" "99@grief" "3@censor:xx" "3@grief:1.5"; do
  rc=0
  dune exec bin/clanbft_cli.exe -- sim -n 16 --duration 1 \
    --adversary "$bad" >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "bad adversary spec '$bad' exited $rc, expected 2"
    exit 1
  fi
done
rc=0
dune exec bin/clanbft_cli.exe -- check --adversary grief -n 4 >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "check --adversary grief without --model sailfish exited $rc, expected 2"
  exit 1
fi
echo "  malformed adversary specs rejected with exit 2"
rm -rf "$smoke_dir"

echo "== bench metrics smoke =="
smoke_dir=$(mktemp -d)
(cd "$smoke_dir" && CLANBFT_BENCH=quick dune exec --root "$OLDPWD" bench/main.exe -- metrics)
for f in sailfish single-clan_nc_11_ multi-clan_q_2_; do
  test -s "$smoke_dir/bench_metrics/$f.metrics.json" || {
    echo "missing metrics dump: $f.metrics.json"
    exit 1
  }
done
rm -rf "$smoke_dir"

echo "== analyze smoke (trace -> clanbft analyze, deterministic) =="
smoke_dir=$(mktemp -d)
dune exec bin/clanbft_cli.exe -- sim -n 16 -p single-clan --duration 2 \
  --warmup 0.5 --seed 7 --trace "$smoke_dir/t1.jsonl" >/dev/null 2>&1
dune exec bin/clanbft_cli.exe -- sim -n 16 -p single-clan --duration 2 \
  --warmup 0.5 --seed 7 --trace "$smoke_dir/t2.jsonl" >/dev/null 2>&1
# Streaming the trace must not perturb the run: same seed, same bytes.
if ! cmp -s "$smoke_dir/t1.jsonl" "$smoke_dir/t2.jsonl"; then
  echo "streamed traces differ between two same-seed runs"
  exit 1
fi
dune exec bin/clanbft_cli.exe -- analyze --trace "$smoke_dir/t1.jsonl" --json \
  >"$smoke_dir/a1.json"
dune exec bin/clanbft_cli.exe -- analyze --trace "$smoke_dir/t2.jsonl" --json \
  >"$smoke_dir/a2.json"
# The analyzer is pure: identical traces must render identical reports.
if ! cmp -s "$smoke_dir/a1.json" "$smoke_dir/a2.json"; then
  echo "analyzer output differs on identical traces"
  exit 1
fi
dune exec bin/clanbft_cli.exe -- analyze --trace "$smoke_dir/t1.jsonl" \
  >"$smoke_dir/a1.txt"
grep -q "commit critical path" "$smoke_dir/a1.txt" || {
  echo "human analysis report missing critical-path section"
  exit 1
}
if command -v jq >/dev/null 2>&1; then
  jq -e '.schema == "clanbft/analysis/v1"
         and .commit_paths > 0
         and (.segments | has("dissemination") and has("quorum_wait")
              and has("order_wait"))
         and (.segments | to_entries | map(.value.p50_us) | add) <= .e2e.p50_us * 2
         and (.stalls | length) == 0' \
    "$smoke_dir/a1.json" >/dev/null || {
    echo "analysis JSON failed schema validation"
    exit 1
  }
fi
rm -rf "$smoke_dir"

echo "== profile smoke (self-profiler: pure observation, deterministic modulo *_ns) =="
smoke_dir=$(mktemp -d)
# The profiler must not perturb the run: a profiled run's commit
# fingerprint must equal an unprofiled same-seed run's.
dune exec bin/clanbft_cli.exe -- sim -n 16 -p full --load 200 \
  --duration 4 --warmup 1 --seed 7 >"$smoke_dir/plain" 2>/dev/null
dune exec bin/clanbft_cli.exe -- profile -n 16 -p full --load 200 \
  --duration 4 --warmup 1 --seed 7 --folded "$smoke_dir/p1.folded" \
  --json "$smoke_dir/p1.json" >"$smoke_dir/prof1" 2>/dev/null
dune exec bin/clanbft_cli.exe -- profile -n 16 -p full --load 200 \
  --duration 4 --warmup 1 --seed 7 --json "$smoke_dir/p2.json" \
  >"$smoke_dir/prof2" 2>/dev/null
fp_plain=$(awk -F': ' '/^commit fingerprint/ { print $2 }' "$smoke_dir/plain")
fp_prof=$(awk -F': ' '/^commit fingerprint/ { print $2 }' "$smoke_dir/prof1")
if [ -z "$fp_plain" ] || [ "$fp_plain" != "$fp_prof" ]; then
  echo "profiled run diverged from unprofiled same-seed run ($fp_prof vs $fp_plain)"
  exit 1
fi
# The folded-stack export is non-empty and every line is "path <self_us>".
test -s "$smoke_dir/p1.folded" || {
  echo "folded-stack export is empty"
  exit 1
}
if grep -qvE '^[^ ]+ [0-9]+$' "$smoke_dir/p1.folded"; then
  echo "malformed folded-stack line:"
  grep -vE '^[^ ]+ [0-9]+$' "$smoke_dir/p1.folded" | head -3
  exit 1
fi
grep -q '^engine.dispatch;' "$smoke_dir/p1.folded" || {
  echo "folded stacks missing the engine.dispatch tree"
  exit 1
}
if command -v jq >/dev/null 2>&1; then
  # Deterministic fields (calls, words, census, tree shape) are
  # byte-identical across same-seed runs once the wall-clock *_ns
  # fields are stripped (docs/PROFILING.md).
  strip_ns='walk(if type == "object"
                 then with_entries(select(.key | endswith("_ns") | not))
                 else . end)'
  jq -S "$strip_ns" "$smoke_dir/p1.json" >"$smoke_dir/p1.stripped"
  jq -S "$strip_ns" "$smoke_dir/p2.json" >"$smoke_dir/p2.stripped"
  if ! cmp -s "$smoke_dir/p1.stripped" "$smoke_dir/p2.stripped"; then
    echo "profile deterministic fields differ between two same-seed runs"
    diff "$smoke_dir/p1.stripped" "$smoke_dir/p2.stripped" | head -20
    exit 1
  fi
  jq -e '.schema == "clanbft/profile/v1"
         and (.sections | length) > 0
         and (.sections | map(.name) | index("engine.dispatch") != null)
         and (.census | length) > 0
         and (.census | map(.subsystem) | index("dag.store") != null)' \
    "$smoke_dir/p1.json" >/dev/null || {
    echo "profile JSON failed schema validation"
    exit 1
  }
  echo "profile deterministic fields byte-identical; fingerprint $fp_prof matches unprofiled"
else
  grep -qF '"schema": "clanbft/profile/v1"' "$smoke_dir/p1.json" || {
    echo "profile JSON missing schema"
    exit 1
  }
  echo "profile fingerprint $fp_prof matches unprofiled (jq absent: strip-compare skipped)"
fi
rm -rf "$smoke_dir"

echo "== check: exhaustive schedule exploration (n=4, 2 rounds, both TA-RBC families) =="
# Bounded model checking (docs/CHECKING.md): every delivery reordering
# within the delay budget must keep agreement/validity/no-equivocation/
# totality. Wall cap is a hard gate — the checker regressing past it
# means the stateless-replay fast path broke.
smoke_dir=$(mktemp -d)
for fam in tribe-bracha tribe-signed; do
  if ! timeout 60 dune exec bin/clanbft_cli.exe -- check -p "$fam" -n 4 \
    --rounds 2 --exhaustive >"$smoke_dir/$fam" 2>/dev/null; then
    echo "exhaustive check ($fam) failed or exceeded its 60 s wall cap"
    cat "$smoke_dir/$fam" 2>/dev/null || true
    exit 1
  fi
  grep -q "verdict: ok" "$smoke_dir/$fam" || {
    echo "exhaustive check ($fam) reported a violation"
    cat "$smoke_dir/$fam"
    exit 1
  }
  sed -n 's/^check: /  '"$fam"': /p' "$smoke_dir/$fam"
done

echo "== check: fixed-seed random walks (10k sailfish walks + equivocating RBC) =="
# Seed 7 is the seed that caught the timeout-path no-vote/vote exclusivity
# bug (EXPERIMENTS.md); 10k walks re-sweep it on every CI run.
timeout 180 dune exec bin/clanbft_cli.exe -- check --model sailfish -n 4 \
  --rounds 4 --walks 10000 --steps 300 --seed 7 >"$smoke_dir/walk_sf" 2>/dev/null || {
  echo "sailfish walk budget failed"
  cat "$smoke_dir/walk_sf" 2>/dev/null || true
  exit 1
}
grep -q "verdict: ok" "$smoke_dir/walk_sf" || {
  echo "sailfish walks reported a violation"
  cat "$smoke_dir/walk_sf"
  exit 1
}
echo "== check: sparse edges (exhaustive n=4 + 2500 walks) =="
# The sparse coverage rule (leader + link + sampled parents) replaces the
# dense 2f+1-parents assumption; both search modes must stay violation-free.
timeout 90 dune exec bin/clanbft_cli.exe -- check --model sailfish -n 4 \
  --rounds 2 --sparse-k 2 --exhaustive --delay-budget 1 --window 3 \
  --max-actions 120 >"$smoke_dir/sparse_ex" 2>/dev/null || {
  echo "sparse exhaustive check failed or exceeded its 90 s wall cap"
  cat "$smoke_dir/sparse_ex" 2>/dev/null || true
  exit 1
}
grep -q "verdict: ok" "$smoke_dir/sparse_ex" || {
  echo "sparse exhaustive check reported a violation"
  cat "$smoke_dir/sparse_ex"
  exit 1
}
sed -n 's/^check: /  sparse exhaustive: /p' "$smoke_dir/sparse_ex"
timeout 120 dune exec bin/clanbft_cli.exe -- check --model sailfish -n 4 \
  --rounds 4 --sparse-k 2 --walks 2500 --steps 300 --seed 7 \
  >"$smoke_dir/walk_sparse" 2>/dev/null || {
  echo "sparse walk budget failed"
  cat "$smoke_dir/walk_sparse" 2>/dev/null || true
  exit 1
}
grep -q "verdict: ok" "$smoke_dir/walk_sparse" || {
  echo "sparse walks reported a violation"
  cat "$smoke_dir/walk_sparse"
  exit 1
}

timeout 60 dune exec bin/clanbft_cli.exe -- check -p tribe-signed -n 4 \
  --rounds 1 --adversary equivocate --exhaustive >"$smoke_dir/equiv" 2>/dev/null || {
  echo "equivocating-sender check failed"
  exit 1
}
grep -q "verdict: ok" "$smoke_dir/equiv" || {
  echo "single equivocating sender (within f=1) broke safety"
  cat "$smoke_dir/equiv"
  exit 1
}

echo "== check self-test: injected collusion must be caught and replay byte-identically =="
# Two byzantine voters against f=1 are outside the fault model: the
# checker must find the agreement violation (exit 1), minimize it, and
# the written schedule must replay to a byte-identical trace twice.
set +e
timeout 60 dune exec bin/clanbft_cli.exe -- check -p tribe-bracha -n 4 \
  --rounds 1 --adversary collude --exhaustive \
  --schedule-out "$smoke_dir/collude.sched" >"$smoke_dir/collude" 2>/dev/null
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
  echo "collusion self-test: expected exit 1 (violation), got $rc"
  cat "$smoke_dir/collude" 2>/dev/null || true
  exit 1
fi
grep -q "verdict: VIOLATION invariant=agreement" "$smoke_dir/collude" || {
  echo "collusion self-test: agreement violation not reported"
  cat "$smoke_dir/collude"
  exit 1
}
test -s "$smoke_dir/collude.sched" || {
  echo "collusion self-test: no schedule written"
  exit 1
}
for i in 1 2; do
  set +e
  dune exec bin/clanbft_cli.exe -- check --replay "$smoke_dir/collude.sched" \
    --trace-out "$smoke_dir/replay$i.jsonl" >"$smoke_dir/replay$i" 2>/dev/null
  rc=$?
  set -e
  if [ "$rc" -ne 1 ]; then
    echo "collusion replay $i: expected exit 1, got $rc"
    cat "$smoke_dir/replay$i" 2>/dev/null || true
    exit 1
  fi
done
if ! cmp -s "$smoke_dir/replay1.jsonl" "$smoke_dir/replay2.jsonl"; then
  echo "collusion replays produced different traces"
  exit 1
fi
echo "collusion caught, minimized schedule replays byte-identically"
rm -rf "$smoke_dir"

echo "== parallel bench smoke (perf section, CLANBFT_JOBS=2) =="
smoke_dir=$(mktemp -d)
(cd "$smoke_dir" \
  && CLANBFT_BENCH=quick dune exec --root "$OLDPWD" bench/main.exe -- --jobs 1 perf >stdout.jobs1 2>/dev/null \
  && CLANBFT_BENCH=quick CLANBFT_JOBS=2 dune exec --root "$OLDPWD" bench/main.exe -- perf >stdout.jobs2 2>/dev/null)
# Deterministic stdout: parallel dispatch must not change a byte.
if ! cmp -s "$smoke_dir/stdout.jobs1" "$smoke_dir/stdout.jobs2"; then
  echo "bench stdout differs between --jobs 1 and CLANBFT_JOBS=2"
  diff "$smoke_dir/stdout.jobs1" "$smoke_dir/stdout.jobs2" || true
  exit 1
fi
test -s "$smoke_dir/BENCH_sim.json" || {
  echo "missing BENCH_sim.json"
  exit 1
}
if command -v jq >/dev/null 2>&1; then
  jq -e '.schema == "clanbft/bench-sim/v3"
         and .jobs == 2
         and (.scenarios | length) >= 5
         and (.scenarios | all(has("events_per_s") and has("wall_s")
              and has("minor_words") and has("live_words")
              and has("top_heap_words") and has("commit_fingerprint")))
         and (.scenarios | map(.name) | index("sparse-n16-load200") != null)
         and (.micro | has("sha256_mb_per_s") and has("net_send_ops_per_s")
              and has("encode_ops_per_s") and has("decode_ops_per_s"))
         and (.analysis | length == 4
              and all(.[]; (.e2e.count > 0)
                   and (.segments | has("dissemination") and has("echo_wait")
                        and has("quorum_wait") and has("dag_wait")
                        and has("order_wait"))))' \
    "$smoke_dir/BENCH_sim.json" >/dev/null || {
    echo "BENCH_sim.json failed schema validation"
    exit 1
  }
  # Degradation envelope over the attack corpus: every run safe and live,
  # and every attack's damage bounded relative to its same-seed benign
  # baseline. Runs are deterministic, so a breach is a behaviour change.
  attacks_envelope='.attacks | length == 21
    and all(.[]; .agreement)
    and ([.[] | select(.tput_ratio != null)] | length == 15
         and all(.[]; .tput_ratio >= 0.55 and .tput_ratio <= 1.08
                 and .p50_ratio >= 0.85 and .p50_ratio <= 1.3
                 and .p99_ratio >= 0.85 and .p99_ratio <= 3.2))'
  jq -e "$attacks_envelope" "$smoke_dir/BENCH_sim.json" >/dev/null || {
    echo "BENCH_sim.json attack corpus breached its degradation envelope"
    jq '.attacks' "$smoke_dir/BENCH_sim.json"
    exit 1
  }
  # Envelope self-test: a synthetic throughput collapse on one attack row
  # must trip it.
  jq '(.attacks[] | select(.attack == "grief" and .protocol == "dense")
       | .tput_ratio) *= 0.5' \
    "$smoke_dir/BENCH_sim.json" >"$smoke_dir/tampered_attacks.json"
  if jq -e "$attacks_envelope" "$smoke_dir/tampered_attacks.json" >/dev/null 2>&1; then
    echo "attack envelope self-test failed: synthetic collapse not detected"
    exit 1
  fi
  echo "attack corpus envelope OK (and self-test trips on synthetic collapse)"
else
  for key in '"schema": "clanbft/bench-sim/v3"' '"events_per_s"' '"sha256_mb_per_s"' '"net_send_ops_per_s"' '"analysis"'; do
    grep -qF "$key" "$smoke_dir/BENCH_sim.json" || {
      echo "BENCH_sim.json missing $key"
      exit 1
    }
  done
fi

if command -v jq >/dev/null 2>&1; then
  echo "== perf regression gate (fresh run vs committed BENCH_sim.json) =="
  # Hard gate on simulated-time facts only (throughput, committed txns,
  # analyzer latency percentiles) — those are deterministic, so any drift
  # is a real behaviour change, not machine noise. Wall-clock and
  # events/s vary by machine: warn-only.
  perf_gate() {
    # $1 = baseline, $2 = fresh. Prints offences; returns 1 if any.
    jq -rn --slurpfile b "$1" --slurpfile f "$2" '
      def by_name: map({(.name): .}) | add;
      ($b[0].scenarios | by_name) as $bs
      | ($f[0].scenarios | by_name) as $fs
      | [ $bs | keys[] | select($fs[.] != null) | . as $n
          | ($bs[$n]) as $old | ($fs[$n]) as $new
          | (if $old.throughput_ktps > 0
             and $new.throughput_ktps < 0.75 * $old.throughput_ktps then
               "\($n): throughput \($new.throughput_ktps) kTPS < 75% of baseline \($old.throughput_ktps)"
             else empty end),
            (if $old.committed_txns > 0 and $new.committed_txns == 0 then
               "\($n): no transactions committed (baseline \($old.committed_txns))"
             else empty end),
            (($b[0].analysis[$n].e2e.p50_us // 0) as $bp
             | (($f[0].analysis[$n].e2e.p50_us // $bp)) as $fp
             | if $bp > 0 and $fp > 1.25 * $bp then
                 "\($n): e2e p50 latency \($fp) us > 125% of baseline \($bp)"
               else empty end)
        ] | .[]' | {
      bad=0
      while IFS= read -r line; do
        [ -n "$line" ] || continue
        echo "PERF REGRESSION: $line"
        bad=1
      done
      return $bad
    }
  }
  perf_gate BENCH_sim.json "$smoke_dir/BENCH_sim.json" || {
    echo "perf regression gate failed"
    exit 1
  }
  # Wall-clock drift is machine noise: report, never fail.
  jq -rn --slurpfile b BENCH_sim.json --slurpfile f "$smoke_dir/BENCH_sim.json" '
    def by_name: map({(.name): .}) | add;
    ($b[0].scenarios | by_name) as $bs
    | ($f[0].scenarios | by_name) as $fs
    | [ $bs | keys[] | select($fs[.] != null) | . as $n
        | if $fs[$n].wall_s > 2 * $bs[$n].wall_s then
            "warning: \($n) wall-clock \($fs[$n].wall_s)s > 2x baseline \($bs[$n].wall_s)s (not gated)"
          else empty end
      ] | .[]' || true
  # Gate self-test: an injected 50% throughput collapse must trip it.
  jq '.scenarios[0].throughput_ktps *= 0.5 | .scenarios[0].committed_txns = 0' \
    "$smoke_dir/BENCH_sim.json" >"$smoke_dir/tampered.json"
  if perf_gate BENCH_sim.json "$smoke_dir/tampered.json" >/dev/null 2>&1; then
    echo "perf gate self-test failed: synthetic regression not detected"
    exit 1
  fi
  jq '.analysis[].e2e.p50_us *= 2' \
    "$smoke_dir/BENCH_sim.json" >"$smoke_dir/tampered2.json"
  if perf_gate BENCH_sim.json "$smoke_dir/tampered2.json" >/dev/null 2>&1; then
    echo "perf gate self-test failed: synthetic latency regression not detected"
    exit 1
  fi
  # The sparse scenario is gated by name: a collapse confined to the
  # sparse-n16 entry must trip the gate on its own.
  jq '(.scenarios[] | select(.name == "sparse-n16-load200")
       | .throughput_ktps) *= 0.5
      | (.scenarios[] | select(.name == "sparse-n16-load200")
         | .committed_txns) = 0' \
    "$smoke_dir/BENCH_sim.json" >"$smoke_dir/tampered3.json"
  if perf_gate BENCH_sim.json "$smoke_dir/tampered3.json" >/dev/null 2>&1; then
    echo "perf gate self-test failed: sparse-only regression not detected"
    exit 1
  fi
  echo "perf gate OK (and self-test trips on synthetic regressions)"
else
  echo "== perf regression gate skipped (jq not installed) =="
fi
rm -rf "$smoke_dir"

echo "CI OK"
