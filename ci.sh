#!/bin/sh
# Minimal CI gate: build, formatting (when ocamlformat is available), tests.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format check =="
  dune build @fmt
else
  echo "== format check skipped (ocamlformat not installed) =="
fi

echo "== dune runtest =="
dune runtest

if command -v odoc >/dev/null 2>&1; then
  echo "== odoc (warnings in lib/obs are fatal) =="
  doc_log=$(mktemp)
  dune build @doc 2>&1 | tee "$doc_log"
  if grep -i "warning" "$doc_log" | grep -q "obs"; then
    echo "odoc warnings in lib/obs"
    rm -f "$doc_log"
    exit 1
  fi
  rm -f "$doc_log"
else
  echo "== odoc skipped (odoc not installed) =="
fi

echo "== recovery smoke (crash 4 s, recover 8 s, deterministic) =="
smoke_dir=$(mktemp -d)
dune exec bin/clanbft_cli.exe -- sim -n 16 -p single-clan --restart 3@4s:8s \
  --duration 12 --seed 7 >"$smoke_dir/rec1" 2>/dev/null
dune exec bin/clanbft_cli.exe -- sim -n 16 -p single-clan --restart 3@4s:8s \
  --duration 12 --seed 7 >"$smoke_dir/rec2" 2>/dev/null
# Same seed, same schedule: recovery must not break determinism.
if ! cmp -s "$smoke_dir/rec1" "$smoke_dir/rec2"; then
  echo "recovery run differs between two same-seed runs"
  diff "$smoke_dir/rec1" "$smoke_dir/rec2" || true
  exit 1
fi
grep -q "agree=true" "$smoke_dir/rec1" || {
  echo "agreement lost under crash-recovery"
  exit 1
}
commits=$(awk -F': ' '/post-recovery commits \[replica 3\]/ { print $2 }' "$smoke_dir/rec1")
if [ -z "$commits" ] || [ "$commits" -le 0 ]; then
  echo "recovered replica made no post-recovery commits"
  cat "$smoke_dir/rec1"
  exit 1
fi
echo "replica 3 committed $commits vertices after recovering"
rm -rf "$smoke_dir"

echo "== bench metrics smoke =="
smoke_dir=$(mktemp -d)
(cd "$smoke_dir" && CLANBFT_BENCH=quick dune exec --root "$OLDPWD" bench/main.exe -- metrics)
for f in sailfish single-clan_nc_11_ multi-clan_q_2_; do
  test -s "$smoke_dir/bench_metrics/$f.metrics.json" || {
    echo "missing metrics dump: $f.metrics.json"
    exit 1
  }
done
rm -rf "$smoke_dir"

echo "== parallel bench smoke (perf section, CLANBFT_JOBS=2) =="
smoke_dir=$(mktemp -d)
(cd "$smoke_dir" \
  && CLANBFT_BENCH=quick dune exec --root "$OLDPWD" bench/main.exe -- --jobs 1 perf >stdout.jobs1 2>/dev/null \
  && CLANBFT_BENCH=quick CLANBFT_JOBS=2 dune exec --root "$OLDPWD" bench/main.exe -- perf >stdout.jobs2 2>/dev/null)
# Deterministic stdout: parallel dispatch must not change a byte.
if ! cmp -s "$smoke_dir/stdout.jobs1" "$smoke_dir/stdout.jobs2"; then
  echo "bench stdout differs between --jobs 1 and CLANBFT_JOBS=2"
  diff "$smoke_dir/stdout.jobs1" "$smoke_dir/stdout.jobs2" || true
  exit 1
fi
test -s "$smoke_dir/BENCH_sim.json" || {
  echo "missing BENCH_sim.json"
  exit 1
}
if command -v jq >/dev/null 2>&1; then
  jq -e '.schema == "clanbft/bench-sim/v1"
         and .jobs == 2
         and (.scenarios | length) == 3
         and (.scenarios | all(has("events_per_s") and has("wall_s")
              and has("minor_words") and has("commit_fingerprint")))
         and (.micro | has("sha256_mb_per_s") and has("net_send_ops_per_s")
              and has("encode_ops_per_s") and has("decode_ops_per_s"))' \
    "$smoke_dir/BENCH_sim.json" >/dev/null || {
    echo "BENCH_sim.json failed schema validation"
    exit 1
  }
else
  for key in '"schema": "clanbft/bench-sim/v1"' '"events_per_s"' '"sha256_mb_per_s"' '"net_send_ops_per_s"'; do
    grep -qF "$key" "$smoke_dir/BENCH_sim.json" || {
      echo "BENCH_sim.json missing $key"
      exit 1
    }
  done
fi
rm -rf "$smoke_dir"

echo "CI OK"
