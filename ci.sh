#!/bin/sh
# Minimal CI gate: build, formatting (when ocamlformat is available), tests.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format check =="
  dune build @fmt
else
  echo "== format check skipped (ocamlformat not installed) =="
fi

echo "== dune runtest =="
dune runtest

echo "CI OK"
