module Heap = Clanbft_util.Heap
module Prof = Clanbft_obs.Prof

(* Self-profiler sections (docs/PROFILING.md): resolved once at module
   initialisation; disabled probes cost one branch each. *)
let sec_dispatch = Prof.section "engine.dispatch"
let sec_scan = Prof.section "engine.ring_scan"
let sec_migrate = Prof.section "engine.migrate"

(* The event queue is a calendar (bucket ring) keyed by microsecond
   timestamp: large experiments keep millions of events in flight, and a
   binary heap's O(log n) per operation dominated the whole simulator. The
   ring covers [horizon] µs ahead of the clock; the rare event scheduled
   further out (long timers) parks in an overflow heap and migrates into the
   ring as the clock approaches. Within a microsecond, events run in
   scheduling order (buckets are consed LIFO and reversed on drain), so runs
   stay deterministic. *)

let ring_bits = 21
let horizon = 1 lsl ring_bits
(* 2.10 simulated seconds — comfortably past the longest recurring timer
   (the 1.5 s round timeout), so only one-off far-future events take the
   overflow path, while the ring array stays small enough that major-GC
   marking of its 2M pointer slots is cheap. *)

(* An event is either a plain thunk or a shared callback applied to an
   integer. [Ix] exists for fan-out: a broadcast delivering to n recipients
   schedules one 3-word [Ix] cell per recipient around a single shared
   closure, instead of n bespoke closures capturing the same environment. *)
type event = Fn of (unit -> unit) | Ix of (int -> unit) * int

(* Bucket-occupancy summary: one bit per ring bucket, 32 buckets per word
   (bit 63 of a native int is unavailable, and 32 keeps the index math to
   shifts). The next-event scan walks set bits instead of probing empty
   buckets µs by µs — with a mean inter-event gap of tens of µs, that turns
   ~20 array loads per advance into one or two. *)
let summary_shift = 5

let word_mask = 0xFFFFFFFF

(* Trailing-zero count of a non-zero 32-bit value: byte probe + table.
   Runs on the next-event path, so it must not allocate. *)
let ctz8 =
  Array.init 256 (fun i ->
      if i = 0 then 8
      else begin
        let n = ref 0 in
        while i land (1 lsl !n) = 0 do
          incr n
        done;
        !n
      end)

let ctz x =
  if x land 0xFF <> 0 then ctz8.(x land 0xFF)
  else if x land 0xFF00 <> 0 then 8 + ctz8.((x lsr 8) land 0xFF)
  else if x land 0xFF0000 <> 0 then 16 + ctz8.((x lsr 16) land 0xFF)
  else 24 + ctz8.((x lsr 24) land 0xFF)

(* A delivery-choice point (model-checking hook): when choice mode is on,
   events scheduled through [schedule_choice_at]/[schedule_choice_ix_at]
   are parked in a pool instead of the calendar, and an external scheduler
   (lib/check) decides which one runs next via [fire_choice]. With choice
   mode off — the default — those entry points are exact aliases of the
   calendar ones, so the ordinary simulation path is bit-identical. *)
type choice = { id : int; time : Time.t; src : int; dst : int; tag : string }

type t = {
  ring : event list array;
  summary : int array; (* bit (i mod 32) of word (i / 32) ⇔ ring.(i) <> [] *)
  overflow : event Heap.t;
  now_queue : event Queue.t; (* scheduled for the current µs *)
  mutable drain : event list; (* current bucket, FIFO order *)
  mutable clock : Time.t;
  mutable pending : int;
  mutable processed : int;
  mutable choice_mode : bool;
  mutable next_choice_id : int;
  pool : (int, choice * event) Hashtbl.t; (* pending delivery choices *)
}

let nothing = Fn (fun () -> ())

(* [ring_bits] sizes this engine's calendar ring (default: the module
   [horizon]). Small deployments that are rebuilt thousands of times — the
   lib/check schedule explorer re-executes a fresh world per branch — use a
   small ring so [create] does not allocate 2M bucket slots per world;
   events past the (smaller) horizon simply take the overflow-heap path,
   which is semantically identical. *)
let create ?(ring_bits = ring_bits) () =
  if ring_bits < summary_shift || ring_bits > 26 then
    invalid_arg "Engine.create: ring_bits out of range";
  let horizon = 1 lsl ring_bits in
  {
    ring = Array.make horizon [];
    summary = Array.make (horizon lsr summary_shift) 0;
    overflow = Heap.create ~capacity:64 ~dummy:nothing ();
    now_queue = Queue.create ();
    drain = [];
    clock = 0;
    pending = 0;
    processed = 0;
    choice_mode = false;
    next_choice_id = 0;
    pool = Hashtbl.create 64;
  }

let now t = t.clock

let ring_insert t idx ev =
  t.ring.(idx) <- ev :: t.ring.(idx);
  let w = idx lsr summary_shift in
  t.summary.(w) <- t.summary.(w) lor (1 lsl (idx land 31))

let enqueue t time ev =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  t.pending <- t.pending + 1;
  if time = t.clock then Queue.add ev t.now_queue
  else if time - t.clock < Array.length t.ring then
    ring_insert t (time land (Array.length t.ring - 1)) ev
  else Heap.push t.overflow time ev

let schedule_at t time fn = enqueue t time (Fn fn)
let schedule_ix_at t time fn arg = enqueue t time (Ix (fn, arg))

let schedule_after t span fn =
  if span < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (t.clock + span) fn

(* ---- delivery-choice points ---- *)

let set_choice_mode t on = t.choice_mode <- on
let choice_mode t = t.choice_mode

let pool_add t time ~src ~dst ~tag ev =
  let id = t.next_choice_id in
  t.next_choice_id <- id + 1;
  Hashtbl.replace t.pool id ({ id; time; src; dst; tag }, ev)

let schedule_choice_at t time ~src ~dst ~tag fn =
  if t.choice_mode then pool_add t time ~src ~dst ~tag (Fn fn)
  else enqueue t time (Fn fn)

let schedule_choice_ix_at t time ~src ~dst ~tag fn arg =
  if t.choice_mode then pool_add t time ~src ~dst ~tag (Ix (fn, arg))
  else enqueue t time (Ix (fn, arg))

let choices t =
  let cs = Hashtbl.fold (fun _ (c, _) acc -> c :: acc) t.pool [] in
  List.sort (fun a b -> compare a.id b.id) cs

let choice_count t = Hashtbl.length t.pool

let fire_choice t id =
  match Hashtbl.find_opt t.pool id with
  | None -> invalid_arg "Engine.fire_choice: unknown or already-fired choice"
  | Some (_, ev) ->
      Hashtbl.remove t.pool id;
      t.processed <- t.processed + 1;
      (match ev with Fn fn -> fn () | Ix (fn, arg) -> fn arg)

let drop_choice t id =
  if not (Hashtbl.mem t.pool id) then
    invalid_arg "Engine.drop_choice: unknown or already-fired choice";
  Hashtbl.remove t.pool id

(* Move overflow events that now fit in the ring. *)
let migrate t =
  Prof.enter sec_migrate;
  let rec go () =
    match Heap.peek_priority t.overflow with
    | Some time when time - t.clock < Array.length t.ring ->
        (match Heap.pop t.overflow with
        | Some (time, ev) -> ring_insert t (time land (Array.length t.ring - 1)) ev
        | None -> ());
        go ()
    | Some _ | None -> ()
  in
  go ();
  Prof.leave sec_migrate

(* Earliest non-empty ring bucket at a time in (clock, clock + horizon), by
   walking the occupancy summary's set bits. Buckets are visited in
   circular index order starting just past the clock, which is exactly
   ascending time order: every ring event lies within one horizon of the
   clock (enqueue guarantees it on insert, and the clock never passes an
   event without draining its bucket). Returns the event time, or
   [max_int] when the whole ring is empty — plain loops and an int
   sentinel because this runs once per bucket advance and must not
   allocate. *)
let[@inline] bucket_time t ~start w bits =
  let idx = (w lsl summary_shift) lor ctz bits in
  t.clock + 1 + ((idx - start) land (Array.length t.ring - 1))

let scan_ring t =
  Prof.enter sec_scan;
  let start = (t.clock + 1) land (Array.length t.ring - 1) in
  let w0 = start lsr summary_shift and b0 = start land 31 in
  let bits0 = t.summary.(w0) land (word_mask lsl b0) land word_mask in
  let time =
    if bits0 <> 0 then bucket_time t ~start w0 bits0
    else begin
      let res = ref max_int in
      let i = ref 1 in
      while !res = max_int && !i < Array.length t.summary do
        let w = (w0 + !i) land (Array.length t.summary - 1) in
        let bits = t.summary.(w) in
        if bits <> 0 then res := bucket_time t ~start w bits;
        incr i
      done;
      if !res = max_int then begin
        (* Wrapped: only the start word's low bits remain unseen. *)
        let bits = t.summary.(w0) land ((1 lsl b0) - 1) in
        if bits <> 0 then res := bucket_time t ~start w0 bits
      end;
      !res
    end
  in
  Prof.leave sec_scan;
  time

(* Time of the next pending event, advancing the clock up to (but not past)
   it. Returns [None] when the queue is empty. *)
let next_event_time t =
  if t.pending = 0 then None
  else if (not (Queue.is_empty t.now_queue)) || t.drain <> [] then Some t.clock
  else begin
    migrate t;
    let time = scan_ring t in
    if time <> max_int then Some time
    else
      (* Ring empty: only overflow events remain, all at least one
         horizon out. Jump the clock so the earliest fits, migrate, and
         rescan. *)
      match Heap.peek_priority t.overflow with
      | None -> None (* inconsistent pending count; defensive *)
      | Some time ->
          t.clock <- time - Array.length t.ring + 1;
          migrate t;
          let time = scan_ring t in
          if time <> max_int then Some time else None
  end

let step t =
  match
    (* Order within an instant: first the bucket's already-scheduled events
       (FIFO), then events scheduled for "now" while processing them. *)
    match t.drain with
    | ev :: rest ->
        t.drain <- rest;
        Some ev
    | [] -> (
        if not (Queue.is_empty t.now_queue) then Some (Queue.pop t.now_queue)
        else
          match next_event_time t with
          | None -> None
          | Some time ->
              t.clock <- time;
              let idx = time land (Array.length t.ring - 1) in
              (match List.rev t.ring.(idx) with
              | ev :: rest ->
                  t.ring.(idx) <- [];
                  let w = idx lsr summary_shift in
                  t.summary.(w) <- t.summary.(w) land lnot (1 lsl (idx land 31));
                  t.drain <- rest;
                  Some ev
              | [] -> None))
  with
  | None -> false
  | Some ev ->
      t.pending <- t.pending - 1;
      t.processed <- t.processed + 1;
      Prof.enter sec_dispatch;
      (match ev with Fn fn -> fn () | Ix (fn, arg) -> fn arg);
      Prof.leave sec_dispatch;
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some m -> m) in
  let continue = ref true in
  while !continue && !budget > 0 do
    (* Fast path: events at the current instant need no horizon checks. *)
    if (not (Queue.is_empty t.now_queue)) || t.drain <> [] then begin
      ignore (step t);
      decr budget
    end
    else
      match next_event_time t with
      | None -> continue := false
      | Some time -> (
          match until with
          | Some hrz when time > hrz ->
              t.clock <- hrz;
              continue := false
          | _ ->
              ignore (step t);
              decr budget)
  done;
  match until with
  | Some hrz when t.clock < hrz && t.pending = 0 -> t.clock <- hrz
  | _ -> ()

let pending t = t.pending
let events_processed t = t.processed

(* Heap-census hook (docs/PROFILING.md): a conservative word estimate of
   this engine's live structures. Ring and summary arrays dominate; each
   pending ring event costs a cons cell (3 words) plus its event cell (an
   [Ix] is 3 words, an [Fn] closure typically a few more — call it 6);
   overflow entries sit unboxed in two parallel array slots. *)
let approx_live_words t =
  Array.length t.ring + Array.length t.summary
  + (t.pending * 9)
  + (2 * Heap.length t.overflow)
  + (12 * Hashtbl.length t.pool)
