module Heap = Clanbft_util.Heap

(* The event queue is a calendar (bucket ring) keyed by microsecond
   timestamp: large experiments keep millions of events in flight, and a
   binary heap's O(log n) per operation dominated the whole simulator. The
   ring covers [horizon] µs ahead of the clock; the rare event scheduled
   further out (long timers) parks in an overflow heap and migrates into the
   ring as the clock approaches. Within a microsecond, events run in
   scheduling order (buckets are consed LIFO and reversed on drain), so runs
   stay deterministic. *)

let ring_bits = 21
let horizon = 1 lsl ring_bits
(* 2.10 simulated seconds — comfortably past the longest recurring timer
   (the 1.5 s round timeout), so only one-off far-future events take the
   overflow path, while the ring array stays small enough that major-GC
   marking of its 2M pointer slots is cheap. *)
let mask = horizon - 1

(* An event is either a plain thunk or a shared callback applied to an
   integer. [Ix] exists for fan-out: a broadcast delivering to n recipients
   schedules one 3-word [Ix] cell per recipient around a single shared
   closure, instead of n bespoke closures capturing the same environment. *)
type event = Fn of (unit -> unit) | Ix of (int -> unit) * int

(* Bucket-occupancy summary: one bit per ring bucket, 32 buckets per word
   (bit 63 of a native int is unavailable, and 32 keeps the index math to
   shifts). The next-event scan walks set bits instead of probing empty
   buckets µs by µs — with a mean inter-event gap of tens of µs, that turns
   ~20 array loads per advance into one or two. *)
let summary_shift = 5

let summary_words = horizon lsr summary_shift
let summary_mask = summary_words - 1
let word_mask = 0xFFFFFFFF

(* Trailing-zero count of a non-zero 32-bit value: byte probe + table.
   Runs on the next-event path, so it must not allocate. *)
let ctz8 =
  Array.init 256 (fun i ->
      if i = 0 then 8
      else begin
        let n = ref 0 in
        while i land (1 lsl !n) = 0 do
          incr n
        done;
        !n
      end)

let ctz x =
  if x land 0xFF <> 0 then ctz8.(x land 0xFF)
  else if x land 0xFF00 <> 0 then 8 + ctz8.((x lsr 8) land 0xFF)
  else if x land 0xFF0000 <> 0 then 16 + ctz8.((x lsr 16) land 0xFF)
  else 24 + ctz8.((x lsr 24) land 0xFF)

type t = {
  ring : event list array;
  summary : int array; (* bit (i mod 32) of word (i / 32) ⇔ ring.(i) <> [] *)
  overflow : event Heap.t;
  now_queue : event Queue.t; (* scheduled for the current µs *)
  mutable drain : event list; (* current bucket, FIFO order *)
  mutable clock : Time.t;
  mutable pending : int;
  mutable processed : int;
}

let nothing = Fn (fun () -> ())

let create () =
  {
    ring = Array.make horizon [];
    summary = Array.make summary_words 0;
    overflow = Heap.create ~capacity:64 ~dummy:nothing ();
    now_queue = Queue.create ();
    drain = [];
    clock = 0;
    pending = 0;
    processed = 0;
  }

let now t = t.clock

let ring_insert t idx ev =
  t.ring.(idx) <- ev :: t.ring.(idx);
  let w = idx lsr summary_shift in
  t.summary.(w) <- t.summary.(w) lor (1 lsl (idx land 31))

let enqueue t time ev =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  t.pending <- t.pending + 1;
  if time = t.clock then Queue.add ev t.now_queue
  else if time - t.clock < horizon then ring_insert t (time land mask) ev
  else Heap.push t.overflow time ev

let schedule_at t time fn = enqueue t time (Fn fn)
let schedule_ix_at t time fn arg = enqueue t time (Ix (fn, arg))

let schedule_after t span fn =
  if span < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (t.clock + span) fn

(* Move overflow events that now fit in the ring. *)
let migrate t =
  let rec go () =
    match Heap.peek_priority t.overflow with
    | Some time when time - t.clock < horizon ->
        (match Heap.pop t.overflow with
        | Some (time, ev) -> ring_insert t (time land mask) ev
        | None -> ());
        go ()
    | Some _ | None -> ()
  in
  go ()

(* Earliest non-empty ring bucket at a time in (clock, clock + horizon), by
   walking the occupancy summary's set bits. Buckets are visited in
   circular index order starting just past the clock, which is exactly
   ascending time order: every ring event lies within one horizon of the
   clock (enqueue guarantees it on insert, and the clock never passes an
   event without draining its bucket). Returns the event time, or
   [max_int] when the whole ring is empty — plain loops and an int
   sentinel because this runs once per bucket advance and must not
   allocate. *)
let[@inline] bucket_time t ~start w bits =
  let idx = (w lsl summary_shift) lor ctz bits in
  t.clock + 1 + ((idx - start) land mask)

let scan_ring t =
  let start = (t.clock + 1) land mask in
  let w0 = start lsr summary_shift and b0 = start land 31 in
  let bits0 = t.summary.(w0) land (word_mask lsl b0) land word_mask in
  if bits0 <> 0 then bucket_time t ~start w0 bits0
  else begin
    let res = ref max_int in
    let i = ref 1 in
    while !res = max_int && !i < summary_words do
      let w = (w0 + !i) land summary_mask in
      let bits = t.summary.(w) in
      if bits <> 0 then res := bucket_time t ~start w bits;
      incr i
    done;
    if !res = max_int then begin
      (* Wrapped: only the start word's low bits remain unseen. *)
      let bits = t.summary.(w0) land ((1 lsl b0) - 1) in
      if bits <> 0 then res := bucket_time t ~start w0 bits
    end;
    !res
  end

(* Time of the next pending event, advancing the clock up to (but not past)
   it. Returns [None] when the queue is empty. *)
let next_event_time t =
  if t.pending = 0 then None
  else if (not (Queue.is_empty t.now_queue)) || t.drain <> [] then Some t.clock
  else begin
    migrate t;
    let time = scan_ring t in
    if time <> max_int then Some time
    else
      (* Ring empty: only overflow events remain, all at least one
         horizon out. Jump the clock so the earliest fits, migrate, and
         rescan. *)
      match Heap.peek_priority t.overflow with
      | None -> None (* inconsistent pending count; defensive *)
      | Some time ->
          t.clock <- time - horizon + 1;
          migrate t;
          let time = scan_ring t in
          if time <> max_int then Some time else None
  end

let step t =
  match
    (* Order within an instant: first the bucket's already-scheduled events
       (FIFO), then events scheduled for "now" while processing them. *)
    match t.drain with
    | ev :: rest ->
        t.drain <- rest;
        Some ev
    | [] -> (
        if not (Queue.is_empty t.now_queue) then Some (Queue.pop t.now_queue)
        else
          match next_event_time t with
          | None -> None
          | Some time ->
              t.clock <- time;
              let idx = time land mask in
              (match List.rev t.ring.(idx) with
              | ev :: rest ->
                  t.ring.(idx) <- [];
                  let w = idx lsr summary_shift in
                  t.summary.(w) <- t.summary.(w) land lnot (1 lsl (idx land 31));
                  t.drain <- rest;
                  Some ev
              | [] -> None))
  with
  | None -> false
  | Some ev ->
      t.pending <- t.pending - 1;
      t.processed <- t.processed + 1;
      (match ev with Fn fn -> fn () | Ix (fn, arg) -> fn arg);
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some m -> m) in
  let continue = ref true in
  while !continue && !budget > 0 do
    (* Fast path: events at the current instant need no horizon checks. *)
    if (not (Queue.is_empty t.now_queue)) || t.drain <> [] then begin
      ignore (step t);
      decr budget
    end
    else
      match next_event_time t with
      | None -> continue := false
      | Some time -> (
          match until with
          | Some hrz when time > hrz ->
              t.clock <- hrz;
              continue := false
          | _ ->
              ignore (step t);
              decr budget)
  done;
  match until with
  | Some hrz when t.clock < hrz && t.pending = 0 -> t.clock <- hrz
  | _ -> ()

let pending t = t.pending
let events_processed t = t.processed
