(** Point-to-point message transport over a {!Topology}, with bandwidth.

    The model that drives every throughput/latency figure in the paper:

    - each node has a finite {e uplink}; sending a message occupies the
      uplink for [bytes / rate] (serialization delay), FIFO — this is what
      makes full-payload dissemination to all [n] parties saturate and what
      the clan technique relieves;
    - after leaving the uplink, a message takes the topology's one-way
      propagation delay (± jitter) to arrive;
    - links are reliable and FIFO per (src, dst) pair — the TCP assumption
      of §3;
    - partial synchrony: before [gst] every message suffers an additional
      adversarial delay drawn uniformly from [0, pre_gst_max_extra].

    Per-node byte and message counters feed the evaluation harness. *)

type config = {
  uplink_gbps : float;  (** per-node uplink bandwidth, gigabits/s *)
  per_message_overhead : int;  (** framing + transport header bytes *)
  jitter : float;  (** latency noise, fraction of one-way delay *)
  gst : Time.t;  (** global stabilization time *)
  pre_gst_max_extra : Time.span;  (** max adversarial delay before GST *)
  local_delivery : Time.span;  (** self-send loopback delay *)
}

val default_config : config
(** 16 Gbps VM uplink derated to an effective wide-area rate (see
    DESIGN.md), 60-byte overhead, 1% jitter, GST = 0 (benign runs). *)

type 'msg t

val create :
  engine:Engine.t ->
  topology:Topology.t ->
  config:config ->
  size:('msg -> int) ->
  ?kind:('msg -> string) ->
  ?obs:Clanbft_obs.Obs.t ->
  rng:Clanbft_util.Rng.t ->
  unit ->
  'msg t
(** [kind] names a message for the per-kind byte breakdown and trace
    events (default: the constant ["msg"]). [obs] supplies the trace sink
    and metric registry; when omitted, the net creates a private registry
    with tracing disabled, so the byte/message accessors below always
    work and two nets never share counters. *)

val n : _ t -> int

val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Must be installed for every node before traffic reaches it. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit

val multicast : 'msg t -> src:int -> dsts:int list -> 'msg -> unit
(** Unicast fan-out: each copy pays its own serialization delay, like TCP
    fan-out on a real VM.

    Fan-outs of two or more destinations take a batched fast path that is
    {e timing-equivalent} to per-destination {!send} — identical filter
    calls, RNG draws, departure and arrival times, and within-microsecond
    ordering (asserted by [test/test_sim.ml]) — but pays the per-message
    costs once per fan-out: recipients share one delivery closure, the
    counters are bumped once with the copy-count multiple, and the trace
    carries one [Msg_bcast] record plus a single uplink span covering the
    whole burst instead of per-copy [Msg_send]/[Uplink] records. The
    backlog histogram records the burst's initial queue depth once rather
    than a sample per copy. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** [multicast] to all nodes including the sender (self copy is local). *)

val jitter_draw :
  config -> rng:Clanbft_util.Rng.t -> base:Time.span -> Time.span
(** The per-copy latency-jitter draw (µs offset applied to [base], the
    one-way propagation delay). Exposed so tests can pin the
    distribution's symmetry; consumes nothing when [config.jitter = 0]. *)

val set_filter : 'msg t -> (src:int -> dst:int -> 'msg -> bool) -> unit
(** Fault-injection hook: messages for which the filter returns [false] are
    silently dropped. Use only for crash/partition tests — reliable-link
    protocols assume eventual delivery. The slot holds a single closure;
    layered consumers ({!Clanbft_faults.Faults} rules below an adversary
    {!Clanbft_faults.Strategy}) compose by reading the current {!filter}
    and delegating to it. *)

val filter : 'msg t -> (src:int -> dst:int -> 'msg -> bool)
(** The currently installed filter (constant [true] when none was set).
    For wrapping: capture it, then {!set_filter} a closure that delegates. *)

val send_unfiltered : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Like {!send} — full serialization, latency and metric pricing — but the
    copy is never offered to the installed filter. Fault rules re-injecting
    delayed/duplicated traffic and adversary strategies releasing held
    messages use this to avoid re-entering their own (or each other's)
    filter logic. *)

(** {1 Metrics}

    All counters are registry-backed ({!registry}); the accessors below
    are retained shorthands over the canonical metrics. The registry
    additionally carries [net_bytes_by_kind{kind}] /
    [net_messages_by_kind{kind}] breakdowns, an [uplink_backlog_us]
    histogram (queued serialization work observed at each non-local
    enqueue) and [uplink_busy_us_total]. *)

val obs : _ t -> Clanbft_obs.Obs.t
val registry : _ t -> Clanbft_obs.Metrics.registry

val bytes_sent : _ t -> int -> int
val bytes_received : _ t -> int -> int
val messages_sent : _ t -> int -> int
val total_bytes : _ t -> int
val total_messages : _ t -> int

val approx_live_words : _ t -> int
(** Heap-census hook: conservative word estimate of the pooled delivery
    cells, free stack and per-node arrays. See docs/PROFILING.md. *)

val reset_metrics : _ t -> unit
