(** Discrete-event simulation engine.

    A single-threaded event loop over a priority queue keyed by simulated
    time. Ties are processed in scheduling order, so a run is a pure function
    of the initial schedule — which makes Byzantine/partial-synchrony test
    scenarios exactly reproducible. *)

type t

val horizon : Time.span
(** Width of the calendar ring, in µs: events within [horizon] of the
    clock sit in O(1) ring buckets, anything further parks in an overflow
    heap and migrates in as the clock approaches. Exposed so boundary
    tests track the constant. *)

val create : ?ring_bits:int -> unit -> t
(** [ring_bits] sizes the calendar ring ([2^ring_bits] µs, default the
    module-level {!horizon}); events beyond it take the overflow-heap path,
    so the choice is performance-only. Small rings make [create] cheap —
    the [lib/check] explorer rebuilds thousands of n = 4 worlds per search
    and must not pay a 2M-slot allocation each time. Raises
    [Invalid_argument] outside [5..26]. *)

val now : t -> Time.t

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** Raises [Invalid_argument] if the time is in the past. *)

val schedule_ix_at : t -> Time.t -> (int -> unit) -> int -> unit
(** [schedule_ix_at t time fn arg] runs [fn arg] at [time]. Semantically
    [schedule_at t time (fun () -> fn arg)], but the closure is shared:
    a fan-out delivering one message to [n] recipients schedules [n]
    compact (callback, index) cells around a {e single} shared callback
    instead of allocating [n] environments. Ordering within a microsecond
    is unchanged — [Fn] and [Ix] events interleave in scheduling order.
    Raises [Invalid_argument] if the time is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> unit

(** {1 Delivery-choice points}

    Hooks for schedule exploration (see [lib/check] and docs/CHECKING.md):
    an event scheduled through a {e choice point} normally behaves exactly
    like a calendar event, but when {!set_choice_mode} is on it is parked
    in a labelled pool instead, and an external scheduler decides which
    pooled event runs next — turning the engine's fixed calendar order
    into a pluggable delivery order. The default path is untouched: with
    choice mode off (the initial state), {!schedule_choice_at} and
    {!schedule_choice_ix_at} are exact aliases of {!schedule_at} and
    {!schedule_ix_at}, so ordinary runs stay bit-identical. *)

type choice = {
  id : int;  (** creation-order identity, stable across identical replays *)
  time : Time.t;  (** when the calendar would have run the event *)
  src : int;  (** sending node (or [-1] when not a message delivery) *)
  dst : int;  (** receiving node *)
  tag : string;  (** message kind, for human-readable schedules *)
}
(** A pooled event awaiting an external scheduling decision. [id]s are
    assigned in scheduling order by a per-engine counter, so two replays
    of the same decision prefix observe identical ids — the property that
    makes recorded schedules replayable. *)

val set_choice_mode : t -> bool -> unit
(** Turn choice mode on or off. Flip it before any traffic is scheduled:
    already-pooled (or already-enqueued) events are not migrated. *)

val choice_mode : t -> bool

val schedule_choice_at :
  t -> Time.t -> src:int -> dst:int -> tag:string -> (unit -> unit) -> unit
(** Like {!schedule_at} when choice mode is off (identical event cell,
    identical ordering); pools the event when it is on. The labels are
    metadata for the external scheduler and appear in {!choices}. *)

val schedule_choice_ix_at :
  t -> Time.t -> src:int -> dst:int -> tag:string -> (int -> unit) -> int -> unit
(** Shared-closure variant, mirroring {!schedule_ix_at}. *)

val choices : t -> choice list
(** Pending pooled events, in ascending [id] (i.e. creation) order.
    Empty when choice mode is off. *)

val choice_count : t -> int

val fire_choice : t -> int -> unit
(** Run the pooled event with this [id] now, at the current clock (the
    clock does not advance — in choice mode simulated time is driven
    solely by calendar events via {!step}). Raises [Invalid_argument] for
    an unknown or already-fired id. *)

val drop_choice : t -> int -> unit
(** Discard a pooled event without running it (models message loss, e.g.
    a crashed node's queued deliveries). Raises [Invalid_argument] for an
    unknown id. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Process events in time order until the queue empties, the clock passes
    [until], or [max_events] have run. When stopping on [until], the clock is
    left at [until] and any later events stay queued. *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val pending : t -> int
val events_processed : t -> int

val approx_live_words : t -> int
(** Heap-census hook: conservative estimate of the words held live by this
    engine (ring + summary arrays, pending event cells, overflow heap,
    choice pool). See docs/PROFILING.md. *)
