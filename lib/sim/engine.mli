(** Discrete-event simulation engine.

    A single-threaded event loop over a priority queue keyed by simulated
    time. Ties are processed in scheduling order, so a run is a pure function
    of the initial schedule — which makes Byzantine/partial-synchrony test
    scenarios exactly reproducible. *)

type t

val horizon : Time.span
(** Width of the calendar ring, in µs: events within [horizon] of the
    clock sit in O(1) ring buckets, anything further parks in an overflow
    heap and migrates in as the clock approaches. Exposed so boundary
    tests track the constant. *)

val create : unit -> t

val now : t -> Time.t

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** Raises [Invalid_argument] if the time is in the past. *)

val schedule_ix_at : t -> Time.t -> (int -> unit) -> int -> unit
(** [schedule_ix_at t time fn arg] runs [fn arg] at [time]. Semantically
    [schedule_at t time (fun () -> fn arg)], but the closure is shared:
    a fan-out delivering one message to [n] recipients schedules [n]
    compact (callback, index) cells around a {e single} shared callback
    instead of allocating [n] environments. Ordering within a microsecond
    is unchanged — [Fn] and [Ix] events interleave in scheduling order.
    Raises [Invalid_argument] if the time is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> unit

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Process events in time order until the queue empties, the clock passes
    [until], or [max_events] have run. When stopping on [until], the clock is
    left at [until] and any later events stay queued. *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val pending : t -> int
val events_processed : t -> int
