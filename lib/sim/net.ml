module Rng = Clanbft_util.Rng
module Obs = Clanbft_obs.Obs
module Metrics = Clanbft_obs.Metrics
module Trace = Clanbft_obs.Trace
module Stats = Clanbft_util.Stats
module Prof = Clanbft_obs.Prof

let sec_send = Prof.section "net.send"
let sec_fanout = Prof.section "net.fanout"

type config = {
  uplink_gbps : float;
  per_message_overhead : int;
  jitter : float;
  gst : Time.t;
  pre_gst_max_extra : Time.span;
  local_delivery : Time.span;
}

let default_config =
  {
    (* e2-standard-32 advertises "up to 16 Gbps"; sustained wide-area TCP
       goodput on such instances is far lower. We model an effective
       per-node uplink of 2 Gbps, which reproduces the saturation knees of
       Fig. 5 (see EXPERIMENTS.md for the calibration note). *)
    uplink_gbps = 2.0;
    per_message_overhead = 60;
    jitter = 0.01;
    gst = 0;
    pre_gst_max_extra = 0;
    local_delivery = 20;
  }

(* Per-kind instruments, resolved once per kind string and cached so the
   per-send cost is one hashtable probe (the registry lookup allocates a
   label list; this cache avoids that on the hot path). *)
type kind_handles = { k_bytes : Metrics.counter; k_msgs : Metrics.counter }

(* One in-flight unicast delivery, recycled through a free stack so the
   steady-state unicast path allocates nothing per message (loopback
   copies in particular fire one per proposal per replica). The [c_msg]
   slot is cleared when the cell is freed so the pool never pins a dead
   message against the GC. *)
type 'msg cell = {
  mutable c_src : int;
  mutable c_dst : int;
  mutable c_bytes : int;
  mutable c_kind : string;
  mutable c_arrival : Time.t;
  mutable c_msg : 'msg option;
}

type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  config : config;
  size : 'msg -> int;
  kind : 'msg -> string;
  rng : Rng.t;
  obs : Obs.t;
  handlers : (src:int -> 'msg -> unit) array;
  uplink_free : Time.t array; (* when each node's uplink next idles *)
  mutable filter : src:int -> dst:int -> 'msg -> bool;
  (* Registry-backed counters (the former bespoke int arrays): handles are
     resolved at construction, so updates cost the same integer add. *)
  bytes_sent : Metrics.counter array;
  bytes_received : Metrics.counter array;
  messages_sent : Metrics.counter array;
  total_bytes : Metrics.counter;
  total_messages : Metrics.counter;
  by_kind : (string, kind_handles) Hashtbl.t;
  uplink_backlog : Metrics.histogram; (* µs of queued serialization work *)
  uplink_busy : Metrics.counter; (* total µs the uplinks spent serializing *)
  (* Pooled unicast deliveries: every copy costs one compact [Engine.Ix]
     cell (shared trampoline + cell index) instead of a fresh closure.
     [deliver_ix] is the single trampoline, tied back to [t] right after
     construction. Under lib/check's choice mode a dropped choice leaks
     its cell until the world is discarded — bounded by the choice pool. *)
  mutable cells : 'msg cell array;
  mutable free_stack : int array;
  mutable free_top : int;
  mutable deliver_ix : int -> unit;
}

let no_handler ~src:_ _ =
  failwith "Net: message delivered to a node with no handler installed"

let fresh_cell () =
  { c_src = 0; c_dst = 0; c_bytes = 0; c_kind = ""; c_arrival = 0; c_msg = None }

let alloc_cell t =
  if t.free_top = 0 then begin
    let old = Array.length t.cells in
    t.cells <-
      Array.init (2 * old) (fun i -> if i < old then t.cells.(i) else fresh_cell ());
    let free = Array.make (2 * old) 0 in
    for i = 0 to old - 1 do
      free.(i) <- old + i
    done;
    t.free_stack <- free;
    t.free_top <- old
  end;
  t.free_top <- t.free_top - 1;
  t.free_stack.(t.free_top)

(* The shared trampoline behind every pooled delivery. The cell is freed
   {e before} the handler runs: handlers send, and the reply may reuse the
   slot immediately. *)
let deliver_cell t ix =
  let c = t.cells.(ix) in
  let src = c.c_src and dst = c.c_dst in
  let bytes = c.c_bytes and kind = c.c_kind and arrival = c.c_arrival in
  let msg = match c.c_msg with Some m -> m | None -> assert false in
  c.c_msg <- None;
  t.free_stack.(t.free_top) <- ix;
  t.free_top <- t.free_top + 1;
  Metrics.add t.bytes_received.(dst) bytes;
  if Trace.enabled t.obs.Obs.trace then
    Trace.emit t.obs.Obs.trace ~ts:arrival (Trace.Msg_recv { src; dst; kind; bytes });
  t.handlers.(dst) ~src msg

let create ~engine ~topology ~config ~size ?(kind = fun _ -> "msg") ?obs ~rng () =
  let n = Topology.n topology in
  (* Each net gets its own registry unless the caller shares one: the
     byte/message accessors below read these counters, so two nets must
     never alias. *)
  let obs = match obs with Some o -> o | None -> Obs.metrics_only () in
  let reg = obs.Obs.metrics in
  let per_node name =
    Array.init n (fun i ->
        Metrics.counter reg ~labels:[ ("node", string_of_int i) ] name)
  in
  let t =
    {
    engine;
    topology;
    config;
    size;
    kind;
    rng;
    obs;
    handlers = Array.make n no_handler;
    uplink_free = Array.make n 0;
    filter = (fun ~src:_ ~dst:_ _ -> true);
    bytes_sent = per_node "net_bytes_sent";
    bytes_received = per_node "net_bytes_received";
    messages_sent = per_node "net_messages_sent";
    total_bytes = Metrics.counter reg "net_bytes_total";
    total_messages = Metrics.counter reg "net_messages_total";
    by_kind = Hashtbl.create 16;
      uplink_backlog =
        Metrics.histogram reg ~buckets:Stats.Histogram.size_buckets
          "uplink_backlog_us";
      uplink_busy = Metrics.counter reg "uplink_busy_us_total";
      cells = Array.init 64 (fun _ -> fresh_cell ());
      free_stack = Array.init 64 Fun.id;
      free_top = 64;
      deliver_ix = ignore;
    }
  in
  t.deliver_ix <- deliver_cell t;
  t

let n t = Topology.n t.topology
let set_handler t i fn = t.handlers.(i) <- fn
let set_filter t f = t.filter <- f
let filter t = t.filter
let obs t = t.obs
let registry t = t.obs.Obs.metrics

let kind_handles t kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some h -> h
  | None ->
      let reg = t.obs.Obs.metrics in
      let h =
        {
          k_bytes = Metrics.counter reg ~labels:[ ("kind", kind) ] "net_bytes_by_kind";
          k_msgs = Metrics.counter reg ~labels:[ ("kind", kind) ] "net_messages_by_kind";
        }
      in
      Hashtbl.replace t.by_kind kind h;
      h

(* Serialization delay in µs for [bytes] at [gbps]:
   bytes * 8 bits / (gbps * 1e9 bit/s) seconds = bytes * 8 / (gbps * 1e3) µs *)
let serialization_us config bytes =
  int_of_float (ceil (float_of_int bytes *. 8.0 /. (config.uplink_gbps *. 1_000.0)))

(* Latency jitter for one copy, in µs. Draws nothing when jitter is off, so
   a jitter-free run consumes an identical RNG stream.

   The draw must be symmetric around zero: u is uniform on [-1, 1) and the
   scaled value is rounded to nearest, so every integer offset k and its
   mirror -k are equally likely. (An earlier version truncated toward zero,
   which folded the whole (-1, 1) µs band into a double-width zero bin and
   shifted every bin boundary by a full µs, and together with the included
   -1.0 endpoint biased the mean downward — visible in tail percentiles at
   scale.) *)
let jitter_draw config ~rng ~base =
  if config.jitter = 0.0 then 0
  else
    let u = (2.0 *. Rng.float rng 1.0) -. 1.0 in
    int_of_float (Float.round (float_of_int base *. config.jitter *. u))

(* [bytes]/[kind] are computed once in [send] and threaded through so the
   receive path never re-serializes the message. Every delivery is
   scheduled through an engine choice point: in ordinary runs that is an
   exact alias of [schedule_ix_at], while under lib/check's choice mode
   the delivery order becomes an external scheduling decision. The state
   rides in a pooled cell, so the scheduling itself allocates nothing. *)
let deliver t ~src ~dst ~bytes ~kind msg arrival =
  let ix = alloc_cell t in
  let c = t.cells.(ix) in
  c.c_src <- src;
  c.c_dst <- dst;
  c.c_bytes <- bytes;
  c.c_kind <- kind;
  c.c_arrival <- arrival;
  c.c_msg <- Some msg;
  Engine.schedule_choice_ix_at t.engine arrival ~src ~dst ~tag:kind t.deliver_ix
    ix

(* The core path with the filter already consulted (or deliberately
   bypassed) and [bytes]/[kind] already priced: fan-out entry points
   compute them once per message, not once per recipient. *)
let send_priced_unchecked t ~src ~dst ~bytes ~kind msg =
  begin
    Prof.enter sec_send;
    let now = Engine.now t.engine in
    Metrics.add t.bytes_sent.(src) bytes;
    Metrics.incr t.messages_sent.(src);
    Metrics.add t.total_bytes bytes;
    Metrics.incr t.total_messages;
    let kh = kind_handles t kind in
    Metrics.add kh.k_bytes bytes;
    Metrics.incr kh.k_msgs;
    let tr = t.obs.Obs.trace in
    if Trace.enabled tr then
      Trace.emit tr ~ts:now (Trace.Msg_send { src; dst; kind; bytes });
    if src = dst then
      deliver t ~src ~dst ~bytes ~kind msg (now + t.config.local_delivery)
    else begin
      let backlog = max 0 (t.uplink_free.(src) - now) in
      Metrics.observe t.uplink_backlog (float_of_int backlog);
      let ser = serialization_us t.config bytes in
      Metrics.add t.uplink_busy ser;
      let start = max now t.uplink_free.(src) in
      let depart = start + ser in
      t.uplink_free.(src) <- depart;
      if Trace.enabled tr then
        Trace.emit tr ~ts:now
          (Trace.Uplink { node = src; kind; bytes; enqueued = now; start; depart });
      let base_latency = Topology.one_way t.topology ~src ~dst in
      let jitter = jitter_draw t.config ~rng:t.rng ~base:base_latency in
      let adversarial =
        if now < t.config.gst && t.config.pre_gst_max_extra > 0 then
          Rng.int t.rng (t.config.pre_gst_max_extra + 1)
        else 0
      in
      let arrival = depart + max 0 (base_latency + jitter) + adversarial in
      deliver t ~src ~dst ~bytes ~kind msg arrival
    end;
    Prof.leave sec_send
  end

let send_priced t ~src ~dst ~bytes ~kind msg =
  if t.filter ~src ~dst msg then send_priced_unchecked t ~src ~dst ~bytes ~kind msg

let price t msg = (t.size msg + t.config.per_message_overhead, t.kind msg)

let send t ~src ~dst msg =
  let bytes, kind = price t msg in
  send_priced t ~src ~dst ~bytes ~kind msg

(* Re-injection path for fault rules and adversary strategies: the copy
   pays full serialization/latency pricing but is never offered to the
   installed filter, so a filter closure may call this without recursing
   into itself (or into filters layered above it). *)
let send_unfiltered t ~src ~dst msg =
  let bytes, kind = price t msg in
  send_priced_unchecked t ~src ~dst ~bytes ~kind msg

(* Batched fan-out: the same priced message to every destination produced by
   [iter], in iteration order. Event for event this is equivalent to calling
   [send_priced] per destination — same filter consultations, same RNG
   draws in the same order, same departure and arrival microseconds, same
   within-bucket scheduling order — but the per-message costs are paid once
   per fan-out instead of once per copy:

   - recipients share a single delivery closure, each copy costing one
     compact [Engine.Ix] cell in the ring instead of its own environment;
   - serialization is priced once ([ser]) and the per-copy departures are
     derived from it as the uplink FIFO advances;
   - counters are bumped once with the accepted-copy multiple, and the
     backlog histogram records the burst's initial queue depth rather than
     [n] self-inflicted samples;
   - the trace carries one [Msg_bcast] record plus one uplink span covering
     the whole burst (contiguous by FIFO construction: the span's
     [depart - start] equals the summed per-copy serialization).

   The filter runs inside the loop and may legitimately re-enter [send]
   (fault delay/duplicate re-injection), so the uplink cursor
   [t.uplink_free.(src)] is re-read on every iteration rather than cached. *)
let fanout t ~src ~iter msg =
  Prof.enter sec_fanout;
  let bytes, kind = price t msg in
  let now = Engine.now t.engine in
  let ser = serialization_us t.config bytes in
  let recv dst =
    Metrics.add t.bytes_received.(dst) bytes;
    if Trace.enabled t.obs.Obs.trace then
      Trace.emit t.obs.Obs.trace ~ts:(Engine.now t.engine)
        (Trace.Msg_recv { src; dst; kind; bytes });
    t.handlers.(dst) ~src msg
  in
  let accepted = ref 0 and remote = ref 0 in
  let first_backlog = ref 0 and first_start = ref 0 and last_depart = ref 0 in
  iter (fun dst ->
      if t.filter ~src ~dst msg then begin
        incr accepted;
        if dst = src then
          Engine.schedule_choice_ix_at t.engine (now + t.config.local_delivery)
            ~src ~dst ~tag:kind recv dst
        else begin
          let free = t.uplink_free.(src) in
          let start = max now free in
          let depart = start + ser in
          t.uplink_free.(src) <- depart;
          if !remote = 0 then begin
            first_backlog := max 0 (free - now);
            first_start := start
          end;
          incr remote;
          last_depart := depart;
          let base_latency = Topology.one_way t.topology ~src ~dst in
          let jitter = jitter_draw t.config ~rng:t.rng ~base:base_latency in
          let adversarial =
            if now < t.config.gst && t.config.pre_gst_max_extra > 0 then
              Rng.int t.rng (t.config.pre_gst_max_extra + 1)
            else 0
          in
          let arrival = depart + max 0 (base_latency + jitter) + adversarial in
          Engine.schedule_choice_ix_at t.engine arrival ~src ~dst ~tag:kind recv
            dst
        end
      end);
  if !accepted > 0 then begin
    Metrics.add t.bytes_sent.(src) (bytes * !accepted);
    Metrics.add t.messages_sent.(src) !accepted;
    Metrics.add t.total_bytes (bytes * !accepted);
    Metrics.add t.total_messages !accepted;
    let kh = kind_handles t kind in
    Metrics.add kh.k_bytes (bytes * !accepted);
    Metrics.add kh.k_msgs !accepted;
    if !remote > 0 then begin
      Metrics.observe t.uplink_backlog (float_of_int !first_backlog);
      Metrics.add t.uplink_busy (ser * !remote)
    end;
    let tr = t.obs.Obs.trace in
    if Trace.enabled tr then begin
      Trace.emit tr ~ts:now
        (Trace.Msg_bcast { src; kind; bytes; count = !accepted });
      if !remote > 0 then
        Trace.emit tr ~ts:now
          (Trace.Uplink
             {
               node = src;
               kind;
               bytes = bytes * !remote;
               enqueued = now;
               start = !first_start;
               depart = !last_depart;
             })
    end
  end;
  Prof.leave sec_fanout

let multicast t ~src ~dsts msg =
  match dsts with
  | [] -> ()
  | [ dst ] -> send t ~src ~dst msg
  | dsts -> fanout t ~src ~iter:(fun f -> List.iter f dsts) msg

let broadcast t ~src msg =
  let count = n t in
  fanout t ~src
    ~iter:(fun f ->
      for dst = 0 to count - 1 do
        f dst
      done)
    msg

let bytes_sent t i = Metrics.counter_value t.bytes_sent.(i)
let bytes_received t i = Metrics.counter_value t.bytes_received.(i)
let messages_sent t i = Metrics.counter_value t.messages_sent.(i)
let total_bytes t = Metrics.counter_value t.total_bytes
let total_messages t = Metrics.counter_value t.total_messages

(* Heap-census hook: the pooled delivery cells dominate (8 fields + header
   each); the parallel free stack, uplink cursors and handler slots ride
   along. Message payloads referenced by in-flight cells are counted by
   their owning subsystems, not here. *)
let approx_live_words t =
  (9 * Array.length t.cells)
  + Array.length t.free_stack
  + Array.length t.uplink_free
  + Array.length t.handlers

let reset_metrics t =
  Array.iter Metrics.reset_counter t.bytes_sent;
  Array.iter Metrics.reset_counter t.bytes_received;
  Array.iter Metrics.reset_counter t.messages_sent;
  Metrics.reset_counter t.total_bytes;
  Metrics.reset_counter t.total_messages;
  Hashtbl.iter
    (fun _ kh ->
      Metrics.reset_counter kh.k_bytes;
      Metrics.reset_counter kh.k_msgs)
    t.by_kind;
  (* Uplink occupancy state must not leak into the next measured section:
     the busy counter and backlog histogram are observations, and the FIFO
     cursors only matter relative to the engine clock of the traffic that
     built them up. *)
  Metrics.reset_counter t.uplink_busy;
  Stats.Histogram.reset (Metrics.hist t.uplink_backlog);
  Array.fill t.uplink_free 0 (Array.length t.uplink_free) 0