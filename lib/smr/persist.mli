(** Simulated persistent consensus store (the paper uses RocksDB).

    The evaluation attributes part of the large-scale latency to database
    work, so persistence is modelled rather than ignored: every put charges
    a configurable synchronous latency budget to a per-node storage queue;
    readers observe data only after its write completes. Payload bytes are
    accounted but, to keep multi-gigabyte experiments cheap, actual content
    storage is optional ([data = None] stores metadata only — used by the
    benches; tests store real bytes and read them back). *)

open Clanbft_sim

type t

val create :
  engine:Engine.t ->
  ?write_latency:Time.span ->
  ?write_bandwidth_mbps:float ->
  unit ->
  t
(** Defaults: 100 µs fixed latency per write plus 400 MB/s sequential
    bandwidth — conservative figures for a cloud NVMe volume running a
    RocksDB WAL. *)

val put :
  t ->
  key:string ->
  size:int ->
  ?data:string ->
  on_durable:(unit -> unit) ->
  unit ->
  unit
(** Queue a write; [on_durable] fires when it hits "disk". *)

val get : t -> key:string -> string option
(** Contents of a durable write made with [?data]; [None] otherwise. *)

val is_durable : t -> key:string -> bool
val writes : t -> int
val bytes_written : t -> int
val backlog : t -> int
(** Writes queued but not yet durable. *)

(** {1 Write-ahead log}

    An ordered, deduplicated sub-namespace of the store used for crash
    recovery: a node journals every RBC delivery before acting on it and
    replays the log after a restart (see [docs/RECOVERY.md]). Appends pay
    the same simulated disk costs as {!put}. *)

val wal_append : t -> key:string -> data:string -> unit
(** Queue one log record. A key already appended (durable {e or} still in
    flight) is skipped, so replay-then-relearn paths cannot double-journal
    a slot. The record becomes visible to {!wal_iter} once durable. *)

val wal_size : t -> int
(** Durable WAL records. *)

val wal_iter : t -> (key:string -> data:string -> unit) -> unit
(** Iterate durable records in durability order — the disk queue is FIFO,
    so this equals append order, and a prefix of it survives any crash. *)

val approx_live_words : t -> int
(** Heap-census hook: word estimate of the durable table (keys and stored
    payloads) and WAL bookkeeping. See docs/PROFILING.md. *)

val crash : t -> unit
(** Simulate the node's process dying: writes scheduled but not yet
    durable are lost (their [on_durable] callbacks never fire, and WAL
    appends among them may be re-appended later), the queue resets to
    empty at the current simulated time. Durable state is untouched —
    that is the point of the WAL. *)

