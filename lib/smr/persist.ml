open Clanbft_sim
module Prof = Clanbft_obs.Prof

let sec_append = Prof.section "wal.append"
let sec_replay = Prof.section "wal.replay"

type t = {
  engine : Engine.t;
  write_latency : Time.span;
  bytes_per_us : float;
  mutable disk_free_at : Time.t; (* FIFO write queue head *)
  durable : (string, string option) Hashtbl.t;
  mutable writes : int;
  mutable bytes : int;
  mutable backlog : int;
  (* Writes scheduled before a crash but not yet durable belong to a dead
     epoch: their completion callbacks become no-ops (the OS buffer was
     lost with the process). *)
  mutable epoch : int;
  (* Write-ahead log: an ordered, deduplicated sub-namespace of [durable].
     [wal_keys] is the durability order (reversed); [wal_seen] dedups
     appends across the WAL's whole life; [wal_pending] tracks appends
     queued but not yet on disk, so a crash can forget them. *)
  mutable wal_keys : string list;
  mutable wal_count : int;
  wal_seen : (string, unit) Hashtbl.t;
  wal_pending : (string, unit) Hashtbl.t;
}

let create ~engine ?(write_latency = Time.us 100)
    ?(write_bandwidth_mbps = 400.) () =
  if write_bandwidth_mbps <= 0.0 then invalid_arg "Persist.create: bandwidth";
  {
    engine;
    write_latency;
    (* MB/s = bytes/µs numerically. *)
    bytes_per_us = write_bandwidth_mbps;
    disk_free_at = 0;
    durable = Hashtbl.create 1024;
    writes = 0;
    bytes = 0;
    backlog = 0;
    epoch = 0;
    wal_keys = [];
    wal_count = 0;
    wal_seen = Hashtbl.create 1024;
    wal_pending = Hashtbl.create 64;
  }

let put t ~key ~size ?data ~on_durable () =
  if size < 0 then invalid_arg "Persist.put: negative size";
  let now = Engine.now t.engine in
  let transfer = int_of_float (ceil (float_of_int size /. t.bytes_per_us)) in
  let done_at = max now t.disk_free_at + t.write_latency + transfer in
  t.disk_free_at <- done_at;
  t.writes <- t.writes + 1;
  t.bytes <- t.bytes + size;
  t.backlog <- t.backlog + 1;
  let epoch = t.epoch in
  Engine.schedule_at t.engine done_at (fun () ->
      if t.epoch = epoch then begin
        Hashtbl.replace t.durable key data;
        t.backlog <- t.backlog - 1;
        on_durable ()
      end)

let get t ~key = Option.join (Hashtbl.find_opt t.durable key)
let is_durable t ~key = Hashtbl.mem t.durable key
let writes t = t.writes
let bytes_written t = t.bytes
let backlog t = t.backlog

(* ------------------------------------------------------------------ *)
(* Write-ahead log *)

let wal_append t ~key ~data =
  Prof.enter sec_append;
  if not (Hashtbl.mem t.wal_seen key) then begin
    Hashtbl.replace t.wal_seen key ();
    Hashtbl.replace t.wal_pending key ();
    put t ~key ~size:(String.length data) ~data
      ~on_durable:(fun () ->
        Hashtbl.remove t.wal_pending key;
        t.wal_keys <- key :: t.wal_keys;
        t.wal_count <- t.wal_count + 1)
      ()
  end;
  Prof.leave sec_append

let wal_size t = t.wal_count

let wal_iter t f =
  Prof.enter sec_replay;
  List.iter
    (fun key ->
      match get t ~key with Some data -> f ~key ~data | None -> ())
    (List.rev t.wal_keys);
  Prof.leave sec_replay

(* Heap census: durable keys/payloads plus WAL bookkeeping. Keys in
   [wal_seen]/[wal_pending] are shared with [durable], so those tables
   contribute bucket overhead only. *)
let approx_live_words t =
  let words = ref (16 + (3 * List.length t.wal_keys)) in
  Hashtbl.iter
    (fun key data ->
      words :=
        !words + 6
        + ((String.length key + 8) / 8)
        + (match data with
          | Some d -> 2 + ((String.length d + 8) / 8)
          | None -> 0))
    t.durable;
  !words + (4 * (Hashtbl.length t.wal_seen + Hashtbl.length t.wal_pending))

let crash t =
  t.epoch <- t.epoch + 1;
  t.disk_free_at <- Engine.now t.engine;
  t.backlog <- 0;
  (* Appends that never reached the platter are lost: forget them so the
     recovered node can journal the same slot again. *)
  Hashtbl.iter (fun key () -> Hashtbl.remove t.wal_seen key) t.wal_pending;
  Hashtbl.reset t.wal_pending
