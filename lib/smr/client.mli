(** Client-side transaction tracking.

    Implements the paper's client acceptance rule (§1): a transaction is
    complete once [fc + 1] distinct members of the executing clan return
    {e matching} execution receipts — with at most [fc] Byzantine clan
    members, at least one honest executor stands behind any accepted
    result. *)

open Clanbft_types
open Clanbft_crypto

type t

val create :
  engine:Clanbft_sim.Engine.t ->
  config:Config.t ->
  id:int ->
  ?on_complete:(Transaction.t -> latency:Clanbft_sim.Time.span -> unit) ->
  unit ->
  t
(** Raises [Invalid_argument] if [id] does not fit the 22 client-id bits
    of the transaction-id packing (see {!make_txn}). *)

val make_txn : t -> ?size:int -> unit -> Transaction.t
(** Fresh transaction stamped with the current simulated time; ids are
    unique per client: 22 bits of client [id] (high) packed with 40 bits
    of sequence number (low), staying inside OCaml's 63-bit [int]. Raises
    [Invalid_argument] once the per-client sequence space is exhausted
    ([2^40] transactions) rather than silently colliding. *)

val track : t -> Transaction.t -> clan:int -> unit
(** Register the transaction as submitted towards [clan]; responses are
    matched against that clan's [fc + 1] threshold. *)

val deliver_response : t -> executor:int -> Transaction.t -> Digest32.t -> unit
(** Feed one replica's receipt. Mismatching digests are kept apart: only a
    digest vouched for by [fc + 1] distinct clan members completes the
    transaction. *)

val completed : t -> int

val pending : t -> int
(** Tracked transactions not yet completed — O(1). Completed entries are
    evicted from the tracking table (only counters and latency stats are
    retained), so a long-lived client's footprint is bounded by its
    in-flight window, not its lifetime. *)

val mean_latency_ms : t -> float
(** Mean submit→accept latency over completed transactions. *)
