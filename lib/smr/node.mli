(** A full replica: consensus + mempool + execution + persistence.

    Wires a {!Clanbft_consensus.Sailfish} instance to the node-local
    services: block proposals draw from the mempool (or a synthetic
    workload generator), committed vertices enter an execution queue that
    drains in a_deliver order as blocks become locally available, executed
    transactions produce client receipts, and delivered data is charged to
    the simulated persistent store.

    In clan modes a replica executes a block only if it belongs to the
    proposer's clan; other clans' blocks are folded into the state chain by
    digest ({!Execution.skip_block}), so the global order stays common
    while payloads stay partitioned — the multi-clan execution model of
    §6. *)

open Clanbft_types
open Clanbft_crypto

type t

val create :
  me:int ->
  config:Config.t ->
  keychain:Keychain.t ->
  engine:Clanbft_sim.Engine.t ->
  net:Msg.t Clanbft_sim.Net.t ->
  ?params:Clanbft_consensus.Sailfish.params ->
  ?obs:Clanbft_obs.Obs.t ->
  ?max_block_txns:int ->
  ?persist:Persist.t ->
  ?generate:(round:int -> Transaction.t array) ->
  ?on_commit:(leader:Vertex.t -> Vertex.t list -> unit) ->
  ?on_txn_executed:(Transaction.t -> Digest32.t -> unit) ->
  unit ->
  t
(** [generate] overrides the mempool as the proposal source (synthetic
    workloads stamp transactions at proposal time, like §7's load
    generator). [max_block_txns] caps a proposal (default 6000, the paper's
    maximum). [on_commit] observes the raw a_deliver stream;
    [on_txn_executed] observes execution receipts (clan members only).
    [obs] is forwarded to {!Clanbft_consensus.Sailfish.create}. *)

val start : t -> unit

(** {1 Crash recovery}

    When the node was given a [persist] store it maintains a write-ahead
    log there: every RBC-delivered vertex is journalled before the
    consensus layer acts on it, locally available blocks are journalled
    with their payload, and each round this node proposes in is marked
    before the proposal leaves. The restart sequence is: {!stop} the dying
    node; [create] a fresh one over the {e same} [Persist.t]; {!recover}
    it from the log; {!start_recovered} it (instead of [start]). See
    [docs/RECOVERY.md]. *)

val stop : t -> unit
(** Tear the replica down: the consensus instance is halted (messages
    dropped, timers dead) and the persistent store crashes — queued
    writes that were not yet durable are lost. *)

val recover : t -> unit
(** Replay the write-ahead log into a freshly created node: blocks first,
    then vertices in journal order (re-committing and re-executing the
    pre-crash ledger prefix), then own-proposal markers (equivocation
    guard). A no-op without a persistent store. *)

val start_recovered : t -> unit
(** Enter state sync ({!Clanbft_consensus.Sailfish.start_recovery}):
    fetch certified vertices past the journal's end from peers and start
    proposing only once caught up. *)

val me : t -> int
val submit : t -> Transaction.t -> bool
(** Client-facing mempool entry; [false] on back-pressure. *)

val consensus : t -> Clanbft_consensus.Sailfish.t
val execution : t -> Execution.t
val mempool : t -> Mempool.t

val executed_txns : t -> int
val exec_backlog : t -> int
(** Committed vertices whose blocks have not yet executed locally. *)

val census : t -> (string * int) list
(** Heap-census rows for this node: mempool, WAL (when persistence is on)
    and the consensus layer's subsystems (see
    {!Clanbft_consensus.Sailfish.census}). Approximate live words per
    subsystem; see docs/PROFILING.md. *)
