(** Per-node transaction queue feeding block proposals. *)

open Clanbft_types

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the queue (default 1_000_000); beyond it submissions
    are rejected — back-pressure towards clients. *)

val submit : t -> Transaction.t -> bool
(** [false] when the pool is full. *)

val take : t -> max:int -> Transaction.t array
(** Remove and return up to [max] transactions, FIFO. *)

val pending : t -> int
val submitted_total : t -> int
val rejected_total : t -> int

val approx_live_words : t -> int
(** Heap-census hook: word estimate of the queued transactions. See
    docs/PROFILING.md. *)
