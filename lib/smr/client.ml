open Clanbft_types
open Clanbft_crypto
module Engine = Clanbft_sim.Engine
module Stats = Clanbft_util.Stats

type tracked = {
  txn : Transaction.t;
  clan : int;
  required : int;
  (* per candidate digest: which executors vouched for it *)
  votes : Clanbft_util.Bitset.t Digest32.Tbl.t;
}

type t = {
  engine : Engine.t;
  config : Config.t;
  id : int;
  on_complete : (Transaction.t -> latency:Clanbft_sim.Time.span -> unit) option;
  inflight : (int, tracked) Hashtbl.t;
  mutable pending : int;
  mutable next_seq : int;
  mutable completed : int;
  latencies : Stats.t;
}

(* Transaction ids pack (client id, sequence) into one int: [id lsl 40]
   leaves 40 bits of sequence space, and 22 client-id bits keep the pack
   inside OCaml's 63-bit int (sign bit untouched). *)
let max_client_id = (1 lsl 22) - 1
let max_seq = 1 lsl 40

let create ~engine ~config ~id ?on_complete () =
  if id < 0 || id > max_client_id then
    invalid_arg "Client.create: id out of range (22 bits)";
  {
    engine;
    config;
    id;
    on_complete;
    inflight = Hashtbl.create 64;
    pending = 0;
    next_seq = 0;
    completed = 0;
    latencies = Stats.create ();
  }

let make_txn t ?size () =
  if t.next_seq >= max_seq then
    invalid_arg "Client.make_txn: sequence space exhausted (40 bits)";
  let id = (t.id lsl 40) lor t.next_seq in
  t.next_seq <- t.next_seq + 1;
  Transaction.make ~id ~client:t.id ~created_at:(Engine.now t.engine) ?size ()

let track t txn ~clan =
  if clan < 0 || clan >= Config.clan_count t.config then
    invalid_arg "Client.track: no such clan";
  let required = Config.clan_fault_bound t.config clan + 1 in
  if not (Hashtbl.mem t.inflight txn.Transaction.id) then
    t.pending <- t.pending + 1;
  Hashtbl.replace t.inflight txn.Transaction.id
    { txn; clan; required; votes = Digest32.Tbl.create 2 }

let deliver_response t ~executor txn digest =
  match Hashtbl.find_opt t.inflight txn.Transaction.id with
  | None -> () (* unknown or already completed (entry evicted) *)
  | Some tracked ->
      if Config.clan_of t.config executor = Some tracked.clan then begin
        let votes =
          match Digest32.Tbl.find_opt tracked.votes digest with
          | Some b -> b
          | None ->
              let b = Clanbft_util.Bitset.create (Config.n t.config) in
              Digest32.Tbl.replace tracked.votes digest b;
              b
        in
        if
          Clanbft_util.Bitset.add votes executor
          && Clanbft_util.Bitset.cardinal votes >= tracked.required
        then begin
          let now = Engine.now t.engine in
          (* Evict on completion: a long-lived client would otherwise
             retain one tracked entry (votes and all) per transaction it
             ever sent. The counters and latency stats survive eviction;
             stray late responses fall into the [None] branch above. *)
          Hashtbl.remove t.inflight txn.Transaction.id;
          t.pending <- t.pending - 1;
          t.completed <- t.completed + 1;
          let latency = now - tracked.txn.created_at in
          Stats.add t.latencies (Clanbft_sim.Time.to_ms latency);
          match t.on_complete with
          | Some f -> f tracked.txn ~latency
          | None -> ()
        end
      end

let completed t = t.completed
let pending t = t.pending

let mean_latency_ms t = if Stats.is_empty t.latencies then 0.0 else Stats.mean t.latencies
