open Clanbft_types

type t = {
  queue : Transaction.t Queue.t;
  capacity : int;
  mutable submitted : int;
  mutable rejected : int;
}

let create ?(capacity = 1_000_000) () =
  { queue = Queue.create (); capacity; submitted = 0; rejected = 0 }

let submit t txn =
  if Queue.length t.queue >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    Queue.add txn t.queue;
    t.submitted <- t.submitted + 1;
    true
  end

let take t ~max =
  (* An explicit loop: [Array.init] with an effectful initializer would pop
     in unspecified element order, scrambling FIFO fairness. *)
  let count = min max (Queue.length t.queue) in
  if count = 0 then [||]
  else begin
    let first = Queue.pop t.queue in
    let out = Array.make count first in
    for i = 1 to count - 1 do
      out.(i) <- Queue.pop t.queue
    done;
    out
  end

let pending t = Queue.length t.queue
let submitted_total t = t.submitted
let rejected_total t = t.rejected

(* Heap census: one Queue cell (~4 words) plus the transaction record per
   pending entry. *)
let approx_live_words t = 8 + (Queue.length t.queue * (4 + 8))
