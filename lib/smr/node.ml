open Clanbft_types
open Clanbft_crypto
module Sailfish = Clanbft_consensus.Sailfish

type t = {
  me : int;
  config : Config.t;
  mutable consensus : Sailfish.t option; (* set during construction *)
  mempool : Mempool.t;
  execution : Execution.t;
  persist : Persist.t option;
  exec_queue : Vertex.t Queue.t;
  executes : bool;
  on_txn_executed : (Transaction.t -> Digest32.t -> unit) option;
}

let me t = t.me
let consensus t = Option.get t.consensus
let execution t = t.execution
let mempool t = t.mempool
let submit t txn = Mempool.submit t.mempool txn
let executed_txns t = Execution.executed_txns t.execution
let exec_backlog t = Queue.length t.exec_queue

(* Drain the execution queue in order; stop at the first vertex whose block
   is still in flight (it is being pulled — §5's "execution lags
   consensus"). *)
let rec drain t =
  match Queue.peek_opt t.exec_queue with
  | None -> ()
  | Some (v : Vertex.t) ->
      let has_block = Digest32.equal v.block_digest Digest32.zero = false in
      if not has_block then begin
        (* Vertex-only proposal: nothing to execute. *)
        ignore (Queue.pop t.exec_queue);
        drain t
      end
      else if Config.in_payload_clan t.config ~proposer:v.source t.me then begin
        match Sailfish.block_of (consensus t) ~round:v.round ~source:v.source with
        | Some block ->
            ignore (Queue.pop t.exec_queue);
            Execution.apply_block t.execution block;
            (match t.on_txn_executed with
            | None -> ()
            | Some callback ->
                Array.iter
                  (fun txn -> callback txn (Execution.response t.execution txn))
                  block.txns);
            drain t
        | None -> () (* block still being fetched; resume on arrival *)
      end
      else begin
        (* Another clan's payload: fold the digest, keep the chain common. *)
        ignore (Queue.pop t.exec_queue);
        Execution.skip_block t.execution v.block_digest;
        drain t
      end

let on_commit_internal t external_hook ~leader vertices =
  (match external_hook with
  | Some hook -> hook ~leader vertices
  | None -> ());
  if t.executes then begin
    List.iter (fun v -> Queue.add v t.exec_queue) vertices;
    drain t
  end;
  match t.persist with
  | None -> ()
  | Some p ->
      List.iter
        (fun (v : Vertex.t) ->
          Persist.put p
            ~key:(Printf.sprintf "vertex/%d/%d" v.round v.source)
            ~size:(Vertex.wire_size ~n:(Config.n t.config) v)
            ~on_durable:(fun () -> ())
            ())
        vertices

let on_block_internal t (b : Block.t) =
  (match t.persist with
  | None -> ()
  | Some p ->
      (* Journal the full block (recovery needs the payload back), plus the
         metadata-only state write the execution path always made. *)
      Persist.wal_append p
        ~key:(Printf.sprintf "wal/b/%d/%d" b.round b.proposer)
        ~data:(Codec.encode_block b);
      Persist.put p
        ~key:(Printf.sprintf "block/%d/%d" b.round b.proposer)
        ~size:(Block.wire_size b)
        ~on_durable:(fun () -> ())
        ());
  if t.executes then drain t

(* WAL hooks: journal every RBC delivery before the consensus layer acts on
   it, and every own-proposal round before its VAL messages leave. *)

let journal_deliver t (v : Vertex.t) =
  match t.persist with
  | None -> ()
  | Some p ->
      Persist.wal_append p
        ~key:(Printf.sprintf "wal/v/%d/%d" v.round v.source)
        ~data:(Codec.encode_vertex ~n:(Config.n t.config) v)

let journal_propose t ~round =
  match t.persist with
  | None -> ()
  | Some p ->
      Persist.wal_append p ~key:(Printf.sprintf "wal/p/%d" round) ~data:""

let create ~me ~config ~keychain ~engine ~net ?params ?obs
    ?(max_block_txns = 6000) ?persist ?generate ?on_commit ?on_txn_executed () =
  let t =
    {
      me;
      config;
      consensus = None;
      mempool = Mempool.create ();
      execution = Execution.create ();
      persist;
      exec_queue = Queue.create ();
      executes = Config.executes_blocks config me;
      on_txn_executed;
    }
  in
  let make_block ~round =
    match generate with
    | Some gen -> gen ~round
    | None -> Mempool.take t.mempool ~max:max_block_txns
  in
  let consensus =
    Sailfish.create ~me ~config ~keychain ~engine ~net ?params ?obs ~make_block
      ~on_commit:(on_commit_internal t on_commit)
      ~on_block:(on_block_internal t)
      ~on_deliver:(journal_deliver t)
      ~on_propose:(fun ~round -> journal_propose t ~round)
      ()
  in
  t.consensus <- Some consensus;
  t

let start t = Sailfish.start (consensus t)

let census t =
  (("mempool", Mempool.approx_live_words t.mempool)
  :: (match t.persist with
     | Some p -> [ ("wal", Persist.approx_live_words p) ]
     | None -> []))
  @ Sailfish.census (consensus t)

(* ------------------------------------------------------------------ *)
(* Crash recovery *)

let stop t =
  Sailfish.halt (consensus t);
  Option.iter Persist.crash t.persist

let recover t =
  match t.persist with
  | None -> ()
  | Some p ->
      let c = consensus t in
      let n = Config.n t.config in
      (* Blocks first so replayed vertices find their payloads, then
         vertices in journal (= insertion) order, then proposal markers. *)
      Persist.wal_iter p (fun ~key ~data ->
          if String.length key > 6 && String.sub key 0 6 = "wal/b/" then
            Sailfish.replay_block c (Codec.decode_block data));
      let compact = Config.sparse_edges t.config in
      Persist.wal_iter p (fun ~key ~data ->
          if String.length key > 6 && String.sub key 0 6 = "wal/v/" then
            Sailfish.replay_vertex c (Codec.decode_vertex ~n ~compact data));
      Persist.wal_iter p (fun ~key ~data:_ ->
          match Scanf.sscanf_opt key "wal/p/%d" (fun r -> r) with
          | Some round -> Sailfish.note_proposed c ~round
          | None -> ())

let start_recovered t = Sailfish.start_recovery (consensus t)
