open Clanbft_types
open Clanbft_crypto
open Clanbft_sim
module Analysis = Clanbft_committee.Analysis
module Sailfish = Clanbft_consensus.Sailfish
module Stats = Clanbft_util.Stats
module Rng = Clanbft_util.Rng
module Faults = Clanbft_faults.Faults
module Strategy = Clanbft_faults.Strategy
module Obs = Clanbft_obs.Obs
module Metrics = Clanbft_obs.Metrics
module Bitset = Clanbft_util.Bitset

type protocol =
  | Full
  | Single_clan of { nc : int }
  | Multi_clan of { q : int }
  | Sparse of { k : int }

let protocol_label = function
  | Full -> "sailfish"
  | Single_clan { nc } -> Printf.sprintf "single-clan(nc=%d)" nc
  | Multi_clan { q } -> Printf.sprintf "multi-clan(q=%d)" q
  | Sparse { k } -> Printf.sprintf "sparse(k=%d)" k

type spec = {
  n : int;
  protocol : protocol;
  txns_per_proposal : int;
  txn_size : int;
  txn_scale : int;
  topology : [ `Gcp | `Uniform of float ];
  duration : Time.span;
  warmup : Time.span;
  seed : int64;
  net : Net.config;
  params : Sailfish.params;
  crashed : int list;
  fault_plan : Faults.plan;
  restarts : Faults.restart list;
  adversaries : Strategy.spec list;
  persist : bool;
  clan_random : bool;
  obs : Obs.t option;
}

let default_spec =
  {
    n = 16;
    protocol = Full;
    txns_per_proposal = 500;
    txn_size = Transaction.default_size;
    txn_scale = 1;
    topology = `Gcp;
    duration = Time.s 12.;
    warmup = Time.s 3.;
    seed = 0xC1A9L;
    net = Net.default_config;
    params = Sailfish.default_params;
    crashed = [];
    fault_plan = Faults.empty;
    restarts = [];
    adversaries = [];
    persist = false;
    clan_random = false;
    obs = None;
  }

type result = {
  label : string;
  committed_txns : int;
  throughput_ktps : float;
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p99_ms : float;
  rounds : int;
  leaders_committed : int;
  bytes_total : int;
  mb_per_node_per_s : float;
  events : int;
  agreement : bool;
  commit_fingerprint : int;
  commit_chain : int array;
  post_recovery_commits : (int * int) list;
  census : (string * int) list;
}

(* Growable int array for per-node commit-prefix hashes. *)
module Intvec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 256 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let bigger = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let length v = v.len
end

let mix h x =
  let h = h lxor (x * 0x9E3779B97F4A7C1) in
  let h = h lxor (h lsr 29) in
  h * 0xBF58476D1CE4E5B |> fun h -> h lxor (h lsr 32)

let dissemination_of spec rng =
  match spec.protocol with
  | Full | Sparse _ -> Config.Full
  | Single_clan { nc } ->
      let clan =
        if spec.clan_random then Analysis.elect_random rng ~n:spec.n ~nc
        else Analysis.elect_balanced ~n:spec.n ~nc
      in
      Config.Single_clan clan
  | Multi_clan { q } ->
      let clans =
        if spec.clan_random then Analysis.partition_random rng ~n:spec.n ~q
        else Analysis.partition_balanced ~n:spec.n ~q
      in
      Config.Multi_clan clans

(* Per proposed block: what the workload generator produced for it. A block
   is "committed by all" once every replica required to commit it has —
   crashed and muted replicas are never required (they are the modelled
   faults), a restarting replica is excused only while it is down. *)
type block_meta = {
  created_at : Time.t;
  effective_txns : int;
  committers : Bitset.t; (* replicas that committed it (dedup) *)
  mutable req_commits : int; (* committers that are always required *)
  mutable done_ : bool;
}

let run spec =
  if spec.txn_scale < 1 then invalid_arg "Runner: txn_scale must be >= 1";
  if spec.txns_per_proposal < 0 then invalid_arg "Runner: negative load";
  let engine = Engine.create () in
  let rng = Rng.create spec.seed in
  let topology =
    match spec.topology with
    | `Gcp -> Topology.gcp_table1 ~n:spec.n
    | `Uniform one_way_ms -> Topology.uniform ~n:spec.n ~one_way_ms
  in
  (* One obs per run unless the caller shares its own: the registry must
     not accumulate across runs, and the default spec is reused freely. *)
  let obs = match spec.obs with Some o -> o | None -> Obs.metrics_only () in
  let net =
    Net.create ~engine ~topology ~config:spec.net
      ~size:(Msg.wire_size ~n:spec.n)
      ~kind:Msg.tag ~obs
      ~rng:(Rng.split rng) ()
  in
  let keychain = Keychain.create ~seed:(Rng.next_int64 rng) ~n:spec.n in
  (* The sparse edge-selection seed derives from the run seed, so two runs
     of one spec sample identical parent sets and stay bit-reproducible. *)
  let edge_policy =
    match spec.protocol with
    | Sparse { k } -> Config.Sparse { k; seed = spec.seed }
    | Full | Single_clan _ | Multi_clan _ -> Config.Dense
  in
  let config = Config.make ~n:spec.n ~edge_policy (dissemination_of spec rng) in
  let crashed = Array.make spec.n false in
  List.iter
    (fun i ->
      if i < 0 || i >= spec.n then invalid_arg "Runner: bad crashed id";
      crashed.(i) <- true)
    spec.crashed;
  let restart_of = Array.make spec.n None in
  List.iter
    (fun (r : Faults.restart) ->
      if r.node < 0 || r.node >= spec.n then
        invalid_arg "Runner: bad restart id";
      if crashed.(r.node) then
        invalid_arg "Runner: restart of a crashed replica";
      if restart_of.(r.node) <> None then
        invalid_arg "Runner: duplicate restart for one replica";
      if r.crash_at >= r.recover_at then invalid_arg "Runner: restart window";
      restart_of.(r.node) <- Some r)
    spec.restarts;
  (* Replicas that must commit a block before it counts as committed-by-all:
     crashed and muted replicas never do, restarting ones are handled by a
     per-block excuse window below. *)
  let muted_nodes =
    List.map (fun (m : Faults.mute) -> m.node) spec.fault_plan.Faults.mutes
  in
  (* Strategy-occupied nodes are the modelled Byzantine parties: like muted
     replicas they are never required to commit a block, and their ledgers
     make no honest claims (excluded from the agreement check below). *)
  let adversary_nodes =
    List.map (fun (s : Strategy.spec) -> s.Strategy.node) spec.adversaries
  in
  let always_required =
    Array.init spec.n (fun i ->
        (not crashed.(i))
        && (not (List.mem i muted_nodes))
        && (not (List.mem i adversary_nodes))
        && restart_of.(i) = None)
  in
  let required_total =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 always_required
  in
  (* ---- workload + measurement state ---- *)
  let metas : (int * int, block_meta) Hashtbl.t = Hashtbl.create 4096 in
  let next_txn = ref 0 in
  let samples = Stats.create () in
  let committed_txns = ref 0 in
  let warmup_end = spec.warmup in
  let sim_count = max 1 (spec.txns_per_proposal / spec.txn_scale) in
  let effective = if spec.txns_per_proposal = 0 then 0 else sim_count * spec.txn_scale in
  let generate proposer ~round =
    if spec.txns_per_proposal = 0 then [||]
    else begin
      let now = Engine.now engine in
      Hashtbl.replace metas (proposer, round)
        {
          created_at = now;
          effective_txns = effective;
          committers = Bitset.create spec.n;
          req_commits = 0;
          done_ = false;
        };
      Array.init sim_count (fun _ ->
          incr next_txn;
          Transaction.make ~id:!next_txn ~client:proposer ~created_at:now
            ~size:(spec.txn_size * spec.txn_scale) ())
    end
  in
  let prefix_hash = Array.init spec.n (fun _ -> Intvec.create ()) in
  (* Per-replica commit latency (creation → committed by THIS replica),
     complementing the committed-by-all reservoir below. *)
  let commit_hist =
    Array.init spec.n (fun i ->
        Metrics.histogram obs.Obs.metrics
          ~labels:[ ("node", string_of_int i) ]
          ~buckets:Stats.Histogram.latency_ms_buckets "commit_latency_ms")
  in
  let leaders_committed = ref 0 in
  let post_recovery = Array.make spec.n 0 in
  let on_commit me ~leader:(l : Vertex.t) vertices =
    if l.round >= 0 && me = 0 then incr leaders_committed;
    let now = Engine.now engine in
    (* Commits strictly after the replica's recovery instant: WAL replay
       fires exactly at [recover_at], so anything later is new progress. *)
    (match restart_of.(me) with
    | Some (r : Faults.restart) when now > r.recover_at ->
        post_recovery.(me) <- post_recovery.(me) + List.length vertices
    | _ -> ());
    List.iter
      (fun (v : Vertex.t) ->
        let vec = prefix_hash.(me) in
        let prev = if Intvec.length vec = 0 then 0 else Intvec.get vec (Intvec.length vec - 1) in
        Intvec.push vec (mix prev ((v.round * 1_000_003) + v.source));
        match Hashtbl.find_opt metas (v.source, v.round) with
        | None -> ()
        | Some meta when meta.done_ -> ()
        | Some meta ->
            if Bitset.add meta.committers me then begin
              Metrics.observe commit_hist.(me)
                (Time.to_ms (now - meta.created_at));
              if always_required.(me) then
                meta.req_commits <- meta.req_commits + 1
            end;
            let restarters_ok =
              List.for_all
                (fun (r : Faults.restart) ->
                  (now >= r.crash_at && now < r.recover_at)
                  || Bitset.mem meta.committers r.node)
                spec.restarts
            in
            if meta.req_commits >= required_total && restarters_ok then begin
              meta.done_ <- true;
              if meta.created_at >= warmup_end then begin
                Stats.add samples (Time.to_ms (now - meta.created_at));
                committed_txns := !committed_txns + meta.effective_txns
              end;
              Hashtbl.remove metas (v.source, v.round)
            end)
      vertices
  in
  (* Restarting replicas need the write-ahead log even if the spec did not
     ask for persistence explicitly. *)
  let use_persist = spec.persist || spec.restarts <> [] in
  let persist =
    if use_persist then Array.init spec.n (fun _ -> Persist.create ~engine ())
    else [||]
  in
  let make_node me =
    Node.create ~me ~config ~keychain ~engine ~net ~params:spec.params ~obs
      ?persist:(if use_persist then Some persist.(me) else None)
      ~generate:(generate me)
      ~on_commit:(fun ~leader vs -> on_commit me ~leader vs)
      ()
  in
  let nodes = Array.init spec.n make_node in
  (* Installed last so an empty plan consumes no RNG draws: benign runs
     stay bit-identical to their pre-fault-harness behaviour per seed.
     Restart scheduling likewise only exists when restarts were asked for
     (node construction and WAL replay draw no randomness, so the restart
     path perturbs nothing else). *)
  if not (Faults.is_empty spec.fault_plan) then
    ignore
      (Faults.install ~engine ~net
         ~rng:(Rng.split rng)
         ~classify:Msg.tag ~round_of:Msg.round ~obs spec.fault_plan);
  (* Strategies wrap whatever filter the fault plan installed (or the
     default pass-through): they rule first, delegating untouched traffic
     to the network fault rules below. An empty list installs nothing, so
     benign runs stay bit-identical. *)
  Strategy.install ~engine ~net ~keychain ~config
    ~round_timeout:spec.params.Sailfish.round_timeout ~obs spec.adversaries;
  List.iter
    (fun (r : Faults.restart) ->
      Engine.schedule_at engine r.crash_at (fun () ->
          Node.stop nodes.(r.node));
      Engine.schedule_at engine r.recover_at (fun () ->
          (* The replayed node rebuilds its ledger from genesis, so its
             commit-prefix vector restarts too. *)
          prefix_hash.(r.node) <- Intvec.create ();
          let node = make_node r.node in
          nodes.(r.node) <- node;
          Node.recover node;
          Node.start_recovered node))
    spec.restarts;
  Array.iteri (fun i node -> if not crashed.(i) then Node.start node) nodes;
  Engine.run ~until:spec.duration engine;
  (* ---- agreement: common prefix of commit sequences ---- *)
  (* A replica that snapshot-joined past a GC'd gap rebuilt its ledger from
     a peer's floor, not from genesis: its full-history vector is not
     comparable and is left out (its continued liveness is still visible in
     [post_recovery_commits]). Fully replayed replicas stay in — their
     vectors rebuild from genesis and must match. *)
  let honest_vecs =
    List.filteri
      (fun i _ ->
        (not crashed.(i))
        && (not (List.mem i adversary_nodes))
        && not (Sailfish.snapshot_joined (Node.consensus nodes.(i))))
      (Array.to_list prefix_hash)
  in
  let min_len =
    List.fold_left (fun acc v -> min acc (Intvec.length v)) max_int honest_vecs
  in
  let agreement =
    match honest_vecs with
    | [] | [ _ ] -> true
    | first :: rest ->
        min_len = 0
        || List.for_all
             (fun v -> Intvec.get v (min_len - 1) = Intvec.get first (min_len - 1))
             rest
  in
  (* One integer summarizing every honest replica's full commit sequence:
     two runs commit bit-identical sequences iff fingerprints match (up to
     hash collision). The determinism tests compare this across
     tracing-on/off runs. *)
  let commit_fingerprint =
    List.fold_left
      (fun acc v ->
        mix acc (if Intvec.length v = 0 then 0 else Intvec.get v (Intvec.length v - 1))
        |> fun acc -> mix acc (Intvec.length v))
      (List.length honest_vecs)
      honest_vecs
  in
  (* End-of-run heap census: per-subsystem live words summed across
     replicas, plus the shared engine/net/trace state. Every contribution
     is a deterministic function of end-of-run data structures, so the
     table is byte-identical across same-seed runs. *)
  let census =
    let tbl = Hashtbl.create 16 in
    let bump (name, w) =
      Hashtbl.replace tbl name
        (w + Option.value ~default:0 (Hashtbl.find_opt tbl name))
    in
    Array.iter (fun node -> List.iter bump (Node.census node)) nodes;
    bump ("sim.engine", Engine.approx_live_words engine);
    bump ("sim.net", Net.approx_live_words net);
    bump ("obs.trace", Clanbft_obs.Trace.approx_live_words obs.Obs.trace);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let window_s = Time.to_s (spec.duration - spec.warmup) in
  let max_round =
    Array.fold_left
      (fun acc node -> max acc (Sailfish.current_round (Node.consensus node)))
      0 nodes
  in
  {
    label =
      Printf.sprintf "%s n=%d load=%d" (protocol_label spec.protocol) spec.n
        spec.txns_per_proposal;
    committed_txns = !committed_txns;
    throughput_ktps = float_of_int !committed_txns /. window_s /. 1_000.;
    (* percentile is total (nan when no block completed in-window). *)
    latency_mean_ms = Stats.mean samples;
    latency_p50_ms = Stats.percentile samples 50.;
    latency_p99_ms = Stats.percentile samples 99.;
    rounds = max_round;
    leaders_committed = !leaders_committed;
    bytes_total = Net.total_bytes net;
    mb_per_node_per_s =
      float_of_int (Net.total_bytes net)
      /. float_of_int spec.n /. Time.to_s spec.duration /. 1e6;
    events = Engine.events_processed engine;
    agreement;
    commit_fingerprint;
    commit_chain =
      (let owner =
         let rec find i =
           if i >= spec.n then 0
           else if always_required.(i) then i
           else find (i + 1)
         in
         find 0
       in
       let v = prefix_hash.(owner) in
       Array.init (Intvec.length v) (Intvec.get v));
    post_recovery_commits =
      List.map
        (fun (r : Faults.restart) -> (r.node, post_recovery.(r.node)))
        spec.restarts;
    census;
  }

(* Streamed tracing: every event goes straight to the JSONL file as it is
   emitted, so a long traced run (n=150, tens of millions of events) never
   holds the trace in memory at all — let alone twice (buffer + export
   serialization). The channel is closed (flushing the tail) even when the
   run raises. *)
let with_streamed_trace ~path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> f (Obs.of_trace (Clanbft_obs.Trace.stream oc)))

(* Each run owns every piece of mutable state it touches (engine, RNG,
   keychain, net, metric registry), so independent specs are safe to fan
   out across domains; results come back in spec order. *)
let run_many ?pool specs =
  match pool with
  | Some pool -> Clanbft_util.Pool.map pool run specs
  | None -> Clanbft_util.Pool.with_pool (fun pool -> Clanbft_util.Pool.map pool run specs)

let pp_result ppf r =
  Format.fprintf ppf
    "%-28s tput=%8.1f kTPS  lat(mean/p50/p99)=%7.1f/%7.1f/%7.1f ms  rounds=%-4d egress=%6.1f MB/s/node  agree=%b"
    r.label r.throughput_ktps r.latency_mean_ms r.latency_p50_ms r.latency_p99_ms
    r.rounds r.mb_per_node_per_s r.agreement
