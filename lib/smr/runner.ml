open Clanbft_types
open Clanbft_crypto
open Clanbft_sim
module Analysis = Clanbft_committee.Analysis
module Sailfish = Clanbft_consensus.Sailfish
module Stats = Clanbft_util.Stats
module Rng = Clanbft_util.Rng
module Faults = Clanbft_faults.Faults
module Obs = Clanbft_obs.Obs
module Metrics = Clanbft_obs.Metrics

type protocol =
  | Full
  | Single_clan of { nc : int }
  | Multi_clan of { q : int }

let protocol_label = function
  | Full -> "sailfish"
  | Single_clan { nc } -> Printf.sprintf "single-clan(nc=%d)" nc
  | Multi_clan { q } -> Printf.sprintf "multi-clan(q=%d)" q

type spec = {
  n : int;
  protocol : protocol;
  txns_per_proposal : int;
  txn_size : int;
  txn_scale : int;
  topology : [ `Gcp | `Uniform of float ];
  duration : Time.span;
  warmup : Time.span;
  seed : int64;
  net : Net.config;
  params : Sailfish.params;
  crashed : int list;
  fault_plan : Faults.plan;
  persist : bool;
  clan_random : bool;
  obs : Obs.t option;
}

let default_spec =
  {
    n = 16;
    protocol = Full;
    txns_per_proposal = 500;
    txn_size = Transaction.default_size;
    txn_scale = 1;
    topology = `Gcp;
    duration = Time.s 12.;
    warmup = Time.s 3.;
    seed = 0xC1A9L;
    net = Net.default_config;
    params = Sailfish.default_params;
    crashed = [];
    fault_plan = Faults.empty;
    persist = false;
    clan_random = false;
    obs = None;
  }

type result = {
  label : string;
  committed_txns : int;
  throughput_ktps : float;
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p99_ms : float;
  rounds : int;
  leaders_committed : int;
  bytes_total : int;
  mb_per_node_per_s : float;
  events : int;
  agreement : bool;
  commit_fingerprint : int;
}

(* Growable int array for per-node commit-prefix hashes. *)
module Intvec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 256 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let bigger = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let length v = v.len
end

let mix h x =
  let h = h lxor (x * 0x9E3779B97F4A7C1) in
  let h = h lxor (h lsr 29) in
  h * 0xBF58476D1CE4E5B |> fun h -> h lxor (h lsr 32)

let dissemination_of spec rng =
  match spec.protocol with
  | Full -> Config.Full
  | Single_clan { nc } ->
      let clan =
        if spec.clan_random then Analysis.elect_random rng ~n:spec.n ~nc
        else Analysis.elect_balanced ~n:spec.n ~nc
      in
      Config.Single_clan clan
  | Multi_clan { q } ->
      let clans =
        if spec.clan_random then Analysis.partition_random rng ~n:spec.n ~q
        else Analysis.partition_balanced ~n:spec.n ~q
      in
      Config.Multi_clan clans

(* Per proposed block: what the workload generator produced for it. *)
type block_meta = {
  created_at : Time.t;
  effective_txns : int;
  mutable commits : int; (* honest replicas that committed it *)
  mutable done_ : bool;
}

let run spec =
  if spec.txn_scale < 1 then invalid_arg "Runner: txn_scale must be >= 1";
  if spec.txns_per_proposal < 0 then invalid_arg "Runner: negative load";
  let engine = Engine.create () in
  let rng = Rng.create spec.seed in
  let topology =
    match spec.topology with
    | `Gcp -> Topology.gcp_table1 ~n:spec.n
    | `Uniform one_way_ms -> Topology.uniform ~n:spec.n ~one_way_ms
  in
  (* One obs per run unless the caller shares its own: the registry must
     not accumulate across runs, and the default spec is reused freely. *)
  let obs = match spec.obs with Some o -> o | None -> Obs.metrics_only () in
  let net =
    Net.create ~engine ~topology ~config:spec.net
      ~size:(Msg.wire_size ~n:spec.n)
      ~kind:Msg.tag ~obs
      ~rng:(Rng.split rng) ()
  in
  let keychain = Keychain.create ~seed:(Rng.next_int64 rng) ~n:spec.n in
  let config = Config.make ~n:spec.n (dissemination_of spec rng) in
  let crashed = Array.make spec.n false in
  List.iter
    (fun i ->
      if i < 0 || i >= spec.n then invalid_arg "Runner: bad crashed id";
      crashed.(i) <- true)
    spec.crashed;
  let honest_count = spec.n - List.length spec.crashed in
  (* ---- workload + measurement state ---- *)
  let metas : (int * int, block_meta) Hashtbl.t = Hashtbl.create 4096 in
  let next_txn = ref 0 in
  let samples = Stats.create () in
  let committed_txns = ref 0 in
  let warmup_end = spec.warmup in
  let sim_count = max 1 (spec.txns_per_proposal / spec.txn_scale) in
  let effective = if spec.txns_per_proposal = 0 then 0 else sim_count * spec.txn_scale in
  let generate proposer ~round =
    if spec.txns_per_proposal = 0 then [||]
    else begin
      let now = Engine.now engine in
      Hashtbl.replace metas (proposer, round)
        { created_at = now; effective_txns = effective; commits = 0; done_ = false };
      Array.init sim_count (fun _ ->
          incr next_txn;
          Transaction.make ~id:!next_txn ~client:proposer ~created_at:now
            ~size:(spec.txn_size * spec.txn_scale) ())
    end
  in
  let prefix_hash = Array.init spec.n (fun _ -> Intvec.create ()) in
  (* Per-replica commit latency (creation → committed by THIS replica),
     complementing the committed-by-all reservoir below. *)
  let commit_hist =
    Array.init spec.n (fun i ->
        Metrics.histogram obs.Obs.metrics
          ~labels:[ ("node", string_of_int i) ]
          ~buckets:Stats.Histogram.latency_ms_buckets "commit_latency_ms")
  in
  let leaders_committed = ref 0 in
  let on_commit me ~leader:(l : Vertex.t) vertices =
    if l.round >= 0 && me = 0 then incr leaders_committed;
    let now = Engine.now engine in
    List.iter
      (fun (v : Vertex.t) ->
        let vec = prefix_hash.(me) in
        let prev = if Intvec.length vec = 0 then 0 else Intvec.get vec (Intvec.length vec - 1) in
        Intvec.push vec (mix prev ((v.round * 1_000_003) + v.source));
        match Hashtbl.find_opt metas (v.source, v.round) with
        | None -> ()
        | Some meta when meta.done_ -> ()
        | Some meta ->
            Metrics.observe commit_hist.(me) (Time.to_ms (now - meta.created_at));
            meta.commits <- meta.commits + 1;
            if meta.commits >= honest_count then begin
              meta.done_ <- true;
              if meta.created_at >= warmup_end then begin
                Stats.add samples (Time.to_ms (now - meta.created_at));
                committed_txns := !committed_txns + meta.effective_txns
              end;
              Hashtbl.remove metas (v.source, v.round)
            end)
      vertices
  in
  let persist =
    if spec.persist then
      Array.init spec.n (fun _ -> Persist.create ~engine ())
    else [||]
  in
  let nodes =
    Array.init spec.n (fun me ->
        Node.create ~me ~config ~keychain ~engine ~net ~params:spec.params ~obs
          ?persist:(if spec.persist then Some persist.(me) else None)
          ~generate:(generate me)
          ~on_commit:(fun ~leader vs -> on_commit me ~leader vs)
          ())
  in
  (* Installed last so an empty plan consumes no RNG draws: benign runs
     stay bit-identical to their pre-fault-harness behaviour per seed. *)
  if not (Faults.is_empty spec.fault_plan) then
    ignore
      (Faults.install ~engine ~net
         ~rng:(Rng.split rng)
         ~classify:Msg.tag ~round_of:Msg.round ~obs spec.fault_plan);
  Array.iteri (fun i node -> if not crashed.(i) then Node.start node) nodes;
  Engine.run ~until:spec.duration engine;
  (* ---- agreement: common prefix of commit sequences ---- *)
  let honest_vecs =
    List.filteri (fun i _ -> not crashed.(i)) (Array.to_list prefix_hash)
  in
  let min_len =
    List.fold_left (fun acc v -> min acc (Intvec.length v)) max_int honest_vecs
  in
  let agreement =
    match honest_vecs with
    | [] | [ _ ] -> true
    | first :: rest ->
        min_len = 0
        || List.for_all
             (fun v -> Intvec.get v (min_len - 1) = Intvec.get first (min_len - 1))
             rest
  in
  (* One integer summarizing every honest replica's full commit sequence:
     two runs commit bit-identical sequences iff fingerprints match (up to
     hash collision). The determinism tests compare this across
     tracing-on/off runs. *)
  let commit_fingerprint =
    List.fold_left
      (fun acc v ->
        mix acc (if Intvec.length v = 0 then 0 else Intvec.get v (Intvec.length v - 1))
        |> fun acc -> mix acc (Intvec.length v))
      (List.length honest_vecs)
      honest_vecs
  in
  let window_s = Time.to_s (spec.duration - spec.warmup) in
  let max_round =
    Array.fold_left
      (fun acc node -> max acc (Sailfish.current_round (Node.consensus node)))
      0 nodes
  in
  {
    label =
      Printf.sprintf "%s n=%d load=%d" (protocol_label spec.protocol) spec.n
        spec.txns_per_proposal;
    committed_txns = !committed_txns;
    throughput_ktps = float_of_int !committed_txns /. window_s /. 1_000.;
    (* percentile is total (nan when no block completed in-window). *)
    latency_mean_ms = Stats.mean samples;
    latency_p50_ms = Stats.percentile samples 50.;
    latency_p99_ms = Stats.percentile samples 99.;
    rounds = max_round;
    leaders_committed = !leaders_committed;
    bytes_total = Net.total_bytes net;
    mb_per_node_per_s =
      float_of_int (Net.total_bytes net)
      /. float_of_int spec.n /. Time.to_s spec.duration /. 1e6;
    events = Engine.events_processed engine;
    agreement;
    commit_fingerprint;
  }

(* Each run owns every piece of mutable state it touches (engine, RNG,
   keychain, net, metric registry), so independent specs are safe to fan
   out across domains; results come back in spec order. *)
let run_many ?pool specs =
  match pool with
  | Some pool -> Clanbft_util.Pool.map pool run specs
  | None -> Clanbft_util.Pool.with_pool (fun pool -> Clanbft_util.Pool.map pool run specs)

let pp_result ppf r =
  Format.fprintf ppf
    "%-28s tput=%8.1f kTPS  lat(mean/p50/p99)=%7.1f/%7.1f/%7.1f ms  rounds=%-4d egress=%6.1f MB/s/node  agree=%b"
    r.label r.throughput_ktps r.latency_mean_ms r.latency_p50_ms r.latency_p99_ms
    r.rounds r.mb_per_node_per_s r.agreement
