(** Experiment harness: build a full system, drive a workload, measure.

    Reproduces the methodology of §7: every proposer includes a configurable
    number of fresh 512-byte transactions in each proposal; latency is the
    time from a transaction's creation to its commit by {e all} non-faulty
    nodes; throughput is committed transactions per second over the
    measurement window (after warm-up). Execution is excluded from the
    metrics, exactly as in the paper.

    [txn_scale] trades simulation granularity for memory: a scale of [k]
    simulates [count/k] transactions of [k×size] bytes — the byte stream,
    and hence the bandwidth behaviour, is unchanged, and reported
    transaction counts are scaled back. *)

open Clanbft_sim

type protocol =
  | Full  (** baseline Sailfish *)
  | Single_clan of { nc : int }
  | Multi_clan of { q : int }
  | Sparse of { k : int }
      (** Sailfish over sparse edges ({!Clanbft_types.Config.Sparse}):
          full dissemination, but each vertex references only the
          structural parents plus [k] sampled ones, in the compact wire
          form. The edge-selection seed derives from [spec.seed]. *)

val protocol_label : protocol -> string

type spec = {
  n : int;
  protocol : protocol;
  txns_per_proposal : int;
  txn_size : int;
  txn_scale : int;
  topology : [ `Gcp | `Uniform of float ];
  duration : Time.span;
  warmup : Time.span;
  seed : int64;
  net : Net.config;
  params : Clanbft_consensus.Sailfish.params;
  crashed : int list;  (** replicas that never start (crash faults) *)
  fault_plan : Clanbft_faults.Faults.plan;
      (** Byzantine-network scenario (drop/delay/duplication rules,
          partitions, mute-after-round crashes) injected via the net
          filter; {!Clanbft_faults.Faults.empty} for benign runs. Seeded
          from [seed], so adversarial runs replay exactly. *)
  restarts : Clanbft_faults.Faults.restart list;
      (** Crash–recovery schedule: each entry tears the replica down at
          [crash_at] ({!Node.stop} — consensus halted, pending disk writes
          lost) and rebuilds it at [recover_at] from its write-ahead log
          plus peer state sync ({!Node.recover} / {!Node.start_recovered}).
          Persistence is forced on for all replicas when non-empty. An
          empty list schedules nothing and draws no randomness, so benign
          runs are bit-identical to pre-recovery-subsystem behaviour. At
          most one restart per replica; a replica may not appear in both
          [crashed] and [restarts]. *)
  adversaries : Clanbft_faults.Strategy.spec list;
      (** Strategic adversaries ({!Clanbft_faults.Strategy}): each spec
          occupies a node id for the whole run with a protocol-level attack
          behaviour (equivocation, censorship, griefing, sync-storm
          amplification, adversarial reordering). Installed above the fault
          plan's filter. Occupied nodes are the modelled Byzantine parties:
          excluded from commit accounting and from the agreement check,
          exactly like muted replicas. Empty = nothing installed; benign
          runs stay bit-identical. *)
  persist : bool;
  clan_random : bool;  (** random clan election instead of region-balanced *)
  obs : Clanbft_obs.Obs.t option;
      (** Observability handle threaded through net, consensus and fault
          injector. [None] (the default) gives each run a private disabled
          handle. Pass {!Clanbft_obs.Obs.create} to record a trace, or
          {!Clanbft_obs.Obs.metrics_only} to collect the registry without
          the per-event buffer. Tracing never changes the run: same seed,
          same [commit_fingerprint], tracing on or off. *)
}

val default_spec : spec
(** n = 16, Full, 500 txns/proposal, GCP topology, 12 s run with 3 s
    warm-up. *)

type result = {
  label : string;
  committed_txns : int;  (** completed in-window, scaled *)
  throughput_ktps : float;
  latency_mean_ms : float;  (** creation → committed-by-all, block-weighted *)
  latency_p50_ms : float;  (** [nan] when no block completed in-window *)
  latency_p99_ms : float;
  rounds : int;  (** max round reached by any replica *)
  leaders_committed : int;
  bytes_total : int;
  mb_per_node_per_s : float;  (** mean egress rate per replica *)
  events : int;
  agreement : bool;  (** all replicas committed a common sequence prefix *)
  commit_fingerprint : int;
      (** Hash folding every honest replica's entire commit sequence (and
          its length): equal fingerprints ⇔ bit-identical commit sequences,
          up to hash collision. The yardstick for determinism assertions.
          Replicas that snapshot-joined past a GC'd gap are excluded (their
          ledgers legitimately start mid-history); fully WAL-replayed
          replicas are included. *)
  commit_chain : int array;
      (** The full chained-hash commit vector of the lowest-indexed
          always-required replica. Element [i] hashes the sequence prefix
          of length [i+1], so two runs agree on a commit prefix of length
          [k] iff their chains agree at index [k-1] — the instrument for
          crash-vs-benign prefix assertions. *)
  post_recovery_commits : (int * int) list;
      (** Per restarted replica: vertices it committed strictly after its
          [recover_at] (WAL replay fires exactly at [recover_at], so this
          counts genuinely new post-recovery progress). Empty when
          [restarts] is empty. *)
  census : (string * int) list;
      (** End-of-run heap census, sorted by subsystem name: approximate
          live words per subsystem, summed across replicas, plus the shared
          engine/net/trace state. Deterministic per seed (a function of
          end-of-run data-structure sizes). See docs/PROFILING.md. *)
}

val run : spec -> result

val with_streamed_trace : path:string -> (Clanbft_obs.Obs.t -> 'a) -> 'a
(** [with_streamed_trace ~path f] opens [path], builds an observability
    handle whose trace sink streams each event to it as one JSONL line at
    emission time ({!Clanbft_obs.Trace.stream}), runs [f obs] (typically
    [f = fun obs -> run { spec with obs = Some obs }]) and closes the
    channel — so a long traced run never accumulates the event list in
    memory. Streaming writes no engine events and draws no randomness:
    the run is bit-identical to a buffered or untraced one. *)

val run_many : ?pool:Clanbft_util.Pool.t -> spec array -> result array
(** Run independent simulations across the pool's worker domains (a fresh
    default-width pool when none is given), returning results in spec
    order. Each run owns all of its mutable state, so for any fixed spec
    array the results are bit-identical at every pool width — parallelism
    changes wall-clock time only. *)

val pp_result : Format.formatter -> result -> unit
(** One table row: throughput, latency, traffic. *)
