type t = { words : int array; capacity : int; mutable count : int }

let words_for n = (n + 62) / 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make (max 1 (words_for n)) 0; capacity = n; count = 0 }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let add t i =
  check t i;
  let w = i / 63 and b = 1 lsl (i mod 63) in
  if t.words.(w) land b <> 0 then false
  else begin
    t.words.(w) <- t.words.(w) lor b;
    t.count <- t.count + 1;
    true
  end

let remove t i =
  check t i;
  let w = i / 63 and b = 1 lsl (i mod 63) in
  if t.words.(w) land b = 0 then false
  else begin
    t.words.(w) <- t.words.(w) land lnot b;
    t.count <- t.count - 1;
    true
  end

let cardinal t = t.count
let is_empty t = t.count = 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to 62 do
        if word land (1 lsl b) <> 0 then f ((w * 63) + b)
      done
  done

(* Byte [j] of the LSB-first packed bitmap: bit p of the result is member
   8j + p. Words hold 63 bits, so a byte can straddle two words; gathering
   it with shifts replaces the per-member read-modify-write loop the wire
   codec used to run. *)
let byte t j =
  if j < 0 || j * 8 >= t.capacity then invalid_arg "Bitset.byte";
  let lo = j * 8 in
  let w = lo / 63 and off = lo mod 63 in
  let bits = t.words.(w) lsr off in
  let bits =
    if off > 55 && w + 1 < Array.length t.words then
      bits lor (t.words.(w + 1) lsl (63 - off))
    else bits
  in
  bits land 0xff

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (fun i -> ignore (add t i)) l;
  t

let copy t = { t with words = Array.copy t.words }

let union_into ~dst src =
  if dst.capacity <> src.capacity then invalid_arg "Bitset.union_into";
  let count = ref 0 in
  for w = 0 to Array.length dst.words - 1 do
    let merged = dst.words.(w) lor src.words.(w) in
    dst.words.(w) <- merged;
    (* popcount via Kernighan's loop; word count is tiny so this is cheap *)
    let x = ref merged in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr count
    done
  done;
  dst.count <- !count

let inter_cardinal a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.inter_cardinal";
  let count = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    let x = ref (a.words.(w) land b.words.(w)) in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr count
    done
  done;
  !count

let equal a b = a.capacity = b.capacity && a.words = b.words

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)
