(** Sample collection and summary statistics for experiment metrics.

    Three shapes of instrument live here, all allocation-light and safe to
    call on hot paths:

    - a float {e reservoir} ({!t}) that keeps every sample for exact
      percentiles — right for end-of-run latency summaries;
    - fixed-bucket {!Histogram}s that keep only counts — right for always-on
      metrics (commit latency per replica, uplink backlog) where the sample
      stream is unbounded;
    - time-windowed {!Rate} meters for "how fast right now" questions
      (egress bytes/s over the last second).

    Everything is total: querying an empty collector yields [nan] / ["empty"]
    rather than raising, so metric plumbing never needs emptiness guards. *)

type t
(** A mutable reservoir of float samples (e.g. per-transaction latencies). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool

val mean : t -> float
(** [0.0] on an empty reservoir (a sum over nothing). *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], nearest-rank on the sorted
    samples. Returns [nan] on an empty reservoir (total — callers need no
    emptiness guard). Raises [Invalid_argument] only when [p] is outside
    [\[0,100\]]. *)

val summary : t -> string
(** One-line human-readable summary: n/mean/p50/p99/max; ["empty"] when no
    samples have been recorded. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

(** {1 Fixed-bucket histograms}

    Prometheus-style: a fixed array of upper bucket edges plus an implicit
    [+inf] overflow bucket; observing is O(#buckets) with zero allocation,
    so histograms can sit on per-message paths. Unlike the reservoir, memory
    is constant no matter how many samples arrive. *)

module Histogram : sig
  type t

  val create : buckets:float array -> t
  (** [buckets] are the {e upper} edges, strictly increasing; a final
      [+inf] bucket is always added implicitly. Raises [Invalid_argument]
      if the edges are not strictly increasing. An empty array is allowed
      (every sample lands in the overflow bucket). *)

  val latency_ms_buckets : float array
  (** Log-spaced default edges for millisecond latencies: 1 ms … 60 s. *)

  val size_buckets : float array
  (** Log-spaced default edges for byte sizes / µs backlogs: 64 … 16 Mi. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val mean : t -> float
  (** [nan] when empty. *)

  val buckets : t -> (float * int) array
  (** [(upper_edge, count)] pairs in edge order, {e non}-cumulative, the
      last entry being the [(infinity, overflow_count)] bucket. *)

  val cumulative : t -> (float * int) array
  (** Same edges with cumulative counts; the last count equals {!count}. *)

  val quantile : t -> float -> float
  (** [quantile t q] with [q] in [\[0,1\]]: the upper edge of the first
      bucket whose cumulative count reaches [q * count] — an upper bound on
      the true quantile, as precise as the bucket layout. [nan] when
      empty. *)

  val reset : t -> unit
end

(** {1 Time-windowed rates}

    A sliding-window meter over integer-microsecond timestamps (the
    simulator's clock). Samples older than the window are discarded on
    every operation, so memory is bounded by the event rate within one
    window. *)

module Rate : sig
  type t

  val create : ?window_us:int -> unit -> t
  (** Default window: 1 s. Raises [Invalid_argument] on a non-positive
      window. *)

  val add : t -> now_us:int -> float -> unit
  (** Record [amount] at the given timestamp. Timestamps must be
      non-decreasing (simulation time never goes backwards). *)

  val total : t -> now_us:int -> float
  (** Sum of the amounts recorded within the window ending at [now_us]. *)

  val per_second : t -> now_us:int -> float
  (** Windowed rate in amount/second: {!total} scaled by the window. *)
end
