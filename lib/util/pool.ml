(* Domain-based worker pool: a mutex/condvar-protected job queue drained by
   [jobs - 1] worker domains plus the submitting thread itself during [map].
   OCaml 5 stdlib only (Domain / Mutex / Condition) — no external deps.

   Determinism contract: [map] returns results in input order and re-raises
   the exception of the lowest-index failing job, so callers observe the
   same outcome regardless of how jobs were scheduled across domains. Any
   cross-job nondeterminism must come from the jobs themselves (shared
   mutable state, wall clocks); jobs that are pure functions of their input
   — like seeded simulations — yield bit-identical [map] results at every
   pool width. *)

type job = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t; (* queue gained a job, or shutdown began *)
  settled : Condition.t; (* a job finished (batch countdown moved) *)
  queue : job Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let env_var = "CLANBFT_JOBS"

let default_jobs () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          invalid_arg
            (Printf.sprintf "%s=%S: expected a positive integer" env_var s))

(* Workers block on [nonempty] until a job arrives or shutdown is flagged.
   Jobs never raise: [map] wraps user functions so failures are carried
   back as values. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.stopping then None
    else begin
      Condition.wait t.nonempty t.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some job ->
      Mutex.unlock t.mutex;
      job ();
      worker_loop t

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      settled = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  (* The caller participates in [map], so [jobs] total lanes need only
     [jobs - 1] spawned domains; jobs = 1 degenerates to inline execution
     and never touches Domain at all. *)
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* One [map] batch: slot [i] is written by exactly one domain, then read by
   the caller only after it observed the batch complete under [t.mutex] —
   the lock ordering makes the writes visible without per-slot atomics. *)
type 'b outcome = Pending | Done of 'b | Failed of exn

let map t f xs =
  if t.stopping then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.jobs = 1 then Array.map f xs
  else begin
    let out = Array.make n Pending in
    let remaining = ref n in
    let job i () =
      (out.(i) <- (match f xs.(i) with v -> Done v | exception e -> Failed e));
      Mutex.lock t.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.settled;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (job i) t.queue
    done;
    Condition.broadcast t.nonempty;
    (* Drain alongside the workers instead of blocking: the submitting
       thread is the [jobs]-th lane; once the queue empties it sleeps on
       [settled] until the in-flight jobs land. *)
    let rec drain () =
      if not (Queue.is_empty t.queue) then begin
        let job = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        job ();
        Mutex.lock t.mutex;
        drain ()
      end
      else if !remaining > 0 then begin
        Condition.wait t.settled t.mutex;
        drain ()
      end
    in
    drain ();
    Mutex.unlock t.mutex;
    Array.map
      (function
        | Done v -> v
        | Failed e -> raise e
        | Pending -> assert false)
      out
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
