(** Fixed-capacity bitsets.

    Used for quorum tracking (who has ECHOed / READYed / voted) and for the
    signer vectors of aggregate signatures. All operations are O(capacity/63)
    or better; [cardinal] is cached so the hot path "add then check quorum"
    costs O(1). *)

type t

val create : int -> t
(** [create n] is an empty set over universe [{0, …, n-1}]. *)

val capacity : t -> int
val mem : t -> int -> bool

val add : t -> int -> bool
(** [add t i] inserts [i]; returns [true] iff [i] was not already present. *)

val remove : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val byte : t -> int -> int
(** [byte t j] is byte [j] of the LSB-first packed bitmap: bit [p] of the
    result is set iff member [8j + p] is. Valid for
    [0 <= j < (capacity + 7) / 8]; trailing bits past [capacity] are 0.
    O(1) — the wire codec writes each bitmap byte with one call instead of
    a read-modify-write per member. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val copy : t -> t
val union_into : dst:t -> t -> unit
val inter_cardinal : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
