type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 64 0.0; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len
let is_empty t = t.len = 0

let mean t =
  if t.len = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.samples.(i)
    done;
    !sum /. float_of_int t.len
  end

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let m = mean t in
    let sum = ref 0.0 in
    for i = 0 to t.len - 1 do
      let d = t.samples.(i) -. m in
      sum := !sum +. (d *. d)
    done;
    sqrt (!sum /. float_of_int (t.len - 1))
  end

let fold_extreme f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.samples.(i)
  done;
  !acc

let min t =
  if t.len = 0 then invalid_arg "Stats.min: empty";
  fold_extreme Float.min Float.infinity t

let max t =
  if t.len = 0 then invalid_arg "Stats.max: empty";
  fold_extreme Float.max Float.neg_infinity t

let ensure_sorted t =
  if not t.sorted then begin
    let view = Array.sub t.samples 0 t.len in
    Array.sort Float.compare view;
    Array.blit view 0 t.samples 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if t.len = 0 then Float.nan
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.len - 1) (rank - 1)) in
    t.samples.(idx)
  end

let summary t =
  if t.len = 0 then "empty"
  else
    Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.len (mean t)
      (percentile t 50.0) (percentile t 99.0) (max t)

module Counter = struct
  type t = int ref

  let create () = ref 0
  let incr t = Stdlib.incr t
  let add t n = t := !t + n
  let get t = !t
  let reset t = t := 0
end

module Histogram = struct
  type t = {
    edges : float array; (* strictly increasing upper edges *)
    counts : int array; (* length = Array.length edges + 1 (overflow) *)
    mutable total : int;
    mutable sum : float;
  }

  let create ~buckets =
    for i = 1 to Array.length buckets - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Stats.Histogram.create: edges must be strictly increasing"
    done;
    {
      edges = Array.copy buckets;
      counts = Array.make (Array.length buckets + 1) 0;
      total = 0;
      sum = 0.0;
    }

  (* 1 ms .. 60 s, roughly x2 per step: latency distributions in a WAN
     simulation span three orders of magnitude. *)
  let latency_ms_buckets =
    [| 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1_000.; 2_500.; 5_000.;
       10_000.; 30_000.; 60_000. |]

  (* 64 B .. 16 MiB, x4 per step: message sizes and µs-scale backlogs. *)
  let size_buckets =
    [| 64.; 256.; 1_024.; 4_096.; 16_384.; 65_536.; 262_144.; 1_048_576.;
       4_194_304.; 16_777_216. |]

  (* First bucket whose upper edge admits [x]; the overflow slot otherwise.
     Binary search: edges stay small but observe sits on per-message paths. *)
  let bucket_index t x =
    let n = Array.length t.edges in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x <= t.edges.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  let observe t x =
    let i = bucket_index t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x

  let count t = t.total
  let sum t = t.sum
  let mean t = if t.total = 0 then Float.nan else t.sum /. float_of_int t.total

  let edge t i =
    if i < Array.length t.edges then t.edges.(i) else Float.infinity

  let buckets t = Array.mapi (fun i c -> (edge t i, c)) t.counts

  let cumulative t =
    let acc = ref 0 in
    Array.mapi
      (fun i c ->
        acc := !acc + c;
        (edge t i, !acc))
      t.counts

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Stats.Histogram.quantile: q out of range";
    if t.total = 0 then Float.nan
    else begin
      let target =
        Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.total)))
      in
      let acc = ref 0 and result = ref Float.infinity and found = ref false in
      Array.iteri
        (fun i c ->
          acc := !acc + c;
          if (not !found) && !acc >= target then begin
            found := true;
            result := edge t i
          end)
        t.counts;
      !result
    end

  let reset t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.total <- 0;
    t.sum <- 0.0
end

module Rate = struct
  (* A queue of (timestamp, amount) pairs pruned to the window on every
     operation; [acc] caches the in-window sum. *)
  type t = {
    window : int;
    entries : (int * float) Queue.t;
    mutable acc : float;
  }

  let create ?(window_us = 1_000_000) () =
    if window_us <= 0 then invalid_arg "Stats.Rate.create: window must be positive";
    { window = window_us; entries = Queue.create (); acc = 0.0 }

  let prune t ~now_us =
    let horizon = now_us - t.window in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt t.entries with
      | Some (ts, amount) when ts <= horizon ->
          ignore (Queue.pop t.entries);
          t.acc <- t.acc -. amount
      | _ -> continue := false
    done

  let add t ~now_us amount =
    prune t ~now_us;
    Queue.add (now_us, amount) t.entries;
    t.acc <- t.acc +. amount

  let total t ~now_us =
    prune t ~now_us;
    t.acc

  let per_second t ~now_us =
    total t ~now_us *. 1e6 /. float_of_int t.window
end
