(** Domain-based worker pool (OCaml 5 [Domain] + mutex/condvar job queue).

    Built for the bench harness: hundreds of fully independent deterministic
    simulations fan out across cores, and results must come back in a
    deterministic order so the printed tables are byte-identical at any
    pool width. No external dependencies.

    {b Determinism.} {!map} returns results in input order and, if several
    jobs fail, re-raises the exception of the lowest-index failure — the
    observable outcome is independent of cross-domain scheduling. Jobs that
    are pure functions of their input (seeded simulations) therefore
    produce bit-identical [map] results whether [jobs] is 1 or 64.

    {b Sharing.} Jobs run concurrently on separate domains; they must not
    share mutable state unless that state is itself synchronized. Every
    simulation spawned by {!Clanbft_smr.Runner} owns its engine, RNG, net
    and metric registry, so [Runner.run] specs are safe job payloads. *)

type t

val default_jobs : unit -> int
(** The [CLANBFT_JOBS] environment variable when set (must be a positive
    integer, else [Invalid_argument]), otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the thread calling
    {!map} is the remaining lane). Defaults to {!default_jobs}. [jobs = 1]
    spawns nothing and runs every job inline. *)

val jobs : t -> int
(** Parallel width, including the caller's lane. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element concurrently and returns the
    results in input order. Runs all jobs to completion even when some
    fail, then re-raises the lowest-index exception if any. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)

val shutdown : t -> unit
(** Stops and joins the worker domains. Idempotent; a shut-down pool
    rejects further {!map} calls. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    even on exception. *)
