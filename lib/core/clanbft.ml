(** clanbft — clan-based DAG BFT SMR.

    One-stop facade over the full stack, re-exporting the stable public
    surface. A downstream user typically needs only:

    - {!Committee} to size and elect clans (Fig. 1 / §6.2 analysis);
    - {!Rbc} for the standalone tribe-assisted reliable broadcast
      primitives (Fig. 2 / Fig. 3);
    - {!Config} + {!Runner} (or {!Node} for manual wiring) to run the
      single-clan / multi-clan Sailfish protocols of §5–§6;
    - {!Sim} to host everything on the deterministic simulator.

    See [examples/] for runnable entry points. *)

(** {1 Substrates} *)

module Util = struct
  module Rng = Clanbft_util.Rng
  module Bitset = Clanbft_util.Bitset
  module Heap = Clanbft_util.Heap
  module Stats = Clanbft_util.Stats
  module Hex = Clanbft_util.Hex
  module Pool = Clanbft_util.Pool
end

module Bigint = struct
  module Nat = Clanbft_bigint.Nat
  module Rat = Clanbft_bigint.Rat
end

module Crypto = struct
  module Sha256 = Clanbft_crypto.Sha256
  module Digest32 = Clanbft_crypto.Digest32
  module Keychain = Clanbft_crypto.Keychain
end

module Sim = struct
  module Time = Clanbft_sim.Time
  module Engine = Clanbft_sim.Engine
  module Topology = Clanbft_sim.Topology
  module Net = Clanbft_sim.Net
end

(** {1 Observability (structured tracing + metric registry)} *)

module Obs = Clanbft_obs.Obs
module Trace = Clanbft_obs.Trace
module Metrics = Clanbft_obs.Metrics
module Analyze = Clanbft_obs.Analyze
module Prof = Clanbft_obs.Prof

(** {1 Committee analysis (paper §5 / §6.2)} *)

module Committee = Clanbft_committee.Analysis

(** {1 Protocol types (Fig. 4)} *)

module Transaction = Clanbft_types.Transaction
module Block = Clanbft_types.Block
module Vertex = Clanbft_types.Vertex
module Cert = Clanbft_types.Cert
module Config = Clanbft_types.Config
module Msg = Clanbft_types.Msg
module Codec = Clanbft_types.Codec

(** {1 Tribe-assisted reliable broadcast (paper §3–§4)} *)

module Rbc = Clanbft_rbc.Rbc

(** {1 Byzantine fault injection} *)

module Faults = Clanbft_faults.Faults
module Adversary = Clanbft_faults.Adversary
module Strategy = Clanbft_faults.Strategy

(** {1 DAG and consensus (paper §5–§6)} *)

module Dag_store = Clanbft_dag.Store
module Sailfish = Clanbft_consensus.Sailfish
module Latency_model = Clanbft_consensus.Latency_model
module Poa_smr = Clanbft_consensus.Poa_smr

(** {1 Schedule-exploration checker (model checking in the small)} *)

module Check = struct
  module Schedule = Clanbft_check.Schedule
  module Harness = Clanbft_check.Harness
  module Explore = Clanbft_check.Explore
end

(** {1 State machine replication} *)

module Mempool = Clanbft_smr.Mempool
module Execution = Clanbft_smr.Execution
module Persist = Clanbft_smr.Persist
module Node = Clanbft_smr.Node
module Client = Clanbft_smr.Client
module Runner = Clanbft_smr.Runner
