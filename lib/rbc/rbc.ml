open Clanbft_crypto
module Bitset = Clanbft_util.Bitset
module Engine = Clanbft_sim.Engine
module Net = Clanbft_sim.Net
module Obs = Clanbft_obs.Obs
module Metrics = Clanbft_obs.Metrics
module Trace = Clanbft_obs.Trace
module Prof = Clanbft_obs.Prof

let sec_val = Prof.section "rbc.val"
let sec_echo = Prof.section "rbc.echo"
let sec_ready = Prof.section "rbc.ready"
let sec_cert = Prof.section "rbc.cert"

type protocol = Bracha | Signed_two_round | Tribe_bracha | Tribe_signed

let protocol_name = function
  | Bracha -> "bracha"
  | Signed_two_round -> "signed-2round"
  | Tribe_bracha -> "tribe-bracha"
  | Tribe_signed -> "tribe-signed"

let is_tribe = function
  | Tribe_bracha | Tribe_signed -> true
  | Bracha | Signed_two_round -> false

let is_signed = function
  | Signed_two_round | Tribe_signed -> true
  | Bracha | Tribe_bracha -> false

type msg =
  | Val of { sender : int; round : int; value : string }
  | Val_digest of { sender : int; round : int; digest : Digest32.t }
  | Echo of {
      sender : int;
      round : int;
      digest : Digest32.t;
      signer : int;
      signature : Keychain.signature option;
    }
  | Ready of {
      sender : int;
      round : int;
      digest : Digest32.t;
      signer : int;
      signature : Keychain.signature option;
    }
  | Echo_cert of {
      sender : int;
      round : int;
      digest : Digest32.t;
      agg : Keychain.aggregate;
    }
  | Pull_request of { sender : int; round : int }
  | Pull_reply of { sender : int; round : int; value : string }
  | Sync_request of { sender : int; round : int }

let msg_size ~n m =
  let sig_opt = function None -> 0 | Some _ -> Keychain.signature_size in
  match m with
  | Val { value; _ } -> 1 + 4 + 4 + 4 + String.length value
  | Val_digest _ -> 1 + 4 + 4 + Digest32.size
  | Echo { signature; _ } | Ready { signature; _ } ->
      1 + 4 + 4 + Digest32.size + 4 + sig_opt signature
  | Echo_cert _ ->
      1 + 4 + 4 + Digest32.size + Keychain.signature_size + ((n + 7) / 8)
  | Pull_request _ -> 1 + 4 + 4
  | Pull_reply { value; _ } -> 1 + 4 + 4 + 4 + String.length value
  | Sync_request _ -> 1 + 4 + 4

let msg_tag = function
  | Val _ -> "val"
  | Val_digest _ -> "val_digest"
  | Echo _ -> "echo"
  | Ready _ -> "ready"
  | Echo_cert _ -> "echo_cert"
  | Pull_request _ -> "pull_request"
  | Pull_reply _ -> "pull_reply"
  | Sync_request _ -> "sync_request"

let msg_round = function
  | Val { round; _ }
  | Val_digest { round; _ }
  | Echo { round; _ }
  | Ready { round; _ }
  | Echo_cert { round; _ }
  | Pull_request { round; _ }
  | Pull_reply { round; _ }
  | Sync_request { round; _ } ->
      Some round

let echo_signing_string ~sender ~round digest =
  Printf.sprintf "rbc-echo|%d|%d|%s" sender round (Digest32.to_raw digest)

type outcome = Value of string | Digest_only of Digest32.t

(* Per-digest vote tracking: an equivocating sender creates several
   candidate digests within one instance; quorums are counted per digest. *)
type votes = {
  voters : Bitset.t;
  mutable clan_votes : int;
  mutable shares : (int * Keychain.signature) list; (* signed protocols *)
}

type instance = {
  sender : int;
  round : int;
  mutable value : string option; (* payload received so far *)
  mutable agreed : Digest32.t option; (* digest the quorum settled on *)
  echoes : votes Digest32.Tbl.t;
  readies : votes Digest32.Tbl.t;
  mutable sent_echo : bool;
  mutable sent_ready : bool;
  mutable sent_cert : bool;
  mutable cert : Keychain.aggregate option; (* kept to serve late joiners *)
  mutable delivered : outcome option;
  mutable pulling : bool;
  mutable pull_candidates : int list; (* remainder of the current sweep *)
  mutable pull_ring : int list; (* the full candidate cycle *)
  mutable pull_cycles : int; (* completed sweeps, drives the backoff *)
  served : (int, int) Hashtbl.t; (* peer -> pull replies served *)
}

type node = {
  me : int;
  n : int;
  f : int;
  protocol : protocol;
  clan : Bitset.t option; (* None for non-tribe protocols *)
  clan_quorum : int; (* fc + 1, or 0 when no clan constraint *)
  engine : Engine.t;
  net : msg Net.t;
  keychain : Keychain.t;
  pull_retry : Clanbft_sim.Time.span;
  pull_budget : int;
  on_deliver : sender:int -> round:int -> outcome -> unit;
  instances : (int * int, instance) Hashtbl.t;
  obs_trace : Trace.t;
  pull_retries : Metrics.counter;
}

let quorum t = (2 * t.f) + 1
let weak_quorum t = t.f + 1

let in_clan t i =
  match t.clan with None -> true | Some clan -> Bitset.mem clan i

(* Does this node eventually hold the full value? Clan members do; in the
   non-tribe protocols everyone does. *)
let entitled_to_value t = in_clan t t.me

let trace_phase t inst phase =
  if Trace.enabled t.obs_trace then
    Trace.emit t.obs_trace ~ts:(Engine.now t.engine)
      (Trace.Rbc_phase
         { node = t.me; sender = inst.sender; round = inst.round; phase })

let rec create ~me ~n ?f ?clan ~protocol ~engine ~net ~keychain
    ?(pull_retry = Clanbft_sim.Time.ms 200.) ?(pull_budget = 8)
    ?(obs = Obs.disabled) ~on_deliver () =
  let f = match f with Some f -> f | None -> (n - 1) / 3 in
  if f < 0 || (3 * f) + 1 > n then invalid_arg "Rbc.create: need n >= 3f+1";
  let clan_set, clan_quorum =
    match (is_tribe protocol, clan) with
    | false, _ -> (None, 0)
    | true, None -> invalid_arg "Rbc.create: tribe protocol needs a clan"
    | true, Some members ->
        let set = Bitset.create n in
        Array.iter (fun i -> ignore (Bitset.add set i)) members;
        let nc = Bitset.cardinal set in
        let fc = ((nc + 1) / 2) - 1 in
        (Some set, fc + 1)
  in
  let t =
    {
      me;
      n;
      f;
      protocol;
      clan = clan_set;
      clan_quorum;
      engine;
      net;
      keychain;
      pull_retry;
      pull_budget;
      on_deliver;
      instances = Hashtbl.create 64;
      obs_trace = obs.Obs.trace;
      pull_retries =
        Metrics.counter obs.Obs.metrics
          ~labels:[ ("node", string_of_int me) ]
          "rbc_pull_retries";
    }
  in
  Net.set_handler net me (fun ~src m -> handle t ~src m);
  t

and instance_of t ~sender ~round =
  match Hashtbl.find_opt t.instances (sender, round) with
  | Some i -> i
  | None ->
      let i =
        {
          sender;
          round;
          value = None;
          agreed = None;
          echoes = Digest32.Tbl.create 2;
          readies = Digest32.Tbl.create 2;
          sent_echo = false;
          sent_ready = false;
          sent_cert = false;
          cert = None;
          delivered = None;
          pulling = false;
          pull_candidates = [];
          pull_ring = [];
          pull_cycles = 0;
          served = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.instances (sender, round) i;
      i

and votes_of tbl digest =
  fun n ->
  match Digest32.Tbl.find_opt tbl digest with
  | Some v -> v
  | None ->
      let v = { voters = Bitset.create n; clan_votes = 0; shares = [] } in
      Digest32.Tbl.replace tbl digest v;
      v

and send_echo t inst digest =
  if not inst.sent_echo then begin
    inst.sent_echo <- true;
    trace_phase t inst Trace.Echo;
    let signature =
      if is_signed t.protocol then
        Some
          (Keychain.sign t.keychain ~signer:t.me
             (echo_signing_string ~sender:inst.sender ~round:inst.round digest))
      else None
    in
    Net.broadcast t.net ~src:t.me
      (Echo
         { sender = inst.sender; round = inst.round; digest; signer = t.me; signature })
  end

and send_ready t inst digest =
  if not inst.sent_ready then begin
    inst.sent_ready <- true;
    trace_phase t inst Trace.Ready;
    let signature =
      (* READY only exists in the Bracha-style protocols, which are
         signature-free. *)
      None
    in
    Net.broadcast t.net ~src:t.me
      (Ready
         { sender = inst.sender; round = inst.round; digest; signer = t.me; signature })
  end

and deliver t inst outcome =
  if inst.delivered = None then begin
    inst.delivered <- Some outcome;
    trace_phase t inst Trace.Deliver;
    t.on_deliver ~sender:inst.sender ~round:inst.round outcome
  end

and start_pull t inst digest =
  if (not inst.pulling) && inst.delivered = None then begin
    inst.pulling <- true;
    (* Candidates, in decreasing order of confidence: parties that ECHOed
       the agreed digest (clan members first — whp they include an honest
       value holder), then READY voters (a node that delivered via 2f+1
       READYs may never have seen a single ECHO for this digest), and
       finally every other clan member — totality guarantees at least one
       honest clan member holds the value once anyone delivered. *)
    let seen = Bitset.create t.n in
    let keep i = i <> t.me && Bitset.add seen i in
    let voters tbl =
      match Digest32.Tbl.find_opt tbl digest with
      | Some v -> List.filter keep (Bitset.to_list v.voters)
      | None -> []
    in
    let echo_clan, echo_rest = List.partition (in_clan t) (voters inst.echoes) in
    let ready_clan, ready_rest =
      List.partition (in_clan t) (voters inst.readies)
    in
    let clan_rest =
      List.filter (fun i -> in_clan t i && keep i) (List.init t.n Fun.id)
    in
    inst.pull_candidates <-
      echo_clan @ echo_rest @ ready_clan @ ready_rest @ clan_rest;
    inst.pull_ring <- inst.pull_candidates;
    inst.pull_cycles <- 0;
    pull_next t inst digest
  end

and pull_next t inst digest =
  if inst.delivered = None then
    match inst.pull_candidates with
    | target :: rest ->
        inst.pull_candidates <- rest;
        Metrics.incr t.pull_retries;
        trace_phase t inst Trace.Pull_retry;
        Net.send t.net ~src:t.me ~dst:target
          (Pull_request { sender = inst.sender; round = inst.round });
        Engine.schedule_after t.engine t.pull_retry (fun () ->
            pull_next t inst digest)
    | [] -> (
        (* Sweep exhausted. Under transient loss or slow peers a one-shot
           traversal is a liveness hole: go around again, with exponential
           backoff capped at 16 x pull_retry. *)
        match inst.pull_ring with
        | [] -> () (* nobody but us could ever hold the value *)
        | ring ->
            inst.pull_cycles <- inst.pull_cycles + 1;
            let backoff = t.pull_retry * (1 lsl min inst.pull_cycles 4) in
            inst.pull_candidates <- ring;
            Engine.schedule_after t.engine backoff (fun () ->
                pull_next t inst digest))

and try_deliver t inst digest =
  if inst.delivered = None then begin
    if inst.agreed = None then trace_phase t inst Trace.Cert;
    inst.agreed <- Some digest;
    if entitled_to_value t then begin
      match inst.value with
      | Some v when Digest32.equal (Digest32.hash_string v) digest ->
          deliver t inst (Value v)
      | _ ->
          (* Either never got the value or got an equivocator's other
             value: fetch the agreed one off the critical path. *)
          inst.value <- None;
          start_pull t inst digest
    end
    else deliver t inst (Digest_only digest)
  end

(* 2f+1 ECHOs overall, of which >= fc+1 from the clan (the clan quorum is
   0 outside the tribe protocols, where any 2f+1 echoes suffice). *)
and echo_quorum_reached t (v : votes) =
  Bitset.cardinal v.voters >= quorum t && v.clan_votes >= t.clan_quorum

and on_echo_quorum t inst digest (v : votes) =
  match t.protocol with
  | Bracha | Tribe_bracha -> send_ready t inst digest
  | Signed_two_round | Tribe_signed ->
      if not inst.sent_cert then begin
        inst.sent_cert <- true;
        let msg =
          echo_signing_string ~sender:inst.sender ~round:inst.round digest
        in
        match Keychain.aggregate t.keychain ~msg v.shares with
        | None -> ()
        | Some agg ->
            inst.cert <- Some agg;
            Net.broadcast t.net ~src:t.me
              (Echo_cert { sender = inst.sender; round = inst.round; digest; agg });
            try_deliver t inst digest
      end

and handle_val t inst value =
  if is_tribe t.protocol && not (in_clan t t.me) then
    (* Non-clan parties play the digest-only role even when a (Byzantine)
       sender ships them the full payload: storing an unverifiable value
       would let us serve equivocated payloads to pulling clan members. *)
    handle_val_digest t inst (Digest32.hash_string value)
  else begin
    (* Only the first VAL from the sender counts (non-equivocation is then
       enforced by the quorum rules). *)
    if inst.value = None && inst.delivered = None then inst.value <- Some value;
    (* Clan members echo only after receiving the value itself. *)
    if inst.value <> None then
      send_echo t inst (Digest32.hash_string (Option.get inst.value))
  end

and handle_val_digest t inst digest =
  (* Only meaningful for parties outside the clan in the tribe protocols:
     they echo on the digest alone. Clan members and non-tribe protocols
     insist on the full value. *)
  if is_tribe t.protocol && not (in_clan t t.me) then send_echo t inst digest

and handle_echo t inst ~digest ~signer ~signature =
  let valid =
    if is_signed t.protocol then
      match signature with
      | None -> false
      | Some s ->
          Keychain.verify t.keychain ~signer
            (echo_signing_string ~sender:inst.sender ~round:inst.round digest)
            s
    else true
  in
  if valid then begin
    let v = votes_of inst.echoes digest t.n in
    if Bitset.add v.voters signer then begin
      if in_clan t signer then v.clan_votes <- v.clan_votes + 1;
      (match signature with
      | Some s when is_signed t.protocol -> v.shares <- (signer, s) :: v.shares
      | _ -> ());
      if echo_quorum_reached t v then on_echo_quorum t inst digest v
    end
  end

and handle_ready t inst ~digest ~signer =
  if not (is_signed t.protocol) then begin
    let v = votes_of inst.readies digest t.n in
    if Bitset.add v.voters signer then begin
      let count = Bitset.cardinal v.voters in
      if count >= weak_quorum t then send_ready t inst digest;
      if count >= quorum t then try_deliver t inst digest
    end
  end

and handle_echo_cert t inst ~digest ~agg =
  if is_signed t.protocol && inst.delivered = None then begin
    let signers = Keychain.signers agg in
    let total = Bitset.cardinal signers in
    let clan_count =
      match t.clan with
      | None -> total
      | Some clan -> Bitset.inter_cardinal signers clan
    in
    let msg = echo_signing_string ~sender:inst.sender ~round:inst.round digest in
    if
      total >= quorum t
      && clan_count >= t.clan_quorum
      && Keychain.verify_aggregate t.keychain ~msg agg
    then begin
      inst.cert <- Some agg;
      try_deliver t inst digest
    end
  end

and handle_pull_request t inst ~src =
  match inst.value with
  | None -> ()
  | Some value ->
      let served = Option.value ~default:0 (Hashtbl.find_opt inst.served src) in
      if served < t.pull_budget then begin
        Hashtbl.replace inst.served src (served + 1);
        Net.send t.net ~src:t.me ~dst:src
          (Pull_reply { sender = inst.sender; round = inst.round; value })
      end

and handle_sync_request t inst ~src =
  (* A late joiner (e.g. a recovered crash) asks peers to re-prove an old
     instance. Only delivered instances answer: the signed protocols
     resend the stored ECHO certificate (one message re-completes the
     requester); the Bracha family resends this node's READY — totality
     gives 2f+1 delivered peers, so the requester re-forms a READY quorum
     from the responses alone. *)
  match (inst.delivered, inst.agreed) with
  | Some _, Some digest ->
      if is_signed t.protocol then (
        match inst.cert with
        | Some agg ->
            Net.send t.net ~src:t.me ~dst:src
              (Echo_cert { sender = inst.sender; round = inst.round; digest; agg })
        | None -> ())
      else
        Net.send t.net ~src:t.me ~dst:src
          (Ready
             {
               sender = inst.sender;
               round = inst.round;
               digest;
               signer = t.me;
               signature = None;
             })
  | _ -> ()

and handle_pull_reply t inst ~value =
  if inst.delivered = None && entitled_to_value t then
    match inst.agreed with
    | Some d when Digest32.equal (Digest32.hash_string value) d ->
        inst.value <- Some value;
        deliver t inst (Value value)
    | _ -> ()

and handle t ~src m =
  match m with
  | Val { sender; round; value } ->
      (* The VAL must come from its claimed sender (authenticated
         channels); anything else is discarded. *)
      if src = sender then begin
        Prof.enter sec_val;
        let inst = instance_of t ~sender ~round in
        trace_phase t inst Trace.Val;
        handle_val t inst value;
        Prof.leave sec_val
      end
  | Val_digest { sender; round; digest } ->
      if src = sender then begin
        Prof.enter sec_val;
        let inst = instance_of t ~sender ~round in
        trace_phase t inst Trace.Val;
        handle_val_digest t inst digest;
        Prof.leave sec_val
      end
  | Echo { sender; round; digest; signer; signature } ->
      if src = signer then begin
        Prof.enter sec_echo;
        handle_echo t (instance_of t ~sender ~round) ~digest ~signer ~signature;
        Prof.leave sec_echo
      end
  | Ready { sender; round; digest; signer; signature = _ } ->
      if src = signer then begin
        Prof.enter sec_ready;
        handle_ready t (instance_of t ~sender ~round) ~digest ~signer;
        Prof.leave sec_ready
      end
  | Echo_cert { sender; round; digest; agg } ->
      Prof.enter sec_cert;
      handle_echo_cert t (instance_of t ~sender ~round) ~digest ~agg;
      Prof.leave sec_cert
  | Pull_request { sender; round } ->
      handle_pull_request t (instance_of t ~sender ~round) ~src
  | Pull_reply { sender; round; value } ->
      handle_pull_reply t (instance_of t ~sender ~round) ~value
  | Sync_request { sender; round } ->
      handle_sync_request t (instance_of t ~sender ~round) ~src

let request_sync t ~sender ~round =
  if Option.is_none (instance_of t ~sender ~round).delivered then
    Net.broadcast t.net ~src:t.me (Sync_request { sender; round })

let broadcast t ~round value =
  let inst = instance_of t ~sender:t.me ~round in
  if inst.value <> None then invalid_arg "Rbc.broadcast: already broadcast";
  inst.value <- Some value;
  trace_phase t inst Trace.Propose;
  let digest = Digest32.hash_string value in
  if is_tribe t.protocol then
    for dst = 0 to t.n - 1 do
      if in_clan t dst then
        Net.send t.net ~src:t.me ~dst (Val { sender = t.me; round; value })
      else
        Net.send t.net ~src:t.me ~dst (Val_digest { sender = t.me; round; digest })
    done
  else Net.broadcast t.net ~src:t.me (Val { sender = t.me; round; value })

let delivered t ~sender ~round =
  match Hashtbl.find_opt t.instances (sender, round) with
  | None -> None
  | Some inst -> inst.delivered

let agreed t ~sender ~round =
  match Hashtbl.find_opt t.instances (sender, round) with
  | None -> None
  | Some inst -> inst.agreed

let pulling t ~sender ~round =
  match Hashtbl.find_opt t.instances (sender, round) with
  | None -> false
  | Some inst -> inst.pulling && inst.delivered = None
