(** Reliable broadcast primitives, standalone over opaque string values.

    Four protocols behind one interface:

    - {!Bracha}: classic 3-round signature-free RBC — the baseline the
      paper's Fig. 2 construction extends;
    - {!Signed_two_round}: the good-case-optimal 2-round signed RBC of
      Abraham et al. — the baseline the paper's Fig. 3 construction extends;
    - {!Tribe_bracha}: tribe-assisted RBC, Fig. 2 — 3 rounds,
      signature-free; only the clan receives the value, the rest of the
      tribe delivers its digest;
    - {!Tribe_signed}: tribe-assisted RBC, Fig. 3 — 2 rounds, signed, with
      an ECHO-certificate finish.

    Delivery semantics follow Definition 2: clan members (or everybody, for
    the non-tribe protocols) output the value [m]; parties outside the clan
    output [H(m)]. Missing values are pulled from clan members off the
    critical path, with per-peer rate limiting (§3, "Remark on communication
    complexity").

    The consensus layer does {e not} use this module — it runs the merged
    vertex+block instance of §5 (see [Clanbft_consensus]) — but the test
    suite and the RBC ablation bench exercise these primitives directly,
    and they are the reusable artefact for downstream users. *)

open Clanbft_crypto

type protocol = Bracha | Signed_two_round | Tribe_bracha | Tribe_signed

val protocol_name : protocol -> string

val is_tribe : protocol -> bool
(** Clan-based dissemination: only clan members receive (and serve) the
    full value. *)

val is_signed : protocol -> bool
(** Two-round variants whose ECHOs carry signatures (Fig. 3). *)

(** Wire messages; exposed so tests can inject Byzantine traffic straight
    into the network. *)
type msg =
  | Val of { sender : int; round : int; value : string }
  | Val_digest of { sender : int; round : int; digest : Digest32.t }
  | Echo of {
      sender : int;
      round : int;
      digest : Digest32.t;
      signer : int;
      signature : Keychain.signature option;
    }
  | Ready of {
      sender : int;
      round : int;
      digest : Digest32.t;
      signer : int;
      signature : Keychain.signature option;
    }
  | Echo_cert of {
      sender : int;
      round : int;
      digest : Digest32.t;
      agg : Keychain.aggregate;
    }
  | Pull_request of { sender : int; round : int }
  | Pull_reply of { sender : int; round : int; value : string }
  | Sync_request of { sender : int; round : int }
      (** ask peers to re-prove an already-completed instance (late join /
          crash recovery); see {!request_sync} *)

val msg_size : n:int -> msg -> int
(** Wire bytes; plug into {!Clanbft_sim.Net.create}. *)

val msg_tag : msg -> string
(** Constructor name ([val], [echo], [pull_request], …); the [classify]
    hook for {!Clanbft_faults.Faults}-style kind-keyed fault rules. *)

val msg_round : msg -> int option
(** The RBC round a message belongs to; always [Some _] here, typed as an
    option to match round-window fault-injection hooks. *)

val echo_signing_string : sender:int -> round:int -> Digest32.t -> string

type outcome = Value of string | Digest_only of Digest32.t

type node

val create :
  me:int ->
  n:int ->
  ?f:int ->
  ?clan:int array ->
  protocol:protocol ->
  engine:Clanbft_sim.Engine.t ->
  net:msg Clanbft_sim.Net.t ->
  keychain:Keychain.t ->
  ?pull_retry:Clanbft_sim.Time.span ->
  ?pull_budget:int ->
  ?obs:Clanbft_obs.Obs.t ->
  on_deliver:(sender:int -> round:int -> outcome -> unit) ->
  unit ->
  node
(** Builds an honest node and installs its network handler. [clan] is
    required (and only meaningful) for the tribe protocols. [pull_budget]
    caps how many pull requests per (instance, peer) this node will serve
    (rate limiting). [on_deliver] fires exactly once per (sender, round).

    A node that agreed on a digest it lacks the payload for pulls from ECHO
    voters, then READY voters, then every other clan member, retrying one
    peer per [pull_retry]; exhausted sweeps restart under exponential
    backoff (capped at 16 x [pull_retry]) until delivery, so transient loss
    or Byzantine non-repliers cannot stall a clan member forever.

    [obs] (default {!Clanbft_obs.Obs.disabled}) records every phase
    transition of every instance as {!Clanbft_obs.Trace.Rbc_phase} events
    (VAL received, ECHO/READY sent, digest certified, delivered, each pull
    retry) and counts pull retries in [rbc_pull_retries{node}]. *)

val broadcast : node -> round:int -> string -> unit
(** r_bcast: disseminate a value as the designated sender. *)

val request_sync : node -> sender:int -> round:int -> unit
(** Ask all peers to re-prove an old instance this node missed (it was
    down, or behind a partition, while the instance completed). Peers that
    delivered respond: in the signed protocols with their stored ECHO
    certificate — one valid response re-completes the instance — and in
    the Bracha family with a directed READY each, so responses from the
    ≥ 2f+1 delivered peers re-form a READY quorum at the requester.
    Totality of RBC makes both sufficient. No-op if this node already
    delivered the instance. Missing payloads then follow the ordinary
    pull path. *)

val delivered : node -> sender:int -> round:int -> outcome option

(** {1 Invariant-observation hooks}

    Read-only views of per-instance state for external checkers (the
    [lib/check] schedule explorer asserts agreement / totality /
    no-equivocation over them; see docs/CHECKING.md). They never mutate
    the instance table beyond what {!delivered} already does. *)

val agreed : node -> sender:int -> round:int -> Digest32.t option
(** The digest this node's quorum settled on, once certified — present
    from the moment of certification, i.e. possibly before the payload
    arrives and {!delivered} turns [Some]. *)

val pulling : node -> sender:int -> round:int -> bool
(** True while this node has certified a digest it lacks the payload for
    and its pull loop is still live. A quiescent world with a node stuck
    in ([agreed = Some _], [delivered = None], [pulling = false]) has hit
    a pull-path liveness bug — exactly the shape of the (since fixed)
    PR 1 READY-path defect the checker re-finds when that fix is
    reverted (EXPERIMENTS.md). *)
