(** Strategic adversaries: full-run protocol-level attack behaviours.

    Where {!Faults} scripts what the {e network} does to honest traffic and
    {!Adversary} injects one crafted RBC round, a strategy {e occupies} a
    node id for the whole run. The node itself runs the ordinary honest
    stack; the strategy taps the single {!Clanbft_sim.Net.set_filter} slot,
    observes every message crossing the wire, and rewrites, withholds,
    delays or amplifies traffic to mount a sustained attack:

    - {!Equivocate} — the clan leader splits its VAL inside the payload
      clan: a bounded prefix of clan recipients receives a forged variant
      (same edges, block minus one transaction, validly re-signed), everyone
      else the real digest. The real copy still clears both echo
      thresholds, so the attack stresses detection + pull, not liveness.
    - {!Censor} — the node systematically strips every DAG edge referencing
      the victim from its own proposals (within the validity envelope: the
      previous-leader edge and quorum/structural minima are preserved) and
      refuses to echo or relay certificates for the victim's slots. The
      victim's transactions only reach the order through other proposers'
      (weak) edges — systematically late.
    - {!Grief} — slow-proposer griefing: every copy of the node's own
      proposals departs [frac x round_timeout] late, riding just inside the
      timeout. Rounds the griefer leads stall the whole tribe for almost a
      full timeout without ever tripping it.
    - {!Sync_storm} — amplification against recovery: upon observing any
      [Sync_request] announcing a recovering replica, the strategy node
      sprays [burst] sync requests at the victim, each of which the victim
      answers with up to a sync chunk of vertex streams from its already
      strained uplink.
    - {!Reorder} — a worst-case-latency scheduler within the jitter bounds:
      every other message crossing the node's links (either direction) is
      held by the slack bound, adversarially inverting delivery orders.

    Everything is deterministic — no RNG draws — so attack runs replay
    bit-identically from the seed, and a run with no strategies installed
    is byte-identical to one without the engine. With a tracing [obs],
    every manipulated copy emits {!Clanbft_obs.Trace.Fault_fire} with
    [rule = -2] and the strategy name as its action, which is what lets the
    stall detector name the attack (see [docs/ATTACKS.md]). *)

open Clanbft_types

type kind =
  | Equivocate
  | Censor of int  (** victim node id *)
  | Grief of float  (** proposal delay as a fraction of [round_timeout] *)
  | Sync_storm of int  (** burst: requests injected per observed sync *)
  | Reorder of Clanbft_sim.Time.span  (** slack each held message rides *)

type spec = { node : int; kind : kind }

val kind_name : kind -> string
(** ["equivocate"], ["censor"], ["grief"], ["sync_storm"], ["reorder"] —
    also the [Fault_fire] action strings. *)

val to_string : spec -> string
(** Render back into the DSL form accepted by {!of_string}. *)

val of_string : string -> (spec, string) result
(** Parse ["NODE@STRATEGY[:ARG]"]:
    - ["3@equivocate"]
    - ["3@censor:5"] (victim node required)
    - ["3@grief:0.8"] (fraction optional, default 0.8)
    - ["3@storm:32"] (burst optional, default 32)
    - ["3@reorder:2ms"] (slack optional, default 2 ms; fault-DSL times) *)

val of_specs : string list -> (spec list, string) result

val install :
  engine:Clanbft_sim.Engine.t ->
  net:Msg.t Clanbft_sim.Net.t ->
  keychain:Clanbft_crypto.Keychain.t ->
  config:Config.t ->
  round_timeout:Clanbft_sim.Time.span ->
  ?obs:Clanbft_obs.Obs.t ->
  spec list ->
  unit
(** Wrap the net's current filter with the strategy engine ([[]] is a
    no-op). Install {e after} {!Faults.install}: strategies rule first and
    delegate untouched traffic — and their crafted copies — to the fault
    filter below, so network fault rules still apply to adversary traffic,
    while fault-level re-injections bypass the strategies (they were
    already ruled on once). Raises [Invalid_argument] on out-of-range node
    ids or a censor victim equal to its own node. *)
