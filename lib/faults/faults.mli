(** Deterministic Byzantine fault injection over {!Clanbft_sim.Net}.

    A {!plan} is a declarative description of an adversarial scenario:
    selective message {e drop}, {e delay} and {e duplication} rules keyed by
    message kind, peer and time/round window, network {e partitions} that
    heal at a chosen instant (the pre-GST adversary of §3's partial-synchrony
    model), and {e mute} faults that silence a node from a given round or
    time onward (crash-after-round).

    {!install} compiles a plan into a {!Clanbft_sim.Net.set_filter} hook.
    All stochastic choices (probabilistic drops, delay sampling) draw from
    the provided {!Clanbft_util.Rng.t}, so a run replays bit-identically
    from its seed. The injector is generic over the message type: pass
    [classify] (e.g. [Rbc.msg_tag] or [Msg.tag]) to enable kind-keyed rules
    and [round_of] to enable round-windowed rules and round-keyed mutes.

    Companion module {!Adversary} drives actively Byzantine RBC senders
    (equivocation, payload withholding); this module covers everything the
    network itself can do to honest traffic. *)

open Clanbft_sim

type selector = All | Only of int list | Except of int list

val selects : selector -> int -> bool

type action =
  | Drop of float  (** drop probability; [>= 1.0] drops unconditionally *)
  | Delay of { min : Time.span; max : Time.span }
      (** hold the message and re-inject it after a uniform extra delay *)
  | Duplicate of int  (** let the message through plus this many copies *)

type rule = {
  action : action;
  kinds : string list;  (** message kinds matched; [[]] matches every kind *)
  src : selector;
  dst : selector;
  from_time : Time.t;  (** active while [from_time <= now < until_time] *)
  until_time : Time.t;
  from_round : int;  (** and [from_round <= round <= until_round], when the
                         message carries a round *)
  until_round : int;
}

val rule :
  ?kinds:string list ->
  ?src:selector ->
  ?dst:selector ->
  ?from_time:Time.t ->
  ?until_time:Time.t ->
  ?from_round:int ->
  ?until_round:int ->
  action ->
  rule
(** Rule with everything defaulted to "always, everyone, every kind". *)

type partition = {
  groups : int list list;
      (** nodes in different groups cannot exchange messages; nodes listed
          in no group are unconstrained *)
  part_from : Time.t;
  heal_at : Time.t;
      (** Messages sent at [heal_at] or later pass again. Cross-group
          traffic sent while the partition is up is {e buffered} and
          re-injected at [heal_at] — the partial-synchrony model, where an
          adversary delays messages until GST but cannot destroy them
          (think TCP retransmission across a healed split). A partition
          that never heals ([heal_at = max_int]) drops instead. *)
}

type mute = {
  node : int;
  after_round : int;  (** suppress round-tagged messages with round >= this *)
  after_time : Time.t;  (** and everything the node sends from this time on *)
}

type restart = {
  node : int;
  crash_at : Time.t;
  recover_at : Time.t;
      (** The replica is torn down at [crash_at] (process and volatile
          state lost, pending disk writes discarded) and rebuilt at
          [recover_at] from its write-ahead log plus peer state sync (see
          [docs/RECOVERY.md]). Restarts are executed by the runner's
          lifecycle scheduler, not by the network filter, so they are
          carried in [Runner.spec] rather than in {!plan}. *)
}

type plan = {
  rules : rule list;  (** first matching rule wins *)
  partitions : partition list;
  mutes : mute list;
}

val empty : plan
val is_empty : plan -> bool

val plan :
  ?rules:rule list -> ?partitions:partition list -> ?mutes:mute list -> unit -> plan

type 'msg t
(** An installed injector; retains drop/delay/duplicate counters. *)

val install :
  engine:Engine.t ->
  net:'msg Net.t ->
  rng:Clanbft_util.Rng.t ->
  ?classify:('msg -> string) ->
  ?round_of:('msg -> int option) ->
  ?obs:Clanbft_obs.Obs.t ->
  plan ->
  'msg t
(** Compiles [plan] and installs it as the net's filter (replacing any
    previous filter). Delayed and duplicated messages are re-injected
    through {!Net.send_unfiltered} — they pay serialization again, like a
    real retransmission, but are never re-offered to the filter chain (nor
    to any adversary {!Strategy} layered above it).

    With a tracing [obs], every rule that {e bites} emits a
    {!Clanbft_obs.Trace.Fault_fire} event carrying the rule's index in
    [plan.rules] (or [-1] for mute and partition firings) and the action
    taken (["drop"], ["delay"], ["dup"], ["mute"], ["partition_delay"],
    ["partition_drop"]). A probabilistic drop that lets the message
    through does not fire. *)

val examined : _ t -> int
val dropped : _ t -> int
val delayed : _ t -> int
val duplicated : _ t -> int

(** {1 Textual scenario specs}

    The CLI and bench presets describe plans as colon-separated specs:

    - rule: [ACTION(:FIELD)*] where [ACTION] is [drop], [drop=0.3],
      [delay=50ms], [delay=10ms..80ms] or [dup=2], and each [FIELD] is one
      of [kind=echo,val], [src=1,2], [src=!0] (everyone but 0), [dst=*],
      [from=1s], [until=3s], [rounds=2..8] (inclusive), [rounds=5..].
      Example: [drop=0.5:kind=echo:dst=8:until=3s].
    - partition: groups separated by [|], e.g. [0,1,2|3,4:until=2s]; the
      [until] field is the heal time, at which buffered cross-group
      traffic is released (omit it for a permanent cut, which drops).
    - mute: [NODE(:round=R)?(:time=T)?], e.g. [3:round=10].
    - restart: [NODE@CRASH:RECOVER], e.g. [3@4s:8s].

    Times accept [us]/[ms]/[s] suffixes; a bare integer is microseconds. *)

val parse_time : string -> (Time.span, string) result
(** The spec grammar's time literal ([us]/[ms]/[s] suffix or bare µs);
    shared with {!Strategy}'s argument parser. *)

val rule_of_string : string -> (rule, string) result
val partition_of_string : string -> (partition, string) result
val mute_of_string : string -> (mute, string) result

val restart_of_string : string -> (restart, string) result
(** Parse [NODE@CRASH:RECOVER]; rejects [crash_at >= recover_at]. *)

val restarts_of_specs : string list -> (restart list, string) result

val plan_of_specs :
  ?rules:string list ->
  ?partitions:string list ->
  ?mutes:string list ->
  unit ->
  (plan, string) result
(** Parse a whole plan; the first malformed spec reports its error. *)
