module Engine = Clanbft_sim.Engine
module Net = Clanbft_sim.Net
module Time = Clanbft_sim.Time
module Rng = Clanbft_util.Rng
module Obs = Clanbft_obs.Obs
module Trace = Clanbft_obs.Trace

type selector = All | Only of int list | Except of int list

let selects sel i =
  match sel with
  | All -> true
  | Only l -> List.mem i l
  | Except l -> not (List.mem i l)

type action =
  | Drop of float
  | Delay of { min : Time.span; max : Time.span }
  | Duplicate of int

type rule = {
  action : action;
  kinds : string list;
  src : selector;
  dst : selector;
  from_time : Time.t;
  until_time : Time.t;
  from_round : int;
  until_round : int;
}

let rule ?(kinds = []) ?(src = All) ?(dst = All) ?(from_time = 0)
    ?(until_time = max_int) ?(from_round = 0) ?(until_round = max_int) action =
  { action; kinds; src; dst; from_time; until_time; from_round; until_round }

type partition = { groups : int list list; part_from : Time.t; heal_at : Time.t }
type mute = { node : int; after_round : int; after_time : Time.t }
type plan = { rules : rule list; partitions : partition list; mutes : mute list }

let empty = { rules = []; partitions = []; mutes = [] }
let is_empty p = p.rules = [] && p.partitions = [] && p.mutes = []

let plan ?(rules = []) ?(partitions = []) ?(mutes = []) () =
  { rules; partitions; mutes }

type 'msg t = {
  mutable examined : int;
  mutable dropped : int;
  mutable delayed : int;
  mutable duplicated : int;
}

let examined t = t.examined
let dropped t = t.dropped
let delayed t = t.delayed
let duplicated t = t.duplicated

(* Two nodes are severed by a partition iff they sit in different groups;
   a node absent from every group talks to everyone. *)
let severed p src dst =
  let group_of i =
    let rec go k = function
      | [] -> None
      | g :: rest -> if List.mem i g then Some k else go (k + 1) rest
    in
    go 0 p.groups
  in
  match (group_of src, group_of dst) with
  | Some a, Some b -> a <> b
  | _ -> false

let install ~engine ~net ~rng ?(classify = fun _ -> "") ?(round_of = fun _ -> None)
    ?(obs = Obs.disabled) plan =
  let t = { examined = 0; dropped = 0; delayed = 0; duplicated = 0 } in
  let tr = obs.Obs.trace in
  (* [rule = -1] marks mute/partition firings, which live outside the rule
     list. Fires are emitted only when a rule actually bites (a
     probabilistic drop that lets the message through is not a firing). *)
  let fire ~rule ~action ~kind ~src ~dst =
    if Trace.enabled tr then
      Trace.emit tr ~ts:(Engine.now engine)
        (Trace.Fault_fire { rule; action; kind; src; dst })
  in
  (* Delayed/duplicated traffic is re-injected outside the filter chain:
     the copy was already ruled on once, and re-offering it would also run
     any adversary strategy layered above this filter a second time. *)
  let resend ~src ~dst msg () = Net.send_unfiltered net ~src ~dst msg in
  let matches ~now ~round ~kind ~src ~dst r =
    now >= r.from_time
    && now < r.until_time
    && (match round with
       | None -> r.from_round = 0 && r.until_round = max_int
       | Some rd -> rd >= r.from_round && rd <= r.until_round)
    && (r.kinds = [] || List.mem kind r.kinds)
    && selects r.src src && selects r.dst dst
  in
  Net.set_filter net (fun ~src ~dst msg ->
      begin
        t.examined <- t.examined + 1;
        let now = Engine.now engine in
        let round = round_of msg in
        let muted =
          List.exists
            (fun m ->
              m.node = src
              && (now >= m.after_time
                 || match round with Some r -> r >= m.after_round | None -> false))
            plan.mutes
        in
        let cut =
          List.find_opt
            (fun p -> now >= p.part_from && now < p.heal_at && severed p src dst)
            plan.partitions
        in
        if muted then begin
          t.dropped <- t.dropped + 1;
          fire ~rule:(-1) ~action:"mute" ~kind:(classify msg) ~src ~dst;
          false
        end
        else
          match cut with
          | Some p when p.heal_at < max_int ->
              (* Partial synchrony: a partition delays cross-group traffic
                 rather than destroying it — buffered copies flow when the
                 partition heals (the GST of the scenario). *)
              t.delayed <- t.delayed + 1;
              fire ~rule:(-1) ~action:"partition_delay" ~kind:(classify msg) ~src ~dst;
              Engine.schedule_after engine (p.heal_at - now) (resend ~src ~dst msg);
              false
          | Some _ ->
              (* A partition that never heals is a permanent link cut. *)
              t.dropped <- t.dropped + 1;
              fire ~rule:(-1) ~action:"partition_drop" ~kind:(classify msg) ~src ~dst;
              false
          | None -> (
              let kind = classify msg in
              let rec find_rule i = function
                | [] -> None
                | r :: rest ->
                    if matches ~now ~round ~kind ~src ~dst r then Some (i, r)
                    else find_rule (i + 1) rest
              in
              match find_rule 0 plan.rules with
              | None -> true
              | Some (idx, r) -> (
                  match r.action with
                  | Drop p ->
                      if p >= 1.0 || (p > 0.0 && Rng.float rng 1.0 < p) then begin
                        t.dropped <- t.dropped + 1;
                        fire ~rule:idx ~action:"drop" ~kind ~src ~dst;
                        false
                      end
                      else true
                  | Delay { min; max } ->
                      let extra =
                        min + if max > min then Rng.int rng (max - min + 1) else 0
                      in
                      t.delayed <- t.delayed + 1;
                      fire ~rule:idx ~action:"delay" ~kind ~src ~dst;
                      Engine.schedule_after engine (Stdlib.max 0 extra)
                        (resend ~src ~dst msg);
                      false
                  | Duplicate k ->
                      t.duplicated <- t.duplicated + k;
                      fire ~rule:idx ~action:"dup" ~kind ~src ~dst;
                      for _ = 1 to k do
                        Engine.schedule_after engine 0 (resend ~src ~dst msg)
                      done;
                      true))
      end);
  t

(* ------------------------------------------------------------------ *)
(* Textual specs *)

let ( let* ) r f = Result.bind r f

let parse_int s =
  match int_of_string_opt (String.trim s) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S" s)

let parse_float s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad number %S" s)

let parse_time s =
  let s = String.trim s in
  let len = String.length s in
  let tail k = String.sub s 0 (len - k) in
  let num p k = Result.map p (parse_float (tail k)) in
  if len = 0 then Error "empty time"
  else if len > 2 && String.sub s (len - 2) 2 = "ms" then num Time.ms 2
  else if len > 2 && String.sub s (len - 2) 2 = "us" then
    Result.map Time.us (parse_int (tail 2))
  else if s.[len - 1] = 's' then num Time.s 1
  else parse_int s

let parse_ints s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* i = parse_int x in
        go (i :: acc) rest
  in
  go [] (String.split_on_char ',' s)

let parse_selector s =
  let s = String.trim s in
  if s = "*" || s = "" then Ok All
  else if s.[0] = '!' then
    Result.map (fun l -> Except l)
      (parse_ints (String.sub s 1 (String.length s - 1)))
  else Result.map (fun l -> Only l) (parse_ints s)

(* Split "a..b" into ("a", Some "b"); no ".." gives ("a", None). *)
let split_dotdot s =
  let len = String.length s in
  let rec find i =
    if i + 1 >= len then None
    else if s.[i] = '.' && s.[i + 1] = '.' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> (s, None)
  | Some i -> (String.sub s 0 i, Some (String.sub s (i + 2) (len - i - 2)))

let parse_action s =
  match String.index_opt s '=' with
  | None -> (
      match s with
      | "drop" -> Ok (Drop 1.0)
      | "delay" | "dup" -> Error (Printf.sprintf "%s needs a parameter" s)
      | _ -> Error (Printf.sprintf "unknown action %S" s))
  | Some i -> (
      let key = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match key with
      | "drop" -> Result.map (fun p -> Drop p) (parse_float v)
      | "dup" -> Result.map (fun k -> Duplicate k) (parse_int v)
      | "delay" -> (
          match split_dotdot v with
          | lo, None ->
              let* d = parse_time lo in
              Ok (Delay { min = d; max = d })
          | lo, Some hi ->
              let* min = parse_time lo in
              let* max = parse_time hi in
              if max < min then Error "delay range: max < min"
              else Ok (Delay { min; max }))
      | _ -> Error (Printf.sprintf "unknown action %S" key))

let split_kv s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" s)
  | Some i ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let rule_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> Error "empty rule"
  | action :: fields ->
      let* action = parse_action action in
      let rec apply r = function
        | [] -> Ok r
        | field :: rest ->
            let* key, v = split_kv field in
            let* r =
              match key with
              | "kind" ->
                  Ok { r with kinds = String.split_on_char ',' v }
              | "src" ->
                  let* sel = parse_selector v in
                  Ok { r with src = sel }
              | "dst" ->
                  let* sel = parse_selector v in
                  Ok { r with dst = sel }
              | "from" ->
                  let* time = parse_time v in
                  Ok { r with from_time = time }
              | "until" ->
                  let* time = parse_time v in
                  Ok { r with until_time = time }
              | "rounds" -> (
                  match split_dotdot v with
                  | lo, None ->
                      let* x = parse_int lo in
                      Ok { r with from_round = x; until_round = x }
                  | lo, Some hi ->
                      let* from_round =
                        if lo = "" then Ok 0 else parse_int lo
                      in
                      let* until_round =
                        if hi = "" then Ok max_int else parse_int hi
                      in
                      Ok { r with from_round; until_round })
              | _ -> Error (Printf.sprintf "unknown rule field %S" key)
            in
            apply r rest
      in
      apply (rule action) fields

let partition_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> Error "empty partition"
  | groups :: fields ->
      let* groups =
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | g :: rest ->
              let* ids = parse_ints g in
              go (ids :: acc) rest
        in
        go [] (String.split_on_char '|' groups)
      in
      if List.length groups < 2 then
        Error "partition needs at least two |-separated groups"
      else
        let rec apply p = function
          | [] -> Ok p
          | field :: rest ->
              let* key, v = split_kv field in
              let* p =
                match key with
                | "from" ->
                    let* time = parse_time v in
                    Ok { p with part_from = time }
                | "until" ->
                    let* time = parse_time v in
                    Ok { p with heal_at = time }
                | _ -> Error (Printf.sprintf "unknown partition field %S" key)
              in
              apply p rest
        in
        apply { groups; part_from = 0; heal_at = max_int } fields

let mute_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> Error "empty mute"
  | node :: fields ->
      let* node = parse_int node in
      let rec apply (round, time) = function
        | [] -> Ok (round, time)
        | field :: rest ->
            let* key, v = split_kv field in
            let* acc =
              match key with
              | "round" ->
                  let* r = parse_int v in
                  Ok (Some r, time)
              | "time" ->
                  let* t = parse_time v in
                  Ok (round, Some t)
              | _ -> Error (Printf.sprintf "unknown mute field %S" key)
            in
            apply acc rest
      in
      let* round, time = apply (None, None) fields in
      let m =
        match (round, time) with
        (* A bare node id mutes it from the very start (a classic crash). *)
        | None, None -> { node; after_round = max_int; after_time = 0 }
        | round, time ->
            {
              node;
              after_round = Option.value ~default:max_int round;
              after_time = Option.value ~default:max_int time;
            }
      in
      Ok m

(* Restarts are replica lifecycle, not a network filter: the runner tears
   the node down at [crash_at] and rebuilds it from its write-ahead log at
   [recover_at]. Parsed here so the fault DSL covers all failure modes.
   Declared after [install] so its [node] field does not shadow [mute]'s. *)
type restart = { node : int; crash_at : Time.t; recover_at : Time.t }

(* "i@t1:t2" — replica [i] crashes at [t1] and recovers at [t2]. *)
let restart_of_string s =
  let s = String.trim s in
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "expected node@crash:recover, got %S" s)
  | Some i -> (
      let* node = parse_int (String.sub s 0 i) in
      let times = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt times ':' with
      | None -> Error (Printf.sprintf "expected crash:recover times in %S" s)
      | Some j ->
          let* crash_at = parse_time (String.sub times 0 j) in
          let* recover_at =
            parse_time (String.sub times (j + 1) (String.length times - j - 1))
          in
          if node < 0 then Error "restart: negative node id"
          else if crash_at >= recover_at then
            Error "restart: recovery must come after the crash"
          else Ok { node; crash_at; recover_at })

let restarts_of_specs specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
        let* r =
          Result.map_error
            (fun e -> Printf.sprintf "%s (in %S)" e s)
            (restart_of_string s)
        in
        go (r :: acc) rest
  in
  go [] specs

let plan_of_specs ?(rules = []) ?(partitions = []) ?(mutes = []) () =
  let map parse specs =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest ->
          let* x =
            Result.map_error (fun e -> Printf.sprintf "%s (in %S)" e s) (parse s)
          in
          go (x :: acc) rest
    in
    go [] specs
  in
  let* rules = map rule_of_string rules in
  let* partitions = map partition_of_string partitions in
  let* mutes = map mute_of_string mutes in
  Ok { rules; partitions; mutes }
