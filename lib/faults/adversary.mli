(** Actively Byzantine RBC senders.

    {!Faults} covers everything the network can do to honest traffic; this
    module impersonates a {e sender} that crafts its own first-round
    dissemination maliciously. The adversary occupies a node id with no
    honest protocol instance behind it (give that id a no-op net handler)
    and injects raw {!Clanbft_rbc.Rbc.msg} traffic; the honest nodes'
    quorum rules must then keep the instance safe — and, whenever any
    honest party delivers, live.

    Everything is deterministic: recipients are visited in id order, so two
    runs of the same scenario are bit-identical. *)

type behaviour =
  | Silent  (** the sender never speaks: nobody may deliver *)
  | Equivocate of { values : string list }
      (** round-robin distinct values across recipients (clan members get
          full VALs, the rest of the tribe the matching digests): a
          maximal-confusion split under which typically no digest reaches
          quorum — a safety stressor *)
  | Equivocate_biased of { value : string; decoy : string; decoys : int }
      (** [decoy] to the first [decoys] value-entitled recipients, [value]
          to every other party: [value] can still reach quorum, so decoy
          holders must detect the mismatch and pull — a liveness stressor *)
  | Withhold of { value : string; reveal : int }
      (** full VAL to only the first [reveal] clan members; everyone else
          (including the remaining clan) gets just the digest. With
          [reveal >= f_c + 1] the echo quorum still forms and the stiffed
          clan members must pull the payload; below that threshold nothing
          can deliver *)

val behaviour_name : behaviour -> string

val run :
  sender:int ->
  n:int ->
  ?clan:int array ->
  protocol:Clanbft_rbc.Rbc.protocol ->
  net:Clanbft_rbc.Rbc.msg Clanbft_sim.Net.t ->
  round:int ->
  behaviour ->
  unit
(** Inject the Byzantine sender's opening traffic for one RBC instance.
    [clan] is required for the tribe protocols (same contract as
    {!Clanbft_rbc.Rbc.create}); for the non-tribe protocols every node
    counts as value-entitled. *)
