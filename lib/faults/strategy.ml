open Clanbft_types
open Clanbft_crypto
module Engine = Clanbft_sim.Engine
module Net = Clanbft_sim.Net
module Time = Clanbft_sim.Time
module Obs = Clanbft_obs.Obs
module Trace = Clanbft_obs.Trace

type kind =
  | Equivocate
  | Censor of int
  | Grief of float
  | Sync_storm of int
  | Reorder of Time.span

type spec = { node : int; kind : kind }

let kind_name = function
  | Equivocate -> "equivocate"
  | Censor _ -> "censor"
  | Grief _ -> "grief"
  | Sync_storm _ -> "sync_storm"
  | Reorder _ -> "reorder"

let to_string { node; kind } =
  match kind with
  | Equivocate -> Printf.sprintf "%d@equivocate" node
  | Censor v -> Printf.sprintf "%d@censor:%d" node v
  | Grief f -> Printf.sprintf "%d@grief:%g" node f
  | Sync_storm b -> Printf.sprintf "%d@storm:%d" node b
  | Reorder s -> Printf.sprintf "%d@reorder:%dus" node s

(* ------------------------------------------------------------------ *)
(* "NODE@STRATEGY[:ARG]" — same '@'-then-':' shape as restart specs. *)

let ( let* ) r f = Result.bind r f

let of_string s =
  let s = String.trim s in
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "expected node@strategy[:arg], got %S" s)
  | Some i -> (
      let* node =
        match int_of_string_opt (String.sub s 0 i) with
        | Some x when x >= 0 -> Ok x
        | Some _ -> Error "strategy: negative node id"
        | None -> Error (Printf.sprintf "bad node id in %S" s)
      in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let name, arg =
        match String.index_opt rest ':' with
        | None -> (rest, None)
        | Some j ->
            ( String.sub rest 0 j,
              Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
      in
      let int_arg ~default =
        match arg with
        | None -> Ok default
        | Some a -> (
            match int_of_string_opt a with
            | Some x when x > 0 -> Ok x
            | _ -> Error (Printf.sprintf "bad %s argument %S" name a))
      in
      match name with
      | "equivocate" -> (
          match arg with
          | None -> Ok { node; kind = Equivocate }
          | Some _ -> Error "equivocate takes no argument")
      | "censor" -> (
          match arg with
          | None -> Error "censor needs a victim node id"
          | Some a -> (
              match int_of_string_opt a with
              | Some v when v >= 0 -> Ok { node; kind = Censor v }
              | _ -> Error (Printf.sprintf "bad censor victim %S" a)))
      | "grief" -> (
          match arg with
          | None -> Ok { node; kind = Grief 0.8 }
          | Some a -> (
              match float_of_string_opt a with
              | Some f when f > 0.0 && f < 1.0 -> Ok { node; kind = Grief f }
              | _ -> Error "grief fraction must be in (0, 1)"))
      | "storm" | "sync-storm" | "sync_storm" ->
          let* burst = int_arg ~default:32 in
          Ok { node; kind = Sync_storm burst }
      | "reorder" -> (
          match arg with
          | None -> Ok { node; kind = Reorder (Time.ms 2.) }
          | Some a -> (
              (* Reuse the fault DSL's time grammar (us/ms/s suffixes). *)
              match Faults.parse_time a with
              | Ok s when s > 0 -> Ok { node; kind = Reorder s }
              | Ok _ -> Error "reorder slack must be positive"
              | Error e -> Error e))
      | _ -> Error (Printf.sprintf "unknown strategy %S" name))

let of_specs specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
        let* x =
          Result.map_error
            (fun e -> Printf.sprintf "%s (in %S)" e s)
            (of_string s)
        in
        go (x :: acc) rest
  in
  go [] specs

(* ------------------------------------------------------------------ *)
(* Engine *)

(* Per-round forging caches, so one round's interceptions agree on the
   crafted variant no matter how many per-destination copies fly. *)
type equivocate_state = {
  eq_decoys : int;
      (* how many in-clan recipients get the decoy: capped so the real
         digest still clears both the global echo quorum and the clan echo
         threshold — the split must stress the pull path, not silence the
         slot outright *)
  (* round -> (decoy vertex, decoy block, signature); None = unforgeable
     (no block / empty block) *)
  eq_forged : (int, (Vertex.t * Block.t * Keychain.signature) option) Hashtbl.t;
  eq_handed : (int, int ref) Hashtbl.t; (* round -> in-clan copies seen *)
}

type censor_state = {
  (* round -> censored (vertex, signature); None = guards said skip *)
  cn_forged : (int, (Vertex.t * Keychain.signature) option) Hashtbl.t;
}

type node_state =
  | S_equivocate of equivocate_state
  | S_censor of int * censor_state
  | S_grief of Time.span
  | S_storm of int
  | S_reorder of Time.span * int ref (* slack, held-message parity counter *)

let install ~engine ~net ~keychain ~config ~round_timeout
    ?(obs = Obs.disabled) specs =
  if specs <> [] then begin
    let n = Config.n config in
    List.iter
      (fun { node; kind } ->
        if node < 0 || node >= n then invalid_arg "Strategy: bad node id";
        match kind with
        | Censor v when v < 0 || v >= n || v = node ->
            invalid_arg "Strategy: bad censor victim"
        | _ -> ())
      specs;
    let prev = Net.filter net in
    let tr = obs.Obs.trace in
    let fire ~action ~kind ~src ~dst =
      if Trace.enabled tr then
        Trace.emit tr ~ts:(Engine.now engine)
          (Trace.Fault_fire { rule = -2; action; kind; src; dst })
    in
    (* A crafted or held copy was already ruled on by this layer; offer it
       only to the layers below (network fault rules), then bypass the
       filter chain entirely on the way out. *)
    let inject ~src ~dst msg =
      if prev ~src ~dst msg then Net.send_unfiltered net ~src ~dst msg
    in
    let f = (n - 1) / 3 in
    let state = Array.make n None in
    List.iter
      (fun { node; kind } ->
        let s =
          match kind with
          | Equivocate ->
              let decoys =
                match Config.payload_clan config ~proposer:node with
                | None -> 0
                | Some members ->
                    let nc = Array.length members in
                    min f (nc - Config.clan_echo_threshold config ~proposer:node)
              in
              S_equivocate
                {
                  eq_decoys = max 0 decoys;
                  eq_forged = Hashtbl.create 64;
                  eq_handed = Hashtbl.create 64;
                }
          | Censor v -> S_censor (v, { cn_forged = Hashtbl.create 64 })
          | Grief frac ->
              S_grief (int_of_float (frac *. float_of_int round_timeout))
          | Sync_storm burst -> S_storm burst
          | Reorder slack -> S_reorder (slack, ref 0)
        in
        state.(node) <- Some s)
      specs;
    let sign_val me v = Keychain.sign keychain ~signer:me (Msg.val_signing_string v) in
    (* Decoy variant of my own proposal: same edges and certificates, the
       block minus its last transaction — a different block digest, hence a
       different vertex digest, under a perfectly valid signature. *)
    let forge_decoy me (vertex : Vertex.t) (block : Block.t) =
      if Block.txn_count block = 0 then None
      else
        let txns = Array.sub block.txns 0 (Array.length block.txns - 1) in
        let db = Block.make ~proposer:me ~round:vertex.round ~txns in
        let dv =
          Vertex.make ~round:vertex.round ~source:vertex.source
            ~block_digest:(Block.digest db) ~strong_edges:vertex.strong_edges
            ~weak_edges:vertex.weak_edges ~compact:vertex.compact
            ?nvc:vertex.nvc ?tc:vertex.tc ()
        in
        Some (dv, db, sign_val me dv)
    in
    (* Censored variant: drop every edge referencing the victim, within the
       validity envelope (never the previous-leader edge; dense mode keeps
       >= quorum strong edges; some strong edge always remains). *)
    let forge_censored me victim (vertex : Vertex.t) =
      let refs_victim (e : Vertex.vref) = e.source = victim in
      if
        vertex.round = 0
        || not
             (Array.exists refs_victim vertex.strong_edges
             || Array.exists refs_victim vertex.weak_edges)
      then None
      else if victim = Config.leader_of_round config (vertex.round - 1) then
        None
      else
        let strong =
          Array.of_list
            (List.filter
               (fun e -> not (refs_victim e))
               (Array.to_list vertex.strong_edges))
        in
        let ok =
          match Config.edge_policy config with
          | Config.Dense -> Array.length strong >= Config.quorum config
          | Config.Sparse _ -> Array.length strong >= 1
        in
        if not ok then None
        else
          let weak =
            Array.of_list
              (List.filter
                 (fun e -> not (refs_victim e))
                 (Array.to_list vertex.weak_edges))
          in
          let cv =
            Vertex.make ~round:vertex.round ~source:vertex.source
              ~block_digest:vertex.block_digest ~strong_edges:strong
              ~weak_edges:weak ~compact:vertex.compact ?nvc:vertex.nvc
              ?tc:vertex.tc ()
          in
          Some (cv, sign_val me cv)
    in
    Net.set_filter net (fun ~src ~dst msg ->
        (* Sync-storm vantage: every strategy node watches the whole tap for
           a recovering replica announcing itself, whoever it talks to. *)
        (match msg with
        | Msg.Sync_request _ when src <> dst ->
            Array.iteri
              (fun me s ->
                match s with
                | Some (S_storm burst) when me <> src && me <> dst ->
                    fire ~action:"sync_storm" ~kind:"sync_request" ~src:me
                      ~dst:src;
                    (* Injected off a fresh event so the burst never runs
                       inside another sender's fan-out iteration. *)
                    Engine.schedule_after engine 0 (fun () ->
                        for _ = 1 to burst do
                          inject ~src:me ~dst:src
                            (Msg.Sync_request { from_round = 0 })
                        done)
                | _ -> ())
              state
        | _ -> ());
        (* Worst-case delivery order within the latency envelope: a reorder
           node holds back every other message crossing its links — either
           direction — by the slack bound, inverting arrivals pairwise
           against the copies behind them. *)
        let reorder_hold =
          if src = dst then None
          else
            match state.(src) with
            | Some (S_reorder (slack, parity)) -> Some (slack, parity)
            | _ -> (
                match state.(dst) with
                | Some (S_reorder (slack, parity)) -> Some (slack, parity)
                | _ -> None)
        in
        match reorder_hold with
        | Some (slack, parity) ->
            incr parity;
            if !parity land 1 = 1 then begin
              fire ~action:"reorder" ~kind:(Msg.tag msg) ~src ~dst;
              Engine.schedule_after engine slack (fun () -> inject ~src ~dst msg);
              false
            end
            else prev ~src ~dst msg
        | None -> (
        match state.(src) with
        | None -> prev ~src ~dst msg
        | Some s -> (
            match (s, msg) with
            | ( S_equivocate st,
                Msg.Val { vertex; block = Some block; signature = _ } )
              when vertex.source = src && dst <> src ->
                let forged =
                  match Hashtbl.find_opt st.eq_forged vertex.round with
                  | Some f -> f
                  | None ->
                      let f = forge_decoy src vertex block in
                      Hashtbl.replace st.eq_forged vertex.round f;
                      f
                in
                (match forged with
                | None -> prev ~src ~dst msg
                | Some (dv, db, dsig) ->
                    (* Split inside the clan only: the first f value-entitled
                       recipients (id order — the propose fan-out) get the
                       decoy, everyone else the real digest, so the real copy
                       can still certify while decoy holders must detect the
                       mismatch and pull. Non-clan recipients see consistent
                       digests, keeping the equivocation invisible from
                       outside. *)
                    let handed =
                      match Hashtbl.find_opt st.eq_handed vertex.round with
                      | Some r -> r
                      | None ->
                          let r = ref 0 in
                          Hashtbl.replace st.eq_handed vertex.round r;
                          r
                    in
                    incr handed;
                    if !handed <= st.eq_decoys then begin
                      fire ~action:"equivocate" ~kind:"val" ~src ~dst;
                      inject ~src ~dst
                        (Msg.Val { vertex = dv; block = Some db; signature = dsig });
                      false
                    end
                    else prev ~src ~dst msg)
            | S_censor (victim, st), Msg.Val { vertex; block; signature = _ }
              when vertex.source = src ->
                let forged =
                  match Hashtbl.find_opt st.cn_forged vertex.round with
                  | Some x -> x
                  | None ->
                      let x = forge_censored src victim vertex in
                      Hashtbl.replace st.cn_forged vertex.round x;
                      x
                in
                (match forged with
                | None -> prev ~src ~dst msg
                | Some (cv, csig) ->
                    (* Every copy — the self copy included — carries the
                       censored variant, so the censor is consistent (no
                       equivocation) and merely refuses to reference the
                       victim's vertices. *)
                    fire ~action:"censor" ~kind:"val" ~src ~dst;
                    inject ~src ~dst
                      (Msg.Val { vertex = cv; block; signature = csig });
                    false)
            | S_censor (victim, _), Msg.Echo { source; _ }
              when source = victim ->
                (* Refuse to help certify the victim's slots. *)
                fire ~action:"censor" ~kind:"echo" ~src ~dst;
                false
            | S_censor (victim, _), Msg.Echo_cert { source; _ }
              when source = victim ->
                fire ~action:"censor" ~kind:"echo_cert" ~src ~dst;
                false
            | S_grief hold, Msg.Val { vertex; _ } when vertex.source = src ->
                (* Ride just inside the round timeout: every copy of my
                   proposal departs [hold] late. Rounds I lead stall the
                   whole tribe for almost the full timeout, yet never
                   actually trip it. *)
                fire ~action:"grief" ~kind:"val" ~src ~dst;
                Engine.schedule_after engine hold (fun () ->
                    inject ~src ~dst msg);
                false
            | _ -> prev ~src ~dst msg)))
  end
