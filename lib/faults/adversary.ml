open Clanbft_crypto
module Bitset = Clanbft_util.Bitset
module Net = Clanbft_sim.Net
module Rbc = Clanbft_rbc.Rbc

type behaviour =
  | Silent
  | Equivocate of { values : string list }
  | Equivocate_biased of { value : string; decoy : string; decoys : int }
  | Withhold of { value : string; reveal : int }

let behaviour_name = function
  | Silent -> "silent"
  | Equivocate _ -> "equivocate"
  | Equivocate_biased _ -> "equivocate-biased"
  | Withhold _ -> "withhold"

let run ~sender ~n ?clan ~protocol ~net ~round behaviour =
  let tribe = Rbc.is_tribe protocol in
  let in_clan =
    if not tribe then fun _ -> true
    else
      match clan with
      | None -> invalid_arg "Adversary.run: tribe protocol needs a clan"
      | Some members ->
          let set = Bitset.create n in
          Array.iter (fun i -> ignore (Bitset.add set i)) members;
          fun i -> Bitset.mem set i
  in
  let send_val dst value =
    Net.send net ~src:sender ~dst (Rbc.Val { sender; round; value })
  in
  let send_digest dst value =
    Net.send net ~src:sender ~dst
      (Rbc.Val_digest { sender; round; digest = Digest32.hash_string value })
  in
  match behaviour with
  | Silent -> ()
  | Equivocate { values } ->
      if values = [] then invalid_arg "Adversary.run: Equivocate needs values";
      let arr = Array.of_list values in
      let slot = ref 0 in
      for dst = 0 to n - 1 do
        if dst <> sender then begin
          let v = arr.(!slot mod Array.length arr) in
          incr slot;
          if in_clan dst then send_val dst v else send_digest dst v
        end
      done
  | Equivocate_biased { value; decoy; decoys } ->
      (* Value-entitled recipients (the clan, or everyone outside the tribe
         protocols) in id order, so scenarios replay exactly. The counter is
         scoped to this invocation's arm: reusing a behaviour within a round
         must hand the same recipients the same roles. *)
      let entitled = ref 0 in
      for dst = 0 to n - 1 do
        if dst <> sender then
          if in_clan dst then begin
            incr entitled;
            if !entitled <= decoys then send_val dst decoy else send_val dst value
          end
          else send_digest dst value
      done
  | Withhold { value; reveal } ->
      let entitled = ref 0 in
      for dst = 0 to n - 1 do
        if dst <> sender then
          if in_clan dst then begin
            incr entitled;
            if !entitled <= reveal then send_val dst value
            else if tribe then send_digest dst value
            (* Non-tribe: a stiffed party gets nothing at all — honest
               non-tribe nodes ignore digest-only VALs anyway. *)
          end
          else send_digest dst value
      done
