open Clanbft_bigint
module Rng = Clanbft_util.Rng

let default_f n = (n - 1) / 3
let max_clan_faults nc = ((nc + 1) / 2) - 1

(* Multiplicative binomial: C(n,k) = prod_{i=1..k} (n-k+i)/i. Each division
   is exact because after multiplying by (n-k+i) the running product is a
   product of i consecutive integers, hence divisible by i!. Cached: the
   analysis evaluates the same coefficients many times. The cache is the
   one piece of library-global mutable state, so it carries its own lock —
   bench jobs now run on worker domains (Pool) and may size committees
   concurrently. *)
let binomial_cache : (int * int, Nat.t) Hashtbl.t = Hashtbl.create 1024
let binomial_lock = Mutex.create ()

let binomial n k =
  if k < 0 || k > n then Nat.zero
  else begin
    let k = min k (n - k) in
    let cached =
      Mutex.lock binomial_lock;
      let v = Hashtbl.find_opt binomial_cache (n, k) in
      Mutex.unlock binomial_lock;
      v
    in
    match cached with
    | Some v -> v
    | None ->
        let acc = ref Nat.one in
        for i = 1 to k do
          acc := Nat.mul_int !acc (n - k + i);
          let q, r = Nat.divmod_int !acc i in
          assert (r = 0);
          acc := q
        done;
        Mutex.lock binomial_lock;
        Hashtbl.replace binomial_cache (n, k) !acc;
        Mutex.unlock binomial_lock;
        !acc
  end

let check_tribe ~n ~f =
  if n <= 0 then invalid_arg "Analysis: n must be positive";
  if f < 0 || f >= n then invalid_arg "Analysis: need 0 <= f < n"

let single_clan_failure ~n ~f ~nc =
  check_tribe ~n ~f;
  if nc <= 0 || nc > n then invalid_arg "Analysis: need 0 < nc <= n";
  (* Eq. 1: sum_{k=⌈nc/2⌉}^{nc} C(f,k) C(n-f, nc-k) / C(n, nc) *)
  let lo = (nc + 1) / 2 in
  let total = binomial n nc in
  let s = ref Nat.zero in
  for k = lo to min nc f do
    s := Nat.add !s (Nat.mul (binomial f k) (binomial (n - f) (nc - k)))
  done;
  Rat.make !s total

let multi_clan_failure ~n ~f ~q ~nc =
  check_tribe ~n ~f;
  if q <= 0 then invalid_arg "Analysis: q must be positive";
  if nc <= 0 || q * nc > n then invalid_arg "Analysis: need 0 < q*nc <= n";
  let fc = max_clan_faults nc in
  (* N = number of ways to draw q ordered disjoint clans (Eq. 3 / Eq. 6,
     except we also count the choice of the last clan explicitly, which
     cancels in the ratio when q*nc = n). *)
  let total =
    let acc = ref Nat.one in
    for i = 0 to q - 1 do
      acc := Nat.mul !acc (binomial (n - (i * nc)) nc)
    done;
    !acc
  in
  (* s = draws in which every clan has at most fc Byzantine members
     (Eq. 4 / Eq. 7 generalised). State: clans still to fill and Byzantine
     parties still unassigned; honest remainder is determined. *)
  let memo : (int * int, Nat.t) Hashtbl.t = Hashtbl.create 64 in
  let rec good i f_rem =
    if i = q then Nat.one
    else
      match Hashtbl.find_opt memo (i, f_rem) with
      | Some v -> v
      | None ->
          let h_rem = n - (i * nc) - f_rem in
          let acc = ref Nat.zero in
          let w_max = min fc (min f_rem nc) in
          for w = max 0 (nc - h_rem) to w_max do
            let ways =
              Nat.mul (binomial f_rem w) (binomial h_rem (nc - w))
            in
            if not (Nat.is_zero ways) then
              acc := Nat.add !acc (Nat.mul ways (good (i + 1) (f_rem - w)))
          done;
          Hashtbl.replace memo (i, f_rem) !acc;
          !acc
  in
  let s = good 0 f in
  (* Pr(some clan dishonest) = 1 - s/N = (N - s)/N, exactly. *)
  Rat.make (Nat.sub total s) total

let min_clan_size ?(q = 1) ~n ~f ~threshold () =
  check_tribe ~n ~f;
  let failure nc =
    if q = 1 then single_clan_failure ~n ~f ~nc
    else multi_clan_failure ~n ~f ~q ~nc
  in
  let max_nc = n / q in
  let rec search nc =
    if nc > max_nc then None
    else if Rat.compare (failure nc) threshold <= 0 then Some nc
    else search (nc + 1)
  in
  search 1

let elect_random rng ~n ~nc =
  if nc < 0 || nc > n then invalid_arg "Analysis.elect_random";
  let ids = Array.init n (fun i -> i) in
  Rng.shuffle rng ids;
  let clan = Array.sub ids 0 nc in
  Array.sort Stdlib.compare clan;
  clan

let elect_balanced ~n ~nc =
  if nc <= 0 || nc > n then invalid_arg "Analysis.elect_balanced";
  (* With round-robin region placement (node i in region i mod r),
     consecutive ids spread evenly across regions — the paper's
     "distributed clan nodes evenly across GCP regions". *)
  Array.init nc (fun j -> j)

let partition_random rng ~n ~q =
  if q <= 0 || q > n then invalid_arg "Analysis.partition_random";
  let ids = Array.init n (fun i -> i) in
  Rng.shuffle rng ids;
  let clans = Array.init q (fun _ -> ref []) in
  Array.iteri (fun pos id -> clans.(pos mod q) := id :: !(clans.(pos mod q))) ids;
  Array.map
    (fun members ->
      let a = Array.of_list !members in
      Array.sort Stdlib.compare a;
      a)
    clans

let partition_balanced ~n ~q =
  if q <= 0 || q > n then invalid_arg "Analysis.partition_balanced";
  Array.init q (fun c ->
      let size = ((n - c - 1) / q) + 1 in
      Array.init size (fun j -> c + (j * q)))
