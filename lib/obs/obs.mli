(** Observability handle: a {!Trace.t} sink plus a {!Metrics.registry},
    threaded together through the stack.

    Every instrumented component ([Net], [Rbc], [Sailfish], [Faults],
    [Runner]) takes an optional [?obs] argument defaulting to {!disabled},
    so uninstrumented call sites are untouched and pay one branch per
    potential event. One {!t} is shared by every node of a simulated
    deployment: trace events carry the node id, and per-node metrics are
    distinguished by a ["node"] label. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.registry;
}

val disabled : t
(** The default: a {!Trace.null} sink and a registry nobody reads.
    {!tracing} is [false]. *)

val create : ?trace_limit:int -> unit -> t
(** Fresh recording trace sink (see {!Trace.create}) and fresh registry. *)

val metrics_only : unit -> t
(** Fresh registry with the {!Trace.null} sink: metric collection without
    the per-event trace buffer — the cheap always-on configuration used by
    the benchmark harness. *)

val of_trace : Trace.t -> t
(** Fresh registry around a caller-supplied sink — e.g. {!Trace.stream}
    for runs whose trace should go straight to disk instead of an
    in-memory buffer ([Runner.with_streamed_trace]). *)

val tracing : t -> bool
(** Whether the trace sink records; shorthand for
    [Trace.enabled t.trace]. Metric updates are unconditional (they cost
    an integer add); only trace-event {e construction} is guarded. *)
