(** Trace analysis: commit critical-path attribution, round timelines,
    queueing statistics and a liveness stall detector.

    {!analyze} consumes a recorded {!Trace.record} stream — in memory from
    a traced run ({!Trace.records}), or re-parsed from a JSONL file via
    {!load_jsonl} — and produces a {!report}. The analysis is {e pure and
    deterministic}: no clocks, no randomness, no dependence on hash-table
    iteration order, so the same trace always renders the byte-identical
    report ([ci.sh] asserts this by [cmp]-ing two same-seed analyzer
    outputs).

    {2 Critical-path attribution}

    Every [Vertex_commit] event becomes one {!path}: the end-to-end
    latency from the sender's [Propose] anchor (the instant the proposal —
    and, in the SMR harness, its freshly minted transactions — left the
    proposer) to this replica's commit, decomposed into five named
    segments by walking the instance's RBC milestones on the committing
    replica:

    - [Dissemination] — PROPOSE → VAL arrival: clan payload dissemination
      (clan members) or digest propagation (non-clan observers);
    - [Echo_wait] — VAL → this replica's ECHO (block/value availability);
    - [Quorum_wait] — ECHO → certificate (2f+1 echo quorum, including the
      clan sub-quorum in the tribe protocols);
    - [Dag_wait] — certificate → DAG insertion (parent availability);
    - [Order_wait] — DAG insertion → commit (leader / ordering wait).

    Missing milestones (a pulled vertex has no VAL phase here) and
    out-of-order ones (a certificate can outrun the value) are clamped
    monotonically, so the five segments always sum {e exactly} to the
    end-to-end latency — asserted per commit by [test/test_analyze.ml].
    Segment definitions and worked examples: [docs/ANALYSIS.md].

    {2 Stall detection}

    Progress timelines (distinct-vertex first commits; round starts) are
    scanned for gaps exceeding [stall_factor] × the median gap; each
    flagged window is attributed to a blocking cause by correlating
    fault-injection and recovery events inside it: a muted replica that
    leads a blocked round ([muted_leader(i)]), partition traffic
    ([partition]), an unfinished state sync ([state_sync]), pull-retry
    storms ([pull_storm]), else [unknown]. Leader inference uses observed
    [(leader_round, source)] commit pairs, falling back to the
    round-robin [r mod n] schedule of [Config.leader_of_round]. *)

(** {1 Report types} *)

(** One per-commit latency segment, in critical-path order. *)
type segment = Dissemination | Echo_wait | Quorum_wait | Dag_wait | Order_wait

val segment_count : int

val all_segments : segment array
(** In path order: dissemination first, ordering wait last. *)

val segment_name : segment -> string
(** Lower-case report/JSON name, e.g. ["quorum_wait"]. *)

(** Nearest-rank summary of an integer-microsecond sample set. All-zero
    (with [count = 0]) when no samples exist. *)
type dist = {
  count : int;
  p50_us : int;
  p99_us : int;
  mean_us : float;
  max_us : int;
}

(** One committed vertex as seen by one committing replica. *)
type path = {
  p_node : int;  (** the committing replica *)
  p_round : int;
  p_source : int;
  p_origin : int;
      (** µs: the sender's PROPOSE anchor (first sighting of the instance
          when the trace predates the [Propose] phase) *)
  p_commit : int;  (** µs *)
  p_segments : int array;
      (** [segment_count] durations in {!all_segments} order, summing
          exactly to [p_commit - p_origin] *)
}

type round_info = {
  r_round : int;
  r_start : int;  (** µs: first PROPOSE (fallback: first VAL) of the round *)
  r_first_commit : int option;
  r_pull_retries : int;
}

(** Per-node uplink-queue totals: busy/queue integrals over the trace. *)
type uplink_info = {
  u_node : int;
  u_busy_us : int;
  u_queue_us : int;
  u_messages : int;
  u_bytes : int;
}

type stall = {
  st_kind : [ `Commit | `Round ];
      (** which progress timeline went silent *)
  st_from : int;  (** µs: last progress before the gap *)
  st_until : int;  (** µs: next progress (or end of trace) *)
  st_gap_us : int;
  st_cause : string;
      (** ["muted_leader(i)"], ["partition"], ["state_sync"],
          ["pull_storm"] or ["unknown"] *)
}

type report = {
  n : int;  (** replica count (1 + highest node id seen) *)
  events : int;
  first_ts : int;
  last_ts : int;
  paths : path list;  (** in commit-emission order *)
  distinct_vertices : int;
  segments : (segment * dist) list;  (** in {!all_segments} order *)
  e2e : dist;  (** end-to-end latency over all {!paths} *)
  rounds : round_info list;  (** ascending round *)
  round_advance : dist;  (** deltas between consecutive round starts *)
  pull_retries : int;
  uplinks : uplink_info list;  (** ascending node *)
  median_commit_gap_us : int;
  median_round_gap_us : int;
  stalls : stall list;  (** ascending window start *)
}

(** {1 Entry points} *)

val load_jsonl : string -> Trace.record list
(** Parse a {!Trace.write_jsonl} / {!Trace.stream} file back into records.
    Unparseable lines are skipped (the JSONL writer never produces any). *)

val analyze : ?stall_factor:float -> Trace.record list -> report
(** Analyze a record stream (must be in emission order, as every sink
    produces it). [stall_factor] (default [5.0]) is the multiple of the
    median inter-progress gap beyond which a silent window is flagged;
    gap-based detection needs at least 4 observed gaps, but a trace with
    rounds and {e no} commit at all is always flagged as one full-span
    stall. *)

val human : report -> string
(** Deterministic human-readable report (section per concern; latencies in
    milliseconds). *)

val to_json : report -> string
(** Deterministic machine output, schema ["clanbft/analysis/v1"]
    (documented in [docs/ANALYSIS.md]). Per-commit paths are summarized,
    not dumped. *)
