type phase = Propose | Val | Echo | Ready | Cert | Deliver | Pull_retry

let phase_name = function
  | Propose -> "propose"
  | Val -> "val"
  | Echo -> "echo"
  | Ready -> "ready"
  | Cert -> "cert"
  | Deliver -> "deliver"
  | Pull_retry -> "pull_retry"

let phase_of_name = function
  | "propose" -> Some Propose
  | "val" -> Some Val
  | "echo" -> Some Echo
  | "ready" -> Some Ready
  | "cert" -> Some Cert
  | "deliver" -> Some Deliver
  | "pull_retry" -> Some Pull_retry
  | _ -> None

type event =
  | Msg_send of { src : int; dst : int; kind : string; bytes : int }
  | Msg_bcast of { src : int; kind : string; bytes : int; count : int }
  | Msg_recv of { src : int; dst : int; kind : string; bytes : int }
  | Uplink of {
      node : int;
      kind : string;
      bytes : int;
      enqueued : int;
      start : int;
      depart : int;
    }
  | Rbc_phase of { node : int; sender : int; round : int; phase : phase }
  | Vertex_deliver of { node : int; round : int; source : int }
  | Vertex_commit of { node : int; round : int; source : int; leader_round : int }
  | Fault_fire of { rule : int; action : string; kind : string; src : int; dst : int }
  | Recovery of { node : int; stage : string; round : int }

type record = { ts : int; ev : event }

(* ------------------------------------------------------------------ *)
(* JSONL (serialization lives above the sink so streaming sinks can use
   it from [emit]) *)

let escape s =
  (* Message tags and action names are plain ASCII identifiers, but escape
     defensively so arbitrary kinds cannot corrupt the stream. *)
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jsonl_of_record { ts; ev } =
  match ev with
  | Msg_send { src; dst; kind; bytes } ->
      Printf.sprintf
        {|{"ts":%d,"type":"msg_send","src":%d,"dst":%d,"kind":"%s","bytes":%d}|}
        ts src dst (escape kind) bytes
  | Msg_bcast { src; kind; bytes; count } ->
      Printf.sprintf
        {|{"ts":%d,"type":"msg_bcast","src":%d,"kind":"%s","bytes":%d,"count":%d}|}
        ts src (escape kind) bytes count
  | Msg_recv { src; dst; kind; bytes } ->
      Printf.sprintf
        {|{"ts":%d,"type":"msg_recv","src":%d,"dst":%d,"kind":"%s","bytes":%d}|}
        ts src dst (escape kind) bytes
  | Uplink { node; kind; bytes; enqueued; start; depart } ->
      Printf.sprintf
        {|{"ts":%d,"type":"uplink","node":%d,"kind":"%s","bytes":%d,"enqueued":%d,"start":%d,"depart":%d}|}
        ts node (escape kind) bytes enqueued start depart
  | Rbc_phase { node; sender; round; phase } ->
      Printf.sprintf
        {|{"ts":%d,"type":"rbc_phase","node":%d,"sender":%d,"round":%d,"phase":"%s"}|}
        ts node sender round (phase_name phase)
  | Vertex_deliver { node; round; source } ->
      Printf.sprintf
        {|{"ts":%d,"type":"vertex_deliver","node":%d,"round":%d,"source":%d}|}
        ts node round source
  | Vertex_commit { node; round; source; leader_round } ->
      Printf.sprintf
        {|{"ts":%d,"type":"vertex_commit","node":%d,"round":%d,"source":%d,"leader_round":%d}|}
        ts node round source leader_round
  | Fault_fire { rule; action; kind; src; dst } ->
      Printf.sprintf
        {|{"ts":%d,"type":"fault_fire","rule":%d,"action":"%s","kind":"%s","src":%d,"dst":%d}|}
        ts rule (escape action) (escape kind) src dst
  | Recovery { node; stage; round } ->
      Printf.sprintf
        {|{"ts":%d,"type":"recovery","node":%d,"stage":"%s","round":%d}|}
        ts node (escape stage) round

(* --- parsing our own output back ----------------------------------- *)

(* Locate ["key":] and return the index just past the colon. *)
let field_start line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and llen = String.length line in
  let rec scan i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else scan (i + 1)
  in
  scan 0

let int_field line key =
  match field_start line key with
  | None -> None
  | Some i ->
      let llen = String.length line in
      let stop = ref i in
      if !stop < llen && line.[!stop] = '-' then incr stop;
      while !stop < llen && line.[!stop] >= '0' && line.[!stop] <= '9' do
        incr stop
      done;
      if !stop = i then None else int_of_string_opt (String.sub line i (!stop - i))

let str_field line key =
  match field_start line key with
  | None -> None
  | Some i ->
      let llen = String.length line in
      if i >= llen || line.[i] <> '"' then None
      else begin
        let b = Buffer.create 16 in
        let rec go j =
          if j >= llen then None
          else
            match line.[j] with
            | '"' -> Some (Buffer.contents b)
            | '\\' when j + 1 < llen ->
                (match line.[j + 1] with
                | '"' -> Buffer.add_char b '"'
                | '\\' -> Buffer.add_char b '\\'
                | 'n' -> Buffer.add_char b '\n'
                | 'u' ->
                    if j + 5 < llen then
                      Buffer.add_char b
                        (Char.chr
                           (int_of_string ("0x" ^ String.sub line (j + 2) 4)))
                | c -> Buffer.add_char b c);
                go (j + if line.[j + 1] = 'u' then 6 else 2)
            | c ->
                Buffer.add_char b c;
                go (j + 1)
        in
        go (i + 1)
      end

let of_jsonl_line line =
  let ( let* ) o f = Option.bind o f in
  let* ts = int_field line "ts" in
  let* typ = str_field line "type" in
  let* ev =
    match typ with
    | "msg_send" | "msg_recv" ->
        let* src = int_field line "src" in
        let* dst = int_field line "dst" in
        let* kind = str_field line "kind" in
        let* bytes = int_field line "bytes" in
        Some
          (if typ = "msg_send" then Msg_send { src; dst; kind; bytes }
           else Msg_recv { src; dst; kind; bytes })
    | "msg_bcast" ->
        let* src = int_field line "src" in
        let* kind = str_field line "kind" in
        let* bytes = int_field line "bytes" in
        let* count = int_field line "count" in
        Some (Msg_bcast { src; kind; bytes; count })
    | "uplink" ->
        let* node = int_field line "node" in
        let* kind = str_field line "kind" in
        let* bytes = int_field line "bytes" in
        let* enqueued = int_field line "enqueued" in
        let* start = int_field line "start" in
        let* depart = int_field line "depart" in
        Some (Uplink { node; kind; bytes; enqueued; start; depart })
    | "rbc_phase" ->
        let* node = int_field line "node" in
        let* sender = int_field line "sender" in
        let* round = int_field line "round" in
        let* phase = Option.bind (str_field line "phase") phase_of_name in
        Some (Rbc_phase { node; sender; round; phase })
    | "vertex_deliver" ->
        let* node = int_field line "node" in
        let* round = int_field line "round" in
        let* source = int_field line "source" in
        Some (Vertex_deliver { node; round; source })
    | "vertex_commit" ->
        let* node = int_field line "node" in
        let* round = int_field line "round" in
        let* source = int_field line "source" in
        let* leader_round = int_field line "leader_round" in
        Some (Vertex_commit { node; round; source; leader_round })
    | "fault_fire" ->
        let* rule = int_field line "rule" in
        let* action = str_field line "action" in
        let* kind = str_field line "kind" in
        let* src = int_field line "src" in
        let* dst = int_field line "dst" in
        Some (Fault_fire { rule; action; kind; src; dst })
    | "recovery" ->
        let* node = int_field line "node" in
        let* stage = str_field line "stage" in
        let* round = int_field line "round" in
        Some (Recovery { node; stage; round })
    | _ -> None
  in
  Some { ts; ev }

(* ------------------------------------------------------------------ *)
(* Sinks *)

type t =
  | Null
  | Sink of {
      mutable records : record array;
      mutable len : int;
      limit : int; (* max_int when unbounded *)
      mutable dropped : int;
    }
  | Stream of { oc : out_channel; mutable written : int }

let null = Null

let dummy = { ts = 0; ev = Vertex_deliver { node = 0; round = 0; source = 0 } }

let create ?(limit = max_int) () =
  if limit < 0 then invalid_arg "Trace.create: negative limit";
  Sink { records = Array.make 1024 dummy; len = 0; limit; dropped = 0 }

let stream oc = Stream { oc; written = 0 }

let enabled = function Null -> false | Sink _ | Stream _ -> true

let emit t ~ts ev =
  match t with
  | Null -> ()
  | Sink s ->
      if s.len >= s.limit then s.dropped <- s.dropped + 1
      else begin
        if s.len = Array.length s.records then begin
          let bigger = Array.make (2 * s.len) dummy in
          Array.blit s.records 0 bigger 0 s.len;
          s.records <- bigger
        end;
        s.records.(s.len) <- { ts; ev };
        s.len <- s.len + 1
      end
  | Stream s ->
      output_string s.oc (jsonl_of_record { ts; ev });
      output_char s.oc '\n';
      s.written <- s.written + 1

let length = function Null -> 0 | Sink s -> s.len | Stream s -> s.written
let dropped = function Null | Stream _ -> 0 | Sink s -> s.dropped

(* Heap census: the buffer array plus ~10 words per boxed record (cell +
   event payload). Streaming sinks retain nothing. *)
let approx_live_words = function
  | Null | Stream _ -> 0
  | Sink s -> 4 + Array.length s.records + (10 * s.len)

let iter t f =
  match t with
  | Null | Stream _ -> ()
  | Sink s ->
      for i = 0 to s.len - 1 do
        f s.records.(i)
      done

let records t =
  let acc = ref [] in
  iter t (fun r -> acc := r :: !acc);
  List.rev !acc

let require_buffered t fn =
  match t with
  | Stream _ ->
      invalid_arg
        (Printf.sprintf
           "Trace.%s: streaming sinks write at emission time and retain \
            nothing to export"
           fn)
  | Null | Sink _ -> ()

let write_jsonl t path =
  require_buffered t "write_jsonl";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      iter t (fun r ->
          output_string oc (jsonl_of_record r);
          output_char oc '\n'))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event *)

let chrome_instant b ~name ~cat ~ts ~pid ~tid ~args =
  Buffer.add_string b
    (Printf.sprintf
       {|{"name":"%s","cat":"%s","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{%s}},|}
       (escape name) cat ts pid tid args)

(* The natural RBC span chain for one (node, sender, round) instance:
   PROPOSE → VAL → ECHO → READY → CERT → Deliver. Pull retries are
   repeatable side traffic with no successor, so they stay instants. *)
let chain_phase = function
  | Propose | Val | Echo | Ready | Cert | Deliver -> true
  | Pull_retry -> false

(* Map each chain-phase record (by emission index) to the time until the
   instance's next chain phase — the duration of its "X" span. The last
   phase of an instance has no successor and renders as an instant. *)
let rbc_span_durations t =
  let last_of_inst = Hashtbl.create 256 in
  let durations = Hashtbl.create 256 in
  let idx = ref (-1) in
  iter t (fun { ts; ev } ->
      incr idx;
      match ev with
      | Rbc_phase { node; sender; round; phase } when chain_phase phase ->
          let key = (node, sender, round) in
          (match Hashtbl.find_opt last_of_inst key with
          | Some (prev_idx, prev_ts) ->
              Hashtbl.replace durations prev_idx (max 0 (ts - prev_ts))
          | None -> ());
          Hashtbl.replace last_of_inst key (!idx, ts)
      | _ -> ());
  durations

let write_chrome t path =
  require_buffered t "write_chrome";
  let b = Buffer.create 65536 in
  Buffer.add_string b {|{"traceEvents":[|};
  let pids = Hashtbl.create 64 in
  let note_pid p =
    if not (Hashtbl.mem pids p) then begin
      Hashtbl.replace pids p ();
      Buffer.add_string b
        (Printf.sprintf
           {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"node %d"}},|}
           p p)
    end
  in
  let span_durations = rbc_span_durations t in
  let idx = ref (-1) in
  iter t (fun { ts; ev } ->
      incr idx;
      match ev with
      | Msg_send { src; dst; kind; bytes } ->
          note_pid src;
          chrome_instant b ~name:("send " ^ kind) ~cat:"net" ~ts ~pid:src ~tid:0
            ~args:(Printf.sprintf {|"dst":%d,"bytes":%d|} dst bytes)
      | Msg_bcast { src; kind; bytes; count } ->
          note_pid src;
          chrome_instant b ~name:("bcast " ^ kind) ~cat:"net" ~ts ~pid:src
            ~tid:0
            ~args:(Printf.sprintf {|"count":%d,"bytes":%d|} count bytes)
      | Msg_recv { src; dst; kind; bytes } ->
          note_pid dst;
          chrome_instant b ~name:("recv " ^ kind) ~cat:"net" ~ts ~pid:dst ~tid:0
            ~args:(Printf.sprintf {|"src":%d,"bytes":%d|} src bytes)
      | Uplink { node; kind; bytes; enqueued; start; depart } ->
          note_pid node;
          Buffer.add_string b
            (Printf.sprintf
               {|{"name":"%s","cat":"uplink","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":1,"args":{"bytes":%d,"queued_us":%d}},|}
               (escape kind) start
               (max 0 (depart - start))
               node bytes
               (max 0 (start - enqueued)))
      | Rbc_phase { node; sender; round; phase } -> (
          note_pid node;
          match Hashtbl.find_opt span_durations !idx with
          | Some dur ->
              (* Phase span: lasts until the instance's next phase, so
                 Perfetto shows VAL→ECHO→CERT→deliver latency directly. *)
              Buffer.add_string b
                (Printf.sprintf
                   {|{"name":"rbc %s r%d/s%d","cat":"rbc","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":2,"args":{"sender":%d,"round":%d}},|}
                   (phase_name phase) round sender ts dur node sender round)
          | None ->
              chrome_instant b
                ~name:
                  (Printf.sprintf "rbc %s r%d/s%d" (phase_name phase) round
                     sender)
                ~cat:"rbc" ~ts ~pid:node ~tid:2
                ~args:(Printf.sprintf {|"sender":%d,"round":%d|} sender round))
      | Vertex_deliver { node; round; source } ->
          note_pid node;
          chrome_instant b
            ~name:(Printf.sprintf "deliver r%d/s%d" round source)
            ~cat:"dag" ~ts ~pid:node ~tid:3
            ~args:(Printf.sprintf {|"round":%d,"source":%d|} round source)
      | Vertex_commit { node; round; source; leader_round } ->
          note_pid node;
          chrome_instant b
            ~name:(Printf.sprintf "commit r%d/s%d" round source)
            ~cat:"dag" ~ts ~pid:node ~tid:3
            ~args:
              (Printf.sprintf {|"round":%d,"source":%d,"leader_round":%d|} round
                 source leader_round)
      | Fault_fire { rule; action; kind; src; dst } ->
          note_pid src;
          chrome_instant b
            ~name:(Printf.sprintf "fault %s %s" action kind)
            ~cat:"fault" ~ts ~pid:src ~tid:4
            ~args:(Printf.sprintf {|"rule":%d,"dst":%d|} rule dst)
      | Recovery { node; stage; round } ->
          note_pid node;
          chrome_instant b
            ~name:(Printf.sprintf "recovery %s r%d" stage round)
            ~cat:"recovery" ~ts ~pid:node ~tid:5
            ~args:(Printf.sprintf {|"round":%d|} round));
  (* Drop the trailing comma when any event was written. *)
  let s = Buffer.contents b in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = ',' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc s;
      output_string oc {|],"displayTimeUnit":"ms"}|})
