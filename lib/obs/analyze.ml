(* Pure, deterministic trace analysis: commit critical-path attribution,
   per-round timelines, queueing stats and a liveness stall detector.

   Input is a list of Trace.records (in emission = timestamp order, as the
   sinks produce them); nothing here reads clocks, randomness or global
   state, so analyzing the same trace twice yields byte-identical reports. *)

(* ------------------------------------------------------------------ *)
(* Report types *)

type segment = Dissemination | Echo_wait | Quorum_wait | Dag_wait | Order_wait

let segment_count = 5
let all_segments = [| Dissemination; Echo_wait; Quorum_wait; Dag_wait; Order_wait |]

let segment_name = function
  | Dissemination -> "dissemination"
  | Echo_wait -> "echo_wait"
  | Quorum_wait -> "quorum_wait"
  | Dag_wait -> "dag_wait"
  | Order_wait -> "order_wait"

type dist = {
  count : int;
  p50_us : int;
  p99_us : int;
  mean_us : float;
  max_us : int;
}

let empty_dist = { count = 0; p50_us = 0; p99_us = 0; mean_us = 0.0; max_us = 0 }

(* Nearest-rank percentile over unsorted integer samples. *)
let dist_of samples =
  match samples with
  | [] -> empty_dist
  | _ ->
      let a = Array.of_list samples in
      Array.sort compare a;
      let n = Array.length a in
      let rank p =
        let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
        a.(max 0 (min (n - 1) i))
      in
      let sum = Array.fold_left ( + ) 0 a in
      {
        count = n;
        p50_us = rank 50.0;
        p99_us = rank 99.0;
        mean_us = float_of_int sum /. float_of_int n;
        max_us = a.(n - 1);
      }

type path = {
  p_node : int;  (** the committing replica *)
  p_round : int;
  p_source : int;
  p_origin : int;  (** µs: the sender's PROPOSE (fallback: first sighting) *)
  p_commit : int;  (** µs *)
  p_segments : int array;  (** [segment_count] entries, summing exactly to
                               [p_commit - p_origin] *)
}

type round_info = {
  r_round : int;
  r_start : int;  (** µs: first PROPOSE (fallback: first VAL) for the round *)
  r_first_commit : int option;
  r_pull_retries : int;
}

type uplink_info = {
  u_node : int;
  u_busy_us : int;
  u_queue_us : int;
  u_messages : int;
  u_bytes : int;
}

type stall = {
  st_kind : [ `Commit | `Round ];
  st_from : int;
  st_until : int;
  st_gap_us : int;
  st_cause : string;
}

type report = {
  n : int;
  events : int;
  first_ts : int;
  last_ts : int;
  paths : path list;
  distinct_vertices : int;
  segments : (segment * dist) list;
  e2e : dist;
  rounds : round_info list;
  round_advance : dist;
  pull_retries : int;
  uplinks : uplink_info list;
  median_commit_gap_us : int;
  median_round_gap_us : int;
  stalls : stall list;
}

(* ------------------------------------------------------------------ *)
(* JSONL loading *)

let load_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let acc = ref [] in
      (try
         while true do
           match Trace.of_jsonl_line (input_line ic) with
           | Some r -> acc := r :: !acc
           | None -> ()
         done
       with End_of_file -> ());
      List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Analysis *)

let first_to tbl key ts =
  if not (Hashtbl.mem tbl key) then Hashtbl.replace tbl key ts

(* Stall windows over a sorted timeline of progress timestamps: flag every
   inter-event gap exceeding [factor] times the median gap, plus the
   trailing silence up to the end of the trace. Below [min_gaps] samples
   the median is meaningless and gap-based detection is skipped (the
   no-progress-at-all case is handled by the caller). *)
let stall_windows ~kind ~timeline ~trace_end ~factor ~min_gaps =
  let rec gaps acc = function
    | a :: (b :: _ as rest) -> gaps ((a, b, b - a) :: acc) rest
    | _ -> List.rev acc
  in
  let gs = gaps [] timeline in
  let median = (dist_of (List.map (fun (_, _, g) -> g) gs)).p50_us in
  let windows =
    if List.length gs < min_gaps || median <= 0 then []
    else begin
      let threshold = int_of_float (factor *. float_of_int median) in
      let tail =
        match List.rev timeline with
        | last :: _ when trace_end - last > threshold ->
            [ (last, trace_end, trace_end - last) ]
        | _ -> []
      in
      List.filter (fun (_, _, g) -> g > threshold) gs @ tail
    end
  in
  (median, List.map (fun (a, b, g) -> (kind, a, b, g)) windows)

let analyze ?(stall_factor = 5.0) records =
  let n = ref 0 in
  let events = ref 0 in
  let first_ts = ref max_int and last_ts = ref min_int in
  let see_node i = if i + 1 > !n then n := i + 1 in
  let see_ts ts =
    if ts < !first_ts then first_ts := ts;
    if ts > !last_ts then last_ts := ts
  in
  (* Milestone tables (all keyed first-wins; records arrive in ts order). *)
  let propose_ts = Hashtbl.create 1024 in (* (sender, round) -> ts *)
  let first_seen = Hashtbl.create 1024 in (* (sender, round) -> ts *)
  let val_ts = Hashtbl.create 4096 in (* (node, sender, round) -> ts *)
  let echo_ts = Hashtbl.create 4096 in
  let cert_ts = Hashtbl.create 4096 in
  let deliver_ts = Hashtbl.create 4096 in
  let commits_rev = ref [] in (* (ts, node, round, source), emission order *)
  let vertex_commit_ts = Hashtbl.create 1024 in (* (round, source) -> ts *)
  let commit_timeline_rev = ref [] in
  let round_start = Hashtbl.create 256 in (* round -> ts *)
  let round_fallback = Hashtbl.create 256 in (* round -> first VAL ts *)
  let round_first_commit = Hashtbl.create 256 in
  let round_pulls = Hashtbl.create 256 in
  let pull_ts_rev = ref [] in
  let pulls = ref 0 in
  let leader_obs = Hashtbl.create 256 in (* leader_round -> source *)
  let uplinks = Hashtbl.create 64 in (* node -> info *)
  let mutes_rev = ref [] in (* (ts, src) *)
  let partitions_rev = ref [] in (* ts *)
  (* Strategic-adversary fires (rule = -2), keyed by the strategy's action
     string; src is the occupied (attacking) node. *)
  let griefs_rev = ref [] in (* (ts, src) *)
  let storms_rev = ref [] in
  let censors_rev = ref [] in
  let equivs_rev = ref [] in
  let reorders_rev = ref [] in
  let sync_start = Hashtbl.create 16 in (* node -> ts list, rev *)
  let caught_up = Hashtbl.create 16 in
  List.iter
    (fun { Trace.ts; ev } ->
      incr events;
      see_ts ts;
      match ev with
      | Trace.Msg_send { src; dst; _ } | Trace.Msg_recv { src; dst; _ } ->
          see_node src;
          see_node dst
      | Trace.Msg_bcast { src; _ } ->
          (* Batched fan-out: recipients are discovered via their Msg_recv
             records; wire accounting comes from the batched Uplink span. *)
          see_node src
      | Trace.Uplink { node; bytes; enqueued; start; depart; _ } ->
          see_node node;
          let u =
            match Hashtbl.find_opt uplinks node with
            | Some u -> u
            | None ->
                { u_node = node; u_busy_us = 0; u_queue_us = 0; u_messages = 0;
                  u_bytes = 0 }
          in
          Hashtbl.replace uplinks node
            {
              u with
              u_busy_us = u.u_busy_us + max 0 (depart - start);
              u_queue_us = u.u_queue_us + max 0 (start - enqueued);
              u_messages = u.u_messages + 1;
              u_bytes = u.u_bytes + bytes;
            }
      | Trace.Rbc_phase { node; sender; round; phase } -> (
          see_node node;
          see_node sender;
          first_to first_seen (sender, round) ts;
          match phase with
          | Trace.Propose -> first_to propose_ts (sender, round) ts;
              first_to round_start round ts
          | Trace.Val ->
              first_to val_ts (node, sender, round) ts;
              first_to round_fallback round ts
          | Trace.Echo -> first_to echo_ts (node, sender, round) ts
          | Trace.Cert -> first_to cert_ts (node, sender, round) ts
          | Trace.Ready | Trace.Deliver -> ()
          | Trace.Pull_retry ->
              incr pulls;
              pull_ts_rev := ts :: !pull_ts_rev;
              Hashtbl.replace round_pulls round
                (1 + Option.value ~default:0 (Hashtbl.find_opt round_pulls round)))
      | Trace.Vertex_deliver { node; round; source } ->
          see_node node;
          see_node source;
          first_to first_seen (source, round) ts;
          first_to deliver_ts (node, round, source) ts
      | Trace.Vertex_commit { node; round; source; leader_round } ->
          see_node node;
          see_node source;
          commits_rev := (ts, node, round, source) :: !commits_rev;
          if round = leader_round then
            first_to leader_obs leader_round source;
          if not (Hashtbl.mem vertex_commit_ts (round, source)) then begin
            Hashtbl.replace vertex_commit_ts (round, source) ts;
            commit_timeline_rev := ts :: !commit_timeline_rev;
            first_to round_first_commit round ts
          end
      | Trace.Fault_fire { action; src; _ } -> (
          see_node src;
          match action with
          | "mute" -> mutes_rev := (ts, src) :: !mutes_rev
          | "partition_delay" | "partition_drop" ->
              partitions_rev := ts :: !partitions_rev
          | "grief" -> griefs_rev := (ts, src) :: !griefs_rev
          | "sync_storm" -> storms_rev := (ts, src) :: !storms_rev
          | "censor" -> censors_rev := (ts, src) :: !censors_rev
          | "equivocate" -> equivs_rev := (ts, src) :: !equivs_rev
          | "reorder" -> reorders_rev := (ts, src) :: !reorders_rev
          | _ -> ())
      | Trace.Recovery { node; stage; _ } -> (
          see_node node;
          let push tbl =
            Hashtbl.replace tbl node
              (ts :: Option.value ~default:[] (Hashtbl.find_opt tbl node))
          in
          match stage with
          | "sync_start" -> push sync_start
          | "caught_up" -> push caught_up
          | _ -> ()))
    records;
  let n = !n in
  let first_ts = if !events = 0 then 0 else !first_ts in
  let last_ts = if !events = 0 then 0 else !last_ts in
  (* --- per-commit critical paths ---------------------------------- *)
  (* Milestones are clamped monotonically (a later milestone can be missing
     — e.g. a fetched vertex has no VAL on this node — or recorded out of
     order when a certificate outruns the value), so the five segments
     always telescope exactly to [commit - origin]. *)
  let paths =
    List.rev_map
      (fun (commit, node, round, source) ->
        let origin =
          match Hashtbl.find_opt propose_ts (source, round) with
          | Some ts -> min ts commit
          | None -> (
              match Hashtbl.find_opt first_seen (source, round) with
              | Some ts -> min ts commit
              | None -> commit)
        in
        let segments = Array.make segment_count 0 in
        let cur = ref origin in
        let milestone i m =
          let target =
            match m with
            | Some ts -> min commit (max !cur ts)
            | None -> !cur
          in
          segments.(i) <- target - !cur;
          cur := target
        in
        milestone 0 (Hashtbl.find_opt val_ts (node, source, round));
        milestone 1 (Hashtbl.find_opt echo_ts (node, source, round));
        milestone 2 (Hashtbl.find_opt cert_ts (node, source, round));
        milestone 3 (Hashtbl.find_opt deliver_ts (node, round, source));
        segments.(4) <- commit - !cur;
        {
          p_node = node;
          p_round = round;
          p_source = source;
          p_origin = origin;
          p_commit = commit;
          p_segments = segments;
        })
      !commits_rev
  in
  let segments =
    Array.to_list
      (Array.mapi
         (fun i seg ->
           (seg, dist_of (List.map (fun p -> p.p_segments.(i)) paths)))
         all_segments)
  in
  let e2e = dist_of (List.map (fun p -> p.p_commit - p.p_origin) paths) in
  (* --- per-round timeline ------------------------------------------ *)
  let rounds =
    Hashtbl.fold
      (fun r ts acc ->
        if Hashtbl.mem round_start r then acc else (r, ts) :: acc)
      round_fallback []
    |> List.rev_append (Hashtbl.fold (fun r ts acc -> (r, ts) :: acc) round_start [])
    |> List.sort compare
    |> List.map (fun (r, start) ->
           {
             r_round = r;
             r_start = start;
             r_first_commit = Hashtbl.find_opt round_first_commit r;
             r_pull_retries =
               Option.value ~default:0 (Hashtbl.find_opt round_pulls r);
           })
  in
  let round_advance =
    let rec deltas acc = function
      | a :: (b :: _ as rest) -> deltas ((b.r_start - a.r_start) :: acc) rest
      | _ -> List.rev acc
    in
    dist_of (deltas [] rounds)
  in
  let uplinks =
    Hashtbl.fold (fun _ u acc -> u :: acc) uplinks []
    |> List.sort (fun a b -> compare a.u_node b.u_node)
  in
  (* --- stall detection --------------------------------------------- *)
  let commit_timeline = List.rev !commit_timeline_rev in
  let round_timeline = List.map (fun r -> r.r_start) rounds in
  let median_commit_gap, commit_stalls =
    stall_windows ~kind:`Commit ~timeline:commit_timeline ~trace_end:last_ts
      ~factor:stall_factor ~min_gaps:4
  in
  let median_round_gap, round_stalls =
    stall_windows ~kind:`Round ~timeline:round_timeline ~trace_end:last_ts
      ~factor:stall_factor ~min_gaps:4
  in
  let no_commit_stall =
    (* Liveness failure outright: proposals happened, nothing ever
       committed. *)
    if commit_timeline = [] && rounds <> [] && last_ts > first_ts then
      [ (`Commit, first_ts, last_ts, last_ts - first_ts) ]
    else []
  in
  let mutes = List.rev !mutes_rev in
  let partitions = List.rev !partitions_rev in
  let griefs = List.rev !griefs_rev in
  let storms = List.rev !storms_rev in
  let censors = List.rev !censors_rev in
  let equivs = List.rev !equivs_rev in
  let reorders = List.rev !reorders_rev in
  let pull_times = List.rev !pull_ts_rev in
  (* Observed (leader_round, source) pairs are ground truth; for an
     unobserved round, extrapolate from the nearest observed pair rather
     than guessing [r mod n] directly. The raw modular fallback silently
     assumes the trace exposed every node id (n is inferred), which
     restart/recovery-heavy traces with muted or occupied replicas can
     violate — and then the fallback blames the wrong replica for a stall.
     Anchoring at a real pair keeps the rotation aligned with what the run
     actually committed. *)
  let leader_pairs =
    Hashtbl.fold (fun r l acc -> (r, l) :: acc) leader_obs []
  in
  let leader_of r =
    match Hashtbl.find_opt leader_obs r with
    | Some l -> l
    | None -> (
        let nearest =
          List.fold_left
            (fun acc (r0, l0) ->
              match acc with
              | Some (rb, _) when abs (r - rb) <= abs (r - r0) -> acc
              | _ -> Some (r0, l0))
            None leader_pairs
        in
        match nearest with
        | Some (r0, l0) when n > 0 -> (((l0 + (r - r0)) mod n) + n) mod n
        | Some (_, l0) -> l0
        | None -> if n > 0 then r mod n else 0)
  in
  let sync_in_flight a b =
    (* Does any replica's [sync_start .. caught_up] window overlap [a,b]? *)
    Hashtbl.fold
      (fun node starts acc ->
        acc
        || List.exists
             (fun s ->
               let finish =
                 Option.value ~default:[] (Hashtbl.find_opt caught_up node)
                 |> List.filter (fun e -> e >= s)
                 |> List.fold_left min max_int
               in
               s <= b && finish >= a)
             starts)
      sync_start false
  in
  let in_window l a b = List.filter (fun t -> t >= a && t <= b) l in
  let cause a b =
    (* Rounds plausibly blocked during the window: the last round started
       before it, everything started inside it, and the next expected one. *)
    let stuck =
      List.fold_left
        (fun acc r -> if r.r_start <= a then Some r.r_round else acc)
        None rounds
    in
    let started_in =
      List.filter_map
        (fun r -> if r.r_start >= a && r.r_start <= b then Some r.r_round else None)
        rounds
    in
    let candidates =
      match (stuck, started_in) with
      | None, [] -> []
      | Some s, [] -> [ s; s + 1 ]
      | None, l -> l @ [ List.fold_left max 0 l + 1 ]
      | Some s, l -> (s :: l) @ [ List.fold_left max s l + 1 ]
    in
    let fired l =
      List.filter_map
        (fun (ts, src) -> if ts >= a && ts <= b then Some src else None)
        l
      |> List.sort_uniq compare
    in
    let muted_srcs = fired mutes in
    (* Prefer observed leader pairs over the modular guess: a round whose
       anchor committed somewhere in the trace plainly had a functioning
       leader, so only anchor-less candidate rounds can be leader-blocked.
       (Without this filter, a crash+mute combination misattributes: rounds
       that merely *started* during a recovery-induced stall match the
       muted node through the r-mod-n fallback and steal the blame from
       state sync.) *)
    let blocked =
      List.filter (fun r -> not (Hashtbl.mem leader_obs r)) candidates
    in
    let leader_match rounds srcs =
      List.find_opt
        (fun src -> List.exists (fun r -> leader_of r = src) rounds)
        srcs
    in
    match leader_match blocked muted_srcs with
    | Some l -> Printf.sprintf "muted_leader(%d)" l
    | None -> (
        (* A griefed round's anchor does commit — just almost a timeout
           late — so the grief check matches any candidate round the
           griefer leads, observed or not. *)
        match leader_match candidates (fired griefs) with
        | Some g -> Printf.sprintf "grief_leader(%d)" g
        | None ->
            if in_window partitions a b <> [] then "partition"
            else (
              (* Before state_sync: a sync storm's victim is by definition
                 mid-recovery, and the amplification — not the recovery —
                 owns the stall. *)
              match fired storms with
              | _ :: _ -> "sync_storm"
              | [] -> (
                  if sync_in_flight a b then "state_sync"
                  else
                    match fired censors with
                    | c :: _ -> Printf.sprintf "censorship(%d)" c
                    | [] -> (
                        match fired equivs with
                        | e :: _ -> Printf.sprintf "equivocation(%d)" e
                        | [] -> (
                            match fired reorders with
                            | r :: _ -> Printf.sprintf "reorder(%d)" r
                            | [] ->
                                if
                                  List.length (in_window pull_times a b) >= 100
                                then "pull_storm"
                                else "unknown")))))
  in
  let stalls =
    no_commit_stall @ commit_stalls @ round_stalls
    |> List.map (fun (kind, a, b, gap) ->
           { st_kind = kind; st_from = a; st_until = b; st_gap_us = gap;
             st_cause = cause a b })
    |> List.sort (fun x y ->
           compare (x.st_from, x.st_until, x.st_kind) (y.st_from, y.st_until, y.st_kind))
  in
  {
    n;
    events = !events;
    first_ts;
    last_ts;
    paths;
    distinct_vertices = Hashtbl.length vertex_commit_ts;
    segments;
    e2e;
    rounds;
    round_advance;
    pull_retries = !pulls;
    uplinks;
    median_commit_gap_us = median_commit_gap;
    median_round_gap_us = median_round_gap;
    stalls;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let ms us = float_of_int us /. 1000.0

let rounds_span rounds =
  match rounds with
  | [] -> None
  | first :: _ ->
      Some
        ( first.r_round,
          List.fold_left (fun acc r -> max acc r.r_round) first.r_round rounds )

let human r =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "== clanbft trace analysis ==\n";
  pf "events             %d\n" r.events;
  pf "nodes              %d\n" r.n;
  pf "span               %.3f s .. %.3f s\n"
    (float_of_int r.first_ts /. 1e6)
    (float_of_int r.last_ts /. 1e6);
  pf "commit paths       %d (%d distinct vertices)\n" (List.length r.paths)
    r.distinct_vertices;
  pf "\n-- commit critical path (creation -> commit, per committing replica) --\n";
  pf "%-16s %10s %10s %10s %10s\n" "segment" "p50 ms" "p99 ms" "mean ms" "max ms";
  List.iter
    (fun (seg, d) ->
      pf "%-16s %10.1f %10.1f %10.1f %10.1f\n" (segment_name seg) (ms d.p50_us)
        (ms d.p99_us) (d.mean_us /. 1000.0) (ms d.max_us))
    r.segments;
  pf "%-16s %10.1f %10.1f %10.1f %10.1f\n" "end_to_end" (ms r.e2e.p50_us)
    (ms r.e2e.p99_us)
    (r.e2e.mean_us /. 1000.0)
    (ms r.e2e.max_us);
  pf "\n-- rounds --\n";
  (match rounds_span r.rounds with
  | Some (lo, hi) -> pf "rounds started     %d (%d .. %d)\n" (List.length r.rounds) lo hi
  | None -> pf "rounds started     0\n");
  pf "round advance      p50 %.1f ms  p99 %.1f ms  max %.1f ms\n"
    (ms r.round_advance.p50_us) (ms r.round_advance.p99_us)
    (ms r.round_advance.max_us);
  pf "pull retries       %d\n" r.pull_retries;
  let span = max 1 (r.last_ts - r.first_ts) in
  if r.uplinks <> [] then begin
    pf "\n-- uplink occupancy --\n";
    pf "%-6s %12s %7s %12s %10s %14s\n" "node" "busy ms" "busy%" "queued ms" "msgs"
      "bytes";
    List.iter
      (fun u ->
        pf "%-6d %12.1f %6.1f%% %12.1f %10d %14d\n" u.u_node (ms u.u_busy_us)
          (100.0 *. float_of_int u.u_busy_us /. float_of_int span)
          (ms u.u_queue_us) u.u_messages u.u_bytes)
      r.uplinks
  end;
  pf "\n-- stalls (median gaps: commit %.1f ms, round %.1f ms) --\n"
    (ms r.median_commit_gap_us) (ms r.median_round_gap_us);
  if r.stalls = [] then pf "none\n"
  else
    List.iter
      (fun s ->
        pf "[%8.3f s .. %8.3f s] %-6s silent for %8.1f ms  cause: %s\n"
          (float_of_int s.st_from /. 1e6)
          (float_of_int s.st_until /. 1e6)
          (match s.st_kind with `Commit -> "commit" | `Round -> "round")
          (ms s.st_gap_us) s.st_cause)
      r.stalls;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dist_json d =
  Printf.sprintf
    {|{"count":%d,"p50_us":%d,"p99_us":%d,"mean_us":%.1f,"max_us":%d}|}
    d.count d.p50_us d.p99_us d.mean_us d.max_us

let to_json r =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n";
  pf "  \"schema\": \"clanbft/analysis/v1\",\n";
  pf "  \"n\": %d,\n" r.n;
  pf "  \"events\": %d,\n" r.events;
  pf "  \"first_ts_us\": %d,\n" r.first_ts;
  pf "  \"last_ts_us\": %d,\n" r.last_ts;
  pf "  \"commit_paths\": %d,\n" (List.length r.paths);
  pf "  \"distinct_vertices\": %d,\n" r.distinct_vertices;
  pf "  \"segments\": {\n";
  List.iteri
    (fun i (seg, d) ->
      pf "    \"%s\": %s%s\n" (segment_name seg) (dist_json d)
        (if i = List.length r.segments - 1 then "" else ","))
    r.segments;
  pf "  },\n";
  pf "  \"e2e\": %s,\n" (dist_json r.e2e);
  pf "  \"rounds\": {\"started\": %d, \"advance\": %s, \"pull_retries\": %d},\n"
    (List.length r.rounds) (dist_json r.round_advance) r.pull_retries;
  pf "  \"uplinks\": [%s],\n"
    (String.concat ","
       (List.map
          (fun u ->
            Printf.sprintf
              {|{"node":%d,"busy_us":%d,"queue_us":%d,"messages":%d,"bytes":%d}|}
              u.u_node u.u_busy_us u.u_queue_us u.u_messages u.u_bytes)
          r.uplinks));
  pf "  \"median_commit_gap_us\": %d,\n" r.median_commit_gap_us;
  pf "  \"median_round_gap_us\": %d,\n" r.median_round_gap_us;
  pf "  \"stalls\": [%s]\n"
    (String.concat ","
       (List.map
          (fun s ->
            Printf.sprintf
              {|{"kind":"%s","from_us":%d,"until_us":%d,"gap_us":%d,"cause":"%s"}|}
              (match s.st_kind with `Commit -> "commit" | `Round -> "round")
              s.st_from s.st_until s.st_gap_us (json_escape s.st_cause))
          r.stalls));
  pf "}\n";
  Buffer.contents b
