(** Deterministic hierarchical self-profiler.

    [Prof] attributes the simulator's own CPU time and allocation to named
    sections, nested into a call tree: per-section call counts, exclusive
    ("self") and inclusive wall time on the monotonic clock, and minor/major
    allocated words from the GC counters. It is the tool ROADMAP item 1
    reaches for — "profile a traced n=150 run, then attack what it names" —
    without an external profiler's sampling noise or symbolization step.

    {2 Discipline}

    Section handles are resolved once, at module initialisation, exactly
    like {!Metrics} instruments:

    {[
      let sec_insert = Prof.section "dag.insert"

      let add t v = Prof.span sec_insert (fun () -> really_add t v)
    ]}

    The profiler is {b off by default}: a disabled {!enter}/{!leave}/{!span}
    costs one load-and-branch and allocates nothing, so instrumented hot
    paths keep their committed perf baseline and all pinned commit
    fingerprints stay byte-identical (profiling is pure observation — it
    never draws randomness or schedules events).

    {2 Determinism contract}

    For a deterministic (fixed-seed, single-domain) run, call counts and
    allocated-word figures are {b byte-identical across runs}: OCaml
    allocation is a deterministic function of the program, and the profiler
    calibrates away its own constant per-span probe cost (the boxes
    allocated by [Gc.minor_words]/[Gc.major_words]/the clock read) so the
    reported words are the instrumented code's own. Wall-time fields
    ([*_ns]) are real-clock measurements and are {b non-deterministic}; CI
    comparisons must strip them (see docs/PROFILING.md).

    Known attribution edge: the first visit of a new call path allocates
    its tree node inside the {e parent}'s window, so a parent's self-words
    can exceed the sum of its code's allocations by a few words per distinct
    child path (constant per path, hence still deterministic).

    {2 Concurrency}

    State is global and unsynchronized. Enable the profiler only around
    sequential (single-domain) runs; profiling under [Pool.map] domains is
    unsupported and will corrupt the numbers. *)

type section
(** An interned section handle (cheap int). *)

val section : string -> section
(** [section name] interns [name] and returns its handle; idempotent. The
    name must be non-empty and must not contain [';'], spaces or newlines
    (it becomes a folded-stack frame). At most 512 distinct sections. *)

val section_name : section -> string

val set_enabled : bool -> unit
(** Toggle the global switch. The first [set_enabled true] runs a one-time
    deterministic calibration of the per-span probe overhead (a few
    microseconds); enabling does not reset accumulated data. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all accumulated counts, times, words and the call tree. Section
    handles stay valid. Must not be called between an {!enter} and its
    {!leave}. *)

val enter : section -> unit
(** Open a span. No-op (one branch) when disabled. Spans must nest: every
    [enter s] is closed by a [leave s] in LIFO order. *)

val leave : section -> unit
(** Close the innermost span, which must be for the same section.
    @raise Failure on unbalanced or mismatched leave (when enabled). *)

val span : section -> (unit -> 'a) -> 'a
(** [span s f] runs [f ()] inside a span, closing it on exceptions too.
    When disabled this is a tail call to [f]. *)

type row = {
  name : string;
  calls : int;
  self_ns : int;  (** wall time excluding child spans — non-deterministic *)
  incl_ns : int;  (** wall time including child spans — non-deterministic *)
  self_minor_words : int;  (** minor words allocated, excluding children *)
  incl_minor_words : int;
  self_major_words : int;
      (** major-heap words allocated (including promotions), excluding
          children *)
  incl_major_words : int;
}

val report : unit -> row list
(** Per-section aggregates, sorted by [name] (a deterministic order —
    sorting by self time would make the row order machine-dependent). Rows
    with zero calls are omitted. Inclusive figures count each section once
    per outermost span (recursive re-entries are not double-counted). *)

val folded : unit -> string
(** Folded-stack output, one ["root;a;b <self_us>"] line per call-tree
    path in depth-first order, consumable by [flamegraph.pl] and
    speedscope. Values are self wall microseconds (non-deterministic). *)

val to_json : ?census:(string * int) list -> unit -> string
(** [clanbft/profile/v1] JSON: the report rows (sorted by name), the call
    tree, and the optional per-subsystem live-words census. All [*_ns]
    fields are labelled non-deterministic in docs and must be jq-stripped
    before byte comparisons; everything else is deterministic. *)

val table : ?census:(string * int) list -> unit -> string
(** Human-readable self/total table sorted by self time (descending), plus
    the census when given. *)

val probe_overhead : unit -> int * int
(** [(minor, major)] words the calibration measured for one leaf span's own
    probes — exposed for tests; [(0, 0)] before the first calibration. *)
