module Stats = Clanbft_util.Stats

type counter = int ref
type gauge = float ref
type histogram = Stats.Histogram.t

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Stats.Histogram.t

type instrument = C of counter | G of gauge | H of histogram

(* Key: metric name + labels sorted by key. *)
type key = { name : string; labels : (string * string) list }

type registry = (key, instrument) Hashtbl.t

let create_registry () : registry = Hashtbl.create 64

let normalize ?(labels = []) name =
  { name; labels = List.sort compare labels }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let resolve (reg : registry) key fresh =
  match Hashtbl.find_opt reg key with
  | Some existing -> existing
  | None ->
      let inst = fresh () in
      Hashtbl.replace reg key inst;
      inst

let mismatch key ~want inst =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered as a %s, not a %s" key.name
       (kind_name inst) want)

let counter reg ?labels name =
  let key = normalize ?labels name in
  match resolve reg key (fun () -> C (ref 0)) with
  | C c -> c
  | inst -> mismatch key ~want:"counter" inst

let gauge reg ?labels name =
  let key = normalize ?labels name in
  match resolve reg key (fun () -> G (ref 0.0)) with
  | G g -> g
  | inst -> mismatch key ~want:"gauge" inst

let histogram reg ?labels ~buckets name =
  let key = normalize ?labels name in
  match resolve reg key (fun () -> H (Stats.Histogram.create ~buckets)) with
  | H h -> h
  | inst -> mismatch key ~want:"histogram" inst

let incr (c : counter) = Stdlib.incr c
let add (c : counter) n = c := !c + n
let counter_value (c : counter) = !c
let reset_counter (c : counter) = c := 0
let set (g : gauge) v = g := v
let gauge_value (g : gauge) = !g
let observe (h : histogram) x = Stats.Histogram.observe h x
let hist (h : histogram) = h

let value_of = function
  | C c -> Counter_v !c
  | G g -> Gauge_v !g
  | H h -> Histogram_v h

let find reg ?labels name =
  Option.map value_of (Hashtbl.find_opt reg (normalize ?labels name))

let sorted_bindings (reg : registry) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fold reg ~init ~f =
  List.fold_left
    (fun acc (key, inst) ->
      f acc ~name:key.name ~labels:key.labels (value_of inst))
    init (sorted_bindings reg)

(* ------------------------------------------------------------------ *)
(* JSON export *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_json f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let labels_json labels =
  labels
  |> List.map (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (escape k) (escape v))
  |> String.concat ","

let to_json reg =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"metrics\":[";
  let first = ref true in
  List.iter
    (fun (key, inst) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n  {\"name\":\"%s\",\"labels\":{%s},"
           (escape key.name) (labels_json key.labels));
      (match inst with
      | C c -> Buffer.add_string b (Printf.sprintf "\"type\":\"counter\",\"value\":%d}" !c)
      | G g ->
          Buffer.add_string b
            (Printf.sprintf "\"type\":\"gauge\",\"value\":%s}" (float_json !g))
      | H h ->
          Buffer.add_string b
            (Printf.sprintf
               "\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"mean\":%s,\"buckets\":["
               (Stats.Histogram.count h)
               (float_json (Stats.Histogram.sum h))
               (float_json (Stats.Histogram.mean h)));
          let bucket_array pairs =
            Array.iteri
              (fun i (edge, count) ->
                if i > 0 then Buffer.add_char b ',';
                let le =
                  if Float.is_integer edge && Float.abs edge < 1e15 then
                    Printf.sprintf "%.0f" edge
                  else if edge = Float.infinity then {|"+inf"|}
                  else Printf.sprintf "%g" edge
                in
                Buffer.add_string b
                  (Printf.sprintf {|{"le":%s,"count":%d}|} le count))
              pairs
          in
          bucket_array (Stats.Histogram.buckets h);
          (* Prometheus-style running totals, so external tools (and the
             analyzer) can recompute quantiles without re-summing. *)
          Buffer.add_string b "],\"cumulative\":[";
          bucket_array (Stats.Histogram.cumulative h);
          Buffer.add_string b "]}"))
    (sorted_bindings reg);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_json reg path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json reg))
