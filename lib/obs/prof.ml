(* Global, unsynchronized profiler state: the hot path must be a handful of
   array stores, and the simulator's profiled runs are single-domain by
   contract (see the .mli). All counters are native ints.

   Allocation attribution subtracts a calibrated constant per span: the
   probe reads themselves allocate (boxed floats from [Gc.minor_words]/
   [Gc.major_words], a boxed int64 from the clock), and since that cost is
   a constant number of words per probe it can be measured once and
   removed exactly — keeping the reported words deterministic and equal to
   what the instrumented code itself allocated. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* One [Gc.counters] call reads both heaps; its own allocations (a tuple
   and three float boxes) are part of the calibrated probe constant. *)
let heap_words () =
  let minor, _, major = Gc.counters () in
  (int_of_float minor, int_of_float major)

(* ------------------------------------------------------------------ *)
(* Sections *)

type section = int

let max_sections = 512
let sec_names = Array.make max_sections ""
let sec_count = ref 0
let sec_tbl : (string, int) Hashtbl.t = Hashtbl.create 64

let section name =
  match Hashtbl.find_opt sec_tbl name with
  | Some id -> id
  | None ->
      if name = "" then invalid_arg "Prof.section: empty name";
      String.iter
        (fun c ->
          if c = ';' || c = ' ' || c = '\n' || c = '\t' then
            invalid_arg ("Prof.section: name must not contain ';'/whitespace: " ^ name))
        name;
      if !sec_count >= max_sections then invalid_arg "Prof.section: too many sections";
      let id = !sec_count in
      sec_names.(id) <- name;
      incr sec_count;
      Hashtbl.replace sec_tbl name id;
      id

let section_name s = sec_names.(s)

(* ------------------------------------------------------------------ *)
(* Per-section aggregates *)

let a_calls = Array.make max_sections 0
let a_self_ns = Array.make max_sections 0
let a_incl_ns = Array.make max_sections 0
let a_self_minor = Array.make max_sections 0
let a_incl_minor = Array.make max_sections 0
let a_self_major = Array.make max_sections 0
let a_incl_major = Array.make max_sections 0
let a_active = Array.make max_sections 0

(* ------------------------------------------------------------------ *)
(* Call tree: node 0 is the root; nodes are created on first visit of a
   (parent, section) path and keyed by [parent lsl 16 lor section] (node
   ids stay far below 2^46, sections below 2^9). *)

let node_cap = ref 256
let node_section = ref (Array.make !node_cap (-1))
let node_parent = ref (Array.make !node_cap (-1))
let node_calls = ref (Array.make !node_cap 0)
let node_self_ns = ref (Array.make !node_cap 0)
let node_self_minor = ref (Array.make !node_cap 0)
let node_self_major = ref (Array.make !node_cap 0)
let node_count = ref 1 (* root *)
let node_tbl : (int, int) Hashtbl.t = Hashtbl.create 256

let grow_nodes () =
  let cap = 2 * !node_cap in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit !a 0 b 0 !node_cap;
    a := b
  in
  extend node_section (-1);
  extend node_parent (-1);
  extend node_calls 0;
  extend node_self_ns 0;
  extend node_self_minor 0;
  extend node_self_major 0;
  node_cap := cap

let node_of parent s =
  let key = (parent lsl 16) lor s in
  match Hashtbl.find node_tbl key with
  | nd -> nd
  | exception Not_found ->
      if !node_count >= !node_cap then grow_nodes ();
      let nd = !node_count in
      !node_section.(nd) <- s;
      !node_parent.(nd) <- parent;
      incr node_count;
      Hashtbl.replace node_tbl key nd;
      nd

(* ------------------------------------------------------------------ *)
(* Frame stack (preallocated; grows by doubling, never shrinks) *)

let stack_cap = ref 64
let stk_sec = ref (Array.make !stack_cap 0)
let stk_node = ref (Array.make !stack_cap 0)
let stk_t0 = ref (Array.make !stack_cap 0)
let stk_m0 = ref (Array.make !stack_cap 0)
let stk_j0 = ref (Array.make !stack_cap 0)
let stk_child_ns = ref (Array.make !stack_cap 0)
let stk_child_minor = ref (Array.make !stack_cap 0)
let stk_child_major = ref (Array.make !stack_cap 0)
let stk_desc = ref (Array.make !stack_cap 0)
let depth = ref 0

let grow_stack () =
  let cap = 2 * !stack_cap in
  let extend a =
    let b = Array.make cap 0 in
    Array.blit !a 0 b 0 !stack_cap;
    a := b
  in
  extend stk_sec;
  extend stk_node;
  extend stk_t0;
  extend stk_m0;
  extend stk_j0;
  extend stk_child_ns;
  extend stk_child_minor;
  extend stk_child_major;
  extend stk_desc;
  stack_cap := cap

(* ------------------------------------------------------------------ *)
(* Switch + calibration constants *)

let on = ref false
let enabled () = !on

(* Words one leaf span's own probes allocate inside its window (c_leaf)
   and outside it, into the parent's window (c_ext). *)
let c_leaf_minor = ref 0
let c_leaf_major = ref 0
let c_ext_minor = ref 0
let c_ext_major = ref 0
let calibrated = ref false

let probe_overhead () = (!c_leaf_minor + !c_ext_minor, !c_leaf_major + !c_ext_major)

let reset () =
  if !depth <> 0 then failwith "Prof.reset: open spans";
  Array.fill a_calls 0 max_sections 0;
  Array.fill a_self_ns 0 max_sections 0;
  Array.fill a_incl_ns 0 max_sections 0;
  Array.fill a_self_minor 0 max_sections 0;
  Array.fill a_incl_minor 0 max_sections 0;
  Array.fill a_self_major 0 max_sections 0;
  Array.fill a_incl_major 0 max_sections 0;
  Array.fill a_active 0 max_sections 0;
  Array.fill !node_calls 0 !node_cap 0;
  Array.fill !node_self_ns 0 !node_cap 0;
  Array.fill !node_self_minor 0 !node_cap 0;
  Array.fill !node_self_major 0 !node_cap 0

(* ------------------------------------------------------------------ *)
(* Hot path *)

let enter s =
  if !on then begin
    let d = !depth in
    if d >= !stack_cap then grow_stack ();
    let stk_sec = !stk_sec
    and stk_node = !stk_node
    and stk_child_ns = !stk_child_ns
    and stk_child_minor = !stk_child_minor
    and stk_child_major = !stk_child_major
    and stk_desc = !stk_desc in
    stk_sec.(d) <- s;
    let parent = if d = 0 then 0 else stk_node.(d - 1) in
    stk_node.(d) <- node_of parent s;
    stk_child_ns.(d) <- 0;
    stk_child_minor.(d) <- 0;
    stk_child_major.(d) <- 0;
    stk_desc.(d) <- 0;
    a_active.(s) <- a_active.(s) + 1;
    depth := d + 1;
    (* Probe reads go last so all bookkeeping above — including first-visit
       node creation — stays outside this span's window (it lands in the
       parent's, a constant per distinct path). *)
    let m0, j0 = heap_words () in
    !stk_m0.(d) <- m0;
    !stk_j0.(d) <- j0;
    !stk_t0.(d) <- now_ns ()
  end

let leave s =
  if !on then begin
    let t1 = now_ns () in
    let m1, j1 = heap_words () in
    let d = !depth - 1 in
    if d < 0 then failwith "Prof.leave: no open span";
    if !stk_sec.(d) <> s then
      failwith
        (Printf.sprintf "Prof.leave: unbalanced (open %s, leaving %s)"
           sec_names.(!stk_sec.(d)) sec_names.(s));
    depth := d;
    let desc = !stk_desc.(d) in
    let incl_ns = t1 - !stk_t0.(d) in
    let incl_minor =
      m1 - !stk_m0.(d) - !c_leaf_minor - (desc * (!c_leaf_minor + !c_ext_minor))
    in
    let incl_major =
      j1 - !stk_j0.(d) - !c_leaf_major - (desc * (!c_leaf_major + !c_ext_major))
    in
    let self_ns = incl_ns - !stk_child_ns.(d) in
    let self_minor = incl_minor - !stk_child_minor.(d) in
    let self_major = incl_major - !stk_child_major.(d) in
    a_calls.(s) <- a_calls.(s) + 1;
    a_self_ns.(s) <- a_self_ns.(s) + self_ns;
    a_self_minor.(s) <- a_self_minor.(s) + self_minor;
    a_self_major.(s) <- a_self_major.(s) + self_major;
    let act = a_active.(s) - 1 in
    a_active.(s) <- act;
    if act = 0 then begin
      (* Recursive re-entries fold into the outermost span's inclusive. *)
      a_incl_ns.(s) <- a_incl_ns.(s) + incl_ns;
      a_incl_minor.(s) <- a_incl_minor.(s) + incl_minor;
      a_incl_major.(s) <- a_incl_major.(s) + incl_major
    end;
    let nd = !stk_node.(d) in
    !node_calls.(nd) <- !node_calls.(nd) + 1;
    !node_self_ns.(nd) <- !node_self_ns.(nd) + self_ns;
    !node_self_minor.(nd) <- !node_self_minor.(nd) + self_minor;
    !node_self_major.(nd) <- !node_self_major.(nd) + self_major;
    if d > 0 then begin
      let p = d - 1 in
      !stk_child_ns.(p) <- !stk_child_ns.(p) + incl_ns;
      !stk_child_minor.(p) <- !stk_child_minor.(p) + incl_minor;
      !stk_child_major.(p) <- !stk_child_major.(p) + incl_major;
      !stk_desc.(p) <- !stk_desc.(p) + desc + 1
    end
  end

let span s f =
  if not !on then f ()
  else begin
    enter s;
    match f () with
    | v ->
        leave s;
        v
    | exception e ->
        leave s;
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Calibration: measure the probe constants with the real machinery, then
   wipe the scratch data. Runs once, on the first enable (nothing can have
   accumulated while disabled, so the reset loses nothing). Repetitions
   take the minimum so a minor collection landing inside one rep (whose
   promotion would inflate the major delta) cannot skew the constant. *)

let calibrate () =
  let s1 = section "prof.calib.a" and s2 = section "prof.calib.b" in
  (* Warm the tree paths so node creation is out of the measured reps. *)
  enter s1;
  leave s1;
  enter s1;
  enter s2;
  leave s2;
  leave s1;
  c_leaf_minor := 0;
  c_leaf_major := 0;
  c_ext_minor := 0;
  c_ext_major := 0;
  let best_minor = ref max_int and best_major = ref max_int in
  for _ = 1 to 8 do
    reset ();
    enter s1;
    leave s1;
    if a_self_minor.(s1) < !best_minor then best_minor := a_self_minor.(s1);
    if a_self_major.(s1) < !best_major then best_major := a_self_major.(s1)
  done;
  c_leaf_minor := max 0 !best_minor;
  c_leaf_major := max 0 !best_major;
  (* With c_leaf in place, a parent around one empty child measures exactly
     the residue each child's closing probes leak into its parent. *)
  best_minor := max_int;
  best_major := max_int;
  for _ = 1 to 8 do
    reset ();
    enter s1;
    enter s2;
    leave s2;
    leave s1;
    if a_incl_minor.(s1) < !best_minor then best_minor := a_incl_minor.(s1);
    if a_incl_major.(s1) < !best_major then best_major := a_incl_major.(s1)
  done;
  c_ext_minor := max 0 !best_minor;
  c_ext_major := max 0 !best_major;
  reset ();
  calibrated := true

let set_enabled v =
  if v && not !on then begin
    on := true;
    if not !calibrated then calibrate ()
  end
  else if not v then on := false

(* ------------------------------------------------------------------ *)
(* Reporting *)

type row = {
  name : string;
  calls : int;
  self_ns : int;
  incl_ns : int;
  self_minor_words : int;
  incl_minor_words : int;
  self_major_words : int;
  incl_major_words : int;
}

let report () =
  let rows = ref [] in
  for s = !sec_count - 1 downto 0 do
    if a_calls.(s) > 0 then
      rows :=
        {
          name = sec_names.(s);
          calls = a_calls.(s);
          self_ns = a_self_ns.(s);
          incl_ns = a_incl_ns.(s);
          self_minor_words = a_self_minor.(s);
          incl_minor_words = a_incl_minor.(s);
          self_major_words = a_self_major.(s);
          incl_major_words = a_incl_major.(s);
        }
        :: !rows
  done;
  List.sort (fun a b -> compare a.name b.name) !rows

(* Children of each tree node, in creation order (deterministic for a
   deterministic run: creation order is first-visit order). *)
let tree_children () =
  let children = Array.make !node_count [] in
  for nd = !node_count - 1 downto 1 do
    children.(!node_parent.(nd)) <- nd :: children.(!node_parent.(nd))
  done;
  children

let iter_tree_paths f =
  let children = tree_children () in
  let rec visit path nd =
    let path =
      if nd = 0 then path else sec_names.(!node_section.(nd)) :: path
    in
    if nd <> 0 && !node_calls.(nd) > 0 then f (List.rev path) nd;
    List.iter (visit path) children.(nd)
  in
  visit [] 0

let folded () =
  let b = Buffer.create 4096 in
  iter_tree_paths (fun path nd ->
      Buffer.add_string b (String.concat ";" path);
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int (max 0 (!node_self_ns.(nd) / 1000)));
      Buffer.add_char b '\n');
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?census () =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n";
  pf "  \"schema\": \"clanbft/profile/v1\",\n";
  pf "  \"probe_overhead\": {\"minor_words\": %d, \"major_words\": %d},\n"
    (!c_leaf_minor + !c_ext_minor)
    (!c_leaf_major + !c_ext_major);
  let rows = report () in
  pf "  \"sections\": [";
  List.iteri
    (fun i r ->
      pf "%s\n    {\"name\":\"%s\",\"calls\":%d,\"self_ns\":%d,\"incl_ns\":%d,\"self_minor_words\":%d,\"incl_minor_words\":%d,\"self_major_words\":%d,\"incl_major_words\":%d}"
        (if i = 0 then "" else ",")
        (json_escape r.name) r.calls r.self_ns r.incl_ns r.self_minor_words
        r.incl_minor_words r.self_major_words r.incl_major_words)
    rows;
  pf "\n  ],\n";
  pf "  \"tree\": [";
  let first = ref true in
  iter_tree_paths (fun path nd ->
      pf "%s\n    {\"path\":\"%s\",\"calls\":%d,\"self_ns\":%d,\"self_minor_words\":%d,\"self_major_words\":%d}"
        (if !first then "" else ",")
        (json_escape (String.concat ";" path))
        !node_calls.(nd) !node_self_ns.(nd) !node_self_minor.(nd)
        !node_self_major.(nd);
      first := false);
  pf "\n  ]";
  (match census with
  | None -> ()
  | Some rows ->
      let rows = List.sort compare rows in
      pf ",\n  \"census\": [";
      List.iteri
        (fun i (name, words) ->
          pf "%s\n    {\"subsystem\":\"%s\",\"live_words\":%d}"
            (if i = 0 then "" else ",")
            (json_escape name) words)
        rows;
      pf "\n  ]");
  pf "\n}\n";
  Buffer.contents b

let table ?census () =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let rows =
    List.sort (fun a b -> compare (b.self_ns, b.name) (a.self_ns, a.name)) (report ())
  in
  pf "-- profile: self/total by section (sorted by self time) --\n";
  pf "%-24s %12s %12s %12s %14s %14s %12s\n" "section" "calls" "self ms"
    "total ms" "self minor w" "total minor w" "self major w";
  List.iter
    (fun r ->
      pf "%-24s %12d %12.3f %12.3f %14d %14d %12d\n" r.name r.calls
        (float_of_int r.self_ns /. 1e6)
        (float_of_int r.incl_ns /. 1e6)
        r.self_minor_words r.incl_minor_words r.self_major_words)
    rows;
  (match census with
  | None -> ()
  | Some rows ->
      let rows = List.sort compare rows in
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 rows in
      pf "\n-- heap census: approx live words by subsystem --\n";
      pf "%-24s %14s %10s\n" "subsystem" "live words" "~MiB";
      List.iter
        (fun (name, words) ->
          pf "%-24s %14d %10.2f\n" name words
            (float_of_int words *. 8.0 /. 1048576.0))
        rows;
      pf "%-24s %14d %10.2f\n" "TOTAL" total
        (float_of_int total *. 8.0 /. 1048576.0));
  Buffer.contents b
