type t = {
  trace : Trace.t;
  metrics : Metrics.registry;
}

let disabled = { trace = Trace.null; metrics = Metrics.create_registry () }

let create ?trace_limit () =
  { trace = Trace.create ?limit:trace_limit (); metrics = Metrics.create_registry () }

let metrics_only () =
  { trace = Trace.null; metrics = Metrics.create_registry () }

let of_trace trace = { trace; metrics = Metrics.create_registry () }

let tracing t = Trace.enabled t.trace
