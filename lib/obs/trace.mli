(** Structured protocol tracing.

    A {!t} is a sink of typed, timestamped {!event}s emitted from inside the
    protocol stack: message sends and receipts with wire sizes, uplink-queue
    occupancy spans, RBC phase transitions (VAL/ECHO/READY/certificate/
    deliver/pull-retry), DAG vertex delivery and commit, and fault-injection
    rule firings. Timestamps are the simulation engine's integer
    microseconds ({!Clanbft_sim.Time.t} is [int]; this library sits below
    [clanbft.sim], so plain [int] is used here).

    {2 Zero cost when disabled}

    The {!null} sink reports [enabled = false] and every instrumented call
    site guards event {e construction} behind {!enabled}:

    {[
      if Trace.enabled tr then
        Trace.emit tr ~ts:(Engine.now engine) (Trace.Msg_send { ... })
    ]}

    so a disabled run allocates nothing and executes one branch per
    potential event. Recording never draws randomness and never schedules
    engine events, which preserves the simulator's bit-exact determinism:
    a benign run commits the identical sequence with tracing on or off
    (asserted by [test/test_obs.ml]).

    {2 Export formats}

    - {!write_jsonl}: one self-describing JSON object per line (the schema
      is documented in [docs/OBSERVABILITY.md], and {!of_jsonl_line} parses
      it back);
    - {!write_chrome}: the Chrome [trace_event] JSON-array format — load
      the file in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}
      for a per-node flame view (uplink busy spans and RBC phase
      transitions are rendered as complete ["X"] events; everything else
      as instants). *)

(** RBC / dissemination phase of an {!event}. [Propose] fires exactly once
    per instance, on the sender, when the proposal leaves for the wire — it
    is the origin anchor for latency attribution ([lib/obs/analyze.ml]).
    [Ready] only occurs in the Bracha-family standalone protocols; the
    merged Sailfish instance goes PROPOSE → VAL → ECHO → CERT. [Pull_retry]
    marks every (re-)issued pull request for a missing value, block or
    vertex — the off-critical-path recovery traffic. *)
type phase = Propose | Val | Echo | Ready | Cert | Deliver | Pull_retry

val phase_name : phase -> string
(** Lower-case wire name, e.g. ["pull_retry"]. *)

val phase_of_name : string -> phase option

(** One traced occurrence. All node/peer ids are tribe indices; [kind] is
    the wire-message tag ({!Clanbft_types.Msg.tag} / [Rbc.msg_tag]);
    [bytes] includes the per-message transport overhead. *)
type event =
  | Msg_send of { src : int; dst : int; kind : string; bytes : int }
      (** Enqueued on [src]'s uplink (or the loopback path). *)
  | Msg_bcast of { src : int; kind : string; bytes : int; count : int }
      (** One batched fan-out ([Net.broadcast] / [Net.multicast]): [count]
          copies of a [bytes]-sized message left [src] at [ts]. Replaces
          the [count] individual [Msg_send] records the fan-out would have
          emitted; per-recipient [Msg_recv] records are still emitted at
          each arrival. *)
  | Msg_recv of { src : int; dst : int; kind : string; bytes : int }
      (** Delivered to [dst]'s handler; the record's [ts] is arrival time. *)
  | Uplink of {
      node : int;
      kind : string;
      bytes : int;
      enqueued : int;  (** when the message entered the uplink queue *)
      start : int;  (** when its serialization began (queue exit) *)
      depart : int;  (** when the last byte left the NIC *)
    }
      (** One uplink-queue occupancy span. [start - enqueued] is queueing
          delay, [depart - start] the serialization time; the record's [ts]
          equals [enqueued]. *)
  | Rbc_phase of { node : int; sender : int; round : int; phase : phase }
      (** [node]'s local instance for ([sender], [round]) crossed [phase]. *)
  | Vertex_deliver of { node : int; round : int; source : int }
      (** The vertex entered [node]'s DAG store (all parents present). *)
  | Vertex_commit of {
      node : int;
      round : int;
      source : int;
      leader_round : int;  (** the committed leader that ordered it *)
    }
  | Fault_fire of {
      rule : int;  (** index into the fault plan's rule list *)
      action : string;  (** ["drop"], ["delay"] or ["dup"] *)
      kind : string;
      src : int;
      dst : int;
    }
  | Recovery of {
      node : int;
      stage : string;
          (** lifecycle stage: ["crash"], ["replay"], ["sync_start"],
              ["snapshot_join"] or ["caught_up"] *)
      round : int;  (** the stage's reference round (frontier / target) *)
    }  (** Crash-recovery lifecycle transitions (see [docs/RECOVERY.md]). *)

type record = { ts : int; ev : event }

type t
(** An event sink: {!null}, an in-memory buffer, or a JSONL {!stream}. *)

val null : t
(** The disabled sink: {!enabled} is [false], {!emit} is a no-op. *)

val create : ?limit:int -> unit -> t
(** A recording sink. [limit] caps the number of retained records (default
    unbounded); past the cap, new events are counted in {!dropped} and
    discarded — the run itself is never perturbed. *)

val stream : out_channel -> t
(** A streaming sink: every {!emit} writes one JSONL line to the channel
    immediately (the channel's own buffering applies) and retains nothing,
    so a long traced run holds at most one record in memory. The caller
    owns the channel and must close (or flush) it after the run. {!length}
    counts lines written; {!iter} and {!records} see nothing, and
    {!write_jsonl} / {!write_chrome} raise [Invalid_argument] — re-parse
    the file with {!of_jsonl_line} instead. *)

val enabled : t -> bool
(** Call sites must check this {e before} allocating an event. *)

val emit : t -> ts:int -> event -> unit
val length : t -> int
val dropped : t -> int

val approx_live_words : t -> int
(** Heap-census hook: word estimate of a buffered sink's record array
    (0 for {!null} and streaming sinks). See docs/PROFILING.md. *)

val iter : t -> (record -> unit) -> unit
(** In emission order. Records emitted from the same engine callback share
    a timestamp; [Uplink] records carry a future [depart]. Visits nothing
    on {!null} and {!stream} sinks. *)

val records : t -> record list

(** {1 JSONL} *)

val jsonl_of_record : record -> string
(** One JSON object, no trailing newline. *)

val of_jsonl_line : string -> record option
(** Inverse of {!jsonl_of_record} (round-trip is exact for every variant);
    [None] on unknown or malformed lines. This is a minimal parser for the
    writer's own output, not a general JSON parser. *)

val write_jsonl : t -> string -> unit
(** Write every record to [path], one per line. Raises [Invalid_argument]
    on a {!stream} sink (it already wrote them). *)

(** {1 Chrome trace_event} *)

val write_chrome : t -> string -> unit
(** Write a [{"traceEvents": [...]}] JSON document: process ids are node
    ids (with name metadata). Uplink spans and RBC phase transitions are
    ["X"] duration events — each chain phase of an instance
    (PROPOSE → VAL → ECHO → READY → CERT → deliver) spans until the
    instance's next phase on that node, so Perfetto shows per-phase latency
    directly; an instance's last phase, and every pull retry, stays an
    instant event. Raises [Invalid_argument] on a {!stream} sink. *)
