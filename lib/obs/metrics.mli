(** Named metric registry.

    A {!registry} owns a flat namespace of instruments, each identified by a
    metric {e name} plus a (possibly empty) set of [(key, value)] {e labels}
    — the Prometheus data model, minus the scraping. Protocol code resolves
    a handle once (at node construction time) and then updates it with plain
    integer/float operations, so the per-event cost is identical to the
    bespoke [int ref] counters this registry replaces.

    Three instrument kinds:

    - {!counter}: a monotonically increasing integer (bytes sent, messages
      received, pull retries);
    - {!gauge}: a float that goes up and down (current uplink backlog);
    - {!histogram}: a fixed-bucket {!Clanbft_util.Stats.Histogram}
      (commit latency, message sizes).

    Creation is idempotent: registering the same kind under the same name
    and label set returns the {e existing} instrument, so independent
    components can share a metric without coordination. Registering the
    same (name, labels) under a {e different} kind raises
    [Invalid_argument].

    {2 Determinism}

    Instruments are stored in a hash table, but {!dump} and {!to_json}
    iterate in sorted (name, labels) order, so the exported file is a
    deterministic function of the run. Nothing here reads wall-clock time
    or randomness. *)

type registry

val create_registry : unit -> registry

(** {1 Instruments} *)

type counter
type gauge
type histogram

val counter : registry -> ?labels:(string * string) list -> string -> counter
(** Resolve (or create) the counter [name{labels}]. Label order is
    irrelevant: labels are sorted by key internally. *)

val gauge : registry -> ?labels:(string * string) list -> string -> gauge

val histogram :
  registry ->
  ?labels:(string * string) list ->
  buckets:float array ->
  string ->
  histogram
(** [buckets] are upper edges as in {!Clanbft_util.Stats.Histogram.create}.
    When the instrument already exists, [buckets] is ignored and the
    existing histogram (with its original layout) is returned. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val reset_counter : counter -> unit
(** Zero the counter. Exported for harnesses that measure deltas between
    run sections ([Net.reset_metrics]); protocol code never resets. *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val hist : histogram -> Clanbft_util.Stats.Histogram.t
(** The underlying histogram, for direct querying ([quantile], [mean], …). *)

(** {1 Inspection and export} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Clanbft_util.Stats.Histogram.t

val find : registry -> ?labels:(string * string) list -> string -> value option
(** Look up an instrument without creating it. *)

val fold :
  registry ->
  init:'a ->
  f:('a -> name:string -> labels:(string * string) list -> value -> 'a) ->
  'a
(** Fold over every instrument in sorted (name, labels) order. *)

val to_json : registry -> string
(** The whole registry as one pretty-printed JSON object
    [{"metrics": [...]}] with one entry per instrument, in sorted order.
    Counters export ["value"]; gauges ["value"]; histograms ["count"],
    ["sum"], ["mean"], a ["buckets"] array of [{"le": edge, "count": n}]
    (non-cumulative) and a ["cumulative"] array over the same edges with
    Prometheus-style running totals (its last count equals ["count"], so
    percentiles can be recomputed externally). The overflow bucket's
    ["le"] is the string ["+inf"]; [nan] means are exported as [null].
    The schema is documented with a worked example in
    [docs/OBSERVABILITY.md]. *)

val write_json : registry -> string -> unit
(** {!to_json} to a file. *)
