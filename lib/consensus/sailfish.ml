open Clanbft_types
open Clanbft_crypto
module Bitset = Clanbft_util.Bitset
module Engine = Clanbft_sim.Engine
module Net = Clanbft_sim.Net
module Time = Clanbft_sim.Time
module Store = Clanbft_dag.Store
module Obs = Clanbft_obs.Obs
module Metrics = Clanbft_obs.Metrics
module Trace = Clanbft_obs.Trace
module Prof = Clanbft_obs.Prof

let sec_propose = Prof.section "sailfish.propose"
let sec_echo = Prof.section "sailfish.echo"
let sec_commit = Prof.section "sailfish.commit"

let src_log = Logs.Src.create "clanbft.sailfish" ~doc:"Sailfish consensus"

module Log = (val Logs.src_log src_log)

type params = {
  round_timeout : Time.span;
  sync_retry : Time.span;
  pull_budget : int;
  gc_depth : int;
  sync_chunk : int;
}

let default_params =
  {
    round_timeout = Time.ms 1_500.;
    sync_retry = Time.ms 150.;
    pull_budget = 8;
    gc_depth = 64;
    sync_chunk = 64;
  }

(* Per-digest vote state within a dissemination slot: equivocating
   proposers produce several digests, counted separately. *)
type votes = {
  voters : Bitset.t;
  mutable clan_votes : int;
  mutable shares : (int * Keychain.signature) list;
  (* Echo signing string for this digest, built and hashed once: every one
     of the ~n echo receipts and the certificate check verify against the
     same string, and both rebuilding and rehashing it per receipt showed
     up in profiles (echo receipts are ~n³ per round at paper scale). *)
  signing : string;
  signing_h : Keychain.msg_hash;
}

(* One merged vertex+block broadcast instance per (round, source). *)
type slot = {
  s_round : int;
  s_source : int;
  mutable vertex : Vertex.t option; (* content as first received *)
  mutable block : Block.t option;
  mutable echoed : bool;
  mutable cert_sent : bool;
  mutable delivered : bool; (* RBC-delivered: a valid cert seen/formed *)
  mutable agreed : Digest32.t option; (* the certified vertex digest *)
  echoes : votes Digest32.Tbl.t;
  mutable fetching_vertex : bool;
  mutable fetching_block : bool;
  served : (int, int) Hashtbl.t; (* pull rate limiting, per peer *)
}

(* Collection of signature shares for timeout / no-vote certificates. *)
type share_box = { signers : Bitset.t; mutable shares : (int * Keychain.signature) list }

(* Observability handles, resolved once at construction so the hot paths
   pay an integer add plus (for the trace) one enabled-branch. *)
type obs_handles = {
  o_trace : Trace.t;
  o_pull_retries : Metrics.counter;
  o_inserted : Metrics.counter;
  o_committed : Metrics.counter;
  o_sync_rounds : Metrics.counter;
  o_recovery_wall : Metrics.gauge;
}

type t = {
  me : int;
  config : Config.t;
  keychain : Keychain.t;
  engine : Engine.t;
  net : Msg.t Net.t;
  params : params;
  obsh : obs_handles;
  store : Store.t;
  make_block : round:int -> Transaction.t array;
  on_commit : leader:Vertex.t -> Vertex.t list -> unit;
  on_block : Block.t -> unit;
  (* dissemination; keyed by [round * n + source] — echo receipts probe
     this table ~n³ times per round, and a packed int key avoids the
     per-probe pair allocation and structural hash of an (int * int) key *)
  slots : (int, slot) Hashtbl.t;
  pending : (int * int, Vertex.t) Hashtbl.t; (* delivered, parents missing *)
  (* Reverse index over [pending]: parent slot -> children buffered on it.
     An insertion wakes exactly the children waiting on that slot instead
     of re-filtering every pending vertex's full parent list — the old
     O(|pending| · edges) rescan per insert dominated at paper scale. *)
  waiters : (int * int, (int * int) list ref) Hashtbl.t;
  blocks : (int * int, Block.t) Hashtbl.t; (* available blocks I store *)
  (* round progression *)
  mutable round : int;
  mutable proposed : bool; (* proposed in current round? *)
  mutable started : bool;
  mutable timer_epoch : int;
  (* crash / recovery *)
  mutable halted : bool; (* torn down: ignore messages and stale timers *)
  mutable syncing : bool; (* recovering: pulling history, not proposing *)
  mutable sync_target : int; (* highest round any sync peer reported *)
  mutable sync_replies : int;
  mutable min_propose_round : int; (* never re-propose a journalled round *)
  mutable snapshot_joined : bool; (* rejoined past a GC'd gap *)
  mutable recovery_started_at : Time.t;
  sync_seen_rounds : (int, unit) Hashtbl.t;
  on_deliver : Vertex.t -> unit; (* journal hook, fired before insertion *)
  on_propose : round:int -> unit; (* journal hook, fired before VAL sends *)
  timeout_sent : (int, unit) Hashtbl.t;
  timeout_shares : (int, share_box) Hashtbl.t;
  no_vote_shares : (int, share_box) Hashtbl.t; (* only as leader of r+1 *)
  tcs : (int, Cert.t) Hashtbl.t;
  nvcs : (int, Cert.t) Hashtbl.t;
  (* commit machinery *)
  leader_votes : (int, Bitset.t) Hashtbl.t; (* round -> voters for its leader *)
  commit_ready : (int, unit) Hashtbl.t; (* direct quorum reached *)
  mutable last_committed : int;
  ordered : (int * int, unit) Hashtbl.t;
  mutable ordered_total : int;
  mutable ordered_hash : int; (* chained fingerprint of the total order *)
  (* weak-edge bookkeeping *)
  covered : (int * int, unit) Hashtbl.t; (* causal history of my proposals *)
  uncovered : (int * int, Vertex.t) Hashtbl.t;
}

let me t = t.me
let current_round t = t.round
let last_committed_round t = t.last_committed
let committed_count t = t.ordered_total
let ordered_hash t = t.ordered_hash

(* FNV-1a-style chaining, same mix the bench fingerprints use: cheap, and
   any divergence in commit order or content changes every later value. *)
let mix_commit h ~round ~source =
  let h = h lxor ((round * 1_000_003) + source) in
  let h = h * 0x100000001b3 in
  h land max_int
let dag_size t = Store.size t.store
let quorum t = Config.quorum t.config
let leader_of t round = Config.leader_of_round t.config round

(* Certificate relayers for a slot under the sparse edge policy: the f+1
   nodes source, source+1, ..., source+f (mod n). Any set of f+1 distinct
   parties contains an honest one, and echoes are n-wide broadcasts, so
   every honest relayer reaches the certificate threshold whenever any
   honest party does — one honest relayer's broadcast then delivers the
   slot everywhere. Dense mode keeps the paper's broadcast-by-everyone
   redundancy (and its pinned byte-identical message flow), and so does
   sparse with k >= n, where the edge policy is defined to degenerate to
   dense exactly (the equivalence tests rely on this). *)
let cert_relayer t ~source =
  match Config.edge_policy t.config with
  | Config.Dense -> true
  | Config.Sparse { k; _ } when k >= Config.n t.config -> true
  | Config.Sparse _ ->
      let n = Config.n t.config in
      let f = (n - 1) / 3 in
      (t.me - source + n) mod n <= f

let trace_phase t ~sender ~round phase =
  let tr = t.obsh.o_trace in
  if Trace.enabled tr then
    Trace.emit tr ~ts:(Engine.now t.engine)
      (Trace.Rbc_phase { node = t.me; sender; round; phase })

let trace_recovery t ~stage ~round =
  let tr = t.obsh.o_trace in
  if Trace.enabled tr then
    Trace.emit tr ~ts:(Engine.now t.engine)
      (Trace.Recovery { node = t.me; stage; round })

let slot_key t ~round ~source = (round * Config.n t.config) + source

let slot_of t ~round ~source =
  match Hashtbl.find_opt t.slots (slot_key t ~round ~source) with
  | Some s -> s
  | None ->
      let s =
        {
          s_round = round;
          s_source = source;
          vertex = None;
          block = None;
          echoed = false;
          cert_sent = false;
          delivered = false;
          agreed = None;
          echoes = Digest32.Tbl.create 2;
          fetching_vertex = false;
          fetching_block = false;
          served = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.slots (slot_key t ~round ~source) s;
      s

let votes_of tbl ~round ~source digest n =
  match Digest32.Tbl.find_opt tbl digest with
  | Some v -> v
  | None ->
      let v =
        let signing = Msg.echo_signing_string ~round ~source digest in
        {
          voters = Bitset.create n;
          clan_votes = 0;
          shares = [];
          signing;
          signing_h = Keychain.hash_msg signing;
        }
      in
      Digest32.Tbl.replace tbl digest v;
      v

let box_of tbl round n =
  match Hashtbl.find_opt tbl round with
  | Some b -> b
  | None ->
      let b = { signers = Bitset.create n; shares = [] } in
      Hashtbl.replace tbl round b;
      b

let val_signing_string = Msg.val_signing_string

(* ------------------------------------------------------------------ *)
(* Vertex validity (checked before echoing) *)

let leader_edge_ok t (v : Vertex.t) =
  if v.round = 0 then true
  else begin
    let prev_leader = leader_of t (v.round - 1) in
    let has_edge = Vertex.has_strong_edge_to v ~round:(v.round - 1) ~source:prev_leader in
    if v.source = leader_of t v.round then
      has_edge
      ||
      match v.nvc with
      | Some c ->
          c.kind = Cert.No_vote && c.round = v.round - 1
          && Cert.verify t.keychain ~quorum:(quorum t) c
      | None -> false
    else
      has_edge
      ||
      match v.tc with
      | Some c ->
          c.kind = Cert.Timeout && c.round = v.round - 1
          && Cert.verify t.keychain ~quorum:(quorum t) c
      | None -> false
  end

(* How many strong parents a round-r vertex must / may carry depends on the
   edge policy: dense Sailfish demands the full >= 2f+1 of Fig. 4, the
   sparse mode only a bounded handful (commit safety then rests on the
   mandatory structural edges — see [sparse_strong_refs]). *)
let strong_edges_ok t (v : Vertex.t) =
  let count = Array.length v.strong_edges in
  if v.round = 0 then count = 0
  else
    match Config.edge_policy t.config with
    | Config.Dense -> count >= quorum t
    | Config.Sparse _ as p ->
        count >= 1 && count <= Config.sparse_strong_cap p

let vertex_valid t (v : Vertex.t) =
  v.round >= 0
  && v.source >= 0
  && v.source < Config.n t.config
  && strong_edges_ok t v
  && leader_edge_ok t v

(* Does this proposer's slot carry a real block? Vertex-only proposers use
   the zero digest. *)
let expects_block (v : Vertex.t) =
  not (Digest32.equal v.block_digest Digest32.zero)

(* ------------------------------------------------------------------ *)
(* Sparse-edge parent selection *)

(* Deterministic, seed-keyed rank for sampled parent selection: a
   splitmix-style avalanche over (seed, round, proposer, candidate). Each
   honest proposer draws a different k-sample per round, so the union of
   sampled edges covers a round within a couple of steps, while the fixed
   seed keeps every run replayable. *)
let edge_rank ~seed ~round ~me candidate =
  let h =
    Int64.to_int seed
    lxor (round * 0x9E3779B9)
    lxor (me * 0x85EBCA6B)
    lxor (candidate * 0xC2B2AE35)
  in
  let h = h lxor (h lsr 16) in
  let h = h * 0x45D9F3B land max_int in
  let h = h lxor (h lsr 15) in
  let h = h * 0x846CA68B land max_int in
  h lxor (h lsr 16)

(* Sparse strong-parent selection for a round-r proposal (r > 0). Picks:
   - my own round-(r-1) vertex (chain continuity),
   - the round-(r-1) leader's vertex when delivered — that edge IS the
     leader vote, exactly as in dense mode,
   - one "link" parent with a strong edge to the round-(r-2) leader: if
     that leader was directly committed then 2f+1 round-(r-1) vertices
     carry such an edge, so any quorum-sized delivered set contains a
     voter — the link keeps a committed-but-skipped leader strong-path
     reachable from later anchors,
   - k further parents, ranked by {!edge_rank}.
   Unpicked round-(r-1) vertices stay uncovered; they are absorbed
   transitively through the sampled parents' histories or by later
   (capped) weak edges. Result is sorted by source — the order the
   compact wire form requires. *)
let sparse_strong_parents t ~k ~seed r =
  let candidates = Store.vertices_at t.store (r - 1) in
  let picked = Bitset.create (Config.n t.config) in
  let chosen = ref [] in
  let pick (v : Vertex.t) =
    if Bitset.add picked v.source then chosen := v :: !chosen
  in
  let lead1 = leader_of t (r - 1) in
  List.iter
    (fun (v : Vertex.t) -> if v.source = t.me || v.source = lead1 then pick v)
    candidates;
  if r >= 2 then begin
    let lead2 = leader_of t (r - 2) in
    let is_link (v : Vertex.t) =
      Vertex.has_strong_edge_to v ~round:(r - 2) ~source:lead2
    in
    if
      not
        (List.exists
           (fun (v : Vertex.t) -> Bitset.mem picked v.source && is_link v)
           candidates)
    then
      match List.find_opt is_link candidates with
      | Some v -> pick v
      | None -> ()
  end;
  let ranked =
    List.filter_map
      (fun (v : Vertex.t) ->
        if Bitset.mem picked v.source then None
        else Some (edge_rank ~seed ~round:r ~me:t.me v.source, v))
      candidates
    |> List.sort (fun (ra, (va : Vertex.t)) (rb, (vb : Vertex.t)) ->
           match Int.compare ra rb with
           | 0 -> Int.compare va.source vb.source
           | c -> c)
  in
  List.iteri (fun i (_, v) -> if i < k then pick v) ranked;
  List.sort (fun (a : Vertex.t) b -> Int.compare a.source b.source) !chosen
  |> List.map Vertex.ref_of |> Array.of_list

let in_payload_clan_of t ~proposer = Config.in_payload_clan t.config ~proposer t.me

(* ------------------------------------------------------------------ *)
(* Forward declarations via mutual recursion *)

let msg_round = function
  | Msg.Val { vertex; _ } | Msg.Vertex_reply { vertex; _ } -> vertex.Vertex.round
  | Msg.Echo { round; _ }
  | Msg.Echo_cert { round; _ }
  | Msg.Timeout_share { round; _ }
  | Msg.No_vote_share { round; _ }
  | Msg.Block_request { round; _ }
  | Msg.Vertex_request { round; _ } ->
      round
  | Msg.Timeout_cert c -> c.Cert.round
  | Msg.Block_reply { block } -> block.Block.round
  (* State-sync control traffic carries no round of its own and is
     dispatched before the GC-floor gate; never consulted. *)
  | Msg.Sync_request _ | Msg.Sync_reply _ -> max_int

let rec handle t ~src msg =
  if not t.halted then
    match msg with
    (* State-sync control messages bypass the floor gate: a recovering
       peer's [from_round] may sit below our floor, and a reply's floor
       field is exactly what tells it so. *)
    | Msg.Sync_request { from_round } -> on_sync_request t ~src ~from_round
    | Msg.Sync_reply { floor; highest } -> on_sync_reply t ~floor ~highest
    | _ ->
        (* Traffic for garbage-collected rounds is dropped outright: it can
           no longer affect the committed prefix, and processing it would
           recreate pruned state (or try to insert below the store's
           floor). *)
        if msg_round msg >= Store.floor t.store then handle_live t ~src msg

and handle_live t ~src msg =
  match msg with
  | Msg.Sync_request _ | Msg.Sync_reply _ -> () (* dispatched in [handle] *)
  | Msg.Val { vertex; block; signature } -> on_val t ~src vertex block signature
  | Msg.Echo { round; source; vertex_digest; signer; signature } ->
      if src = signer then on_echo t ~round ~source ~digest:vertex_digest ~signer ~signature
  | Msg.Echo_cert { round; source; vertex_digest; agg; clan_echoes = _ } ->
      on_echo_cert t ~round ~source ~digest:vertex_digest ~agg
  | Msg.Timeout_share { round; signer; signature } ->
      if src = signer then on_timeout_share t ~round ~signer ~signature
  | Msg.No_vote_share { round; signer; signature } ->
      if src = signer then on_no_vote_share t ~round ~signer ~signature
  | Msg.Timeout_cert c -> on_timeout_cert t c
  | Msg.Block_request { round; source } -> on_block_request t ~src ~round ~source
  | Msg.Block_reply { block } -> on_block_reply t block
  | Msg.Vertex_request { round; source } -> on_vertex_request t ~src ~round ~source
  | Msg.Vertex_reply { vertex; block } -> on_vertex_reply t vertex block

(* --- VAL ----------------------------------------------------------- *)

and on_val t ~src (v : Vertex.t) block signature =
  if
    v.source = src
    && Keychain.verify t.keychain ~signer:src (val_signing_string v) signature
    && vertex_valid t v
  then begin
    let slot = slot_of t ~round:v.round ~source:v.source in
    trace_phase t ~sender:v.source ~round:v.round Trace.Val;
    register_vote t v;
    if slot.vertex = None then begin
      (* If a certificate already landed (the cert can outrun a VAL stuck
         in the sender's uplink queue), only the certified content is
         acceptable. *)
      let acceptable =
        match slot.agreed with
        | Some d -> Digest32.equal v.digest d
        | None -> true
      in
      if acceptable then begin
        slot.vertex <- Some v;
        (match block with
        | Some b
          when in_payload_clan_of t ~proposer:v.source
               && Digest32.equal (Block.digest b) v.block_digest ->
            slot.block <- Some b
        | _ -> ());
        maybe_echo t slot;
        if slot.delivered then begin
          vertex_available t slot v;
          maybe_fetch_block t slot
        end
      end
    end
  end

and maybe_echo t slot =
  match slot.vertex with
  | None -> ()
  | Some v ->
      if not slot.echoed then begin
        (* Clan members echo only once they hold both the vertex and its
           block (§5); everybody else echoes on the vertex alone. *)
        let block_ok =
          (not (expects_block v))
          || (not (in_payload_clan_of t ~proposer:v.source))
          || slot.block <> None
        in
        if block_ok then begin
          slot.echoed <- true;
          trace_phase t ~sender:v.source ~round:v.round Trace.Echo;
          let signature =
            Keychain.sign t.keychain ~signer:t.me
              (Msg.echo_signing_string ~round:v.round ~source:v.source v.digest)
          in
          Net.broadcast t.net ~src:t.me
            (Msg.Echo
               {
                 round = v.round;
                 source = v.source;
                 vertex_digest = v.digest;
                 signer = t.me;
                 signature;
               })
        end
      end

(* --- ECHO / certificate -------------------------------------------- *)

and on_echo t ~round ~source ~digest ~signer ~signature =
  Prof.enter sec_echo;
  (* Slot and vote state are looked up before signature verification so the
     memoized signing string can be reused; a forged echo still only ever
     creates empty bookkeeping, never a vote. *)
  let slot = slot_of t ~round ~source in
  (* Once this node has made its certificate decision, every later echo is
     dead weight: the threshold branch below is the only consumer of the
     vote bookkeeping, and [fetch_vertex] snapshots its voter candidates at
     certification time. Skipping the ~n - 2f-1 post-certificate echoes
     (verify included) changes no message and no observable state. *)
  if not slot.cert_sent then begin
    let v = votes_of slot.echoes ~round ~source digest (Config.n t.config) in
    if Keychain.verify_hashed t.keychain ~signer v.signing_h signature then begin
      if Bitset.add v.voters signer then begin
        if Config.in_payload_clan t.config ~proposer:source signer then
          v.clan_votes <- v.clan_votes + 1;
        v.shares <- (signer, signature) :: v.shares;
        let clan_needed =
          Config.clan_echo_threshold t.config ~proposer:source
        in
        if
          Bitset.cardinal v.voters >= quorum t
          && v.clan_votes >= clan_needed
        then begin
          slot.cert_sent <- true;
          (* Sparse mode restricts certificate fan-out to the slot's f+1
             relayers (source, source+1, ..., source+f): at least one is
             honest, echo broadcasts are n-wide so every honest relayer
             reaches the same threshold whenever any honest node does, and
             the other n-f-1 redundant certificate broadcasts — the
             second n³ term in per-round message volume — disappear.
             Dense mode keeps the broadcast-by-everyone rule. *)
          if cert_relayer t ~source then
            match Keychain.aggregate t.keychain ~msg:v.signing v.shares with
            | None -> ()
            | Some agg ->
                Net.broadcast t.net ~src:t.me
                  (Msg.Echo_cert
                     {
                       round;
                       source;
                       vertex_digest = digest;
                       agg;
                       clan_echoes = v.clan_votes;
                     })
          else ();
          certified t slot digest
        end
      end
    end
  end;
  Prof.leave sec_echo

and on_echo_cert t ~round ~source ~digest ~agg =
  let slot = slot_of t ~round ~source in
  if not slot.delivered then begin
    let signers = Keychain.signers agg in
    let total = Bitset.cardinal signers in
    let clan_count =
      match Config.payload_clan t.config ~proposer:source with
      | None -> total
      | Some members ->
          Array.fold_left
            (fun acc m -> if Bitset.mem signers m then acc + 1 else acc)
            0 members
    in
    let v = votes_of slot.echoes ~round ~source digest (Config.n t.config) in
    if
      total >= quorum t
      && clan_count >= Config.clan_echo_threshold t.config ~proposer:source
      && Keychain.verify_aggregate_hashed t.keychain ~hash:v.signing_h agg
    then certified t slot digest
  end

(* The slot's vertex digest is certified: the RBC instance completes. *)
and certified t slot digest =
  if not slot.delivered then begin
    slot.delivered <- true;
    slot.agreed <- Some digest;
    trace_phase t ~sender:slot.s_source ~round:slot.s_round Trace.Cert;
    (* Discard an equivocator's non-certified copy. *)
    (match slot.vertex with
    | Some v when not (Digest32.equal v.digest digest) ->
        slot.vertex <- None;
        slot.block <- None
    | _ -> ());
    (match slot.vertex with
    | Some v -> vertex_available t slot v
    | None -> fetch_vertex t slot);
    maybe_fetch_block t slot
  end

(* --- vertex availability, DAG insertion ----------------------------- *)

and vertex_available t slot (v : Vertex.t) =
  (* Called once the slot is delivered AND the content is at hand. *)
  if slot.delivered then begin
    (match slot.block with
    | Some b when expects_block v -> block_available t slot b
    | _ -> ());
    try_insert t v
  end

and try_insert t (v : Vertex.t) =
  if not (Store.mem t.store ~round:v.round ~source:v.source) then begin
    if Store.parents_present t.store v then insert t v
    else
      match Store.missing_parents t.store v with
      | [] -> insert t v (* unreachable: presence check just failed *)
      | missing ->
          if not (Hashtbl.mem t.pending (v.round, v.source)) then begin
            let key = (v.round, v.source) in
            Hashtbl.replace t.pending key v;
            List.iter
              (fun (r : Vertex.vref) ->
                let slot = (r.round, r.source) in
                match Hashtbl.find_opt t.waiters slot with
                | Some l -> if not (List.mem key !l) then l := key :: !l
                | None -> Hashtbl.replace t.waiters slot (ref [ key ]))
              missing;
            request_parents t v missing
          end
  end

and insert t (v : Vertex.t) =
  (* Journal before acting: a crash after this point replays the vertex,
     so nothing derived from it (votes, commits, echoes) is ever lost. *)
  t.on_deliver v;
  Store.add t.store v;
  Hashtbl.remove t.pending (v.round, v.source);
  Metrics.incr t.obsh.o_inserted;
  if Trace.enabled t.obsh.o_trace then
    Trace.emit t.obsh.o_trace ~ts:(Engine.now t.engine)
      (Trace.Vertex_deliver { node = t.me; round = v.round; source = v.source });
  if not (Hashtbl.mem t.covered (v.round, v.source)) then
    Hashtbl.replace t.uncovered (v.round, v.source) v;
  (* Wake only the children buffered on this slot. A woken child may still
     miss other parents (its waiter entries on those slots remain), so it
     is re-checked, not blindly inserted. *)
  (match Hashtbl.find_opt t.waiters (v.round, v.source) with
  | None -> ()
  | Some l ->
      Hashtbl.remove t.waiters (v.round, v.source);
      List.iter
        (fun key ->
          match Hashtbl.find_opt t.pending key with
          | Some child when Store.parents_present t.store child ->
              insert t child
          | Some _ | None -> ())
        (List.rev !l));
  try_commit t;
  maybe_advance t;
  check_caught_up t

(* --- missing data sync ---------------------------------------------- *)

and request_parents t (child : Vertex.t) missing =
  List.iter
    (fun (r : Vertex.vref) ->
      let slot = slot_of t ~round:r.round ~source:r.source in
      if slot.vertex = None && not slot.fetching_vertex then begin
        slot.fetching_vertex <- true;
        (* Ask the child's proposer first (it certainly held the parent),
           falling back to the parent's own source. *)
        vertex_fetch_loop t slot ~cycles:0 ~ring:2 [ child.source; r.source ]
      end;
      (* The child is RBC-delivered, so a quorum certified its content —
         edges included. The edge digest therefore certifies the parent
         too: complete the parent's RBC instance by reference, so a node
         that lost every echo for it (e.g. behind a partition) can still
         deliver via fetch and walk the chain back to its frontier. *)
      certified t slot r.digest)
    missing

and fetch_vertex ?(cycles = 0) ?(last = 0) t slot =
  if not slot.fetching_vertex then begin
    slot.fetching_vertex <- true;
    (* Anyone who echoed the certified digest has seen the vertex. *)
    let candidates =
      match slot.agreed with
      | Some d -> (
          match Digest32.Tbl.find_opt slot.echoes d with
          | Some v -> List.filter (fun i -> i <> t.me) (Bitset.to_list v.voters)
          | None -> [])
      | None -> []
    in
    let candidates =
      if candidates = [] then [ slot.s_source ] else candidates
    in
    (* Reset the sweep backoff on progress: a grown candidate set means new
       echoes landed since the last sweep, so someone reachable has it. *)
    let cycles = if List.length candidates > last then 0 else cycles in
    vertex_fetch_loop t slot ~cycles ~ring:(List.length candidates) candidates
  end

and vertex_fetch_loop t slot ~cycles ~ring candidates =
  if (not t.halted) && slot.vertex = None && slot.s_round >= Store.floor t.store
  then
    match candidates with
    | [] ->
        (* Start over — delivery guarantees someone has it — but with the
           completed-sweep counter driving an exponential backoff capped at
           16 x sync_retry, matching the TA-RBC pull cycle: a muted or
           griefing source must not turn the fetch path into a constant-rate
           pull storm. *)
        let backoff = t.params.sync_retry * (1 lsl min cycles 4) in
        Engine.schedule_after t.engine backoff (fun () ->
            slot.fetching_vertex <- false;
            if slot.vertex = None then
              fetch_vertex ~cycles:(cycles + 1) ~last:ring t slot)
    | target :: rest ->
        Metrics.incr t.obsh.o_pull_retries;
        trace_phase t ~sender:slot.s_source ~round:slot.s_round Trace.Pull_retry;
        Net.send t.net ~src:t.me ~dst:target
          (Msg.Vertex_request { round = slot.s_round; source = slot.s_source });
        Engine.schedule_after t.engine t.params.sync_retry (fun () ->
            vertex_fetch_loop t slot ~cycles ~ring rest)

and maybe_fetch_block ?(cycles = 0) t slot =
  match slot.vertex with
  | Some v
    when slot.delivered && slot.block = None && expects_block v
         && in_payload_clan_of t ~proposer:v.source && not slot.fetching_block
    ->
      slot.fetching_block <- true;
      let clan =
        match Config.payload_clan t.config ~proposer:v.source with
        | Some members -> Array.to_list members
        | None -> []
      in
      block_fetch_loop t slot ~cycles
        (List.filter (fun i -> i <> t.me) clan)
  | _ -> ()

and block_fetch_loop t slot ~cycles candidates =
  if (not t.halted) && slot.block = None && slot.s_round >= Store.floor t.store
  then
    match candidates with
    | [] ->
        (* Same capped exponential backoff as the vertex sweep. The block
           candidate set is the (fixed) payload clan, so there is no grown-
           candidate reset; a fresh [maybe_fetch_block] trigger (the flag
           cleared by success or GC) starts over at full rate. *)
        let backoff = t.params.sync_retry * (1 lsl min cycles 4) in
        Engine.schedule_after t.engine backoff (fun () ->
            slot.fetching_block <- false;
            maybe_fetch_block ~cycles:(cycles + 1) t slot)
    | target :: rest ->
        Metrics.incr t.obsh.o_pull_retries;
        trace_phase t ~sender:slot.s_source ~round:slot.s_round Trace.Pull_retry;
        Net.send t.net ~src:t.me ~dst:target
          (Msg.Block_request { round = slot.s_round; source = slot.s_source });
        Engine.schedule_after t.engine t.params.sync_retry (fun () ->
            block_fetch_loop t slot ~cycles rest)

and on_block_request t ~src ~round ~source =
  let slot = slot_of t ~round ~source in
  match slot.block with
  | Some block ->
      let served = Option.value ~default:0 (Hashtbl.find_opt slot.served src) in
      if served < t.params.pull_budget then begin
        Hashtbl.replace slot.served src (served + 1);
        Net.send t.net ~src:t.me ~dst:src (Msg.Block_reply { block })
      end
  | None -> ()

and on_block_reply t (b : Block.t) =
  let slot = slot_of t ~round:b.round ~source:b.proposer in
  match slot.vertex with
  | Some v
    when slot.block = None
         && Digest32.equal (Block.digest b) v.block_digest
         && in_payload_clan_of t ~proposer:b.proposer ->
      slot.block <- Some b;
      block_available t slot b
  | _ -> ()

and block_available t slot b =
  if not (Hashtbl.mem t.blocks (slot.s_round, slot.s_source)) then begin
    Hashtbl.replace t.blocks (slot.s_round, slot.s_source) b;
    t.on_block b
  end

and on_vertex_request t ~src ~round ~source =
  let slot = slot_of t ~round ~source in
  match slot.vertex with
  | Some vertex when slot.delivered ->
      let served = Option.value ~default:0 (Hashtbl.find_opt slot.served src) in
      if served < t.params.pull_budget then begin
        Hashtbl.replace slot.served src (served + 1);
        let block =
          if Config.in_payload_clan t.config ~proposer:source src then slot.block
          else None
        in
        Net.send t.net ~src:t.me ~dst:src (Msg.Vertex_reply { vertex; block })
      end
  | _ -> ()

and on_vertex_reply t (v : Vertex.t) block =
  (* Recovery progress metric: count each distinct round we receive sync /
     pull material for while catching up. *)
  if t.syncing && not (Hashtbl.mem t.sync_seen_rounds v.round) then begin
    Hashtbl.replace t.sync_seen_rounds v.round ();
    Metrics.incr t.obsh.o_sync_rounds
  end;
  let slot = slot_of t ~round:v.round ~source:v.source in
  if slot.vertex = None && vertex_valid t v then begin
    (* Accept only content matching the certified digest (if certified) or
       buffer it as the first copy otherwise. *)
    let acceptable =
      match slot.agreed with
      | Some d -> Digest32.equal v.digest d
      | None -> true
    in
    if acceptable then begin
      slot.vertex <- Some v;
      register_vote t v;
      (match block with
      | Some b
        when in_payload_clan_of t ~proposer:v.source
             && Digest32.equal (Block.digest b) v.block_digest ->
          slot.block <- Some b
      | _ -> ());
      maybe_echo t slot;
      if slot.delivered then begin
        vertex_available t slot v;
        maybe_fetch_block t slot
      end
    end
  end

(* --- state sync (crash recovery) ------------------------------------ *)

and on_sync_request t ~src ~from_round =
  (* Announce our window, then stream a bounded chunk of certified
     vertices starting at the requester's frontier. Sync replies reuse the
     ordinary [Vertex_reply] path (same validation, same insertion), and
     are streamed in ascending round order so parents always precede
     children. The requester re-asks from its new frontier, so a chunk cap
     bounds per-request burst size without capping total transfer. *)
  let floor = Store.floor t.store in
  let highest = Store.highest_round t.store in
  Net.send t.net ~src:t.me ~dst:src (Msg.Sync_reply { floor; highest });
  let lo = max from_round floor in
  let hi = min highest (lo + t.params.sync_chunk - 1) in
  for r = lo to hi do
    List.iter
      (fun (vertex : Vertex.t) ->
        let block =
          if Config.in_payload_clan t.config ~proposer:vertex.source src then
            Hashtbl.find_opt t.blocks (vertex.round, vertex.source)
          else None
        in
        Net.send t.net ~src:t.me ~dst:src (Msg.Vertex_reply { vertex; block }))
      (Store.vertices_at t.store r)
  done

and on_sync_reply t ~floor ~highest =
  if t.syncing then begin
    t.sync_replies <- t.sync_replies + 1;
    if highest > t.sync_target then t.sync_target <- highest;
    (* The peer garbage-collected past our frontier: the gap can never be
       refilled vertex by vertex. Adopt the peer's floor as a join point —
       everything below it is already committed by a quorum and pruned
       everywhere we could ask. *)
    if floor > Store.highest_round t.store + 1 then begin
      Store.prune_below t.store ~round:floor;
      if floor - 1 > t.last_committed then t.last_committed <- floor - 1;
      t.snapshot_joined <- true;
      let doomed =
        Hashtbl.fold
          (fun ((r, _) as k) _ acc -> if r < floor then k :: acc else acc)
          t.pending []
      in
      List.iter (Hashtbl.remove t.pending) doomed;
      let doomed_waits =
        Hashtbl.fold
          (fun ((r, _) as k) _ acc -> if r < floor then k :: acc else acc)
          t.waiters []
      in
      List.iter (Hashtbl.remove t.waiters) doomed_waits;
      (* Surviving children whose missing parents fell below the adopted
         floor will never be woken by the waiter index (those parents are
         gone for good); they are satisfied now. *)
      let unblocked =
        Hashtbl.fold
          (fun _ v acc ->
            if Store.parents_present t.store v then v :: acc else acc)
          t.pending []
      in
      List.iter (fun v -> insert t v) unblocked;
      trace_recovery t ~stage:"snapshot_join" ~round:floor
    end;
    check_caught_up t
  end

and check_caught_up t =
  if
    t.syncing && t.sync_replies > 0
    && Store.highest_round t.store >= t.sync_target
    && t.round > t.sync_target
  then begin
    (* Caught up: our DAG covers every round a peer reported and our round
       clock has moved past them, so any round we now propose in is fresh —
       no journalled proposal can exist for it. *)
    t.syncing <- false;
    if t.round > t.min_propose_round then t.min_propose_round <- t.round;
    Metrics.set t.obsh.o_recovery_wall
      (Time.to_ms (Engine.now t.engine - t.recovery_started_at));
    trace_recovery t ~stage:"caught_up" ~round:t.round;
    Log.debug (fun m -> m "node %d caught up at r%d" t.me t.round);
    arm_timer t;
    maybe_propose t
  end

and sync_tick t ~cursor ~cycles ~last_frontier =
  if (not t.halted) && t.syncing then begin
    let n = Config.n t.config in
    let frontier = Store.highest_round t.store in
    (* Progress resets the backoff; a dry spell (partitioned peers, lost
       replies) backs off like the pull path, capped at 16x. *)
    let cycles = if frontier > last_frontier then 0 else cycles in
    let peer = cursor mod n in
    let peer = if peer = t.me then (peer + 1) mod n else peer in
    Metrics.incr t.obsh.o_pull_retries;
    Net.send t.net ~src:t.me ~dst:peer
      (Msg.Sync_request { from_round = frontier + 1 });
    let backoff = t.params.sync_retry * (1 lsl min cycles 4) in
    Engine.schedule_after t.engine backoff (fun () ->
        sync_tick t ~cursor:(peer + 1) ~cycles:(cycles + 1)
          ~last_frontier:frontier);
    check_caught_up t
  end

(* --- leader votes and commits --------------------------------------- *)

and register_vote t (v : Vertex.t) =
  if v.round > 0 then begin
    let prev = v.round - 1 in
    let lead = leader_of t prev in
    if Vertex.has_strong_edge_to v ~round:prev ~source:lead then begin
      let votes =
        match Hashtbl.find_opt t.leader_votes prev with
        | Some b -> b
        | None ->
            let b = Bitset.create (Config.n t.config) in
            Hashtbl.replace t.leader_votes prev b;
            b
      in
      if Bitset.add votes v.source then
        if Bitset.cardinal votes >= quorum t then begin
          if not (Hashtbl.mem t.commit_ready prev) then begin
            Hashtbl.replace t.commit_ready prev ();
            try_commit t
          end
        end
    end
  end

and try_commit t =
  Prof.enter sec_commit;
  (* Process direct-commit-ready leader rounds in ascending order; each one
     drags in skipped leaders reachable by strong paths (indirect rule). *)
  let rec next_ready r best =
    (* find the highest ready round whose leader vertex is present *)
    if r > Store.highest_round t.store + 1 then best
    else begin
      let best =
        if
          Hashtbl.mem t.commit_ready r
          && Store.mem t.store ~round:r ~source:(leader_of t r)
        then Some r
        else best
      in
      next_ready (r + 1) best
    end
  in
  (match next_ready (t.last_committed + 1) None with
  | None -> ()
  | Some r ->
      let leader_vertex s =
        Store.find t.store ~round:s ~source:(leader_of t s)
      in
      let anchor = Option.get (leader_vertex r) in
      (* Walk back across skipped rounds collecting indirectly committed
         leaders. *)
      let chain = ref [ anchor ] in
      let current = ref anchor in
      for s = r - 1 downto t.last_committed + 1 do
        match leader_vertex s with
        | Some l
          when Store.strong_path t.store !current ~round:s ~source:l.source ->
            chain := l :: !chain;
            current := l
        | _ -> ()
      done;
      List.iter
        (fun (l : Vertex.t) ->
          let history =
            Store.causal_history t.store l ~skip:(fun ~round ~source ->
                Hashtbl.mem t.ordered (round, source))
          in
          List.iter
            (fun (v : Vertex.t) ->
              Hashtbl.replace t.ordered (v.round, v.source) ();
              t.ordered_hash <-
                mix_commit t.ordered_hash ~round:v.round ~source:v.source;
              if Trace.enabled t.obsh.o_trace then
                Trace.emit t.obsh.o_trace ~ts:(Engine.now t.engine)
                  (Trace.Vertex_commit
                     {
                       node = t.me;
                       round = v.round;
                       source = v.source;
                       leader_round = l.round;
                     }))
            history;
          t.ordered_total <- t.ordered_total + List.length history;
          Metrics.add t.obsh.o_committed (List.length history);
          Log.debug (fun m ->
              m "node %d commits leader r%d (%d vertices)" t.me l.round
                (List.length history));
          t.on_commit ~leader:l history)
        !chain;
      t.last_committed <- r;
      garbage_collect t;
      try_commit t);
  Prof.leave sec_commit

and garbage_collect t =
  let horizon = t.last_committed - t.params.gc_depth in
  if horizon > 0 then begin
    Store.prune_below t.store ~round:horizon;
    let drop_below tbl =
      let doomed =
        Hashtbl.fold
          (fun ((r, _) as k) _ acc -> if r < horizon then k :: acc else acc)
          tbl []
      in
      List.iter (Hashtbl.remove tbl) doomed
    in
    drop_below t.ordered;
    drop_below t.covered;
    drop_below t.uncovered;
    drop_below t.blocks;
    drop_below t.pending;
    drop_below t.waiters;
    let drop_slots =
      Hashtbl.fold
        (fun k s acc -> if s.s_round < horizon then k :: acc else acc)
        t.slots []
    in
    List.iter (Hashtbl.remove t.slots) drop_slots;
    let drop_rounds tbl =
      let doomed =
        Hashtbl.fold (fun r _ acc -> if r < horizon then r :: acc else acc) tbl []
      in
      List.iter (Hashtbl.remove tbl) doomed
    in
    drop_rounds t.leader_votes;
    drop_rounds t.commit_ready;
    drop_rounds t.timeout_shares;
    drop_rounds t.no_vote_shares;
    drop_rounds t.tcs;
    drop_rounds t.nvcs;
    drop_rounds t.timeout_sent;
    (* Raising the floor may satisfy a pending vertex whose only missing
       parents were just pruned (references below the floor count as
       present) — those parents will never insert, so the waiter index
       cannot wake such children; rescan the (small, post-drop) pending
       set directly. *)
    let unblocked =
      Hashtbl.fold
        (fun _ v acc ->
          if Store.parents_present t.store v then v :: acc else acc)
        t.pending []
    in
    List.iter (fun v -> insert t v) unblocked
  end

(* --- round progression ---------------------------------------------- *)

and maybe_advance t =
  if t.started then begin
    let r = t.round in
    (* While state-syncing we advance on a quorum of vertices alone: the
       leader-or-TC condition is unattainable for history (timeout-share
       quorums are exact, so old TCs can never re-form for a late joiner),
       and it only exists to pace live rounds anyway. *)
    if
      Store.count_at t.store r >= quorum t
      && (t.syncing
         || Store.mem t.store ~round:r ~source:(leader_of t r)
         || Hashtbl.mem t.tcs r)
    then advance t (r + 1)
    else maybe_propose t
  end

and advance t r =
  if r > t.round then begin
    t.round <- r;
    t.proposed <- false;
    (* No round timer during state sync: historical rounds are not late,
       and timeout shares for them would be noise. [check_caught_up] arms
       the timer when live operation resumes. *)
    if not t.syncing then arm_timer t;
    maybe_propose t;
    (* Catch up if successor rounds are already complete. *)
    maybe_advance t
  end

and maybe_propose t =
  if
    t.started && (not t.proposed) && (not t.syncing)
    && t.round >= t.min_propose_round
  then begin
    let r = t.round in
    if r = 0 then propose t r
    else begin
      let prev_leader = leader_of t (r - 1) in
      let have_leader = Store.mem t.store ~round:(r - 1) ~source:prev_leader in
      if t.me = leader_of t r && not have_leader then begin
        (* The round leader may only propose without an edge to the previous
           leader when it holds a no-vote certificate; otherwise it waits
           for whichever arrives first. *)
        if Hashtbl.mem t.nvcs (r - 1) then propose t r
      end
      else propose t r
    end
  end

(* Mark every vertex reachable from [refs] as covered by my proposals, so
   it never needs a weak edge from me again. Amortised O(1) per vertex. *)
and mark_covered t refs =
  let rec visit (r : Vertex.vref) =
    if not (Hashtbl.mem t.covered (r.round, r.source)) then begin
      Hashtbl.replace t.covered (r.round, r.source) ();
      Hashtbl.remove t.uncovered (r.round, r.source);
      match Store.find_ref t.store r with
      | Some v ->
          Array.iter visit v.strong_edges;
          Array.iter visit v.weak_edges
      | None -> ()
    end
  in
  List.iter visit refs

and propose t r =
  Prof.enter sec_propose;
  t.proposed <- true;
  (* Journal the round before any VAL leaves: after a crash the replayed
     marker forbids re-proposing it, so we can never equivocate. *)
  t.on_propose ~round:r;
  (* The origin anchor of this instance's latency attribution: everything
     downstream (VAL arrival, echo quorum, commit) is measured from here. *)
  trace_phase t ~sender:t.me ~round:r Trace.Propose;
  let policy = Config.edge_policy t.config in
  let strong_edges =
    if r = 0 then [||]
    else
      match policy with
      | Config.Dense ->
          Store.vertices_at t.store (r - 1)
          |> List.map Vertex.ref_of |> Array.of_list
      | Config.Sparse { k; seed } -> sparse_strong_parents t ~k ~seed r
  in
  mark_covered t (Array.to_list strong_edges);
  (* Weak edges: everything delivered that my causal history still misses
     (older than the strong-edge round), so total ordering reaches it.
     Sparse mode caps the batch per proposal; the leftover stays uncovered
     and drains oldest-first over later rounds. *)
  let weak_cap = Config.sparse_weak_cap policy in
  let weak_edges =
    Hashtbl.fold
      (fun (round, _) v acc -> if round < r - 1 then v :: acc else acc)
      t.uncovered []
    |> List.sort (fun (a : Vertex.t) b ->
           Vertex.Id.compare (a.round, a.source) (b.round, b.source))
    |> (fun l ->
         if List.compare_length_with l weak_cap <= 0 then l
         else List.filteri (fun i _ -> i < weak_cap) l)
    |> List.map Vertex.ref_of
    |> Array.of_list
  in
  mark_covered t (Array.to_list weak_edges);
  let prev_leader_edge =
    r > 0
    && Array.exists
         (fun (e : Vertex.vref) -> e.source = leader_of t (r - 1))
         strong_edges
  in
  (* Proposing without the leader edge IS the decision not to vote for
     the previous leader: this is the only point where the no-vote share
     may be sent (see [on_round_timeout]). *)
  if r > 0 && (not prev_leader_edge) && t.me <> leader_of t r then begin
    let nv =
      Keychain.sign t.keychain ~signer:t.me
        (Cert.signing_string Cert.No_vote (r - 1))
    in
    Net.send t.net ~src:t.me ~dst:(leader_of t r)
      (Msg.No_vote_share { round = r - 1; signer = t.me; signature = nv })
  end;
  let nvc =
    if r > 0 && t.me = leader_of t r && not prev_leader_edge then
      Hashtbl.find_opt t.nvcs (r - 1)
    else None
  in
  let tc =
    if r > 0 && t.me <> leader_of t r && not prev_leader_edge then
      Hashtbl.find_opt t.tcs (r - 1)
    else None
  in
  let block =
    if Config.is_block_proposer t.config t.me then
      Some (Block.make ~proposer:t.me ~round:r ~txns:(t.make_block ~round:r))
    else None
  in
  let block_digest =
    match block with Some b -> Block.digest b | None -> Digest32.zero
  in
  let vertex =
    Vertex.make ~round:r ~source:t.me ~block_digest ~strong_edges ~weak_edges
      ~compact:(policy <> Config.Dense) ?nvc ?tc ()
  in
  let signature =
    Keychain.sign t.keychain ~signer:t.me (val_signing_string vertex)
  in
  Log.debug (fun m ->
      m "node %d proposes r%d (%d strong, %d weak)" t.me r
        (Array.length strong_edges) (Array.length weak_edges));
  for dst = 0 to Config.n t.config - 1 do
    let block_copy =
      match block with
      | Some _ when Config.in_payload_clan t.config ~proposer:t.me dst -> block
      | Some _ | None -> None
    in
    Net.send t.net ~src:t.me ~dst
      (Msg.Val { vertex; block = block_copy; signature })
  done;
  Prof.leave sec_propose

and arm_timer t =
  t.timer_epoch <- t.timer_epoch + 1;
  let epoch = t.timer_epoch in
  let r = t.round in
  Engine.schedule_after t.engine t.params.round_timeout (fun () ->
      if t.timer_epoch = epoch && t.round = r then on_round_timeout t r)

and on_round_timeout t r =
  if (not t.halted) && not (Hashtbl.mem t.timeout_sent r) then begin
    Hashtbl.replace t.timeout_sent r ();
    let signature =
      Keychain.sign t.keychain ~signer:t.me (Cert.signing_string Cert.Timeout r)
    in
    Net.broadcast t.net ~src:t.me
      (Msg.Timeout_share { round = r; signer = t.me; signature });
    (* A no-vote for round r is a promise not to vote for its leader, and
       the vote is the strong edge in our round r+1 vertex — so the
       promise can only be made where the vote decision is made, in
       [propose]. Sending it here and then voting anyway once the
       leader's late vertex arrived handed 2f+1 votes AND a no-vote
       certificate to disjoint observers, splitting the commit order (a
       schedule-checker find — EXPERIMENTS.md). The one exception is the
       next leader's own share: it never leaves the node (the aggregate
       is embedded only if it does propose leaderlessly), so minting it
       early is safe and keeps the no-vote quorum reachable when the
       round-r leader is down. *)
    if
      t.me = leader_of t (r + 1)
      && not (Store.mem t.store ~round:r ~source:(leader_of t r))
    then begin
      let nv =
        Keychain.sign t.keychain ~signer:t.me (Cert.signing_string Cert.No_vote r)
      in
      Net.send t.net ~src:t.me ~dst:t.me
        (Msg.No_vote_share { round = r; signer = t.me; signature = nv })
    end
  end

and on_timeout_share t ~round ~signer ~signature =
  if Keychain.verify t.keychain ~signer (Cert.signing_string Cert.Timeout round) signature
  then begin
    let box = box_of t.timeout_shares round (Config.n t.config) in
    if Bitset.add box.signers signer then begin
      box.shares <- (signer, signature) :: box.shares;
      if Bitset.cardinal box.signers = quorum t && not (Hashtbl.mem t.tcs round)
      then
        match Cert.make t.keychain Cert.Timeout ~round box.shares with
        | Some c ->
            Hashtbl.replace t.tcs round c;
            Net.broadcast t.net ~src:t.me (Msg.Timeout_cert c);
            maybe_advance t
        | None -> ()
    end
  end

and on_timeout_cert t (c : Cert.t) =
  if
    c.kind = Cert.Timeout
    && (not (Hashtbl.mem t.tcs c.round))
    && Cert.verify t.keychain ~quorum:(quorum t) c
  then begin
    Hashtbl.replace t.tcs c.round c;
    maybe_advance t
  end

and on_no_vote_share t ~round ~signer ~signature =
  if
    t.me = leader_of t (round + 1)
    && Keychain.verify t.keychain ~signer
         (Cert.signing_string Cert.No_vote round)
         signature
  then begin
    let box = box_of t.no_vote_shares round (Config.n t.config) in
    if Bitset.add box.signers signer then begin
      box.shares <- (signer, signature) :: box.shares;
      if
        Bitset.cardinal box.signers = quorum t
        && not (Hashtbl.mem t.nvcs round)
      then
        match Cert.make t.keychain Cert.No_vote ~round box.shares with
        | Some c ->
            Hashtbl.replace t.nvcs round c;
            maybe_propose t
        | None -> ()
    end
  end

let start t =
  t.started <- true;
  arm_timer t;
  maybe_propose t

(* ------------------------------------------------------------------ *)
(* Crash recovery *)

let halt t = t.halted <- true
let recovering t = t.syncing
let snapshot_joined t = t.snapshot_joined

let note_proposed t ~round =
  if round + 1 > t.min_propose_round then t.min_propose_round <- round + 1

let replay_block t (b : Block.t) =
  let slot = slot_of t ~round:b.round ~source:b.proposer in
  if slot.block = None then slot.block <- Some b;
  if not (Hashtbl.mem t.blocks (b.round, b.proposer)) then
    Hashtbl.replace t.blocks (b.round, b.proposer) b

let replay_vertex t (v : Vertex.t) =
  if
    v.round >= Store.floor t.store
    && not (Store.mem t.store ~round:v.round ~source:v.source)
  then begin
    let slot = slot_of t ~round:v.round ~source:v.source in
    (* The vertex was journalled after RBC delivery, so its digest was
       certified and our echo (if any) is long sent: restore the slot in
       its terminal state so nothing is re-broadcast during replay. *)
    slot.vertex <- Some v;
    slot.delivered <- true;
    slot.agreed <- Some v.digest;
    slot.echoed <- true;
    slot.cert_sent <- true;
    (match Hashtbl.find_opt t.blocks (v.round, v.source) with
    | Some b -> slot.block <- Some b
    | None -> ());
    register_vote t v;
    try_insert t v
  end

let start_recovery t =
  t.started <- true;
  t.syncing <- true;
  t.recovery_started_at <- Engine.now t.engine;
  let frontier = Store.highest_round t.store in
  if frontier > t.sync_target then t.sync_target <- frontier;
  trace_recovery t ~stage:"sync_start" ~round:frontier;
  Log.debug (fun m -> m "node %d starts state sync from r%d" t.me frontier);
  sync_tick t ~cursor:(t.me + 1) ~cycles:0 ~last_frontier:(-1);
  maybe_advance t

let block_of t ~round ~source = Hashtbl.find_opt t.blocks (round, source)
let vertex_of t ~round ~source = Store.find t.store ~round ~source

(* Heap census: this layer's retained state, split by subsystem. Slot
   bookkeeping is estimated flat (vote bitsets + share lists scale with n);
   stored blocks are charged at their wire size. See docs/PROFILING.md. *)
let census t =
  let n = Config.n t.config in
  let slot_words = Hashtbl.length t.slots * (24 + n) in
  let pending_words =
    Hashtbl.fold
      (fun _ (v : Vertex.t) acc ->
        acc + 22 + (9 * (Array.length v.strong_edges + Array.length v.weak_edges)))
      t.pending 0
  in
  let aux_words =
    6
    * (Hashtbl.length t.waiters + Hashtbl.length t.ordered
      + Hashtbl.length t.covered + Hashtbl.length t.uncovered
      + Hashtbl.length t.leader_votes + Hashtbl.length t.timeout_shares
      + Hashtbl.length t.no_vote_shares)
  in
  let block_words =
    Hashtbl.fold (fun _ b acc -> acc + 8 + (Block.wire_size b / 8)) t.blocks 0
  in
  [
    ("consensus.blocks", block_words);
    ("consensus.state", slot_words + pending_words + aux_words);
    ("dag.store", Store.approx_live_words t.store);
    ("keychain", Keychain.approx_live_words t.keychain);
  ]

let create ~me ~config ~keychain ~engine ~net ?(params = default_params)
    ?(obs = Obs.disabled) ~make_block ~on_commit ?(on_block = fun _ -> ())
    ?(on_deliver = fun _ -> ()) ?(on_propose = fun ~round:_ -> ()) () =
  let node_label = [ ("node", string_of_int me) ] in
  let obsh =
    {
      o_trace = obs.Obs.trace;
      o_pull_retries =
        Metrics.counter obs.Obs.metrics ~labels:node_label "sailfish_pull_retries";
      o_inserted =
        Metrics.counter obs.Obs.metrics ~labels:node_label "dag_vertices_inserted";
      o_committed =
        Metrics.counter obs.Obs.metrics ~labels:node_label "dag_vertices_committed";
      o_sync_rounds =
        Metrics.counter obs.Obs.metrics ~labels:node_label
          "recovery_rounds_fetched";
      o_recovery_wall =
        Metrics.gauge obs.Obs.metrics ~labels:node_label "recovery_wall_ms";
    }
  in
  let t =
    {
      me;
      config;
      keychain;
      engine;
      net;
      params;
      obsh;
      store = Store.create ~n:(Config.n config);
      make_block;
      on_commit;
      on_block;
      slots = Hashtbl.create 256;
      pending = Hashtbl.create 16;
      waiters = Hashtbl.create 16;
      blocks = Hashtbl.create 256;
      round = 0;
      proposed = false;
      started = false;
      timer_epoch = 0;
      halted = false;
      syncing = false;
      sync_target = -1;
      sync_replies = 0;
      min_propose_round = 0;
      snapshot_joined = false;
      recovery_started_at = Time.zero;
      sync_seen_rounds = Hashtbl.create 64;
      on_deliver;
      on_propose;
      timeout_sent = Hashtbl.create 8;
      timeout_shares = Hashtbl.create 8;
      no_vote_shares = Hashtbl.create 8;
      tcs = Hashtbl.create 8;
      nvcs = Hashtbl.create 8;
      leader_votes = Hashtbl.create 64;
      commit_ready = Hashtbl.create 64;
      last_committed = -1;
      ordered = Hashtbl.create 1024;
      ordered_total = 0;
      ordered_hash = 0;
      covered = Hashtbl.create 1024;
      uncovered = Hashtbl.create 64;
    }
  in
  Net.set_handler net me (fun ~src msg -> handle t ~src msg);
  t
