(** Sailfish-style DAG BFT consensus with clan-based dissemination.

    One module implements all three protocols of the evaluation (§7): the
    {!Clanbft_types.Config.dissemination} mode selects between baseline
    Sailfish ([Full]), single-clan Sailfish and multi-clan Sailfish; the
    consensus logic — DAG construction, leader commit rule, total ordering —
    is byte-for-byte identical across modes, exactly as the paper's generic
    technique prescribes ("the DAG construction, commit, and ordering rules
    remain unchanged").

    {2 Dissemination}

    Each (round, source) slot runs one merged broadcast instance (§5):
    round-optimal signed RBC for the vertex fused with the two-round
    tribe-assisted RBC for the block. VAL carries the vertex to everyone and
    the block only to the proposer's payload clan; clan members ECHO only
    once they hold {e both}; an ECHO certificate (2f+1 ECHOs, ≥ fc+1 from
    the clan) completes delivery. Missing blocks and vertices are pulled off
    the critical path and never block round progression.

    {2 Consensus rules}

    Round-robin leaders. A party advances from round r on delivering 2f+1
    round-r vertices including the leader's — or, after its timer fires, on
    a timeout certificate. Round-(r+1) vertices vote for the round-r leader
    by carrying a strong edge to it; a leader vertex commits {e directly}
    when 2f+1 round-(r+1) VAL messages with such an edge arrive (1 RBC + δ
    — Sailfish's 3δ path), and {e indirectly} when a later committed leader
    reaches it by strong paths. Committing a leader totally orders its
    not-yet-ordered causal history by ascending (round, source). The
    round-(r+1) leader proposes without an edge to the round-r leader only
    with a no-vote certificate; non-leaders justify a missing leader edge
    with a timeout certificate (Fig. 4's [nvc] / [tc] fields). *)

open Clanbft_types
open Clanbft_crypto

type params = {
  round_timeout : Clanbft_sim.Time.span;
      (** timer before a party gives up on a round's leader *)
  sync_retry : Clanbft_sim.Time.span;
      (** re-request cadence for missing blocks / vertices *)
  pull_budget : int;  (** served pulls per (slot, peer): rate limiting *)
  gc_depth : int;  (** rounds kept below the last committed leader *)
  sync_chunk : int;
      (** max rounds of vertices streamed per state-sync request *)
}

val default_params : params

type t

val create :
  me:int ->
  config:Config.t ->
  keychain:Keychain.t ->
  engine:Clanbft_sim.Engine.t ->
  net:Msg.t Clanbft_sim.Net.t ->
  ?params:params ->
  ?obs:Clanbft_obs.Obs.t ->
  make_block:(round:int -> Transaction.t array) ->
  on_commit:(leader:Vertex.t -> Vertex.t list -> unit) ->
  ?on_block:(Block.t -> unit) ->
  ?on_deliver:(Vertex.t -> unit) ->
  ?on_propose:(round:int -> unit) ->
  unit ->
  t
(** Wires the node to the network (installs its handler) but does not start
    it. [make_block] is the mempool hook, called once per round this node
    proposes a block in. [on_commit] receives each newly committed leader
    and its newly ordered causal history (ascending (round, source)) —
    the a_deliver stream. [on_block] fires whenever a block this node
    stores becomes locally available (dissemination or pull).

    [obs] (default {!Clanbft_obs.Obs.disabled}) receives RBC phase
    transitions (VAL accepted / ECHO sent / certificate), vertex
    deliveries and commits as trace events, and maintains the per-node
    counters [sailfish_pull_retries{node}], [dag_vertices_inserted{node}],
    [dag_vertices_committed{node}], [recovery_rounds_fetched{node}] and the
    gauge [recovery_wall_ms{node}]. Tracing never perturbs the run: with
    the same seed, a traced and an untraced run commit bit-identical
    sequences.

    [on_deliver] is the write-ahead-log hook: it fires with every vertex
    {e immediately before} it enters the DAG store, in insertion order (so
    the journal is parent-closed — every prefix of it is replayable).
    [on_propose] fires with the round number immediately before this
    node's VAL messages for that round are sent; journalling it forbids
    re-proposing the round after a crash (no equivocation). *)

val start : t -> unit
(** Propose the round-0 vertex and arm the first timer. *)

(** {1 Crash recovery}

    Tearing a replica down and bringing it back is a four-step dance (see
    [docs/RECOVERY.md]): {!halt} the old instance; re-[create] a fresh one
    (which re-installs the network handler, orphaning the old instance);
    replay the write-ahead log through {!replay_block}, {!replay_vertex}
    and {!note_proposed}; then {!start_recovery} instead of {!start}. *)

val halt : t -> unit
(** Permanently silence this instance: incoming messages are dropped and
    every pending timer / fetch / sync callback becomes a no-op. Models
    the process dying; pair with [Persist.crash] for its disk. *)

val replay_block : t -> Block.t -> unit
(** Restore one journalled block (call before the vertices that carry
    it). Does not re-fire [on_block]. *)

val replay_vertex : t -> Vertex.t -> unit
(** Restore one journalled (hence RBC-delivered) vertex: the slot is
    rebuilt in its terminal state — no echoes or certificates are re-sent
    — the leader vote is re-registered and the vertex re-inserted, firing
    [on_commit] for everything the replayed DAG re-orders. Replaying the
    log in append order yields a commit sequence that is a prefix of the
    pre-crash one. Vertices below the GC floor are skipped. *)

val note_proposed : t -> round:int -> unit
(** Record a journalled own-proposal marker: the node will never propose
    in [round] (or below) again, which rules out equivocation even though
    the original VAL may still be in flight. *)

val start_recovery : t -> unit
(** Start in state-sync mode instead of {!start}: announce the local
    frontier with [Sync_request]s (round-robin over peers, capped
    exponential backoff), insert the streamed certified vertices, and
    advance the round clock without the leader-or-TC pacing condition.
    The node proposes only once caught up: a peer replied, the DAG covers
    every round a peer reported, and the round clock has passed them —
    from then on it behaves exactly like a {!start}ed node. *)

val recovering : t -> bool
(** Still in state-sync mode (not yet caught up)? *)

val snapshot_joined : t -> bool
(** True if recovery had to skip a garbage-collected gap: every reachable
    peer had pruned past this node's frontier, so it adopted a peer's GC
    floor and its post-recovery ledger starts there instead of at the
    journal's end. Such a node's full-history fingerprint is not
    comparable to the others'. *)

val me : t -> int
val current_round : t -> int
val last_committed_round : t -> int
val committed_count : t -> int
(** Total vertices ordered so far. *)

val ordered_hash : t -> int
(** Chained fingerprint of this node's total order: every committed
    (round, source) is folded in commit order, so two replicas whose
    ledgers are prefix-consistent show identical values once they have
    committed equally many vertices — an O(1)-state invariant-observation
    hook for the [lib/check] explorer (and a quick cross-replica
    divergence probe in tests). *)

val block_of : t -> round:int -> source:int -> Block.t option
(** Locally available blocks (clan members only, in clan modes). *)

val dag_size : t -> int

val census : t -> (string * int) list
(** Heap-census rows for this node's consensus layer:
    [consensus.blocks], [consensus.state], [dag.store] and [keychain]
    approximate live words. See docs/PROFILING.md. *)

(** Low-level hooks for fault-injection tests: a Byzantine "node" is built
    by driving the network directly, but tests also need to peek at honest
    state. *)

val vertex_of : t -> round:int -> source:int -> Vertex.t option
