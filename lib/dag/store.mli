(** A node's local copy of the DAG.

    The store is a map from slots — (round, source) pairs — to delivered
    vertices, plus the traversals the Sailfish commit rules need:
    strong-path reachability ({!strong_path}, the indirect-commit test) and
    deterministic causal-history linearisation ({!causal_history}, the
    ordering step).

    {2 Invariants}

    - {b Closure}: a vertex is inserted only after all its parents (strong
      and weak edges) are present — the consensus layer buffers
      out-of-order arrivals behind {!missing_parents} — so every
      reachability query runs on a closed sub-DAG and needs no
      missing-edge handling.
    - {b Slot uniqueness}: one slot holds at most one vertex; the RBC layer
      guarantees conflicting vertices never both deliver, and {!add}
      rejects a second, different vertex for an occupied slot.
    - {b GC horizon}: {!prune_below} discards ordered rounds; references
      below the horizon count as present ({!missing_parents}) because
      their subtree was already ordered and collected.

    Rounds are dense small integers, so per-round storage is an array of
    [n] options: slot lookup is O(1), {!vertices_at} is O(n). Observability
    of insertions/commits lives one layer up (see
    {!Clanbft_consensus.Sailfish} and [docs/OBSERVABILITY.md] —
    [dag_vertices_inserted], [dag_vertices_committed],
    [vertex_deliver]/[vertex_commit] trace events). *)

open Clanbft_types

type t

val create : n:int -> t
(** An empty DAG for a tribe of [n] parties (sources range over
    [0 .. n-1]). *)

val n : t -> int

val add : t -> Vertex.t -> unit
(** Insert a vertex whose parents are all present. Idempotent for the
    identical vertex.

    @raise Invalid_argument if the slot is already occupied by a
    {e different} vertex (an equivocation that RBC should have prevented)
    or a parent is missing (caller failed to consult
    {!missing_parents}). *)

val mem : t -> round:int -> source:int -> bool
val find : t -> round:int -> source:int -> Vertex.t option

val find_ref : t -> Vertex.vref -> Vertex.t option
(** Lookup by reference; [None] also when the stored vertex's digest does
    not match the reference (cannot happen for RBC-delivered data). *)

val missing_parents : t -> Vertex.t -> Vertex.vref list
(** Parents not yet in the store — the insertion guard. References below
    the {!prune_below} horizon count as present (their subtree was ordered
    and collected). *)

val parents_present : t -> Vertex.t -> bool
(** [parents_present t v] ⇔ [missing_parents t v = []], without building
    the list: index-based edge probes with early exit, using the per-round
    occupancy count to reject a whole empty previous round at once. This
    is the hot-path form — every insertion attempt and every
    pending-vertex wake-up runs it, so at [n = 150] it must not allocate. *)

val vertices_at : t -> int -> Vertex.t list
(** All vertices of a round, ascending source order. *)

val count_at : t -> int -> int

val strong_path : t -> Vertex.t -> round:int -> source:int -> bool
(** Is (round, source) reachable from the given vertex following strong
    edges only? (Used for the indirect leader-commit rule.) Walks
    backwards round by round, visiting each slot at most once:
    O(vertices between the two rounds). *)

val causal_history :
  t -> Vertex.t -> skip:(round:int -> source:int -> bool) -> Vertex.t list
(** Every vertex reachable from the argument (inclusive, via strong and
    weak edges) for which [skip] is false, in deterministic total order:
    ascending (round, source). This is the paper's "order the causal
    history of the committed leader" step; determinism across replicas
    follows from DAG closure + agreement. *)

val highest_round : t -> int
(** Largest round holding at least one vertex; -1 when empty. *)

val floor : t -> int
(** Current GC horizon (0 until {!prune_below} raises it). *)

val prune_below : t -> round:int -> unit
(** Drop all vertices with [vertex.round < round] — garbage collection
    after ordering. Callers must no longer query below this horizon. *)

val size : t -> int
(** Number of vertices currently stored. *)

val approx_live_words : t -> int
(** Heap-census hook: conservative word estimate of the slot arrays and
    stored vertices (headers, digests, edge arrays — payloads are counted
    by the owning block store). See docs/PROFILING.md. *)
