open Clanbft_types
module Prof = Clanbft_obs.Prof

let sec_insert = Prof.section "dag.insert"
let sec_prune = Prof.section "dag.prune"
let sec_parents = Prof.section "dag.parents"

type t = {
  n : int;
  rounds : (int, Vertex.t option array) Hashtbl.t; (* round -> slot per source *)
  counts : (int, int ref) Hashtbl.t;
  mutable highest : int;
  mutable floor : int; (* rounds below this were pruned *)
  mutable size : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Store.create: n must be positive";
  { n; rounds = Hashtbl.create 64; counts = Hashtbl.create 64; highest = -1; floor = 0; size = 0 }

let n t = t.n

let slots t round =
  match Hashtbl.find_opt t.rounds round with
  | Some a -> a
  | None ->
      let a = Array.make t.n None in
      Hashtbl.replace t.rounds round a;
      a

let find t ~round ~source =
  if source < 0 || source >= t.n then None
  else
    match Hashtbl.find_opt t.rounds round with
    | None -> None
    | Some a -> a.(source)

let mem t ~round ~source = find t ~round ~source <> None

let find_ref t (r : Vertex.vref) =
  match find t ~round:r.round ~source:r.source with
  | Some v when Clanbft_crypto.Digest32.equal v.digest r.digest -> Some v
  | Some _ | None -> None

(* References below the GC floor count as satisfied: their subtree was
   already ordered and pruned. *)
let ref_satisfied t (r : Vertex.vref) = r.round < t.floor || find_ref t r <> None

(* Allocation-free insertion guard. Strong edges all target [v.round - 1],
   so the per-round count doubles as a missing-parent counter: an empty
   previous round (above the floor) fails every strong edge at once, and the
   slot array is resolved with a single table lookup instead of one per
   edge. Weak edges are rare and probed individually. *)
let parents_present t (v : Vertex.t) =
  Prof.enter sec_parents;
  let strong_ok =
    Array.length v.strong_edges = 0
    || v.round - 1 < t.floor
    ||
    match Hashtbl.find_opt t.rounds (v.round - 1) with
    | None -> false
    | Some a ->
        Array.for_all
          (fun (r : Vertex.vref) ->
            r.source >= 0 && r.source < t.n
            &&
            match a.(r.source) with
            | Some p -> Clanbft_crypto.Digest32.equal p.digest r.digest
            | None -> false)
          v.strong_edges
  in
  let ok = strong_ok && Array.for_all (ref_satisfied t) v.weak_edges in
  Prof.leave sec_parents;
  ok

let missing_parents t (v : Vertex.t) =
  Prof.enter sec_parents;
  let acc = ref [] in
  Vertex.iter_edges v (fun r -> if not (ref_satisfied t r) then acc := r :: !acc);
  let missing = List.rev !acc in
  Prof.leave sec_parents;
  missing

let add t (v : Vertex.t) =
  if v.round < t.floor then invalid_arg "Store.add: below pruned horizon";
  Prof.enter sec_insert;
  (match find t ~round:v.round ~source:v.source with
  | Some existing ->
      if not (Clanbft_crypto.Digest32.equal existing.digest v.digest) then begin
        Prof.leave sec_insert;
        invalid_arg "Store.add: conflicting vertex for an occupied slot"
      end
  | None ->
      if not (parents_present t v) then begin
        Prof.leave sec_insert;
        invalid_arg "Store.add: parent missing"
      end;
      (slots t v.round).(v.source) <- Some v;
      (match Hashtbl.find_opt t.counts v.round with
      | Some c -> incr c
      | None -> Hashtbl.replace t.counts v.round (ref 1));
      t.size <- t.size + 1;
      if v.round > t.highest then t.highest <- v.round);
  Prof.leave sec_insert

let vertices_at t round =
  match Hashtbl.find_opt t.rounds round with
  | None -> []
  | Some a ->
      Array.to_list a |> List.filter_map (fun x -> x)

let count_at t round =
  match Hashtbl.find_opt t.counts round with Some c -> !c | None -> 0

(* BFS down strong edges; rounds strictly decrease, so the frontier dies out
   once it passes the target round. *)
let strong_path t (from : Vertex.t) ~round ~source =
  if from.round = round && from.source = source then true
  else if round >= from.round then false
  else begin
    let visited = Hashtbl.create 32 in
    let rec go frontier =
      match frontier with
      | [] -> false
      | (v : Vertex.t) :: rest ->
          let hits = ref false in
          let next = ref rest in
          Array.iter
            (fun (e : Vertex.vref) ->
              if e.round = round && e.source = source then hits := true
              else if e.round > round && not (Hashtbl.mem visited (e.round, e.source))
              then begin
                Hashtbl.replace visited (e.round, e.source) ();
                match find_ref t e with
                | Some parent -> next := parent :: !next
                | None -> ()
              end)
            v.strong_edges;
          !hits || go !next
    in
    go [ from ]
  end

let causal_history t (v : Vertex.t) ~skip =
  let visited = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit (v : Vertex.t) =
    if not (Hashtbl.mem visited (v.round, v.source)) then begin
      Hashtbl.replace visited (v.round, v.source) ();
      if not (skip ~round:v.round ~source:v.source) then begin
        acc := v :: !acc;
        Vertex.iter_edges v (fun r ->
            match find_ref t r with Some p -> visit p | None -> ())
      end
    end
  in
  visit v;
  List.sort
    (fun (a : Vertex.t) (b : Vertex.t) ->
      Vertex.Id.compare (a.round, a.source) (b.round, b.source))
    !acc

let highest_round t = t.highest
let floor t = t.floor

let prune_below t ~round =
  if round > t.floor then begin
    Prof.enter sec_prune;
    (* Key-driven when the gap outnumbers the live rounds: after a long
       idle stretch or a snapshot join the floor can jump by millions of
       rounds while the store holds only a handful, so iterating the
       integer range would be O(gap). *)
    let gap = round - t.floor in
    let drop r =
      (match Hashtbl.find_opt t.counts r with
      | Some c -> t.size <- t.size - !c
      | None -> ());
      Hashtbl.remove t.rounds r;
      Hashtbl.remove t.counts r
    in
    if gap <= Hashtbl.length t.rounds + Hashtbl.length t.counts then
      for r = t.floor to round - 1 do
        drop r
      done
    else begin
      let doomed =
        Hashtbl.fold (fun r _ acc -> if r < round then r :: acc else acc)
          t.rounds []
      in
      List.iter drop doomed;
      (* [counts] keys mirror [rounds], but sweep defensively in case a
         future change lets them diverge. *)
      let doomed =
        Hashtbl.fold (fun r _ acc -> if r < round then r :: acc else acc)
          t.counts []
      in
      List.iter drop doomed
    end;
    t.floor <- round;
    Prof.leave sec_prune
  end

let size t = t.size

(* Heap census: slot arrays plus a flat per-vertex estimate (header, two
   digests, edge arrays at one vref = ~9 words each, cached wire size).
   Payload bytes live in the block store, not here. *)
let approx_live_words t =
  let words =
    ref (Hashtbl.length t.rounds * (t.n + 8) + Hashtbl.length t.counts * 6)
  in
  Hashtbl.iter
    (fun _ a ->
      Array.iter
        (function
          | Some (v : Vertex.t) ->
              words :=
                !words + 22
                + (9 * Array.length v.strong_edges)
                + (9 * Array.length v.weak_edges)
          | None -> ())
        a)
    t.rounds;
  !words
