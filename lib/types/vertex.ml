open Clanbft_crypto

type vref = { round : int; source : int; digest : Digest32.t }

type t = {
  round : int;
  source : int;
  block_digest : Digest32.t;
  strong_edges : vref array;
  weak_edges : vref array;
  nvc : Cert.t option;
  tc : Cert.t option;
  compact : bool;
      (* sparse-edge wire representation: strong edges as a sorted source
         index list (round implied), u8 edge counts — see codec *)
  digest : Digest32.t;
  base_wire_size : int;
      (* wire bytes of everything but the certificates (whose size depends
         on the tribe size n); cached so sizing a send is O(1), not
         O(edges) per recipient *)
}

let compute_digest ~round ~source ~block_digest ~strong_edges ~weak_edges ~nvc
    ~tc =
  let ctx = Sha256.init () in
  Sha256.feed_string ctx (Printf.sprintf "vertex|%d|%d|" round source);
  Sha256.feed_string ctx (Digest32.to_raw block_digest);
  let feed_edges label edges =
    Sha256.feed_string ctx label;
    Array.iter
      (fun (e : vref) ->
        Sha256.feed_string ctx (Printf.sprintf "%d,%d," e.round e.source);
        Sha256.feed_string ctx (Digest32.to_raw e.digest))
      edges
  in
  feed_edges "strong:" strong_edges;
  feed_edges "weak:" weak_edges;
  let feed_cert label = function
    | None -> Sha256.feed_string ctx (label ^ "none")
    | Some (c : Cert.t) ->
        Sha256.feed_string ctx
          (Printf.sprintf "%s%d/%d" label c.round (Cert.signer_count c))
  in
  feed_cert "nvc:" nvc;
  feed_cert "tc:" tc;
  Digest32.of_raw (Sha256.finalize ctx)

let make ~round ~source ~block_digest ~strong_edges ~weak_edges
    ?(compact = false) ?nvc ?tc () =
  if round < 0 then invalid_arg "Vertex.make: negative round";
  Array.iter
    (fun (e : vref) ->
      if e.round <> round - 1 then
        invalid_arg "Vertex.make: strong edge must target previous round")
    strong_edges;
  Array.iter
    (fun (e : vref) ->
      if e.round >= round - 1 then
        invalid_arg "Vertex.make: weak edge must target round < r-1")
    weak_edges;
  if compact then begin
    (* The compact wire form carries u8 edge counts, u16 source indices,
       and strictly ascending order (a sorted index list) — enforce all of
       it at construction so encode never meets an unrepresentable
       vertex and decode validation is [make] itself. *)
    if Array.length strong_edges > 0xff || Array.length weak_edges > 0xff then
      invalid_arg "Vertex.make: compact vertex with more than 255 edges";
    Array.iteri
      (fun i (e : vref) ->
        if e.source < 0 || e.source > 0xffff then
          invalid_arg "Vertex.make: compact edge source out of u16 range";
        if i > 0 && strong_edges.(i - 1).source >= e.source then
          invalid_arg "Vertex.make: compact strong edges must ascend by source")
      strong_edges;
    Array.iteri
      (fun i (e : vref) ->
        if e.source < 0 || e.source > 0xffff then
          invalid_arg "Vertex.make: compact edge source out of u16 range";
        if
          i > 0
          && (weak_edges.(i - 1).round, weak_edges.(i - 1).source)
             >= (e.round, e.source)
        then
          invalid_arg
            "Vertex.make: compact weak edges must ascend by (round, source)")
      weak_edges
  end;
  {
    round;
    source;
    block_digest;
    strong_edges;
    weak_edges;
    nvc;
    tc;
    compact;
    digest =
      compute_digest ~round ~source ~block_digest ~strong_edges ~weak_edges
        ~nvc ~tc;
    base_wire_size =
      (if compact then
         (* round + source + block digest + u8 counts + compact edges:
            strong = u16 source + digest (round implied r-1),
            weak = u32 round + u16 source + digest *)
         4 + 4 + Digest32.size + 1
         + (Array.length strong_edges * (2 + Digest32.size))
         + 1
         + (Array.length weak_edges * (4 + 2 + Digest32.size))
       else
         (* round + source + block digest + edge counts + edges *)
         4 + 4 + Digest32.size + 4
         + (Array.length strong_edges * (4 + 4 + Digest32.size))
         + 4
         + (Array.length weak_edges * (4 + 4 + Digest32.size)));
  }

let ref_of t = { round = t.round; source = t.source; digest = t.digest }
let vref_wire_size = 4 + 4 + Digest32.size
let compact_strong_wire_size = 2 + Digest32.size
let compact_weak_wire_size = 4 + 2 + Digest32.size
let edge_count t = Array.length t.strong_edges + Array.length t.weak_edges

(* Index-based edge traversal: strong edges first, then weak — the same
   order as consing the two arrays into a list, without the list. *)
let iter_edges t f =
  Array.iter f t.strong_edges;
  Array.iter f t.weak_edges

let for_all_edges t f =
  let rec strong i =
    i >= Array.length t.strong_edges
    || (f t.strong_edges.(i) && strong (i + 1))
  and weak i =
    i >= Array.length t.weak_edges || (f t.weak_edges.(i) && weak (i + 1))
  in
  strong 0 && weak 0

let wire_size ~n t =
  let cert = function None -> 1 | Some _ -> 1 + Cert.wire_size ~n in
  t.base_wire_size + cert t.nvc + cert t.tc

let has_strong_edge_to t ~round ~source =
  round = t.round - 1
  && Array.exists (fun (e : vref) -> e.source = source) t.strong_edges

let pp ppf t =
  Format.fprintf ppf "vertex(%d@r%d,%d strong,%d weak%s%s)" t.source t.round
    (Array.length t.strong_edges)
    (Array.length t.weak_edges)
    (if t.nvc <> None then ",nvc" else "")
    (if t.tc <> None then ",tc" else "")

module Id = struct
  type t = int * int

  let compare (r1, s1) (r2, s2) =
    match Int.compare r1 r2 with 0 -> Int.compare s1 s2 | c -> c
end
