(** Wire messages of the combined vertex+block dissemination and the
    Sailfish consensus layer (§5 "Efficiently propagating the vertex and the
    block", §7 implementation details).

    One RBC instance exists per (proposer, round) slot. The instance merges
    the round-optimal signed RBC for the vertex with the two-round
    tribe-assisted RBC for the block: VAL carries the vertex to everyone and
    additionally the block to the proposer's clan; ECHO acknowledges the pair
    (or the vertex alone outside the clan); an ECHO certificate (2f+1 ECHOs,
    ≥ fc+1 from the clan) finishes the broadcast. Missing blocks/vertices are
    pulled off the critical path. *)

open Clanbft_crypto

type t =
  | Val of { vertex : Vertex.t; block : Block.t option; signature : Keychain.signature }
      (** First round of the RBC: the proposal. [block] is present only on
          copies sent to the proposer's clan. Doubles as the commit vote
          carrier: a VAL for round r+1 with a strong edge to the round-r
          leader is a vote for it. *)
  | Echo of {
      round : int;
      source : int;  (** the RBC proposer being echoed *)
      vertex_digest : Digest32.t;
      signer : int;
      signature : Keychain.signature;
    }
  | Echo_cert of {
      round : int;
      source : int;
      vertex_digest : Digest32.t;
      agg : Keychain.aggregate;
      clan_echoes : int;  (** how many aggregated ECHOs came from the clan *)
    }  (** EC_r(m) of Fig. 3: completes the RBC in two rounds. *)
  | Timeout_share of { round : int; signer : int; signature : Keychain.signature }
  | No_vote_share of { round : int; signer : int; signature : Keychain.signature }
  | Timeout_cert of Cert.t
      (** Multicast so every party can advance past a stalled round. *)
  | Block_request of { round : int; source : int }
      (** Pull a missing block from a clan member (off the critical path). *)
  | Block_reply of { block : Block.t }
  | Vertex_request of { round : int; source : int }
  | Vertex_reply of { vertex : Vertex.t; block : Block.t option }
  | Sync_request of { from_round : int }
      (** A recovering replica announces its highest contiguous DAG round
          and asks a peer to stream certified vertices above it (state
          sync; see [docs/RECOVERY.md]). *)
  | Sync_reply of { floor : int; highest : int }
      (** The peer's GC floor and highest stored round; the vertices
          themselves follow as ordinary [Vertex_reply] messages. A [floor]
          above the requester's frontier signals the gap was garbage
          collected and replay alone cannot reconnect. *)

val echo_signing_string : round:int -> source:int -> Digest32.t -> string
(** Canonical string ECHO signatures cover. *)

val val_signing_string : Vertex.t -> string
(** Canonical string a proposer's VAL signature covers. Exposed so the
    strategic adversary engine ({!Clanbft_faults.Strategy}) can re-sign
    forged variants of its own proposals with its legitimate key. *)

val wire_size : n:int -> t -> int
(** Exact bytes on the wire; kept in lock-step with {!Codec} by a property
    test ([wire_size] must equal the encoded length). *)

val tag : t -> string
(** Constructor name, for logs and traffic accounting. *)

val round : t -> int option
(** The consensus round a message belongs to (a VAL's vertex round;
    [None] for [Block_reply] and the state-sync control messages). Feeds
    round-windowed fault rules and mute-after-round crash injection. *)

val pp : Format.formatter -> t -> unit
