open Clanbft_crypto
module Bitset = Clanbft_util.Bitset
module Prof = Clanbft_obs.Prof

let sec_encode = Prof.section "codec.encode"
let sec_decode = Prof.section "codec.decode"

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writer *)

module W = struct
  let create () = Buffer.create 256
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u16 b v =
    if v < 0 || v > 0xffff then invalid_arg "Codec: u16 out of range";
    u8 b (v lsr 8);
    u8 b v

  let u32 b v =
    if v < 0 then invalid_arg "Codec: negative u32";
    u8 b (v lsr 24);
    u8 b (v lsr 16);
    u8 b (v lsr 8);
    u8 b v

  let i64 b v =
    for byte = 7 downto 0 do
      u8 b ((v asr (8 * byte)) land 0xff)
    done

  let raw b s = Buffer.add_string b s

  (* Signatures are 32-byte simulated tags padded to the κ = 64 bytes a
     real signature would occupy. *)
  let raw_signature b s =
    if String.length s <> 32 then invalid_arg "Codec: signature must be 32B";
    raw b s;
    raw b (String.make 32 '\x00')

  let signature b s = raw_signature b (Keychain.signature_to_raw s)

  let digest b d = raw b (Digest32.to_raw d)

  (* Each bitmap byte is gathered from the bitset's words in one shot —
     no per-member read-modify-write through Char.code/Char.chr. The
     encoding is unchanged: member i lands in byte i/8, bit i mod 8. *)
  let bitset b ~n set =
    let len = (n + 7) / 8 in
    let cap_bytes = (Bitset.capacity set + 7) / 8 in
    let bytes = Bytes.create len in
    for j = 0 to len - 1 do
      Bytes.unsafe_set bytes j
        (Char.unsafe_chr (if j < cap_bytes then Bitset.byte set j else 0))
    done;
    raw b (Bytes.unsafe_to_string bytes)

  let aggregate b ~n agg =
    raw_signature b (Keychain.aggregate_tag agg);
    bitset b ~n (Keychain.signers agg)
end

(* ------------------------------------------------------------------ *)
(* Reader *)

module R = struct
  type t = { s : string; mutable pos : int }

  let create s = { s; pos = 0 }

  let need r n =
    if r.pos + n > String.length r.s then fail "truncated input (need %d)" n

  let u8 r =
    need r 1;
    let v = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    need r 2;
    let v = (Char.code r.s.[r.pos] lsl 8) lor Char.code r.s.[r.pos + 1] in
    r.pos <- r.pos + 2;
    v

  let u32 r =
    need r 4;
    let v =
      (Char.code r.s.[r.pos] lsl 24)
      lor (Char.code r.s.[r.pos + 1] lsl 16)
      lor (Char.code r.s.[r.pos + 2] lsl 8)
      lor Char.code r.s.[r.pos + 3]
    in
    r.pos <- r.pos + 4;
    v

  let i64 r =
    need r 8;
    let v = ref 0 in
    for _ = 1 to 8 do
      v := (!v lsl 8) lor Char.code r.s.[r.pos];
      r.pos <- r.pos + 1
    done;
    !v

  let raw r n =
    need r n;
    let s = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    s

  let skip r n =
    need r n;
    r.pos <- r.pos + n

  let raw_signature r =
    let s = raw r 32 in
    skip r 32;
    s

  let signature r = Keychain.signature_of_raw (raw_signature r)

  let digest r = Digest32.of_raw (raw r 32)

  let bitset r ~n =
    let bytes = raw r ((n + 7) / 8) in
    let set = Bitset.create n in
    String.iteri
      (fun byte_idx c ->
        let c = Char.code c in
        for bit = 0 to 7 do
          if c land (1 lsl bit) <> 0 then begin
            let i = (byte_idx * 8) + bit in
            if i >= n then fail "bitset bit out of range";
            ignore (Bitset.add set i)
          end
        done)
      bytes;
    set

  let aggregate r ~n =
    let tag = raw_signature r in
    let signers = bitset r ~n in
    Keychain.aggregate_of_wire ~tag ~signers

  let eof r = if r.pos <> String.length r.s then fail "trailing bytes"
end

(* ------------------------------------------------------------------ *)
(* Domain values *)

let write_txn b (t : Transaction.t) =
  W.i64 b t.id;
  W.u32 b t.client;
  W.i64 b t.created_at;
  W.u32 b t.size;
  W.raw b (String.make t.size '\x00')

let read_txn r =
  let id = R.i64 r in
  let client = R.u32 r in
  let created_at = R.i64 r in
  let size = R.u32 r in
  R.skip r size;
  Transaction.make ~id ~client ~created_at ~size ()

let write_block b (blk : Block.t) =
  W.u32 b blk.proposer;
  W.u32 b blk.round;
  W.u32 b (Array.length blk.txns);
  Array.iter (write_txn b) blk.txns

let read_block r =
  let proposer = R.u32 r in
  let round = R.u32 r in
  let count = R.u32 r in
  let txns = Array.init count (fun _ -> read_txn r) in
  Block.make ~proposer ~round ~txns

let write_vref b (v : Vertex.vref) =
  W.u32 b v.round;
  W.u32 b v.source;
  W.digest b v.digest

let read_vref r : Vertex.vref =
  let round = R.u32 r in
  let source = R.u32 r in
  let digest = R.digest r in
  { round; source; digest }

let write_cert b ~n (c : Cert.t) =
  W.u8 b (match c.kind with Cert.Timeout -> 0 | Cert.No_vote -> 1);
  W.u32 b c.round;
  W.aggregate b ~n c.agg

let read_cert r ~n =
  let kind =
    match R.u8 r with
    | 0 -> Cert.Timeout
    | 1 -> Cert.No_vote
    | k -> fail "bad cert kind %d" k
  in
  let round = R.u32 r in
  let agg = R.aggregate r ~n in
  Cert.of_wire kind ~round ~agg

let write_cert_opt b ~n = function
  | None -> W.u8 b 0
  | Some c ->
      W.u8 b 1;
      write_cert b ~n c

let read_cert_opt r ~n =
  match R.u8 r with
  | 0 -> None
  | 1 -> Some (read_cert r ~n)
  | k -> fail "bad cert option %d" k

(* The compact layout (sparse-edge mode) drops what a sorted index list
   makes redundant: strong-edge target rounds are implied (always r-1),
   sources fit u16, edge counts fit u8. Which layout a vertex uses is a
   protocol-level property carried by [Vertex.t.compact] on the write side
   and by the decoder's [compact] parameter on the read side — never a
   wire flag byte, so dense bytes are untouched. *)
let write_vertex b ~n (v : Vertex.t) =
  W.u32 b v.round;
  W.u32 b v.source;
  W.digest b v.block_digest;
  if v.compact then begin
    W.u8 b (Array.length v.strong_edges);
    Array.iter
      (fun (e : Vertex.vref) ->
        W.u16 b e.source;
        W.digest b e.digest)
      v.strong_edges;
    W.u8 b (Array.length v.weak_edges);
    Array.iter
      (fun (e : Vertex.vref) ->
        W.u32 b e.round;
        W.u16 b e.source;
        W.digest b e.digest)
      v.weak_edges
  end
  else begin
    W.u32 b (Array.length v.strong_edges);
    Array.iter (write_vref b) v.strong_edges;
    W.u32 b (Array.length v.weak_edges);
    Array.iter (write_vref b) v.weak_edges
  end;
  write_cert_opt b ~n v.nvc;
  write_cert_opt b ~n v.tc

let read_vertex r ~n ~compact =
  let round = R.u32 r in
  let source = R.u32 r in
  let block_digest = R.digest r in
  let strong_edges, weak_edges =
    if compact then begin
      let strong_count = R.u8 r in
      let strong_edges =
        Array.init strong_count (fun _ : Vertex.vref ->
            let source = R.u16 r in
            let digest = R.digest r in
            { round = round - 1; source; digest })
      in
      let weak_count = R.u8 r in
      let weak_edges =
        Array.init weak_count (fun _ : Vertex.vref ->
            let round = R.u32 r in
            let source = R.u16 r in
            let digest = R.digest r in
            { round; source; digest })
      in
      (strong_edges, weak_edges)
    end
    else begin
      let strong_count = R.u32 r in
      let strong_edges = Array.init strong_count (fun _ -> read_vref r) in
      let weak_count = R.u32 r in
      let weak_edges = Array.init weak_count (fun _ -> read_vref r) in
      (strong_edges, weak_edges)
    end
  in
  let nvc = read_cert_opt r ~n in
  let tc = read_cert_opt r ~n in
  (* [Vertex.make] re-validates the compact invariants (ascending sorted
     sources, u8/u16 ranges), so a malformed compact input fails here. *)
  try
    Vertex.make ~round ~source ~block_digest ~strong_edges ~weak_edges ~compact
      ?nvc ?tc ()
  with Invalid_argument m -> fail "bad vertex: %s" m

let write_block_opt b = function
  | None -> W.u8 b 0
  | Some blk ->
      W.u8 b 1;
      write_block b blk

let read_block_opt r =
  match R.u8 r with
  | 0 -> None
  | 1 -> Some (read_block r)
  | k -> fail "bad block option %d" k

(* ------------------------------------------------------------------ *)
(* Messages *)

let encode ~n msg =
  Prof.enter sec_encode;
  let b = W.create () in
  (match msg with
  | Msg.Val { vertex; block; signature } ->
      W.u8 b 0;
      write_vertex b ~n vertex;
      write_block_opt b block;
      W.signature b signature
  | Msg.Echo { round; source; vertex_digest; signer; signature } ->
      W.u8 b 1;
      W.u32 b round;
      W.u32 b source;
      W.digest b vertex_digest;
      W.u32 b signer;
      W.signature b signature
  | Msg.Echo_cert { round; source; vertex_digest; agg; clan_echoes } ->
      W.u8 b 2;
      W.u32 b round;
      W.u32 b source;
      W.digest b vertex_digest;
      W.aggregate b ~n agg;
      W.u32 b clan_echoes
  | Msg.Timeout_share { round; signer; signature } ->
      W.u8 b 3;
      W.u32 b round;
      W.u32 b signer;
      W.signature b signature
  | Msg.No_vote_share { round; signer; signature } ->
      W.u8 b 4;
      W.u32 b round;
      W.u32 b signer;
      W.signature b signature
  | Msg.Timeout_cert c ->
      W.u8 b 5;
      write_cert b ~n c
  | Msg.Block_request { round; source } ->
      W.u8 b 6;
      W.u32 b round;
      W.u32 b source
  | Msg.Block_reply { block } ->
      W.u8 b 7;
      write_block b block
  | Msg.Vertex_request { round; source } ->
      W.u8 b 8;
      W.u32 b round;
      W.u32 b source
  | Msg.Vertex_reply { vertex; block } ->
      W.u8 b 9;
      write_vertex b ~n vertex;
      write_block_opt b block
  | Msg.Sync_request { from_round } ->
      W.u8 b 10;
      W.u32 b from_round
  | Msg.Sync_reply { floor; highest } ->
      W.u8 b 11;
      W.u32 b floor;
      (* [highest] is -1 for an empty store; bias by one to stay in u32. *)
      W.u32 b (highest + 1));
  let s = Buffer.contents b in
  Prof.leave sec_encode;
  s

let decode_raw ~n ~compact s =
  let r = R.create s in
  let msg =
    match R.u8 r with
    | 0 ->
        let vertex = read_vertex r ~n ~compact in
        let block = read_block_opt r in
        let signature = R.signature r in
        Msg.Val { vertex; block; signature }
    | 1 ->
        let round = R.u32 r in
        let source = R.u32 r in
        let vertex_digest = R.digest r in
        let signer = R.u32 r in
        let signature = R.signature r in
        Msg.Echo { round; source; vertex_digest; signer; signature }
    | 2 ->
        let round = R.u32 r in
        let source = R.u32 r in
        let vertex_digest = R.digest r in
        let agg = R.aggregate r ~n in
        let clan_echoes = R.u32 r in
        Msg.Echo_cert { round; source; vertex_digest; agg; clan_echoes }
    | 3 ->
        let round = R.u32 r in
        let signer = R.u32 r in
        let signature = R.signature r in
        Msg.Timeout_share { round; signer; signature }
    | 4 ->
        let round = R.u32 r in
        let signer = R.u32 r in
        let signature = R.signature r in
        Msg.No_vote_share { round; signer; signature }
    | 5 -> Msg.Timeout_cert (read_cert r ~n)
    | 6 ->
        let round = R.u32 r in
        let source = R.u32 r in
        Msg.Block_request { round; source }
    | 7 -> Msg.Block_reply { block = read_block r }
    | 8 ->
        let round = R.u32 r in
        let source = R.u32 r in
        Msg.Vertex_request { round; source }
    | 9 ->
        let vertex = read_vertex r ~n ~compact in
        let block = read_block_opt r in
        Msg.Vertex_reply { vertex; block }
    | 10 ->
        let from_round = R.u32 r in
        Msg.Sync_request { from_round }
    | 11 ->
        let floor = R.u32 r in
        let highest = R.u32 r - 1 in
        Msg.Sync_reply { floor; highest }
    | t -> fail "bad message tag %d" t
  in
  R.eof r;
  msg

let decode ~n ?(compact = false) s =
  Prof.enter sec_decode;
  match decode_raw ~n ~compact s with
  | msg ->
      Prof.leave sec_decode;
      msg
  | exception e ->
      Prof.leave sec_decode;
      raise e

let encode_vertex ~n v =
  Prof.span sec_encode (fun () ->
      let b = W.create () in
      write_vertex b ~n v;
      Buffer.contents b)

let decode_vertex ~n ?(compact = false) s =
  Prof.span sec_decode (fun () ->
      let r = R.create s in
      let v = read_vertex r ~n ~compact in
      R.eof r;
      v)

let encode_block blk =
  Prof.span sec_encode (fun () ->
      let b = W.create () in
      write_block b blk;
      Buffer.contents b)

let decode_block s =
  Prof.span sec_decode (fun () ->
      let r = R.create s in
      let blk = read_block r in
      R.eof r;
      blk)
