type dissemination =
  | Full
  | Single_clan of int array
  | Multi_clan of int array array

type edge_policy = Dense | Sparse of { k : int; seed : int64 }

type t = {
  n : int;
  f : int;
  dissemination : dissemination;
  edge_policy : edge_policy;
  clans : int array array; (* [Full] -> [| all |] *)
  clan_of : int option array; (* party -> clan index *)
}

let validate_clan ~n seen clan =
  if Array.length clan = 0 then invalid_arg "Config: empty clan";
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Config: clan member out of range";
      if seen.(i) then invalid_arg "Config: clans must be disjoint";
      seen.(i) <- true)
    clan

let make ~n ?f ?(edge_policy = Dense) dissemination =
  if n <= 0 then invalid_arg "Config: n must be positive";
  let f = match f with Some f -> f | None -> (n - 1) / 3 in
  if f < 0 || (3 * f) + 1 > n then
    invalid_arg "Config: need 0 <= f and n >= 3f+1";
  (match edge_policy with
  | Dense -> ()
  | Sparse { k; _ } ->
      if k < 1 then invalid_arg "Config: sparse k must be >= 1");
  let clans =
    match dissemination with
    | Full -> [| Array.init n (fun i -> i) |]
    | Single_clan clan -> [| Array.copy clan |]
    | Multi_clan clans -> Array.map Array.copy clans
  in
  let seen = Array.make n false in
  Array.iter (fun clan -> validate_clan ~n seen clan) clans;
  let clan_of = Array.make n None in
  Array.iteri
    (fun c members -> Array.iter (fun i -> clan_of.(i) <- Some c) members)
    clans;
  { n; f; dissemination; edge_policy; clans; clan_of }

let n t = t.n
let f t = t.f
let quorum t = (2 * t.f) + 1
let weak_quorum t = t.f + 1
let dissemination t = t.dissemination
let edge_policy t = t.edge_policy
let sparse_edges t = t.edge_policy <> Dense

(* Cap on a sparse vertex's strong parents: the k sampled parents plus the
   three structural edges (self, previous leader, link-to-voter). *)
let sparse_strong_cap = function
  | Dense -> max_int
  | Sparse { k; _ } -> k + 3

(* Cap on a sparse vertex's weak edges per proposal: leftover uncovered
   vertices wait for a later round (oldest drain first, so none starve).
   4k keeps the drain ahead of the arrival rate at paper scale — an
   uncapped drain commits no more than this at n = 50..150 — while still
   bounding a vertex's wire size at O(k). *)
let sparse_weak_cap = function
  | Dense -> max_int
  | Sparse { k; _ } -> max 16 (4 * k)
let leader_of_round t round = round mod t.n

let is_block_proposer t i =
  match t.dissemination with
  | Full | Multi_clan _ -> i >= 0 && i < t.n
  | Single_clan _ -> t.clan_of.(i) = Some 0

let block_proposers t =
  List.filter (is_block_proposer t) (List.init t.n (fun i -> i))

let proposer_clan t ~proposer =
  match t.dissemination with
  | Full -> Some 0
  | Single_clan _ -> if t.clan_of.(proposer) = Some 0 then Some 0 else None
  | Multi_clan _ -> t.clan_of.(proposer)

let payload_clan t ~proposer =
  match proposer_clan t ~proposer with
  | None -> None
  | Some c -> Some t.clans.(c)

let clan_fault_bound t c =
  let nc = Array.length t.clans.(c) in
  ((nc + 1) / 2) - 1

let clan_echo_threshold t ~proposer =
  match t.dissemination with
  | Full -> 0
  | Single_clan _ | Multi_clan _ -> (
      match proposer_clan t ~proposer with
      | None -> 0
      | Some c -> clan_fault_bound t c + 1)

let in_payload_clan t ~proposer i =
  match proposer_clan t ~proposer with
  | None -> false
  | Some c -> t.clan_of.(i) = Some c

let executes_blocks t i = t.clan_of.(i) <> None
let clan_of t i = t.clan_of.(i)
let clan_members t c = t.clans.(c)
let clan_count t = Array.length t.clans

let pp ppf t =
  let mode =
    match t.dissemination with
    | Full -> "full"
    | Single_clan c -> Printf.sprintf "single-clan(nc=%d)" (Array.length c)
    | Multi_clan cs ->
        Printf.sprintf "multi-clan(q=%d,nc=%s)" (Array.length cs)
          (String.concat ","
             (Array.to_list (Array.map (fun c -> string_of_int (Array.length c)) cs)))
  in
  let edges =
    match t.edge_policy with
    | Dense -> ""
    | Sparse { k; _ } -> Printf.sprintf ",sparse(k=%d)" k
  in
  Format.fprintf ppf "config(n=%d,f=%d,%s%s)" t.n t.f mode edges
