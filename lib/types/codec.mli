(** Binary codec for {!Msg.t}.

    The simulator itself moves OCaml values, not bytes — but the byte format
    matters twice: (1) {!Msg.wire_size} must account exactly the bytes a
    real deployment would send (it drives the bandwidth model), and (2) a
    persistent store needs a serial form. The invariant
    [String.length (encode ~n m) = Msg.wire_size ~n m] is enforced by a
    property test.

    Encoding notes: integers are big-endian fixed width; signatures occupy
    the full κ = 64 wire bytes (zero-padded — the simulated tags are 32
    bytes); transaction payloads are zero-filled to their declared size. *)

exception Decode_error of string

val encode : n:int -> Msg.t -> string
(** Vertices choose their own layout: a [Vertex.t] built with
    [~compact:true] (sparse-edge mode) is written in the compact form —
    u8 edge counts, strong edges as ascending u16 source + digest with the
    target round implied, weak edges as (u32 round, u16 source, digest).
    The dense layout is byte-for-byte what it always was. *)

val decode : n:int -> ?compact:bool -> string -> Msg.t
(** Raises {!Decode_error} on malformed input. Round-trips with {!encode}
    up to signature padding (padding is stripped back to 32-byte tags).
    [compact] (default [false]) must match the encoder's vertex layout —
    it is a protocol-level parameter (every vertex of a sparse-mode run is
    compact), not a wire flag, so the dense format stays unchanged. *)

(** Standalone entry points used by the store and tests. *)

val encode_vertex : n:int -> Vertex.t -> string
val decode_vertex : n:int -> ?compact:bool -> string -> Vertex.t
val encode_block : Block.t -> string
val decode_block : string -> Block.t
