(** Static protocol membership configuration.

    Captures the tribe, the fault bound, and the dissemination strategy —
    the axis the paper explores:

    - {!Full}: baseline DAG BFT (Sailfish): every party proposes a block and
      every block goes to every party;
    - {!Single_clan} (§5): one designated clan; only clan members propose
      blocks, blocks go only to the clan, everybody still proposes vertices;
    - {!Multi_clan} (§6): disjoint clans partitioning (a subset of) the
      tribe; every party proposes blocks, each block goes to the proposer's
      own clan.

    All derived quantities (quorums, proposers, payload recipients,
    executors) are answered here so protocol code stays mode-agnostic. *)

type dissemination =
  | Full
  | Single_clan of int array
  | Multi_clan of int array array

(** How a proposer references the previous round — orthogonal to the
    dissemination axis:

    - {!Dense}: Fig. 4 Sailfish — strong edges to {e every} delivered
      round-(r−1) vertex (≥ 2f+1), so per-vertex wire/codec/store cost is
      O(n);
    - {!Sparse}: Clownfish-style — a few structural edges (own chain,
      previous leader, one link to a voter for the leader before that) plus
      [k] pseudo-randomly sampled parents drawn from a deterministic,
      seed-keyed hash, so per-vertex cost is O(k) ≈ O(log n). Commit safety
      rests on transitive coverage through the mandatory edges instead of
      the direct 2f+1-parent overlap (see DESIGN.md §8). *)
type edge_policy = Dense | Sparse of { k : int; seed : int64 }

type t

val make : n:int -> ?f:int -> ?edge_policy:edge_policy -> dissemination -> t
(** [f] defaults to ⌊(n-1)/3⌋; [edge_policy] defaults to {!Dense}.
    Validates membership: ids in range, clans disjoint and non-empty.
    Raises [Invalid_argument] otherwise. *)

val n : t -> int
val f : t -> int

val quorum : t -> int
(** 2f+1. *)

val weak_quorum : t -> int
(** f+1. *)

val dissemination : t -> dissemination

val edge_policy : t -> edge_policy

val sparse_edges : t -> bool
(** [true] iff the edge policy is {!Sparse} — i.e. vertices use the
    compact edge representation on the wire. *)

val sparse_strong_cap : edge_policy -> int
(** Most strong edges a valid sparse vertex may carry: [k] sampled + 3
    structural (self, leader, link). [max_int] under {!Dense}. *)

val sparse_weak_cap : edge_policy -> int
(** Most weak edges a sparse proposal carries; the rest of the uncovered
    set drains oldest-first across later rounds. [max_int] under {!Dense}. *)

val leader_of_round : t -> int -> int
(** Round-robin leader over the whole tribe — vertices (and hence leaders)
    come from everyone in every mode. *)

val is_block_proposer : t -> int -> bool
val block_proposers : t -> int list

val payload_clan : t -> proposer:int -> int array option
(** Who must receive the full block from [proposer]:
    [None] when [proposer] proposes no blocks (vertex-only, empty block);
    in [Full] mode the "clan" is the whole tribe. *)

val clan_echo_threshold : t -> proposer:int -> int
(** Minimum ECHOs that must come from [payload_clan] before a READY/cert:
    [fc + 1] of that clan in clan modes (ensures an honest clan member holds
    the block, §3), [0] in [Full] mode (any 2f+1 ECHOs already include f+1
    honest holders). *)

val in_payload_clan : t -> proposer:int -> int -> bool
(** [in_payload_clan t ~proposer i]: does party [i] receive / store / serve
    the full blocks proposed by [proposer]? *)

val executes_blocks : t -> int -> bool
(** Whether party [i] executes any blocks at all (i.e. belongs to some
    clan, or mode is [Full]). *)

val clan_of : t -> int -> int option
(** Index of the clan party [i] belongs to; [None] outside every clan.
    In [Full] mode everyone is in clan 0. *)

val clan_members : t -> int -> int array
val clan_count : t -> int
val clan_fault_bound : t -> int -> int
(** [fc] of clan [c] = ⌈nc/2⌉ - 1. *)

val pp : Format.formatter -> t -> unit
