open Clanbft_crypto

type t = {
  proposer : int;
  round : int;
  txns : Transaction.t array;
  digest : Digest32.t;
  wire_size : int;
      (* cached at construction: sizing used to cost O(txns) per network
         send — once per recipient — on every proposal *)
}

(* One contiguous buffer then a single SHA-256 pass: blocks carry up to
   6000 transactions and are created on every proposal, so this is a hot
   path in large experiments. *)
let compute_digest ~proposer ~round ~txns =
  let per_txn = 16 in
  let buf = Bytes.create (16 + (Array.length txns * per_txn)) in
  let put64 pos v =
    for byte = 0 to 7 do
      Bytes.unsafe_set buf (pos + byte)
        (Char.unsafe_chr ((v lsr (8 * byte)) land 0xff))
    done
  in
  put64 0 proposer;
  put64 8 round;
  Array.iteri
    (fun i (txn : Transaction.t) ->
      let base = 16 + (i * per_txn) in
      put64 base txn.id;
      put64 (base + 8) ((txn.client lsl 24) lxor txn.size))
    txns;
  let ctx = Sha256.init () in
  Sha256.feed_bytes ctx buf ~pos:0 ~len:(Bytes.length buf);
  Digest32.of_raw (Sha256.finalize ctx)

let make ~proposer ~round ~txns =
  {
    proposer;
    round;
    txns;
    digest = compute_digest ~proposer ~round ~txns;
    wire_size =
      Array.fold_left (fun acc txn -> acc + Transaction.wire_size txn) 12 txns;
  }

let digest t = t.digest
let txn_count t = Array.length t.txns
let wire_size t = t.wire_size

let pp ppf t =
  Format.fprintf ppf "block(%d@r%d,%d txns,%a)" t.proposer t.round
    (Array.length t.txns) Digest32.pp t.digest
