(** Transaction blocks (Fig. 4, [struct block]).

    Separated from the vertex so that it can be disseminated only to a clan
    while the vertex travels to the whole tribe (§5). The digest binds the
    proposer and round, so a Byzantine proposer cannot reuse one block's
    digest for different (round, proposer) slots. *)

open Clanbft_crypto

type t = private {
  proposer : int;
  round : int;
  txns : Transaction.t array;
  digest : Digest32.t;  (** cached hash of the block *)
  wire_size : int;  (** cached wire bytes, so sizing a send is O(1) *)
}

val make : proposer:int -> round:int -> txns:Transaction.t array -> t
val digest : t -> Digest32.t
val txn_count : t -> int

val wire_size : t -> int
(** 12-byte header + the transactions' wire bytes. O(1): computed once at
    construction. *)

val pp : Format.formatter -> t -> unit
