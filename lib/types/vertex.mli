(** DAG vertices (Fig. 4, [struct vertex]).

    A vertex carries only the {e digest} of its block of transactions — the
    central optimisation of §5: the light vertex travels to the whole tribe
    while the heavy block goes to a clan. Strong edges point at ≥ 2f+1
    vertices of the previous round; weak edges reference older vertices that
    would otherwise be unreachable, so total ordering covers them. *)

open Clanbft_crypto

(** Reference to a vertex: the DAG edge representation. Under RBC a
    (round, source) slot resolves to at most one vertex, and the digest
    pins its content. *)
type vref = { round : int; source : int; digest : Digest32.t }

type t = private {
  round : int;
  source : int;
  block_digest : Digest32.t;
  strong_edges : vref array;  (** references into round [round - 1] *)
  weak_edges : vref array;  (** references into rounds < [round - 1] *)
  nvc : Cert.t option;  (** no-vote certificate for [round - 1], if any *)
  tc : Cert.t option;  (** timeout certificate for [round - 1], if any *)
  compact : bool;  (** sparse-mode compact wire representation *)
  digest : Digest32.t;  (** hash of this vertex (cached) *)
  base_wire_size : int;  (** cached wire bytes excluding certificates *)
}

val make :
  round:int ->
  source:int ->
  block_digest:Digest32.t ->
  strong_edges:vref array ->
  weak_edges:vref array ->
  ?compact:bool ->
  ?nvc:Cert.t ->
  ?tc:Cert.t ->
  unit ->
  t
(** [compact] (default [false]) selects the sparse-edge wire form: u8 edge
    counts, strong edges as a sorted u16 source-index list (target round
    implied, 34 B/edge instead of 40), weak edges as (round, u16 source,
    digest) sorted by (round, source). Compact construction additionally
    validates the sort order and the u8/u16 ranges, so the codec never
    meets an unrepresentable vertex. The content digest is representation
    independent: a compact vertex and a dense vertex with identical fields
    share one digest. *)

val ref_of : t -> vref
(** The reference other vertices use to point at this one. *)

val vref_wire_size : int
(** Bytes per dense edge: round + source + digest. *)

val compact_strong_wire_size : int
(** Bytes per compact strong edge: u16 source + digest (round implied). *)

val compact_weak_wire_size : int
(** Bytes per compact weak edge: round + u16 source + digest. *)

val edge_count : t -> int
(** Total parent references: strong + weak. *)

val iter_edges : t -> (vref -> unit) -> unit
(** Apply to every parent reference, strong edges first then weak —
    index-based, allocating nothing (unlike materialising the edge arrays
    as a list, which dominated DAG bookkeeping at large [n]). *)

val for_all_edges : t -> (vref -> bool) -> bool
(** Does the predicate hold for every parent reference? Short-circuits on
    the first failure; same order as {!iter_edges}, no allocation. *)

val wire_size : n:int -> t -> int
(** Exact wire bytes given tribe size [n] (certificates embed an
    ⌈n/8⌉-bit signer vector). O(1): the edge-dependent part is cached at
    construction. *)

val has_strong_edge_to : t -> round:int -> source:int -> bool

val pp : Format.formatter -> t -> unit

(** Totally ordered (round, source) ids, for deterministic iteration. *)
module Id : sig
  type t = int * int

  val compare : t -> t -> int
end
