open Clanbft_crypto

type t =
  | Val of { vertex : Vertex.t; block : Block.t option; signature : Keychain.signature }
  | Echo of {
      round : int;
      source : int;
      vertex_digest : Digest32.t;
      signer : int;
      signature : Keychain.signature;
    }
  | Echo_cert of {
      round : int;
      source : int;
      vertex_digest : Digest32.t;
      agg : Keychain.aggregate;
      clan_echoes : int;
    }
  | Timeout_share of { round : int; signer : int; signature : Keychain.signature }
  | No_vote_share of { round : int; signer : int; signature : Keychain.signature }
  | Timeout_cert of Cert.t
  | Block_request of { round : int; source : int }
  | Block_reply of { block : Block.t }
  | Vertex_request of { round : int; source : int }
  | Vertex_reply of { vertex : Vertex.t; block : Block.t option }
  | Sync_request of { from_round : int }
  | Sync_reply of { floor : int; highest : int }

let echo_signing_string ~round ~source digest =
  String.concat ""
    [ "echo|"; string_of_int round; "|"; string_of_int source; "|";
      Digest32.to_raw digest ]

(* The string a proposer signs over its VAL. Lives here (not in the
   consensus module) so that adversary strategies forging equivocating
   vertices produce signatures honest validators accept. *)
let val_signing_string (v : Vertex.t) =
  String.concat ""
    [ "val|"; string_of_int v.round; "|"; string_of_int v.source; "|";
      Digest32.to_raw v.digest ]

let sig_size = Keychain.signature_size
let agg_size ~n = Keychain.signature_size + ((n + 7) / 8)

let wire_size ~n t =
  match t with
  | Val { vertex; block; _ } ->
      1 + Vertex.wire_size ~n vertex
      + (match block with None -> 1 | Some b -> 1 + Block.wire_size b)
      + sig_size
  | Echo _ -> 1 + 4 + 4 + Digest32.size + 4 + sig_size
  | Echo_cert _ -> 1 + 4 + 4 + Digest32.size + agg_size ~n + 4
  | Timeout_share _ | No_vote_share _ -> 1 + 4 + 4 + sig_size
  | Timeout_cert _ -> 1 + Cert.wire_size ~n
  | Block_request _ | Vertex_request _ -> 1 + 4 + 4
  | Block_reply { block } -> 1 + Block.wire_size block
  | Vertex_reply { vertex; block } ->
      1 + Vertex.wire_size ~n vertex
      + (match block with None -> 1 | Some b -> 1 + Block.wire_size b)
  | Sync_request _ -> 1 + 4
  | Sync_reply _ -> 1 + 4 + 4

let tag = function
  | Val _ -> "val"
  | Echo _ -> "echo"
  | Echo_cert _ -> "echo_cert"
  | Timeout_share _ -> "timeout_share"
  | No_vote_share _ -> "no_vote_share"
  | Timeout_cert _ -> "timeout_cert"
  | Block_request _ -> "block_request"
  | Block_reply _ -> "block_reply"
  | Vertex_request _ -> "vertex_request"
  | Vertex_reply _ -> "vertex_reply"
  | Sync_request _ -> "sync_request"
  | Sync_reply _ -> "sync_reply"

let round = function
  | Val { vertex; _ } | Vertex_reply { vertex; _ } -> Some vertex.Vertex.round
  | Echo { round; _ }
  | Echo_cert { round; _ }
  | Timeout_share { round; _ }
  | No_vote_share { round; _ }
  | Block_request { round; _ }
  | Vertex_request { round; _ } ->
      Some round
  | Timeout_cert cert -> Some cert.Cert.round
  | Block_reply _ | Sync_request _ | Sync_reply _ -> None

let pp ppf t =
  match t with
  | Val { vertex; block; _ } ->
      Format.fprintf ppf "val(%a%s)" Vertex.pp vertex
        (match block with None -> "" | Some _ -> "+block")
  | Echo { round; source; signer; _ } ->
      Format.fprintf ppf "echo(r%d,src=%d,by=%d)" round source signer
  | Echo_cert { round; source; clan_echoes; _ } ->
      Format.fprintf ppf "echo_cert(r%d,src=%d,clan=%d)" round source clan_echoes
  | Timeout_share { round; signer; _ } ->
      Format.fprintf ppf "timeout_share(r%d,by=%d)" round signer
  | No_vote_share { round; signer; _ } ->
      Format.fprintf ppf "no_vote_share(r%d,by=%d)" round signer
  | Timeout_cert c -> Format.fprintf ppf "timeout_cert(%a)" Cert.pp c
  | Block_request { round; source } ->
      Format.fprintf ppf "block_request(r%d,src=%d)" round source
  | Block_reply { block } -> Format.fprintf ppf "block_reply(%a)" Block.pp block
  | Vertex_request { round; source } ->
      Format.fprintf ppf "vertex_request(r%d,src=%d)" round source
  | Vertex_reply { vertex; _ } -> Format.fprintf ppf "vertex_reply(%a)" Vertex.pp vertex
  | Sync_request { from_round } ->
      Format.fprintf ppf "sync_request(from=r%d)" from_round
  | Sync_reply { floor; highest } ->
      Format.fprintf ppf "sync_reply(floor=r%d,highest=r%d)" floor highest
