module Bitset = Clanbft_util.Bitset
module Prof = Clanbft_obs.Prof

let sec_sign = Prof.section "keychain.sign"
let sec_verify = Prof.section "keychain.verify"

type t = {
  (* Per-party MAC keys. A signature is a keyed pseudo-random function of
     (key, message); the two 63-bit key words give each party an
     effectively unguessable 126-bit secret within the simulation. *)
  k0 : int array;
  k1 : int array;
}

type signature = string

type aggregate = {
  tag : string; (* combined tag: XOR of constituent signature bytes *)
  who : Bitset.t;
  (* The simulation keeps the constituents so that [find_faulty_signers]
     can re-check them individually, as a real implementation would by
     re-verifying each partial BLS signature. They are NOT accounted on the
     wire. *)
  parts : (int * signature) list;
  (* Expected-tag memo: one aggregate object is broadcast to n receivers;
     recomputing its expected tag per receiver would be O(n * quorum)
     lane computations. *)
  mutable expected : string option;
}

let signature_size = 64

(* ------------------------------------------------------------------ *)
(* The simulated MAC.

   Echo verification at n = 150 runs ~n^3 times per round (n RBC
   instances, each echoed by n parties to n receivers), so the tag
   computation is the single hottest function in a paper-scale run. An
   earlier version used SHA-256(sk ‖ msg) behind a (signer, message) memo
   table; at 13 MB the table outgrew the cache and the generic string
   hash per probe dominated the profile. Signatures are *simulated*
   either way — what consensus needs is that a party that does not hold
   the key cannot produce a tag that verifies, and that distinct
   (signer, message) pairs get distinct tags w.h.p. — so the tag is now a
   keyed avalanche over the message digest: two independent 63-bit FNV
   accumulators over the message (≈126 bits against collisions), then
   four splitmix-style mixed output lanes keyed by the party's secret.
   Verification recomputes the four lanes and compares bytes in place:
   no table, no allocation, ~tens of ns. *)

let fnv_offset0 = 0x1CBF29CE484222E5
let fnv_offset1 = 0x6C62272E07BB0142
let fnv_prime0 = 0x100000001B3
let fnv_prime1 = 0x10000000233

(* splitmix64 finalizer truncated to OCaml's 63-bit native int. *)
let mix z =
  let z = (z lxor (z lsr 30)) * 0x1F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let msg_hash0 msg =
  let h = ref fnv_offset0 in
  for i = 0 to String.length msg - 1 do
    h := (!h lxor Char.code (String.unsafe_get msg i)) * fnv_prime0
  done;
  !h

let msg_hash1 msg =
  let h = ref fnv_offset1 in
  for i = 0 to String.length msg - 1 do
    h := (!h lxor Char.code (String.unsafe_get msg i)) * fnv_prime1
  done;
  !h

let lane ~k0 ~k1 ~h0 ~h1 i =
  mix (k0 + (h0 * 0x9E3779B9) + (i * 0x3C6EF372) + ((k1 lxor h1) lsl 1))

let create ~seed ~n =
  let rng = Clanbft_util.Rng.create seed in
  let word () = Int64.to_int (Clanbft_util.Rng.next_int64 rng) land max_int in
  let k0 = Array.init n (fun _ -> word ()) in
  let k1 = Array.init n (fun _ -> word ()) in
  { k0; k1 }

let n t = Array.length t.k0

let set_lane b off v =
  for i = 0 to 7 do
    Bytes.unsafe_set b (off + i) (Char.unsafe_chr ((v lsr (8 * i)) land 0xff))
  done

(* Byte 7 of each lane carries at most 7 significant bits (63-bit lanes),
   so a valid tag never has 0xff there — [forge] can never verify. *)
let lane_matches s off v =
  let ok = ref true in
  for i = 0 to 7 do
    if Char.code (String.unsafe_get s (off + i)) <> (v lsr (8 * i)) land 0xff
    then ok := false
  done;
  !ok

(* Precomputed message hash: the echo path verifies n distinct signers
   against the SAME signing string (once per slot per receiver), so the
   caller hashes the message once and amortises the FNV passes across all
   its verifications — see [Sailfish]'s per-slot vote state. *)
type msg_hash = { h0 : int; h1 : int }

let hash_msg msg = { h0 = msg_hash0 msg; h1 = msg_hash1 msg }

let sign t ~signer msg =
  if signer < 0 || signer >= n t then invalid_arg "Keychain.sign: bad signer";
  Prof.enter sec_sign;
  let k0 = Array.unsafe_get t.k0 signer
  and k1 = Array.unsafe_get t.k1 signer in
  let h0 = msg_hash0 msg and h1 = msg_hash1 msg in
  let b = Bytes.create 32 in
  for i = 0 to 3 do
    set_lane b (8 * i) (lane ~k0 ~k1 ~h0 ~h1 i)
  done;
  let s = Bytes.unsafe_to_string b in
  Prof.leave sec_sign;
  s

let verify_hashed t ~signer { h0; h1 } signature =
  Prof.enter sec_verify;
  let ok =
    signer >= 0 && signer < n t
    && String.length signature = 32
    &&
    let k0 = Array.unsafe_get t.k0 signer
    and k1 = Array.unsafe_get t.k1 signer in
    lane_matches signature 0 (lane ~k0 ~k1 ~h0 ~h1 0)
    && lane_matches signature 8 (lane ~k0 ~k1 ~h0 ~h1 1)
    && lane_matches signature 16 (lane ~k0 ~k1 ~h0 ~h1 2)
    && lane_matches signature 24 (lane ~k0 ~k1 ~h0 ~h1 3)
  in
  Prof.leave sec_verify;
  ok

let verify t ~signer msg signature =
  verify_hashed t ~signer (hash_msg msg) signature

let forge = String.make 32 '\xff'

let aggregate t ~msg parts =
  ignore msg;
  let total = n t in
  let who = Bitset.create total in
  let ok =
    List.for_all
      (fun (signer, _) -> signer >= 0 && signer < total && Bitset.add who signer)
      parts
  in
  if not ok then None
  else begin
    let out = Bytes.make 32 '\x00' in
    List.iter
      (fun (_, s) ->
        for i = 0 to min (Bytes.length out) (String.length s) - 1 do
          Bytes.unsafe_set out i
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get out i) lxor Char.code s.[i]))
        done)
      parts;
    Some { tag = Bytes.unsafe_to_string out; who; parts; expected = None }
  end

(* XOR of honest signatures = per-lane XOR of their lane words, so the
   expected tag folds in native-int lanes: one message hash plus four mixed
   lanes per signer, no intermediate strings. *)
let expected_tag_hashed t ~hash:{ h0; h1 } agg =
  match agg.expected with
  | Some e -> e
  | None ->
      let l0 = ref 0 and l1 = ref 0 and l2 = ref 0 and l3 = ref 0 in
      Bitset.fold
        (fun signer () ->
          let k0 = Array.unsafe_get t.k0 signer
          and k1 = Array.unsafe_get t.k1 signer in
          l0 := !l0 lxor lane ~k0 ~k1 ~h0 ~h1 0;
          l1 := !l1 lxor lane ~k0 ~k1 ~h0 ~h1 1;
          l2 := !l2 lxor lane ~k0 ~k1 ~h0 ~h1 2;
          l3 := !l3 lxor lane ~k0 ~k1 ~h0 ~h1 3)
        agg.who ();
      let b = Bytes.create 32 in
      set_lane b 0 !l0;
      set_lane b 8 !l1;
      set_lane b 16 !l2;
      set_lane b 24 !l3;
      let e = Bytes.unsafe_to_string b in
      agg.expected <- Some e;
      e

let verify_aggregate_hashed t ~hash agg =
  Prof.enter sec_verify;
  let ok = String.equal agg.tag (expected_tag_hashed t ~hash agg) in
  Prof.leave sec_verify;
  ok

let verify_aggregate t ~msg agg =
  verify_aggregate_hashed t ~hash:(hash_msg msg) agg

let find_faulty_signers t ~msg agg =
  if verify_aggregate t ~msg agg then []
  else
    List.filter_map
      (fun (signer, s) ->
        if verify t ~signer msg s then None else Some signer)
      agg.parts
    |> List.sort_uniq Stdlib.compare

let signers agg = agg.who
let aggregate_size t = signature_size + ((n t + 7) / 8)
let aggregate_tag agg = agg.tag
let aggregate_of_wire ~tag ~signers =
  { tag; who = signers; parts = []; expected = None }
let signature_to_raw s = s
let approx_live_words t = (2 * (Array.length t.k0 + 1)) + 3

let signature_of_raw s =
  if String.length s <> 32 then invalid_arg "Keychain.signature_of_raw";
  s
