module Bitset = Clanbft_util.Bitset

type t = {
  secrets : string array;
  (* Signature memo: a broadcast signature is verified once by each of n
     receivers; computing the simulated tag once per (signer, message) and
     serving the rest from this table keeps large simulations affordable.
     Keys are (signer, message): every protocol signing payload is a short
     domain-separated string (a few tens of bytes — see
     [Msg.echo_signing_string] and friends), so an entry stays ~100 bytes,
     and keying by the message itself means a memo hit costs one cheap
     structural hash instead of a full SHA-256 of the message — the
     dominant cost of echo verification at n = 150. The table is
     hard-bounded at [memo_limit] entries (reset wholesale when full, like
     a real implementation's verification cache). *)
  sig_cache : (int * string, string) Hashtbl.t;
}

type signature = string

type aggregate = {
  tag : string; (* combined tag: XOR of constituent signature bytes *)
  who : Bitset.t;
  (* The simulation keeps the constituents so that [find_faulty_signers]
     can re-check them individually, as a real implementation would by
     re-verifying each partial BLS signature. They are NOT accounted on the
     wire. *)
  parts : (int * signature) list;
  (* Expected-tag memo: one aggregate object is broadcast to n receivers;
     recomputing its expected tag per receiver would be O(n * quorum)
     hashes. *)
  mutable expected : string option;
}

(* A 4-second n=16 run produces ~90k distinct (signer, echo-string) pairs;
   2^16 forced a wholesale reset mid-run, re-priming the table at full
   SHA-256 cost. 2^17 entries (~13 MB worst case) rides out the pinned
   scenarios without a reset while still bounding longer runs. *)
let memo_limit = 1 lsl 17

let signature_size = 64

let create ~seed ~n =
  let rng = Clanbft_util.Rng.create seed in
  let secrets =
    Array.init n (fun i ->
        ignore i;
        Bytes.unsafe_to_string (Clanbft_util.Rng.bytes rng 32))
  in
  { secrets; sig_cache = Hashtbl.create 4096 }

let n t = Array.length t.secrets

(* Party i's signature on msg is SHA-256(sk_i ‖ msg), computed only on a
   memo miss — the steady-state verify path never touches SHA-256. *)
let sign t ~signer msg =
  if signer < 0 || signer >= n t then invalid_arg "Keychain.sign: bad signer";
  let key = (signer, msg) in
  match Hashtbl.find_opt t.sig_cache key with
  | Some s -> s
  | None ->
      if Hashtbl.length t.sig_cache >= memo_limit then
        Hashtbl.reset t.sig_cache;
      let ctx = Sha256.init () in
      Sha256.feed_string ctx t.secrets.(signer);
      Sha256.feed_string ctx msg;
      let s = Sha256.finalize ctx in
      Hashtbl.replace t.sig_cache key s;
      s

let memo_entries t = Hashtbl.length t.sig_cache

let verify t ~signer msg signature =
  signer >= 0 && signer < n t && String.equal signature (sign t ~signer msg)

let forge = String.make 32 '\xff'

let xor_into acc s =
  let out = Bytes.of_string acc in
  for i = 0 to min (Bytes.length out) (String.length s) - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get out i) lxor Char.code s.[i]))
  done;
  Bytes.unsafe_to_string out

let aggregate t ~msg parts =
  ignore msg;
  let total = n t in
  let who = Bitset.create total in
  let ok =
    List.for_all
      (fun (signer, _) -> signer >= 0 && signer < total && Bitset.add who signer)
      parts
  in
  if not ok then None
  else begin
    let tag =
      List.fold_left (fun acc (_, s) -> xor_into acc s) (String.make 32 '\x00')
        parts
    in
    Some { tag; who; parts; expected = None }
  end

let expected_tag t ~msg agg =
  match agg.expected with
  | Some e -> e
  | None ->
      let e =
        Bitset.fold
          (fun signer acc -> xor_into acc (sign t ~signer msg))
          agg.who
          (String.make 32 '\x00')
      in
      agg.expected <- Some e;
      e

let verify_aggregate t ~msg agg = String.equal agg.tag (expected_tag t ~msg agg)

let find_faulty_signers t ~msg agg =
  if verify_aggregate t ~msg agg then []
  else
    List.filter_map
      (fun (signer, s) ->
        if verify t ~signer msg s then None else Some signer)
      agg.parts
    |> List.sort_uniq Stdlib.compare

let signers agg = agg.who
let aggregate_size t = signature_size + ((n t + 7) / 8)
let aggregate_tag agg = agg.tag
let aggregate_of_wire ~tag ~signers =
  { tag; who = signers; parts = []; expected = None }
let signature_to_raw s = s

let signature_of_raw s =
  if String.length s <> 32 then invalid_arg "Keychain.signature_of_raw";
  s
