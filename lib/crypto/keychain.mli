(** Simulated digital signatures and BLS-style multi-signatures.

    The sealed container offers no elliptic-curve library, so signatures are
    simulated: party [i]'s signature on [msg] is
    [SHA-256(sk_i ‖ msg)] and the verifier recomputes it through the shared
    {!t} registry (the simulation stand-in for a PKI). Within the simulator
    this is unforgeable for any adversary that does not hold [sk_i], which is
    exactly the guarantee consensus needs. Byte sizes on the wire are
    accounted separately and match the paper's BLS setting: an individual
    signature costs κ bytes and an aggregate costs κ bytes plus an
    ⌈n/8⌉-byte signer bitvector (§4: "merely a bit vector indicating who
    voted").

    Aggregate verification follows the paper's optimisation: the aggregate is
    checked as a whole first; only on mismatch are the constituent signatures
    checked individually to expose the faulty signer. *)

type t
(** A key registry for [n] parties. *)

type signature

type aggregate
(** A multi-signature: one combined tag plus the signer set. *)

val create : seed:int64 -> n:int -> t
val n : t -> int

val sign : t -> signer:int -> string -> signature
val verify : t -> signer:int -> string -> signature -> bool

val memo_limit : int
(** Hard bound on the signature-memo table: entries are keyed by
    (signer, 32-byte message digest) — never by the message itself — and
    the table resets wholesale when full, so a run of any length keeps the
    memo within [memo_limit] entries of ~100 bytes each. *)

val memo_entries : t -> int
(** Current memo occupancy; always [<= memo_limit]. For tests and
    diagnostics. *)

val forge : signature
(** An invalid signature, for Byzantine behaviours in tests. *)

val signature_size : int
(** Wire bytes of one signature (κ = 64, covering hash- and signature-size
    as the paper does). *)

val aggregate : t -> msg:string -> (int * signature) list -> aggregate option
(** Combine signatures on [msg]. Mirrors the paper's flow: aggregation never
    fails (no upfront verification) — this function returns [None] only if a
    signer index is out of range. The aggregate may later fail
    verification if a constituent was forged. *)

val verify_aggregate : t -> msg:string -> aggregate -> bool

val find_faulty_signers : t -> msg:string -> aggregate -> int list
(** Individual re-verification after an aggregate failure: the paper's
    "identify and penalize the faulty party" path. Empty when the aggregate
    is actually valid. *)

val signers : aggregate -> Clanbft_util.Bitset.t
val aggregate_size : t -> int
(** κ + ⌈n/8⌉ bytes. *)

(** {1 Wire access}

    For the binary codec: an aggregate travels as its combined tag plus the
    signer bitvector. The constituent shares are a local aggregation aid and
    never hit the wire, so a decoded aggregate supports {!verify_aggregate}
    but reports no faulty signers. *)

val aggregate_tag : aggregate -> string
(** The 32-byte combined tag. *)

val aggregate_of_wire : tag:string -> signers:Clanbft_util.Bitset.t -> aggregate

val signature_to_raw : signature -> string
(** The 32-byte tag (wire accounting still charges κ = 64). *)

val signature_of_raw : string -> signature
(** Raises [Invalid_argument] unless given 32 bytes. *)
