(** Simulated digital signatures and BLS-style multi-signatures.

    The sealed container offers no elliptic-curve library, so signatures are
    simulated: party [i]'s signature on [msg] is a keyed pseudo-random tag —
    four splitmix-style avalanche lanes over two independent 63-bit message
    digests, keyed by party [i]'s secret words — and the verifier recomputes
    it through the shared {!t} registry (the simulation stand-in for a PKI).
    Within the simulator this is unforgeable for any adversary that does not
    hold the key, which is exactly the guarantee consensus needs; it is
    deliberately {e not} cryptographic strength, because echo verification
    runs ~n³ times per round at paper scale and the tag computation is the
    hottest function in an n = 150 run. Byte sizes on the wire are
    accounted separately and match the paper's BLS setting: an individual
    signature costs κ bytes and an aggregate costs κ bytes plus an
    ⌈n/8⌉-byte signer bitvector (§4: "merely a bit vector indicating who
    voted").

    Aggregate verification follows the paper's optimisation: the aggregate is
    checked as a whole first; only on mismatch are the constituent signatures
    checked individually to expose the faulty signer. *)

type t
(** A key registry for [n] parties. *)

type signature

type aggregate
(** A multi-signature: one combined tag plus the signer set. *)

val create : seed:int64 -> n:int -> t
val n : t -> int

val sign : t -> signer:int -> string -> signature
val verify : t -> signer:int -> string -> signature -> bool

type msg_hash
(** A message's two 63-bit digests, precomputed once. The echo path
    verifies up to [n] signers against the same signing string, so hashing
    it once per slot and passing the [msg_hash] amortises the message scan
    across all of a slot's verifications. *)

val hash_msg : string -> msg_hash

val verify_hashed : t -> signer:int -> msg_hash -> signature -> bool
(** [verify_hashed t ~signer (hash_msg msg) s = verify t ~signer msg s]. *)

val verify_aggregate_hashed : t -> hash:msg_hash -> aggregate -> bool
(** Aggregate verification against a precomputed message hash; equal to
    {!verify_aggregate} on the original message. *)

val forge : signature
(** An invalid signature, for Byzantine behaviours in tests. *)

val signature_size : int
(** Wire bytes of one signature (κ = 64, covering hash- and signature-size
    as the paper does). *)

val aggregate : t -> msg:string -> (int * signature) list -> aggregate option
(** Combine signatures on [msg]. Mirrors the paper's flow: aggregation never
    fails (no upfront verification) — this function returns [None] only if a
    signer index is out of range. The aggregate may later fail
    verification if a constituent was forged. *)

val verify_aggregate : t -> msg:string -> aggregate -> bool

val find_faulty_signers : t -> msg:string -> aggregate -> int list
(** Individual re-verification after an aggregate failure: the paper's
    "identify and penalize the faulty party" path. Empty when the aggregate
    is actually valid. *)

val signers : aggregate -> Clanbft_util.Bitset.t
val aggregate_size : t -> int
(** κ + ⌈n/8⌉ bytes. *)

(** {1 Wire access}

    For the binary codec: an aggregate travels as its combined tag plus the
    signer bitvector. The constituent shares are a local aggregation aid and
    never hit the wire, so a decoded aggregate supports {!verify_aggregate}
    but reports no faulty signers. *)

val aggregate_tag : aggregate -> string
(** The 32-byte combined tag. *)

val aggregate_of_wire : tag:string -> signers:Clanbft_util.Bitset.t -> aggregate

val signature_to_raw : signature -> string
(** The 32-byte tag (wire accounting still charges κ = 64). *)

val signature_of_raw : string -> signature
(** Raises [Invalid_argument] unless given 32 bytes. *)

val approx_live_words : t -> int
(** Heap-census hook: word estimate of the per-party key arrays. Expected-tag
    memos live on the aggregates themselves and are counted with the messages
    that carry them. See docs/PROFILING.md. *)
