(* Straightforward FIPS 180-4 implementation over native ints masked to 32
   bits. OCaml's native int is 63-bit, so 32-bit modular arithmetic is just
   [land 0xFFFFFFFF] after additions; logical ops need no masking because
   operands stay within 32 bits. *)

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 chaining words *)
  block : bytes; (* 64-byte working block *)
  mutable block_len : int; (* bytes currently buffered in [block] *)
  mutable total_len : int; (* total message bytes fed so far *)
  w : int array; (* 64-entry message schedule, reused across blocks *)
  mutable finalized : bool;
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    block = Bytes.create 64;
    block_len = 0;
    total_len = 0;
    w = Array.make 64 0;
    finalized = false;
  }

let mask = 0xFFFFFFFF

(* Compress one 64-byte block read from [src] at [off]. The schedule loads
   words with 32-bit reads instead of four byte loads each; the expansion
   and round loops hoist repeated array reads and go through unsafe
   accessors (indices are statically in range); the eight working variables
   live as parameters of a tail-recursive round function, so the whole
   round loop runs without a single heap allocation. *)
let compress_block ctx src off =
  let w = ctx.w in
  for i = 0 to 15 do
    Array.unsafe_set w i
      (Int32.to_int (Bytes.get_int32_be src (off + (4 * i))) land mask)
  done;
  (* Rotations: a 32-bit value doubled into the low 62 bits of the native
     int ([x lor (x lsl 32)]) turns each rotr into a single shift. All
     rotation amounts used by SHA-256 are < 32, so every needed bit sits
     below position 57 and the 63-bit int loses nothing. *)
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) and w2 = Array.unsafe_get w (i - 2) in
    let w15d = w15 lor (w15 lsl 32) and w2d = w2 lor (w2 lsl 32) in
    let s0 = ((w15d lsr 7) lxor (w15d lsr 18) lxor (w15 lsr 3)) land mask in
    let s1 = ((w2d lsr 17) lxor (w2d lsr 19) lxor (w2 lsr 10)) land mask in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask)
  done;
  let h = ctx.h in
  let rec round i a b c d e f g hh =
    if i = 64 then begin
      h.(0) <- (h.(0) + a) land mask;
      h.(1) <- (h.(1) + b) land mask;
      h.(2) <- (h.(2) + c) land mask;
      h.(3) <- (h.(3) + d) land mask;
      h.(4) <- (h.(4) + e) land mask;
      h.(5) <- (h.(5) + f) land mask;
      h.(6) <- (h.(6) + g) land mask;
      h.(7) <- (h.(7) + hh) land mask
    end
    else begin
      let ed = e lor (e lsl 32) in
      let s1 = ((ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25)) land mask in
      (* ch = (e AND f) XOR (NOT e AND g), via the branch-free identity. *)
      let ch = g lxor (e land (f lxor g)) in
      let temp1 =
        (hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask
      in
      let ad = a lor (a lsl 32) in
      let s0 = ((ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22)) land mask in
      (* maj, as (a AND b) OR (c AND (a OR b)). *)
      let maj = a land b lor (c land (a lor b)) in
      let temp2 = (s0 + maj) land mask in
      round (i + 1) ((temp1 + temp2) land mask) a b c ((d + temp1) land mask) e
        f g
    end
  in
  round 0 h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7)

let compress ctx = compress_block ctx ctx.block 0

let feed_bytes ctx src ~pos ~len =
  if ctx.finalized then invalid_arg "Sha256: context already finalized";
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Sha256.feed_bytes: bad range";
  ctx.total_len <- ctx.total_len + len;
  let pos = ref pos and remaining = ref len in
  (* Top up a partially filled working block first. *)
  if ctx.block_len > 0 then begin
    let chunk = min (64 - ctx.block_len) !remaining in
    Bytes.blit src !pos ctx.block ctx.block_len chunk;
    ctx.block_len <- ctx.block_len + chunk;
    pos := !pos + chunk;
    remaining := !remaining - chunk;
    if ctx.block_len = 64 then begin
      compress ctx;
      ctx.block_len <- 0
    end
  end;
  (* Bulk path: full blocks compress straight from the source, skipping the
     copy through the 64-byte buffer. *)
  if ctx.block_len = 0 then begin
    while !remaining >= 64 do
      compress_block ctx src !pos;
      pos := !pos + 64;
      remaining := !remaining - 64
    done;
    if !remaining > 0 then begin
      Bytes.blit src !pos ctx.block 0 !remaining;
      ctx.block_len <- !remaining;
      remaining := 0
    end
  end

let feed_string ctx s =
  feed_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256: context already finalized";
  let bit_len = ctx.total_len * 8 in
  (* Padding: 0x80, zeros, then the 64-bit big-endian bit length. *)
  let pad_len =
    let r = (ctx.total_len + 1 + 8) mod 64 in
    if r = 0 then 1 else 1 + (64 - r)
  in
  let pad = Bytes.make (pad_len + 8) '\x00' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len + i)
      (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  (* Bypass the total_len update: feed the padding directly. *)
  let pos = ref 0 and remaining = ref (Bytes.length pad) in
  while !remaining > 0 do
    let space = 64 - ctx.block_len in
    let chunk = min space !remaining in
    Bytes.blit pad !pos ctx.block ctx.block_len chunk;
    ctx.block_len <- ctx.block_len + chunk;
    pos := !pos + chunk;
    remaining := !remaining - chunk;
    if ctx.block_len = 64 then begin
      compress ctx;
      ctx.block_len <- 0
    end
  done;
  assert (ctx.block_len = 0);
  ctx.finalized <- true;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

let sec_digest = Clanbft_obs.Prof.section "sha256"

let digest_string s =
  Clanbft_obs.Prof.enter sec_digest;
  let ctx = init () in
  feed_string ctx s;
  let d = finalize ctx in
  Clanbft_obs.Prof.leave sec_digest;
  d

let hex_of_string s = Clanbft_util.Hex.encode (digest_string s)
