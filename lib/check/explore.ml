open Clanbft_sim
module Rng = Clanbft_util.Rng

type stats = {
  mutable runs : int;
  mutable transitions : int;
  mutable pruned : int;
  mutable max_depth : int;
  mutable truncated : int;
}

type result = {
  violation : Harness.violation option;
  schedule : Schedule.t;
  seed : int64 option;
  stats : stats;
}

let new_stats () =
  { runs = 0; transitions = 0; pruned = 0; max_depth = 0; truncated = 0 }

(* A scheduling option: the action, its delay-bound cost, and the node it
   concerns (-1 for timers) — the dependence footprint for sleep sets. *)
type opt = { action : Schedule.action; cost : int; dst : int }

let sorted_deliveries w =
  List.sort
    (fun (a : Engine.choice) (b : Engine.choice) ->
      compare (a.time, a.id) (b.time, b.id))
    (Harness.enabled_deliveries w)

(* Crash targets: live honest nodes (pausing an already-paused or Byzantine
   node is rejected by the harness anyway). *)
let crash_targets w =
  let s = Harness.spec w in
  List.filter
    (fun i -> not (List.mem i (Harness.byzantine w) || Harness.crashed w i))
    (List.init s.Harness.n Fun.id)

let options w ~window =
  let ds = sorted_deliveries w in
  let have_deliveries = ds <> [] in
  let busy = have_deliveries || Harness.calendar_pending w in
  let del =
    List.filteri (fun k _ -> k < window) ds
    |> List.mapi (fun k (c : Engine.choice) ->
           { action = Schedule.Deliver c.id; cost = k; dst = c.dst })
  in
  let step =
    if Harness.calendar_pending w then
      [ { action = Schedule.Step; cost = (if have_deliveries then 1 else 0); dst = -1 } ]
    else []
  in
  let crashes =
    if busy && Harness.crashes_left w > 0 then
      List.map
        (fun i -> { action = Schedule.Crash i; cost = 1; dst = i })
        (crash_targets w)
    else []
  in
  let recovers =
    List.map
      (fun i -> { action = Schedule.Recover i; cost = 1; dst = i })
      (Harness.crash_paused w)
  in
  del @ step @ crashes @ recovers

(* No applicable option at all: quiescent with nothing left to recover.
   (Crash options are gated on [busy], so an idle world with spare crash
   budget still counts as finished.) *)
let finished w =
  Harness.quiescent w && Harness.crash_paused w = []

let rec settle w = if finished w && Harness.on_quiescence w then settle w

(* ------------------------------------------------------------------ *)
(* Replay *)

type run = {
  world : Harness.world;
  executed : Schedule.t;
  notes : string list;
  run_violation : Harness.violation option;
  error : string option;
  truncated : bool;
}

let canonical_action w =
  match sorted_deliveries w with
  | (c : Engine.choice) :: _ -> Some (Schedule.Deliver c.id)
  | [] ->
      if Harness.calendar_pending w then Some Schedule.Step
      else (
        match Harness.crash_paused w with
        | i :: _ -> Some (Schedule.Recover i)
        | [] -> None)

let run_schedule ?(trace = false) ?(complete = true) ?(max_actions = 2000) spec
    sched =
  let w = Harness.build ~trace spec in
  let executed = ref [] and notes = ref [] and count = ref 0 in
  let error = ref None and truncated = ref false in
  let ok () = Harness.violation w = None && !error = None && not !truncated in
  let exec a =
    settle w;
    if !count >= max_actions then truncated := true
    else begin
      let note = Harness.describe w a in
      match Harness.apply w a with
      | Ok () ->
          executed := a :: !executed;
          notes := note :: !notes;
          incr count
      | Error e -> error := Some e
    end
  in
  List.iter (fun a -> if ok () then exec a) sched;
  if complete then begin
    let continue = ref (ok ()) in
    while !continue do
      settle w;
      match canonical_action w with
      | Some a ->
          exec a;
          continue := ok ()
      | None -> continue := false
    done
  end;
  let run_violation =
    match Harness.violation w with
    | Some v -> Some v
    | None ->
        if !error = None && not !truncated && complete && finished w then
          Harness.wrapup w
        else None
  in
  {
    world = w;
    executed = List.rev !executed;
    notes = List.rev !notes;
    run_violation;
    error = !error;
    truncated = !truncated;
  }

(* ------------------------------------------------------------------ *)
(* Exhaustive delay-bounded DFS with sleep sets *)

(* Sleep entries carry the dependence footprint; only deliveries to
   distinct destinations commute. *)
let independent (slept : opt) (chosen : opt) =
  match (slept.action, chosen.action) with
  | Schedule.Deliver _, Schedule.Deliver _ -> slept.dst <> chosen.dst
  | _ -> false

let same_action a b =
  match (a.action, b.action) with
  | Schedule.Deliver i, Schedule.Deliver j -> i = j
  | Schedule.Step, Schedule.Step -> true
  | Schedule.Crash i, Schedule.Crash j -> i = j
  | Schedule.Recover i, Schedule.Recover j -> i = j
  | _ -> false

let exhaustive ?(delay_budget = 2) ?(window = 4) ?(max_actions = 400)
    ?(dpor = true) spec =
  let stats = new_stats () in
  let found = ref None in
  (* Rebuild a world positioned after [prefix] (stateless backtracking). *)
  let rebuild prefix =
    let w = Harness.build spec in
    List.iter
      (fun a ->
        settle w;
        match Harness.apply w a with
        | Ok () -> ()
        | Error e ->
            invalid_arg ("Explore.exhaustive: replay divergence: " ^ e))
      prefix;
    w
  in
  (* [prefix] is reversed; [w] has it applied. *)
  let rec dfs w rprefix depth cost sleep =
    if !found = None then begin
      if depth > stats.max_depth then stats.max_depth <- depth;
      match Harness.violation w with
      | Some v ->
          stats.runs <- stats.runs + 1;
          found := Some (v, List.rev rprefix)
      | None -> (
          let opts = options w ~window in
          if opts = [] then
            if Harness.on_quiescence w then dfs w rprefix depth cost sleep
            else begin
              stats.runs <- stats.runs + 1;
              match Harness.wrapup w with
              | Some v -> found := Some (v, List.rev rprefix)
              | None -> ()
            end
          else if depth >= max_actions then begin
            stats.runs <- stats.runs + 1;
            stats.truncated <- stats.truncated + 1
          end
          else begin
            let slept = ref sleep in
            List.iter
              (fun o ->
                if !found = None then
                  if List.exists (fun s -> same_action s o) !slept then
                    stats.pruned <- stats.pruned + 1
                  else if cost + o.cost > delay_budget then
                    stats.pruned <- stats.pruned + 1
                  else begin
                    stats.transitions <- stats.transitions + 1;
                    let rprefix' = o.action :: rprefix in
                    let w' = rebuild (List.rev rprefix') in
                    let child_sleep =
                      List.filter (fun s -> independent s o) !slept
                    in
                    dfs w' rprefix' (depth + 1) (cost + o.cost) child_sleep;
                    if dpor then slept := o :: !slept
                  end)
              opts
          end)
    end
  in
  dfs (Harness.build spec) [] 0 0 [];
  match !found with
  | Some (v, sched) ->
      { violation = Some v; schedule = sched; seed = None; stats }
  | None -> { violation = None; schedule = []; seed = None; stats }

(* ------------------------------------------------------------------ *)
(* Random walks *)

let walks ?(max_actions = 400) ~seed ~count spec =
  let stats = new_stats () in
  let master = Rng.create seed in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < count do
    incr i;
    let walk_seed = Rng.next_int64 master in
    let rng = Rng.create walk_seed in
    let w = Harness.build spec in
    let rprefix = ref [] in
    let depth = ref 0 in
    let running = ref true in
    while !running do
      match Harness.violation w with
      | Some v ->
          found := Some (v, List.rev !rprefix, walk_seed);
          running := false
      | None -> (
          let opts = options w ~window:max_int in
          if opts = [] then begin
            if not (Harness.on_quiescence w) then begin
              (match Harness.wrapup w with
              | Some v -> found := Some (v, List.rev !rprefix, walk_seed)
              | None -> ());
              running := false
            end
          end
          else if !depth >= max_actions then begin
            stats.truncated <- stats.truncated + 1;
            running := false
          end
          else begin
            let o = List.nth opts (Rng.int rng (List.length opts)) in
            (match Harness.apply w o.action with
            | Ok () -> ()
            | Error e -> invalid_arg ("Explore.walks: bad option: " ^ e));
            rprefix := o.action :: !rprefix;
            incr depth;
            stats.transitions <- stats.transitions + 1
          end)
    done;
    stats.runs <- stats.runs + 1;
    if !depth > stats.max_depth then stats.max_depth <- !depth
  done;
  match !found with
  | Some (v, sched, ws) ->
      { violation = Some v; schedule = sched; seed = Some ws; stats }
  | None -> { violation = None; schedule = []; seed = None; stats }

(* ------------------------------------------------------------------ *)
(* Minimization *)

let minimize spec sched =
  let base = run_schedule spec sched in
  match base.run_violation with
  | None -> sched
  | Some v0 ->
      let target = v0.invariant in
      (* Work from the executed sequence: it is truncated at the violation
         and includes any canonical completion, so it stands alone. *)
      let current = ref base.executed in
      let improved = ref true in
      while !improved do
        improved := false;
        let len = List.length !current in
        let i = ref 0 in
        while (not !improved) && !i < len do
          let cand = List.filteri (fun j _ -> j <> !i) !current in
          let r = run_schedule spec cand in
          (match r.run_violation with
          | Some v
            when v.invariant = target
                 && List.length r.executed < List.length !current ->
              current := r.executed;
              improved := true
          | _ -> ());
          incr i
        done
      done;
      !current
