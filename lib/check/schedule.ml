type action = Deliver of int | Step | Crash of int | Recover of int
type t = action list

let action_to_string = function
  | Deliver id -> Printf.sprintf "deliver %d" id
  | Step -> "step"
  | Crash i -> Printf.sprintf "crash %d" i
  | Recover i -> Printf.sprintf "recover %d" i

let action_of_string s =
  match String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "") with
  | [ "step" ] -> Ok Step
  | [ "deliver"; id ] -> (
      match int_of_string_opt id with
      | Some id -> Ok (Deliver id)
      | None -> Error ("bad deliver id: " ^ id))
  | [ "crash"; i ] -> (
      match int_of_string_opt i with
      | Some i -> Ok (Crash i)
      | None -> Error ("bad crash node: " ^ i))
  | [ "recover"; i ] -> (
      match int_of_string_opt i with
      | Some i -> Ok (Recover i)
      | None -> Error ("bad recover node: " ^ i))
  | _ -> Error ("unrecognised action: " ^ String.trim s)

let header = "# clanbft/check-schedule/v1"

let save ~path ~meta ?notes actions =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header ^ "\n");
      List.iter
        (fun (k, v) ->
          if String.contains k ' ' || String.contains k '=' then
            invalid_arg "Schedule.save: meta key contains whitespace or '='";
          Printf.fprintf oc "meta %s=%s\n" k v)
        meta;
      let notes =
        match notes with
        | Some ns when List.length ns = List.length actions -> ns
        | Some _ -> invalid_arg "Schedule.save: notes do not align with actions"
        | None -> List.map (fun _ -> "") actions
      in
      List.iter2
        (fun a note ->
          if note = "" then Printf.fprintf oc "%s\n" (action_to_string a)
          else Printf.fprintf oc "%-14s # %s\n" (action_to_string a) note)
        actions notes)

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let meta = ref [] and actions = ref [] and err = ref None in
      (try
         while !err = None do
           let raw = input_line ic in
           let line = String.trim (strip_comment raw) in
           if line = "" then ()
           else if String.length line >= 5 && String.sub line 0 5 = "meta " then begin
             let kv = String.sub line 5 (String.length line - 5) in
             match String.index_opt kv '=' with
             | None -> err := Some ("meta line without '=': " ^ raw)
             | Some i ->
                 meta :=
                   ( String.sub kv 0 i,
                     String.sub kv (i + 1) (String.length kv - i - 1) )
                   :: !meta
           end
           else
             match action_of_string line with
             | Ok a -> actions := a :: !actions
             | Error e -> err := Some e
         done
       with End_of_file -> ());
      match !err with
      | Some e -> Error e
      | None -> Ok (List.rev !meta, List.rev !actions))

let pp ppf t =
  List.iter (fun a -> Format.fprintf ppf "%s@." (action_to_string a)) t
