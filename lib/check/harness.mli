(** Checkable worlds: small protocol deployments under external scheduling.

    A {!world} is a deterministic protocol deployment — TA-RBC (any of the
    four {!Clanbft_rbc.Rbc.protocol} families) or Sailfish consensus —
    whose message deliveries are parked at the engine's delivery-choice
    points ({!Clanbft_sim.Engine.set_choice_mode}) instead of running in
    calendar order. The explorer ({!Explore}) decides, action by action,
    which pending delivery fires, when timers run, and which nodes pause;
    the harness evaluates the safety invariants after every action and
    the totality-style invariants at quiescence.

    {2 Determinism contract}

    [build spec] is a pure function of the spec: fixed keychain seed,
    jitter-free uniform topology, GST 0, and adversary traffic injected
    in node-id order. Applying the same action sequence to two
    independently built worlds therefore produces identical choice-id
    assignments, identical handler executions and identical violations —
    the property {!Schedule} replay and the checker's byte-identical
    trace regression rest on.

    {2 Invariants}

    Safety (checked after every action, reported via {!violation}):
    {ul
    {- {b agreement} — no two honest nodes deliver different digests for
       one RBC instance;}
    {- {b validity} — with an honest sender, a delivered digest is the
       digest of the value actually broadcast;}
    {- {b no-equivocation} — no honest node emits ECHOs (or READYs) for
       two digests of one instance (observed from the wire via a
       transparent network tap);}
    {- {b prefix-consistency} (Sailfish) — every replica's commit
       sequence is a prefix of one canonical total order, checked O(1)
       per commit against a shared model sequence;}
    {- {b vertex-no-equivocation} (Sailfish) — one (round, source) slot
       never resolves to two distinct vertex digests across replicas.}}

    Quiescence ({!wrapup}):
    {ul
    {- {b totality} — once any honest node delivers an RBC instance,
       every live honest node must have delivered it by the time the
       world has no pending work; the detail names nodes stuck in the
       certified-but-undelivered pull state (see {!Clanbft_rbc.Rbc.agreed}).}} *)

open Clanbft_sim

type violation = { invariant : string; detail : string }
(** A named invariant breach. [invariant] is a stable identifier
    ([agreement], [validity], [equivocation], [prefix], [totality]);
    [detail] is the human-readable evidence. *)

type adversary = No_adversary | Equivocate | Collude | Grief
(** Byzantine load injected at build time, before exploration starts:

    - [Equivocate]: the sender (node 0) is Byzantine — it sends value A
      to half the honest recipients and value B to the rest, and backs
      {e both} digests with its own ECHOs (and READYs in the Bracha
      family). One fault with [f = 1] honest tolerance: every explored
      schedule must stay safe, so this is the standing assurance
      scenario. (RBC models only.)
    - [Collude]: [Equivocate] plus a second Byzantine node (node 1) that
      also votes for both digests. Two faults against [f = 1] — outside
      the fault model, so agreement {e is} breakable, and the checker
      must find a breaking schedule. Used by the CI self-test to prove
      the checker can catch real violations. (RBC models only.)
    - [Grief]: node 0 runs the full honest stack, but every copy of its
      own proposals is held back to just inside the round timeout — the
      checker-scale twin of {!Clanbft_faults.Strategy}'s slow-proposer
      griefing. Within the fault model: every explored interleaving of
      the delayed proposals against the timeout machinery must preserve
      the commit-prefix and vertex-uniqueness invariants, and the world
      must still commit. (Sailfish model only.) *)

type model = Rbc of Clanbft_rbc.Rbc.protocol | Sailfish

type spec = {
  model : model;
  n : int;  (** tribe size (default 4, the smallest n = 3f+1 with f = 1) *)
  rounds : int;  (** RBC instances to broadcast / Sailfish round horizon *)
  adversary : adversary;
  late_join : bool;
      (** hold node n-1 out of the run; at first quiescence it loses its
          queued traffic and rejoins via {!Clanbft_rbc.Rbc.request_sync},
          so sync-reply orderings get explored too (RBC models only) *)
  crashes : int;
      (** budget of crash/recover scheduling actions the explorer may
          spend pausing honest nodes mid-run *)
  sparse_k : int option;
      (** [Some k] runs the Sailfish model over sparse edges
          ({!Clanbft_types.Config.Sparse} with a fixed seed, so replay
          rebuilds the same DAG); [None] (default) keeps dense edges.
          Sailfish-only. *)
}

val default_spec : spec
(** [Rbc Tribe_bracha], n = 4, 2 rounds, no adversary, no late join,
    no crashes, dense edges. *)

val spec_meta : spec -> (string * string) list
(** Serialize a spec as schedule-file metadata ({!Schedule.save}). *)

val spec_of_meta : (string * string) list -> (spec, string) result
(** Rebuild a spec from schedule-file metadata; unknown keys are ignored,
    missing ones default to {!default_spec}'s values. *)

type world

val build : ?trace:bool -> spec -> world
(** Construct the deployment, inject initial broadcasts (and adversary
    traffic), and leave every delivery pending in the engine's choice
    pool. [trace] (default false) records the PR 5 structured event
    trace ({!Clanbft_obs.Trace}) of everything subsequently fired —
    the violation-trace artefact. *)

val spec : world -> spec
val engine : world -> Engine.t

val obs : world -> Clanbft_obs.Obs.t option
(** The tracing handle when built with [~trace:true]. *)

(** {1 Scheduling surface} *)

val enabled_deliveries : world -> Engine.choice list
(** Pending deliveries whose destination is not paused, oldest first.
    Deliveries to paused nodes stay pooled (a paused node's traffic
    queues; it is not lost) and reappear here on recovery. *)

val calendar_pending : world -> bool
(** Are there timer events the [Step] action could run? *)

val crashed : world -> int -> bool
(** Is the node currently paused (by a [Crash] action or by
    [late_join])? *)

val crash_paused : world -> int list
(** Nodes paused by a [Crash] action specifically — the valid targets of
    [Recover] (the [late_join] node rejoins through {!on_quiescence}, not
    through [Recover]). Ascending order. *)

val byzantine : world -> int list
(** Byzantine node ids of this world's adversary (never crash targets;
    their inbound traffic is discarded eagerly). *)

val crashes_left : world -> int
(** Remaining crash/recover action budget. *)

val apply : world -> Schedule.action -> (unit, string) result
(** Execute one scheduling action. [Error] means the action is not
    applicable in the current state (unknown choice id, delivery to a
    paused node, empty calendar, exhausted crash budget, …) — replays
    treat that as schedule corruption. *)

val describe : world -> Schedule.action -> string
(** Human-readable annotation for a schedule file ("val 0->2 @3421us").
    Must be called {e before} {!apply} fires the action. *)

(** {1 Invariant evaluation} *)

val violation : world -> violation option
(** First safety violation observed so far (invariants are evaluated
    inside the protocol observation hooks, so this is O(1)). *)

val quiescent : world -> bool
(** No enabled deliveries and no calendar events: the run cannot make
    further progress without harness intervention. *)

val on_quiescence : world -> bool
(** Fire the harness's quiescence hook (the [late_join] rejoin). Returns
    true if new work was injected — the explorer then keeps scheduling —
    and false when the world is genuinely finished. Deterministic:
    replaying a schedule re-fires the hook at the same point. *)

val wrapup : world -> violation option
(** Totality-style end-of-run checks; call once the world is quiescent
    and {!on_quiescence} returned false. *)

val state_line : world -> string
(** Canonical one-line digest of observable protocol state (deliveries /
    commit counts), for replay-identity assertions in tests. *)
