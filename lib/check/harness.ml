open Clanbft_sim
open Clanbft_crypto
module Rng = Clanbft_util.Rng
module Obs = Clanbft_obs.Obs
module Rbc = Clanbft_rbc.Rbc
module Sailfish = Clanbft_consensus.Sailfish
module Config = Clanbft_types.Config
module Msg = Clanbft_types.Msg
module Vertex = Clanbft_types.Vertex

type violation = { invariant : string; detail : string }
type adversary = No_adversary | Equivocate | Collude | Grief
type model = Rbc of Rbc.protocol | Sailfish

type spec = {
  model : model;
  n : int;
  rounds : int;
  adversary : adversary;
  late_join : bool;
  crashes : int;
  sparse_k : int option;
}

let default_spec =
  {
    model = Rbc Rbc.Tribe_bracha;
    n = 4;
    rounds = 2;
    adversary = No_adversary;
    late_join = false;
    crashes = 0;
    sparse_k = None;
  }

let model_to_string = function
  | Rbc Rbc.Bracha -> "rbc-bracha"
  | Rbc Rbc.Signed_two_round -> "rbc-signed"
  | Rbc Rbc.Tribe_bracha -> "rbc-tribe-bracha"
  | Rbc Rbc.Tribe_signed -> "rbc-tribe-signed"
  | Sailfish -> "sailfish"

let model_of_string = function
  | "rbc-bracha" -> Ok (Rbc Rbc.Bracha)
  | "rbc-signed" -> Ok (Rbc Rbc.Signed_two_round)
  | "rbc-tribe-bracha" -> Ok (Rbc Rbc.Tribe_bracha)
  | "rbc-tribe-signed" -> Ok (Rbc Rbc.Tribe_signed)
  | "sailfish" -> Ok Sailfish
  | s -> Error ("unknown model: " ^ s)

let adversary_to_string = function
  | No_adversary -> "none"
  | Equivocate -> "equivocate"
  | Collude -> "collude"
  | Grief -> "grief"

let adversary_of_string = function
  | "none" -> Ok No_adversary
  | "equivocate" -> Ok Equivocate
  | "collude" -> Ok Collude
  | "grief" -> Ok Grief
  | s -> Error ("unknown adversary: " ^ s)

let spec_meta s =
  [
    ("model", model_to_string s.model);
    ("n", string_of_int s.n);
    ("rounds", string_of_int s.rounds);
    ("adversary", adversary_to_string s.adversary);
    ("late_join", string_of_bool s.late_join);
    ("crashes", string_of_int s.crashes);
  ]
  @ match s.sparse_k with
    | None -> []
    | Some k -> [ ("sparse_k", string_of_int k) ]

let spec_of_meta meta =
  let int_field name v k =
    match int_of_string_opt v with
    | Some i -> Ok (k i)
    | None -> Error (Printf.sprintf "bad %s: %s" name v)
  in
  List.fold_left
    (fun acc (key, v) ->
      Result.bind acc (fun s ->
          match key with
          | "model" ->
              Result.map (fun model -> { s with model }) (model_of_string v)
          | "n" -> int_field "n" v (fun n -> { s with n })
          | "rounds" -> int_field "rounds" v (fun rounds -> { s with rounds })
          | "adversary" ->
              Result.map
                (fun adversary -> { s with adversary })
                (adversary_of_string v)
          | "late_join" -> (
              match bool_of_string_opt v with
              | Some late_join -> Ok { s with late_join }
              | None -> Error ("bad late_join: " ^ v))
          | "crashes" -> int_field "crashes" v (fun crashes -> { s with crashes })
          | "sparse_k" ->
              int_field "sparse_k" v (fun k -> { s with sparse_k = Some k })
          | _ -> Ok s))
    (Ok default_spec) meta

type world = {
  spec : spec;
  engine : Engine.t;
  obs : Obs.t option;
  byz : int list;
  crashed_arr : bool array;
  joining : bool ref;
  mutable crashes_left : int;
  violation_ref : violation option ref;
  quiesce_hook : unit -> bool;
  wrapup_hook : unit -> violation option;
  state_hook : unit -> string;
}

let spec w = w.spec
let engine w = w.engine
let obs w = w.obs
let crashes_left w = w.crashes_left
let violation w = !(w.violation_ref)
let state_line w = w.state_hook ()
let on_quiescence w = w.quiesce_hook ()
let wrapup w = w.wrapup_hook ()

let crashed w i = w.crashed_arr.(i) || (!(w.joining) && i = w.spec.n - 1)

let crash_paused w =
  List.filter (fun i -> w.crashed_arr.(i)) (List.init w.spec.n Fun.id)

let byzantine w = w.byz

(* FNV-style fold used by the [state_line] fingerprints. *)
let mix h x = ((h lxor x) * 0x100000001b3) land max_int

let byz_of = function
  | No_adversary -> []
  | Equivocate -> [ 0 ]
  | Collude -> [ 0; 1 ]
  (* The griefer runs the full honest stack — only its proposals are held
     back — so it is subject to every honest invariant and is no scheduling
     no-op: it occupies no Byzantine slot. *)
  | Grief -> []

(* ------------------------------------------------------------------ *)
(* RBC worlds *)

(* Check worlds are rebuilt thousands of times per search; a 4 ms calendar
   ring keeps Engine.create allocation-free at that cadence (longer timers
   take the overflow heap, which is semantically identical). *)
let check_ring_bits = 12

let build_rbc ~trace s protocol =
  if s.adversary = Grief then
    invalid_arg "Harness.build: Grief is a Sailfish-model adversary";
  let n = s.n in
  let byz = byz_of s.adversary in
  let engine = Engine.create ~ring_bits:check_ring_bits () in
  Engine.set_choice_mode engine true;
  let topology = Topology.uniform ~n ~one_way_ms:10.0 in
  let config = { Net.default_config with jitter = 0.0 } in
  let obs = if trace then Some (Obs.create ()) else None in
  let net =
    Net.create ~engine ~topology ~config ~size:(Rbc.msg_size ~n)
      ~kind:Rbc.msg_tag ?obs ~rng:(Rng.create 1L) ()
  in
  let keychain = Keychain.create ~seed:11L ~n in
  let clan =
    if Rbc.is_tribe protocol then
      Some (Array.init (max 3 ((n / 2) + 1)) Fun.id)
    else None
  in
  let violation_ref = ref None in
  let set_violation invariant detail =
    if !violation_ref = None then violation_ref := Some { invariant; detail }
  in
  let crashed_arr = Array.make n false in
  let joining = ref s.late_join in
  (* agreement / validity, observed at the delivery hook *)
  let first : (int * int, int * Digest32.t) Hashtbl.t = Hashtbl.create 16 in
  let deliver_count = ref 0 and state_hash = ref 0 in
  let honest_sender = s.adversary = No_adversary in
  let on_deliver me ~sender ~round outcome =
    let d =
      match outcome with
      | Rbc.Value v -> Digest32.hash_string v
      | Rbc.Digest_only d -> d
    in
    incr deliver_count;
    state_hash :=
      mix !state_hash
        ((((me * 131) + sender) * 8191) + (round * 17) + Digest32.hash d);
    (match Hashtbl.find_opt first (sender, round) with
    | None -> Hashtbl.add first (sender, round) (me, d)
    | Some (other, d0) ->
        if not (Digest32.equal d d0) then
          set_violation "agreement"
            (Printf.sprintf
               "instance (%d,%d): node %d delivered %s but node %d delivered %s"
               sender round other (Digest32.short d0) me (Digest32.short d)));
    if
      honest_sender && sender = 0
      && not (Digest32.equal d (Digest32.hash_string (Printf.sprintf "val-%d" round)))
    then
      set_violation "validity"
        (Printf.sprintf "instance (0,%d): node %d delivered %s, not the broadcast value"
           round me (Digest32.short d))
  in
  let nodes =
    Array.init n (fun me ->
        if List.mem me byz then begin
          Net.set_handler net me (fun ~src:_ _ -> ());
          None
        end
        else
          Some
            (Rbc.create ~me ~n ?clan ~protocol ~engine ~net ~keychain ?obs
               ~on_deliver:(on_deliver me) ()))
  in
  (* honest echo/ready no-equivocation, observed from the wire *)
  let votes : (string * int * int * int, Digest32.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let tap phase ~signer ~sender ~round digest =
    if not (List.mem signer byz) then
      match Hashtbl.find_opt votes (phase, signer, sender, round) with
      | None -> Hashtbl.add votes (phase, signer, sender, round) digest
      | Some d0 ->
          if not (Digest32.equal d0 digest) then
            set_violation "equivocation"
              (Printf.sprintf
                 "instance (%d,%d): honest node %d sent %ss for both %s and %s"
                 sender round signer phase (Digest32.short d0)
                 (Digest32.short digest))
  in
  Net.set_filter net (fun ~src:_ ~dst:_ msg ->
      (match msg with
      | Rbc.Echo { sender; round; digest; signer; _ } ->
          tap "echo" ~signer ~sender ~round digest
      | Rbc.Ready { sender; round; digest; signer; _ } ->
          tap "ready" ~signer ~sender ~round digest
      | _ -> ());
      true);
  (* initial traffic: honest broadcasts, or the adversary's split *)
  if honest_sender then
    for r = 1 to s.rounds do
      Rbc.broadcast (Option.get nodes.(0)) ~round:r (Printf.sprintf "val-%d" r)
    done
  else begin
    let honest =
      List.filter (fun i -> not (List.mem i byz)) (List.init n Fun.id)
    in
    let in_clan i =
      match clan with None -> true | Some c -> Array.exists (( = ) i) c
    in
    let signed = Rbc.is_signed protocol in
    for r = 1 to s.rounds do
      let va = Printf.sprintf "A-%d" r and vb = Printf.sprintf "B-%d" r in
      let da = Digest32.hash_string va and db = Digest32.hash_string vb in
      (* the equivocating VAL split: alternate honest recipients *)
      List.iteri
        (fun idx dst ->
          let v, d = if idx mod 2 = 0 then (va, da) else (vb, db) in
          if in_clan dst then
            Net.send net ~src:0 ~dst (Rbc.Val { sender = 0; round = r; value = v })
          else
            Net.send net ~src:0 ~dst
              (Rbc.Val_digest { sender = 0; round = r; digest = d }))
        honest;
      (* Every Byzantine signer votes for both digests, with genuine
         signatures from its own key in the signed family. Under [Collude]
         the votes are targeted: each honest node only sees the votes for
         the value it was fed, so each half's quorum completes on its own
         digest (broadcasting both sets is actually safe — whichever digest
         first reaches an echo quorum at a node absorbs its single READY /
         certificate, on every ordering). *)
      let vote_dsts d =
        match s.adversary with
        | Collude ->
            List.filteri
              (fun idx _ -> (if Digest32.equal d da then 0 else 1) = idx mod 2)
              honest
        | _ -> List.init n Fun.id
      in
      List.iter
        (fun b ->
          List.iter
            (fun d ->
              let signature =
                if signed then
                  Some
                    (Keychain.sign keychain ~signer:b
                       (Rbc.echo_signing_string ~sender:0 ~round:r d))
                else None
              in
              List.iter
                (fun dst ->
                  Net.send net ~src:b ~dst
                    (Rbc.Echo
                       { sender = 0; round = r; digest = d; signer = b; signature });
                  if not signed then
                    Net.send net ~src:b ~dst
                      (Rbc.Ready
                         {
                           sender = 0;
                           round = r;
                           digest = d;
                           signer = b;
                           signature = None;
                         }))
                (vote_dsts d))
            [ da; db ])
        byz
    done
  end;
  let quiesce_hook () =
    if !joining then begin
      joining := false;
      let j = n - 1 in
      List.iter
        (fun (c : Engine.choice) ->
          if c.dst = j then Engine.drop_choice engine c.id)
        (Engine.choices engine);
      (match nodes.(j) with
      | Some node ->
          for r = 1 to s.rounds do
            Rbc.request_sync node ~sender:0 ~round:r
          done
      | None -> ());
      true
    end
    else false
  in
  let wrapup_hook () =
    let live i =
      (not (List.mem i byz)) && (not crashed_arr.(i))
      && not (!joining && i = n - 1)
    in
    let viol = ref None in
    for r = 1 to s.rounds do
      if !viol = None then begin
        let status i = Rbc.delivered (Option.get nodes.(i)) ~sender:0 ~round:r in
        let live_ids = List.filter live (List.init n Fun.id) in
        match List.find_opt (fun i -> status i <> None) live_ids with
        | None -> ()
        | Some witness ->
            List.iter
              (fun i ->
                if !viol = None && status i = None then begin
                  let node = Option.get nodes.(i) in
                  let shape =
                    match Rbc.agreed node ~sender:0 ~round:r with
                    | Some _ when not (Rbc.pulling node ~sender:0 ~round:r) ->
                        " (certified digest, pull loop dead)"
                    | Some _ -> " (still pulling payload)"
                    | None -> ""
                  in
                  viol :=
                    Some
                      {
                        invariant = "totality";
                        detail =
                          Printf.sprintf
                            "instance (0,%d): node %d delivered but node %d did not%s"
                            r witness i shape;
                      }
                end)
              live_ids
      end
    done;
    !viol
  in
  let state_hook () =
    Printf.sprintf "deliveries=%d hash=%012x pool=%d" !deliver_count
      (!state_hash land 0xffffffffffff)
      (Engine.choice_count engine)
  in
  {
    spec = s;
    engine;
    obs;
    byz;
    crashed_arr;
    joining;
    crashes_left = s.crashes;
    violation_ref;
    quiesce_hook;
    wrapup_hook;
    state_hook;
  }

(* ------------------------------------------------------------------ *)
(* Sailfish worlds *)

let build_sailfish ~trace s =
  (match s.adversary with
  | No_adversary | Grief -> ()
  | Equivocate | Collude ->
      invalid_arg
        "Harness.build: the Sailfish model takes No_adversary or Grief");
  if s.late_join then
    invalid_arg "Harness.build: late_join is an RBC-only scenario";
  let n = s.n in
  let engine = Engine.create ~ring_bits:check_ring_bits () in
  Engine.set_choice_mode engine true;
  let topology = Topology.uniform ~n ~one_way_ms:10.0 in
  let config = { Net.default_config with jitter = 0.0 } in
  let obs = if trace then Some (Obs.create ()) else None in
  let net =
    Net.create ~engine ~topology ~config ~size:(Msg.wire_size ~n) ~kind:Msg.tag
      ?obs ~rng:(Rng.create 1L) ()
  in
  let keychain = Keychain.create ~seed:11L ~n in
  (* The checker's edge-selection seed is fixed: schedules replayed from a
     saved spec must rebuild the exact same sparse DAG. *)
  let edge_policy =
    match s.sparse_k with
    | None -> Config.Dense
    | Some k -> Config.Sparse { k; seed = 1L }
  in
  let cfg = Config.make ~n ~edge_policy Config.Full in
  let violation_ref = ref None in
  let set_violation invariant detail =
    if !violation_ref = None then violation_ref := Some { invariant; detail }
  in
  let crashed_arr = Array.make n false in
  (* prefix consistency: one canonical global commit order, O(1) per commit *)
  let canon : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let canon_len = ref 0 in
  let pos = Array.make n 0 in
  let commits = ref 0 and state_hash = ref 0 in
  let on_commit me ~leader:_ ordered =
    List.iter
      (fun (v : Vertex.t) ->
        incr commits;
        state_hash := mix !state_hash (((me * 8191) + (v.round * 131)) + v.source);
        let p = pos.(me) in
        pos.(me) <- p + 1;
        if p < !canon_len then begin
          let r0, s0 = Hashtbl.find canon p in
          if (r0, s0) <> (v.round, v.source) then
            set_violation "prefix"
              (Printf.sprintf
                 "node %d committed (%d,%d) at position %d where the canonical order has (%d,%d)"
                 me v.round v.source p r0 s0)
        end
        else begin
          Hashtbl.replace canon p (v.round, v.source);
          incr canon_len
        end)
      ordered
  in
  (* one (round, source) slot must never resolve to two vertex digests *)
  let vtab : (int * int, Digest32.t) Hashtbl.t = Hashtbl.create 256 in
  let on_deliver me (v : Vertex.t) =
    match Hashtbl.find_opt vtab (v.round, v.source) with
    | None -> Hashtbl.add vtab (v.round, v.source) v.digest
    | Some d0 ->
        if not (Digest32.equal d0 v.digest) then
          set_violation "vertex-equivocation"
            (Printf.sprintf "slot (%d,%d): node %d accepted a second vertex digest"
               v.round v.source me)
  in
  (* Grief adversary (node 0): the honest stack runs untouched, but every
     copy of its own proposals departs just inside the round timeout —
     the checker-scale twin of [Clanbft_faults.Strategy]'s grief. The held
     copy re-enters through {!Net.send_unfiltered}, so it is never
     re-held, and the delay is a calendar event the explorer schedules
     like any timer. *)
  (match s.adversary with
  | Grief ->
      let hold =
        9 * Sailfish.default_params.Sailfish.round_timeout / 10
      in
      Net.set_filter net (fun ~src ~dst msg ->
          match msg with
          | Msg.Val { vertex; _ } when src = 0 && vertex.Vertex.source = 0 ->
              Engine.schedule_after engine hold (fun () ->
                  Net.send_unfiltered net ~src ~dst msg);
              false
          | _ -> true)
  | _ -> ());
  let nodes =
    Array.init n (fun me ->
        Sailfish.create ~me ~config:cfg ~keychain ~engine ~net ?obs
          ~make_block:(fun ~round:_ -> [||])
          ~on_commit:(on_commit me) ~on_deliver:(on_deliver me) ())
  in
  Array.iter Sailfish.start nodes;
  let state_hook () =
    Printf.sprintf "commits=%d hash=%012x pool=%d" !commits
      (!state_hash land 0xffffffffffff)
      (Engine.choice_count engine)
  in
  {
    spec = s;
    engine;
    obs;
    byz = [];
    crashed_arr;
    joining = ref false;
    crashes_left = s.crashes;
    violation_ref;
    quiesce_hook = (fun () -> false);
    wrapup_hook = (fun () -> None);
    state_hook;
  }

(* ------------------------------------------------------------------ *)
(* Scheduling surface *)

(* Deliveries to Byzantine "nodes" are no-ops (their handlers discard);
   discard them eagerly so they never bloat the choice pool or block
   quiescence. *)
let prune w =
  if w.byz <> [] then
    List.iter
      (fun (c : Engine.choice) ->
        if List.mem c.dst w.byz then Engine.drop_choice w.engine c.id)
      (Engine.choices w.engine)

let build ?(trace = false) s =
  if s.n < 4 then invalid_arg "Harness.build: n must be at least 4 (= 3f+1)";
  if s.rounds < 1 then invalid_arg "Harness.build: rounds must be positive";
  if s.crashes < 0 then invalid_arg "Harness.build: negative crash budget";
  (match s.sparse_k with
  | Some k when s.model <> Sailfish || k < 1 ->
      invalid_arg "Harness.build: sparse_k needs the Sailfish model and k >= 1"
  | _ -> ());
  let w =
    match s.model with
    | Rbc protocol -> build_rbc ~trace s protocol
    | Sailfish -> build_sailfish ~trace s
  in
  prune w;
  w

let enabled_deliveries w =
  List.filter
    (fun (c : Engine.choice) -> not (crashed w c.dst))
    (Engine.choices w.engine)

let calendar_pending w = Engine.pending w.engine > 0

let quiescent w = enabled_deliveries w = [] && not (calendar_pending w)

let find_choice w id =
  List.find_opt (fun (c : Engine.choice) -> c.id = id) (Engine.choices w.engine)

let apply w (a : Schedule.action) =
  let res =
    match a with
    | Schedule.Deliver id -> (
        match find_choice w id with
        | None -> Error (Printf.sprintf "no pending delivery with id %d" id)
        | Some c ->
            if crashed w c.dst then
              Error (Printf.sprintf "delivery %d targets paused node %d" id c.dst)
            else begin
              Engine.fire_choice w.engine id;
              Ok ()
            end)
    | Schedule.Step ->
        if not (calendar_pending w) then Error "step with an empty calendar"
        else begin
          ignore (Engine.step w.engine);
          Ok ()
        end
    | Schedule.Crash i ->
        if i < 0 || i >= w.spec.n then Error (Printf.sprintf "crash: no node %d" i)
        else if List.mem i w.byz then
          Error (Printf.sprintf "crash: node %d is Byzantine" i)
        else if crashed w i then Error (Printf.sprintf "crash: node %d already paused" i)
        else if w.crashes_left <= 0 then Error "crash: budget exhausted"
        else begin
          w.crashed_arr.(i) <- true;
          w.crashes_left <- w.crashes_left - 1;
          Ok ()
        end
    | Schedule.Recover i ->
        if i < 0 || i >= w.spec.n || not w.crashed_arr.(i) then
          Error (Printf.sprintf "recover: node %d is not crash-paused" i)
        else begin
          w.crashed_arr.(i) <- false;
          Ok ()
        end
  in
  (match res with Ok () -> prune w | Error _ -> ());
  res

let describe w = function
  | Schedule.Deliver id -> (
      match find_choice w id with
      | Some c -> Printf.sprintf "%s %d->%d @%dus" c.tag c.src c.dst c.time
      | None -> "deliver ?")
  | Schedule.Step -> "timer"
  | Schedule.Crash i -> Printf.sprintf "pause node %d" i
  | Schedule.Recover i -> Printf.sprintf "resume node %d" i
