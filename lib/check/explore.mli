(** Schedule exploration: exhaustive delay-bounded DFS, random walks,
    replay and counterexample minimization over {!Harness} worlds.

    The state space is the tree of {!Schedule.action} sequences from a
    world's initial state. Exploration is {e stateless}: there are no
    world snapshots — visiting a sibling branch rebuilds the world from
    scratch and replays the action prefix, which is cheap at checker
    scale (n = 4, a few rounds) and keeps the harness free of
    copy/restore obligations. Determinism of {!Harness.build} makes the
    replays exact.

    {2 Bounding}

    Full reordering of even one RBC instance's ~36 deliveries is far out
    of reach, so the DFS is {e delay-bounded} (after Emmi et al.): the
    canonical schedule always fires the oldest pending delivery (then
    timers); picking the k-th-oldest instead costs [k] deviation
    credits, running a timer ahead of pending deliveries costs 1, and a
    crash or recovery costs 1. A path's total cost is capped by
    [delay_budget], and only the [window] oldest deliveries are
    considered at each point. Budget 0 explores exactly the canonical
    run; as the budget grows the exploration converges to full DFS.
    Depth is additionally capped by [max_actions] (runs cut there are
    counted, not silently dropped).

    {2 Pruning}

    Sleep-set partial-order reduction: two deliveries to {e different}
    nodes commute (handlers touch only node-local state and their sends
    are themselves reordered freely later), so after exploring the
    subtree of delivery [a], sibling subtrees need not re-interleave [a]
    ahead of deliveries to other destinations. Timers and
    crash/recovery actions are conservatively treated as dependent on
    everything. With an unbounded budget this pruning is sound (it skips
    only executions equivalent to explored ones); under a finite budget
    it remains a heuristic exactly as the budget itself is — see
    docs/CHECKING.md for the honest statement. [~dpor:false] disables
    it. *)

type stats = {
  mutable runs : int;  (** complete executions (violating, quiescent or truncated) *)
  mutable transitions : int;  (** scheduling decisions explored *)
  mutable pruned : int;  (** children skipped by sleep sets or the delay budget *)
  mutable max_depth : int;  (** longest action sequence reached *)
  mutable truncated : int;  (** runs cut by [max_actions] *)
}

type result = {
  violation : Harness.violation option;
  schedule : Schedule.t;
      (** the full action sequence of the violating run; [[]] if none *)
  seed : int64 option;
      (** for a violating random walk: the per-walk seed it was driven by *)
  stats : stats;
}

val exhaustive :
  ?delay_budget:int ->
  ?window:int ->
  ?max_actions:int ->
  ?dpor:bool ->
  Harness.spec ->
  result
(** Depth-first search over all schedules within the delay budget
    (default 2), window (default 4) and depth cap (default 400),
    stopping at the first violation. *)

val walks :
  ?max_actions:int -> seed:int64 -> count:int -> Harness.spec -> result
(** [count] uniform random walks to quiescence (or the depth cap,
    default 400). Each walk runs under its own generator whose seed is
    derived from [seed] and reported on violation, and every decision is
    recorded as a {!Schedule.t} — so replaying a reported walk needs no
    randomness at all ({!run_schedule}). *)

(** {1 Replay} *)

type run = {
  world : Harness.world;  (** the final world, for state inspection *)
  executed : Schedule.t;  (** actions actually applied, including completion *)
  notes : string list;  (** one human-readable annotation per executed action *)
  run_violation : Harness.violation option;
  error : string option;
      (** schedule corruption: an action that was not applicable *)
  truncated : bool;  (** hit [max_actions] before finishing *)
}

val run_schedule :
  ?trace:bool ->
  ?complete:bool ->
  ?max_actions:int ->
  Harness.spec ->
  Schedule.t ->
  run
(** Rebuild the world and apply the schedule verbatim, firing the
    quiescence hook whenever no action is applicable (so harness-injected
    work such as the late-join replays deterministically), stopping early
    at the first violation. With [complete] (the default), the run is
    then driven to quiescence canonically — oldest delivery first, then
    timers, then recoveries — and the wrap-up invariants evaluated; this
    is what makes a truncated schedule a meaningful counterexample
    candidate rather than a message-loss scenario. [trace] records the
    structured event trace, retrievable via {!Harness.obs}. *)

val minimize : Harness.spec -> Schedule.t -> Schedule.t
(** Greedy counterexample minimization: repeatedly drop single actions,
    re-running each candidate under canonical completion, and keep a
    candidate only if the {e same} invariant violates again with a
    strictly shorter executed sequence. Returns the input unchanged if it
    does not violate in the first place. *)
