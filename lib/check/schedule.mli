(** Replayable exploration schedules.

    A schedule is the decision record of one checker run: the exact
    sequence of scheduling actions the explorer took, from the world's
    initial state to wherever the run ended. Because every harness world
    is a deterministic function of its spec (docs/CHECKING.md), a
    schedule replays byte-for-byte — same choice ids, same handler
    executions, same violation — which is what makes a reported
    counterexample a first-class artefact rather than a log line.

    The on-disk format ([clanbft/check-schedule/v1]) is line-oriented
    text: a version header, [meta key=value] lines carrying the world
    spec and provenance (walk seed, checker version), then one action per
    line. Anything after a [#] is a comment; the writer uses comments to
    annotate deliveries with their resolved (kind, src, dst) so schedules
    are human-readable without the harness. *)

type action =
  | Deliver of int
      (** fire the pooled delivery with this {!Clanbft_sim.Engine.choice}
          id *)
  | Step  (** run the next calendar event (a timer) *)
  | Crash of int  (** pause a node: its deliveries are withheld *)
  | Recover of int  (** resume a paused node *)

type t = action list

val action_to_string : action -> string
(** [deliver 12], [step], [crash 2], [recover 2]. *)

val action_of_string : string -> (action, string) result
(** Inverse of {!action_to_string}; [Error] names the offending token. *)

val save :
  path:string -> meta:(string * string) list -> ?notes:string list -> t -> unit
(** Write a schedule file. [meta] pairs must contain no whitespace in
    keys; values run to end of line. [notes], when given, must align with
    the actions (one per action) and are emitted as trailing comments. *)

val load : string -> ((string * string) list * t, string) result
(** Parse a schedule file back into its metadata and actions. Unknown or
    malformed lines are an [Error]; unknown meta keys are preserved. *)

val pp : Format.formatter -> t -> unit
(** One action per line, [to_string] rendering. *)
