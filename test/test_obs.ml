open Clanbft
open Clanbft.Sim

(* ------------------------------------------------------------------ *)
(* Trace sink mechanics *)

let test_sink_basics () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Trace.emit Trace.null ~ts:1 (Trace.Vertex_deliver { node = 0; round = 1; source = 2 });
  Alcotest.(check int) "null records nothing" 0 (Trace.length Trace.null);
  let tr = Trace.create () in
  Alcotest.(check bool) "sink enabled" true (Trace.enabled tr);
  for i = 1 to 2000 do
    Trace.emit tr ~ts:i (Trace.Vertex_deliver { node = 0; round = i; source = 0 })
  done;
  Alcotest.(check int) "grows past initial capacity" 2000 (Trace.length tr);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr);
  let seen = ref 0 in
  Trace.iter tr (fun r ->
      incr seen;
      Alcotest.(check int) "emission order" !seen r.Trace.ts);
  Alcotest.(check int) "iter visits all" 2000 !seen

let test_sink_limit () =
  let tr = Trace.create ~limit:10 () in
  for i = 1 to 25 do
    Trace.emit tr ~ts:i (Trace.Vertex_deliver { node = 0; round = i; source = 0 })
  done;
  Alcotest.(check int) "capped" 10 (Trace.length tr);
  Alcotest.(check int) "overflow counted" 15 (Trace.dropped tr)

(* ------------------------------------------------------------------ *)
(* JSONL round-trip: every variant survives writer -> parser exactly *)

let sample_records =
  [
    { Trace.ts = 0; ev = Trace.Msg_send { src = 0; dst = 15; kind = "val"; bytes = 123_456 } };
    { Trace.ts = 17; ev = Trace.Msg_recv { src = 3; dst = 4; kind = "echo_cert"; bytes = 96 } };
    { Trace.ts = 21; ev = Trace.Msg_bcast { src = 5; kind = "echo"; bytes = 150; count = 149 } };
    {
      Trace.ts = 100;
      ev = Trace.Uplink { node = 7; kind = "vertex"; bytes = 640; enqueued = 100; start = 250; depart = 252 };
    };
    { Trace.ts = 2; ev = Trace.Rbc_phase { node = 2; sender = 2; round = 9; phase = Trace.Propose } };
    { Trace.ts = 5; ev = Trace.Rbc_phase { node = 1; sender = 2; round = 9; phase = Trace.Val } };
    { Trace.ts = 6; ev = Trace.Rbc_phase { node = 1; sender = 2; round = 9; phase = Trace.Pull_retry } };
    { Trace.ts = 8; ev = Trace.Rbc_phase { node = 1; sender = 2; round = 9; phase = Trace.Echo } };
    { Trace.ts = 7; ev = Trace.Vertex_deliver { node = 0; round = 4; source = 11 } };
    { Trace.ts = 8; ev = Trace.Vertex_commit { node = 0; round = 3; source = 2; leader_round = 4 } };
    { Trace.ts = 9; ev = Trace.Fault_fire { rule = -1; action = "mute"; kind = "ready"; src = 5; dst = 6 } };
  ]

let test_jsonl_roundtrip () =
  List.iter
    (fun r ->
      let line = Trace.jsonl_of_record r in
      match Trace.of_jsonl_line line with
      | None -> Alcotest.failf "unparseable: %s" line
      | Some r' ->
          Alcotest.(check bool) (Printf.sprintf "round-trip %s" line) true (r = r'))
    sample_records;
  (* Escaping: kinds with JSON-hostile characters survive the trip. *)
  let hostile =
    { Trace.ts = 1; ev = Trace.Msg_send { src = 0; dst = 1; kind = "a\"b\\c\nd"; bytes = 1 } }
  in
  (match Trace.of_jsonl_line (Trace.jsonl_of_record hostile) with
  | Some r' -> Alcotest.(check bool) "escaped kind" true (hostile = r')
  | None -> Alcotest.fail "hostile kind did not parse");
  Alcotest.(check bool) "garbage rejected" true
    (Trace.of_jsonl_line "{\"ts\":1,\"type\":\"nonsense\"}" = None);
  Alcotest.(check bool) "non-json rejected" true (Trace.of_jsonl_line "hello" = None)

let test_jsonl_file_roundtrip () =
  let tr = Trace.create () in
  List.iter (fun { Trace.ts; ev } -> Trace.emit tr ~ts ev) sample_records;
  let path = Filename.temp_file "clanbft_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_jsonl tr path;
      let ic = open_in path in
      let back = ref [] in
      (try
         while true do
           match Trace.of_jsonl_line (input_line ic) with
           | Some r -> back := r :: !back
           | None -> Alcotest.fail "file line did not parse"
         done
       with End_of_file -> close_in ic);
      Alcotest.(check bool) "file round-trip" true (List.rev !back = sample_records))

let test_stream_sink () =
  let path = Filename.temp_file "clanbft_stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let tr = Trace.stream oc in
      Alcotest.(check bool) "stream enabled" true (Trace.enabled tr);
      List.iter (fun { Trace.ts; ev } -> Trace.emit tr ~ts ev) sample_records;
      Alcotest.(check int) "lines counted" (List.length sample_records)
        (Trace.length tr);
      (* Nothing is retained: buffered exports refuse, iter sees nothing. *)
      Alcotest.check_raises "chrome export refused"
        (Invalid_argument
           "Trace.write_chrome: streaming sinks write at emission time and \
            retain nothing to export") (fun () ->
          Trace.write_chrome tr "/dev/null");
      let visited = ref 0 in
      Trace.iter tr (fun _ -> incr visited);
      Alcotest.(check int) "iter sees nothing" 0 !visited;
      close_out oc;
      let ic = open_in path in
      let back = ref [] in
      (try
         while true do
           match Trace.of_jsonl_line (input_line ic) with
           | Some r -> back := r :: !back
           | None -> Alcotest.fail "streamed line did not parse"
         done
       with End_of_file -> close_in ic);
      Alcotest.(check bool) "stream round-trip" true
        (List.rev !back = sample_records))

let test_chrome_export () =
  let tr = Trace.create () in
  List.iter (fun { Trace.ts; ev } -> Trace.emit tr ~ts ev) sample_records;
  let path = Filename.temp_file "clanbft_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_chrome tr path;
      let ic = open_in path in
      let len = in_channel_length ic in
      let doc = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "traceEvents document" true
        (String.length doc > 2
        && String.sub doc 0 15 = "{\"traceEvents\":"
        && doc.[String.length doc - 1] = '}');
      (* The uplink span renders as a complete event with its duration. *)
      let contains needle =
        let n = String.length needle and h = String.length doc in
        let rec go i = i + n <= h && (String.sub doc i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "X span present" true (contains "\"ph\":\"X\"");
      Alcotest.(check bool) "span duration" true (contains "\"dur\":2");
      (* The VAL -> ECHO pair on instance (1,2,9) renders as an RBC phase
         span of 3 µs; the interleaved Pull_retry is off the chain and
         stays an instant. *)
      Alcotest.(check bool) "rbc val span" true (contains "\"name\":\"rbc val r9/s2\"");
      Alcotest.(check bool) "rbc span duration" true (contains "\"dur\":3");
      Alcotest.(check bool) "pull stays instant" true
        (contains "\"name\":\"rbc pull_retry r9/s2\",\"cat\":\"rbc\",\"ph\":\"i\"");
      Alcotest.(check bool) "process metadata" true (contains "process_name"))

(* ------------------------------------------------------------------ *)
(* Metric registry *)

let test_registry () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg ~labels:[ ("node", "3") ] "pulls" in
  Metrics.incr c;
  Metrics.add c 4;
  (* Idempotent resolution, label order irrelevant. *)
  let c' = Metrics.counter reg ~labels:[ ("node", "3") ] "pulls" in
  Metrics.incr c';
  Alcotest.(check int) "shared instrument" 6 (Metrics.counter_value c);
  (match Metrics.find reg ~labels:[ ("node", "3") ] "pulls" with
  | Some (Metrics.Counter_v 6) -> ()
  | _ -> Alcotest.fail "find: wrong value");
  Alcotest.(check bool) "find misses" true (Metrics.find reg "absent" = None);
  (* Same name, different kind: refused. *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: pulls already registered as a counter, not a gauge")
    (fun () -> ignore (Metrics.gauge reg ~labels:[ ("node", "3") ] "pulls"));
  let h = Metrics.histogram reg ~buckets:[| 1.0; 10.0 |] "lat" in
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  Metrics.observe h 100.0;
  Alcotest.(check int) "histogram count" 3 (Util.Stats.Histogram.count (Metrics.hist h));
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 2.5;
  (* fold visits every instrument in sorted order. *)
  let names =
    Metrics.fold reg ~init:[] ~f:(fun acc ~name ~labels:_ _ -> name :: acc) |> List.rev
  in
  Alcotest.(check (list string)) "sorted fold" [ "depth"; "lat"; "pulls" ] names;
  let json = Metrics.to_json reg in
  let contains needle =
    let n = String.length needle and hl = String.length json in
    let rec go i = i + n <= hl && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json counter" true (contains "\"name\":\"pulls\"");
  Alcotest.(check bool) "json overflow bucket" true (contains "{\"le\":\"+inf\",\"count\":1}");
  (* Prometheus-style running totals ride along with the per-bucket counts. *)
  Alcotest.(check bool) "json cumulative buckets" true
    (contains
       "\"cumulative\":[{\"le\":1,\"count\":1},{\"le\":10,\"count\":2},{\"le\":\"+inf\",\"count\":3}]")

(* ------------------------------------------------------------------ *)
(* End-to-end: a traced SMR run *)

let traced_spec obs =
  {
    Runner.default_spec with
    n = 8;
    protocol = Runner.Single_clan { nc = 5 };
    txns_per_proposal = 50;
    duration = Time.s 3.;
    warmup = Time.s 1.;
    obs;
  }

let test_trace_ordering () =
  let obs = Obs.create () in
  let r = Runner.run (traced_spec (Some obs)) in
  Alcotest.(check bool) "run committed" true (r.Runner.committed_txns > 0);
  let tr = obs.Obs.trace in
  Alcotest.(check bool) "events recorded" true (Trace.length tr > 1000);
  (* Events are emitted synchronously from engine callbacks, so timestamps
     are non-decreasing in emission order — for every variant. *)
  let prev = ref min_int in
  let commits = ref 0 and sends = ref 0 and recvs = ref 0 in
  Trace.iter tr (fun { Trace.ts; ev } ->
      Alcotest.(check bool) "ts non-decreasing" true (ts >= !prev);
      prev := ts;
      match ev with
      | Trace.Uplink { enqueued; start; depart; _ } ->
          Alcotest.(check bool) "ts = enqueued" true (ts = enqueued);
          Alcotest.(check bool) "queue before wire" true
            (enqueued <= start && start <= depart)
      | Trace.Vertex_commit { leader_round; round; _ } ->
          incr commits;
          Alcotest.(check bool) "committed under a leader" true (round <= leader_round)
      | Trace.Msg_send _ -> incr sends
      | Trace.Msg_bcast { count; _ } -> sends := !sends + count
      | Trace.Msg_recv _ -> incr recvs
      | _ -> ());
  Alcotest.(check bool) "saw commits" true (!commits > 0);
  Alcotest.(check bool) "saw sends" true (!sends > 0);
  (* A benign run loses nothing, but messages still in flight when the
     horizon cuts the run short never deliver: recv trails send slightly. *)
  Alcotest.(check bool) "receipts trail sends" true (!recvs > 0 && !recvs <= !sends);
  Alcotest.(check bool) "in-flight tail is small" true
    (!sends - !recvs < !sends / 10)

let test_metrics_capture () =
  let obs = Obs.metrics_only () in
  let r = Runner.run (traced_spec (Some obs)) in
  Alcotest.(check bool) "no trace buffer" false (Obs.tracing obs);
  let reg = obs.Obs.metrics in
  (match Metrics.find reg "net_bytes_total" with
  | Some (Metrics.Counter_v b) ->
      Alcotest.(check int) "registry matches result" r.Runner.bytes_total b
  | _ -> Alcotest.fail "net_bytes_total missing");
  (match Metrics.find reg ~labels:[ ("kind", "val") ] "net_bytes_by_kind" with
  | Some (Metrics.Counter_v b) -> Alcotest.(check bool) "val bytes flow" true (b > 0)
  | _ -> Alcotest.fail "per-kind counter missing");
  match Metrics.find reg ~labels:[ ("node", "0") ] "commit_latency_ms" with
  | Some (Metrics.Histogram_v h) ->
      Alcotest.(check bool) "latency observed" true (Util.Stats.Histogram.count h > 0)
  | _ -> Alcotest.fail "commit_latency_ms missing"

let test_tracing_is_inert () =
  (* The acceptance bar: same seed, tracing on or off, bit-identical
     commit sequences (and identical headline numbers). *)
  let quiet = Runner.run (traced_spec None) in
  let traced = Runner.run (traced_spec (Some (Obs.create ()))) in
  Alcotest.(check int) "same fingerprint" quiet.Runner.commit_fingerprint
    traced.Runner.commit_fingerprint;
  Alcotest.(check int) "same txns" quiet.Runner.committed_txns traced.Runner.committed_txns;
  Alcotest.(check int) "same bytes" quiet.Runner.bytes_total traced.Runner.bytes_total;
  Alcotest.(check int) "same events" quiet.Runner.events traced.Runner.events;
  (* And re-running traced is self-consistent (fingerprint is stable). *)
  let traced' = Runner.run (traced_spec (Some (Obs.create ()))) in
  Alcotest.(check int) "traced rerun" traced.Runner.commit_fingerprint
    traced'.Runner.commit_fingerprint

let suites =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "sink basics" `Quick test_sink_basics;
        Alcotest.test_case "sink limit" `Quick test_sink_limit;
        Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "jsonl file round-trip" `Quick test_jsonl_file_roundtrip;
        Alcotest.test_case "streaming sink" `Quick test_stream_sink;
        Alcotest.test_case "chrome export" `Quick test_chrome_export;
      ] );
    ( "obs.metrics",
      [ Alcotest.test_case "registry" `Quick test_registry ] );
    ( "obs.smr",
      [
        Alcotest.test_case "trace ordering" `Quick test_trace_ordering;
        Alcotest.test_case "metrics capture" `Quick test_metrics_capture;
        Alcotest.test_case "tracing is inert" `Quick test_tracing_is_inert;
      ] );
  ]
