open Clanbft
open Clanbft.Sim
module Rng = Clanbft.Util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_conversions () =
  Alcotest.(check int) "ms" 1_500 (Time.ms 1.5);
  Alcotest.(check int) "s" 2_000_000 (Time.s 2.0);
  Alcotest.(check (float 1e-9)) "to_ms" 1.5 (Time.to_ms 1_500);
  Alcotest.(check (float 1e-9)) "to_s" 2.0 (Time.to_s 2_000_000)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e 300 (fun () -> log := 3 :: !log);
  Engine.schedule_at e 100 (fun () -> log := 1 :: !log);
  Engine.schedule_at e 200 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 300 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule_at e 50 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo within a microsecond" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_schedule_now () =
  (* An event scheduled for the current instant from inside a handler must
     still run, after already-queued same-instant events. *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e 10 (fun () ->
      log := "a" :: !log;
      Engine.schedule_after e 0 (fun () -> log := "c" :: !log));
  Engine.schedule_at e 10 (fun () -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.schedule_at e 100 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> Engine.schedule_at e 50 (fun () -> ()))

let test_engine_until () =
  let e = Engine.create () in
  let ran = ref 0 in
  Engine.schedule_at e 100 (fun () -> incr ran);
  Engine.schedule_at e 900 (fun () -> incr ran);
  Engine.run ~until:500 e;
  Alcotest.(check int) "only first ran" 1 !ran;
  Alcotest.(check int) "clock parked at horizon" 500 (Engine.now e);
  Alcotest.(check int) "second still pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "second runs later" 2 !ran

let test_engine_until_empty_queue () =
  let e = Engine.create () in
  Engine.run ~until:12345 e;
  Alcotest.(check int) "clock advances to horizon" 12345 (Engine.now e)

let test_engine_max_events () =
  let e = Engine.create () in
  let ran = ref 0 in
  for i = 1 to 10 do
    Engine.schedule_at e i (fun () -> incr ran)
  done;
  Engine.run ~max_events:4 e;
  Alcotest.(check int) "budget respected" 4 !ran

let test_engine_far_future () =
  (* Beyond the calendar ring horizon: exercises the overflow heap. *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e 20_000_000 (fun () -> log := "far" :: !log);
  Engine.schedule_at e 60_000_000 (fun () -> log := "farther" :: !log);
  Engine.schedule_at e 5 (fun () -> log := "near" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "all fire in order" [ "near"; "far"; "farther" ]
    (List.rev !log);
  Alcotest.(check int) "clock" 60_000_000 (Engine.now e)

let test_engine_ring_horizon_boundary () =
  (* The calendar ring covers [clock, clock + horizon); an event exactly at
     the horizon parks in the overflow heap and must migrate back and fire
     at its precise microsecond, interleaved correctly with ring events. *)
  let horizon = Engine.horizon in
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e horizon (fun () -> log := ("boundary", Engine.now e) :: !log);
  Engine.schedule_at e (horizon - 1) (fun () -> log := ("ring", Engine.now e) :: !log);
  Engine.schedule_at e (horizon + 1) (fun () -> log := ("past", Engine.now e) :: !log);
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "overflow events fire at their exact instants"
    [ ("ring", horizon - 1); ("boundary", horizon); ("past", horizon + 1) ]
    (List.rev !log)

let test_engine_overflow_migration_keeps_time () =
  (* An overflow event whose slot the clock approaches gradually (so it
     migrates rather than being jumped to) shares its instant with a
     late-scheduled ring event; both must run at that exact time. *)
  let horizon = Engine.horizon in
  let target = horizon + 500 in
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e target (fun () -> log := "overflow" :: !log);
  (* Walk the clock close enough that the overflow event enters the ring,
     then aim a second event at the same microsecond. *)
  Engine.schedule_at e 1_000 (fun () ->
      Engine.schedule_at e target (fun () -> log := "ring" :: !log));
  Engine.run e;
  Alcotest.(check bool) "both ran at the target instant" true
    (List.sort compare !log = [ "overflow"; "ring" ]);
  Alcotest.(check int) "clock at target" target (Engine.now e)

let test_engine_until_past_last_event () =
  (* [run ~until] with all events strictly before the horizon: the events
     run, and the clock is clamped forward to [until] afterwards. *)
  let e = Engine.create () in
  let ran = ref 0 in
  Engine.schedule_at e 100 (fun () -> incr ran);
  Engine.run ~until:500 e;
  Alcotest.(check int) "event ran" 1 !ran;
  Alcotest.(check int) "clock clamped to until" 500 (Engine.now e);
  (* An event exactly at [until] is within the window and runs. *)
  Engine.schedule_at e 800 (fun () -> incr ran);
  Engine.run ~until:800 e;
  Alcotest.(check int) "boundary event ran" 2 !ran;
  Alcotest.(check int) "clock at boundary" 800 (Engine.now e)

let test_engine_fifo_across_scheduling_instants () =
  (* Two events aimed at the same future microsecond from different
     scheduling instants run in scheduling order. *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e 1_000 (fun () -> log := "first" :: !log);
  Engine.schedule_at e 10 (fun () ->
      Engine.schedule_at e 1_000 (fun () -> log := "second" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "scheduling order preserved" [ "first"; "second" ]
    (List.rev !log)

let test_engine_cascading () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 100 then Engine.schedule_after e 1_000 tick
  in
  Engine.schedule_after e 1_000 tick;
  Engine.run e;
  Alcotest.(check int) "all ticks" 100 !count;
  Alcotest.(check int) "events processed" 100 (Engine.events_processed e)

let test_engine_last_ring_slot () =
  (* An event at horizon - 1 is the furthest that still fits in the ring;
     it must stay there (no overflow round-trip) and fire on time even when
     the ring index wraps (clock > 0 at scheduling time). *)
  let horizon = Engine.horizon in
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e 7 (fun () ->
      (* From clock = 7 the furthest ring slot is 7 + horizon - 1. *)
      Engine.schedule_after e (horizon - 1) (fun () ->
          log := ("edge", Engine.now e) :: !log));
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "edge-of-ring event fires at its exact instant"
    [ ("edge", 7 + horizon - 1) ]
    (List.rev !log)

let test_engine_overflow_same_instant_fifo () =
  (* Several overflow events aimed at one microsecond migrate in the order
     they were scheduled (the heap breaks priority ties FIFO). *)
  let target = Engine.horizon + 123 in
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 4 do
    Engine.schedule_at e target (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order survives the overflow heap"
    [ 1; 2; 3; 4 ] (List.rev !log)

let test_engine_mixed_event_kinds_fifo () =
  (* schedule_at and schedule_ix_at aimed at the same microsecond run in
     scheduling order regardless of event kind — the batched-delivery
     guarantee that keeps broadcast runs byte-identical to per-send runs. *)
  let e = Engine.create () in
  let log = ref [] in
  let shared tag = log := tag :: !log in
  Engine.schedule_at e 50 (fun () -> log := 0 :: !log);
  Engine.schedule_ix_at e 50 shared 1;
  Engine.schedule_at e 50 (fun () -> log := 2 :: !log);
  Engine.schedule_ix_at e 50 shared 3;
  Engine.run e;
  Alcotest.(check (list int)) "Fn and Ix interleave in scheduling order"
    [ 0; 1; 2; 3 ] (List.rev !log)

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  Engine.schedule_at e 10 (fun () -> ());
  Alcotest.(check bool) "one step" true (Engine.step e);
  Alcotest.(check bool) "drained" false (Engine.step e)

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_table1 () =
  let t = Topology.gcp_table1 ~n:10 in
  (* node 0 -> us-east1, node 2 -> europe-north1: RTT 114.75ms, one-way half *)
  Alcotest.(check int) "us-east1 to europe-north1" 57_375 (Topology.one_way t ~src:0 ~dst:2);
  Alcotest.(check int) "europe-north1 to us-east1" 57_700 (Topology.one_way t ~src:2 ~dst:0);
  Alcotest.(check string) "region of node 7" "europe-north1" (Topology.region_name t 7);
  Alcotest.(check int) "loopback region delay" 375 (Topology.one_way t ~src:0 ~dst:5)

let test_topology_uniform () =
  let t = Topology.uniform ~n:4 ~one_way_ms:25.0 in
  Alcotest.(check int) "uniform" 25_000 (Topology.one_way t ~src:0 ~dst:3)

let test_topology_validation () =
  Alcotest.check_raises "bad region" (Invalid_argument "Topology.custom: bad region")
    (fun () ->
      ignore
        (Topology.custom ~n:2 ~region_of:(fun _ -> 5) ~regions:[| "a" |]
           ~rtt_ms:[| [| 0.1 |] |]))

(* ------------------------------------------------------------------ *)
(* Net *)

let mk_net ?(n = 4) ?(config = Net.default_config) () =
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~one_way_ms:10.0 in
  let net =
    Net.create ~engine ~topology ~config ~size:String.length ~rng:(Rng.create 1L) ()
  in
  (engine, net)

let no_jitter = { Net.default_config with jitter = 0.0 }

let test_net_delivery_time () =
  let engine, net = mk_net ~config:no_jitter () in
  let arrival = ref (-1) in
  Net.set_handler net 1 (fun ~src:_ _ -> arrival := Engine.now engine);
  Net.set_handler net 0 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 "x";
  Engine.run engine;
  (* 1 byte + 60 overhead at 2 Gbps: serialization < 1µs rounds to 1;
     one-way 10_000µs. *)
  Alcotest.(check int) "arrival = ser + latency" 10_001 !arrival

let test_net_serialization_queuing () =
  (* Two 1 MB messages back-to-back: the second waits for the first to
     clear the uplink. At 2 Gbps, 1 MB + overhead ~ 4000µs of wire time. *)
  let engine, net = mk_net ~config:no_jitter () in
  let arrivals = ref [] in
  Net.set_handler net 1 (fun ~src:_ _ -> arrivals := Engine.now engine :: !arrivals);
  Net.set_handler net 0 (fun ~src:_ _ -> ());
  let payload = String.make 1_000_000 'x' in
  Net.send net ~src:0 ~dst:1 payload;
  Net.send net ~src:0 ~dst:1 payload;
  Engine.run engine;
  match List.rev !arrivals with
  | [ first; second ] ->
      let ser = 4_001 (* (1_000_060 * 8) / 2000 = 4000.24 -> ceil 4001 *) in
      Alcotest.(check int) "first" (ser + 10_000) first;
      Alcotest.(check int) "second queues" ((2 * ser) + 10_000) second
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_net_self_send_local () =
  let engine, net = mk_net ~config:no_jitter () in
  let arrival = ref (-1) in
  Net.set_handler net 0 (fun ~src _ ->
      Alcotest.(check int) "src" 0 src;
      arrival := Engine.now engine);
  Net.send net ~src:0 ~dst:0 "x";
  Engine.run engine;
  Alcotest.(check int) "loopback delay" no_jitter.local_delivery !arrival

let test_net_jitter_bounded () =
  let config = { Net.default_config with jitter = 0.1 } in
  let engine, net = mk_net ~config () in
  let count = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ ->
      let t = Engine.now engine in
      (* one-way 10ms ±10%, plus up to 50µs of uplink queuing *)
      Alcotest.(check bool) "within jitter" true (t >= 9_000 && t <= 11_052);
      incr count);
  Net.set_handler net 0 (fun ~src:_ _ -> ());
  for _ = 1 to 50 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run engine;
  Alcotest.(check int) "all arrived" 50 !count

let test_net_pre_gst_delays () =
  let config =
    { no_jitter with gst = 1_000_000; pre_gst_max_extra = 500_000 }
  in
  let engine, net = mk_net ~config () in
  let late = ref 0 and post = ref [] in
  Net.set_handler net 1 (fun ~src:_ msg ->
      if msg = "pre" && Engine.now engine > 10_001 then incr late;
      if msg = "post" then post := Engine.now engine :: !post);
  Net.set_handler net 0 (fun ~src:_ _ -> ());
  for _ = 1 to 30 do
    Net.send net ~src:0 ~dst:1 "pre"
  done;
  Engine.run engine;
  (* After GST the adversary loses the ability to delay. *)
  Engine.schedule_at engine 2_000_000 (fun () -> Net.send net ~src:0 ~dst:1 "post");
  Engine.run engine;
  Alcotest.(check bool) "some pre-GST messages delayed" true (!late > 0);
  Alcotest.(check (list int)) "post-GST on time" [ 2_010_001 ] !post

let test_net_filter_drops () =
  let engine, net = mk_net ~config:no_jitter () in
  let got = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr got);
  Net.set_handler net 2 (fun ~src:_ _ -> incr got);
  Net.set_filter net (fun ~src:_ ~dst _ -> dst <> 1);
  Net.send net ~src:0 ~dst:1 "x";
  Net.send net ~src:0 ~dst:2 "x";
  Engine.run engine;
  Alcotest.(check int) "only unfiltered" 1 !got

let test_net_metrics () =
  let engine, net = mk_net ~config:no_jitter () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 (String.make 40 'x');
  Engine.run engine;
  Alcotest.(check int) "bytes include overhead" 100 (Net.bytes_sent net 0);
  Alcotest.(check int) "received" 100 (Net.bytes_received net 1);
  Alcotest.(check int) "messages" 1 (Net.messages_sent net 0);
  Alcotest.(check int) "total" 100 (Net.total_bytes net);
  Net.reset_metrics net;
  Alcotest.(check int) "reset" 0 (Net.total_bytes net)

let test_net_reset_metrics_full () =
  (* Regression: reset_metrics used to zero only the byte/message counters,
     leaving uplink_busy, the backlog histogram, and — worst — the
     uplink_free cursors stale, so the section measured after a reset
     started with phantom queueing delay. *)
  let engine, net = mk_net ~config:no_jitter () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  Net.set_handler net 0 (fun ~src:_ _ -> ());
  let payload = String.make 1_000_000 'x' in
  Net.send net ~src:0 ~dst:1 payload;
  Net.send net ~src:0 ~dst:1 payload;
  Engine.run engine;
  Net.reset_metrics net;
  let reg = Net.registry net in
  (match Metrics.find reg "uplink_busy_us_total" with
  | Some (Metrics.Counter_v v) -> Alcotest.(check int) "uplink_busy cleared" 0 v
  | _ -> Alcotest.fail "uplink_busy_us_total missing");
  (match Metrics.find reg "uplink_backlog_us" with
  | Some (Metrics.Histogram_v h) ->
      Alcotest.(check int) "backlog histogram cleared" 0
        (Clanbft.Util.Stats.Histogram.count h)
  | _ -> Alcotest.fail "uplink_backlog_us missing");
  (* A fresh message after the reset must see an idle uplink: same arrival
     time as the very first send of the run, not queued behind the
     pre-reset burst. *)
  let arrival = ref (-1) in
  Net.set_handler net 1 (fun ~src:_ _ -> arrival := Engine.now engine);
  let base = Engine.now engine in
  Net.send net ~src:0 ~dst:1 "x";
  Engine.run engine;
  Alcotest.(check int) "uplink cursor cleared" (base + 10_001) !arrival

let test_net_multicast_matches_sends () =
  (* The batched fan-out fast path must be timing-equivalent to issuing one
     send per destination: same RNG draws, same departure and arrival
     times, same per-destination order — with jitter on, any divergence in
     draw order shows up immediately. *)
  let record sendf =
    let config = { Net.default_config with jitter = 0.05 } in
    let engine = Engine.create () in
    let topology = Topology.uniform ~n:6 ~one_way_ms:10.0 in
    let net =
      Net.create ~engine ~topology ~config ~size:String.length
        ~rng:(Rng.create 42L) ()
    in
    let log = ref [] in
    for i = 0 to 5 do
      Net.set_handler net i (fun ~src:_ _ -> log := (i, Engine.now engine) :: !log)
    done;
    sendf net;
    Engine.run engine;
    List.rev !log
  in
  let dsts = [ 1; 2; 3; 4; 5 ] in
  let batched = record (fun net -> Net.multicast net ~src:0 ~dsts "payload") in
  let unicast =
    record (fun net -> List.iter (fun dst -> Net.send net ~src:0 ~dst "payload") dsts)
  in
  Alcotest.(check (list (pair int int)))
    "batched fan-out delivers at identical instants in identical order"
    unicast batched;
  (* Self-delivery keeps its loopback semantics on the fast path too. *)
  let batched_self = record (fun net -> Net.multicast net ~src:0 ~dsts:[ 0; 1; 2 ] "p") in
  let unicast_self =
    record (fun net -> List.iter (fun dst -> Net.send net ~src:0 ~dst "p") [ 0; 1; 2 ])
  in
  Alcotest.(check (list (pair int int))) "self copy identical" unicast_self batched_self

let test_net_jitter_symmetric () =
  (* The jitter draw must be symmetric: round-to-nearest over u uniform in
     [-1, 1). The pre-fix truncation toward zero folded the whole (-1, 1)
     µs band onto 0 and shifted every bin edge; with base * jitter = 100
     that inflated the zero bin ~2x and made +100 unreachable. The checks
     below are deterministic for the fixed seed and fail against the
     truncating implementation. *)
  let config = { Net.default_config with jitter = 0.1 } in
  let rng = Rng.create 7L in
  let base = 1_000 in
  let n = 100_000 in
  let sum = ref 0 and pos = ref 0 and neg = ref 0 and zero = ref 0 in
  let hi = ref 0 and lo = ref 0 in
  for _ = 1 to n do
    let j = Net.jitter_draw config ~rng ~base in
    sum := !sum + j;
    if j > 0 then incr pos else if j < 0 then incr neg else incr zero;
    if j > !hi then hi := j;
    if j < !lo then lo := j
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* sigma/sqrt(n) ~ 0.18µs for uniform ±100µs; 1µs is a generous 5-sigma
     band, while the truncation bug biased the zero bin, not the mean. *)
  Alcotest.(check bool) "mean centred on zero" true (Float.abs mean < 1.0);
  (* P(j = 0) = 1/200 under rounding vs 1/100 under truncation: expect
     ~500 zeros, and well under 750 (the bug gives ~1000). *)
  Alcotest.(check bool) "zero bin not inflated" true (!zero < 750);
  (* Sign balance: |pos - neg| is a +/-2 sigma binomial fluctuation. *)
  Alcotest.(check bool) "sign symmetric" true (abs (!pos - !neg) < 1_000);
  (* Both extremes reachable: truncation could never produce +100. *)
  Alcotest.(check int) "max offset" 100 !hi;
  Alcotest.(check int) "min offset" (-100) !lo;
  (* jitter = 0 consumes nothing from the stream. *)
  let r1 = Rng.create 9L and r2 = Rng.create 9L in
  let (_ : int) = Net.jitter_draw { config with jitter = 0.0 } ~rng:r1 ~base in
  Alcotest.(check int) "no draw when jitter off" (Rng.int r2 1_000_000)
    (Rng.int r1 1_000_000)

let test_net_broadcast () =
  let engine, net = mk_net ~config:no_jitter () in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Net.set_handler net i (fun ~src:_ _ -> got.(i) <- got.(i) + 1)
  done;
  Net.broadcast net ~src:2 "x";
  Engine.run engine;
  Alcotest.(check (array int)) "everyone got one" [| 1; 1; 1; 1 |] got

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are reproducible" ~count:30
    QCheck.(list (pair (int_range 0 100_000) small_int))
    (fun events ->
      let run () =
        let e = Engine.create () in
        let log = ref [] in
        List.iter
          (fun (time, tag) -> Engine.schedule_at e time (fun () -> log := tag :: !log))
          events;
        Engine.run e;
        !log
      in
      run () = run ())

let suites =
  [
    ("sim.time", [ Alcotest.test_case "conversions" `Quick test_time_conversions ]);
    ( "sim.engine",
      [
        Alcotest.test_case "ordering" `Quick test_engine_ordering;
        Alcotest.test_case "fifo ties" `Quick test_engine_fifo_same_time;
        Alcotest.test_case "schedule now" `Quick test_engine_schedule_now;
        Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
        Alcotest.test_case "until" `Quick test_engine_until;
        Alcotest.test_case "until empty" `Quick test_engine_until_empty_queue;
        Alcotest.test_case "max events" `Quick test_engine_max_events;
        Alcotest.test_case "far future (overflow ring)" `Quick test_engine_far_future;
        Alcotest.test_case "ring horizon boundary" `Quick test_engine_ring_horizon_boundary;
        Alcotest.test_case "overflow migration exact time" `Quick
          test_engine_overflow_migration_keeps_time;
        Alcotest.test_case "until past last event" `Quick test_engine_until_past_last_event;
        Alcotest.test_case "fifo across scheduling instants" `Quick
          test_engine_fifo_across_scheduling_instants;
        Alcotest.test_case "cascading timers" `Quick test_engine_cascading;
        Alcotest.test_case "last ring slot" `Quick test_engine_last_ring_slot;
        Alcotest.test_case "overflow same-instant fifo" `Quick
          test_engine_overflow_same_instant_fifo;
        Alcotest.test_case "mixed event kinds fifo" `Quick
          test_engine_mixed_event_kinds_fifo;
        Alcotest.test_case "step" `Quick test_engine_step;
        qtest prop_engine_deterministic;
      ] );
    ( "sim.topology",
      [
        Alcotest.test_case "gcp table1" `Quick test_topology_table1;
        Alcotest.test_case "uniform" `Quick test_topology_uniform;
        Alcotest.test_case "validation" `Quick test_topology_validation;
      ] );
    ( "sim.net",
      [
        Alcotest.test_case "delivery time" `Quick test_net_delivery_time;
        Alcotest.test_case "serialization queuing" `Quick test_net_serialization_queuing;
        Alcotest.test_case "self-send local" `Quick test_net_self_send_local;
        Alcotest.test_case "jitter bounded" `Quick test_net_jitter_bounded;
        Alcotest.test_case "pre-GST delays" `Quick test_net_pre_gst_delays;
        Alcotest.test_case "filter drops" `Quick test_net_filter_drops;
        Alcotest.test_case "metrics" `Quick test_net_metrics;
        Alcotest.test_case "reset clears uplink state" `Quick test_net_reset_metrics_full;
        Alcotest.test_case "multicast matches per-send timing" `Quick
          test_net_multicast_matches_sends;
        Alcotest.test_case "jitter symmetric" `Quick test_net_jitter_symmetric;
        Alcotest.test_case "broadcast" `Quick test_net_broadcast;
      ] );
  ]
