open Clanbft.Util

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let distinct = ref 0 in
  for _ = 1 to 32 do
    if Rng.next_int64 a <> Rng.next_int64 b then incr distinct
  done;
  Alcotest.(check bool) "streams differ" true (!distinct > 28)

let test_rng_split_independent () =
  let parent = Rng.create 7L in
  let child = Rng.split parent in
  let c1 = Rng.next_int64 child and p1 = Rng.next_int64 parent in
  Alcotest.(check bool) "child differs from parent" true (c1 <> p1)

let test_rng_int_bounds () =
  let rng = Rng.create 99L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_covers () =
  let rng = Rng.create 3L in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all (fun b -> b) seen)

let test_rng_int_rejects_zero () =
  let rng = Rng.create 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 5L in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.0 in
    Alcotest.(check bool) "in [0,3)" true (v >= 0.0 && v < 3.0)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_bytes_length () =
  let rng = Rng.create 13L in
  Alcotest.(check int) "length" 33 (Bytes.length (Rng.bytes rng 33))

let test_rng_exponential_positive () =
  let rng = Rng.create 17L in
  let sum = ref 0.0 in
  for _ = 1 to 1_000 do
    let v = Rng.exponential rng ~mean:10.0 in
    Alcotest.(check bool) "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. 1_000.0 in
  Alcotest.(check bool) "mean near 10" true (mean > 8.0 && mean < 12.0)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic_order () =
  let h = Heap.create ~dummy:"" () in
  List.iter (fun (p, v) -> Heap.push h p v) [ (5, "e"); (1, "a"); (3, "c") ];
  Alcotest.(check (option (pair int string))) "min first" (Some (1, "a")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "then 3" (Some (3, "c")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "then 5" (Some (5, "e")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "empty" None (Heap.pop h)

let test_heap_fifo_ties () =
  let h = Heap.create ~dummy:"" () in
  List.iter (fun v -> Heap.push h 7 v) [ "first"; "second"; "third" ];
  Alcotest.(check (option (pair int string))) "fifo 1" (Some (7, "first")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "fifo 2" (Some (7, "second")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "fifo 3" (Some (7, "third")) (Heap.pop h)

let test_heap_peek () =
  let h = Heap.create ~dummy:0 () in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek_priority h);
  Heap.push h 9 1;
  Heap.push h 2 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek_priority h);
  Alcotest.(check int) "length" 2 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create ~dummy:0 () in
  for i = 1 to 10 do
    Heap.push h i i
  done;
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list small_int)
    (fun priorities ->
      let h = Heap.create ~dummy:0 () in
      List.iter (fun p -> Heap.push h p p) priorities;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare priorities)

let prop_heap_growth =
  QCheck.Test.make ~name:"heap grows past initial capacity" ~count:20
    QCheck.(int_range 100 2000)
    (fun n ->
      let h = Heap.create ~capacity:4 ~dummy:0 () in
      for i = n downto 1 do
        Heap.push h i i
      done;
      Heap.length h = n && Heap.peek_priority h = Some 1)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_add_mem () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "fresh add" true (Bitset.add b 63);
  Alcotest.(check bool) "duplicate add" false (Bitset.add b 63);
  Alcotest.(check bool) "mem" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem" false (Bitset.mem b 64);
  Alcotest.(check int) "cardinal" 1 (Bitset.cardinal b)

let test_bitset_remove () =
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  Alcotest.(check bool) "remove present" true (Bitset.remove b 2);
  Alcotest.(check bool) "remove absent" false (Bitset.remove b 2);
  Alcotest.(check int) "cardinal after" 2 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.add b 10))

let test_bitset_word_boundaries () =
  (* Exercise indices around the 63-bit word boundary. *)
  let b = Bitset.create 200 in
  List.iter
    (fun i -> ignore (Bitset.add b i))
    [ 0; 62; 63; 64; 125; 126; 127; 199 ];
  Alcotest.(check (list int)) "round-trip" [ 0; 62; 63; 64; 125; 126; 127; 199 ]
    (Bitset.to_list b)

let test_bitset_inter_cardinal () =
  let a = Bitset.of_list 100 [ 1; 50; 99 ] in
  let b = Bitset.of_list 100 [ 50; 99; 3 ] in
  Alcotest.(check int) "intersection" 2 (Bitset.inter_cardinal a b)

let test_bitset_union_into () =
  let a = Bitset.of_list 100 [ 1; 2 ] in
  let b = Bitset.of_list 100 [ 2; 3 ] in
  Bitset.union_into ~dst:a b;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal a);
  Alcotest.(check bool) "has 3" true (Bitset.mem a 3)

let test_bitset_byte () =
  (* Straddle cases: a packed byte can span two 63-bit words (bytes 7,
     15, … start at bit offsets > 55 within a word). *)
  let b = Bitset.of_list 200 [ 0; 7; 56; 62; 63; 64; 71; 125; 126; 127; 199 ] in
  let expected j =
    let acc = ref 0 in
    for p = 0 to 7 do
      let i = (8 * j) + p in
      if i < Bitset.capacity b && Bitset.mem b i then acc := !acc lor (1 lsl p)
    done;
    !acc
  in
  for j = 0 to ((Bitset.capacity b + 7) / 8) - 1 do
    Alcotest.(check int) (Printf.sprintf "byte %d" j) (expected j) (Bitset.byte b j)
  done;
  (* A capacity that is an exact word multiple: the last byte's tail bits
     live past the final word. *)
  let c = Bitset.of_list 63 [ 56; 62 ] in
  Alcotest.(check int) "last byte of 63-bit set" 0x41 (Bitset.byte c 7);
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset.byte")
    (fun () -> ignore (Bitset.byte c 8))

let prop_bitset_byte_model =
  QCheck.Test.make ~name:"bitset byte matches mem bit-by-bit" ~count:200
    QCheck.(pair (int_range 1 200) (list (int_range 0 199)))
    (fun (cap, ops) ->
      let b = Bitset.create cap in
      List.iter (fun i -> if i < cap then ignore (Bitset.add b i)) ops;
      let ok = ref true in
      for j = 0 to ((cap + 7) / 8) - 1 do
        let byte = Bitset.byte b j in
        for p = 0 to 7 do
          let i = (8 * j) + p in
          let expect = i < cap && Bitset.mem b i in
          if expect <> (byte land (1 lsl p) <> 0) then ok := false
        done
      done;
      !ok)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a list model" ~count:200
    QCheck.(list (int_range 0 199))
    (fun ops ->
      let b = Bitset.create 200 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun i ->
          ignore (Bitset.add b i);
          Hashtbl.replace model i ())
        ops;
      let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
      Bitset.to_list b = expected && Bitset.cardinal b = List.length expected)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.percentile s 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 100.0)

let test_stats_minmax () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 5.0; -1.0; 3.0 ];
  Alcotest.(check (float 1e-9)) "min" (-1.0) (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max s)

let test_stats_empty_total () =
  (* percentile and summary are total: nan / "empty" instead of raising *)
  let s = Stats.create () in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Stats.percentile s 50.0));
  Alcotest.(check string) "empty summary" "empty" (Stats.summary s);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile s 101.0))

let test_histogram_buckets () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 10.0; 100.0 |] in
  Alcotest.(check bool) "empty mean is nan" true
    (Float.is_nan (Stats.Histogram.mean h));
  (* Edge samples land in the bucket whose upper edge admits them
     (inclusive), strictly-greater samples in the next one. *)
  List.iter (Stats.Histogram.observe h) [ 0.5; 1.0; 1.5; 10.0; 10.5; 1e9 ];
  Alcotest.(check int) "count" 6 (Stats.Histogram.count h);
  let counts = Array.map snd (Stats.Histogram.buckets h) in
  Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 1 |] counts;
  let edges = Array.map fst (Stats.Histogram.buckets h) in
  Alcotest.(check bool) "overflow edge is +inf" true
    (edges.(3) = Float.infinity);
  let cum = Array.map snd (Stats.Histogram.cumulative h) in
  Alcotest.(check (array int)) "cumulative" [| 2; 4; 5; 6 |] cum;
  Alcotest.(check (float 1e-9)) "p50 upper bound" 10.0
    (Stats.Histogram.quantile h 0.5);
  Alcotest.(check bool) "p100 is overflow edge" true
    (Stats.Histogram.quantile h 1.0 = Float.infinity);
  Stats.Histogram.reset h;
  Alcotest.(check int) "reset" 0 (Stats.Histogram.count h)

let test_histogram_bad_edges () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Stats.Histogram.create: edges must be strictly increasing")
    (fun () -> ignore (Stats.Histogram.create ~buckets:[| 1.0; 1.0 |]))

let test_rate_window () =
  let r = Stats.Rate.create ~window_us:1_000_000 () in
  Stats.Rate.add r ~now_us:0 100.0;
  Stats.Rate.add r ~now_us:500_000 200.0;
  Alcotest.(check (float 1e-9)) "both in window" 300.0
    (Stats.Rate.total r ~now_us:900_000);
  (* at t=1_000_000 the t=0 entry ages out (ts <= now - window) *)
  Alcotest.(check (float 1e-9)) "first aged out" 200.0
    (Stats.Rate.total r ~now_us:1_000_000);
  Alcotest.(check (float 1e-9)) "per second" 200.0
    (Stats.Rate.per_second r ~now_us:1_400_000);
  Alcotest.(check (float 1e-9)) "all aged out" 0.0
    (Stats.Rate.total r ~now_us:2_000_000)

let test_stats_add_after_sort () =
  (* percentile sorts internally; adding afterwards must still work *)
  let s = Stats.create () in
  List.iter (Stats.add s) [ 3.0; 1.0 ];
  ignore (Stats.percentile s 50.0);
  Stats.add s 2.0;
  Alcotest.(check (float 1e-9)) "p50 after re-add" 2.0 (Stats.percentile s 50.0)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check bool) "stddev near 2.14" true
    (abs_float (Stats.stddev s -. 2.138) < 0.01)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 5;
  Alcotest.(check int) "value" 6 (Stats.Counter.get c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.get c)

(* ------------------------------------------------------------------ *)
(* Hex *)

let test_hex_encode () =
  Alcotest.(check string) "known" "00ff10" (Hex.encode "\x00\xff\x10")

let test_hex_decode_cases () =
  Alcotest.(check string) "upper/lower" "\xab\xcd" (Hex.decode "AbCd")

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: non-hex character")
    (fun () -> ignore (Hex.decode "zz"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex decode/encode round-trips" ~count:200
    QCheck.string
    (fun s -> Hex.decode (Hex.encode s) = s)

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int covers range" `Quick test_rng_int_covers;
        Alcotest.test_case "int rejects zero" `Quick test_rng_int_rejects_zero;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "shuffle is permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "bytes length" `Quick test_rng_bytes_length;
        Alcotest.test_case "exponential" `Quick test_rng_exponential_positive;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "basic order" `Quick test_heap_basic_order;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "peek/length" `Quick test_heap_peek;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        qtest prop_heap_sorts;
        qtest prop_heap_growth;
      ] );
    ( "util.bitset",
      [
        Alcotest.test_case "add/mem" `Quick test_bitset_add_mem;
        Alcotest.test_case "remove" `Quick test_bitset_remove;
        Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        Alcotest.test_case "word boundaries" `Quick test_bitset_word_boundaries;
        Alcotest.test_case "inter cardinal" `Quick test_bitset_inter_cardinal;
        Alcotest.test_case "union into" `Quick test_bitset_union_into;
        Alcotest.test_case "packed bytes" `Quick test_bitset_byte;
        qtest prop_bitset_model;
        qtest prop_bitset_byte_model;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
        Alcotest.test_case "min/max" `Quick test_stats_minmax;
        Alcotest.test_case "empty is total" `Quick test_stats_empty_total;
        Alcotest.test_case "add after sort" `Quick test_stats_add_after_sort;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "histogram bad edges" `Quick test_histogram_bad_edges;
        Alcotest.test_case "rate window" `Quick test_rate_window;
      ] );
    ( "util.hex",
      [
        Alcotest.test_case "encode" `Quick test_hex_encode;
        Alcotest.test_case "decode cases" `Quick test_hex_decode_cases;
        Alcotest.test_case "errors" `Quick test_hex_errors;
        qtest prop_hex_roundtrip;
      ] );
  ]
