open Clanbft
open Clanbft.Crypto

let qtest = QCheck_alcotest.to_alcotest
let kc = Keychain.create ~seed:123L ~n:16

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_full () =
  let c = Config.make ~n:10 Config.Full in
  Alcotest.(check int) "f" 3 (Config.f c);
  Alcotest.(check int) "quorum" 7 (Config.quorum c);
  Alcotest.(check int) "weak quorum" 4 (Config.weak_quorum c);
  Alcotest.(check bool) "everyone proposes" true (Config.is_block_proposer c 9);
  Alcotest.(check int) "payload clan is the tribe" 10
    (Array.length (Option.get (Config.payload_clan c ~proposer:0)));
  Alcotest.(check int) "no clan echo constraint" 0 (Config.clan_echo_threshold c ~proposer:0);
  Alcotest.(check bool) "everyone executes" true (Config.executes_blocks c 9);
  Alcotest.(check int) "one clan" 1 (Config.clan_count c)

let test_config_single_clan () =
  let clan = [| 1; 3; 5; 7; 9 |] in
  let c = Config.make ~n:10 (Config.Single_clan clan) in
  Alcotest.(check bool) "clan member proposes" true (Config.is_block_proposer c 3);
  Alcotest.(check bool) "outsider does not" false (Config.is_block_proposer c 2);
  Alcotest.(check (list int)) "proposers" [ 1; 3; 5; 7; 9 ] (Config.block_proposers c);
  (* fc of 5 = 2, so the echo threshold is 3 *)
  Alcotest.(check int) "echo threshold fc+1" 3 (Config.clan_echo_threshold c ~proposer:1);
  Alcotest.(check bool) "member stores payload" true (Config.in_payload_clan c ~proposer:1 9);
  Alcotest.(check bool) "outsider does not store" false (Config.in_payload_clan c ~proposer:1 0);
  Alcotest.(check bool) "vertex-only proposer has no payload clan" true
    (Config.payload_clan c ~proposer:2 = None);
  Alcotest.(check bool) "outsider does not execute" false (Config.executes_blocks c 0);
  Alcotest.(check (option int)) "clan_of member" (Some 0) (Config.clan_of c 5);
  Alcotest.(check (option int)) "clan_of outsider" None (Config.clan_of c 0)

let test_config_multi_clan () =
  let c = Config.make ~n:9 (Config.Multi_clan [| [| 0; 1; 2; 3 |]; [| 4; 5; 6; 7; 8 |] |]) in
  Alcotest.(check bool) "all propose" true (Config.is_block_proposer c 8);
  Alcotest.(check int) "clan count" 2 (Config.clan_count c);
  (* proposer 5's payload goes to clan 1 *)
  Alcotest.(check bool) "own clan stores" true (Config.in_payload_clan c ~proposer:5 8);
  Alcotest.(check bool) "other clan does not" false (Config.in_payload_clan c ~proposer:5 0);
  Alcotest.(check int) "fc+1 of clan of 4" 2 (Config.clan_echo_threshold c ~proposer:0);
  Alcotest.(check int) "fc+1 of clan of 5" 3 (Config.clan_echo_threshold c ~proposer:4);
  Alcotest.(check bool) "everyone executes something" true (Config.executes_blocks c 3)

let test_config_leader_rotation () =
  let c = Config.make ~n:7 Config.Full in
  Alcotest.(check int) "round 0" 0 (Config.leader_of_round c 0);
  Alcotest.(check int) "round 8" 1 (Config.leader_of_round c 8)

let test_config_sparse () =
  let p = Config.Sparse { k = 3; seed = 1L } in
  let c = Config.make ~n:16 ~edge_policy:p Config.Full in
  Alcotest.(check bool) "sparse_edges" true (Config.sparse_edges c);
  Alcotest.(check bool) "dense by default" false
    (Config.sparse_edges (Config.make ~n:16 Config.Full));
  (* self + leader + link + k sampled = k + 3 strong edges at most *)
  Alcotest.(check int) "strong cap" 6 (Config.sparse_strong_cap p);
  Alcotest.(check int) "weak cap floor" 16 (Config.sparse_weak_cap p);
  Alcotest.(check int) "weak cap tracks k" 36
    (Config.sparse_weak_cap (Config.Sparse { k = 9; seed = 0L }));
  Alcotest.(check bool) "dense caps unbounded" true
    (Config.sparse_strong_cap Config.Dense = max_int
    && Config.sparse_weak_cap Config.Dense = max_int);
  Alcotest.check_raises "k must be positive"
    (Invalid_argument "Config: sparse k must be >= 1") (fun () ->
      ignore
        (Config.make ~n:16
           ~edge_policy:(Config.Sparse { k = 0; seed = 1L })
           Config.Full))

let test_config_validation () =
  Alcotest.check_raises "overlapping clans" (Invalid_argument "Config: clans must be disjoint")
    (fun () ->
      ignore (Config.make ~n:6 (Config.Multi_clan [| [| 0; 1 |]; [| 1; 2 |] |])));
  Alcotest.check_raises "member out of range"
    (Invalid_argument "Config: clan member out of range") (fun () ->
      ignore (Config.make ~n:4 (Config.Single_clan [| 7 |])));
  Alcotest.check_raises "empty clan" (Invalid_argument "Config: empty clan") (fun () ->
      ignore (Config.make ~n:4 (Config.Multi_clan [| [||] |])));
  Alcotest.check_raises "n < 3f+1" (Invalid_argument "Config: need 0 <= f and n >= 3f+1")
    (fun () -> ignore (Config.make ~n:6 ~f:2 Config.Full))

(* ------------------------------------------------------------------ *)
(* Transactions / blocks *)

let mk_txn ?(id = 1) ?(size = 512) () =
  Transaction.make ~id ~client:2 ~created_at:1_000 ~size ()

let test_txn_wire_size () =
  Alcotest.(check int) "wire size" (24 + 512) (Transaction.wire_size (mk_txn ()));
  Alcotest.check_raises "negative size" (Invalid_argument "Transaction.make: negative size")
    (fun () -> ignore (mk_txn ~size:(-1) ()))

let test_block_digest_binding () =
  let txns = Array.init 3 (fun i -> mk_txn ~id:i ()) in
  let b1 = Block.make ~proposer:1 ~round:5 ~txns in
  let b2 = Block.make ~proposer:2 ~round:5 ~txns in
  let b3 = Block.make ~proposer:1 ~round:6 ~txns in
  let b4 = Block.make ~proposer:1 ~round:5 ~txns:(Array.sub txns 0 2) in
  Alcotest.(check bool) "proposer bound" false (Digest32.equal (Block.digest b1) (Block.digest b2));
  Alcotest.(check bool) "round bound" false (Digest32.equal (Block.digest b1) (Block.digest b3));
  Alcotest.(check bool) "content bound" false (Digest32.equal (Block.digest b1) (Block.digest b4));
  let b1' = Block.make ~proposer:1 ~round:5 ~txns in
  Alcotest.(check bool) "deterministic" true (Digest32.equal (Block.digest b1) (Block.digest b1'))

let test_block_wire_size () =
  let b = Block.make ~proposer:1 ~round:5 ~txns:(Array.init 3 (fun i -> mk_txn ~id:i ())) in
  Alcotest.(check int) "wire" (12 + (3 * 536)) (Block.wire_size b);
  Alcotest.(check int) "txn count" 3 (Block.txn_count b)

(* ------------------------------------------------------------------ *)
(* Vertices *)

let vref_of_slot round source : Vertex.vref =
  { round; source; digest = Digest32.hash_string (Printf.sprintf "%d-%d" round source) }

let test_vertex_edge_validation () =
  Alcotest.check_raises "strong edge wrong round"
    (Invalid_argument "Vertex.make: strong edge must target previous round") (fun () ->
      ignore
        (Vertex.make ~round:5 ~source:0 ~block_digest:Digest32.zero
           ~strong_edges:[| vref_of_slot 3 0 |] ~weak_edges:[||] ()));
  Alcotest.check_raises "weak edge too recent"
    (Invalid_argument "Vertex.make: weak edge must target round < r-1") (fun () ->
      ignore
        (Vertex.make ~round:5 ~source:0 ~block_digest:Digest32.zero ~strong_edges:[||]
           ~weak_edges:[| vref_of_slot 4 0 |] ()))

let test_vertex_digest_sensitivity () =
  let v1 =
    Vertex.make ~round:3 ~source:1 ~block_digest:Digest32.zero
      ~strong_edges:[| vref_of_slot 2 0 |] ~weak_edges:[||] ()
  in
  let v2 =
    Vertex.make ~round:3 ~source:1 ~block_digest:Digest32.zero
      ~strong_edges:[| vref_of_slot 2 1 |] ~weak_edges:[||] ()
  in
  Alcotest.(check bool) "edges bound into digest" false
    (Digest32.equal v1.Vertex.digest v2.Vertex.digest)

let test_vertex_strong_edge_query () =
  let v =
    Vertex.make ~round:3 ~source:1 ~block_digest:Digest32.zero
      ~strong_edges:[| vref_of_slot 2 0; vref_of_slot 2 4 |] ~weak_edges:[||] ()
  in
  Alcotest.(check bool) "has edge" true (Vertex.has_strong_edge_to v ~round:2 ~source:4);
  Alcotest.(check bool) "no edge" false (Vertex.has_strong_edge_to v ~round:2 ~source:3);
  Alcotest.(check bool) "wrong round" false (Vertex.has_strong_edge_to v ~round:1 ~source:0)

let test_vertex_compact_form () =
  let strong = [| vref_of_slot 2 0; vref_of_slot 2 3; vref_of_slot 2 7 |] in
  let weak = [| vref_of_slot 0 6; vref_of_slot 1 5 |] in
  let mk compact =
    Vertex.make ~round:3 ~source:2 ~block_digest:Digest32.zero
      ~strong_edges:strong ~weak_edges:weak ~compact ()
  in
  let dense = mk false and compact = mk true in
  Alcotest.(check bool) "compact strictly smaller on the wire" true
    (Vertex.wire_size ~n:16 compact < Vertex.wire_size ~n:16 dense);
  (* The content digest names the vertex, not its encoding: both
     representations of the same fields share one identity. *)
  Alcotest.(check bool) "digest representation-independent" true
    (Digest32.equal dense.Vertex.digest compact.Vertex.digest);
  let enc = Codec.encode_vertex ~n:16 compact in
  Alcotest.(check int) "wire_size = encode length"
    (Vertex.wire_size ~n:16 compact)
    (String.length enc);
  let v' = Codec.decode_vertex ~n:16 ~compact:true enc in
  Alcotest.(check bool) "round-trip digest" true
    (Digest32.equal compact.Vertex.digest v'.Vertex.digest);
  Alcotest.(check bool) "round-trip stays compact" true v'.Vertex.compact;
  Alcotest.(check string) "re-encode byte-identical" enc
    (Codec.encode_vertex ~n:16 v')

let test_vertex_compact_validation () =
  Alcotest.check_raises "unsorted strong edges"
    (Invalid_argument "Vertex.make: compact strong edges must ascend by source")
    (fun () ->
      ignore
        (Vertex.make ~round:3 ~source:0 ~block_digest:Digest32.zero
           ~strong_edges:[| vref_of_slot 2 4; vref_of_slot 2 1 |]
           ~weak_edges:[||] ~compact:true ()));
  Alcotest.check_raises "unsorted weak edges"
    (Invalid_argument "Vertex.make: compact weak edges must ascend by (round, source)")
    (fun () ->
      ignore
        (Vertex.make ~round:3 ~source:0 ~block_digest:Digest32.zero
           ~strong_edges:[||]
           ~weak_edges:[| vref_of_slot 1 5; vref_of_slot 0 2 |]
           ~compact:true ()))

let test_vertex_id_order () =
  Alcotest.(check bool) "round first" true (Vertex.Id.compare (1, 9) (2, 0) < 0);
  Alcotest.(check bool) "source second" true (Vertex.Id.compare (2, 1) (2, 3) < 0);
  Alcotest.(check int) "equal" 0 (Vertex.Id.compare (2, 3) (2, 3))

(* ------------------------------------------------------------------ *)
(* Certificates *)

let shares kind round signers =
  List.map (fun i -> (i, Keychain.sign kc ~signer:i (Cert.signing_string kind round))) signers

let test_cert_roundtrip () =
  let c = Option.get (Cert.make kc Cert.Timeout ~round:4 (shares Cert.Timeout 4 [ 0; 1; 2; 3; 4 ])) in
  Alcotest.(check bool) "verifies at quorum 5" true (Cert.verify kc ~quorum:5 c);
  Alcotest.(check bool) "fails at quorum 6" false (Cert.verify kc ~quorum:6 c);
  Alcotest.(check int) "signer count" 5 (Cert.signer_count c)

let test_cert_wrong_round_shares () =
  (* Shares for round 3 aggregated into a round-4 certificate don't verify. *)
  let c = Option.get (Cert.make kc Cert.Timeout ~round:4 (shares Cert.Timeout 3 [ 0; 1; 2 ])) in
  Alcotest.(check bool) "invalid" false (Cert.verify kc ~quorum:3 c)

let test_cert_kind_separation () =
  (* No-vote shares cannot stand in for timeout shares. *)
  let c = Option.get (Cert.make kc Cert.Timeout ~round:4 (shares Cert.No_vote 4 [ 0; 1; 2 ])) in
  Alcotest.(check bool) "invalid" false (Cert.verify kc ~quorum:3 c)

(* ------------------------------------------------------------------ *)
(* Messages and codec *)

let sample_block = Block.make ~proposer:2 ~round:3 ~txns:(Array.init 4 (fun i -> mk_txn ~id:i ()))

let sample_vertex ?(nvc = false) ?(tc = false) () =
  let nvc =
    if nvc then Some (Option.get (Cert.make kc Cert.No_vote ~round:2 (shares Cert.No_vote 2 [ 0; 1; 2 ])))
    else None
  in
  let tc =
    if tc then Some (Option.get (Cert.make kc Cert.Timeout ~round:2 (shares Cert.Timeout 2 [ 3; 4; 5 ])))
    else None
  in
  Vertex.make ~round:3 ~source:2 ~block_digest:(Block.digest sample_block)
    ~strong_edges:[| vref_of_slot 2 0; vref_of_slot 2 1 |]
    ~weak_edges:[| vref_of_slot 1 5 |] ?nvc ?tc ()

let sample_msgs () =
  let v = sample_vertex ~nvc:true ~tc:true () in
  let sg = Keychain.sign kc ~signer:2 "sig" in
  let agg = Option.get (Keychain.aggregate kc ~msg:"m" [ (0, Keychain.sign kc ~signer:0 "m") ]) in
  [
    Msg.Val { vertex = v; block = Some sample_block; signature = sg };
    Msg.Val { vertex = sample_vertex (); block = None; signature = sg };
    Msg.Echo { round = 3; source = 2; vertex_digest = v.Vertex.digest; signer = 1; signature = sg };
    Msg.Echo_cert { round = 3; source = 2; vertex_digest = v.Vertex.digest; agg; clan_echoes = 5 };
    Msg.Timeout_share { round = 9; signer = 4; signature = sg };
    Msg.No_vote_share { round = 9; signer = 4; signature = sg };
    Msg.Timeout_cert (Option.get (Cert.make kc Cert.Timeout ~round:7 (shares Cert.Timeout 7 [ 0; 1; 2 ])));
    Msg.Block_request { round = 3; source = 2 };
    Msg.Block_reply { block = sample_block };
    Msg.Vertex_request { round = 3; source = 2 };
    Msg.Vertex_reply { vertex = v; block = Some sample_block };
  ]

let test_wire_size_matches_codec () =
  List.iter
    (fun m ->
      Alcotest.(check int) (Msg.tag m) (Msg.wire_size ~n:16 m)
        (String.length (Codec.encode ~n:16 m)))
    (sample_msgs ())

let test_codec_roundtrip () =
  List.iter
    (fun m ->
      let enc = Codec.encode ~n:16 m in
      let dec = Codec.decode ~n:16 enc in
      Alcotest.(check string) (Msg.tag m) enc (Codec.encode ~n:16 dec))
    (sample_msgs ())

let test_codec_rejects_garbage () =
  Alcotest.(check bool) "bad tag raises" true
    (match Codec.decode ~n:16 "\xff" with
    | exception Codec.Decode_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "truncated raises" true
    (match Codec.decode ~n:16 (String.sub (Codec.encode ~n:16 (List.hd (sample_msgs ()))) 0 10) with
    | exception Codec.Decode_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "trailing bytes raise" true
    (match Codec.decode ~n:16 (Codec.encode ~n:16 (Msg.Block_request { round = 1; source = 2 }) ^ "x") with
    | exception Codec.Decode_error _ -> true
    | _ -> false)

let test_codec_compact_val_roundtrip () =
  let v =
    Vertex.make ~round:3 ~source:2 ~block_digest:(Block.digest sample_block)
      ~strong_edges:[| vref_of_slot 2 0; vref_of_slot 2 1 |]
      ~weak_edges:[| vref_of_slot 1 5 |] ~compact:true ()
  in
  let sg = Keychain.sign kc ~signer:2 "sig" in
  let m = Msg.Val { vertex = v; block = Some sample_block; signature = sg } in
  let enc = Codec.encode ~n:16 m in
  Alcotest.(check int) "wire_size = encode length" (Msg.wire_size ~n:16 m)
    (String.length enc);
  let dec = Codec.decode ~n:16 ~compact:true enc in
  Alcotest.(check string) "roundtrip" enc (Codec.encode ~n:16 dec);
  (* A compact VAL is strictly smaller than the dense encoding of the
     same vertex. *)
  let dense =
    Msg.Val
      {
        vertex =
          Vertex.make ~round:3 ~source:2 ~block_digest:(Block.digest sample_block)
            ~strong_edges:[| vref_of_slot 2 0; vref_of_slot 2 1 |]
            ~weak_edges:[| vref_of_slot 1 5 |] ();
        block = Some sample_block;
        signature = sg;
      }
  in
  Alcotest.(check bool) "compact < dense" true
    (Msg.wire_size ~n:16 m < Msg.wire_size ~n:16 dense)

let test_vertex_block_codec_roundtrip () =
  let v = sample_vertex ~tc:true () in
  let v' = Codec.decode_vertex ~n:16 (Codec.encode_vertex ~n:16 v) in
  Alcotest.(check bool) "vertex digest preserved" true (Digest32.equal v.Vertex.digest v'.Vertex.digest);
  let b' = Codec.decode_block (Codec.encode_block sample_block) in
  Alcotest.(check bool) "block digest preserved" true
    (Digest32.equal (Block.digest sample_block) (Block.digest b'))

let prop_codec_block_roundtrip =
  QCheck.Test.make ~name:"random blocks round-trip" ~count:100
    QCheck.(pair (int_range 0 15) (list_of_size (QCheck.Gen.int_range 0 20) (int_range 0 2048)))
    (fun (proposer, sizes) ->
      let txns =
        Array.of_list
          (List.mapi (fun i size -> Transaction.make ~id:i ~client:proposer ~created_at:i ~size ()) sizes)
      in
      let b = Block.make ~proposer ~round:1 ~txns in
      let b' = Codec.decode_block (Codec.encode_block b) in
      Digest32.equal (Block.digest b) (Block.digest b')
      && Block.wire_size b = String.length (Codec.encode_block b))

let suites =
  [
    ( "types.config",
      [
        Alcotest.test_case "full mode" `Quick test_config_full;
        Alcotest.test_case "single clan" `Quick test_config_single_clan;
        Alcotest.test_case "multi clan" `Quick test_config_multi_clan;
        Alcotest.test_case "leader rotation" `Quick test_config_leader_rotation;
        Alcotest.test_case "sparse policy" `Quick test_config_sparse;
        Alcotest.test_case "validation" `Quick test_config_validation;
      ] );
    ( "types.block",
      [
        Alcotest.test_case "txn wire size" `Quick test_txn_wire_size;
        Alcotest.test_case "digest binding" `Quick test_block_digest_binding;
        Alcotest.test_case "block wire size" `Quick test_block_wire_size;
      ] );
    ( "types.vertex",
      [
        Alcotest.test_case "edge validation" `Quick test_vertex_edge_validation;
        Alcotest.test_case "digest sensitivity" `Quick test_vertex_digest_sensitivity;
        Alcotest.test_case "strong edge query" `Quick test_vertex_strong_edge_query;
        Alcotest.test_case "compact form" `Quick test_vertex_compact_form;
        Alcotest.test_case "compact validation" `Quick test_vertex_compact_validation;
        Alcotest.test_case "id order" `Quick test_vertex_id_order;
      ] );
    ( "types.cert",
      [
        Alcotest.test_case "roundtrip" `Quick test_cert_roundtrip;
        Alcotest.test_case "wrong round shares" `Quick test_cert_wrong_round_shares;
        Alcotest.test_case "kind separation" `Quick test_cert_kind_separation;
      ] );
    ( "types.codec",
      [
        Alcotest.test_case "wire_size = encode length" `Quick test_wire_size_matches_codec;
        Alcotest.test_case "roundtrip all messages" `Quick test_codec_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        Alcotest.test_case "compact VAL roundtrip" `Quick test_codec_compact_val_roundtrip;
        Alcotest.test_case "vertex/block standalone" `Quick test_vertex_block_codec_roundtrip;
        qtest prop_codec_block_roundtrip;
      ] );
  ]
