(* Crash–recovery subsystem: WAL persistence, state sync, restart harness
   (docs/RECOVERY.md), plus the satellite regressions that rode along with
   it (client id packing / eviction, mempool FIFO, store horizon). *)

open Clanbft
open Clanbft.Sim
open Clanbft.Crypto
module Rng = Util.Rng
module Store = Dag_store

(* ------------------------------------------------------------------ *)
(* Persist: write-ahead log *)

let test_wal_round_trip () =
  let engine = Engine.create () in
  let p = Persist.create ~engine () in
  Persist.wal_append p ~key:"wal/v/1/0" ~data:"aaa";
  Persist.wal_append p ~key:"wal/v/1/2" ~data:"bbb";
  Persist.wal_append p ~key:"wal/b/1/0" ~data:"ccc";
  Alcotest.(check int) "nothing durable yet" 0 (Persist.wal_size p);
  Engine.run engine;
  Alcotest.(check int) "all records durable" 3 (Persist.wal_size p);
  let seen = ref [] in
  Persist.wal_iter p (fun ~key ~data -> seen := (key, data) :: !seen);
  Alcotest.(check (list (pair string string)))
    "replay in append order"
    [ ("wal/v/1/0", "aaa"); ("wal/v/1/2", "bbb"); ("wal/b/1/0", "ccc") ]
    (List.rev !seen)

let test_wal_dedup () =
  let engine = Engine.create () in
  let p = Persist.create ~engine () in
  Persist.wal_append p ~key:"wal/v/1/0" ~data:"aaa";
  (* duplicate while the first append is still in flight *)
  Persist.wal_append p ~key:"wal/v/1/0" ~data:"aaa";
  Engine.run engine;
  (* duplicate after it became durable *)
  Persist.wal_append p ~key:"wal/v/1/0" ~data:"aaa";
  Engine.run engine;
  Alcotest.(check int) "one record" 1 (Persist.wal_size p)

let test_wal_crash_drops_pending () =
  let engine = Engine.create () in
  let p = Persist.create ~engine () in
  Persist.wal_append p ~key:"a" ~data:"1";
  Engine.run engine;
  Persist.wal_append p ~key:"b" ~data:"2";
  (* the process dies before "b" hits disk *)
  Persist.crash p;
  Engine.run engine;
  Alcotest.(check int) "only the durable prefix survives" 1 (Persist.wal_size p);
  (* a lost pending append may be re-journalled after the restart *)
  Persist.wal_append p ~key:"b" ~data:"2";
  Engine.run engine;
  Alcotest.(check int) "re-append lands" 2 (Persist.wal_size p)

(* ------------------------------------------------------------------ *)
(* Codec: sync messages *)

let sync_round_trip msg =
  let n = 8 in
  let wire = Codec.encode ~n msg in
  Alcotest.(check int) "wire size" (Msg.wire_size ~n msg) (String.length wire);
  Alcotest.(check bool) "round-trip" true (Codec.decode ~n wire = msg)

let test_codec_sync_request () = sync_round_trip (Msg.Sync_request { from_round = 5 })

let test_codec_sync_reply () =
  sync_round_trip (Msg.Sync_reply { floor = 3; highest = 17 });
  (* highest = -1 (empty store) is biased +1 on the wire: u32 stays valid *)
  sync_round_trip (Msg.Sync_reply { floor = 0; highest = -1 })

(* ------------------------------------------------------------------ *)
(* Trace: recovery events *)

let test_trace_recovery_round_trip () =
  let r = { Trace.ts = 123; ev = Trace.Recovery { node = 3; stage = "caught_up"; round = 42 } } in
  Alcotest.(check bool) "jsonl round-trip" true
    (Trace.of_jsonl_line (Trace.jsonl_of_record r) = Some r)

(* ------------------------------------------------------------------ *)
(* Client: id packing + eviction *)

let test_client_id_guard () =
  let engine = Engine.create () in
  let config = Config.make ~n:4 Config.Full in
  Alcotest.check_raises "negative id"
    (Invalid_argument "Client.create: id out of range (22 bits)") (fun () ->
      ignore (Client.create ~engine ~config ~id:(-1) ()));
  Alcotest.check_raises "id beyond 22 bits"
    (Invalid_argument "Client.create: id out of range (22 bits)") (fun () ->
      ignore (Client.create ~engine ~config ~id:(1 lsl 22) ()));
  (* the largest id still packs without touching the sign bit *)
  let c = Client.create ~engine ~config ~id:((1 lsl 22) - 1) () in
  let t = Client.make_txn c () in
  Alcotest.(check bool) "packed id positive" true (t.Transaction.id > 0)

let test_client_eviction () =
  let engine = Engine.create () in
  let config = Config.make ~n:10 (Config.Single_clan [| 0; 2; 4; 6; 8 |]) in
  let c = Client.create ~engine ~config ~id:1 () in
  let txn = Client.make_txn c () in
  Client.track c txn ~clan:0;
  (* re-tracking the same transaction must not double-count *)
  Client.track c txn ~clan:0;
  Alcotest.(check int) "pending counts distinct txns" 1 (Client.pending c);
  let digest = Digest32.hash_string "x" in
  Client.deliver_response c ~executor:0 txn digest;
  Client.deliver_response c ~executor:2 txn digest;
  Client.deliver_response c ~executor:4 txn digest;
  Alcotest.(check int) "completed" 1 (Client.completed c);
  Alcotest.(check int) "evicted from pending" 0 (Client.pending c);
  (* stray late responses to the evicted entry are no-ops *)
  Client.deliver_response c ~executor:6 txn digest;
  Alcotest.(check int) "still one completion" 1 (Client.completed c);
  Alcotest.(check int) "still no pending" 0 (Client.pending c)

(* ------------------------------------------------------------------ *)
(* Mempool: FIFO across chunked takes *)

let test_mempool_fifo_chunked () =
  let m = Mempool.create () in
  for i = 1 to 100 do
    ignore (Mempool.submit m (Transaction.make ~id:i ~client:0 ~created_at:0 ()))
  done;
  let out = ref [] in
  let rec drain () =
    match Mempool.take m ~max:7 with
    | [||] -> ()
    | batch ->
        Array.iter (fun (t : Transaction.t) -> out := t.id :: !out) batch;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "global fifo order" (List.init 100 (fun i -> i + 1))
    (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Store: GC-horizon boundary *)

let mk_vertex ~round ~source ~strong =
  Vertex.make ~round ~source ~block_digest:Digest32.zero
    ~strong_edges:(Array.of_list (List.map Vertex.ref_of strong))
    ~weak_edges:[||] ()

let test_store_horizon_boundary () =
  let s = Store.create ~n:4 in
  let r0 = List.init 4 (fun i -> mk_vertex ~round:0 ~source:i ~strong:[]) in
  List.iter (Store.add s) r0;
  let r1 = List.init 4 (fun i -> mk_vertex ~round:1 ~source:i ~strong:r0) in
  List.iter (Store.add s) r1;
  Store.prune_below s ~round:1;
  Alcotest.(check int) "floor" 1 (Store.floor s);
  Alcotest.(check bool) "round 0 gone" false (Store.mem s ~round:0 ~source:0);
  Alcotest.(check bool) "round 1 kept (boundary is inclusive)" true
    (Store.mem s ~round:1 ~source:0);
  (* parents below the horizon are never reported missing: a vertex whose
     parents were GC'd must remain insertable after a snapshot join *)
  let v2 = mk_vertex ~round:2 ~source:0 ~strong:r1 in
  Alcotest.(check int) "in-store parents resolve" 0
    (List.length (Store.missing_parents s v2));
  Store.prune_below s ~round:2;
  Alcotest.(check int) "pruned parents not demanded" 0
    (List.length (Store.missing_parents s v2));
  Store.add s v2;
  Alcotest.(check bool) "vertex above horizon inserts" true
    (Store.mem s ~round:2 ~source:0);
  (* pruning is monotone: asking to prune below the current floor is a no-op *)
  Store.prune_below s ~round:1;
  Alcotest.(check int) "floor monotone" 2 (Store.floor s)

(* ------------------------------------------------------------------ *)
(* Rbc: late joiner re-proves a finished instance *)

let run_late_joiner protocol =
  let n = 4 in
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~one_way_ms:5.0 in
  let net =
    Net.create ~engine ~topology ~config:{ Net.default_config with jitter = 0.0 }
      ~size:(Rbc.msg_size ~n) ~rng:(Rng.create 9L) ()
  in
  let keychain = Keychain.create ~seed:5L ~n in
  let delivered = Array.make n false in
  let mk me =
    Rbc.create ~me ~n ~protocol ~engine ~net ~keychain
      ~on_deliver:(fun ~sender:_ ~round:_ _ -> delivered.(me) <- true)
      ()
  in
  (* node 3 is down while the instance completes among 0..2 *)
  Net.set_handler net 3 (fun ~src:_ _ -> ());
  let n0 = mk 0 in
  let _ = mk 1 and _ = mk 2 in
  Rbc.broadcast n0 ~round:1 "payload";
  Engine.run engine;
  Alcotest.(check bool) "live peers delivered" true
    (delivered.(0) && delivered.(1) && delivered.(2));
  Alcotest.(check bool) "joiner missed the instance" false delivered.(3);
  (* the node comes back with no protocol state and asks peers to re-prove *)
  let n3 = mk 3 in
  Rbc.request_sync n3 ~sender:0 ~round:1;
  Engine.run engine;
  Alcotest.(check bool) "joiner delivered after sync" true delivered.(3);
  match Rbc.delivered n3 ~sender:0 ~round:1 with
  | Some (Rbc.Value v) -> Alcotest.(check string) "full value recovered" "payload" v
  | _ -> Alcotest.fail "expected a full-value delivery"

let test_rbc_sync_bracha () = run_late_joiner Rbc.Bracha
let test_rbc_sync_signed () = run_late_joiner Rbc.Signed_two_round

(* ------------------------------------------------------------------ *)
(* Runner: end-to-end crash–recovery *)

let recovery_spec =
  {
    Runner.default_spec with
    n = 16;
    protocol = Runner.Single_clan { nc = 11 };
    txns_per_proposal = 100;
    txn_scale = 10;
    topology = `Uniform 10.0;
    duration = Time.s 12.;
    warmup = Time.s 2.;
    restarts = [ { Faults.node = 3; crash_at = Time.s 4.; recover_at = Time.s 8. } ];
  }

let test_recovery_flagship () =
  let obs = Obs.metrics_only () in
  let r = Runner.run { recovery_spec with obs = Some obs } in
  Alcotest.(check bool) "agreement" true r.agreement;
  (match r.post_recovery_commits with
  | [ (3, c) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "recovered replica commits again (%d)" c)
        true (c > 0)
  | _ -> Alcotest.fail "expected exactly one restart entry");
  let fetched =
    Metrics.fold obs.Obs.metrics ~init:0 ~f:(fun acc ~name ~labels:_ v ->
        match (name, v) with
        | "recovery_rounds_fetched", Metrics.Counter_v c -> acc + c
        | _ -> acc)
  in
  Alcotest.(check bool)
    (Printf.sprintf "state sync fetched rounds (%d)" fetched)
    true (fetched > 0)

let test_recovery_deterministic () =
  let a = Runner.run recovery_spec and b = Runner.run recovery_spec in
  Alcotest.(check int) "same fingerprint" a.commit_fingerprint b.commit_fingerprint;
  Alcotest.(check int) "same committed count" a.committed_txns b.committed_txns;
  Alcotest.(check (list (pair int int)))
    "same post-recovery progress" a.post_recovery_commits b.post_recovery_commits

let test_recovery_prefix_vs_benign () =
  (* persistence on in both runs, so the two simulations are event-identical
     until the crash fires: every commit made before [crash_at] must land in
     both chains, i.e. the chained hashes share a non-trivial prefix. *)
  let benign = Runner.run { recovery_spec with restarts = []; persist = true } in
  let crashed = Runner.run recovery_spec in
  let a = benign.commit_chain and b = crashed.commit_chain in
  let k = min (Array.length a) (Array.length b) in
  let common = ref 0 in
  (try
     for i = 0 to k - 1 do
       if a.(i) = b.(i) then incr common else raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool)
    (Printf.sprintf "common commit prefix (%d of %d/%d)" !common (Array.length a)
       (Array.length b))
    true
    (!common > 0)

let test_recovery_snapshot_join () =
  (* A tight GC horizon and a long outage: WAL replay alone cannot reconnect
     to the live DAG, so the replica adopts a peer floor (snapshot join) and
     still makes post-recovery progress. *)
  let obs = Obs.create () in
  let spec =
    {
      recovery_spec with
      n = 10;
      protocol = Runner.Single_clan { nc = 5 };
      params = { Sailfish.default_params with gc_depth = 8 };
      restarts = [ { Faults.node = 3; crash_at = Time.s 2.; recover_at = Time.s 8. } ];
      obs = Some obs;
    }
  in
  let r = Runner.run spec in
  Alcotest.(check bool) "agreement among included replicas" true r.agreement;
  let saw_snapshot = ref false in
  Trace.iter obs.Obs.trace (fun { Trace.ev; _ } ->
      match ev with
      | Trace.Recovery { stage = "snapshot_join"; node = 3; _ } -> saw_snapshot := true
      | _ -> ());
  Alcotest.(check bool) "snapshot-joined past the GC horizon" true !saw_snapshot;
  match r.post_recovery_commits with
  | [ (3, c) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "post-recovery progress (%d)" c)
        true (c > 0)
  | _ -> Alcotest.fail "expected exactly one restart entry"

let test_recovery_sparse () =
  (* Crash-recovery over sparse edges: the recovering replica must rebuild a
     DAG whose vertices carry only O(k) parents, so reconnection goes through
     the transitive-coverage rule rather than a dense 2f+1 parent set. *)
  let r =
    Runner.run
      {
        recovery_spec with
        n = 10;
        protocol = Runner.Sparse { k = 3 };
        restarts =
          [ { Faults.node = 3; crash_at = Time.s 4.; recover_at = Time.s 8. } ];
      }
  in
  Alcotest.(check bool) "agreement" true r.agreement;
  match r.post_recovery_commits with
  | [ (3, c) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "recovered replica commits again (%d)" c)
        true (c > 0)
  | _ -> Alcotest.fail "expected exactly one restart entry"

let test_recovery_during_partition () =
  (* The replica recovers while still cut off from every peer: sync requests
     go nowhere until the partition heals at 6 s, exercising the capped
     retry backoff; it must still catch up and commit afterwards. *)
  let others = String.concat "," (List.filter_map
      (fun i -> if i = 3 then None else Some (string_of_int i))
      (List.init 10 Fun.id))
  in
  let plan =
    match
      Faults.plan_of_specs ~rules:[]
        ~partitions:[ Printf.sprintf "3|%s:until=6s" others ]
        ~mutes:[] ()
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let spec =
    {
      recovery_spec with
      n = 10;
      protocol = Runner.Single_clan { nc = 5 };
      fault_plan = plan;
      restarts = [ { Faults.node = 3; crash_at = Time.s 2.; recover_at = Time.s 4. } ];
    }
  in
  let r = Runner.run spec in
  Alcotest.(check bool) "agreement" true r.agreement;
  match r.post_recovery_commits with
  | [ (3, c) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "commits after the partition heals (%d)" c)
        true (c > 0)
  | _ -> Alcotest.fail "expected exactly one restart entry"

(* ------------------------------------------------------------------ *)
(* Faults: restart DSL *)

let test_restart_dsl () =
  (match Faults.restart_of_string "3@4s:8s" with
  | Ok r ->
      Alcotest.(check int) "node" 3 r.Faults.node;
      Alcotest.(check int) "crash" (Time.s 4.) r.Faults.crash_at;
      Alcotest.(check int) "recover" (Time.s 8.) r.Faults.recover_at
  | Error e -> Alcotest.fail e);
  let bad s =
    match Faults.restart_of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
    | Error _ -> ()
  in
  bad "3@8s:4s" (* recovery before crash *);
  bad "-1@4s:8s";
  bad "3@4s" (* missing recovery time *);
  bad "nonsense"

let suites =
  [
    ( "recovery.wal",
      [
        Alcotest.test_case "round trip" `Quick test_wal_round_trip;
        Alcotest.test_case "dedup" `Quick test_wal_dedup;
        Alcotest.test_case "crash drops pending" `Quick test_wal_crash_drops_pending;
      ] );
    ( "recovery.codec",
      [
        Alcotest.test_case "sync_request" `Quick test_codec_sync_request;
        Alcotest.test_case "sync_reply" `Quick test_codec_sync_reply;
        Alcotest.test_case "trace event" `Quick test_trace_recovery_round_trip;
      ] );
    ( "recovery.satellites",
      [
        Alcotest.test_case "client id guard" `Quick test_client_id_guard;
        Alcotest.test_case "client eviction" `Quick test_client_eviction;
        Alcotest.test_case "mempool fifo chunked" `Quick test_mempool_fifo_chunked;
        Alcotest.test_case "store horizon boundary" `Quick test_store_horizon_boundary;
        Alcotest.test_case "restart DSL" `Quick test_restart_dsl;
      ] );
    ( "recovery.rbc",
      [
        Alcotest.test_case "late joiner (bracha)" `Quick test_rbc_sync_bracha;
        Alcotest.test_case "late joiner (signed)" `Quick test_rbc_sync_signed;
      ] );
    ( "recovery.runner",
      [
        Alcotest.test_case "crash and recover" `Slow test_recovery_flagship;
        Alcotest.test_case "deterministic" `Slow test_recovery_deterministic;
        Alcotest.test_case "prefix vs benign run" `Slow test_recovery_prefix_vs_benign;
        Alcotest.test_case "snapshot join past GC" `Slow test_recovery_snapshot_join;
        Alcotest.test_case "restart during partition" `Slow test_recovery_during_partition;
        Alcotest.test_case "sparse crash and recover" `Slow test_recovery_sparse;
      ] );
  ]
