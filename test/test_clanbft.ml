(* Test entry point: every module contributes alcotest suites. *)

let () =
  Alcotest.run "clanbft"
    (Test_util.suites @ Test_pool.suites @ Test_bigint.suites @ Test_crypto.suites
   @ Test_sim.suites @ Test_committee.suites @ Test_types.suites
   @ Test_rbc.suites @ Test_faults.suites @ Test_strategy.suites
   @ Test_dag.suites
   @ Test_consensus.suites @ Test_poa.suites @ Test_smr.suites
   @ Test_obs.suites @ Test_prof.suites @ Test_analyze.suites
   @ Test_recovery.suites
   @ Test_check.suites)
