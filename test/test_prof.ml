open Clanbft
module Stats = Util.Stats

(* ------------------------------------------------------------------ *)
(* Prof: nesting, attribution, determinism. All profiler state is global,
   so every test starts from set_enabled + reset and ends disabled. *)

let with_prof f =
  Prof.set_enabled true;
  Prof.reset ();
  Fun.protect ~finally:(fun () -> Prof.set_enabled false) f

let row name =
  match List.find_opt (fun r -> r.Prof.name = name) (Prof.report ()) with
  | Some r -> r
  | None -> Alcotest.failf "no report row for section %s" name

let sec_outer = Prof.section "test.outer"
let sec_inner = Prof.section "test.inner"
let sec_alloc = Prof.section "test.alloc"
let sec_alloc2 = Prof.section "test.alloc2"

(* A little deterministic work so spans have non-trivial windows. *)
let churn n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (i * i)
  done;
  ignore (Sys.opaque_identity !acc)

let test_nesting () =
  with_prof (fun () ->
      Prof.enter sec_outer;
      churn 1000;
      Prof.enter sec_inner;
      churn 1000;
      Prof.leave sec_inner;
      Prof.enter sec_inner;
      Prof.leave sec_inner;
      Prof.leave sec_outer;
      Prof.enter sec_outer;
      Prof.leave sec_outer;
      let o = row "test.outer" and i = row "test.inner" in
      Alcotest.(check int) "outer calls" 2 o.Prof.calls;
      Alcotest.(check int) "inner calls" 2 i.Prof.calls;
      (* Exclusive + children's inclusive = inclusive, exactly: self is
         computed per span as incl minus the sum of child incl, and both
         inner spans sit inside the first outer span. *)
      Alcotest.(check int) "time attribution closes" o.Prof.incl_ns
        (o.Prof.self_ns + i.Prof.incl_ns);
      Alcotest.(check int) "words attribution closes" o.Prof.incl_minor_words
        (o.Prof.self_minor_words + i.Prof.incl_minor_words);
      Alcotest.(check bool) "incl covers self" true
        (o.Prof.incl_ns >= o.Prof.self_ns))

let test_recursion_folds () =
  with_prof (fun () ->
      Prof.enter sec_outer;
      Prof.enter sec_outer;
      Prof.leave sec_outer;
      Prof.leave sec_outer;
      let o = row "test.outer" in
      Alcotest.(check int) "both spans counted" 2 o.Prof.calls;
      (* Inclusive folds recursive re-entries into the outermost span, so
         self (summed over both spans) never exceeds it. *)
      Alcotest.(check bool) "no double-counted inclusive" true
        (o.Prof.incl_ns >= o.Prof.self_ns))

let test_alloc_attribution () =
  with_prof (fun () ->
      (* OCaml 5's minor-allocation counter advances at minor collections,
         not per allocation, so each span forces one before closing — its
         window then contains its own allocations plus a small GC-stub
         residue. A 99-element float array is 100 words, so the
         ten-extra-arrays differential between the two spans isolates
         1000 words with the residue cancelled. *)
      let alloc_k k =
        for _ = 1 to k do
          ignore (Sys.opaque_identity (Array.make 99 0.))
        done
      in
      Gc.minor ();
      Prof.enter sec_alloc;
      alloc_k 1;
      Gc.minor ();
      Prof.leave sec_alloc;
      Prof.enter sec_alloc2;
      alloc_k 11;
      Gc.minor ();
      Prof.leave sec_alloc2;
      let a = row "test.alloc" and b = row "test.alloc2" in
      Alcotest.(check int) "one call" 1 a.Prof.calls;
      Alcotest.(check bool) "span captures its own allocation" true
        (a.Prof.self_minor_words >= 100 && a.Prof.self_minor_words <= 500);
      let diff = b.Prof.self_minor_words - a.Prof.self_minor_words in
      if abs (diff - 1000) > 40 then
        Alcotest.failf
          "differential attribution off: %d words (expect ~1000)" diff)

let test_determinism () =
  let workload () =
    (* Drain the young heap so both repetitions start from the same GC
       phase — the contract is same-seed cross-run determinism, which a
       same-process repetition only reproduces from a clean slate. *)
    Gc.minor ();
    Prof.reset ();
    for _ = 1 to 50 do
      Prof.enter sec_outer;
      ignore (Sys.opaque_identity (Array.make 15 0));
      Prof.span sec_inner (fun () ->
          ignore (Sys.opaque_identity (String.make 64 'x')));
      Prof.leave sec_outer
    done;
    let o = row "test.outer" and i = row "test.inner" in
    ( o.Prof.calls,
      o.Prof.self_minor_words,
      o.Prof.incl_minor_words,
      i.Prof.calls,
      i.Prof.self_minor_words )
  in
  with_prof (fun () ->
      let a = workload () in
      let b = workload () in
      Alcotest.(check bool) "counts and words replay byte-identically" true
        (a = b))

let test_span_exception_safe () =
  with_prof (fun () ->
      (try Prof.span sec_outer (fun () -> failwith "boom")
       with Failure _ -> ());
      (* The span closed despite the raise: the stack is balanced, so a
         fresh top-level span works and the report holds both calls. *)
      Prof.span sec_outer (fun () -> ());
      Alcotest.(check int) "both spans recorded" 2 (row "test.outer").Prof.calls)

let test_disabled_is_inert () =
  Prof.set_enabled false;
  Prof.reset ();
  Prof.enter sec_outer;
  Prof.leave sec_outer;
  Prof.span sec_inner (fun () -> ());
  Alcotest.(check int) "disabled probes record nothing" 0
    (List.length (Prof.report ()))

let test_folded_output () =
  with_prof (fun () ->
      Prof.enter sec_outer;
      Prof.span sec_inner (fun () -> churn 100);
      Prof.leave sec_outer;
      let folded = Prof.folded () in
      Alcotest.(check bool) "has nested path" true
        (String.split_on_char '\n' folded
        |> List.exists (fun l ->
               String.length l > 0
               && String.starts_with ~prefix:"test.outer;test.inner " l));
      (* Every non-empty line is "path <self_us>". *)
      String.split_on_char '\n' folded
      |> List.iter (fun l ->
             if l <> "" then
               match String.split_on_char ' ' l with
               | [ path; us ] ->
                   Alcotest.(check bool) "path non-empty" true (path <> "");
                   Alcotest.(check bool) "count parses" true
                     (int_of_string_opt us <> None)
               | _ -> Alcotest.failf "malformed folded line %S" l))

(* ------------------------------------------------------------------ *)
(* Stats.Histogram boundary behaviour *)

let test_histogram_boundaries () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 2.0; 4.0 |] in
  (* A sample exactly on an upper edge belongs to that edge's bucket. *)
  Stats.Histogram.observe h 1.0;
  Stats.Histogram.observe h 2.0;
  Stats.Histogram.observe h 2.5;
  Stats.Histogram.observe h 4.0;
  Stats.Histogram.observe h 4.0001;
  let pairs = Stats.Histogram.buckets h in
  Alcotest.(check (array (pair (float 0.0) int)))
    "edge samples land in their bucket"
    [| (1.0, 1); (2.0, 1); (4.0, 2); (Float.infinity, 1) |]
    pairs;
  let cum = Stats.Histogram.cumulative h in
  Alcotest.(check (array (pair (float 0.0) int)))
    "cumulative running totals"
    [| (1.0, 1); (2.0, 2); (4.0, 4); (Float.infinity, 5) |]
    cum;
  Alcotest.(check int) "count" 5 (Stats.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 13.5001 (Stats.Histogram.sum h);
  (* Quantiles are bucket upper bounds; the overflow bucket reports inf. *)
  Alcotest.(check (float 0.0)) "median upper bound" 2.0
    (Stats.Histogram.quantile h 0.4);
  Alcotest.(check (float 0.0)) "q1.0 hits overflow" Float.infinity
    (Stats.Histogram.quantile h 1.0)

let test_histogram_empty_and_degenerate () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 2.0 |] in
  Alcotest.(check int) "empty count" 0 (Stats.Histogram.count h);
  Alcotest.(check bool) "empty mean is nan" true
    (Float.is_nan (Stats.Histogram.mean h));
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Stats.Histogram.quantile h 0.5));
  (* No explicit edges: everything lands in the implicit overflow. *)
  let all = Stats.Histogram.create ~buckets:[||] in
  Stats.Histogram.observe all 42.0;
  Alcotest.(check (array (pair (float 0.0) int)))
    "overflow only"
    [| (Float.infinity, 1) |]
    (Stats.Histogram.buckets all);
  Alcotest.check_raises "edges must strictly increase"
    (Invalid_argument "Stats.Histogram.create: edges must be strictly increasing")
    (fun () -> ignore (Stats.Histogram.create ~buckets:[| 1.0; 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Metrics histogram JSON export: Prometheus count/sum/+inf round-trip *)

let test_metrics_histogram_json () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram reg ~buckets:[| 1.0; 2.0 |] "latency_ms" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 3.0 ];
  let json = Metrics.to_json reg in
  let has needle =
    let nl = String.length needle and jl = String.length json in
    let rec scan i = i + nl <= jl && (String.sub json i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "count exported" true (has "\"count\":3,");
  Alcotest.(check bool) "sum exported" true (has "\"sum\":4.5,");
  Alcotest.(check bool) "non-cumulative buckets" true
    (has "\"buckets\":[{\"le\":1,\"count\":2},{\"le\":2,\"count\":0},{\"le\":\"+inf\",\"count\":1}]");
  (* The cumulative array's +inf count equals the total count, so external
     tools can recompute quantiles from the export alone. *)
  Alcotest.(check bool) "cumulative +inf equals count" true
    (has "\"cumulative\":[{\"le\":1,\"count\":2},{\"le\":2,\"count\":2},{\"le\":\"+inf\",\"count\":3}]")

let suites =
  [
    ( "obs.prof",
      [
        Alcotest.test_case "nesting attribution" `Quick test_nesting;
        Alcotest.test_case "recursion folds inclusive" `Quick test_recursion_folds;
        Alcotest.test_case "allocation attribution" `Quick test_alloc_attribution;
        Alcotest.test_case "deterministic counts/words" `Quick test_determinism;
        Alcotest.test_case "span is exception-safe" `Quick test_span_exception_safe;
        Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
        Alcotest.test_case "folded stacks" `Quick test_folded_output;
      ] );
    ( "stats.histogram",
      [
        Alcotest.test_case "bucket boundaries" `Quick test_histogram_boundaries;
        Alcotest.test_case "empty and degenerate" `Quick test_histogram_empty_and_degenerate;
        Alcotest.test_case "metrics json round-trip" `Quick test_metrics_histogram_json;
      ] );
  ]
