open Clanbft
open Clanbft.Sim

(* ------------------------------------------------------------------ *)
(* Strategic adversary engine (lib/faults/strategy.ml): DSL parsing,
   per-attack safety/liveness, trace attribution, determinism. *)

let spec_t =
  Alcotest.testable
    (fun ppf (s : Strategy.spec) ->
      Format.pp_print_string ppf (Strategy.to_string s))
    ( = )

let parse s = Strategy.of_string s

let test_parser () =
  Alcotest.(check (result spec_t string))
    "equivocate"
    (Ok { Strategy.node = 3; kind = Strategy.Equivocate })
    (parse "3@equivocate");
  Alcotest.(check (result spec_t string))
    "censor" (Ok { Strategy.node = 1; kind = Strategy.Censor 5 })
    (parse "1@censor:5");
  Alcotest.(check (result spec_t string))
    "grief default"
    (Ok { Strategy.node = 2; kind = Strategy.Grief 0.8 })
    (parse "2@grief");
  Alcotest.(check (result spec_t string))
    "grief frac"
    (Ok { Strategy.node = 2; kind = Strategy.Grief 0.5 })
    (parse "2@grief:0.5");
  Alcotest.(check (result spec_t string))
    "storm default"
    (Ok { Strategy.node = 0; kind = Strategy.Sync_storm 32 })
    (parse "0@storm");
  Alcotest.(check (result spec_t string))
    "storm alias"
    (Ok { Strategy.node = 0; kind = Strategy.Sync_storm 8 })
    (parse "0@sync-storm:8");
  Alcotest.(check (result spec_t string))
    "reorder time grammar"
    (Ok { Strategy.node = 4; kind = Strategy.Reorder (Time.ms 3.) })
    (parse "4@reorder:3ms");
  (* Round-trips: to_string renders back into parseable DSL. *)
  List.iter
    (fun s ->
      match parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok spec ->
          Alcotest.(check (result spec_t string))
            (Printf.sprintf "round-trip %s" s) (Ok spec)
            (parse (Strategy.to_string spec)))
    [ "3@equivocate"; "1@censor:5"; "2@grief:0.75"; "0@storm:16"; "4@reorder:500us" ];
  (* Rejections. *)
  List.iter
    (fun s ->
      match parse s with
      | Ok _ -> Alcotest.failf "parse %S should fail" s
      | Error _ -> ())
    [
      "equivocate"; "x@equivocate"; "-1@equivocate"; "3@equivocate:1";
      "3@censor"; "3@censor:x"; "3@grief:0"; "3@grief:1.0"; "3@storm:0";
      "3@reorder:0us"; "3@reorder:fast"; "3@bribe";
    ];
  match Strategy.of_specs [ "3@equivocate"; "oops" ] with
  | Ok _ -> Alcotest.fail "of_specs should report the bad spec"
  | Error e ->
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error names the offender" true (contains e "oops")

(* ------------------------------------------------------------------ *)
(* System runs: each strategy, installed through the Runner, must leave
   safety intact (honest agreement), keep the chain live, and stamp its
   fires into the trace under rule -2. *)

let base_spec =
  {
    Runner.default_spec with
    n = 8;
    protocol = Runner.Single_clan { nc = 5 };
    txns_per_proposal = 50;
    duration = Time.s 6.;
    warmup = Time.s 1.;
    seed = 11L;
  }

let traced_run spec =
  let obs = Obs.create () in
  let r = Runner.run { spec with Runner.obs = Some obs } in
  (r, Trace.records obs.Obs.trace)

let strategy_fires action records =
  List.filter
    (fun { Trace.ev; _ } ->
      match ev with
      | Trace.Fault_fire { rule = -2; action = a; _ } -> a = action
      | _ -> false)
    records

let attack_run ?(spec = base_spec) adversaries =
  match Strategy.of_specs adversaries with
  | Error e -> Alcotest.failf "bad adversary spec: %s" e
  | Ok advs -> traced_run { spec with Runner.adversaries = advs }

let check_safe_and_live ~name (r : Runner.result) =
  Alcotest.(check bool) (name ^ ": honest agreement") true r.Runner.agreement;
  Alcotest.(check bool) (name ^ ": chain is live") true
    (r.Runner.committed_txns > 0)

let test_equivocate () =
  let r, records = attack_run [ "3@equivocate" ] in
  check_safe_and_live ~name:"equivocate" r;
  let fires = strategy_fires "equivocate" records in
  Alcotest.(check bool) "decoys handed out" true (List.length fires > 10);
  (* The split stays inside the payload clan: every decoy goes to a clan
     member, and per round at most [min f (nc - threshold)] = 2 decoys fly,
     so the real digest always clears both echo thresholds. *)
  let per_dst = Hashtbl.create 8 in
  List.iter
    (fun { Trace.ev; _ } ->
      match ev with
      | Trace.Fault_fire { dst; _ } ->
          Hashtbl.replace per_dst dst
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_dst dst))
      | _ -> ())
    fires;
  Hashtbl.iter
    (fun dst _ ->
      Alcotest.(check bool)
        (Printf.sprintf "decoy recipient %d is a clan member" dst)
        true (dst < 5))
    per_dst;
  (* Decoy holders detect the digest mismatch and fall back to the pull
     path — the attack's whole point. *)
  let rep = Analyze.analyze records in
  Alcotest.(check bool) "equivocation forced pulls" true
    (rep.Analyze.pull_retries > 0)

let test_censor () =
  let r, records = attack_run [ "3@censor:0" ] in
  check_safe_and_live ~name:"censor" r;
  Alcotest.(check bool) "censor fired" true
    (strategy_fires "censor" records <> []);
  (* The victim's vertices still commit — through other proposers' edges —
     so censorship degrades, never excludes. *)
  let victim_commits =
    List.exists
      (fun { Trace.ev; _ } ->
        match ev with
        | Trace.Vertex_commit { source = 0; _ } -> true
        | _ -> false)
      records
  in
  Alcotest.(check bool) "victim still commits" true victim_commits

let test_grief () =
  let r, records = attack_run [ "3@grief:0.8" ] in
  check_safe_and_live ~name:"grief" r;
  Alcotest.(check bool) "grief fired" true
    (strategy_fires "grief" records <> []);
  (* Griefed rounds ride inside the timeout (1.5 s default, 1.2 s hold):
     the leader is slow, never skipped, so every round the griefer leads
     stalls the tribe — and the detector must say exactly that. *)
  let rep = Analyze.analyze records in
  Alcotest.(check bool) "stalls detected" true (rep.Analyze.stalls <> []);
  List.iter
    (fun (st : Analyze.stall) ->
      Alcotest.(check string)
        (Printf.sprintf "window %d..%d blamed on the griefer" st.Analyze.st_from
           st.Analyze.st_until)
        "grief_leader(3)" st.Analyze.st_cause)
    rep.Analyze.stalls

let test_sync_storm () =
  (* The storm needs a victim announcing recovery: crash-recover node 5,
     let node 2 amplify every sync request it observes. *)
  let spec =
    {
      base_spec with
      Runner.duration = Time.s 8.;
      persist = true;
      restarts =
        [ { Faults.node = 5; crash_at = Time.s 2.; recover_at = Time.s 4. } ];
    }
  in
  let r, records = attack_run ~spec [ "2@storm:16" ] in
  check_safe_and_live ~name:"sync_storm" r;
  Alcotest.(check bool) "storm fired" true
    (strategy_fires "sync_storm" records <> []);
  (* Amplification hurts, but the recovering replica still gets back on its
     feet and commits new vertices. *)
  (match List.assoc_opt 5 r.Runner.post_recovery_commits with
  | Some c -> Alcotest.(check bool) "victim recovered anyway" true (c > 0)
  | None -> Alcotest.fail "restart accounting missing")

let test_reorder () =
  let r, records = attack_run [ "3@reorder:2ms" ] in
  check_safe_and_live ~name:"reorder" r;
  Alcotest.(check bool) "reorder fired" true
    (List.length (strategy_fires "reorder" records) > 100)

let test_determinism () =
  (* Attack runs replay bit-identically: strategies draw no randomness. *)
  let r1, records1 = attack_run [ "3@equivocate"; "6@reorder:1ms" ] in
  let r2, records2 = attack_run [ "3@equivocate"; "6@reorder:1ms" ] in
  Alcotest.(check int) "same fingerprint" r1.Runner.commit_fingerprint
    r2.Runner.commit_fingerprint;
  Alcotest.(check int) "same trace length" (List.length records1)
    (List.length records2);
  Alcotest.(check bool) "same trace" true (records1 = records2)

let test_install_validation () =
  Alcotest.check_raises "bad node id"
    (Invalid_argument "Strategy: bad node id")
    (fun () ->
      ignore
        (Runner.run
           {
             base_spec with
             Runner.adversaries =
               [ { Strategy.node = 8; kind = Strategy.Equivocate } ];
           }));
  Alcotest.check_raises "censor self"
    (Invalid_argument "Strategy: bad censor victim")
    (fun () ->
      ignore
        (Runner.run
           {
             base_spec with
             Runner.adversaries =
               [ { Strategy.node = 3; kind = Strategy.Censor 3 } ];
           }))

(* ------------------------------------------------------------------ *)
(* Satellite 1: the vertex/block fetch loops back off exponentially.
   Equivocation seeds decoy holders that must pull the real vertex; a
   fault rule eats every reply, so the loops spin for the whole run. With
   the 16 x sync_retry ceiling each stuck slot's retry count stays small;
   the old constant-interval loop fired an order of magnitude more. *)

let test_pull_retries_bounded () =
  let spec =
    {
      base_spec with
      Runner.duration = Time.s 8.;
      fault_plan =
        Faults.plan
          ~rules:
            [
              Faults.rule
                ~kinds:[ "vertex_reply"; "block_reply" ]
                (Faults.Drop 1.0);
            ]
          ();
    }
  in
  let _, records = attack_run ~spec [ "3@equivocate" ] in
  let rep = Analyze.analyze records in
  Alcotest.(check bool) "loops actually engaged" true
    (rep.Analyze.pull_retries > 0);
  (* Budget: each stuck slot sweeps its candidate ring with inter-sweep
     delays 150 ms x (1,2,4,8,16,16,...), so a multi-second loop completes
     ~5 sweeps where the old constant-spacing loop completed 20+. This
     seed measures 743 retries with backoff; the constant-interval loop
     sat at roughly 4-5x that, so 2000 cleanly separates the two. *)
  Alcotest.(check bool)
    (Printf.sprintf "retries bounded by backoff (got %d)"
       rep.Analyze.pull_retries)
    true
    (rep.Analyze.pull_retries < 2_000)

let suites =
  [
    ( "strategy",
      [
        Alcotest.test_case "DSL parser" `Quick test_parser;
        Alcotest.test_case "equivocate: clan split, safe" `Quick test_equivocate;
        Alcotest.test_case "censor: victim delayed, not excluded" `Quick
          test_censor;
        Alcotest.test_case "grief: stalls named grief_leader" `Quick test_grief;
        Alcotest.test_case "sync storm: victim recovers" `Quick test_sync_storm;
        Alcotest.test_case "reorder: safe under inversion" `Quick test_reorder;
        Alcotest.test_case "attack runs are deterministic" `Quick
          test_determinism;
        Alcotest.test_case "install validates ids" `Quick
          test_install_validation;
        Alcotest.test_case "pull retries bounded under reply loss" `Quick
          test_pull_retries_bounded;
      ] );
  ]
