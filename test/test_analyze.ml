open Clanbft
open Clanbft.Sim

(* ------------------------------------------------------------------ *)
(* Trace-analysis engine: critical-path attribution, stall detection. *)

let base_spec =
  {
    Runner.default_spec with
    n = 8;
    protocol = Runner.Single_clan { nc = 5 };
    txns_per_proposal = 50;
    duration = Time.s 6.;
    warmup = Time.s 1.;
    seed = 11L;
  }

(* Run [spec] with a buffered trace and return (result, records). *)
let traced_run spec =
  let obs = Obs.create () in
  let r = Runner.run { spec with Runner.obs = Some obs } in
  (r, Trace.records obs.Obs.trace)

let benign = lazy (traced_run base_spec)

(* The acceptance bar for attribution: clamped milestones telescope, so
   the five segments sum *exactly* to commit - origin on every path. *)
let test_segments_sum () =
  let r, records = Lazy.force benign in
  Alcotest.(check bool) "run committed" true (r.Runner.committed_txns > 0);
  let rep = Analyze.analyze records in
  Alcotest.(check bool) "paths found" true (rep.Analyze.paths <> []);
  List.iter
    (fun (p : Analyze.path) ->
      let sum = Array.fold_left ( + ) 0 p.Analyze.p_segments in
      Alcotest.(check int)
        (Printf.sprintf "segments sum, r%d/s%d@%d" p.Analyze.p_round
           p.Analyze.p_source p.Analyze.p_node)
        (p.Analyze.p_commit - p.Analyze.p_origin)
        sum;
      Alcotest.(check bool) "origin before commit" true
        (p.Analyze.p_origin <= p.Analyze.p_commit);
      Array.iter
        (fun s -> Alcotest.(check bool) "segment non-negative" true (s >= 0))
        p.Analyze.p_segments)
    rep.Analyze.paths;
  Alcotest.(check int) "e2e covers every path"
    (List.length rep.Analyze.paths)
    rep.Analyze.e2e.Analyze.count;
  (* Every commit carries real latency: the origin anchor is the sender's
     PROPOSE, strictly before any replica can commit the vertex. *)
  Alcotest.(check bool) "e2e positive" true (rep.Analyze.e2e.Analyze.p50_us > 0)

let test_benign_run_is_quiet () =
  let _, records = Lazy.force benign in
  let rep = Analyze.analyze records in
  Alcotest.(check int) "no stalls in a benign run" 0
    (List.length rep.Analyze.stalls);
  Alcotest.(check bool) "rounds observed" true
    (List.length rep.Analyze.rounds > 10);
  Alcotest.(check int) "no pull retries" 0 rep.Analyze.pull_retries;
  (* Uplink accounting covers every replica. *)
  Alcotest.(check int) "uplink per node" base_spec.Runner.n
    (List.length rep.Analyze.uplinks);
  List.iter
    (fun (u : Analyze.uplink_info) ->
      Alcotest.(check bool) "uplink carried traffic" true
        (u.Analyze.u_messages > 0 && u.Analyze.u_bytes > 0))
    rep.Analyze.uplinks

let test_deterministic_output () =
  (* Same seed, two independent traced runs: the rendered reports are
     byte-identical — the property ci.sh gates with cmp. *)
  let _, records1 = Lazy.force benign in
  let _, records2 = traced_run base_spec in
  let rep1 = Analyze.analyze records1 and rep2 = Analyze.analyze records2 in
  Alcotest.(check string) "json identical" (Analyze.to_json rep1)
    (Analyze.to_json rep2);
  Alcotest.(check string) "human identical" (Analyze.human rep1)
    (Analyze.human rep2)

let test_load_jsonl_roundtrip () =
  let _, records = Lazy.force benign in
  let tr = Trace.create () in
  List.iter (fun { Trace.ts; ev } -> Trace.emit tr ~ts ev) records;
  let path = Filename.temp_file "clanbft_analyze" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_jsonl tr path;
      let back = Analyze.load_jsonl path in
      Alcotest.(check int) "record count survives" (List.length records)
        (List.length back);
      Alcotest.(check bool) "records survive" true (back = records);
      (* And hence the analysis is the file-based one, byte for byte. *)
      Alcotest.(check string) "same report"
        (Analyze.to_json (Analyze.analyze records))
        (Analyze.to_json (Analyze.analyze back)))

(* ------------------------------------------------------------------ *)
(* Stall detection under injected faults (the faults DSL scenarios). *)

let test_muted_leader_stall () =
  (* Mute replica 3 from t=3s of an 8s run: every round it leads from
     then on blocks until the timeout path fires, and the detector must
     name it. *)
  let spec =
    {
      base_spec with
      Runner.duration = Time.s 8.;
      fault_plan =
        Faults.plan
          ~mutes:
            [ { Faults.node = 3; after_round = max_int; after_time = Time.s 3. } ]
          ();
    }
  in
  let _, records = traced_run spec in
  let rep = Analyze.analyze records in
  Alcotest.(check bool) "stall detected" true (rep.Analyze.stalls <> []);
  List.iter
    (fun (st : Analyze.stall) ->
      Alcotest.(check string) "blamed on the muted leader" "muted_leader(3)"
        st.Analyze.st_cause;
      Alcotest.(check bool) "window after the mute" true
        (st.Analyze.st_from >= Time.s 3.);
      Alcotest.(check bool) "gap is the window" true
        (st.Analyze.st_gap_us = st.Analyze.st_until - st.Analyze.st_from))
    rep.Analyze.stalls

let test_partition_stall () =
  (* Split the tribe 4|4 for the first 3 s: no echo quorum on either
     side, so no round advances until the heal — blamed on the
     partition, not on any leader. *)
  let spec =
    {
      base_spec with
      Runner.duration = Time.s 8.;
      fault_plan =
        Faults.plan
          ~partitions:
            [
              {
                Faults.groups = [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ];
                part_from = Time.zero;
                heal_at = Time.s 3.;
              };
            ]
          ();
    }
  in
  let _, records = traced_run spec in
  let rep = Analyze.analyze records in
  Alcotest.(check bool) "stall detected" true (rep.Analyze.stalls <> []);
  let causes =
    List.sort_uniq compare
      (List.map (fun st -> st.Analyze.st_cause) rep.Analyze.stalls)
  in
  Alcotest.(check (list string)) "blamed on the partition" [ "partition" ]
    causes;
  (* The stalled window is the partitioned prefix. *)
  List.iter
    (fun (st : Analyze.stall) ->
      Alcotest.(check bool) "window inside the split" true
        (st.Analyze.st_until <= Time.s 3. + Time.s 1.))
    rep.Analyze.stalls

let test_observed_pairs_beat_modular_guess () =
  (* Regression (PR 9): a recovery-induced commit stall with an unrelated
     mute in the window. The observed leader rotation is offset from
     [r mod n] (as happens whenever the trace under-infers n), so the old
     modular fallback — and the old habit of matching *every* candidate
     round, committed or not — both pin the stall on the muted replica.
     Rounds whose anchors demonstrably committed cannot be leader-blocked;
     the true cause is the state sync in flight. *)
  let ev ts e = { Trace.ts; ev = e } in
  let propose r ts =
    ev ts
      (Trace.Rbc_phase
         { node = (r + 2) mod 4; sender = (r + 2) mod 4; round = r;
           phase = Trace.Propose })
  in
  let anchor_commit r ts =
    (* Observed pair: round r's anchor, led by (r + 2) mod 4. *)
    ev ts
      (Trace.Vertex_commit
         { node = 0; round = r; source = (r + 2) mod 4; leader_round = r })
  in
  let records =
    List.concat
      [
        List.init 6 (fun r -> propose r (r * 100_000));
        [ propose 6 650_000 ];
        List.init 6 (fun r -> anchor_commit r ((r * 100_000) + 50_000));
        [
          (* Node 2 recovers across the whole quiet window... *)
          ev 560_000 (Trace.Recovery { node = 2; stage = "sync_start"; round = 0 });
          (* ...while node 3 — round 5's *observed* leader, and [7 mod 4] —
             goes mute without blocking anything. *)
          ev 600_000
            (Trace.Fault_fire
               { rule = -1; action = "mute"; kind = "val"; src = 3; dst = 0 });
          ev 1_600_000
            (Trace.Recovery { node = 2; stage = "caught_up"; round = 0 });
          (* The commit ending the stall: round 6, a non-anchor vertex. *)
          ev 1_650_000
            (Trace.Vertex_commit
               { node = 0; round = 6; source = 0; leader_round = 4 });
        ];
      ]
    |> List.sort (fun a b -> compare a.Trace.ts b.Trace.ts)
  in
  let rep = Analyze.analyze records in
  let commit_stall =
    List.find_opt
      (fun st -> st.Analyze.st_kind = `Commit && st.Analyze.st_from = 550_000)
      rep.Analyze.stalls
  in
  Alcotest.(check bool) "commit stall detected" true (commit_stall <> None);
  List.iter
    (fun (st : Analyze.stall) ->
      Alcotest.(check string)
        (Printf.sprintf "window %d..%d blamed on sync" st.Analyze.st_from
           st.Analyze.st_until)
        "state_sync" st.Analyze.st_cause)
    rep.Analyze.stalls

let test_crash_plus_mute_attribution () =
  (* System-level companion: replica 5 crash-recovers across 2s..4s while
     replica 3 is muted from 3s on. Every stall must land on one of the two
     real causes — never on "unknown", and never on the muted replica for a
     window that closed before the mute existed. *)
  let spec =
    {
      base_spec with
      Runner.duration = Time.s 8.;
      persist = true;
      restarts =
        [ { Faults.node = 5; crash_at = Time.s 2.; recover_at = Time.s 4. } ];
      fault_plan =
        Faults.plan
          ~mutes:
            [ { Faults.node = 3; after_round = max_int; after_time = Time.s 3. } ]
          ();
    }
  in
  let _, records = traced_run spec in
  let rep = Analyze.analyze records in
  Alcotest.(check bool) "stall detected" true (rep.Analyze.stalls <> []);
  List.iter
    (fun (st : Analyze.stall) ->
      let cause = st.Analyze.st_cause in
      Alcotest.(check bool)
        (Printf.sprintf "cause named (%s, window %d..%d)" cause
           st.Analyze.st_from st.Analyze.st_until)
        true
        (cause = "muted_leader(3)" || cause = "state_sync");
      if cause = "muted_leader(3)" then
        Alcotest.(check bool) "mute blamed only once it exists" true
          (st.Analyze.st_until >= Time.s 3.))
    rep.Analyze.stalls

let test_attack_cause_matrix () =
  (* The five strategy signatures (docs/ATTACKS.md): a stall whose window
     contains a rule -2 Fault_fire is named after the attack, never
     "unknown". One synthetic trace per strategy — identical except for
     the fire — with leader rotation r mod 4 and a quiet window after
     round 5 starts. Grief must additionally match a stalled round the
     griefer leads (round 5's extrapolated leader is 1). *)
  let ev ts e = { Trace.ts; ev = e } in
  let trace fire_src action =
    List.concat
      [
        List.init 6 (fun r ->
            ev (r * 100_000)
              (Trace.Rbc_phase
                 { node = r mod 4; sender = r mod 4; round = r;
                   phase = Trace.Propose }));
        List.init 5 (fun r ->
            ev ((r * 100_000) + 50_000)
              (Trace.Vertex_commit
                 { node = 0; round = r; source = r mod 4; leader_round = r }));
        [
          ev 700_000
            (Trace.Fault_fire
               { rule = -2; action; kind = "val"; src = fire_src; dst = 0 });
          ev 1_500_000
            (Trace.Vertex_commit
               { node = 0; round = 6; source = 0; leader_round = 4 });
        ];
      ]
    |> List.sort (fun a b -> compare a.Trace.ts b.Trace.ts)
  in
  List.iter
    (fun (src, action, expect) ->
      let rep = Analyze.analyze (trace src action) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: stall detected" action)
        true (rep.Analyze.stalls <> []);
      List.iter
        (fun (st : Analyze.stall) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: window %d..%d" action st.Analyze.st_from
               st.Analyze.st_until)
            expect st.Analyze.st_cause)
        rep.Analyze.stalls)
    [
      (1, "grief", "grief_leader(1)");
      (3, "censor", "censorship(3)");
      (3, "equivocate", "equivocation(3)");
      (3, "sync_storm", "sync_storm");
      (3, "reorder", "reorder(3)");
    ]

let test_dead_trace_is_one_big_stall () =
  (* Rounds start but nothing ever commits: flagged as a full-span
     commit stall even though there are too few gaps for a median. *)
  let records =
    [
      { Trace.ts = 0; ev = Trace.Rbc_phase { node = 0; sender = 0; round = 0; phase = Trace.Propose } };
      { Trace.ts = 100_000; ev = Trace.Rbc_phase { node = 1; sender = 1; round = 1; phase = Trace.Propose } };
      { Trace.ts = 900_000; ev = Trace.Msg_send { src = 0; dst = 1; kind = "val"; bytes = 10 } };
    ]
  in
  let rep = Analyze.analyze records in
  Alcotest.(check bool) "flagged" true
    (List.exists
       (fun st -> st.Analyze.st_kind = `Commit && st.Analyze.st_gap_us = 900_000)
       rep.Analyze.stalls)

let suites =
  [
    ( "analyze",
      [
        Alcotest.test_case "segments sum to e2e" `Quick test_segments_sum;
        Alcotest.test_case "benign run is quiet" `Quick test_benign_run_is_quiet;
        Alcotest.test_case "deterministic output" `Quick test_deterministic_output;
        Alcotest.test_case "load_jsonl round-trip" `Quick test_load_jsonl_roundtrip;
        Alcotest.test_case "muted leader stall" `Quick test_muted_leader_stall;
        Alcotest.test_case "partition stall" `Quick test_partition_stall;
        Alcotest.test_case "observed pairs beat modular guess" `Quick
          test_observed_pairs_beat_modular_guess;
        Alcotest.test_case "crash+mute attribution" `Quick
          test_crash_plus_mute_attribution;
        Alcotest.test_case "attack cause matrix" `Quick
          test_attack_cause_matrix;
        Alcotest.test_case "dead trace stalls" `Quick test_dead_trace_is_one_big_stall;
      ] );
  ]
