open Clanbft
open Clanbft.Crypto
module Store = Dag_store

(* Build verifiable little DAGs by hand. *)

let mk ~round ~source ~strong ~weak =
  Vertex.make ~round ~source ~block_digest:Digest32.zero
    ~strong_edges:(Array.of_list (List.map Vertex.ref_of strong))
    ~weak_edges:(Array.of_list (List.map Vertex.ref_of weak))
    ()

(* A 3-round, 4-node DAG:
   round 0: v00 v01 v02 v03
   round 1: v1s reference {v00,v01,v02} (v03 is left orphaned)
   round 2: v2s reference all of round 1; v20 additionally weak-links v03. *)
let build_world () =
  let s = Store.create ~n:4 in
  let r0 = List.init 4 (fun i -> mk ~round:0 ~source:i ~strong:[] ~weak:[]) in
  List.iter (Store.add s) r0;
  let base = List.filteri (fun i _ -> i < 3) r0 in
  let r1 = List.init 4 (fun i -> mk ~round:1 ~source:i ~strong:base ~weak:[]) in
  List.iter (Store.add s) r1;
  let v03 = List.nth r0 3 in
  let r2 =
    List.init 4 (fun i ->
        mk ~round:2 ~source:i ~strong:r1 ~weak:(if i = 0 then [ v03 ] else []))
  in
  List.iter (Store.add s) r2;
  (s, r0, r1, r2)

let test_add_find () =
  let s, r0, _, _ = build_world () in
  Alcotest.(check bool) "mem" true (Store.mem s ~round:0 ~source:2);
  Alcotest.(check bool) "not mem" false (Store.mem s ~round:3 ~source:0);
  Alcotest.(check int) "count round 0" 4 (Store.count_at s 0);
  Alcotest.(check int) "size" 12 (Store.size s);
  Alcotest.(check int) "highest" 2 (Store.highest_round s);
  let v = Option.get (Store.find s ~round:0 ~source:1) in
  Alcotest.(check bool) "find returns the vertex" true
    (Digest32.equal v.Vertex.digest (List.nth r0 1).Vertex.digest)

let test_add_idempotent () =
  let s, r0, _, _ = build_world () in
  Store.add s (List.hd r0);
  Alcotest.(check int) "size unchanged" 12 (Store.size s)

let test_add_conflict_rejected () =
  let s = Store.create ~n:4 in
  Store.add s (mk ~round:0 ~source:0 ~strong:[] ~weak:[]);
  let conflicting =
    Vertex.make ~round:0 ~source:0 ~block_digest:(Digest32.hash_string "other")
      ~strong_edges:[||] ~weak_edges:[||] ()
  in
  Alcotest.check_raises "conflict"
    (Invalid_argument "Store.add: conflicting vertex for an occupied slot")
    (fun () -> Store.add s conflicting)

let test_add_missing_parent_rejected () =
  let s = Store.create ~n:4 in
  let parent = mk ~round:0 ~source:0 ~strong:[] ~weak:[] in
  let child = mk ~round:1 ~source:0 ~strong:[ parent ] ~weak:[] in
  Alcotest.check_raises "missing parent" (Invalid_argument "Store.add: parent missing")
    (fun () -> Store.add s child);
  Alcotest.(check int) "missing parents listed" 1
    (List.length (Store.missing_parents s child));
  Store.add s parent;
  Store.add s child;
  Alcotest.(check int) "insertable after parent" 2 (Store.size s)

let test_find_ref_digest_check () =
  let s, r0, _, _ = build_world () in
  let v = List.hd r0 in
  Alcotest.(check bool) "matching ref" true (Store.find_ref s (Vertex.ref_of v) <> None);
  let bogus = { (Vertex.ref_of v) with digest = Digest32.hash_string "bogus" } in
  Alcotest.(check bool) "digest mismatch" true (Store.find_ref s bogus = None)

let test_vertices_at_sorted () =
  let s, _, _, _ = build_world () in
  let sources = List.map (fun (v : Vertex.t) -> v.source) (Store.vertices_at s 1) in
  Alcotest.(check (list int)) "ascending sources" [ 0; 1; 2; 3 ] sources

let test_strong_path () =
  let s, r0, r1, r2 = build_world () in
  let v20 = List.hd r2 in
  Alcotest.(check bool) "reflexive" true (Store.strong_path s v20 ~round:2 ~source:0);
  Alcotest.(check bool) "one hop" true (Store.strong_path s v20 ~round:1 ~source:3);
  Alcotest.(check bool) "two hops" true (Store.strong_path s v20 ~round:0 ~source:2);
  (* v03 is only reachable through v20's weak edge — not a strong path. *)
  Alcotest.(check bool) "weak edges don't count" false
    (Store.strong_path s v20 ~round:0 ~source:3);
  Alcotest.(check bool) "no forward paths" false
    (Store.strong_path s (List.hd r1) ~round:2 ~source:0);
  ignore r0

let test_causal_history_complete () =
  let s, _, _, r2 = build_world () in
  let v20 = List.hd r2 in
  let history = Store.causal_history s v20 ~skip:(fun ~round:_ ~source:_ -> false) in
  (* v20 reaches everything except the other round-2 vertices. *)
  Alcotest.(check int) "size" 9 (List.length history);
  (* deterministic ascending (round, source) order *)
  let ids = List.map (fun (v : Vertex.t) -> (v.round, v.source)) history in
  Alcotest.(check (list (pair int int))) "order"
    [ (0, 0); (0, 1); (0, 2); (0, 3); (1, 0); (1, 1); (1, 2); (1, 3); (2, 0) ]
    ids

let test_causal_history_skip () =
  let s, _, _, r2 = build_world () in
  let v20 = List.hd r2 in
  (* Skipping round 0 sources 0-2 (as "already ordered") also prunes
     traversal below them. *)
  let history =
    Store.causal_history s v20 ~skip:(fun ~round ~source -> round = 0 && source < 3)
  in
  Alcotest.(check int) "smaller" 6 (List.length history)

let test_causal_history_weak_edges_included () =
  let s, _, _, r2 = build_world () in
  let v21 = List.nth r2 1 in
  (* v21 has no weak edge to v03 and no strong path: v03 absent. *)
  let history = Store.causal_history s v21 ~skip:(fun ~round:_ ~source:_ -> false) in
  Alcotest.(check bool) "v03 not reachable" true
    (not (List.exists (fun (v : Vertex.t) -> v.round = 0 && v.source = 3) history));
  (* v20 (with the weak edge) reaches it. *)
  let history0 = Store.causal_history s (List.hd r2) ~skip:(fun ~round:_ ~source:_ -> false) in
  Alcotest.(check bool) "v03 via weak edge" true
    (List.exists (fun (v : Vertex.t) -> v.round = 0 && v.source = 3) history0)

let test_prune () =
  let s, _, _, _ = build_world () in
  Store.prune_below s ~round:1;
  Alcotest.(check int) "round 0 gone" 0 (Store.count_at s 0);
  Alcotest.(check int) "size" 8 (Store.size s);
  Alcotest.(check bool) "find below floor" true (Store.find s ~round:0 ~source:0 = None);
  (* A vertex referencing pruned parents is insertable: refs below the
     floor count as satisfied. *)
  let ghost_parent = mk ~round:0 ~source:0 ~strong:[] ~weak:[] in
  let late = mk ~round:1 ~source:0 ~strong:[ ghost_parent ] ~weak:[] in
  Alcotest.(check int) "no missing parents below floor" 0
    (List.length (Store.missing_parents s late))

let test_prune_huge_gap () =
  (* Regression: prune_below iterated every integer round in [floor, round),
     so a node adopting a snapshot far ahead (or pruning after a long idle
     stretch) spun through millions of empty rounds. The key-driven path
     must handle a ~10^15-round jump instantly and leave the store usable. *)
  let s, _, _, _ = build_world () in
  let far = 1_000_000_000_000_000 in
  Store.prune_below s ~round:far;
  Alcotest.(check int) "everything pruned" 0 (Store.size s);
  Alcotest.(check int) "floor adopted" far (Store.floor s);
  (* Rounds below the new floor count as satisfied parents. *)
  let ghost = mk ~round:(far - 1) ~source:0 ~strong:[] ~weak:[] in
  let v = mk ~round:far ~source:0 ~strong:[ ghost ] ~weak:[] in
  Alcotest.(check int) "ghost parent satisfied" 0
    (List.length (Store.missing_parents s v));
  Store.add s v;
  Alcotest.(check int) "insertable at the new floor" 1 (Store.size s);
  (* A second huge jump with live vertices present. *)
  Store.prune_below s ~round:(2 * far);
  Alcotest.(check int) "pruned again" 0 (Store.size s)

let test_parents_present_matches_missing () =
  (* parents_present is the allocation-free fast path the insert loop uses;
     it must agree with missing_parents = [] in every case. *)
  let s = Store.create ~n:4 in
  let r0 = List.init 4 (fun i -> mk ~round:0 ~source:i ~strong:[] ~weak:[]) in
  List.iter (Store.add s) r0;
  let child = mk ~round:1 ~source:0 ~strong:r0 ~weak:[] in
  Alcotest.(check bool) "all parents in" true (Store.parents_present s child);
  let orphan_parent = mk ~round:1 ~source:3 ~strong:r0 ~weak:[] in
  let orphan = mk ~round:2 ~source:0 ~strong:[ orphan_parent ] ~weak:[] in
  Alcotest.(check bool) "missing strong parent" false (Store.parents_present s orphan);
  Alcotest.(check bool) "agrees with missing_parents" true
    (Store.missing_parents s orphan <> []);
  (* A weak edge whose digest doesn't match the stored occupant blocks. *)
  let r1 = List.init 4 (fun i -> mk ~round:1 ~source:i ~strong:r0 ~weak:[]) in
  List.iter (Store.add s) r1;
  let impostor =
    Vertex.make ~round:0 ~source:3 ~block_digest:(Digest32.hash_string "impostor")
      ~strong_edges:[||] ~weak_edges:[||] ()
  in
  let weak_blocked = mk ~round:2 ~source:1 ~strong:r1 ~weak:[ impostor ] in
  Alcotest.(check bool) "mismatched weak parent" false
    (Store.parents_present s weak_blocked);
  Store.prune_below s ~round:1;
  let below_floor = mk ~round:1 ~source:2 ~strong:r0 ~weak:[] in
  Alcotest.(check bool) "parents below floor satisfied" true
    (Store.parents_present s below_floor)

let test_determinism_across_insertion_orders () =
  (* The causal history must not depend on insertion order. *)
  let build order =
    let s = Store.create ~n:3 in
    let r0 = List.init 3 (fun i -> mk ~round:0 ~source:i ~strong:[] ~weak:[]) in
    let r1 = List.init 3 (fun i -> mk ~round:1 ~source:i ~strong:r0 ~weak:[]) in
    let tip = mk ~round:2 ~source:0 ~strong:r1 ~weak:[] in
    List.iter (Store.add s) (order r0);
    List.iter (Store.add s) (order r1);
    Store.add s tip;
    List.map
      (fun (v : Vertex.t) -> (v.round, v.source))
      (Store.causal_history s tip ~skip:(fun ~round:_ ~source:_ -> false))
  in
  Alcotest.(check (list (pair int int)))
    "same history" (build (fun l -> l))
    (build List.rev)

let suites =
  [
    ( "dag.store",
      [
        Alcotest.test_case "add/find" `Quick test_add_find;
        Alcotest.test_case "idempotent add" `Quick test_add_idempotent;
        Alcotest.test_case "conflict rejected" `Quick test_add_conflict_rejected;
        Alcotest.test_case "missing parent rejected" `Quick test_add_missing_parent_rejected;
        Alcotest.test_case "find_ref digest check" `Quick test_find_ref_digest_check;
        Alcotest.test_case "vertices_at sorted" `Quick test_vertices_at_sorted;
        Alcotest.test_case "strong paths" `Quick test_strong_path;
        Alcotest.test_case "causal history" `Quick test_causal_history_complete;
        Alcotest.test_case "history skip" `Quick test_causal_history_skip;
        Alcotest.test_case "weak edges in history" `Quick test_causal_history_weak_edges_included;
        Alcotest.test_case "prune" `Quick test_prune;
        Alcotest.test_case "prune across a huge gap" `Quick test_prune_huge_gap;
        Alcotest.test_case "parents_present fast path" `Quick
          test_parents_present_matches_missing;
        Alcotest.test_case "insertion-order independence" `Quick
          test_determinism_across_insertion_orders;
      ] );
  ]
