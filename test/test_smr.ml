open Clanbft
open Clanbft.Sim
open Clanbft.Crypto
module Rng = Util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Mempool *)

let mk_txn id = Transaction.make ~id ~client:0 ~created_at:0 ()

let test_mempool_fifo () =
  let m = Mempool.create () in
  List.iter (fun i -> ignore (Mempool.submit m (mk_txn i))) [ 1; 2; 3; 4 ];
  let batch = Mempool.take m ~max:3 in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ]
    (Array.to_list (Array.map (fun (t : Transaction.t) -> t.id) batch));
  Alcotest.(check int) "remaining" 1 (Mempool.pending m);
  Alcotest.(check int) "take rest" 1 (Array.length (Mempool.take m ~max:10));
  Alcotest.(check int) "empty take" 0 (Array.length (Mempool.take m ~max:10))

let test_mempool_capacity () =
  let m = Mempool.create ~capacity:2 () in
  Alcotest.(check bool) "1 ok" true (Mempool.submit m (mk_txn 1));
  Alcotest.(check bool) "2 ok" true (Mempool.submit m (mk_txn 2));
  Alcotest.(check bool) "3 rejected" false (Mempool.submit m (mk_txn 3));
  Alcotest.(check int) "submitted" 2 (Mempool.submitted_total m);
  Alcotest.(check int) "rejected" 1 (Mempool.rejected_total m)

(* ------------------------------------------------------------------ *)
(* Execution *)

let block_of_ids ~proposer ~round ids =
  Block.make ~proposer ~round ~txns:(Array.of_list (List.map mk_txn ids))

let test_execution_deterministic () =
  let run () =
    let e = Execution.create () in
    Execution.apply_block e (block_of_ids ~proposer:0 ~round:0 [ 1; 2 ]);
    Execution.apply_block e (block_of_ids ~proposer:1 ~round:0 [ 3 ]);
    Execution.state_digest e
  in
  Alcotest.(check bool) "same state" true (Digest32.equal (run ()) (run ()))

let test_execution_order_sensitive () =
  let e1 = Execution.create () and e2 = Execution.create () in
  let a = block_of_ids ~proposer:0 ~round:0 [ 1 ] in
  let b = block_of_ids ~proposer:1 ~round:0 [ 2 ] in
  Execution.apply_block e1 a;
  Execution.apply_block e1 b;
  Execution.apply_block e2 b;
  Execution.apply_block e2 a;
  Alcotest.(check bool) "order matters" false
    (Digest32.equal (Execution.state_digest e1) (Execution.state_digest e2))

let test_execution_skip_equivalent_chain () =
  (* skip_block folds the digest only, so a replica outside the clan tracks
     the same chain as one that executed the payload. *)
  let full = Execution.create () and light = Execution.create () in
  let b = block_of_ids ~proposer:0 ~round:0 [ 1; 2; 3 ] in
  Execution.apply_block full b;
  Execution.skip_block light (Block.digest b);
  Alcotest.(check bool) "same chain" true
    (Digest32.equal (Execution.state_digest full) (Execution.state_digest light));
  Alcotest.(check int) "txns counted only when executed" 0 (Execution.executed_txns light);
  Alcotest.(check int) "full counts" 3 (Execution.executed_txns full)

let test_execution_responses () =
  let e1 = Execution.create () and e2 = Execution.create () in
  let b = block_of_ids ~proposer:0 ~round:0 [ 1 ] in
  Execution.apply_block e1 b;
  Execution.apply_block e2 b;
  let txn = mk_txn 1 in
  Alcotest.(check bool) "matching responses" true
    (Digest32.equal (Execution.response e1 txn) (Execution.response e2 txn));
  Execution.apply_block e2 (block_of_ids ~proposer:1 ~round:1 [ 2 ]);
  Alcotest.(check bool) "diverged state, diverged response" false
    (Digest32.equal (Execution.response e1 txn) (Execution.response e2 txn))

(* ------------------------------------------------------------------ *)
(* Persist *)

let test_persist_write_latency () =
  let engine = Engine.create () in
  let p = Persist.create ~engine ~write_latency:(Time.us 100) ~write_bandwidth_mbps:100. () in
  let done_at = ref (-1) in
  Persist.put p ~key:"a" ~size:1_000_000 ~data:"payload" ~on_durable:(fun () ->
      done_at := Engine.now engine) ();
  Alcotest.(check bool) "not yet durable" false (Persist.is_durable p ~key:"a");
  Alcotest.(check int) "backlog" 1 (Persist.backlog p);
  Engine.run engine;
  (* 100µs + 1MB at 100MB/s = 10_000µs *)
  Alcotest.(check int) "durable at latency+transfer" 10_100 !done_at;
  Alcotest.(check bool) "durable" true (Persist.is_durable p ~key:"a");
  Alcotest.(check (option string)) "data readable" (Some "payload") (Persist.get p ~key:"a");
  Alcotest.(check int) "bytes" 1_000_000 (Persist.bytes_written p)

let test_persist_fifo_queue () =
  let engine = Engine.create () in
  let p = Persist.create ~engine ~write_latency:(Time.us 50) ~write_bandwidth_mbps:1. () in
  let order = ref [] in
  Persist.put p ~key:"a" ~size:100 ~on_durable:(fun () -> order := "a" :: !order) ();
  Persist.put p ~key:"b" ~size:100 ~on_durable:(fun () -> order := "b" :: !order) ();
  Engine.run engine;
  Alcotest.(check (list string)) "fifo" [ "a"; "b" ] (List.rev !order);
  (* second write queues behind the first: 2*(50+100) *)
  Alcotest.(check int) "queued completion" 300 (Engine.now engine)

let test_persist_metadata_only () =
  let engine = Engine.create () in
  let p = Persist.create ~engine () in
  Persist.put p ~key:"k" ~size:10 ~on_durable:(fun () -> ()) ();
  Engine.run engine;
  Alcotest.(check (option string)) "no data stored" None (Persist.get p ~key:"k");
  Alcotest.(check bool) "still durable" true (Persist.is_durable p ~key:"k")

(* ------------------------------------------------------------------ *)
(* Client *)

let test_client_fc1_completion () =
  let engine = Engine.create () in
  let config = Config.make ~n:10 (Config.Single_clan [| 0; 2; 4; 6; 8 |]) in
  (* fc of 5 = 2, so 3 matching responses complete a transaction *)
  let completions = ref [] in
  let c =
    Client.create ~engine ~config ~id:1
      ~on_complete:(fun txn ~latency -> completions := (txn.Transaction.id, latency) :: !completions)
      ()
  in
  let txn = Client.make_txn c () in
  Client.track c txn ~clan:0;
  let digest = Digest32.hash_string "result" in
  Client.deliver_response c ~executor:0 txn digest;
  Client.deliver_response c ~executor:2 txn digest;
  Alcotest.(check int) "not yet complete" 0 (Client.completed c);
  Client.deliver_response c ~executor:4 txn digest;
  Alcotest.(check int) "complete at fc+1" 1 (Client.completed c);
  Alcotest.(check int) "callback fired" 1 (List.length !completions);
  (* further responses are no-ops *)
  Client.deliver_response c ~executor:6 txn digest;
  Alcotest.(check int) "still one" 1 (Client.completed c)

let test_client_mismatched_responses () =
  let engine = Engine.create () in
  let config = Config.make ~n:10 (Config.Single_clan [| 0; 2; 4; 6; 8 |]) in
  let c = Client.create ~engine ~config ~id:1 () in
  let txn = Client.make_txn c () in
  Client.track c txn ~clan:0;
  (* Three responses but only two agree: not enough. *)
  Client.deliver_response c ~executor:0 txn (Digest32.hash_string "good");
  Client.deliver_response c ~executor:2 txn (Digest32.hash_string "evil");
  Client.deliver_response c ~executor:4 txn (Digest32.hash_string "good");
  Alcotest.(check int) "no quorum on a digest" 0 (Client.completed c);
  Alcotest.(check int) "pending" 1 (Client.pending c);
  Client.deliver_response c ~executor:6 txn (Digest32.hash_string "good");
  Alcotest.(check int) "good digest reaches fc+1" 1 (Client.completed c)

let test_client_ignores_outsiders () =
  let engine = Engine.create () in
  let config = Config.make ~n:10 (Config.Single_clan [| 0; 2; 4; 6; 8 |]) in
  let c = Client.create ~engine ~config ~id:1 () in
  let txn = Client.make_txn c () in
  Client.track c txn ~clan:0;
  let digest = Digest32.hash_string "x" in
  (* Non-clan parties (and duplicates) must not count towards the quorum. *)
  Client.deliver_response c ~executor:1 txn digest;
  Client.deliver_response c ~executor:3 txn digest;
  Client.deliver_response c ~executor:5 txn digest;
  Client.deliver_response c ~executor:0 txn digest;
  Client.deliver_response c ~executor:0 txn digest;
  Alcotest.(check int) "outsiders ignored" 0 (Client.completed c)

let test_client_unique_ids () =
  let engine = Engine.create () in
  let config = Config.make ~n:4 Config.Full in
  let c1 = Client.create ~engine ~config ~id:1 () in
  let c2 = Client.create ~engine ~config ~id:2 () in
  let a = Client.make_txn c1 () and b = Client.make_txn c1 () in
  let x = Client.make_txn c2 () in
  Alcotest.(check bool) "distinct within client" true (a.Transaction.id <> b.Transaction.id);
  Alcotest.(check bool) "distinct across clients" true (b.Transaction.id <> x.Transaction.id)

(* ------------------------------------------------------------------ *)
(* Node-level integration: mempool -> consensus -> execution *)

let run_cluster ?(n = 4) ?(duration = 4.0) ~dissemination ~submit () =
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~one_way_ms:5.0 in
  let net =
    Net.create ~engine ~topology ~config:{ Net.default_config with jitter = 0.0 }
      ~size:(Msg.wire_size ~n) ~rng:(Rng.create 4L) ()
  in
  let keychain = Keychain.create ~seed:6L ~n in
  let config = Config.make ~n dissemination in
  let nodes =
    Array.init n (fun me ->
        Node.create ~me ~config ~keychain ~engine ~net ~max_block_txns:100 ())
  in
  Array.iter Node.start nodes;
  submit engine nodes;
  Engine.run ~until:(Time.s duration) engine;
  (engine, nodes)

let test_node_executes_submitted_txns () =
  let _, nodes =
    run_cluster ~dissemination:Config.Full
      ~submit:(fun _engine nodes ->
        for i = 1 to 50 do
          ignore (Node.submit nodes.(i mod 4) (mk_txn i))
        done)
      ()
  in
  Array.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "node %d executed all" (Node.me node))
        50 (Node.executed_txns node))
    nodes;
  (* replicated states agree *)
  let d0 = Execution.state_digest (Node.execution nodes.(0)) in
  Array.iter
    (fun node ->
      Alcotest.(check bool) "states equal" true
        (Digest32.equal d0 (Execution.state_digest (Node.execution node))))
    nodes

let test_node_single_clan_execution_split () =
  let clan = [| 0; 2 |] in
  let _, nodes =
    run_cluster ~dissemination:(Config.Single_clan clan)
      ~submit:(fun _engine nodes ->
        for i = 1 to 30 do
          (* clients submit to clan members only (§5) *)
          ignore (Node.submit nodes.(if i mod 2 = 0 then 0 else 2) (mk_txn i))
        done)
      ()
  in
  Alcotest.(check int) "clan member 0 executed" 30 (Node.executed_txns nodes.(0));
  Alcotest.(check int) "clan member 2 executed" 30 (Node.executed_txns nodes.(2));
  Alcotest.(check int) "outsider 1 executed nothing" 0 (Node.executed_txns nodes.(1));
  Alcotest.(check bool) "clan states agree" true
    (Digest32.equal
       (Execution.state_digest (Node.execution nodes.(0)))
       (Execution.state_digest (Node.execution nodes.(2))))

let test_node_multi_clan_execution_split () =
  let clans = [| [| 0; 1 |]; [| 2; 3 |] |] in
  let _, nodes =
    run_cluster ~dissemination:(Config.Multi_clan clans)
      ~submit:(fun _engine nodes ->
        for i = 1 to 20 do
          ignore (Node.submit nodes.(0) (mk_txn i));
          ignore (Node.submit nodes.(2) (mk_txn (1000 + i)))
        done)
      ()
  in
  (* Each clan executes only its own payloads... *)
  Alcotest.(check int) "clan 0 member" 20 (Node.executed_txns nodes.(0));
  Alcotest.(check int) "clan 1 member" 20 (Node.executed_txns nodes.(2));
  (* ...but the digest chains (payload + skip folds) agree globally. *)
  Alcotest.(check bool) "cross-clan chain agreement" true
    (Digest32.equal
       (Execution.state_digest (Node.execution nodes.(0)))
       (Execution.state_digest (Node.execution nodes.(2))))

let test_node_txn_receipts () =
  let engine = Engine.create () in
  let n = 4 in
  let topology = Topology.uniform ~n ~one_way_ms:5.0 in
  let net =
    Net.create ~engine ~topology ~config:{ Net.default_config with jitter = 0.0 }
      ~size:(Msg.wire_size ~n) ~rng:(Rng.create 4L) ()
  in
  let keychain = Keychain.create ~seed:6L ~n in
  let config = Config.make ~n Config.Full in
  let receipts = Array.init n (fun _ -> ref []) in
  let nodes =
    Array.init n (fun me ->
        Node.create ~me ~config ~keychain ~engine ~net ~max_block_txns:10
          ~on_txn_executed:(fun txn digest ->
            receipts.(me) := (txn.Transaction.id, digest) :: !(receipts.(me)))
          ())
  in
  Array.iter Node.start nodes;
  ignore (Node.submit nodes.(1) (mk_txn 42));
  Engine.run ~until:(Time.s 3.) engine;
  (* All replicas produce the same receipt for txn 42 — the f_c+1 matching
     condition the client checks. *)
  let r0 = List.assoc 42 !(receipts.(0)) in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "receipt %d matches" i) true
        (Digest32.equal r0 (List.assoc 42 !r)))
    receipts

(* ------------------------------------------------------------------ *)
(* Runner *)

let base_spec =
  {
    Runner.default_spec with
    n = 10;
    duration = Time.s 6.;
    warmup = Time.s 2.;
    txns_per_proposal = 100;
    txn_scale = 10;
    topology = `Uniform 10.0;
  }

let test_runner_full () =
  let r = Runner.run { base_spec with protocol = Runner.Full } in
  Alcotest.(check bool) "throughput > 0" true (r.throughput_ktps > 0.0);
  Alcotest.(check bool) "latency sane" true
    (r.latency_mean_ms > 20.0 && r.latency_mean_ms < 2_000.0);
  Alcotest.(check bool) "agreement" true r.agreement;
  Alcotest.(check bool) "rounds advanced" true (r.rounds > 10)

let test_runner_single_clan_less_traffic () =
  let full = Runner.run { base_spec with protocol = Runner.Full } in
  let single = Runner.run { base_spec with protocol = Runner.Single_clan { nc = 5 } } in
  Alcotest.(check bool) "clan egress below full egress" true
    (single.mb_per_node_per_s < full.mb_per_node_per_s);
  Alcotest.(check bool) "both agree" true (full.agreement && single.agreement)

let test_runner_multi_clan () =
  let r = Runner.run { base_spec with protocol = Runner.Multi_clan { q = 2 } } in
  Alcotest.(check bool) "agreement" true r.agreement;
  Alcotest.(check bool) "throughput > 0" true (r.throughput_ktps > 0.0)

let test_runner_sparse () =
  let r = Runner.run { base_spec with protocol = Runner.Sparse { k = 3 } } in
  Alcotest.(check bool) "agreement" true r.agreement;
  Alcotest.(check bool) "throughput > 0" true (r.throughput_ktps > 0.0);
  Alcotest.(check bool) "rounds advanced" true (r.rounds > 10);
  (* Sparse shares the dissemination path with Full, so at n=10 the
     only traffic saved is edge metadata — but it must save some. *)
  let full = Runner.run { base_spec with protocol = Runner.Full } in
  Alcotest.(check bool) "fewer bytes than dense" true
    (r.bytes_total < full.bytes_total)

let test_runner_sparse_all_parents_matches_dense () =
  (* With k >= n the sparse selector keeps every available parent, so the
     DAG (and hence the commit order) must match the dense run's. The
     jitter-free uniform network keeps the two runs' round pacing in
     lockstep despite the compact form's smaller vertices. *)
  let spec =
    {
      base_spec with
      net = { Net.default_config with jitter = 0.0 };
      duration = Time.s 5.;
    }
  in
  let dense = Runner.run { spec with protocol = Runner.Full } in
  let sparse = Runner.run { spec with protocol = Runner.Sparse { k = spec.n } } in
  Alcotest.(check bool) "both agree" true (dense.agreement && sparse.agreement);
  let len =
    min (Array.length dense.commit_chain) (Array.length sparse.commit_chain)
  in
  Alcotest.(check bool) "committed something" true (len > 0);
  Alcotest.(check int) "common commit prefix"
    dense.commit_chain.(len - 1)
    sparse.commit_chain.(len - 1)

let test_runner_crash_faults () =
  let r = Runner.run { base_spec with crashed = [ 1; 4; 7 ]; duration = Time.s 8. } in
  Alcotest.(check bool) "progress with f crashes" true (r.committed_txns > 0);
  Alcotest.(check bool) "agreement" true r.agreement

let test_runner_topology_matters () =
  (* Geo-distributed latency must show up in the metrics: the GCP matrix
     (RTTs up to 295 ms) vs a 5 ms-one-way uniform network. *)
  let gcp = Runner.run { base_spec with topology = `Gcp } in
  let local = Runner.run { base_spec with topology = `Uniform 5.0 } in
  Alcotest.(check bool)
    (Printf.sprintf "gcp latency (%.0f) >> local (%.0f)" gcp.latency_mean_ms
       local.latency_mean_ms)
    true
    (gcp.latency_mean_ms > 3.0 *. local.latency_mean_ms)

let test_runner_deterministic () =
  let a = Runner.run base_spec and b = Runner.run base_spec in
  Alcotest.(check int) "same committed count" a.committed_txns b.committed_txns;
  Alcotest.(check (float 1e-9)) "same latency" a.latency_mean_ms b.latency_mean_ms;
  Alcotest.(check int) "same bytes" a.bytes_total b.bytes_total

let test_runner_seed_sensitivity () =
  let a = Runner.run base_spec in
  let b = Runner.run { base_spec with seed = 999L } in
  (* jitter differs, so traffic timing (and usually byte totals) differ *)
  Alcotest.(check bool) "different runs" true
    (a.bytes_total <> b.bytes_total || a.committed_txns <> b.committed_txns)

let test_runner_txn_scale_invariance () =
  (* Scaling transaction granularity must keep the byte stream (and hence
     throughput in kTPS) in the same ballpark. *)
  let a = Runner.run { base_spec with txn_scale = 1 } in
  let b = Runner.run { base_spec with txn_scale = 20 } in
  Alcotest.(check bool)
    (Printf.sprintf "throughput comparable (%.1f vs %.1f)" a.throughput_ktps b.throughput_ktps)
    true
    (b.throughput_ktps > 0.5 *. a.throughput_ktps
    && b.throughput_ktps < 2.0 *. a.throughput_ktps)

let prop_runner_zero_load =
  QCheck.Test.make ~name:"zero load commits zero transactions" ~count:1 QCheck.unit
    (fun () ->
      let r =
        Runner.run { base_spec with txns_per_proposal = 0; duration = Time.s 3. }
      in
      r.committed_txns = 0 && r.agreement)

let suites =
  [
    ( "smr.mempool",
      [
        Alcotest.test_case "fifo" `Quick test_mempool_fifo;
        Alcotest.test_case "capacity" `Quick test_mempool_capacity;
      ] );
    ( "smr.execution",
      [
        Alcotest.test_case "deterministic" `Quick test_execution_deterministic;
        Alcotest.test_case "order sensitive" `Quick test_execution_order_sensitive;
        Alcotest.test_case "skip equivalent chain" `Quick test_execution_skip_equivalent_chain;
        Alcotest.test_case "responses" `Quick test_execution_responses;
      ] );
    ( "smr.persist",
      [
        Alcotest.test_case "write latency" `Quick test_persist_write_latency;
        Alcotest.test_case "fifo queue" `Quick test_persist_fifo_queue;
        Alcotest.test_case "metadata only" `Quick test_persist_metadata_only;
      ] );
    ( "smr.client",
      [
        Alcotest.test_case "fc+1 completion" `Quick test_client_fc1_completion;
        Alcotest.test_case "mismatched responses" `Quick test_client_mismatched_responses;
        Alcotest.test_case "outsiders ignored" `Quick test_client_ignores_outsiders;
        Alcotest.test_case "unique ids" `Quick test_client_unique_ids;
      ] );
    ( "smr.node",
      [
        Alcotest.test_case "executes submitted txns" `Slow test_node_executes_submitted_txns;
        Alcotest.test_case "single-clan execution split" `Slow test_node_single_clan_execution_split;
        Alcotest.test_case "multi-clan execution split" `Slow test_node_multi_clan_execution_split;
        Alcotest.test_case "txn receipts" `Slow test_node_txn_receipts;
      ] );
    ( "smr.runner",
      [
        Alcotest.test_case "full protocol" `Slow test_runner_full;
        Alcotest.test_case "single-clan traffic" `Slow test_runner_single_clan_less_traffic;
        Alcotest.test_case "multi-clan" `Slow test_runner_multi_clan;
        Alcotest.test_case "sparse edges" `Slow test_runner_sparse;
        Alcotest.test_case "sparse k=all == dense" `Slow
          test_runner_sparse_all_parents_matches_dense;
        Alcotest.test_case "crash faults" `Slow test_runner_crash_faults;
        Alcotest.test_case "topology matters" `Slow test_runner_topology_matters;
        Alcotest.test_case "deterministic" `Slow test_runner_deterministic;
        Alcotest.test_case "seed sensitivity" `Slow test_runner_seed_sensitivity;
        Alcotest.test_case "txn-scale invariance" `Slow test_runner_txn_scale_invariance;
        qtest prop_runner_zero_load;
      ] );
  ]
