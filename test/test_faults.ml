(* Fault-injection harness + the pull-path liveness regressions it exists
   to pin down.

   World constants mirror test_rbc.ml: n = 10, f = 3, quorum = 7,
   clan = [|0;2;4;6;8|] (f_c = 1, clan echo quorum f_c+1 = 2 — but
   Withhold scenarios below use reveal = 3 = (nc+1)/2 so an honest
   majority of the clan holds the payload). *)

open Clanbft
open Clanbft.Sim
open Clanbft.Crypto
module Rng = Util.Rng

let clan = [| 0; 2; 4; 6; 8 |]

type world = {
  engine : Engine.t;
  net : Rbc.msg Net.t;
  nodes : Rbc.node option array;
  deliveries : (int * int * Rbc.outcome) list ref; (* (time, node, outcome) *)
  injector : Rbc.msg Faults.t option;
}

let make_world ?(n = 10) ?(byzantine = []) ?(plan = Faults.empty) protocol =
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~one_way_ms:10.0 in
  let config = { Net.default_config with jitter = 0.0 } in
  let rng = Rng.create 7L in
  let net =
    Net.create ~engine ~topology ~config ~size:(Rbc.msg_size ~n) ~rng ()
  in
  let injector =
    if Faults.is_empty plan then None
    else
      Some
        (Faults.install ~engine ~net ~rng:(Rng.split rng)
           ~classify:Rbc.msg_tag ~round_of:Rbc.msg_round plan)
  in
  let keychain = Keychain.create ~seed:11L ~n in
  let deliveries = ref [] in
  let nodes =
    Array.init n (fun me ->
        if List.mem me byzantine then begin
          Net.set_handler net me (fun ~src:_ _ -> ());
          None
        end
        else
          Some
            (Rbc.create ~me ~n ~clan ~protocol ~engine ~net ~keychain
               ~on_deliver:(fun ~sender:_ ~round:_ outcome ->
                 deliveries := (Engine.now engine, me, outcome) :: !deliveries)
               ()))
  in
  { engine; net; nodes; deliveries; injector }

let plan_exn ?(rules = []) ?(partitions = []) ?(mutes = []) () =
  match Faults.plan_of_specs ~rules ~partitions ~mutes () with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad plan spec: %s" e

let outcome_of w i =
  List.find_map
    (fun (_, me, o) -> if me = i then Some o else None)
    !(w.deliveries)

let value_count w =
  List.length
    (List.filter (fun (_, _, o) -> match o with Rbc.Value _ -> true | _ -> false)
       !(w.deliveries))

let distinct_digests w =
  List.sort_uniq compare
    (List.map
       (fun (_, _, o) ->
         match o with
         | Rbc.Value v -> Digest32.to_raw (Digest32.hash_string v)
         | Rbc.Digest_only d -> Digest32.to_raw d)
       !(w.deliveries))

(* ------------------------------------------------------------------ *)
(* Headline regression: a clan member that agrees on the digest via the
   READY path (or an echo certificate) with an EMPTY echo table must
   still be able to pull the payload. Before the fix its candidate list
   was built from echo voters only, so it stalled forever. *)

let test_pull_after_ready_only_agreement protocol () =
  (* Byzantine sender 0 reveals the payload to clan members 2, 4, 6 only
     (digests elsewhere); every ECHO addressed to clan member 8 is
     dropped, so 8 agrees purely via READYs / certificate. *)
  let plan = plan_exn ~rules:[ "drop:kind=echo:dst=8" ] () in
  let w = make_world ~byzantine:[ 0 ] ~plan protocol in
  Adversary.run ~sender:0 ~n:10 ~clan ~protocol ~net:w.net ~round:1
    (Adversary.Withhold { value = "headline-payload"; reveal = 3 });
  Engine.run ~until:(Time.s 30.) w.engine;
  (match w.injector with
  | Some i -> Alcotest.(check bool) "echoes were dropped" true (Faults.dropped i > 0)
  | None -> assert false);
  (* All nine honest nodes deliver; every honest clan member — including
     the echo-starved one — gets the full value. *)
  Alcotest.(check int) "all honest deliver" 9 (List.length !(w.deliveries));
  List.iter
    (fun i ->
      match outcome_of w i with
      | Some (Rbc.Value v) ->
          Alcotest.(check string)
            (Printf.sprintf "clan member %d payload" i)
            "headline-payload" v
      | Some (Rbc.Digest_only _) ->
          Alcotest.failf "clan member %d only got the digest" i
      | None -> Alcotest.failf "clan member %d stalled" i)
    [ 2; 4; 6; 8 ];
  Alcotest.(check int) "single digest" 1 (List.length (distinct_digests w))

(* Transient loss: every pull request is dropped for the first 3 s. A
   single sweep over the candidates exhausts well before that, so only
   the cycle-with-backoff retry can complete delivery. *)
let test_pull_retries_survive_transient_loss protocol () =
  let plan =
    plan_exn ~rules:[ "drop:kind=echo:dst=8"; "drop:kind=pull_request:until=3s" ] ()
  in
  let w = make_world ~byzantine:[ 0 ] ~plan protocol in
  Adversary.run ~sender:0 ~n:10 ~clan ~protocol ~net:w.net ~round:1
    (Adversary.Withhold { value = "retry-payload"; reveal = 3 });
  Engine.run ~until:(Time.s 30.) w.engine;
  (match outcome_of w 8 with
  | Some (Rbc.Value v) -> Alcotest.(check string) "node 8 payload" "retry-payload" v
  | Some (Rbc.Digest_only _) | None ->
      Alcotest.fail "node 8 did not recover after the loss window");
  let t8 =
    List.find_map (fun (t, me, _) -> if me = 8 then Some t else None) !(w.deliveries)
  in
  Alcotest.(check bool) "delivered after the loss window" true
    (Option.get t8 >= Time.s 3.)

(* ------------------------------------------------------------------ *)
(* Equivocation: whatever single digest the quorum certifies, every
   honest value-entitled node ends up with the matching payload. *)

let test_equivocating_sender protocol () =
  let w = make_world ~byzantine:[ 0 ] protocol in
  Adversary.run ~sender:0 ~n:10 ~clan ~protocol ~net:w.net ~round:1
    (Adversary.Equivocate_biased { value = "majority"; decoy = "decoy"; decoys = 1 });
  Engine.run ~until:(Time.s 30.) w.engine;
  Alcotest.(check int) "single digest" 1 (List.length (distinct_digests w));
  Alcotest.(check int) "all honest deliver" 9 (List.length !(w.deliveries));
  let entitled =
    if Rbc.is_tribe protocol then [ 2; 4; 6; 8 ]
    else [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  List.iter
    (fun i ->
      match outcome_of w i with
      | Some (Rbc.Value v) ->
          Alcotest.(check string) (Printf.sprintf "node %d payload" i) "majority" v
      | _ -> Alcotest.failf "entitled node %d missing the agreed value" i)
    entitled;
  Alcotest.(check int) "value deliveries" (List.length entitled) (value_count w)

(* A Byzantine sender ships a full (wrong) value to a non-clan node. The
   recipient must treat it as its digest: no storage, and no serving it
   to pulling clan members later. *)
let test_nonclan_never_serves_stray_val () =
  let protocol = Rbc.Tribe_bracha in
  let w = make_world ~byzantine:[ 0 ] protocol in
  let digest = Digest32.hash_string "real-payload" in
  (* Full value to the clan; a stray full value to non-clan node 1. *)
  Array.iter
    (fun dst ->
      if dst <> 0 then
        Net.send w.net ~src:0 ~dst
          (Rbc.Val { sender = 0; round = 1; value = "real-payload" }))
    clan;
  Net.send w.net ~src:0 ~dst:1
    (Rbc.Val { sender = 0; round = 1; value = "stray-wrong-value" });
  Array.iter
    (fun dst ->
      if dst <> 1 && not (Array.mem dst clan) then
        Net.send w.net ~src:0 ~dst (Rbc.Val_digest { sender = 0; round = 1; digest }))
    (Array.init 10 Fun.id);
  Engine.run w.engine;
  (* Node 1 delivered the *correct* digest, not the stray value. *)
  (match outcome_of w 1 with
  | Some (Rbc.Digest_only d) ->
      Alcotest.(check bool) "digest matches broadcast" true (Digest32.equal d digest)
  | Some (Rbc.Value _) -> Alcotest.fail "non-clan node delivered a full value"
  | None -> Alcotest.fail "node 1 stalled");
  (* And it must not serve pulls: a pull request to node 1 yields no
     reply message (message count stays +1 for the request itself). *)
  let before = Net.total_messages w.net in
  Net.send w.net ~src:4 ~dst:1 (Rbc.Pull_request { sender = 0; round = 1 });
  Engine.run w.engine;
  Alcotest.(check int) "no pull reply from non-clan node" (before + 1)
    (Net.total_messages w.net)

(* ------------------------------------------------------------------ *)
(* Injector mechanics on a raw net *)

type probe = Ping of int

let raw_net ?(n = 4) plan =
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~one_way_ms:5.0 in
  let net =
    Net.create ~engine ~topology ~config:{ Net.default_config with jitter = 0.0 }
      ~size:(fun _ -> 100) ~rng:(Rng.create 3L) ()
  in
  let got : (int * int * int) list ref = ref [] in
  (* (time, dst, payload) *)
  for me = 0 to n - 1 do
    Net.set_handler net me (fun ~src:_ (Ping k) ->
        got := (Engine.now engine, me, k) :: !got)
  done;
  let injector =
    Faults.install ~engine ~net ~rng:(Rng.create 5L)
      ~classify:(fun _ -> "ping")
      ~round_of:(fun (Ping k) -> Some k)
      plan
  in
  (engine, net, got, injector)

let test_drop_rule () =
  let plan = plan_exn ~rules:[ "drop:kind=ping:dst=2" ] () in
  let engine, net, got, injector = raw_net plan in
  for dst = 1 to 3 do
    Net.send net ~src:0 ~dst (Ping dst)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "only 1 and 3 hear" [ 1; 3 ]
    (List.sort compare (List.map (fun (_, d, _) -> d) !got));
  Alcotest.(check int) "one dropped" 1 (Faults.dropped injector);
  Alcotest.(check int) "three examined" 3 (Faults.examined injector)

let test_drop_probability_and_window () =
  (* Deterministic edges: p=1.0 inside the window, pass outside it. *)
  let plan = plan_exn ~rules:[ "drop=1.0:from=10ms:until=20ms" ] () in
  let engine, net, got, _ = raw_net plan in
  List.iter
    (fun at ->
      Engine.schedule_at engine (Time.ms at) (fun () ->
          Net.send net ~src:0 ~dst:1 (Ping (int_of_float at))))
    [ 5.0; 15.0; 25.0 ];
  Engine.run engine;
  Alcotest.(check (list int)) "window dropped" [ 5; 25 ]
    (List.sort compare (List.map (fun (_, _, k) -> k) !got))

let test_round_window_rule () =
  let plan = plan_exn ~rules:[ "drop:rounds=2..3" ] () in
  let engine, net, got, _ = raw_net plan in
  List.iter (fun k -> Net.send net ~src:0 ~dst:1 (Ping k)) [ 1; 2; 3; 4 ];
  Engine.run engine;
  Alcotest.(check (list int)) "rounds 2-3 dropped" [ 1; 4 ]
    (List.sort compare (List.map (fun (_, _, k) -> k) !got))

let test_delay_rule () =
  let plan = plan_exn ~rules:[ "delay=30ms:kind=ping" ] () in
  let engine, net, got, injector = raw_net plan in
  Net.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run engine;
  (match !got with
  | [ (t, 1, 1) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "arrives after 35ms (got %d us)" t)
        true
        (t >= Time.ms 35.0)
  | _ -> Alcotest.fail "expected exactly one delayed delivery");
  Alcotest.(check int) "counted" 1 (Faults.delayed injector)

let test_duplicate_rule () =
  let plan = plan_exn ~rules:[ "dup=2" ] () in
  let engine, net, got, injector = raw_net plan in
  Net.send net ~src:0 ~dst:1 (Ping 9);
  Engine.run engine;
  Alcotest.(check int) "three copies arrive" 3 (List.length !got);
  Alcotest.(check int) "two duplicates made" 2 (Faults.duplicated injector)

let test_partition_buffers_until_heal () =
  let plan = plan_exn ~partitions:[ "0,1|2,3:until=50ms" ] () in
  let engine, net, got, injector = raw_net plan in
  Net.send net ~src:0 ~dst:1 (Ping 1);
  (* same side: passes *)
  Net.send net ~src:0 ~dst:2 (Ping 2);
  (* severed: buffered until heal *)
  Engine.run engine;
  Alcotest.(check int) "both eventually arrive" 2 (List.length !got);
  let t2 =
    List.find_map (fun (t, d, _) -> if d = 2 then Some t else None) !got
  in
  Alcotest.(check bool) "cross-group copy held until heal" true
    (Option.get t2 >= Time.ms 50.0);
  let t1 =
    List.find_map (fun (t, d, _) -> if d = 1 then Some t else None) !got
  in
  Alcotest.(check bool) "same-group copy on time" true (Option.get t1 < Time.ms 10.0);
  Alcotest.(check int) "buffered copy counted as delayed" 1 (Faults.delayed injector)

let test_permanent_partition_drops () =
  let plan = plan_exn ~partitions:[ "0,1|2,3" ] () in
  let engine, net, got, injector = raw_net plan in
  Net.send net ~src:0 ~dst:2 (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "never arrives" 0 (List.length !got);
  Alcotest.(check int) "dropped" 1 (Faults.dropped injector)

let test_mute_after_time () =
  let plan = plan_exn ~mutes:[ "1:time=10ms" ] () in
  let engine, net, got, _ = raw_net plan in
  Net.send net ~src:1 ~dst:2 (Ping 1);
  Engine.schedule_at engine (Time.ms 20.0) (fun () ->
      Net.send net ~src:1 ~dst:2 (Ping 2));
  Engine.run engine;
  Alcotest.(check (list int)) "only the early message lands" [ 1 ]
    (List.map (fun (_, _, k) -> k) !got)

let test_mute_after_round () =
  let plan = plan_exn ~mutes:[ "1:round=5" ] () in
  let engine, net, got, _ = raw_net plan in
  List.iter (fun k -> Net.send net ~src:1 ~dst:2 (Ping k)) [ 4; 5; 6 ];
  Engine.run engine;
  Alcotest.(check (list int)) "rounds >= 5 muted" [ 4 ]
    (List.map (fun (_, _, k) -> k) !got)

(* ------------------------------------------------------------------ *)
(* DSL parsing *)

let test_dsl_parses () =
  let ok s =
    match Faults.rule_of_string s with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%S should parse: %s" s e
  in
  List.iter ok
    [
      "drop";
      "drop=0.25:kind=echo,val:src=!0:dst=1,2:from=1s:until=3s";
      "delay=10ms..80ms";
      "dup=3:rounds=2..8";
      "drop:rounds=5..";
    ];
  let err s =
    match Faults.rule_of_string s with
    | Ok _ -> Alcotest.failf "%S should be rejected" s
    | Error _ -> ()
  in
  List.iter err [ ""; "explode"; "drop=x"; "drop:kind"; "delay=80ms..10ms" ];
  (match Faults.partition_of_string "0,1,2|3,4:until=2s" with
  | Ok p ->
      Alcotest.(check int) "heal" (Time.s 2.) p.Faults.heal_at;
      Alcotest.(check int) "groups" 2 (List.length p.Faults.groups)
  | Error e -> Alcotest.failf "partition should parse: %s" e);
  (match Faults.partition_of_string "0,1,2" with
  | Ok _ -> Alcotest.fail "single group should be rejected"
  | Error _ -> ());
  match Faults.mute_of_string "3:round=10" with
  | Ok m ->
      Alcotest.(check int) "node" 3 m.Faults.node;
      Alcotest.(check int) "round" 10 m.Faults.after_round
  | Error e -> Alcotest.failf "mute should parse: %s" e

(* ------------------------------------------------------------------ *)
(* Determinism: an adversarial run replays byte-identically. *)

let test_adversarial_replay_deterministic () =
  let run () =
    let plan =
      plan_exn
        ~rules:[ "drop=0.3:kind=echo"; "delay=5ms..25ms:kind=pull_request" ]
        ~partitions:[ "1,3|5,7:until=100ms" ] ()
    in
    let w = make_world ~byzantine:[ 0 ] ~plan Rbc.Tribe_bracha in
    Adversary.run ~sender:0 ~n:10 ~clan ~protocol:Rbc.Tribe_bracha ~net:w.net
      ~round:1
      (Adversary.Withhold { value = "replay"; reveal = 3 });
    Engine.run ~until:(Time.s 30.) w.engine;
    ( List.sort compare
        (List.map
           (fun (t, me, o) ->
             ( t,
               me,
               match o with
               | Rbc.Value v -> "v:" ^ v
               | Rbc.Digest_only d -> "d:" ^ Digest32.to_raw d ))
           !(w.deliveries)),
      Net.total_bytes w.net,
      Net.total_messages w.net )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical traces" true (a = b)

(* ------------------------------------------------------------------ *)
(* Runner integration: full SMR under partition + loss still agrees and
   commits once the scenario heals. *)

let test_runner_with_fault_plan () =
  let plan =
    plan_exn
      ~rules:[ "drop=0.2:kind=val:until=3s" ]
      ~partitions:[ "0,1,2,3,4|5,6,7,8,9:until=1s" ] ()
  in
  let r =
    Runner.run
      {
        Runner.default_spec with
        n = 10;
        duration = Time.s 6.;
        warmup = Time.s 3.;
        txns_per_proposal = 100;
        txn_scale = 10;
        topology = `Uniform 10.0;
        fault_plan = plan;
      }
  in
  Alcotest.(check bool) "agreement holds" true r.agreement;
  Alcotest.(check bool) "commits after healing" true (r.committed_txns > 0)

(* Sparse edges keep agreement under the same fault DSL: the leader of a
   few rounds is muted and a partition splits the network for a second.
   Sparse vertices carry O(k) parents, so this also checks the coverage
   rule (leader + link + sampled edges) holds up when the picked parents
   are the ones being disrupted. *)
let test_runner_sparse_with_fault_plan () =
  let plan =
    plan_exn
      ~mutes:[ "1:round=5" ]
      ~partitions:[ "0,1,2,3,4|5,6,7,8,9:until=1s" ] ()
  in
  let r =
    Runner.run
      {
        Runner.default_spec with
        n = 10;
        protocol = Runner.Sparse { k = 3 };
        duration = Time.s 6.;
        warmup = Time.s 3.;
        txns_per_proposal = 100;
        txn_scale = 10;
        topology = `Uniform 10.0;
        fault_plan = plan;
      }
  in
  Alcotest.(check bool) "agreement holds" true r.agreement;
  Alcotest.(check bool) "commits after healing" true (r.committed_txns > 0)

(* A mid-run partition leaves the faulted sparse run event-identical to the
   benign one until the split fires, so every commit made before [from=]
   must land in both chained-hash vectors: a non-trivial common prefix. *)
let test_runner_sparse_fault_commit_prefix () =
  let spec plan =
    {
      Runner.default_spec with
      n = 10;
      protocol = Runner.Sparse { k = 3 };
      duration = Time.s 8.;
      warmup = Time.s 2.;
      txns_per_proposal = 100;
      txn_scale = 10;
      topology = `Uniform 10.0;
      fault_plan = plan;
    }
  in
  let benign = Runner.run (spec Faults.empty) in
  let faulted =
    Runner.run
      (spec (plan_exn ~partitions:[ "0,1,2,3,4|5,6,7,8,9:from=4s:until=5s" ] ()))
  in
  Alcotest.(check bool) "benign agrees" true benign.agreement;
  Alcotest.(check bool) "faulted agrees" true faulted.agreement;
  let a = benign.commit_chain and b = faulted.commit_chain in
  let k = min (Array.length a) (Array.length b) in
  let common = ref 0 in
  (try
     for i = 0 to k - 1 do
       if a.(i) = b.(i) then incr common else raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool)
    (Printf.sprintf "common commit prefix (%d of %d/%d)" !common
       (Array.length a) (Array.length b))
    true (!common > 0)

(* Installing an empty-plan injector is the caller's job to avoid; the
   Runner skips it entirely, so benign specs consume no extra RNG draws
   and produce bit-identical results with and without the faults field. *)
let test_empty_plan_is_free () =
  let run plan =
    let r =
      Runner.run
        {
          Runner.default_spec with
          n = 10;
          duration = Time.s 4.;
          warmup = Time.s 1.;
          txns_per_proposal = 50;
          txn_scale = 10;
          topology = `Uniform 10.0;
          fault_plan = plan;
        }
    in
    (r.committed_txns, r.rounds, r.bytes_total)
  in
  Alcotest.(check bool) "benign runs identical" true
    (run Faults.empty = run (plan_exn ()))

(* ------------------------------------------------------------------ *)
(* Adversary role assignment: the value-entitled counter is scoped to one
   invocation's arm, so reusing a behaviour hands the same recipients the
   same roles — and non-tribe Withhold stiffs outright, with no digest
   fallback (honest non-tribe nodes ignore digest-only VALs anyway). *)

let tap_world ?(n = 10) () =
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~one_way_ms:10.0 in
  let config = { Net.default_config with jitter = 0.0 } in
  let rng = Rng.create 7L in
  let net =
    Net.create ~engine ~topology ~config ~size:(Rbc.msg_size ~n) ~rng ()
  in
  let sends = ref [] in
  for me = 0 to n - 1 do
    Net.set_handler net me (fun ~src:_ msg -> sends := (me, msg) :: !sends)
  done;
  (engine, net, sends)

let test_adversary_roles_replay () =
  let engine, net, sends = tap_world () in
  let inject round =
    Adversary.run ~sender:0 ~n:10 ~clan ~protocol:Rbc.Tribe_bracha ~net ~round
      (Adversary.Equivocate_biased
         { value = "real"; decoy = "decoy"; decoys = 2 })
  in
  inject 1;
  inject 2;
  Engine.run ~until:(Time.s 1.) engine;
  let decoy_dsts round =
    List.filter_map
      (fun (dst, m) ->
        match m with
        | Rbc.Val { round = r; value = "decoy"; _ } when r = round -> Some dst
        | _ -> None)
      !sends
    |> List.sort compare
  in
  (* Entitled order is clan id order minus the sender: 2, 4, 6, 8. A
     counter leaking across invocations would hand round 2's decoys to
     nobody (or to later clan members). *)
  Alcotest.(check (list int)) "round 1 decoys" [ 2; 4 ] (decoy_dsts 1);
  Alcotest.(check (list int)) "round 2 decoys identical" [ 2; 4 ] (decoy_dsts 2)

let test_withhold_stiffs_non_tribe () =
  let engine, net, sends = tap_world () in
  Adversary.run ~sender:0 ~n:10 ~protocol:Rbc.Signed_two_round ~net ~round:1
    (Adversary.Withhold { value = "v"; reveal = 3 });
  Engine.run ~until:(Time.s 1.) engine;
  let vals =
    List.filter_map
      (fun (dst, m) -> match m with Rbc.Val _ -> Some dst | _ -> None)
      !sends
    |> List.sort compare
  in
  let digests =
    List.filter
      (fun (_, m) -> match m with Rbc.Val_digest _ -> true | _ -> false)
      !sends
  in
  Alcotest.(check (list int)) "first [reveal] ids get the value" [ 1; 2; 3 ] vals;
  Alcotest.(check int) "no digest fallback outside the tribe" 0
    (List.length digests);
  Alcotest.(check int) "stiffed parties get nothing at all" 3
    (List.length !sends)

let protocol_cases mk =
  List.map
    (fun (name, p) -> Alcotest.test_case name `Quick (mk p))
    [
      ("bracha", Rbc.Bracha);
      ("signed-2round", Rbc.Signed_two_round);
      ("tribe-bracha", Rbc.Tribe_bracha);
      ("tribe-signed", Rbc.Tribe_signed);
    ]

let tribe_cases mk =
  List.map
    (fun (name, p) -> Alcotest.test_case name `Quick (mk p))
    [ ("tribe-bracha", Rbc.Tribe_bracha); ("tribe-signed", Rbc.Tribe_signed) ]

let suites =
  [
    ( "faults.pull-liveness",
      tribe_cases test_pull_after_ready_only_agreement
      @ tribe_cases test_pull_retries_survive_transient_loss
      @ [
          Alcotest.test_case "non-clan never serves stray VAL" `Quick
            test_nonclan_never_serves_stray_val;
        ] );
    ("faults.equivocation", protocol_cases test_equivocating_sender);
    ( "faults.adversary-roles",
      [
        Alcotest.test_case "roles replay across invocations" `Quick
          test_adversary_roles_replay;
        Alcotest.test_case "non-tribe withhold stiffs outright" `Quick
          test_withhold_stiffs_non_tribe;
      ] );
    ( "faults.injector",
      [
        Alcotest.test_case "drop by kind+dst" `Quick test_drop_rule;
        Alcotest.test_case "drop time window" `Quick test_drop_probability_and_window;
        Alcotest.test_case "drop round window" `Quick test_round_window_rule;
        Alcotest.test_case "delay" `Quick test_delay_rule;
        Alcotest.test_case "duplicate" `Quick test_duplicate_rule;
        Alcotest.test_case "partition buffers until heal" `Quick
          test_partition_buffers_until_heal;
        Alcotest.test_case "permanent partition drops" `Quick
          test_permanent_partition_drops;
        Alcotest.test_case "mute after time" `Quick test_mute_after_time;
        Alcotest.test_case "mute after round" `Quick test_mute_after_round;
        Alcotest.test_case "DSL parsing" `Quick test_dsl_parses;
      ] );
    ( "faults.determinism",
      [
        Alcotest.test_case "adversarial replay identical" `Quick
          test_adversarial_replay_deterministic;
        Alcotest.test_case "empty plan is free" `Quick test_empty_plan_is_free;
      ] );
    ( "faults.runner",
      [
        Alcotest.test_case "partition + loss: agree and commit" `Quick
          test_runner_with_fault_plan;
        Alcotest.test_case "sparse: muted leader + partition" `Slow
          test_runner_sparse_with_fault_plan;
        Alcotest.test_case "sparse: faulted chain is a prefix" `Slow
          test_runner_sparse_fault_commit_prefix;
      ] );
  ]
