(* Worker pool: result ordering, exception propagation, CLANBFT_JOBS
   parsing, and the determinism contract that the parallel bench relies on
   — identical Runner results at every pool width. *)

open Clanbft
module Pool = Util.Pool

(* ------------------------------------------------------------------ *)
(* map semantics *)

let test_map_ordering () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 100 Fun.id in
      (* Uneven job cost, so completion order differs from input order. *)
      let f i =
        let acc = ref 0 in
        for k = 1 to (i mod 7) * 10_000 do
          acc := !acc + k
        done;
        ignore !acc;
        i * i
      in
      let ys = Pool.map pool f xs in
      Alcotest.(check (array int)) "results in input order"
        (Array.map (fun i -> i * i) xs)
        ys)

let test_map_empty_and_inline () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map pool (fun x -> x) [||]));
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int)) "jobs=1 inline" [ 2; 4; 6 ]
        (Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let ran = Array.make 10 false in
      let f i =
        ran.(i) <- true;
        if i = 3 || i = 7 then failwith (string_of_int i);
        i
      in
      (match Pool.map pool f (Array.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          Alcotest.(check string) "lowest-index failure wins" "3" msg);
      (* All jobs still ran to completion despite the failures. *)
      Alcotest.(check bool) "all jobs ran" true (Array.for_all Fun.id ran);
      (* The pool survives a failing batch. *)
      Alcotest.(check (array int)) "pool reusable after failure" [| 0; 1; 2 |]
        (Pool.map pool Fun.id [| 0; 1; 2 |]))

let test_shutdown_rejects_map () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool Fun.id [| 1 |]))

(* ------------------------------------------------------------------ *)
(* CLANBFT_JOBS parsing *)

let with_env value f =
  let old = Sys.getenv_opt "CLANBFT_JOBS" in
  Unix.putenv "CLANBFT_JOBS" value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "CLANBFT_JOBS" (Option.value old ~default:""))
    f

let test_default_jobs_env () =
  with_env "3" (fun () ->
      Alcotest.(check int) "CLANBFT_JOBS=3" 3 (Pool.default_jobs ()));
  with_env "" (fun () ->
      Alcotest.(check bool) "empty falls back to recommended" true
        (Pool.default_jobs () >= 1));
  with_env "zero" (fun () ->
      Alcotest.(check bool) "non-numeric rejected" true
        (match Pool.default_jobs () with
        | _ -> false
        | exception Invalid_argument _ -> true));
  with_env "0" (fun () ->
      Alcotest.(check bool) "zero rejected" true
        (match Pool.default_jobs () with
        | _ -> false
        | exception Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)
(* Determinism across pool widths: the property the parallel bench's
   byte-identical stdout rests on. Same specs, jobs=1 vs jobs=4 — every
   field of every result must match exactly (floats bitwise). *)

let sweep_specs () =
  [| 20; 40; 60 |]
  |> Array.map (fun load ->
         {
           Runner.default_spec with
           n = 8;
           protocol = Runner.Single_clan { nc = 5 };
           txns_per_proposal = load;
           duration = Sim.Time.s 2.;
           warmup = Sim.Time.ms 500.;
           seed = Int64.of_int (1000 + load);
         })

let check_results_equal (a : Runner.result array) b =
  Alcotest.(check int) "same count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i (ra : Runner.result) ->
      let rb : Runner.result = b.(i) in
      Alcotest.(check string) "label" ra.label rb.label;
      Alcotest.(check int) "committed" ra.committed_txns rb.committed_txns;
      Alcotest.(check int) "events" ra.events rb.events;
      Alcotest.(check int) "rounds" ra.rounds rb.rounds;
      Alcotest.(check int) "bytes" ra.bytes_total rb.bytes_total;
      Alcotest.(check bool) "fingerprint" true
        (ra.commit_fingerprint = rb.commit_fingerprint);
      Alcotest.(check bool) "throughput bitwise" true
        (Int64.equal
           (Int64.bits_of_float ra.throughput_ktps)
           (Int64.bits_of_float rb.throughput_ktps));
      Alcotest.(check bool) "latency bitwise" true
        (Int64.equal
           (Int64.bits_of_float ra.latency_mean_ms)
           (Int64.bits_of_float rb.latency_mean_ms)))
    a

let test_run_many_width_independent () =
  let seq =
    Pool.with_pool ~jobs:1 (fun pool ->
        Runner.run_many ~pool (sweep_specs ()))
  in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        Runner.run_many ~pool (sweep_specs ()))
  in
  check_results_equal seq par

let suites =
  [
    ( "util.pool",
      [
        Alcotest.test_case "map ordering" `Quick test_map_ordering;
        Alcotest.test_case "empty / jobs=1 inline" `Quick test_map_empty_and_inline;
        Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        Alcotest.test_case "shutdown rejects map" `Quick test_shutdown_rejects_map;
        Alcotest.test_case "CLANBFT_JOBS parsing" `Quick test_default_jobs_env;
        Alcotest.test_case "run_many width-independent" `Slow
          test_run_many_width_independent;
      ] );
  ]
