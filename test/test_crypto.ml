open Clanbft.Crypto
module Bitset = Clanbft.Util.Bitset

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* SHA-256: NIST / RFC 6234 vectors *)

let nist_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_sha_vectors () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Sha256.hex_of_string input))
    nist_vectors

let test_sha_million_a () =
  Alcotest.(check string) "1M x 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex_of_string (String.make 1_000_000 'a'))

let test_sha_block_boundaries () =
  (* Lengths straddling the 64-byte block and the 55/56-byte padding edge. *)
  List.iter
    (fun len ->
      let s = String.init len (fun i -> Char.chr (i land 0xff)) in
      let ctx = Sha256.init () in
      Sha256.feed_string ctx s;
      Alcotest.(check string)
        (Printf.sprintf "len %d" len)
        (Clanbft.Util.Hex.encode (Sha256.digest_string s))
        (Clanbft.Util.Hex.encode (Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 127; 128; 129; 1000 ]

let test_sha_finalize_twice () =
  let ctx = Sha256.init () in
  Sha256.feed_string ctx "x";
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Sha256: context already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

let prop_sha_incremental =
  QCheck.Test.make ~name:"incremental feeding equals one-shot" ~count:200
    QCheck.(pair string string)
    (fun (a, b) ->
      let ctx = Sha256.init () in
      Sha256.feed_string ctx a;
      Sha256.feed_string ctx b;
      String.equal (Sha256.finalize ctx) (Sha256.digest_string (a ^ b)))

let prop_sha_chunked =
  QCheck.Test.make ~name:"byte-at-a-time equals one-shot" ~count:50
    QCheck.(string_of_size (QCheck.Gen.int_range 0 300))
    (fun s ->
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed_string ctx (String.make 1 c)) s;
      String.equal (Sha256.finalize ctx) (Sha256.digest_string s))

(* ------------------------------------------------------------------ *)
(* Digest32 *)

let test_digest_basics () =
  let d = Digest32.hash_string "hello" in
  Alcotest.(check int) "raw size" 32 (String.length (Digest32.to_raw d));
  Alcotest.(check int) "hex size" 64 (String.length (Digest32.to_hex d));
  Alcotest.(check string) "short prefix" (String.sub (Digest32.to_hex d) 0 8) (Digest32.short d);
  Alcotest.(check bool) "self equal" true (Digest32.equal d d);
  Alcotest.(check bool) "zero distinct" false (Digest32.equal d Digest32.zero)

let test_digest_of_raw_validation () =
  Alcotest.check_raises "wrong length" (Invalid_argument "Digest32.of_raw: need 32 bytes")
    (fun () -> ignore (Digest32.of_raw "short"))

let test_digest_table () =
  let tbl = Digest32.Tbl.create 4 in
  let a = Digest32.hash_string "a" and b = Digest32.hash_string "b" in
  Digest32.Tbl.replace tbl a 1;
  Digest32.Tbl.replace tbl b 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Digest32.Tbl.find_opt tbl a);
  Alcotest.(check (option int)) "find b" (Some 2) (Digest32.Tbl.find_opt tbl b)

(* ------------------------------------------------------------------ *)
(* Keychain *)

let kc = Keychain.create ~seed:77L ~n:10

let test_sign_verify () =
  let s = Keychain.sign kc ~signer:3 "message" in
  Alcotest.(check bool) "valid" true (Keychain.verify kc ~signer:3 "message" s);
  Alcotest.(check bool) "wrong signer" false (Keychain.verify kc ~signer:4 "message" s);
  Alcotest.(check bool) "wrong message" false (Keychain.verify kc ~signer:3 "other" s);
  Alcotest.(check bool) "forged" false (Keychain.verify kc ~signer:3 "message" Keychain.forge)

let test_sign_bad_signer () =
  Alcotest.check_raises "bad signer" (Invalid_argument "Keychain.sign: bad signer")
    (fun () -> ignore (Keychain.sign kc ~signer:10 "m"))

let test_keychains_independent () =
  let other = Keychain.create ~seed:78L ~n:10 in
  let s = Keychain.sign kc ~signer:0 "m" in
  Alcotest.(check bool) "cross-keychain fails" false (Keychain.verify other ~signer:0 "m" s)

let test_aggregate_valid () =
  let msg = "agg-message" in
  let shares = List.init 7 (fun i -> (i, Keychain.sign kc ~signer:i msg)) in
  match Keychain.aggregate kc ~msg shares with
  | None -> Alcotest.fail "aggregation failed"
  | Some agg ->
      Alcotest.(check bool) "verifies" true (Keychain.verify_aggregate kc ~msg agg);
      Alcotest.(check int) "signers" 7 (Bitset.cardinal (Keychain.signers agg));
      Alcotest.(check (list int)) "no faulty" [] (Keychain.find_faulty_signers kc ~msg agg)

let test_aggregate_detects_forgery () =
  let msg = "agg-forged" in
  let shares =
    (2, Keychain.forge) :: List.init 4 (fun i -> (i + 3, Keychain.sign kc ~signer:(i + 3) msg))
  in
  match Keychain.aggregate kc ~msg shares with
  | None -> Alcotest.fail "aggregation failed"
  | Some agg ->
      Alcotest.(check bool) "fails verification" false (Keychain.verify_aggregate kc ~msg agg);
      Alcotest.(check (list int)) "culprit found" [ 2 ]
        (Keychain.find_faulty_signers kc ~msg agg)

let test_aggregate_rejects_bad_signer () =
  Alcotest.(check bool) "out-of-range signer" true
    (Keychain.aggregate kc ~msg:"m" [ (42, Keychain.forge) ] = None)

let test_aggregate_rejects_duplicates () =
  let s = Keychain.sign kc ~signer:1 "m" in
  Alcotest.(check bool) "duplicate signer" true
    (Keychain.aggregate kc ~msg:"m" [ (1, s); (1, s) ] = None)

let test_aggregate_wire_roundtrip () =
  let msg = "wire" in
  let shares = List.init 5 (fun i -> (i, Keychain.sign kc ~signer:i msg)) in
  let agg = Option.get (Keychain.aggregate kc ~msg shares) in
  let rebuilt =
    Keychain.aggregate_of_wire ~tag:(Keychain.aggregate_tag agg)
      ~signers:(Keychain.signers agg)
  in
  Alcotest.(check bool) "decoded aggregate verifies" true
    (Keychain.verify_aggregate kc ~msg rebuilt)

let test_sizes () =
  Alcotest.(check int) "signature" 64 Keychain.signature_size;
  Alcotest.(check int) "aggregate" (64 + 2) (Keychain.aggregate_size kc)

let test_sign_tags_distinct () =
  (* The simulated MAC is not SHA-256, so spot-check its tag quality: over
     a large pile of realistic signing strings, distinct (signer, message)
     pairs must yield distinct tags, cross-(signer|message) verification
     must fail, and tags must stay byte-stable over a long run. *)
  let kc = Keychain.create ~seed:911L ~n:4 in
  let reference =
    Array.init 64 (fun i ->
        Keychain.signature_to_raw
          (Keychain.sign kc ~signer:(i mod 4) (Printf.sprintf "pin-%d" i)))
  in
  let seen = Hashtbl.create 65536 in
  let total = 200_000 in
  let buf = Bytes.create 24 in
  for i = 0 to total - 1 do
    Bytes.set_int64_le buf 0 (Int64.of_int i);
    Bytes.set_int64_le buf 8 (Int64.of_int (i * 31));
    Bytes.set_int64_le buf 16 (Int64.of_int (i lxor 0x5DEECE66));
    let tag =
      Keychain.signature_to_raw
        (Keychain.sign kc ~signer:(i land 3) (Bytes.to_string buf))
    in
    if Hashtbl.mem seen tag then Alcotest.fail "tag collision";
    Hashtbl.replace seen tag ()
  done;
  (* Signatures (and hence verify) are byte-stable across the run. *)
  Array.iteri
    (fun i expected ->
      let msg = Printf.sprintf "pin-%d" i in
      let s = Keychain.sign kc ~signer:(i mod 4) msg in
      Alcotest.(check string) "stable over run" expected
        (Keychain.signature_to_raw s);
      Alcotest.(check bool) "verifies" true
        (Keychain.verify kc ~signer:(i mod 4) msg s);
      Alcotest.(check bool) "other signer rejects" false
        (Keychain.verify kc ~signer:((i + 1) mod 4) msg s))
    reference

let prop_sign_cache_coherent =
  QCheck.Test.make ~name:"sign is deterministic" ~count:100
    QCheck.(pair (int_bound 9) string)
    (fun (signer, msg) ->
      let s1 = Keychain.sign kc ~signer msg in
      let s2 = Keychain.sign kc ~signer msg in
      String.equal (Keychain.signature_to_raw s1) (Keychain.signature_to_raw s2)
      && Keychain.verify kc ~signer msg s1)

let suites =
  [
    ( "crypto.sha256",
      [
        Alcotest.test_case "NIST vectors" `Quick test_sha_vectors;
        Alcotest.test_case "million a" `Slow test_sha_million_a;
        Alcotest.test_case "block boundaries" `Quick test_sha_block_boundaries;
        Alcotest.test_case "finalize twice" `Quick test_sha_finalize_twice;
        qtest prop_sha_incremental;
        qtest prop_sha_chunked;
      ] );
    ( "crypto.digest32",
      [
        Alcotest.test_case "basics" `Quick test_digest_basics;
        Alcotest.test_case "of_raw validation" `Quick test_digest_of_raw_validation;
        Alcotest.test_case "hashtable" `Quick test_digest_table;
      ] );
    ( "crypto.keychain",
      [
        Alcotest.test_case "sign/verify" `Quick test_sign_verify;
        Alcotest.test_case "bad signer" `Quick test_sign_bad_signer;
        Alcotest.test_case "keychains independent" `Quick test_keychains_independent;
        Alcotest.test_case "aggregate valid" `Quick test_aggregate_valid;
        Alcotest.test_case "aggregate forgery" `Quick test_aggregate_detects_forgery;
        Alcotest.test_case "aggregate bad signer" `Quick test_aggregate_rejects_bad_signer;
        Alcotest.test_case "aggregate duplicates" `Quick test_aggregate_rejects_duplicates;
        Alcotest.test_case "aggregate wire roundtrip" `Quick test_aggregate_wire_roundtrip;
        Alcotest.test_case "wire sizes" `Quick test_sizes;
        Alcotest.test_case "sign tags distinct" `Slow test_sign_tags_distinct;
        qtest prop_sign_cache_coherent;
      ] );
  ]
