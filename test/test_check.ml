(* Schedule-exploration checker (docs/CHECKING.md): engine delivery-choice
   points, schedule persistence, exhaustive and random-walk exploration,
   counterexample minimization and deterministic replay. *)

open Clanbft
open Clanbft.Sim
module S = Check.Schedule
module H = Check.Harness
module E = Check.Explore

(* ------------------------------------------------------------------ *)
(* Engine: delivery-choice points *)

let test_choice_pooling () =
  let engine = Engine.create () in
  Engine.set_choice_mode engine true;
  let fired = ref [] in
  Engine.schedule_choice_at engine 5 ~src:0 ~dst:1 ~tag:"a" (fun () -> fired := 5 :: !fired);
  Engine.schedule_choice_at engine 9 ~src:1 ~dst:0 ~tag:"b" (fun () -> fired := 9 :: !fired);
  Alcotest.(check int) "both parked" 2 (Engine.choice_count engine);
  Engine.run engine;
  Alcotest.(check (list int)) "run fires nothing pooled" [] !fired;
  let ids = List.map (fun c -> c.Engine.id) (Engine.choices engine) in
  Alcotest.(check (list int)) "stable creation-order ids" [ 0; 1 ] ids;
  Engine.fire_choice engine 1;
  Engine.fire_choice engine 0;
  Alcotest.(check (list int)) "fired in chosen order" [ 5; 9 ] !fired;
  Alcotest.(check int) "pool drained" 0 (Engine.choice_count engine)

let test_choice_unknown_id () =
  let engine = Engine.create () in
  Engine.set_choice_mode engine true;
  Engine.schedule_choice_at engine 1 ~src:0 ~dst:1 ~tag:"a" (fun () -> ());
  Engine.fire_choice engine 0;
  Alcotest.check_raises "double fire"
    (Invalid_argument "Engine.fire_choice: unknown or already-fired choice")
    (fun () -> Engine.fire_choice engine 0)

let test_choice_mode_off_is_calendar () =
  (* With choice mode off, the choice entry points must behave exactly
     like plain scheduling: same firing order, nothing pooled. *)
  let engine = Engine.create () in
  let order = ref [] in
  Engine.schedule_choice_at engine 7 ~src:0 ~dst:1 ~tag:"b" (fun () -> order := "b" :: !order);
  Engine.schedule_at engine 3 (fun () -> order := "a" :: !order);
  Engine.run engine;
  Alcotest.(check (list string)) "calendar order" [ "a"; "b" ] (List.rev !order);
  Alcotest.(check int) "nothing pooled" 0 (Engine.choice_count engine)

let test_small_ring_equivalence () =
  (* A tiny ring must produce the same execution as the default one:
     far-future events overflow to the heap but fire at the same times. *)
  let run bits =
    let engine = Engine.create ?ring_bits:bits () in
    let log = ref [] in
    let ev t = Engine.schedule_at engine t (fun () -> log := (t, Engine.now engine) :: !log) in
    List.iter ev [ 10; 100_000; 3; 5_000_000; 42 ];
    Engine.run engine;
    List.rev !log
  in
  Alcotest.(check (list (pair int int)))
    "ring_bits=6 == default" (run None) (run (Some 6))

(* ------------------------------------------------------------------ *)
(* Schedule files *)

let test_schedule_round_trip () =
  let path = Filename.temp_file "clanbft_sched" ".txt" in
  let actions = [ S.Deliver 3; S.Step; S.Crash 2; S.Deliver 0; S.Recover 2 ] in
  let meta = [ ("model", "rbc-tribe-bracha"); ("n", "4") ] in
  S.save ~path ~meta ~notes:[ "val 0->1"; ""; ""; "echo 1->2"; "" ] actions;
  (match S.load path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok (meta', actions') ->
      Alcotest.(check (list (pair string string))) "meta" meta meta';
      Alcotest.(check bool) "actions" true (actions = actions'));
  Sys.remove path

let test_schedule_bad_line () =
  let path = Filename.temp_file "clanbft_sched" ".txt" in
  let oc = open_out path in
  output_string oc "# clanbft/check-schedule/v1\ndeliver twelve\n";
  close_out oc;
  (match S.load path with
  | Ok _ -> Alcotest.fail "corrupt schedule accepted"
  | Error _ -> ());
  Sys.remove path

let test_spec_meta_round_trip () =
  let spec =
    { H.default_spec with H.adversary = H.Collude; late_join = true; crashes = 2 }
  in
  match H.spec_of_meta (H.spec_meta spec) with
  | Error e -> Alcotest.failf "spec_of_meta: %s" e
  | Ok spec' -> Alcotest.(check bool) "spec round-trips" true (spec = spec')

(* ------------------------------------------------------------------ *)
(* Exploration *)

let spec_rbc p rounds adversary =
  { H.default_spec with H.model = H.Rbc p; rounds; adversary }

let test_exhaustive_honest () =
  (* One round, both tribe families: every reordering within the budget
     must satisfy agreement, validity, no-equivocation and totality. *)
  List.iter
    (fun p ->
      let r = E.exhaustive (spec_rbc p 1 H.No_adversary) in
      Alcotest.(check bool) "no violation" true (r.E.violation = None);
      Alcotest.(check bool) "explored >1 run" true (r.E.stats.E.runs > 1);
      Alcotest.(check int) "no truncation" 0 r.E.stats.E.truncated)
    [ Rbc.Tribe_bracha; Rbc.Tribe_signed ]

let test_exhaustive_equivocate_safe () =
  (* f=1 equivocating sender: within the fault model, so every schedule
     must still be safe. *)
  let r = E.exhaustive (spec_rbc Rbc.Tribe_signed 1 H.Equivocate) in
  Alcotest.(check bool) "no violation" true (r.E.violation = None)

let test_exhaustive_collude_violates () =
  (* Two byz nodes against f=1: outside the fault model, the checker
     must find an agreement violation and minimize it. *)
  let spec = spec_rbc Rbc.Tribe_bracha 1 H.Collude in
  let r = E.exhaustive spec in
  (match r.E.violation with
  | None -> Alcotest.fail "collude schedule not found"
  | Some v -> Alcotest.(check string) "invariant" "agreement" v.H.invariant);
  let small = E.minimize spec r.E.schedule in
  Alcotest.(check bool) "minimized is no longer" true
    (List.length small <= List.length r.E.schedule);
  (* The minimized schedule must still reproduce the same invariant. *)
  let run = E.run_schedule spec small in
  (match run.E.run_violation with
  | None -> Alcotest.fail "minimized schedule lost the violation"
  | Some v -> Alcotest.(check string) "same invariant" "agreement" v.H.invariant)

let test_replay_identical () =
  (* Two independent replays of one schedule end in identical states and
     execute identical action sequences. *)
  let spec = spec_rbc Rbc.Tribe_signed 1 H.Collude in
  let r = E.exhaustive spec in
  let sched = E.minimize spec r.E.schedule in
  let a = E.run_schedule spec sched and b = E.run_schedule spec sched in
  Alcotest.(check bool) "same executed" true (a.E.executed = b.E.executed);
  Alcotest.(check string) "same state"
    (H.state_line a.E.world) (H.state_line b.E.world);
  Alcotest.(check bool) "same notes" true (a.E.notes = b.E.notes)

let test_walks_deterministic () =
  let spec = spec_rbc Rbc.Tribe_bracha 1 H.No_adversary in
  let a = E.walks ~seed:42L ~count:20 spec in
  let b = E.walks ~seed:42L ~count:20 spec in
  Alcotest.(check bool) "no violation" true (a.E.violation = None);
  Alcotest.(check int) "same transitions" a.E.stats.E.transitions b.E.stats.E.transitions;
  Alcotest.(check int) "same depth" a.E.stats.E.max_depth b.E.stats.E.max_depth

let test_late_join_totality () =
  (* Canonical run with the late-join hook: node n-1 loses its queued
     traffic, rejoins via request_sync, and totality must still hold. *)
  let spec = { (spec_rbc Rbc.Tribe_signed 1 H.No_adversary) with H.late_join = true } in
  let run = E.run_schedule spec [] in
  Alcotest.(check bool) "no error" true (run.E.error = None);
  Alcotest.(check bool) "no violation" true (run.E.run_violation = None)

let test_crash_budget () =
  let spec = { (spec_rbc Rbc.Tribe_bracha 1 H.No_adversary) with H.crashes = 1 } in
  let r = E.exhaustive spec in
  Alcotest.(check bool) "no violation" true (r.E.violation = None)

let test_sailfish_walks () =
  let spec = { H.default_spec with H.model = H.Sailfish; rounds = 4 } in
  let r = E.walks ~max_actions:250 ~seed:7L ~count:5 spec in
  Alcotest.(check bool) "no violation" true (r.E.violation = None);
  (* Sailfish generates rounds forever; every walk hits the depth cap. *)
  Alcotest.(check int) "all truncated" 5 r.E.stats.E.truncated

let test_sailfish_sparse_walks () =
  (* Same walk harness over sparse edges: vertices carry the sampled-parent
     set instead of all 2f+1, and the commit invariants must hold anyway. *)
  let spec =
    { H.default_spec with H.model = H.Sailfish; rounds = 4; sparse_k = Some 2 }
  in
  let r = E.walks ~max_actions:250 ~seed:7L ~count:5 spec in
  Alcotest.(check bool) "no violation" true (r.E.violation = None);
  Alcotest.(check int) "all truncated" 5 r.E.stats.E.truncated

let test_sparse_spec_meta_round_trip () =
  let spec =
    { H.default_spec with H.model = H.Sailfish; rounds = 3; sparse_k = Some 3 }
  in
  match H.spec_of_meta (H.spec_meta spec) with
  | Error e -> Alcotest.failf "spec_of_meta: %s" e
  | Ok spec' -> Alcotest.(check bool) "sparse spec round-trips" true (spec = spec')

let test_sailfish_grief_exhaustive () =
  (* Timeout-edge proposal delay is inside the fault model: every
     interleaving of the held proposals against the timeout machinery
     (within the budget) must keep the commit invariants. *)
  let spec =
    { H.default_spec with H.model = H.Sailfish; rounds = 3; adversary = H.Grief }
  in
  let r = E.exhaustive ~delay_budget:1 ~window:2 ~max_actions:120 spec in
  Alcotest.(check bool) "no violation" true (r.E.violation = None);
  Alcotest.(check bool) "explored >1 run" true (r.E.stats.E.runs > 1);
  (* And the canonical run still commits: griefed leaders are slow, never
     skipped, so liveness survives the delay. *)
  let run = E.run_schedule ~max_actions:400 spec [] in
  Alcotest.(check bool) "no violation on canonical run" true
    (run.E.run_violation = None);
  let commits =
    try Scanf.sscanf (H.state_line run.E.world) "commits=%d" Fun.id
    with Scanf.Scan_failure _ | Failure _ -> -1
  in
  Alcotest.(check bool)
    (Printf.sprintf "canonical grief run commits (got %d)" commits)
    true (commits > 0)

let test_sailfish_grief_walks () =
  let spec =
    { H.default_spec with H.model = H.Sailfish; rounds = 4; adversary = H.Grief }
  in
  let r = E.walks ~max_actions:150 ~seed:29L ~count:2500 spec in
  Alcotest.(check bool) "no violation in 2500 walks" true (r.E.violation = None)

let test_grief_spec_meta_round_trip () =
  let spec =
    { H.default_spec with H.model = H.Sailfish; rounds = 3; adversary = H.Grief }
  in
  match H.spec_of_meta (H.spec_meta spec) with
  | Error e -> Alcotest.failf "spec_of_meta: %s" e
  | Ok spec' -> Alcotest.(check bool) "grief spec round-trips" true (spec = spec')

let test_dpor_prunes () =
  (* Sleep sets must only remove redundant interleavings: same verdict,
     strictly fewer transitions than the unpruned search. *)
  let spec = spec_rbc Rbc.Tribe_bracha 1 H.No_adversary in
  let on = E.exhaustive ~dpor:true spec in
  let off = E.exhaustive ~dpor:false spec in
  Alcotest.(check bool) "same verdict" true
    ((on.E.violation = None) = (off.E.violation = None));
  Alcotest.(check bool) "dpor explores strictly less" true
    (on.E.stats.E.transitions < off.E.stats.E.transitions)

let suites =
  [
    ( "check.engine",
      [
        Alcotest.test_case "choice pooling + fire order" `Quick test_choice_pooling;
        Alcotest.test_case "unknown choice id raises" `Quick test_choice_unknown_id;
        Alcotest.test_case "choice mode off == calendar" `Quick test_choice_mode_off_is_calendar;
        Alcotest.test_case "small ring == default ring" `Quick test_small_ring_equivalence;
      ] );
    ( "check.schedule",
      [
        Alcotest.test_case "save/load round-trip" `Quick test_schedule_round_trip;
        Alcotest.test_case "corrupt line rejected" `Quick test_schedule_bad_line;
        Alcotest.test_case "spec meta round-trip" `Quick test_spec_meta_round_trip;
        Alcotest.test_case "sparse spec meta round-trip" `Quick
          test_sparse_spec_meta_round_trip;
      ] );
    ( "check.explore",
      [
        Alcotest.test_case "exhaustive honest is safe" `Quick test_exhaustive_honest;
        Alcotest.test_case "equivocating sender stays safe" `Quick test_exhaustive_equivocate_safe;
        Alcotest.test_case "collusion found + minimized" `Quick test_exhaustive_collude_violates;
        Alcotest.test_case "replay is deterministic" `Quick test_replay_identical;
        Alcotest.test_case "walks are seed-deterministic" `Quick test_walks_deterministic;
        Alcotest.test_case "late join keeps totality" `Quick test_late_join_totality;
        Alcotest.test_case "crash/recover schedules safe" `Quick test_crash_budget;
        Alcotest.test_case "sailfish walks stay consistent" `Quick test_sailfish_walks;
        Alcotest.test_case "sparse sailfish walks stay consistent" `Quick
          test_sailfish_sparse_walks;
        Alcotest.test_case "grief schedules keep invariants" `Quick
          test_sailfish_grief_exhaustive;
        Alcotest.test_case "grief survives 2500 walks" `Slow
          test_sailfish_grief_walks;
        Alcotest.test_case "grief spec meta round-trip" `Quick
          test_grief_spec_meta_round_trip;
        Alcotest.test_case "sleep sets prune soundly" `Quick test_dpor_prunes;
      ] );
  ]
