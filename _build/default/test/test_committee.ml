open Clanbft
module Analysis = Committee
module Nat = Bigint.Nat
module Rat = Bigint.Rat

let qtest = QCheck_alcotest.to_alcotest
let nat = Alcotest.testable Nat.pp Nat.equal

(* ------------------------------------------------------------------ *)
(* Binomials *)

let test_binomial_small () =
  Alcotest.check nat "C(5,2)" (Nat.of_int 10) (Analysis.binomial 5 2);
  Alcotest.check nat "C(10,0)" Nat.one (Analysis.binomial 10 0);
  Alcotest.check nat "C(10,10)" Nat.one (Analysis.binomial 10 10);
  Alcotest.check nat "C(10,11)" Nat.zero (Analysis.binomial 10 11);
  Alcotest.check nat "C(10,-1)" Nat.zero (Analysis.binomial 10 (-1))

let test_binomial_large () =
  (* C(100, 50), a 30-digit number, against the known value. *)
  Alcotest.check nat "C(100,50)"
    (Nat.of_string "100891344545564193334812497256")
    (Analysis.binomial 100 50)

let prop_binomial_pascal =
  QCheck.Test.make ~name:"Pascal's rule" ~count:200
    QCheck.(pair (int_range 1 120) (int_range 0 120))
    (fun (n, k) ->
      let k = min k n in
      Nat.equal (Analysis.binomial (n + 1) k)
        (Nat.add (Analysis.binomial n k) (Analysis.binomial n (k - 1))))

let prop_binomial_symmetry =
  QCheck.Test.make ~name:"C(n,k) = C(n,n-k)" ~count:200
    QCheck.(pair (int_range 0 150) (int_range 0 150))
    (fun (n, k) ->
      let k = min k n in
      Nat.equal (Analysis.binomial n k) (Analysis.binomial n (n - k)))

(* ------------------------------------------------------------------ *)
(* Single-clan analysis *)

let test_fault_bounds () =
  Alcotest.(check int) "f at 100" 33 (Analysis.default_f 100);
  Alcotest.(check int) "f at 150" 49 (Analysis.default_f 150);
  Alcotest.(check int) "fc of 75" 37 (Analysis.max_clan_faults 75);
  Alcotest.(check int) "fc of 80" 39 (Analysis.max_clan_faults 80);
  Alcotest.(check int) "fc of 2" 0 (Analysis.max_clan_faults 2)

let test_single_clan_degenerate () =
  (* A clan of the whole tribe fails iff f >= majority — never, for 3f+1. *)
  let p = Analysis.single_clan_failure ~n:10 ~f:3 ~nc:10 in
  Alcotest.(check bool) "whole tribe never dishonest-majority" true (Rat.is_zero p)

let test_single_clan_certain_failure () =
  (* Clan of 1 drawn from a tribe with f Byzantine: failure prob = f/n. *)
  let p = Analysis.single_clan_failure ~n:10 ~f:3 ~nc:1 in
  Alcotest.(check bool) "f/n" true (Rat.equal p (Rat.of_ints 3 10))

let test_single_clan_paper_n500 () =
  (* §1 quotes nc=184 at n=500, f=166 for failure below 1e-9. Under the
     exact Eq. 1 tail (ties count as dishonest) the even size 184 sits just
     above 1e-9 while the odd 183 is below — adding a member to an odd clan
     only helps the adversary reach a tie. Pin both facts. *)
  let threshold = Rat.of_ints 1 1_000_000_000 in
  let p183 = Analysis.single_clan_failure ~n:500 ~f:166 ~nc:183 in
  let p184 = Analysis.single_clan_failure ~n:500 ~f:166 ~nc:184 in
  Alcotest.(check bool) "183 below 1e-9" true (Rat.compare p183 threshold <= 0);
  Alcotest.(check bool) "even parity penalty" true (Rat.compare p184 p183 > 0)

let test_min_clan_size_n500 () =
  (* Our exact Eq. 1 evaluation gives 183 as the true minimum at 1e-9 (the
     paper's Fig. 1 rounds up to 184; see EXPERIMENTS.md). *)
  let threshold = Rat.of_ints 1 1_000_000_000 in
  Alcotest.(check (option int)) "minimum" (Some 183)
    (Analysis.min_clan_size ~n:500 ~f:166 ~threshold ())

let test_min_clan_sizes_paper_operational () =
  (* §7 runs clans of 32/60/80 at n=50/100/150 with 1e-6; our exact minima
     must be consistent (<= paper sizes + small slack, and the paper sizes
     must satisfy the threshold at n=50..100). *)
  let threshold = Rat.of_ints 1 1_000_000 in
  List.iter
    (fun (n, expected_min) ->
      let f = Analysis.default_f n in
      Alcotest.(check (option int))
        (Printf.sprintf "n=%d" n)
        (Some expected_min)
        (Analysis.min_clan_size ~n ~f ~threshold ()))
    [ (50, 33); (100, 61); (150, 77) ]

let test_failure_monotone_in_nc () =
  let f = Analysis.default_f 100 in
  let prev = ref Rat.one in
  (* Compare odd sizes only: parity wiggles break strict monotonicity. *)
  List.iter
    (fun nc ->
      let p = Analysis.single_clan_failure ~n:100 ~f ~nc in
      Alcotest.(check bool) (Printf.sprintf "nc=%d decreases" nc) true
        (Rat.compare p !prev <= 0);
      prev := p)
    [ 11; 21; 31; 41; 51; 61 ]

(* ------------------------------------------------------------------ *)
(* Multi-clan analysis (§6.2) *)

let approx_sci p = Rat.to_float p

let test_multi_clan_concrete_150 () =
  (* §6.2: n=150, two clans of 75 -> 4.015e-6. *)
  let p = Analysis.multi_clan_failure ~n:150 ~f:(Analysis.default_f 150) ~q:2 ~nc:75 in
  Alcotest.(check bool) "4.015e-6" true (abs_float (approx_sci p -. 4.015e-6) < 0.01e-6)

let test_multi_clan_concrete_387 () =
  (* §6.2: n=387, three clans of 129 -> 1.11e-6. *)
  let p = Analysis.multi_clan_failure ~n:387 ~f:(Analysis.default_f 387) ~q:3 ~nc:129 in
  Alcotest.(check bool) "1.11e-6" true (abs_float (approx_sci p -. 1.11e-6) < 0.01e-6)

let test_multi_clan_q1_matches_single () =
  List.iter
    (fun (n, nc) ->
      let f = Analysis.default_f n in
      let a = Analysis.single_clan_failure ~n ~f ~nc in
      let b = Analysis.multi_clan_failure ~n ~f ~q:1 ~nc in
      Alcotest.(check bool) (Printf.sprintf "n=%d nc=%d" n nc) true (Rat.equal a b))
    [ (40, 11); (40, 25); (100, 40); (64, 32) ]

let test_multi_clan_more_clans_riskier () =
  (* Splitting the same tribe into more clans can only raise the failure
     probability (clans shrink). *)
  let n = 120 in
  let f = Analysis.default_f n in
  let p2 = Analysis.multi_clan_failure ~n ~f ~q:2 ~nc:60 in
  let p3 = Analysis.multi_clan_failure ~n ~f ~q:3 ~nc:40 in
  Alcotest.(check bool) "3 clans riskier than 2" true (Rat.compare p3 p2 > 0)

let test_multi_clan_monte_carlo () =
  (* Cross-check the exact Eq. 3-7 counting against empirical sampling of
     random partitions (which exercises [partition_random] too). n is small
     so the failure event is frequent enough to estimate. *)
  let n = 30 and q = 2 and nc = 15 in
  let f = Analysis.default_f n in
  let fc = Analysis.max_clan_faults nc in
  let exact = Rat.to_float (Analysis.multi_clan_failure ~n ~f ~q ~nc) in
  let rng = Util.Rng.create 123L in
  let trials = 20_000 in
  let bad = ref 0 in
  for _ = 1 to trials do
    let clans = Analysis.partition_random rng ~n ~q in
    let dishonest =
      Array.exists
        (fun clan ->
          (* Byzantine parties are ids 0..f-1 (exchangeable under a uniform
             random partition). *)
          Array.fold_left (fun acc i -> if i < f then acc + 1 else acc) 0 clan > fc)
        clans
    in
    if dishonest then incr bad
  done;
  let freq = float_of_int !bad /. float_of_int trials in
  let sigma = sqrt (exact *. (1.0 -. exact) /. float_of_int trials) in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.4f within 4 sigma of exact %.4f" freq exact)
    true
    (abs_float (freq -. exact) < (4.0 *. sigma) +. 1e-9)

let test_multi_clan_validation () =
  Alcotest.check_raises "q*nc > n" (Invalid_argument "Analysis: need 0 < q*nc <= n")
    (fun () -> ignore (Analysis.multi_clan_failure ~n:10 ~f:3 ~q:3 ~nc:4))

let prop_failure_probability_range =
  QCheck.Test.make ~name:"failure probabilities lie in [0,1]" ~count:100
    QCheck.(pair (int_range 4 60) (int_range 1 60))
    (fun (n, nc) ->
      let nc = min nc n in
      let f = Analysis.default_f n in
      let p = Analysis.single_clan_failure ~n ~f ~nc in
      Rat.compare p Rat.zero >= 0 && Rat.compare p Rat.one <= 0)

(* ------------------------------------------------------------------ *)
(* Elections *)

let test_elect_balanced () =
  let clan = Analysis.elect_balanced ~n:50 ~nc:10 in
  Alcotest.(check int) "size" 10 (Array.length clan);
  Alcotest.(check int) "first" 0 clan.(0);
  (* Region-balanced under round-robin placement: all residues mod 5 hit. *)
  let regions = Array.make 5 0 in
  Array.iter (fun i -> regions.(i mod 5) <- regions.(i mod 5) + 1) clan;
  Array.iter (fun c -> Alcotest.(check int) "two per region" 2 c) regions

let test_elect_random_properties () =
  let rng = Util.Rng.create 5L in
  let clan = Analysis.elect_random rng ~n:100 ~nc:30 in
  Alcotest.(check int) "size" 30 (Array.length clan);
  let sorted = Array.copy clan in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "sorted" sorted clan;
  let distinct = List.sort_uniq compare (Array.to_list clan) in
  Alcotest.(check int) "distinct" 30 (List.length distinct);
  Array.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 100)) clan

let test_partition_balanced () =
  let clans = Analysis.partition_balanced ~n:10 ~q:3 in
  Alcotest.(check int) "q clans" 3 (Array.length clans);
  let all = Array.to_list clans |> List.concat_map Array.to_list |> List.sort compare in
  Alcotest.(check (list int)) "exact partition" (List.init 10 (fun i -> i)) all;
  Alcotest.(check int) "sizes differ by <=1" 4 (Array.length clans.(0));
  Alcotest.(check int) "clan 2" 3 (Array.length clans.(2))

let test_partition_random () =
  let rng = Util.Rng.create 9L in
  let clans = Analysis.partition_random rng ~n:20 ~q:2 in
  let all = Array.to_list clans |> List.concat_map Array.to_list |> List.sort compare in
  Alcotest.(check (list int)) "partition" (List.init 20 (fun i -> i)) all;
  Alcotest.(check int) "balanced" 10 (Array.length clans.(0))

let suites =
  [
    ( "committee.binomial",
      [
        Alcotest.test_case "small values" `Quick test_binomial_small;
        Alcotest.test_case "C(100,50)" `Quick test_binomial_large;
        qtest prop_binomial_pascal;
        qtest prop_binomial_symmetry;
      ] );
    ( "committee.single-clan",
      [
        Alcotest.test_case "fault bounds" `Quick test_fault_bounds;
        Alcotest.test_case "whole-tribe clan" `Quick test_single_clan_degenerate;
        Alcotest.test_case "clan of one" `Quick test_single_clan_certain_failure;
        Alcotest.test_case "paper n=500 @1e-9" `Slow test_single_clan_paper_n500;
        Alcotest.test_case "min size n=500" `Slow test_min_clan_size_n500;
        Alcotest.test_case "min sizes vs paper (1e-6)" `Slow test_min_clan_sizes_paper_operational;
        Alcotest.test_case "monotone in nc" `Quick test_failure_monotone_in_nc;
        qtest prop_failure_probability_range;
      ] );
    ( "committee.multi-clan",
      [
        Alcotest.test_case "n=150 q=2 -> 4.015e-6" `Quick test_multi_clan_concrete_150;
        Alcotest.test_case "n=387 q=3 -> 1.11e-6" `Slow test_multi_clan_concrete_387;
        Alcotest.test_case "q=1 equals hypergeometric" `Quick test_multi_clan_q1_matches_single;
        Alcotest.test_case "more clans riskier" `Quick test_multi_clan_more_clans_riskier;
        Alcotest.test_case "Monte-Carlo cross-check" `Slow test_multi_clan_monte_carlo;
        Alcotest.test_case "validation" `Quick test_multi_clan_validation;
      ] );
    ( "committee.election",
      [
        Alcotest.test_case "balanced" `Quick test_elect_balanced;
        Alcotest.test_case "random" `Quick test_elect_random_properties;
        Alcotest.test_case "partition balanced" `Quick test_partition_balanced;
        Alcotest.test_case "partition random" `Quick test_partition_random;
      ] );
  ]
