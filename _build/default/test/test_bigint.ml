open Clanbft.Bigint

let qtest = QCheck_alcotest.to_alcotest
let nat = Alcotest.testable Nat.pp Nat.equal
let nat_arb = QCheck.map Nat.of_int (QCheck.int_bound 1_000_000)

(* ------------------------------------------------------------------ *)
(* Nat *)

let test_nat_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check (option int)) "roundtrip" (Some n) (Nat.to_int_opt (Nat.of_int n)))
    [ 0; 1; 42; 1 lsl 30; (1 lsl 30) - 1; 1 lsl 45; max_int ]

let test_nat_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (Nat.of_int (-1)))

let test_nat_big_roundtrip () =
  let s = "340282366920938463463374607431768211456" (* 2^128 *) in
  Alcotest.(check string) "decimal roundtrip" s (Nat.to_string (Nat.of_string s));
  Alcotest.check nat "2^128 by pow" (Nat.of_string s) (Nat.pow (Nat.of_int 2) 128)

let test_nat_to_int_overflow () =
  Alcotest.(check (option int)) "too big" None
    (Nat.to_int_opt (Nat.pow (Nat.of_int 2) 70))

let test_nat_sub_underflow () =
  Alcotest.check_raises "underflow" (Invalid_argument "Nat.sub: would be negative")
    (fun () -> ignore (Nat.sub (Nat.of_int 1) (Nat.of_int 2)))

let test_nat_divmod_int () =
  let q, r = Nat.divmod_int (Nat.of_string "1000000000000000000000") 7 in
  Alcotest.(check int) "rem" 6 r;
  Alcotest.check nat "q*7+r" (Nat.of_string "1000000000000000000000")
    (Nat.add (Nat.mul_int q 7) (Nat.of_int r))

let test_nat_divmod_big () =
  let a = Nat.of_string "123456789123456789123456789123456789" in
  let b = Nat.of_string "987654321987654321" in
  let q, r = Nat.divmod a b in
  Alcotest.check nat "a = q*b + r" a (Nat.add (Nat.mul q b) r);
  Alcotest.(check bool) "r < b" true (Nat.compare r b < 0)

let test_nat_divmod_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod (Nat.of_int 5) Nat.zero))

let test_nat_gcd_known () =
  Alcotest.check nat "gcd(48,36)=12" (Nat.of_int 12)
    (Nat.gcd (Nat.of_int 48) (Nat.of_int 36));
  Alcotest.check nat "gcd(0,x)=x" (Nat.of_int 9) (Nat.gcd Nat.zero (Nat.of_int 9))

let test_nat_bits () =
  Alcotest.(check int) "bits 0" 0 (Nat.bits Nat.zero);
  Alcotest.(check int) "bits 1" 1 (Nat.bits Nat.one);
  Alcotest.(check int) "bits 2^100" 101 (Nat.bits (Nat.pow (Nat.of_int 2) 100))

let test_nat_shift () =
  let x = Nat.of_string "12345678901234567890" in
  Alcotest.check nat "shl1 = *2" (Nat.mul_int x 2) (Nat.shift_left1 x);
  Alcotest.check nat "shr1 of shl1" x (Nat.shift_right1 (Nat.shift_left1 x));
  Alcotest.check nat "shift_left 64" (Nat.mul x (Nat.pow (Nat.of_int 2) 64))
    (Nat.shift_left x 64)

let test_nat_to_float () =
  Alcotest.(check (float 1e-6)) "small" 12345.0 (Nat.to_float (Nat.of_int 12345));
  let f, e = Nat.to_float_exp (Nat.pow (Nat.of_int 2) 1000) in
  Alcotest.(check (float 1e-9)) "mantissa of power of two" 1.0 f;
  Alcotest.(check int) "exponent" 1000 e

let prop_nat_add_oracle =
  QCheck.Test.make ~name:"nat add agrees with int" ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) ->
      Nat.to_int_opt (Nat.add (Nat.of_int a) (Nat.of_int b)) = Some (a + b))

let prop_nat_mul_oracle =
  QCheck.Test.make ~name:"nat mul agrees with int" ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      Nat.to_int_opt (Nat.mul (Nat.of_int a) (Nat.of_int b)) = Some (a * b))

let prop_nat_sub_oracle =
  QCheck.Test.make ~name:"nat sub agrees with int" ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) ->
      let hi = max a b and lo = min a b in
      Nat.to_int_opt (Nat.sub (Nat.of_int hi) (Nat.of_int lo)) = Some (hi - lo))

let prop_nat_divmod_invariant =
  QCheck.Test.make ~name:"divmod invariant on large operands" ~count:200
    QCheck.(pair nat_arb (pair nat_arb nat_arb))
    (fun (a, (b, c)) ->
      (* Build large operands from products of mediums. *)
      let x = Nat.add (Nat.mul a (Nat.mul b c)) b in
      let d = Nat.add (Nat.mul a b) Nat.one in
      let q, r = Nat.divmod x d in
      Nat.equal x (Nat.add (Nat.mul q d) r) && Nat.compare r d < 0)

let prop_nat_string_roundtrip =
  QCheck.Test.make ~name:"decimal string round-trips" ~count:200
    QCheck.(pair nat_arb nat_arb)
    (fun (a, b) ->
      let x = Nat.mul a (Nat.mul b b) in
      Nat.equal x (Nat.of_string (Nat.to_string x)))

let prop_nat_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
      let g = Nat.gcd (Nat.of_int a) (Nat.of_int b) in
      let _, r1 = Nat.divmod (Nat.of_int a) g in
      let _, r2 = Nat.divmod (Nat.of_int b) g in
      Nat.is_zero r1 && Nat.is_zero r2)

(* ------------------------------------------------------------------ *)
(* Rat *)

let rat = Alcotest.testable Rat.pp Rat.equal

let test_rat_normalisation () =
  Alcotest.check rat "2/4 = 1/2" (Rat.of_ints 1 2) (Rat.of_ints 2 4);
  Alcotest.(check bool) "num reduced" true
    (Nat.equal (Rat.num (Rat.of_ints 2 4)) Nat.one)

let test_rat_signs () =
  Alcotest.check rat "-1/2 = 1/-2" (Rat.of_ints (-1) 2) (Rat.of_ints 1 (-2));
  Alcotest.check rat "-1/-2 = 1/2" (Rat.of_ints 1 2) (Rat.of_ints (-1) (-2));
  Alcotest.(check bool) "zero not negative" false (Rat.is_negative (Rat.of_ints 0 (-5)))

let test_rat_arith () =
  Alcotest.check rat "1/3+1/6" (Rat.of_ints 1 2) (Rat.add (Rat.of_ints 1 3) (Rat.of_ints 1 6));
  Alcotest.check rat "1/2-1/3" (Rat.of_ints 1 6) (Rat.sub (Rat.of_ints 1 2) (Rat.of_ints 1 3));
  Alcotest.check rat "neg result" (Rat.of_ints (-1) 6) (Rat.sub (Rat.of_ints 1 3) (Rat.of_ints 1 2));
  Alcotest.check rat "2/3*3/4" (Rat.of_ints 1 2) (Rat.mul (Rat.of_ints 2 3) (Rat.of_ints 3 4));
  Alcotest.check rat "div" (Rat.of_ints 8 9) (Rat.div (Rat.of_ints 2 3) (Rat.of_ints 3 4))

let test_rat_compare () =
  Alcotest.(check int) "1/3 < 1/2" (-1) (Rat.compare (Rat.of_ints 1 3) (Rat.of_ints 1 2));
  Alcotest.(check int) "-1/2 < 1/3" (-1) (Rat.compare (Rat.of_ints (-1) 2) (Rat.of_ints 1 3));
  Alcotest.(check int) "equal" 0 (Rat.compare (Rat.of_ints 3 9) (Rat.of_ints 1 3))

let test_rat_pow2 () =
  Alcotest.check rat "2^3" (Rat.of_int 8) (Rat.pow2 3);
  Alcotest.check rat "2^-2" (Rat.of_ints 1 4) (Rat.pow2 (-2));
  Alcotest.(check bool) "2^-30 ~ 1e-9" true
    (abs_float (Rat.to_float (Rat.pow2 (-30)) -. 9.3132e-10) < 1e-13)

let test_rat_to_float_huge () =
  (* Both components individually overflow floats; the ratio must not. *)
  let huge = Nat.pow (Nat.of_int 10) 400 in
  let r = Rat.make (Nat.mul_int huge 3) (Nat.mul_int huge 4) in
  Alcotest.(check (float 1e-12)) "3/4" 0.75 (Rat.to_float r)

let test_rat_scientific () =
  Alcotest.(check string) "0.5" "5.000e-01" (Rat.to_scientific (Rat.of_ints 1 2));
  Alcotest.(check string) "zero" "0" (Rat.to_scientific Rat.zero);
  Alcotest.(check string) "negative" "-2.500e-01" (Rat.to_scientific (Rat.of_ints (-1) 4));
  Alcotest.(check string) "big" "1.000e+06" (Rat.to_scientific (Rat.of_int 1_000_000))

let test_rat_div_by_zero () =
  Alcotest.check_raises "div zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let prop_rat_float_oracle =
  QCheck.Test.make ~name:"rat arithmetic agrees with floats" ~count:300
    QCheck.(quad (int_range 1 1000) (int_range 1 1000) (int_range 1 1000) (int_range 1 1000))
    (fun (a, b, c, d) ->
      let r = Rat.add (Rat.of_ints a b) (Rat.of_ints c d) in
      let f = (float_of_int a /. float_of_int b) +. (float_of_int c /. float_of_int d) in
      abs_float (Rat.to_float r -. f) < 1e-9)

let prop_rat_compare_consistent =
  QCheck.Test.make ~name:"compare consistent with sub sign" ~count:300
    QCheck.(quad (int_range (-100) 100) (int_range 1 100) (int_range (-100) 100) (int_range 1 100))
    (fun (a, b, c, d) ->
      let x = Rat.of_ints a b and y = Rat.of_ints c d in
      let diff = Rat.sub x y in
      match Rat.compare x y with
      | 0 -> Rat.is_zero diff
      | n when n < 0 -> Rat.is_negative diff
      | _ -> (not (Rat.is_negative diff)) && not (Rat.is_zero diff))

let suites =
  [
    ( "bigint.nat",
      [
        Alcotest.test_case "of/to int" `Quick test_nat_of_to_int;
        Alcotest.test_case "negative of_int" `Quick test_nat_of_int_negative;
        Alcotest.test_case "big decimal roundtrip" `Quick test_nat_big_roundtrip;
        Alcotest.test_case "to_int overflow" `Quick test_nat_to_int_overflow;
        Alcotest.test_case "sub underflow" `Quick test_nat_sub_underflow;
        Alcotest.test_case "divmod_int" `Quick test_nat_divmod_int;
        Alcotest.test_case "divmod big" `Quick test_nat_divmod_big;
        Alcotest.test_case "divmod zero" `Quick test_nat_divmod_zero;
        Alcotest.test_case "gcd known" `Quick test_nat_gcd_known;
        Alcotest.test_case "bits" `Quick test_nat_bits;
        Alcotest.test_case "shifts" `Quick test_nat_shift;
        Alcotest.test_case "to_float" `Quick test_nat_to_float;
        qtest prop_nat_add_oracle;
        qtest prop_nat_mul_oracle;
        qtest prop_nat_sub_oracle;
        qtest prop_nat_divmod_invariant;
        qtest prop_nat_string_roundtrip;
        qtest prop_nat_gcd_divides;
      ] );
    ( "bigint.rat",
      [
        Alcotest.test_case "normalisation" `Quick test_rat_normalisation;
        Alcotest.test_case "signs" `Quick test_rat_signs;
        Alcotest.test_case "arithmetic" `Quick test_rat_arith;
        Alcotest.test_case "compare" `Quick test_rat_compare;
        Alcotest.test_case "pow2" `Quick test_rat_pow2;
        Alcotest.test_case "to_float huge" `Quick test_rat_to_float_huge;
        Alcotest.test_case "scientific" `Quick test_rat_scientific;
        Alcotest.test_case "div by zero" `Quick test_rat_div_by_zero;
        qtest prop_rat_float_oracle;
        qtest prop_rat_compare_consistent;
      ] );
  ]
