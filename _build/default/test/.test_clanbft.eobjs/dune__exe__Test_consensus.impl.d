test/test_consensus.ml: Alcotest Array Block Clanbft Config Digest32 Engine Hashtbl Keychain Latency_model List Msg Net Option Printf Sailfish String Time Topology Transaction Util Vertex
