test/test_sim.ml: Alcotest Array Clanbft Engine List Net QCheck QCheck_alcotest String Time Topology
