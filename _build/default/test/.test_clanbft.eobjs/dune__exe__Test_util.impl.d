test/test_util.ml: Alcotest Array Bitset Bytes Clanbft Hashtbl Heap Hex List QCheck QCheck_alcotest Rng Stats
