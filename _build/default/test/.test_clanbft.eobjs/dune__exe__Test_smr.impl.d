test/test_smr.ml: Alcotest Array Block Clanbft Client Config Digest32 Engine Execution Keychain List Mempool Msg Net Node Persist Printf QCheck QCheck_alcotest Runner Time Topology Transaction Util
