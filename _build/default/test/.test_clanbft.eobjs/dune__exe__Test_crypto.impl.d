test/test_crypto.ml: Alcotest Char Clanbft Digest32 Keychain List Option Printf QCheck QCheck_alcotest Sha256 String
