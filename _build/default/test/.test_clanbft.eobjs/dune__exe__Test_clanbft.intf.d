test/test_clanbft.mli:
