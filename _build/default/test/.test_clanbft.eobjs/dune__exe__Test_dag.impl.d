test/test_dag.ml: Alcotest Array Clanbft Dag_store Digest32 List Option Vertex
