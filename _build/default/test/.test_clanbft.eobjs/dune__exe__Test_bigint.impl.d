test/test_bigint.ml: Alcotest Clanbft List Nat QCheck QCheck_alcotest Rat
