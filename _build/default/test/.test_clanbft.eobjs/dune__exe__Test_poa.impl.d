test/test_poa.ml: Alcotest Array Clanbft Engine Net Poa_smr Printf Runner Time Topology
