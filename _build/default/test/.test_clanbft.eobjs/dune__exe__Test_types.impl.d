test/test_types.ml: Alcotest Array Block Cert Clanbft Codec Config Digest32 Keychain List Msg Option Printf QCheck QCheck_alcotest String Transaction Vertex
