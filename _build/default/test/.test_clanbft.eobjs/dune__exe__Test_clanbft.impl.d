test/test_clanbft.ml: Alcotest Test_bigint Test_committee Test_consensus Test_crypto Test_dag Test_poa Test_rbc Test_sim Test_smr Test_types Test_util
