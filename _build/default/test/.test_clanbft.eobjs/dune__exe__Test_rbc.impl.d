test/test_rbc.ml: Alcotest Array Clanbft Digest32 Engine Keychain List Net Option Printf Rbc Time Topology Util
