test/test_committee.ml: Alcotest Array Bigint Clanbft Committee List Printf QCheck QCheck_alcotest Util
