open Clanbft
open Clanbft.Sim
open Clanbft.Crypto
module Rng = Util.Rng

(* Harness: n nodes over a uniform 10 ms network; [byzantine] ids get a
   no-op handler so tests can drive them by injecting raw messages. *)
type world = {
  engine : Engine.t;
  net : Rbc.msg Net.t;
  nodes : Rbc.node option array;
  deliveries : (int * int * int * int * Rbc.outcome) list ref;
      (* (time, node, sender, round, outcome) *)
}

let clan = [| 0; 2; 4; 6; 8 |]

let make_world ?(n = 10) ?(byzantine = []) protocol =
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~one_way_ms:10.0 in
  let config = { Net.default_config with jitter = 0.0 } in
  let net =
    Net.create ~engine ~topology ~config ~size:(Rbc.msg_size ~n)
      ~rng:(Rng.create 7L) ()
  in
  let keychain = Keychain.create ~seed:11L ~n in
  let deliveries = ref [] in
  let nodes =
    Array.init n (fun me ->
        if List.mem me byzantine then begin
          Net.set_handler net me (fun ~src:_ _ -> ());
          None
        end
        else
          Some
            (Rbc.create ~me ~n ~clan ~protocol ~engine ~net ~keychain
               ~on_deliver:(fun ~sender ~round outcome ->
                 deliveries :=
                   (Engine.now engine, me, sender, round, outcome) :: !deliveries)
               ()))
  in
  { engine; net; nodes; deliveries }

let node w i = Option.get w.nodes.(i)

let outcomes w = List.rev_map (fun (_, me, _, _, o) -> (me, o)) !(w.deliveries)

let value_deliveries w =
  List.filter (fun (_, o) -> match o with Rbc.Value _ -> true | _ -> false) (outcomes w)

let digest_deliveries w =
  List.filter (fun (_, o) -> match o with Rbc.Digest_only _ -> true | _ -> false) (outcomes w)

let in_clan i = Array.exists (fun c -> c = i) clan

(* ------------------------------------------------------------------ *)
(* Honest sender, each protocol *)

let test_honest_delivery protocol () =
  let w = make_world protocol in
  Rbc.broadcast (node w 0) ~round:1 "payload-abc";
  Engine.run w.engine;
  Alcotest.(check int) "all deliver" 10 (List.length (outcomes w));
  let expect_values = if List.mem protocol Rbc.[ Bracha; Signed_two_round ] then 10 else 5 in
  Alcotest.(check int) "value deliveries" expect_values (List.length (value_deliveries w));
  Alcotest.(check int) "digest deliveries" (10 - expect_values)
    (List.length (digest_deliveries w));
  (* value receivers see the exact payload; digest receivers its hash *)
  List.iter
    (fun (_, me, _, _, o) ->
      match o with
      | Rbc.Value v -> Alcotest.(check string) (Printf.sprintf "node %d" me) "payload-abc" v
      | Rbc.Digest_only d ->
          Alcotest.(check bool) "digest matches" true
            (Digest32.equal d (Digest32.hash_string "payload-abc")))
    !(w.deliveries)

let test_tribe_outcome_split protocol () =
  let w = make_world protocol in
  Rbc.broadcast (node w 2) ~round:3 "xyz";
  Engine.run w.engine;
  List.iter
    (fun (_, me, _, _, o) ->
      match o with
      | Rbc.Value _ ->
          Alcotest.(check bool) (Printf.sprintf "value only in clan (%d)" me) true (in_clan me)
      | Rbc.Digest_only _ ->
          Alcotest.(check bool) (Printf.sprintf "digest only outside (%d)" me) true
            (not (in_clan me)))
    !(w.deliveries)

let test_multiple_rounds protocol () =
  let w = make_world protocol in
  Rbc.broadcast (node w 0) ~round:1 "r1";
  Rbc.broadcast (node w 0) ~round:2 "r2";
  Rbc.broadcast (node w 4) ~round:1 "other-sender";
  Engine.run w.engine;
  Alcotest.(check int) "3 instances x 10 nodes" 30 (List.length (outcomes w));
  Alcotest.(check (option string)) "delivered query" (Some "r2")
    (match Rbc.delivered (node w 2) ~sender:0 ~round:2 with
    | Some (Rbc.Value v) -> Some v
    | _ -> None)

let test_double_broadcast_rejected protocol () =
  let w = make_world protocol in
  Rbc.broadcast (node w 0) ~round:1 "a";
  Alcotest.check_raises "double broadcast" (Invalid_argument "Rbc.broadcast: already broadcast")
    (fun () -> Rbc.broadcast (node w 0) ~round:1 "b")

(* ------------------------------------------------------------------ *)
(* Byzantine behaviours *)

(* Equivocation: the Byzantine sender (node 0) sends value "A" to half the
   parties and "B" to the rest. Agreement requires that honest parties never
   deliver conflicting values. *)
let test_equivocation_no_disagreement protocol () =
  let w = make_world ~byzantine:[ 0 ] protocol in
  let send_val dst value =
    Net.send w.net ~src:0 ~dst (Rbc.Val { sender = 0; round = 1; value })
  in
  for dst = 1 to 9 do
    send_val dst (if dst mod 2 = 0 then "AAAA" else "BBBB")
  done;
  Engine.run ~until:(Time.s 30.) w.engine;
  (* With a split 4/5 neither value can gather 2f+1=7 echoes: nothing
     delivers. The key safety check: no two honest parties deliver
     different values. *)
  let values =
    List.filter_map
      (fun (_, _, _, _, o) ->
        match o with
        | Rbc.Value v -> Some v
        | Rbc.Digest_only d -> Some (Digest32.to_raw d))
      !(w.deliveries)
  in
  let distinct = List.sort_uniq compare values in
  Alcotest.(check bool) "at most one outcome value" true (List.length distinct <= 1)

(* A Byzantine sender that only sends VAL to the clan minority but whose
   ECHOes still reach quorum: parties that lack the value pull it. *)
let test_pull_path protocol () =
  let w = make_world ~byzantine:[ 0 ] protocol in
  let value = "pull-me" in
  let digest = Digest32.hash_string value in
  (* VAL only to fc+1 = 3 clan members; digest to the outsiders; clan
     member 8 gets nothing at all. Echo quorum still forms (3 clan + 5
     outsiders >= 2f+1 with >= fc+1 from the clan). *)
  List.iter
    (fun dst -> Net.send w.net ~src:0 ~dst (Rbc.Val { sender = 0; round = 1; value }))
    [ 2; 4; 6 ];
  List.iter
    (fun dst ->
      Net.send w.net ~src:0 ~dst (Rbc.Val_digest { sender = 0; round = 1; digest }))
    [ 1; 3; 5; 7; 9 ];
  Engine.run ~until:(Time.s 30.) w.engine;
  (* Clan member 8 never received anything from the sender; it must pull
     the value from another clan member and still deliver it. *)
  List.iter
    (fun me ->
      match Rbc.delivered (node w me) ~sender:0 ~round:1 with
      | Some (Rbc.Value v) -> Alcotest.(check string) (Printf.sprintf "node %d" me) value v
      | _ -> Alcotest.failf "clan node %d failed to deliver the value" me)
    [ 2; 4; 6; 8 ];
  (* Outsiders deliver the digest. *)
  (match Rbc.delivered (node w 1) ~sender:0 ~round:1 with
  | Some (Rbc.Digest_only d) -> Alcotest.(check bool) "digest" true (Digest32.equal d digest)
  | _ -> Alcotest.fail "outsider should deliver digest")

let test_silent_sender protocol () =
  let w = make_world ~byzantine:[ 0 ] protocol in
  (* Sender does nothing at all. *)
  Engine.run ~until:(Time.s 5.) w.engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length (outcomes w))

let test_crash_faults protocol () =
  (* f = 3 silent parties (non-senders): delivery must still complete. *)
  let w = make_world ~byzantine:[ 1; 3; 9 ] protocol in
  Rbc.broadcast (node w 0) ~round:1 "resilient";
  Engine.run ~until:(Time.s 30.) w.engine;
  Alcotest.(check int) "7 honest deliver" 7 (List.length (outcomes w))

let test_forged_echo_ignored () =
  (* Signed protocol: echoes with invalid signatures must not count. *)
  let w = make_world ~byzantine:[ 1 ] Rbc.Tribe_signed in
  let digest = Digest32.hash_string "nonexistent" in
  (* Byzantine node 1 spams forged echoes for a value nobody proposed. *)
  for signer = 0 to 9 do
    ignore signer;
    Net.broadcast w.net ~src:1
      (Rbc.Echo { sender = 5; round = 1; digest; signer = 1; signature = None })
  done;
  Engine.run ~until:(Time.s 5.) w.engine;
  Alcotest.(check int) "no deliveries from forged echoes" 0 (List.length (outcomes w))

let test_rate_limited_pulls () =
  let w = make_world Rbc.Tribe_signed in
  Rbc.broadcast (node w 0) ~round:1 "limited";
  Engine.run w.engine;
  let before = Net.total_messages w.net in
  (* A greedy peer hammers node 0 with pull requests; the budget (8) caps
     replies. *)
  for _ = 1 to 50 do
    Net.send w.net ~src:3 ~dst:0 (Rbc.Pull_request { sender = 0; round = 1 })
  done;
  Engine.run w.engine;
  let extra = Net.total_messages w.net - before in
  (* 50 requests + at most 8 replies *)
  Alcotest.(check bool) "replies capped" true (extra <= 58)

(* Latency comparison: the 2-round protocol must beat the 3-round one. *)
let test_two_rounds_faster () =
  let last_delivery protocol =
    let w = make_world protocol in
    Rbc.broadcast (node w 0) ~round:1 "latency";
    Engine.run w.engine;
    List.fold_left (fun acc (time, _, _, _, _) -> max acc time) 0 !(w.deliveries)
  in
  let bracha = last_delivery Rbc.Tribe_bracha in
  let signed = last_delivery Rbc.Tribe_signed in
  Alcotest.(check bool)
    (Printf.sprintf "2-round (%d) faster than 3-round (%d)" signed bracha)
    true (signed < bracha)

let protocol_cases name protocol =
  [
    Alcotest.test_case (name ^ ": honest delivery") `Quick (test_honest_delivery protocol);
    Alcotest.test_case (name ^ ": multiple rounds") `Quick (test_multiple_rounds protocol);
    Alcotest.test_case (name ^ ": double broadcast") `Quick (test_double_broadcast_rejected protocol);
    Alcotest.test_case (name ^ ": equivocation") `Quick (test_equivocation_no_disagreement protocol);
    Alcotest.test_case (name ^ ": silent sender") `Quick (test_silent_sender protocol);
    Alcotest.test_case (name ^ ": crash faults") `Quick (test_crash_faults protocol);
  ]

let suites =
  [
    ("rbc.bracha", protocol_cases "bracha" Rbc.Bracha);
    ("rbc.signed-2round", protocol_cases "signed" Rbc.Signed_two_round);
    ( "rbc.tribe-bracha",
      protocol_cases "tribe-bracha" Rbc.Tribe_bracha
      @ [
          Alcotest.test_case "outcome split" `Quick (test_tribe_outcome_split Rbc.Tribe_bracha);
          Alcotest.test_case "pull path" `Quick (test_pull_path Rbc.Tribe_bracha);
        ] );
    ( "rbc.tribe-signed",
      protocol_cases "tribe-signed" Rbc.Tribe_signed
      @ [
          Alcotest.test_case "outcome split" `Quick (test_tribe_outcome_split Rbc.Tribe_signed);
          Alcotest.test_case "pull path" `Quick (test_pull_path Rbc.Tribe_signed);
          Alcotest.test_case "forged echoes ignored" `Quick test_forged_echo_ignored;
          Alcotest.test_case "pull rate limiting" `Quick test_rate_limited_pulls;
          Alcotest.test_case "2-round faster than 3-round" `Quick test_two_rounds_faster;
        ] );
  ]
