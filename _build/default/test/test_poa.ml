open Clanbft
open Clanbft.Sim

(* The PoA-then-order straw-man (§1) and Arete-style (§8) pipelines. *)

let run_world ?(n = 7) ?(payloads = 20) params =
  let topology = Topology.uniform ~n ~one_way_ms:20.0 in
  let world =
    Poa_smr.create ~n
      ~clan:(Array.init 4 (fun i -> i))
      ~params:{ params with Poa_smr.batch_interval = Time.ms 40. }
      ~topology
      ~net_config:{ Net.default_config with jitter = 0.0 }
      ~seed:3L ~payload_bytes:512 ()
  in
  let engine = Poa_smr.engine world in
  for i = 0 to payloads - 1 do
    Engine.schedule_at engine (Time.ms (float_of_int (30 * i))) (fun () ->
        Poa_smr.submit_payload world ~proposer:(i mod n))
  done;
  Engine.run ~until:(Time.s 10.) engine;
  world

let test_strawman_commits_everything () =
  let w = run_world Poa_smr.strawman in
  Alcotest.(check int) "all payloads committed" 20 (Poa_smr.committed w);
  Alcotest.(check bool) "latency positive" true (Poa_smr.mean_commit_latency_ms w > 0.0)

let test_arete_commits_everything () =
  let w = run_world Poa_smr.arete in
  Alcotest.(check int) "all payloads committed" 20 (Poa_smr.committed w)

let test_depth_ordering () =
  (* Deeper commit paths cost more latency: straw-man (3 hops) < Arete
     (5 hops); both are measurably above the dissemination floor of 3δ
     (payload + ack + PoA-to-leader). *)
  let s = run_world Poa_smr.strawman in
  let a = run_world Poa_smr.arete in
  let ls = Poa_smr.mean_commit_latency_ms s in
  let la = Poa_smr.mean_commit_latency_ms a in
  Alcotest.(check bool)
    (Printf.sprintf "strawman (%.1f) < arete (%.1f)" ls la)
    true (ls < la);
  (* 2 extra hops at 20 ms one-way = +40 ms *)
  Alcotest.(check bool) "gap is about two hops" true
    (la -. ls > 30.0 && la -. ls < 60.0);
  Alcotest.(check bool) "above the 6-delta floor minus batching slack" true
    (ls > 5.0 *. 20.0)

let test_beats_nothing_without_quorum () =
  (* With fewer than 2f+1 live parties the SMR path cannot commit: drive a
     world where only the clan ever participates by crashing the rest via a
     filter — here simulated by submitting but never letting hops through.
     Simpler check: depth must be >= 2. *)
  Alcotest.check_raises "depth >= 2" (Invalid_argument "Poa_smr: depth must be >= 2")
    (fun () ->
      ignore
        (Poa_smr.create ~n:4
           ~params:{ Poa_smr.commit_depth = 1; batch_interval = Time.ms 50. }
           ~topology:(Topology.uniform ~n:4 ~one_way_ms:1.0)
           ~net_config:Net.default_config ~seed:1L ~payload_bytes:10 ()))

let test_dag_beats_poa_architecture () =
  (* The paper's headline latency claim, measured: pipelined DAG commit
     beats the sequential PoA-then-order design under identical network
     conditions. *)
  let delta_ms = 20.0 in
  let dag =
    Runner.run
      {
        Runner.default_spec with
        n = 7;
        topology = `Uniform delta_ms;
        txns_per_proposal = 5;
        duration = Time.s 8.;
        warmup = Time.s 2.;
      }
  in
  let poa = run_world ~payloads:40 Poa_smr.strawman in
  Alcotest.(check bool)
    (Printf.sprintf "sailfish (%.1f ms) < strawman (%.1f ms)" dag.latency_mean_ms
       (Poa_smr.mean_commit_latency_ms poa))
    true
    (dag.latency_mean_ms < Poa_smr.mean_commit_latency_ms poa)

let suites =
  [
    ( "poa-smr",
      [
        Alcotest.test_case "strawman commits all" `Quick test_strawman_commits_everything;
        Alcotest.test_case "arete commits all" `Quick test_arete_commits_everything;
        Alcotest.test_case "latency grows with depth" `Quick test_depth_ordering;
        Alcotest.test_case "depth validation" `Quick test_beats_nothing_without_quorum;
        Alcotest.test_case "DAG beats PoA architecture" `Slow test_dag_beats_poa_architecture;
      ] );
  ]
