open Clanbft
open Clanbft.Sim
open Clanbft.Crypto
module Rng = Util.Rng

(* ------------------------------------------------------------------ *)
(* Harness *)

type world = {
  engine : Engine.t;
  net : Msg.t Net.t;
  config : Config.t;
  keychain : Keychain.t;
  nodes : Sailfish.t option array; (* None = not an honest protocol node *)
  commits : (int * int) list ref array; (* per node, reversed commit order *)
  blocks_seen : (int * int, Block.t) Hashtbl.t; (* proposer-side registry *)
}

let make_world ?(n = 7) ?(one_way_ms = 10.) ?(net_config = { Net.default_config with jitter = 0.0 })
    ?(byzantine = []) ?(load = 5) ?params dissemination =
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~one_way_ms in
  let net =
    Net.create ~engine ~topology ~config:net_config ~size:(Msg.wire_size ~n)
      ~rng:(Rng.create 3L) ()
  in
  let keychain = Keychain.create ~seed:5L ~n in
  let config = Config.make ~n dissemination in
  let commits = Array.init n (fun _ -> ref []) in
  let blocks_seen = Hashtbl.create 64 in
  let next = ref 0 in
  let nodes =
    Array.init n (fun me ->
        if List.mem me byzantine then begin
          Net.set_handler net me (fun ~src:_ _ -> ());
          None
        end
        else
          Some
            (Sailfish.create ~me ~config ~keychain ~engine ~net ?params
               ~make_block:(fun ~round:_ ->
                 Array.init load (fun _ ->
                     incr next;
                     Transaction.make ~id:!next ~client:me
                       ~created_at:(Engine.now engine) ~size:256 ()))
               ~on_commit:(fun ~leader:_ vs ->
                 List.iter
                   (fun (v : Vertex.t) ->
                     commits.(me) := (v.round, v.source) :: !(commits.(me)))
                   vs)
               ()))
  in
  { engine; net; config; keychain; nodes; commits; blocks_seen }

let start w = Array.iter (function Some n -> Sailfish.start n | None -> ()) w.nodes
let node w i = Option.get w.nodes.(i)

let honest_sequences w =
  Array.to_list w.nodes
  |> List.mapi (fun i n -> (i, n))
  |> List.filter_map (fun (i, n) ->
         match n with Some _ -> Some (Array.of_list (List.rev !(w.commits.(i)))) | None -> None)

(* Every pair of honest sequences must agree on their common prefix. *)
let check_prefix_agreement w =
  let seqs = honest_sequences w in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then begin
            let common = min (Array.length a) (Array.length b) in
            for k = 0 to common - 1 do
              if a.(k) <> b.(k) then
                Alcotest.failf "sequences %d and %d diverge at position %d" i j k
            done
          end)
        seqs)
    seqs;
  seqs

let min_committed w =
  List.fold_left (fun acc s -> min acc (Array.length s)) max_int (honest_sequences w)

(* ------------------------------------------------------------------ *)
(* Happy-path liveness + agreement, all three modes *)

let test_liveness mode () =
  let w = make_world mode in
  start w;
  Engine.run ~until:(Time.s 5.) w.engine;
  let seqs = check_prefix_agreement w in
  Alcotest.(check bool) "many rounds" true (Sailfish.current_round (node w 0) > 20);
  Alcotest.(check bool) "all committed plenty" true (min_committed w > 50);
  Alcotest.(check int) "7 honest sequences" 7 (List.length seqs)

let test_commits_cover_all_proposers () =
  let w = make_world Config.Full in
  start w;
  Engine.run ~until:(Time.s 5.) w.engine;
  let seq = List.hd (honest_sequences w) in
  let sources = Array.to_list seq |> List.map snd |> List.sort_uniq compare in
  Alcotest.(check (list int)) "every proposer appears" [ 0; 1; 2; 3; 4; 5; 6 ] sources

let test_single_clan_block_locality () =
  let clan = [| 0; 2; 4; 6 |] in
  let w = make_world (Config.Single_clan clan) in
  start w;
  Engine.run ~until:(Time.s 3.) w.engine;
  (* Clan members hold blocks of clan proposers; outsiders hold none.
     Query a recent round: old rounds are garbage-collected. *)
  let some_block_round = Sailfish.last_committed_round (node w 2) - 2 in
  Alcotest.(check bool) "committed enough" true (some_block_round > 0);
  Array.iter
    (fun proposer ->
      (match Sailfish.block_of (node w 1) ~round:some_block_round ~source:proposer with
      | Some _ -> Alcotest.failf "outsider 1 stored a block of %d" proposer
      | None -> ());
      match Sailfish.block_of (node w 2) ~round:some_block_round ~source:proposer with
      | Some _ -> ()
      | None -> Alcotest.failf "clan member 2 missing block of %d" proposer)
    clan;
  (* Non-clan proposers produce vertex-only slots: nobody stores blocks. *)
  Alcotest.(check bool) "no block for vertex-only proposer" true
    (Sailfish.block_of (node w 2) ~round:some_block_round ~source:1 = None)

let test_multi_clan_block_locality () =
  let clans = [| [| 0; 1; 2; 3 |]; [| 4; 5; 6 |] |] in
  let w = make_world (Config.Multi_clan clans) in
  start w;
  Engine.run ~until:(Time.s 3.) w.engine;
  (* Node 0 (clan 0) stores clan-0 blocks but not clan-1 blocks. Query a
     recent (non-GCed) round. *)
  let r = Sailfish.last_committed_round (node w 0) - 2 in
  Alcotest.(check bool) "committed enough" true (r > 0);
  Alcotest.(check bool) "own clan block" true
    (Sailfish.block_of (node w 0) ~round:r ~source:1 <> None);
  Alcotest.(check bool) "other clan block absent" true
    (Sailfish.block_of (node w 0) ~round:r ~source:5 = None);
  Alcotest.(check bool) "clan 1 stores its own" true
    (Sailfish.block_of (node w 5) ~round:r ~source:5 <> None);
  ignore (check_prefix_agreement w)

(* ------------------------------------------------------------------ *)
(* Faults *)

let test_crash_faults mode () =
  (* f = 2 of 7 crashed from the start; progress and agreement continue,
     including across rounds whose leader is crashed (timeout + NVC path). *)
  let params = { Sailfish.default_params with round_timeout = Time.ms 200. } in
  let w = make_world ~byzantine:[ 1; 3 ] ~params mode in
  start w;
  Engine.run ~until:(Time.s 10.) w.engine;
  ignore (check_prefix_agreement w);
  (* Rounds 1 and 3 (mod 7) have crashed leaders: the protocol must have
     advanced far past several of them. *)
  Alcotest.(check bool) "rounds advance past crashed leaders" true
    (Sailfish.current_round (node w 0) > 14);
  Alcotest.(check bool) "commits continue" true (min_committed w > 10)

let test_crashed_leader_vertices_skipped () =
  let params = { Sailfish.default_params with round_timeout = Time.ms 200. } in
  let w = make_world ~byzantine:[ 1 ] ~params Config.Full in
  start w;
  Engine.run ~until:(Time.s 8.) w.engine;
  let seq = List.hd (honest_sequences w) in
  Alcotest.(check bool) "crashed node proposes nothing" true
    (Array.for_all (fun (_, source) -> source <> 1) seq)

let test_equivocating_proposer () =
  (* Byzantine node 0 proposes two conflicting round-0 vertices, each with
     its own block, split across the honest parties. Safety: the slot can
     certify at most one digest; liveness: everyone else keeps going. *)
  let params = { Sailfish.default_params with round_timeout = Time.ms 200. } in
  let w = make_world ~byzantine:[ 0 ] ~params Config.Full in
  let mk_proposal tag =
    let txns =
      Array.init 3 (fun i ->
          Transaction.make ~id:(1000 + i + (100 * tag)) ~client:0 ~created_at:0 ())
    in
    let block = Block.make ~proposer:0 ~round:0 ~txns in
    let vertex =
      Vertex.make ~round:0 ~source:0 ~block_digest:(Block.digest block)
        ~strong_edges:[||] ~weak_edges:[||] ()
    in
    let signature =
      Keychain.sign w.keychain ~signer:0
        (String.concat ""
           [ "val|0|0|"; Digest32.to_raw vertex.Vertex.digest ])
    in
    Msg.Val { vertex; block = Some block; signature }
  in
  let v1 = mk_proposal 1 and v2 = mk_proposal 2 in
  start w;
  for dst = 1 to 6 do
    Net.send w.net ~src:0 ~dst (if dst <= 3 then v1 else v2)
  done;
  Engine.run ~until:(Time.s 10.) w.engine;
  ignore (check_prefix_agreement w);
  (* At most one version can be in any honest DAG, and all honest DAGs
     that contain the slot agree on it. *)
  let digests =
    List.filter_map
      (fun i ->
        match Sailfish.vertex_of (node w i) ~round:0 ~source:0 with
        | Some v -> Some (Digest32.to_hex v.Vertex.digest)
        | None -> None)
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Alcotest.(check bool) "one certified version at most" true
    (List.length (List.sort_uniq compare digests) <= 1);
  Alcotest.(check bool) "liveness unaffected" true (min_committed w > 30)

let test_partial_synchrony_recovery () =
  (* Heavy adversarial delays before GST at 2 s; the protocol must catch up
     and commit normally afterwards. *)
  let net_config =
    { Net.default_config with jitter = 0.0; gst = Time.s 2.;
      pre_gst_max_extra = Time.ms 400. }
  in
  let params = { Sailfish.default_params with round_timeout = Time.ms 300. } in
  let w = make_world ~net_config ~params Config.Full in
  start w;
  Engine.run ~until:(Time.s 2.) w.engine;
  let at_gst = min_committed w in
  Engine.run ~until:(Time.s 7.) w.engine;
  ignore (check_prefix_agreement w);
  Alcotest.(check bool) "progress after GST" true (min_committed w > at_gst + 30)

let test_byzantine_partial_block_dissemination () =
  (* A Byzantine clan proposer sends its block to only fc+1 clan members;
     the rest of the clan must pull it and still execute/commit. *)
  let clan = [| 0; 2; 4; 6 |] in
  (* gc_depth large enough that round 0 survives the whole run *)
  let params =
    { Sailfish.default_params with round_timeout = Time.ms 200.; gc_depth = 1_000_000 }
  in
  let w = make_world ~byzantine:[ 0 ] ~params (Config.Single_clan clan) in
  let txns = Array.init 3 (fun i -> Transaction.make ~id:(2000 + i) ~client:0 ~created_at:0 ()) in
  let block = Block.make ~proposer:0 ~round:0 ~txns in
  let vertex =
    Vertex.make ~round:0 ~source:0 ~block_digest:(Block.digest block)
      ~strong_edges:[||] ~weak_edges:[||] ()
  in
  let signature =
    Keychain.sign w.keychain ~signer:0
      (String.concat "" [ "val|0|0|"; Digest32.to_raw vertex.Vertex.digest ])
  in
  start w;
  (* Block to clan members 2 and 4 (fc+1 = 2); bare vertex to the rest. *)
  for dst = 1 to 6 do
    let with_block = dst = 2 || dst = 4 in
    Net.send w.net ~src:0 ~dst
      (Msg.Val { vertex; block = (if with_block then Some block else None); signature })
  done;
  Engine.run ~until:(Time.s 10.) w.engine;
  ignore (check_prefix_agreement w);
  (* Clan member 6 never got the block directly — it must have pulled it. *)
  match Sailfish.block_of (node w 6) ~round:0 ~source:0 with
  | Some b ->
      Alcotest.(check bool) "pulled block matches digest" true
        (Digest32.equal (Block.digest b) (Block.digest block))
  | None -> Alcotest.fail "clan member 6 never obtained the Byzantine proposer's block"

let test_ancient_round_traffic_ignored () =
  (* After garbage collection, replayed messages for pruned rounds must be
     dropped (not crash the node or regrow state). gc_depth is small so the
     floor rises quickly. *)
  let params = { Sailfish.default_params with gc_depth = 4 } in
  let w = make_world ~params Config.Full in
  start w;
  Engine.run ~until:(Time.s 2.) w.engine;
  Alcotest.(check bool) "gc active" true (Sailfish.last_committed_round (node w 1) > 10);
  (* Replay an ancient proposal, echo, and block request from "node 0". *)
  let txns = Array.init 2 (fun i -> Transaction.make ~id:(9000 + i) ~client:0 ~created_at:0 ()) in
  let block = Block.make ~proposer:0 ~round:0 ~txns in
  let vertex =
    Vertex.make ~round:0 ~source:0 ~block_digest:(Block.digest block)
      ~strong_edges:[||] ~weak_edges:[||] ()
  in
  let signature =
    Keychain.sign w.keychain ~signer:0
      (String.concat "" [ "val|0|0|"; Digest32.to_raw vertex.Vertex.digest ])
  in
  for dst = 1 to 6 do
    Net.send w.net ~src:0 ~dst (Msg.Val { vertex; block = Some block; signature });
    Net.send w.net ~src:0 ~dst (Msg.Block_request { round = 0; source = 1 });
    Net.send w.net ~src:0 ~dst
      (Msg.Echo
         {
           round = 0;
           source = 0;
           vertex_digest = vertex.Vertex.digest;
           signer = 0;
           signature =
             Keychain.sign w.keychain ~signer:0
               (Msg.echo_signing_string ~round:0 ~source:0 vertex.Vertex.digest);
         })
  done;
  Engine.run ~until:(Time.s 4.) w.engine;
  ignore (check_prefix_agreement w);
  Alcotest.(check bool) "still live after replay" true
    (Sailfish.current_round (node w 1) > 30)

let test_gc_bounds_memory () =
  let params = { Sailfish.default_params with gc_depth = 8 } in
  let w = make_world ~params Config.Full in
  start w;
  Engine.run ~until:(Time.s 4.) w.engine;
  (* DAG holds at most gc_depth + pipeline-slack rounds x 7 vertices. *)
  Alcotest.(check bool)
    (Printf.sprintf "dag size bounded (%d)" (Sailfish.dag_size (node w 0)))
    true
    (Sailfish.dag_size (node w 0) < 7 * (8 + 16));
  Alcotest.(check bool) "but many rounds ran" true
    (Sailfish.current_round (node w 0) > 100)

let test_single_clan_traffic_asymmetry () =
  (* Outsiders receive vertices but never payloads: their ingress must be
     well below a clan member's. *)
  let clan = [| 0; 2; 4; 6 |] in
  let w = make_world ~load:200 (Config.Single_clan clan) in
  start w;
  Engine.run ~until:(Time.s 3.) w.engine;
  let outsider = Net.bytes_received w.net 1 in
  let member = Net.bytes_received w.net 2 in
  Alcotest.(check bool)
    (Printf.sprintf "outsider %d < half of member %d" outsider member)
    true
    (outsider * 2 < member)

(* ------------------------------------------------------------------ *)
(* Latency sanity: leader commits land near 3δ (paper §5/§7) *)

let test_commit_latency_3delta () =
  (* Uniform 50 ms one-way; tiny payloads so bandwidth is irrelevant. The
     leader-vertex commit path is 1 RBC (2δ) + δ = 3δ = 300 ms; allow
     generous slack for queuing and loopback. *)
  let delta = 50. in
  let w = make_world ~one_way_ms:delta ~load:1 Config.Full in
  start w;
  Engine.run ~until:(Time.s 6.) w.engine;
  let rounds = Sailfish.current_round (node w 0) in
  (* A round advances after the leader's RBC completes (~2δ) and commits at
     3δ; the steady-state round rate is therefore ~1 per 2δ = 100 ms. In
     6 s that is ~60 rounds; require at least half that and no more than
     double. *)
  Alcotest.(check bool)
    (Printf.sprintf "round rate plausible (%d rounds)" rounds)
    true
    (rounds > 25 && rounds < 130)

let test_round_rate_matches_rbc_depth () =
  (* With one-way delay δ, one round needs at least 2δ (VAL + ECHO). *)
  let w = make_world ~one_way_ms:20. ~load:1 Config.Full in
  start w;
  Engine.run ~until:(Time.s 2.) w.engine;
  let rounds = Sailfish.current_round (node w 0) in
  Alcotest.(check bool)
    (Printf.sprintf "%d rounds in 2s at 40ms floor" rounds)
    true
    (rounds <= 50 && rounds >= 20)

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_deterministic_runs () =
  let run () =
    let w = make_world Config.Full in
    start w;
    Engine.run ~until:(Time.s 3.) w.engine;
    honest_sequences w
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical commit sequences" true (a = b)

(* ------------------------------------------------------------------ *)
(* Latency model (§1 / §8) *)

let test_latency_model_table () =
  let open Latency_model in
  Alcotest.(check int) "sailfish 3d" 3 (deltas Dag_sailfish);
  Alcotest.(check int) "bullshark 4d" 4 (deltas Dag_bullshark);
  Alcotest.(check int) "strawman 6d" 6 (deltas Strawman_poa);
  Alcotest.(check int) "arete 8d" 8 (deltas Arete);
  Alcotest.(check (float 1e-9)) "estimate" 300.0 (estimate_ms ~delta_ms:100.0 Dag_sailfish);
  (* The architectural claim of the paper: the DAG path beats every
     PoA-then-order design. *)
  List.iter
    (fun d ->
      if d <> Dag_sailfish && d <> Dag_sailfish_nonleader then
        Alcotest.(check bool) (name d) true (deltas Dag_sailfish < deltas d))
    all

let suites =
  [
    ( "consensus.liveness",
      [
        Alcotest.test_case "full mode" `Slow (test_liveness Config.Full);
        Alcotest.test_case "single-clan mode" `Slow
          (test_liveness (Config.Single_clan [| 0; 2; 4; 6 |]));
        Alcotest.test_case "multi-clan mode" `Slow
          (test_liveness (Config.Multi_clan [| [| 0; 1; 2; 3 |]; [| 4; 5; 6 |] |]));
        Alcotest.test_case "all proposers commit" `Slow test_commits_cover_all_proposers;
      ] );
    ( "consensus.clans",
      [
        Alcotest.test_case "single-clan block locality" `Slow test_single_clan_block_locality;
        Alcotest.test_case "multi-clan block locality" `Slow test_multi_clan_block_locality;
      ] );
    ( "consensus.faults",
      [
        Alcotest.test_case "crash faults (full)" `Slow (test_crash_faults Config.Full);
        Alcotest.test_case "crash faults (single-clan)" `Slow
          (test_crash_faults (Config.Single_clan [| 0; 2; 4; 6 |]));
        Alcotest.test_case "crashed leader skipped" `Slow test_crashed_leader_vertices_skipped;
        Alcotest.test_case "equivocating proposer" `Slow test_equivocating_proposer;
        Alcotest.test_case "partial synchrony recovery" `Slow test_partial_synchrony_recovery;
        Alcotest.test_case "Byzantine partial block dissemination" `Slow
          test_byzantine_partial_block_dissemination;
        Alcotest.test_case "ancient-round replay ignored" `Slow
          test_ancient_round_traffic_ignored;
      ] );
    ( "consensus.resources",
      [
        Alcotest.test_case "GC bounds memory" `Slow test_gc_bounds_memory;
        Alcotest.test_case "single-clan traffic asymmetry" `Slow
          test_single_clan_traffic_asymmetry;
      ] );
    ( "consensus.latency",
      [
        Alcotest.test_case "commit latency ~3 delta" `Slow test_commit_latency_3delta;
        Alcotest.test_case "round rate vs RBC depth" `Slow test_round_rate_matches_rbc_depth;
        Alcotest.test_case "deterministic runs" `Slow test_deterministic_runs;
        Alcotest.test_case "latency model table" `Quick test_latency_model_table;
      ] );
  ]
