(** Hexadecimal encoding of byte strings (digest rendering, test vectors). *)

val encode : string -> string
(** Lowercase hex of every byte. *)

val decode : string -> string
(** Inverse of [encode]; raises [Invalid_argument] on odd length or non-hex
    characters. Accepts both cases. *)
