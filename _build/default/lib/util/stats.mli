(** Sample collection and summary statistics for experiment metrics. *)

type t
(** A mutable reservoir of float samples (e.g. per-transaction latencies). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], nearest-rank on the sorted
    samples. Raises [Invalid_argument] on an empty reservoir. *)

val summary : t -> string
(** One-line human-readable summary: n/mean/p50/p99/max. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end
