lib/util/heap.mli:
