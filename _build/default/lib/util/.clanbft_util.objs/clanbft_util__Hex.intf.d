lib/util/hex.mli:
