lib/util/rng.mli:
