lib/util/stats.mli:
