type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 64 0.0; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len
let is_empty t = t.len = 0

let mean t =
  if t.len = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.samples.(i)
    done;
    !sum /. float_of_int t.len
  end

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let m = mean t in
    let sum = ref 0.0 in
    for i = 0 to t.len - 1 do
      let d = t.samples.(i) -. m in
      sum := !sum +. (d *. d)
    done;
    sqrt (!sum /. float_of_int (t.len - 1))
  end

let fold_extreme f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.samples.(i)
  done;
  !acc

let min t =
  if t.len = 0 then invalid_arg "Stats.min: empty";
  fold_extreme Float.min Float.infinity t

let max t =
  if t.len = 0 then invalid_arg "Stats.max: empty";
  fold_extreme Float.max Float.neg_infinity t

let ensure_sorted t =
  if not t.sorted then begin
    let view = Array.sub t.samples 0 t.len in
    Array.sort Float.compare view;
    Array.blit view 0 t.samples 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  ensure_sorted t;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
  let idx = Stdlib.max 0 (Stdlib.min (t.len - 1) (rank - 1)) in
  t.samples.(idx)

let summary t =
  if t.len = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.len (mean t)
      (percentile t 50.0) (percentile t 99.0) (max t)

module Counter = struct
  type t = int ref

  let create () = ref 0
  let incr t = Stdlib.incr t
  let add t n = t := !t + n
  let get t = !t
  let reset t = t := 0
end
