(** Binary min-heap keyed by [int] priorities.

    The simulator's event queue is the hottest data structure in the whole
    library: large experiments push hundreds of millions of events through
    it. The heap stores priorities unboxed in a flat [int array] and payloads
    in a parallel ['a array], avoiding per-event allocation on [pop].

    Ties are broken by insertion order (FIFO), which keeps simulations
    deterministic regardless of heap internals. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused payload slots (required because the payload array is
    unboxed); it is never returned by [pop]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push h prio x] inserts [x] with priority [prio]. O(log n). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-priority entry. O(log n). *)

val peek_priority : 'a t -> int option
(** Priority of the minimum entry without removing it. O(1). *)

val clear : 'a t -> unit
