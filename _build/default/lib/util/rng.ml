type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  (* Mixing twice decorrelates the child stream from the parent's future. *)
  { state = mix64 seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec go () =
    let r = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.(sub (add (sub r v) bound64) 1L) < 0L then go () else Int64.to_int v
  in
  go ()

let float t bound =
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u
