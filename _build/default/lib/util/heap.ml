type 'a t = {
  mutable prio : int array; (* heap-ordered priorities *)
  mutable seq : int array; (* insertion sequence numbers, for FIFO ties *)
  mutable data : 'a array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a;
}

let create ?(capacity = 256) ~dummy () =
  let capacity = max capacity 16 in
  {
    prio = Array.make capacity 0;
    seq = Array.make capacity 0;
    data = Array.make capacity dummy;
    size = 0;
    next_seq = 0;
    dummy;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let n = Array.length t.prio in
  let n' = n * 2 in
  let prio = Array.make n' 0 in
  let seq = Array.make n' 0 in
  let data = Array.make n' t.dummy in
  Array.blit t.prio 0 prio 0 n;
  Array.blit t.seq 0 seq 0 n;
  Array.blit t.data 0 data 0 n;
  t.prio <- prio;
  t.seq <- seq;
  t.data <- data

(* [less t i j] orders by priority, then insertion sequence. *)
let less t i j =
  let pi = Array.unsafe_get t.prio i and pj = Array.unsafe_get t.prio j in
  pi < pj || (pi = pj && Array.unsafe_get t.seq i < Array.unsafe_get t.seq j)

let swap t i j =
  let pi = t.prio.(i) and si = t.seq.(i) and di = t.data.(i) in
  t.prio.(i) <- t.prio.(j);
  t.seq.(i) <- t.seq.(j);
  t.data.(i) <- t.data.(j);
  t.prio.(j) <- pi;
  t.seq.(j) <- si;
  t.data.(j) <- di

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let smallest = if l + 1 < t.size && less t (l + 1) l then l + 1 else l in
    if less t smallest i then begin
      swap t i smallest;
      sift_down t smallest
    end
  end

let push t prio x =
  if t.size = Array.length t.prio then grow t;
  let i = t.size in
  t.prio.(i) <- prio;
  t.seq.(i) <- t.next_seq;
  t.data.(i) <- x;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let pop t =
  if t.size = 0 then None
  else begin
    let prio = t.prio.(0) and x = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.seq.(0) <- t.seq.(t.size);
      t.data.(0) <- t.data.(t.size)
    end;
    t.data.(t.size) <- t.dummy;
    sift_down t 0;
    Some (prio, x)
  end

let peek_priority t = if t.size = 0 then None else Some t.prio.(0)

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0;
  t.next_seq <- 0
