(** Deterministic pseudo-random number generation.

    Every stochastic choice in the library (clan election, adversarial
    delays, workload generation) goes through an explicit [Rng.t] so that a
    whole experiment is reproducible from a single 64-bit seed. The core
    generator is splitmix64, which is fast, has a full 2^64 period and is
    trivially splittable. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator; both [t] and the result keep
    producing values without correlation. Used to give each simulated node
    its own stream. *)

val next_int64 : t -> int64
(** Uniform over all 2^64 bit patterns. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniformly random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val exponential : t -> mean:float -> float
(** Sample from an exponential distribution; used for Poisson arrivals. *)
