(** Closed-form good-case commit-latency models (§1 "A straw-man approach
    and further challenges" and §8's comparisons).

    The paper's core latency argument is architectural: a separate data
    dissemination layer (PoA collection) is inherently sequential and adds
    its rounds to the consensus commit path, while DAG protocols pipeline
    dissemination into consensus. These are the bounds the paper states, in
    units of δ (actual network delay). *)

type design =
  | Dag_sailfish  (** 1 RBC + δ = 3δ (leader vertices) — §5 *)
  | Dag_sailfish_nonleader  (** 5δ — §7 implementation details *)
  | Dag_bullshark  (** 2 RBC = 4δ *)
  | Strawman_poa  (** PoA (2δ) + queuing (δ) + SMR commit (3δ) = 6δ — §1 *)
  | Arete  (** PoA (2δ) + queuing (δ) + Jolteon (5δ) = 8δ — §8 *)
  | Autobahn  (** PoA (2δ) + queuing (δ) + 3δ single-proposer SMR — §8 *)

val all : design list
val name : design -> string

val deltas : design -> int
(** Good-case commit latency in units of δ. *)

val estimate_ms : delta_ms:float -> design -> float
(** The bound instantiated with a concrete average one-way delay. *)
