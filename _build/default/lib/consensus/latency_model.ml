type design =
  | Dag_sailfish
  | Dag_sailfish_nonleader
  | Dag_bullshark
  | Strawman_poa
  | Arete
  | Autobahn

let all =
  [ Dag_sailfish; Dag_sailfish_nonleader; Dag_bullshark; Strawman_poa; Arete; Autobahn ]

let name = function
  | Dag_sailfish -> "DAG/Sailfish (leader)"
  | Dag_sailfish_nonleader -> "DAG/Sailfish (non-leader)"
  | Dag_bullshark -> "DAG/Bullshark"
  | Strawman_poa -> "straw-man PoA + SMR"
  | Arete -> "Arete (PoA + Jolteon)"
  | Autobahn -> "Autobahn/Star (PoA + SMR)"

let deltas = function
  | Dag_sailfish -> 3 (* one 2δ RBC, plus δ of first-message votes *)
  | Dag_sailfish_nonleader -> 5
  | Dag_bullshark -> 4 (* two sequential RBCs *)
  | Strawman_poa -> 6 (* 2δ PoA + 1δ queuing + 3δ commit *)
  | Arete -> 8 (* 2δ PoA + 1δ queuing + 5δ Jolteon commit *)
  | Autobahn -> 6

let estimate_ms ~delta_ms design = float_of_int (deltas design) *. delta_ms
