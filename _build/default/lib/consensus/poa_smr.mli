(** The straw-man architecture of §1 (and Arete / Autobahn of §8), built for
    real so the latency penalty of a {e separate} data-dissemination layer
    can be measured rather than asserted.

    Pipeline per payload: the proposer disseminates the payload to the clan
    (1δ), collects a proof of availability — [fc + 1] acknowledgements,
    guaranteeing an honest holder — (1δ), and forwards the PoA to the
    current SMR leader (queuing, ≥ 0δ, amortised 1δ under load). The leader
    orders PoAs in batches through a leader-based SMR protocol whose
    good-case commit path is [commit_depth] message delays: 3 for a
    PBFT/Moonshot-class protocol (the straw-man's "at least 3δ"), 5 for
    Jolteon (Arete, §8).

    Benign-case model: this module exists to reproduce the latency/
    throughput comparison, so it implements the full message flow but not
    view change — the DAG protocols win {e despite} the straw-man being
    given fault-free conditions. *)

open Clanbft_sim

type params = {
  commit_depth : int;  (** one-way hops in the SMR commit path (3 or 5) *)
  batch_interval : Time.span;  (** leader batching cadence *)
}

val strawman : params
(** [commit_depth = 3]: PoA + queuing + 3δ commit = the paper's ≥ 6δ. *)

val arete : params
(** [commit_depth = 5] (Jolteon): the paper's ≥ 8δ. *)

type t
(** One experiment world (all n parties + network). *)

val create :
  n:int ->
  ?clan:int array ->
  params:params ->
  topology:Topology.t ->
  net_config:Net.config ->
  seed:int64 ->
  payload_bytes:int ->
  unit ->
  t

val engine : t -> Engine.t

val submit_payload : t -> proposer:int -> unit
(** Start disseminating one payload from [proposer] at the current time. *)

val committed : t -> int
(** Payloads whose ordering batch has committed at every party. *)

val mean_commit_latency_ms : t -> float
(** Mean creation → committed-by-all latency over committed payloads. *)

val total_bytes : t -> int
