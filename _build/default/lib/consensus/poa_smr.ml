open Clanbft_sim
module Bitset = Clanbft_util.Bitset
module Stats = Clanbft_util.Stats

type params = { commit_depth : int; batch_interval : Time.span }

let strawman = { commit_depth = 3; batch_interval = Time.ms 100. }
let arete = { commit_depth = 5; batch_interval = Time.ms 100. }

type msg =
  | Payload of { id : int; size : int }
  | Ack of { id : int }
  | Poa of { id : int } (* carries a fc+1 availability certificate *)
  | Propose of { seq : int; poas : int array }
  | Hop of { seq : int; stage : int }

let kappa = 64

let msg_size ~nc = function
  | Payload { size; _ } -> 9 + size
  | Ack _ -> 5 + kappa
  | Poa _ -> 5 + kappa + ((nc + 7) / 8)
  | Propose { poas; _ } -> 9 + (Array.length poas * (4 + 32)) + kappa
  | Hop _ -> 9 + kappa

(* Per-payload dissemination state at its proposer. *)
type payload_state = {
  created_at : Time.t;
  acks : Bitset.t;
  mutable poa_sent : bool;
}

(* Per-batch ordering state at each party. *)
type batch_state = {
  stages : Bitset.t array; (* stage -> voters seen *)
  sent : bool array; (* stage -> did I multicast it *)
  mutable done_ : bool;
}

type t = {
  n : int;
  f : int;
  clan : int array;
  fc1 : int; (* acks needed for a PoA *)
  payload_bytes : int;
  params : params;
  engine : Engine.t;
  net : msg Net.t;
  leader : int;
  payloads : (int, payload_state) Hashtbl.t; (* proposer-side *)
  mutable next_payload : int;
  mutable pending_poas : int list; (* leader-side queue *)
  mutable next_seq : int;
  batches : (int * int, batch_state) Hashtbl.t; (* (party, seq) *)
  batch_payloads : (int, int array) Hashtbl.t; (* seq -> payload ids *)
  commit_counts : (int, int) Hashtbl.t; (* seq -> parties committed *)
  latencies : Stats.t;
  mutable committed_payloads : int;
}

let engine t = t.engine
let committed t = t.committed_payloads

let mean_commit_latency_ms t =
  if Stats.is_empty t.latencies then 0.0 else Stats.mean t.latencies

let total_bytes t = Net.total_bytes t.net

let quorum t = (2 * t.f) + 1

let batch_of t ~party ~seq =
  match Hashtbl.find_opt t.batches (party, seq) with
  | Some b -> b
  | None ->
      let depth = t.params.commit_depth in
      let b =
        {
          stages = Array.init (depth + 1) (fun _ -> Bitset.create t.n);
          sent = Array.make (depth + 1) false;
          done_ = false;
        }
      in
      Hashtbl.replace t.batches (party, seq) b;
      b

let commit_batch t ~seq =
  let count = 1 + Option.value ~default:0 (Hashtbl.find_opt t.commit_counts seq) in
  Hashtbl.replace t.commit_counts seq count;
  if count = t.n then begin
    (* committed everywhere: score the batch's payloads *)
    match Hashtbl.find_opt t.batch_payloads seq with
    | None -> ()
    | Some ids ->
        let now = Engine.now t.engine in
        Array.iter
          (fun id ->
            match Hashtbl.find_opt t.payloads id with
            | Some p ->
                Stats.add t.latencies (Time.to_ms (now - p.created_at));
                t.committed_payloads <- t.committed_payloads + 1
            | None -> ())
          ids
  end

(* Generalised leader-SMR commit path: Propose is hop 1 (leader -> all);
   stages 2..depth are all-to-all vote rounds gated on 2f+1 of the previous
   stage; a party commits on 2f+1 of the final stage. depth=3 is the
   PBFT-style 3δ path, depth=5 is Jolteon's. *)
let advance_stage t ~me ~seq stage =
  let b = batch_of t ~party:me ~seq in
  if stage <= t.params.commit_depth && not b.sent.(stage) then begin
    b.sent.(stage) <- true;
    Net.broadcast t.net ~src:me (Hop { seq; stage })
  end

let on_hop t ~me ~src ~seq ~stage =
  let b = batch_of t ~party:me ~seq in
  if (not b.done_) && stage <= t.params.commit_depth then begin
    if Bitset.add b.stages.(stage) src then
      if Bitset.cardinal b.stages.(stage) >= quorum t then
        if stage = t.params.commit_depth then begin
          b.done_ <- true;
          commit_batch t ~seq
        end
        else advance_stage t ~me ~seq (stage + 1)
  end

let handle t ~me ~src msg =
  match msg with
  | Payload { id; _ } ->
      (* clan member: acknowledge availability back to the proposer *)
      Net.send t.net ~src:me ~dst:src (Ack { id })
  | Ack { id } -> (
      match Hashtbl.find_opt t.payloads id with
      | Some p when not p.poa_sent ->
          if Bitset.add p.acks src && Bitset.cardinal p.acks >= t.fc1 then begin
            p.poa_sent <- true;
            Net.send t.net ~src:me ~dst:t.leader (Poa { id })
          end
      | _ -> ())
  | Poa { id } ->
      if me = t.leader then t.pending_poas <- id :: t.pending_poas
  | Propose { seq; poas } ->
      if src = t.leader then begin
        if not (Hashtbl.mem t.batch_payloads seq) then
          Hashtbl.replace t.batch_payloads seq poas;
        (* the proposal is stage 1 *)
        advance_stage t ~me ~seq 2
      end
  | Hop { seq; stage } -> on_hop t ~me ~src ~seq ~stage

let rec leader_tick t =
  (match List.rev t.pending_poas with
  | [] -> ()
  | poas ->
      t.pending_poas <- [];
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Net.broadcast t.net ~src:t.leader (Propose { seq; poas = Array.of_list poas }));
  Engine.schedule_after t.engine t.params.batch_interval (fun () -> leader_tick t)

let create ~n ?clan ~params ~topology ~net_config ~seed ~payload_bytes () =
  if params.commit_depth < 2 then invalid_arg "Poa_smr: depth must be >= 2";
  let f = (n - 1) / 3 in
  let clan = match clan with Some c -> c | None -> Array.init n (fun i -> i) in
  let nc = Array.length clan in
  let fc1 = (((nc + 1) / 2) - 1) + 1 in
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~topology ~config:net_config ~size:(msg_size ~nc)
      ~rng:(Clanbft_util.Rng.create seed) ()
  in
  let t =
    {
      n;
      f;
      clan;
      fc1;
      payload_bytes;
      params;
      engine;
      net;
      leader = 0;
      payloads = Hashtbl.create 256;
      next_payload = 0;
      pending_poas = [];
      next_seq = 0;
      batches = Hashtbl.create 256;
      batch_payloads = Hashtbl.create 64;
      commit_counts = Hashtbl.create 64;
      latencies = Stats.create ();
      committed_payloads = 0;
    }
  in
  for me = 0 to n - 1 do
    Net.set_handler net me (fun ~src msg -> handle t ~me ~src msg)
  done;
  leader_tick t;
  t

let submit_payload t ~proposer =
  let id = t.next_payload in
  t.next_payload <- id + 1;
  Hashtbl.replace t.payloads id
    { created_at = Engine.now t.engine; acks = Bitset.create t.n; poa_sent = false };
  Array.iter
    (fun dst ->
      Net.send t.net ~src:proposer ~dst (Payload { id; size = t.payload_bytes }))
    t.clan
