lib/consensus/sailfish.ml: Array Block Cert Clanbft_crypto Clanbft_dag Clanbft_sim Clanbft_types Clanbft_util Config Digest32 Hashtbl Keychain List Logs Msg Option String Transaction Vertex
