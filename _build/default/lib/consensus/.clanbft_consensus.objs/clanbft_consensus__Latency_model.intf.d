lib/consensus/latency_model.mli:
