lib/consensus/sailfish.mli: Block Clanbft_crypto Clanbft_sim Clanbft_types Config Keychain Msg Transaction Vertex
