lib/consensus/poa_smr.mli: Clanbft_sim Engine Net Time Topology
