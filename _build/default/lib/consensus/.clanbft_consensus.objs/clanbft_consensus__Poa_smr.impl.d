lib/consensus/poa_smr.ml: Array Clanbft_sim Clanbft_util Engine Hashtbl List Net Option Time
