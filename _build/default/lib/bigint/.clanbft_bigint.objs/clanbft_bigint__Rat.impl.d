lib/bigint/rat.ml: Buffer Format Nat Printf
