lib/bigint/rat.mli: Format Nat
