lib/bigint/nat.ml: Array Buffer Char Float Format List Printf Stdlib String
