(* Little-endian limbs in base 2^30, canonical: no trailing zero limb.
   [zero] is the empty array. Base 2^30 keeps every intermediate product of
   two limbs plus a carry below 2^62, comfortably inside OCaml's 63-bit
   native ints. *)

type t = int array

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

let zero : t = [||]
let one : t = [| 1 |]

let is_zero (a : t) = Array.length a = 0

(* Strip trailing zero limbs to restore canonical form. *)
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec limbs n acc = if n = 0 then List.rev acc else limbs (n lsr base_bits) ((n land base_mask) :: acc) in
    Array.of_list (limbs n [])
  end

let to_int_opt (a : t) =
  let n = Array.length a in
  if n = 0 then Some 0
  else if n * base_bits <= 62 then begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl base_bits) lor a.(i)
    done;
    Some !v
  end
  else begin
    (* May still fit: check the top limbs explicitly. *)
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > (max_int - a.(i)) lsr base_bits then ok := false
      else v := (!v lsl base_bits) lor a.(i)
    done;
    if !ok then Some !v else None
  end

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let acc = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- acc land base_mask;
        carry := acc lsr base_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    done;
    normalize out
  end

let mul_int (a : t) m =
  if m < 0 || m >= base then invalid_arg "Nat.mul_int: multiplier out of range";
  if m = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let out = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let acc = (a.(i) * m) + !carry in
      out.(i) <- acc land base_mask;
      carry := acc lsr base_bits
    done;
    out.(la) <- !carry;
    normalize out
  end

let divmod_int (a : t) d =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_int: divisor out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

let shift_left1 (a : t) : t =
  let la = Array.length a in
  if la = 0 then zero
  else begin
    let out = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl 1) lor !carry in
      out.(i) <- v land base_mask;
      carry := v lsr base_bits
    done;
    out.(la) <- !carry;
    normalize out
  end

let shift_right1 (a : t) : t =
  let la = Array.length a in
  if la = 0 then zero
  else begin
    let out = Array.make la 0 in
    let carry = ref 0 in
    for i = la - 1 downto 0 do
      out.(i) <- (a.(i) lsr 1) lor (!carry lsl (base_bits - 1));
      carry := a.(i) land 1
    done;
    normalize out
  end

let is_even (a : t) = Array.length a = 0 || a.(0) land 1 = 0

let shift_left (a : t) k =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let out = Array.make (la + limb_shift + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl bit_shift) lor !carry in
      out.(i + limb_shift) <- v land base_mask;
      carry := v lsr base_bits
    done;
    out.(la + limb_shift) <- !carry;
    normalize out
  end

(* Forward declaration site for [bits]; defined below but needed by divmod.
   We compute it locally here to keep definition order simple. *)
let bits_of (a : t) =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((la - 1) * base_bits) + width a.(la - 1) 0
  end

let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    (* Binary long division: subtract shifted copies of [b] from the running
       remainder, recording quotient bits. The shifted divisors are produced
       incrementally from the largest down, halving each step. *)
    let shift = bits_of a - bits_of b in
    let d = ref (shift_left b shift) in
    let r = ref a in
    let qbits = Array.make (shift + 1) false in
    for i = shift downto 0 do
      if compare !r !d >= 0 then begin
        r := sub !r !d;
        qbits.(i) <- true
      end;
      if i > 0 then d := shift_right1 !d
    done;
    let q = Array.make ((shift / base_bits) + 1) 0 in
    for i = 0 to shift do
      if qbits.(i) then q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
    done;
    (normalize q, !r)
  end

(* Binary GCD: only needs comparison, subtraction and shifts. *)
let gcd a b =
  let rec go a b shift =
    if is_zero a then (b, shift)
    else if is_zero b then (a, shift)
    else
      match (is_even a, is_even b) with
      | true, true -> go (shift_right1 a) (shift_right1 b) (shift + 1)
      | true, false -> go (shift_right1 a) b shift
      | false, true -> go a (shift_right1 b) shift
      | false, false ->
          if compare a b >= 0 then go (shift_right1 (sub a b)) b shift
          else go a (shift_right1 (sub b a)) shift
  in
  let g, shift = go a b 0 in
  let rec reshift g i = if i = 0 then g else reshift (shift_left1 g) (i - 1) in
  reshift g shift

let pow a n =
  if n < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (n lsr 1)
    end
  in
  go one a n

let bits = bits_of

let to_float_exp (a : t) =
  let la = Array.length a in
  if la = 0 then (0.0, 0)
  else begin
    (* Fold the top limbs (up to 3, i.e. 90 bits) into a float mantissa, then
       renormalise into [1, 2). *)
    let hi = min la 3 in
    let m = ref 0.0 in
    for i = la - 1 downto la - hi do
      m := (!m *. float_of_int base) +. float_of_int a.(i)
    done;
    let e = ref ((la - hi) * base_bits) in
    let m = ref !m in
    while !m >= 2.0 do
      m := !m /. 2.0;
      incr e
    done;
    while !m < 1.0 && !m > 0.0 do
      m := !m *. 2.0;
      decr e
    done;
    (!m, !e)
  end

let to_float a =
  let f, e = to_float_exp a in
  if f = 0.0 then 0.0 else f *. Float.of_int 2 ** float_of_int e

let to_string a =
  if is_zero a then "0"
  else begin
    (* Peel 9 decimal digits at a time. *)
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_int !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
        let buf = Buffer.create 32 in
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
        Buffer.contents buf
  end

let of_string s =
  if String.length s = 0 then invalid_arg "Nat.of_string: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Nat.of_string: non-digit")
    s;
  !acc

let pp ppf a = Format.pp_print_string ppf (to_string a)
