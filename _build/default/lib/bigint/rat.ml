type t = { negative : bool; num : Nat.t; den : Nat.t }

let normalize negative num den =
  if Nat.is_zero den then invalid_arg "Rat: zero denominator";
  if Nat.is_zero num then { negative = false; num = Nat.zero; den = Nat.one }
  else begin
    let g = Nat.gcd num den in
    if Nat.equal g Nat.one then { negative; num; den }
    else
      { negative; num = fst (Nat.divmod num g); den = fst (Nat.divmod den g) }
  end

let zero = { negative = false; num = Nat.zero; den = Nat.one }
let one = { negative = false; num = Nat.one; den = Nat.one }
let make ?(negative = false) num den = normalize negative num den

let of_int n =
  if n >= 0 then { negative = false; num = Nat.of_int n; den = Nat.one }
  else { negative = true; num = Nat.of_int (-n); den = Nat.one }

let of_ints n d =
  if d = 0 then invalid_arg "Rat.of_ints: zero denominator";
  let negative = n < 0 <> (d < 0) in
  normalize negative (Nat.of_int (abs n)) (Nat.of_int (abs d))

let num t = t.num
let den t = t.den
let is_negative t = t.negative
let is_zero t = Nat.is_zero t.num

(* Add magnitudes assuming both operands share sign [negative]. *)
let add_mag negative a b =
  let num =
    Nat.add (Nat.mul a.num b.den) (Nat.mul b.num a.den)
  in
  normalize negative num (Nat.mul a.den b.den)

(* Magnitude comparison ignoring sign. *)
let compare_mag a b = Nat.compare (Nat.mul a.num b.den) (Nat.mul b.num a.den)

(* [a - b] on magnitudes, result sign chosen from the larger operand. *)
let sub_mag negative_if_a_wins a b =
  let cross_a = Nat.mul a.num b.den and cross_b = Nat.mul b.num a.den in
  let c = Nat.compare cross_a cross_b in
  if c = 0 then zero
  else if c > 0 then
    normalize negative_if_a_wins (Nat.sub cross_a cross_b) (Nat.mul a.den b.den)
  else
    normalize (not negative_if_a_wins) (Nat.sub cross_b cross_a)
      (Nat.mul a.den b.den)

let add a b =
  match (a.negative, b.negative) with
  | false, false -> add_mag false a b
  | true, true -> add_mag true a b
  | false, true -> sub_mag false a b
  | true, false -> sub_mag true a b

let neg t = if is_zero t then t else { t with negative = not t.negative }
let sub a b = add a (neg b)

let mul a b =
  normalize (a.negative <> b.negative) (Nat.mul a.num b.num)
    (Nat.mul a.den b.den)

let div a b =
  if is_zero b then raise Division_by_zero;
  normalize (a.negative <> b.negative) (Nat.mul a.num b.den)
    (Nat.mul a.den b.num)

let compare a b =
  match (a.negative, b.negative) with
  | false, true -> if is_zero a && is_zero b then 0 else 1
  | true, false -> if is_zero a && is_zero b then 0 else -1
  | false, false -> compare_mag a b
  | true, true -> compare_mag b a

let equal a b = compare a b = 0

let pow2 k =
  if k >= 0 then { negative = false; num = Nat.pow (Nat.of_int 2) k; den = Nat.one }
  else { negative = false; num = Nat.one; den = Nat.pow (Nat.of_int 2) (-k) }

let to_float t =
  if is_zero t then 0.0
  else begin
    let fn, en = Nat.to_float_exp t.num in
    let fd, ed = Nat.to_float_exp t.den in
    let magnitude = fn /. fd *. (2.0 ** float_of_int (en - ed)) in
    if t.negative then -.magnitude else magnitude
  end

let to_scientific ?(digits = 3) t =
  if is_zero t then "0"
  else begin
    (* Compute the decimal exponent then extract [digits]+1 significant
       decimal digits exactly via scaled integer division. *)
    let sign = if t.negative then "-" else "" in
    let e10 = ref 0 in
    (* Scale num or den by powers of 10 until 1 <= num/den < 10. *)
    let num = ref t.num and den = ref t.den in
    let ten = Nat.of_int 10 in
    while Nat.compare !num !den < 0 do
      num := Nat.mul_int !num 10;
      decr e10
    done;
    while Nat.compare !num (Nat.mul !den ten) >= 0 do
      den := Nat.mul_int !den 10;
      incr e10
    done;
    (* Now 1 <= num/den < 10: peel significant digits. *)
    let buf = Buffer.create 16 in
    let n = ref !num in
    for i = 0 to digits do
      let q, r = Nat.divmod !n !den in
      let digit = match Nat.to_int_opt q with Some d -> d | None -> assert false in
      if i = 1 then Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int digit);
      n := Nat.mul_int r 10
    done;
    Printf.sprintf "%s%se%s%02d" sign (Buffer.contents buf)
      (if !e10 < 0 then "-" else "+")
      (abs !e10)
  end

let pp ppf t = Format.pp_print_string ppf (to_scientific t)
