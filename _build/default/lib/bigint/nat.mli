(** Arbitrary-precision natural numbers.

    The committee-size analysis of the paper (Eq. 1–7) manipulates binomial
    coefficients such as C(1000, 225) ≈ 10^216, far beyond native integers,
    and `zarith` is not available in this environment. This module provides
    exactly the operations that analysis needs: addition, subtraction,
    multiplication, division by a machine-word divisor (enough for the
    multiplicative binomial formula, whose intermediate divisions are exact),
    binary GCD, and conversion to floats with explicit binary exponent so
    that ratios of astronomically large numbers can be evaluated without
    overflow.

    Values are immutable. Representation: little-endian limbs in base 2^30
    with no trailing zero limb (canonical form). *)

type t

val zero : t
val one : t

val of_int : int -> t
(** Requires a non-negative argument. *)

val to_int_opt : t -> int option
(** [Some n] when the value fits in a native [int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val mul : t -> t -> t

val mul_int : t -> int -> t
(** Multiply by a machine integer in [\[0, 2^30)]; use [mul] beyond that. *)

val divmod_int : t -> int -> t * int
(** [divmod_int a d] with [0 < d < 2^30] returns quotient and remainder. *)

val divmod : t -> t -> t * t
(** [divmod a b] returns [(q, r)] with [a = q*b + r] and [r < b]. Raises
    [Division_by_zero] when [b] is zero. *)

val shift_left : t -> int -> t
(** Shift left by [k >= 0] bits. *)

val shift_left1 : t -> t
val shift_right1 : t -> t
val is_even : t -> bool

val gcd : t -> t -> t
(** Binary GCD; [gcd 0 b = b]. *)

val pow : t -> int -> t

val bits : t -> int
(** Position of the highest set bit plus one; [bits zero = 0]. *)

val to_float_exp : t -> float * int
(** [to_float_exp n] is [(f, e)] with [n = f *. 2^e] approximately and
    [f] in [\[1, 2)] (or [(0., 0)] for zero). Exact for values below 2^53. *)

val to_float : t -> float
(** Nearest float; [infinity] when out of range. *)

val to_string : t -> string
(** Decimal representation. *)

val of_string : string -> t
(** Parses a decimal string of digits; raises [Invalid_argument] on anything
    else. *)

val pp : Format.formatter -> t -> unit
