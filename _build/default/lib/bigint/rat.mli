(** Exact rational arithmetic over {!Nat}.

    Probabilities in the committee analysis are ratios of huge binomial
    sums; they are tiny (down to 10^-30) yet must be compared against exact
    thresholds such as 2^-µ (Eq. 2, Eq. 8). Exact rationals make those
    comparisons unconditional; floats are derived only at the very end for
    display. Values are normalised (gcd-reduced, canonical sign, non-zero
    denominator). *)

type t

val zero : t
val one : t

val make : ?negative:bool -> Nat.t -> Nat.t -> t
(** [make num den]; raises [Invalid_argument] if [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t

val num : t -> Nat.t
val den : t -> Nat.t
val is_negative : t -> bool
val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val neg : t -> t

val pow2 : int -> t
(** [pow2 k] is 2^k, with [k] possibly negative — e.g. the security
    threshold 2^-µ. *)

val to_float : t -> float
(** Accurate even when numerator and denominator individually overflow the
    float range: evaluated as a mantissa ratio with explicit exponents. *)

val to_scientific : ?digits:int -> t -> string
(** Decimal scientific notation, e.g. ["4.015e-06"]. [digits] defaults to 3
    significant decimals after the leading digit. *)

val pp : Format.formatter -> t -> unit
