(** A node's local copy of the DAG.

    Invariant: a vertex is inserted only after all its parents (strong and
    weak edges) are present — the consensus layer buffers out-of-order
    arrivals — so every reachability query here runs on a closed sub-DAG.
    One slot (round, source) holds at most one vertex; the RBC layer
    guarantees conflicting vertices never both deliver. *)

open Clanbft_types

type t

val create : n:int -> t
val n : t -> int

val add : t -> Vertex.t -> unit
(** Raises [Invalid_argument] if the slot is already occupied by a
    different vertex or a parent is missing. Idempotent for the identical
    vertex. *)

val mem : t -> round:int -> source:int -> bool
val find : t -> round:int -> source:int -> Vertex.t option

val find_ref : t -> Vertex.vref -> Vertex.t option
(** Lookup by reference; [None] also when the stored vertex's digest does
    not match the reference (cannot happen for RBC-delivered data). *)

val missing_parents : t -> Vertex.t -> Vertex.vref list
(** Parents not yet in the store — the insertion guard. References below
    the {!prune_below} horizon count as present (their subtree was ordered
    and collected). *)

val vertices_at : t -> int -> Vertex.t list
(** All vertices of a round, ascending source order. *)

val count_at : t -> int -> int

val strong_path : t -> Vertex.t -> round:int -> source:int -> bool
(** Is (round, source) reachable from the given vertex following strong
    edges only? (Used for the indirect leader-commit rule.) *)

val causal_history :
  t -> Vertex.t -> skip:(round:int -> source:int -> bool) -> Vertex.t list
(** Every vertex reachable from the argument (inclusive, via strong and
    weak edges) for which [skip] is false, in deterministic total order:
    ascending (round, source). This is the paper's "order the causal
    history of the committed leader" step; determinism across replicas
    follows from DAG closure + agreement. *)

val highest_round : t -> int
(** Largest round holding at least one vertex; -1 when empty. *)

val floor : t -> int
(** Current GC horizon (0 until {!prune_below} raises it). *)

val prune_below : t -> round:int -> unit
(** Drop all vertices with [vertex.round < round] — garbage collection
    after ordering. Callers must no longer query below this horizon. *)

val size : t -> int
(** Number of vertices currently stored. *)
