lib/dag/store.mli: Clanbft_types Vertex
