lib/dag/store.ml: Array Clanbft_crypto Clanbft_types Hashtbl List Vertex
