(** Statistical committee-size analysis (paper §5 "Statistical security
    analysis" and §6.2).

    All probabilities are computed as exact rationals over
    arbitrary-precision integers and only converted to floats for display,
    so threshold comparisons like Eq. 2 / Eq. 8 are exact.

    Conventions, following §2 of the paper: the tribe has [n] parties of
    which [f = ⌊(n-1)/3⌋] may be Byzantine; a clan of size [nc] keeps an
    honest majority as long as it contains at most [fc = ⌈nc/2⌉ - 1]
    Byzantine members. *)

open Clanbft_bigint

val default_f : int -> int
(** [⌊(n-1)/3⌋]. *)

val max_clan_faults : int -> int
(** [fc] for a clan of size [nc]: the largest Byzantine count that still
    leaves a strict honest majority, i.e. [⌈nc/2⌉ - 1]. *)

val binomial : int -> int -> Nat.t
(** [binomial n k] = C(n, k); 0 when [k < 0 || k > n]. Exact. *)

val single_clan_failure : n:int -> f:int -> nc:int -> Rat.t
(** Eq. 1: probability that a uniformly random [nc]-subset of a tribe with
    [f] Byzantine members has a dishonest majority (hypergeometric upper
    tail starting at [⌈nc/2⌉]). *)

val multi_clan_failure : n:int -> f:int -> q:int -> nc:int -> Rat.t
(** Probability that at least one of [q] disjoint random clans of size [nc]
    lacks an honest majority (Eq. 3–7 generalised to any [q]; when
    [q * nc = n] the tribe is exactly partitioned as in §6). Requires
    [q * nc <= n]. For [q = 1] this coincides with {!single_clan_failure}.

    Parties left over after carving out the [q] clans (when [q*nc < n])
    belong to no clan and are unconstrained, matching sequential uniform
    sampling without replacement. *)

val min_clan_size : ?q:int -> n:int -> f:int -> threshold:Rat.t -> unit -> int option
(** Smallest [nc] such that the (single- or multi-clan) failure probability
    is at most [threshold]; [None] if no [nc <= n/q] (with [q] defaulting
    to 1) achieves it. Used to regenerate Fig. 1 and the clan sizes of §7. *)

(** {1 Clan election}

    §7: "We distributed clan nodes evenly across GCP regions instead of
    randomly sampling them"; both strategies are provided. *)

val elect_random : Clanbft_util.Rng.t -> n:int -> nc:int -> int array
(** Uniformly random [nc]-subset, sorted ascending. *)

val elect_balanced : n:int -> nc:int -> int array
(** The first [nc] ids — with round-robin region placement consecutive ids
    land evenly across regions, like the paper's setup. *)

val partition_random : Clanbft_util.Rng.t -> n:int -> q:int -> int array array
(** Random partition of the tribe into [q] clans; clan sizes differ by at
    most one. Each clan sorted ascending. *)

val partition_balanced : n:int -> q:int -> int array array
(** Deterministic partition: node [i] joins clan [i mod q]; region-balanced
    under round-robin placement. *)
