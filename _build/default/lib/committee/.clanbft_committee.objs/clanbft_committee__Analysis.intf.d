lib/committee/analysis.mli: Clanbft_bigint Clanbft_util Nat Rat
