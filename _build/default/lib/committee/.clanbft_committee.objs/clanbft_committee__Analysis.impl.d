lib/committee/analysis.ml: Array Clanbft_bigint Clanbft_util Hashtbl Nat Rat Stdlib
