open Clanbft_types
open Clanbft_crypto
module Engine = Clanbft_sim.Engine
module Stats = Clanbft_util.Stats

type tracked = {
  txn : Transaction.t;
  clan : int;
  required : int;
  (* per candidate digest: which executors vouched for it *)
  votes : Clanbft_util.Bitset.t Digest32.Tbl.t;
  mutable completed_at : Clanbft_sim.Time.t option;
}

type t = {
  engine : Engine.t;
  config : Config.t;
  id : int;
  on_complete : (Transaction.t -> latency:Clanbft_sim.Time.span -> unit) option;
  inflight : (int, tracked) Hashtbl.t;
  mutable next_seq : int;
  mutable completed : int;
  latencies : Stats.t;
}

let create ~engine ~config ~id ?on_complete () =
  {
    engine;
    config;
    id;
    on_complete;
    inflight = Hashtbl.create 64;
    next_seq = 0;
    completed = 0;
    latencies = Stats.create ();
  }

let make_txn t ?size () =
  let id = (t.id lsl 40) lor t.next_seq in
  t.next_seq <- t.next_seq + 1;
  Transaction.make ~id ~client:t.id ~created_at:(Engine.now t.engine) ?size ()

let track t txn ~clan =
  if clan < 0 || clan >= Config.clan_count t.config then
    invalid_arg "Client.track: no such clan";
  let required = Config.clan_fault_bound t.config clan + 1 in
  Hashtbl.replace t.inflight txn.Transaction.id
    {
      txn;
      clan;
      required;
      votes = Digest32.Tbl.create 2;
      completed_at = None;
    }

let deliver_response t ~executor txn digest =
  match Hashtbl.find_opt t.inflight txn.Transaction.id with
  | None -> ()
  | Some tracked when tracked.completed_at <> None -> ()
  | Some tracked ->
      if Config.clan_of t.config executor = Some tracked.clan then begin
        let votes =
          match Digest32.Tbl.find_opt tracked.votes digest with
          | Some b -> b
          | None ->
              let b = Clanbft_util.Bitset.create (Config.n t.config) in
              Digest32.Tbl.replace tracked.votes digest b;
              b
        in
        if
          Clanbft_util.Bitset.add votes executor
          && Clanbft_util.Bitset.cardinal votes >= tracked.required
        then begin
          let now = Engine.now t.engine in
          tracked.completed_at <- Some now;
          t.completed <- t.completed + 1;
          let latency = now - tracked.txn.created_at in
          Stats.add t.latencies (Clanbft_sim.Time.to_ms latency);
          match t.on_complete with
          | Some f -> f tracked.txn ~latency
          | None -> ()
        end
      end

let completed t = t.completed

let pending t =
  Hashtbl.fold
    (fun _ tr acc -> if tr.completed_at = None then acc + 1 else acc)
    t.inflight 0

let mean_latency_ms t = if Stats.is_empty t.latencies then 0.0 else Stats.mean t.latencies
