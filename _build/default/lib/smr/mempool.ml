open Clanbft_types

type t = {
  queue : Transaction.t Queue.t;
  capacity : int;
  mutable submitted : int;
  mutable rejected : int;
}

let create ?(capacity = 1_000_000) () =
  { queue = Queue.create (); capacity; submitted = 0; rejected = 0 }

let submit t txn =
  if Queue.length t.queue >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    Queue.add txn t.queue;
    t.submitted <- t.submitted + 1;
    true
  end

let take t ~max =
  let count = min max (Queue.length t.queue) in
  Array.init count (fun _ -> Queue.pop t.queue)

let pending t = Queue.length t.queue
let submitted_total t = t.submitted
let rejected_total t = t.rejected
