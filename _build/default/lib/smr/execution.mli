(** Deterministic execution engine.

    Clan members execute ordered blocks and answer clients (§1: a client
    accepts a result vouched for by [fc + 1] clan members). The state is a
    hash chain over executed blocks: identical ordered inputs yield an
    identical state digest on every replica, which is exactly the property
    the client quorum checks. Per-transaction responses are derived from the
    post-state so that divergent replicas cannot produce matching
    responses. *)

open Clanbft_types
open Clanbft_crypto

type t

val create : unit -> t

val apply_block : t -> Block.t -> unit
(** Fold the block into the state; must be called in a_deliver order. *)

val skip_block : t -> Digest32.t -> unit
(** Fold only the digest of a block this replica does not store (another
    clan's payload, multi-clan mode): the chain stays comparable across
    clans while the payload stays remote. *)

val state_digest : t -> Digest32.t
val executed_blocks : t -> int
val executed_txns : t -> int

val response : t -> Transaction.t -> Digest32.t
(** The execution receipt a replica returns to the issuing client:
    H(state ‖ txn id). Two replicas agree on a response iff they executed
    the same history prefix. *)
