lib/smr/node.ml: Array Block Clanbft_consensus Clanbft_crypto Clanbft_types Config Digest32 Execution List Mempool Option Persist Printf Queue Transaction Vertex
