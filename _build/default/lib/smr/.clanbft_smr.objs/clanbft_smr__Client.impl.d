lib/smr/client.ml: Clanbft_crypto Clanbft_sim Clanbft_types Clanbft_util Config Digest32 Hashtbl Transaction
