lib/smr/client.mli: Clanbft_crypto Clanbft_sim Clanbft_types Config Digest32 Transaction
