lib/smr/execution.mli: Block Clanbft_crypto Clanbft_types Digest32 Transaction
