lib/smr/runner.mli: Clanbft_consensus Clanbft_sim Format Net Time
