lib/smr/persist.ml: Clanbft_sim Engine Hashtbl Option Time
