lib/smr/mempool.ml: Array Clanbft_types Queue Transaction
