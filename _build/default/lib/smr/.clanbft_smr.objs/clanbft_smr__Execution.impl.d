lib/smr/execution.ml: Array Block Clanbft_crypto Clanbft_types Digest32 Printf Transaction
