lib/smr/node.mli: Clanbft_consensus Clanbft_crypto Clanbft_sim Clanbft_types Config Digest32 Execution Keychain Mempool Msg Persist Transaction Vertex
