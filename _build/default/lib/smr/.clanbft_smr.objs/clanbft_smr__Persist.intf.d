lib/smr/persist.mli: Clanbft_sim Engine Time
