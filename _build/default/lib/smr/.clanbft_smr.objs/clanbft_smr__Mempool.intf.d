lib/smr/mempool.mli: Clanbft_types Transaction
