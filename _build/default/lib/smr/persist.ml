open Clanbft_sim

type t = {
  engine : Engine.t;
  write_latency : Time.span;
  bytes_per_us : float;
  mutable disk_free_at : Time.t; (* FIFO write queue head *)
  durable : (string, string option) Hashtbl.t;
  mutable writes : int;
  mutable bytes : int;
  mutable backlog : int;
}

let create ~engine ?(write_latency = Time.us 100)
    ?(write_bandwidth_mbps = 400.) () =
  if write_bandwidth_mbps <= 0.0 then invalid_arg "Persist.create: bandwidth";
  {
    engine;
    write_latency;
    (* MB/s = bytes/µs numerically. *)
    bytes_per_us = write_bandwidth_mbps;
    disk_free_at = 0;
    durable = Hashtbl.create 1024;
    writes = 0;
    bytes = 0;
    backlog = 0;
  }

let put t ~key ~size ?data ~on_durable () =
  if size < 0 then invalid_arg "Persist.put: negative size";
  let now = Engine.now t.engine in
  let transfer = int_of_float (ceil (float_of_int size /. t.bytes_per_us)) in
  let done_at = max now t.disk_free_at + t.write_latency + transfer in
  t.disk_free_at <- done_at;
  t.writes <- t.writes + 1;
  t.bytes <- t.bytes + size;
  t.backlog <- t.backlog + 1;
  Engine.schedule_at t.engine done_at (fun () ->
      Hashtbl.replace t.durable key data;
      t.backlog <- t.backlog - 1;
      on_durable ())

let get t ~key = Option.join (Hashtbl.find_opt t.durable key)
let is_durable t ~key = Hashtbl.mem t.durable key
let writes t = t.writes
let bytes_written t = t.bytes
let backlog t = t.backlog
