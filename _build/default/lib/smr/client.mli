(** Client-side transaction tracking.

    Implements the paper's client acceptance rule (§1): a transaction is
    complete once [fc + 1] distinct members of the executing clan return
    {e matching} execution receipts — with at most [fc] Byzantine clan
    members, at least one honest executor stands behind any accepted
    result. *)

open Clanbft_types
open Clanbft_crypto

type t

val create :
  engine:Clanbft_sim.Engine.t ->
  config:Config.t ->
  id:int ->
  ?on_complete:(Transaction.t -> latency:Clanbft_sim.Time.span -> unit) ->
  unit ->
  t

val make_txn : t -> ?size:int -> unit -> Transaction.t
(** Fresh transaction stamped with the current simulated time; ids are
    unique per client ([id] in the high bits). *)

val track : t -> Transaction.t -> clan:int -> unit
(** Register the transaction as submitted towards [clan]; responses are
    matched against that clan's [fc + 1] threshold. *)

val deliver_response : t -> executor:int -> Transaction.t -> Digest32.t -> unit
(** Feed one replica's receipt. Mismatching digests are kept apart: only a
    digest vouched for by [fc + 1] distinct clan members completes the
    transaction. *)

val completed : t -> int
val pending : t -> int
val mean_latency_ms : t -> float
(** Mean submit→accept latency over completed transactions. *)
