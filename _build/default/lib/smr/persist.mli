(** Simulated persistent consensus store (the paper uses RocksDB).

    The evaluation attributes part of the large-scale latency to database
    work, so persistence is modelled rather than ignored: every put charges
    a configurable synchronous latency budget to a per-node storage queue;
    readers observe data only after its write completes. Payload bytes are
    accounted but, to keep multi-gigabyte experiments cheap, actual content
    storage is optional ([data = None] stores metadata only — used by the
    benches; tests store real bytes and read them back). *)

open Clanbft_sim

type t

val create :
  engine:Engine.t ->
  ?write_latency:Time.span ->
  ?write_bandwidth_mbps:float ->
  unit ->
  t
(** Defaults: 100 µs fixed latency per write plus 400 MB/s sequential
    bandwidth — conservative figures for a cloud NVMe volume running a
    RocksDB WAL. *)

val put :
  t ->
  key:string ->
  size:int ->
  ?data:string ->
  on_durable:(unit -> unit) ->
  unit ->
  unit
(** Queue a write; [on_durable] fires when it hits "disk". *)

val get : t -> key:string -> string option
(** Contents of a durable write made with [?data]; [None] otherwise. *)

val is_durable : t -> key:string -> bool
val writes : t -> int
val bytes_written : t -> int
val backlog : t -> int
(** Writes queued but not yet durable. *)
