open Clanbft_types
open Clanbft_crypto

type t = {
  mutable state : Digest32.t;
  mutable blocks : int;
  mutable txns : int;
}

let create () = { state = Digest32.zero; blocks = 0; txns = 0 }

let fold_digest t d =
  t.state <- Digest32.hash_string (Digest32.to_raw t.state ^ Digest32.to_raw d);
  t.blocks <- t.blocks + 1

let apply_block t (b : Block.t) =
  fold_digest t (Block.digest b);
  t.txns <- t.txns + Array.length b.txns

let skip_block t digest = fold_digest t digest
let state_digest t = t.state
let executed_blocks t = t.blocks
let executed_txns t = t.txns

let response t (txn : Transaction.t) =
  Digest32.hash_string
    (Printf.sprintf "%s|resp|%d" (Digest32.to_raw t.state) txn.id)
