(** Client transactions.

    The evaluation's unit of work: §7 uses 512-byte transactions of random
    bytes. The simulator does not ship payload bytes around — only their
    size matters to the network — but each transaction carries a unique id
    that the execution layer folds into the replicated state, so execution
    results are deterministic and comparable across replicas. *)

type t = {
  id : int;  (** globally unique *)
  client : int;  (** issuing client id *)
  created_at : Clanbft_sim.Time.t;  (** creation time; latency = commit - this *)
  size : int;  (** wire bytes of the payload *)
}

val default_size : int
(** 512, as in §7. *)

val make : id:int -> client:int -> created_at:Clanbft_sim.Time.t -> ?size:int -> unit -> t

val wire_size : t -> int
(** Bytes on the wire: 24-byte header (id, client, created_at, size) +
    payload. *)

val pp : Format.formatter -> t -> unit
