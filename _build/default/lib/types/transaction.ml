type t = { id : int; client : int; created_at : Clanbft_sim.Time.t; size : int }

let default_size = 512

let make ~id ~client ~created_at ?(size = default_size) () =
  if size < 0 then invalid_arg "Transaction.make: negative size";
  { id; client; created_at; size }

let wire_size t = 24 + t.size

let pp ppf t =
  Format.fprintf ppf "txn#%d(client=%d,%dB)" t.id t.client t.size
