open Clanbft_crypto
module Bitset = Clanbft_util.Bitset

type kind = Timeout | No_vote
type t = { kind : kind; round : int; agg : Keychain.aggregate }

let signing_string kind round =
  match kind with
  | Timeout -> Printf.sprintf "timeout|%d" round
  | No_vote -> Printf.sprintf "novote|%d" round

let make keychain kind ~round shares =
  match Keychain.aggregate keychain ~msg:(signing_string kind round) shares with
  | None -> None
  | Some agg -> Some { kind; round; agg }

let of_wire kind ~round ~agg = { kind; round; agg }

let verify keychain ~quorum t =
  Bitset.cardinal (Keychain.signers t.agg) >= quorum
  && Keychain.verify_aggregate keychain ~msg:(signing_string t.kind t.round) t.agg

let signer_count t = Bitset.cardinal (Keychain.signers t.agg)
let wire_size ~n = 5 + Keychain.signature_size + ((n + 7) / 8)

let pp ppf t =
  Format.fprintf ppf "%s-cert(r%d,%d signers)"
    (match t.kind with Timeout -> "timeout" | No_vote -> "no-vote")
    t.round (signer_count t)
