lib/types/msg.mli: Block Cert Clanbft_crypto Digest32 Format Keychain Vertex
