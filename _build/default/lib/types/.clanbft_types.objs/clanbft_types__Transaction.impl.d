lib/types/transaction.ml: Clanbft_sim Format
