lib/types/cert.ml: Clanbft_crypto Clanbft_util Format Keychain Printf
