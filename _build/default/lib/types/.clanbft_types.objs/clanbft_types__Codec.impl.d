lib/types/codec.ml: Array Block Buffer Bytes Cert Char Clanbft_crypto Clanbft_util Digest32 Keychain Msg Printf String Transaction Vertex
