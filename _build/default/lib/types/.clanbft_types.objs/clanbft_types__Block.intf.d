lib/types/block.mli: Clanbft_crypto Digest32 Format Transaction
