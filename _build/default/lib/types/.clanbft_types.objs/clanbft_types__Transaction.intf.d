lib/types/transaction.mli: Clanbft_sim Format
