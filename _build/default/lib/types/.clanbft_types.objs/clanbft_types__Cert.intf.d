lib/types/cert.mli: Clanbft_crypto Format Keychain
