lib/types/codec.mli: Block Msg Vertex
