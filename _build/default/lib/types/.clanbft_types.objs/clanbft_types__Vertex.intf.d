lib/types/vertex.mli: Cert Clanbft_crypto Digest32 Format
