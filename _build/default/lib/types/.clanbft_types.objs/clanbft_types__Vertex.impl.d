lib/types/vertex.ml: Array Cert Clanbft_crypto Digest32 Format Int Printf Sha256
