lib/types/msg.ml: Block Cert Clanbft_crypto Digest32 Format Keychain String Vertex
