lib/types/config.mli: Format
