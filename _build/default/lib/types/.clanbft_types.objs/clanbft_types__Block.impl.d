lib/types/block.ml: Array Bytes Char Clanbft_crypto Digest32 Format Sha256 Transaction
