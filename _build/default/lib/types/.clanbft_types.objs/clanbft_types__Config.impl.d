lib/types/config.ml: Array Format List Printf String
