(** Binary codec for {!Msg.t}.

    The simulator itself moves OCaml values, not bytes — but the byte format
    matters twice: (1) {!Msg.wire_size} must account exactly the bytes a
    real deployment would send (it drives the bandwidth model), and (2) a
    persistent store needs a serial form. The invariant
    [String.length (encode ~n m) = Msg.wire_size ~n m] is enforced by a
    property test.

    Encoding notes: integers are big-endian fixed width; signatures occupy
    the full κ = 64 wire bytes (zero-padded — the simulated tags are 32
    bytes); transaction payloads are zero-filled to their declared size. *)

exception Decode_error of string

val encode : n:int -> Msg.t -> string
val decode : n:int -> string -> Msg.t
(** Raises {!Decode_error} on malformed input. Round-trips with {!encode}
    up to signature padding (padding is stripped back to 32-byte tags). *)

(** Standalone entry points used by the store and tests. *)

val encode_vertex : n:int -> Vertex.t -> string
val decode_vertex : n:int -> string -> Vertex.t
val encode_block : Block.t -> string
val decode_block : string -> Block.t
