(** Timeout and no-vote certificates (Fig. 4, [v.tc] and [v.nvc]).

    A timeout certificate for round [r] proves 2f+1 parties gave up waiting
    for round [r] to complete and justifies advancing without the leader. A
    no-vote certificate proves 2f+1 parties did not vote for the round-[r]
    leader and entitles the round-[r+1] leader to propose without a strong
    edge to it. Both are BLS-style aggregates: κ bytes + a signer bitvector
    (§7, implementation details). *)

open Clanbft_crypto

type kind = Timeout | No_vote

type t = private {
  kind : kind;
  round : int;
  agg : Keychain.aggregate;
}

val signing_string : kind -> int -> string
(** Canonical message each party signs for ([kind], [round]). *)

val make :
  Keychain.t -> kind -> round:int -> (int * Keychain.signature) list -> t option
(** Aggregate the shares; [None] if a signer id is invalid. No upfront
    verification (the paper's aggregation strategy): a forged share makes
    {!verify} fail later. *)

val of_wire : kind -> round:int -> agg:Keychain.aggregate -> t
(** Reassemble a decoded certificate; {!verify} still applies. *)

val verify : Keychain.t -> quorum:int -> t -> bool
(** Valid iff the aggregate checks out and carries at least [quorum]
    distinct signers. *)

val signer_count : t -> int
val wire_size : n:int -> int
(** 5-byte header + κ + ⌈n/8⌉. *)

val pp : Format.formatter -> t -> unit
