lib/rbc/rbc.ml: Array Clanbft_crypto Clanbft_sim Clanbft_util Digest32 Hashtbl Keychain List Option Printf String
