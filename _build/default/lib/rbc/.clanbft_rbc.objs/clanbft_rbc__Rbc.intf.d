lib/rbc/rbc.mli: Clanbft_crypto Clanbft_sim Digest32 Keychain
