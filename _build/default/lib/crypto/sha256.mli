(** SHA-256 (FIPS 180-4), implemented from scratch.

    The container has no [digestif]; the protocol needs collision-resistant
    digests for vertex ids, block digests and signature material. Verified in
    the test suite against the RFC 6234 / NIST test vectors. *)

type ctx

val init : unit -> ctx

val feed_string : ctx -> string -> unit
val feed_bytes : ctx -> bytes -> pos:int -> len:int -> unit

val finalize : ctx -> string
(** Returns the 32-byte raw digest and invalidates the context. *)

val digest_string : string -> string
(** One-shot convenience; 32 raw bytes. *)

val hex_of_string : string -> string
(** [hex_of_string s] is the lowercase hex digest of [s]. *)
