type t = string

let size = 32

let of_raw s =
  if String.length s <> size then invalid_arg "Digest32.of_raw: need 32 bytes";
  s

let hash_string s = Sha256.digest_string s
let to_raw t = t
let to_hex t = Clanbft_util.Hex.encode t
let short t = String.sub (to_hex t) 0 8
let equal = String.equal
let compare = String.compare

(* The digest is already uniform; fold the first 8 bytes into an int. *)
let hash t =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code t.[i]
  done;
  !v land max_int

let zero = String.make size '\x00'
let pp ppf t = Format.pp_print_string ppf (short t)

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Map = Map.Make (Key)
