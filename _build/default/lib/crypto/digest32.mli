(** 32-byte SHA-256 digests with a compact comparable representation.

    Digests identify blocks and vertices throughout the protocol stack and
    key most hot hash tables, so equality and hashing must be cheap. *)

type t

val of_raw : string -> t
(** Wrap a 32-byte raw digest; raises [Invalid_argument] on wrong length. *)

val hash_string : string -> t
(** SHA-256 of the argument. *)

val to_raw : t -> string
val to_hex : t -> string

val short : t -> string
(** First 8 hex characters — for logs. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val size : int
(** Wire size in bytes (32). *)

val zero : t
(** The all-zero digest; used as a placeholder for "no digest". *)

val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Map : Map.S with type key = t
