lib/crypto/keychain.mli: Clanbft_util
