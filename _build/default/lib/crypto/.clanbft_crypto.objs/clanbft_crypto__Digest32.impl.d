lib/crypto/digest32.ml: Char Clanbft_util Format Hashtbl Map Sha256 String
