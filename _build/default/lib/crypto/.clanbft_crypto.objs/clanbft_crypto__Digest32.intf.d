lib/crypto/digest32.mli: Format Hashtbl Map
