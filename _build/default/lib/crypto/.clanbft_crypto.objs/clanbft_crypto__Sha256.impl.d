lib/crypto/sha256.ml: Array Bytes Char Clanbft_util String
