lib/crypto/keychain.ml: Array Bytes Char Clanbft_util Hashtbl List Sha256 Stdlib String
