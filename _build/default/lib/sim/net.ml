module Rng = Clanbft_util.Rng

type config = {
  uplink_gbps : float;
  per_message_overhead : int;
  jitter : float;
  gst : Time.t;
  pre_gst_max_extra : Time.span;
  local_delivery : Time.span;
}

let default_config =
  {
    (* e2-standard-32 advertises "up to 16 Gbps"; sustained wide-area TCP
       goodput on such instances is far lower. We model an effective
       per-node uplink of 2 Gbps, which reproduces the saturation knees of
       Fig. 5 (see EXPERIMENTS.md for the calibration note). *)
    uplink_gbps = 2.0;
    per_message_overhead = 60;
    jitter = 0.01;
    gst = 0;
    pre_gst_max_extra = 0;
    local_delivery = 20;
  }

type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  config : config;
  size : 'msg -> int;
  rng : Rng.t;
  handlers : (src:int -> 'msg -> unit) array;
  uplink_free : Time.t array; (* when each node's uplink next idles *)
  mutable filter : src:int -> dst:int -> 'msg -> bool;
  bytes_sent : int array;
  bytes_received : int array;
  messages_sent : int array;
  mutable total_bytes : int;
  mutable total_messages : int;
}

let no_handler ~src:_ _ =
  failwith "Net: message delivered to a node with no handler installed"

let create ~engine ~topology ~config ~size ~rng () =
  let n = Topology.n topology in
  {
    engine;
    topology;
    config;
    size;
    rng;
    handlers = Array.make n no_handler;
    uplink_free = Array.make n 0;
    filter = (fun ~src:_ ~dst:_ _ -> true);
    bytes_sent = Array.make n 0;
    bytes_received = Array.make n 0;
    messages_sent = Array.make n 0;
    total_bytes = 0;
    total_messages = 0;
  }

let n t = Topology.n t.topology
let set_handler t i fn = t.handlers.(i) <- fn
let set_filter t f = t.filter <- f

(* Serialization delay in µs for [bytes] at [gbps]:
   bytes * 8 bits / (gbps * 1e9 bit/s) seconds = bytes * 8 / (gbps * 1e3) µs *)
let serialization_us config bytes =
  int_of_float (ceil (float_of_int bytes *. 8.0 /. (config.uplink_gbps *. 1_000.0)))

let deliver t ~src ~dst msg arrival =
  Engine.schedule_at t.engine arrival (fun () ->
      t.bytes_received.(dst) <- t.bytes_received.(dst) + t.size msg + t.config.per_message_overhead;
      t.handlers.(dst) ~src msg)

let send t ~src ~dst msg =
  if not (t.filter ~src ~dst msg) then ()
  else begin
    let now = Engine.now t.engine in
    let bytes = t.size msg + t.config.per_message_overhead in
    t.bytes_sent.(src) <- t.bytes_sent.(src) + bytes;
    t.messages_sent.(src) <- t.messages_sent.(src) + 1;
    t.total_bytes <- t.total_bytes + bytes;
    t.total_messages <- t.total_messages + 1;
    if src = dst then deliver t ~src ~dst msg (now + t.config.local_delivery)
    else begin
      let ser = serialization_us t.config bytes in
      let depart = max now t.uplink_free.(src) + ser in
      t.uplink_free.(src) <- depart;
      let base_latency = Topology.one_way t.topology ~src ~dst in
      let jitter =
        if t.config.jitter = 0.0 then 0
        else
          let u = (2.0 *. Rng.float t.rng 1.0) -. 1.0 in
          int_of_float (float_of_int base_latency *. t.config.jitter *. u)
      in
      let adversarial =
        if now < t.config.gst && t.config.pre_gst_max_extra > 0 then
          Rng.int t.rng (t.config.pre_gst_max_extra + 1)
        else 0
      in
      let arrival = depart + max 0 (base_latency + jitter) + adversarial in
      deliver t ~src ~dst msg arrival
    end
  end

let multicast t ~src ~dsts msg = List.iter (fun dst -> send t ~src ~dst msg) dsts

let broadcast t ~src msg =
  for dst = 0 to n t - 1 do
    send t ~src ~dst msg
  done

let bytes_sent t i = t.bytes_sent.(i)
let bytes_received t i = t.bytes_received.(i)
let messages_sent t i = t.messages_sent.(i)
let total_bytes t = t.total_bytes
let total_messages t = t.total_messages

let reset_metrics t =
  Array.fill t.bytes_sent 0 (Array.length t.bytes_sent) 0;
  Array.fill t.bytes_received 0 (Array.length t.bytes_received) 0;
  Array.fill t.messages_sent 0 (Array.length t.messages_sent) 0;
  t.total_bytes <- 0;
  t.total_messages <- 0
