type t = {
  n : int;
  region_of : int array; (* node -> region index *)
  one_way_us : int array array; (* region x region, microseconds *)
  regions : string array;
}

let n t = t.n

let one_way t ~src ~dst =
  t.one_way_us.(t.region_of.(src)).(t.region_of.(dst))

let region_name t i = t.regions.(t.region_of.(i))

let gcp_regions =
  [|
    "us-east1"; "us-west1"; "europe-north1"; "asia-northeast1";
    "australia-southeast1";
  |]

(* Table 1 of the paper: ping RTT in ms between GCP regions. The paper's
   matrix is almost symmetric; we keep the source-row values as printed. *)
let gcp_rtt_ms =
  [|
    [| 0.75; 66.14; 114.75; 160.28; 197.98 |];
    [| 66.15; 0.66; 158.13; 89.56; 138.33 |];
    [| 115.40; 158.38; 0.69; 245.15; 295.13 |];
    [| 159.89; 90.05; 246.01; 0.66; 105.58 |];
    [| 197.60; 139.02; 294.36; 108.26; 0.58 |];
  |]

let matrix_us ~regions ~rtt_ms =
  let r = Array.length regions in
  Array.init r (fun i ->
      Array.init r (fun j -> int_of_float (rtt_ms.(i).(j) /. 2.0 *. 1_000.0)))

let custom ~n ~region_of ~regions ~rtt_ms =
  if n <= 0 then invalid_arg "Topology: n must be positive";
  let r = Array.length regions in
  if Array.length rtt_ms <> r || Array.exists (fun row -> Array.length row <> r) rtt_ms
  then invalid_arg "Topology.custom: matrix/region mismatch";
  let region_of =
    Array.init n (fun i ->
        let reg = region_of i in
        if reg < 0 || reg >= r then invalid_arg "Topology.custom: bad region";
        reg)
  in
  { n; region_of; one_way_us = matrix_us ~regions ~rtt_ms; regions }

let gcp_table1 ~n =
  custom ~n
    ~region_of:(fun i -> i mod Array.length gcp_regions)
    ~regions:gcp_regions ~rtt_ms:gcp_rtt_ms

let uniform ~n ~one_way_ms =
  let rtt = 2.0 *. one_way_ms in
  custom ~n
    ~region_of:(fun _ -> 0)
    ~regions:[| "uniform" |]
    ~rtt_ms:[| [| rtt |] |]
