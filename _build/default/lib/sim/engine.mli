(** Discrete-event simulation engine.

    A single-threaded event loop over a priority queue keyed by simulated
    time. Ties are processed in scheduling order, so a run is a pure function
    of the initial schedule — which makes Byzantine/partial-synchrony test
    scenarios exactly reproducible. *)

type t

val create : unit -> t

val now : t -> Time.t

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** Raises [Invalid_argument] if the time is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> unit

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Process events in time order until the queue empties, the clock passes
    [until], or [max_events] have run. When stopping on [until], the clock is
    left at [until] and any later events stay queued. *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val pending : t -> int
val events_processed : t -> int
