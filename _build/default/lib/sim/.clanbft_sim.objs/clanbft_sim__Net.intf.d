lib/sim/net.mli: Clanbft_util Engine Time Topology
