lib/sim/net.ml: Array Clanbft_util Engine List Time Topology
