lib/sim/engine.ml: Array Clanbft_util List Queue Time
