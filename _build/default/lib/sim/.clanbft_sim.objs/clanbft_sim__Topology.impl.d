lib/sim/topology.ml: Array
