(** Simulated time.

    All timestamps and durations are integer microseconds. Integer time makes
    event ordering exact and experiments bit-reproducible; at 1 µs
    granularity a 63-bit int covers ~292,000 years of simulated time. *)

type t = int
(** Absolute simulation time in microseconds since experiment start. *)

type span = int
(** A duration in microseconds. *)

val zero : t
val us : int -> span
val ms : float -> span
val s : float -> span
val to_ms : t -> float
val to_s : t -> float
val add : t -> span -> t
val pp : Format.formatter -> t -> unit
