(** Network topologies: who sits where and how far apart.

    The paper's evaluation (§7) spreads nodes evenly across five GCP regions
    and reports the inter-region round-trip latencies in Table 1.
    {!gcp_table1} reproduces exactly that placement and latency matrix;
    one-way delays are taken as RTT/2. *)

type t

val n : t -> int

val one_way : t -> src:int -> dst:int -> Time.span
(** Propagation delay from node [src] to node [dst], excluding serialization
    and queuing. *)

val region_name : t -> int -> string

val gcp_regions : string array
(** The five regions of Table 1, in paper order. *)

val gcp_rtt_ms : float array array
(** Table 1 itself: RTT in milliseconds, indexed by region. *)

val gcp_table1 : n:int -> t
(** [n] nodes assigned round-robin to the five GCP regions (the paper's
    "distributed evenly across five distinct GCP regions"). *)

val uniform : n:int -> one_way_ms:float -> t
(** Every pair at the same one-way delay. (Self-sends bypass the network in
    {!Net}, so the diagonal is irrelevant in practice.) *)

val custom : n:int -> region_of:(int -> int) -> regions:string array ->
  rtt_ms:float array array -> t
(** Arbitrary region placement over an arbitrary RTT matrix. *)
