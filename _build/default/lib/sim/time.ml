type t = int
type span = int

let zero = 0
let us n = n
let ms f = int_of_float (f *. 1_000.0)
let s f = int_of_float (f *. 1_000_000.0)
let to_ms t = float_of_int t /. 1_000.0
let to_s t = float_of_int t /. 1_000_000.0
let add t d = t + d

let pp ppf t =
  if t < 1_000 then Format.fprintf ppf "%dus" t
  else if t < 1_000_000 then Format.fprintf ppf "%.2fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_s t)
