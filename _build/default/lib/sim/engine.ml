module Heap = Clanbft_util.Heap

(* The event queue is a calendar (bucket ring) keyed by microsecond
   timestamp: large experiments keep millions of events in flight, and a
   binary heap's O(log n) per operation dominated the whole simulator. The
   ring covers [horizon] µs ahead of the clock; the rare event scheduled
   further out (long timers) parks in an overflow heap and migrates into the
   ring as the clock approaches. Within a microsecond, events run in
   scheduling order (buckets are consed LIFO and reversed on drain), so runs
   stay deterministic. *)

let ring_bits = 23
let horizon = 1 lsl ring_bits (* 8.39 simulated seconds *)
let mask = horizon - 1

type t = {
  ring : (unit -> unit) list array;
  overflow : (unit -> unit) Heap.t;
  now_queue : (unit -> unit) Queue.t; (* scheduled for the current µs *)
  mutable drain : (unit -> unit) list; (* current bucket, FIFO order *)
  mutable clock : Time.t;
  mutable pending : int;
  mutable processed : int;
}

let nothing () = ()

let create () =
  {
    ring = Array.make horizon [];
    overflow = Heap.create ~capacity:64 ~dummy:nothing ();
    now_queue = Queue.create ();
    drain = [];
    clock = 0;
    pending = 0;
    processed = 0;
  }

let now t = t.clock

let schedule_at t time fn =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  t.pending <- t.pending + 1;
  if time = t.clock then Queue.add fn t.now_queue
  else if time - t.clock < horizon then
    t.ring.(time land mask) <- fn :: t.ring.(time land mask)
  else Heap.push t.overflow time fn

let schedule_after t span fn =
  if span < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (t.clock + span) fn

(* Move overflow events that now fit in the ring. *)
let migrate t =
  let rec go () =
    match Heap.peek_priority t.overflow with
    | Some time when time - t.clock < horizon ->
        (match Heap.pop t.overflow with
        | Some (time, fn) -> t.ring.(time land mask) <- fn :: t.ring.(time land mask)
        | None -> ());
        go ()
    | Some _ | None -> ()
  in
  go ()

(* Time of the next pending event, advancing the clock up to (but not past)
   it. Returns [None] when the queue is empty. *)
let next_event_time t =
  if t.pending = 0 then None
  else if (not (Queue.is_empty t.now_queue)) || t.drain <> [] then Some t.clock
  else begin
    migrate t;
    (* Scan the ring forward; events are guaranteed within one horizon of
       the clock once the overflow is migrated — unless only overflow events
       remain far in the future, handled by jumping. *)
    let rec scan steps =
      if steps > horizon then begin
        match Heap.peek_priority t.overflow with
        | None -> None (* inconsistent pending count; defensive *)
        | Some time ->
            t.clock <- time - horizon + 1;
            migrate t;
            scan 0
      end
      else begin
        let time = t.clock + steps in
        match t.ring.(time land mask) with
        | [] -> scan (steps + 1)
        | _ -> Some time
      end
    in
    scan 1
  end

let step t =
  match
    (* Order within an instant: first the bucket's already-scheduled events
       (FIFO), then events scheduled for "now" while processing them. *)
    match t.drain with
    | fn :: rest ->
        t.drain <- rest;
        Some fn
    | [] -> (
        if not (Queue.is_empty t.now_queue) then Some (Queue.pop t.now_queue)
        else
          match next_event_time t with
          | None -> None
          | Some time ->
              t.clock <- time;
              (match List.rev t.ring.(time land mask) with
              | fn :: rest ->
                  t.ring.(time land mask) <- [];
                  t.drain <- rest;
                  Some fn
              | [] -> None))
  with
  | None -> false
  | Some fn ->
      t.pending <- t.pending - 1;
      t.processed <- t.processed + 1;
      fn ();
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some m -> m) in
  let continue = ref true in
  while !continue && !budget > 0 do
    (* Fast path: events at the current instant need no horizon checks. *)
    if (not (Queue.is_empty t.now_queue)) || t.drain <> [] then begin
      ignore (step t);
      decr budget
    end
    else
      match next_event_time t with
      | None -> continue := false
      | Some time -> (
          match until with
          | Some hrz when time > hrz ->
              t.clock <- hrz;
              continue := false
          | _ ->
              ignore (step t);
              decr budget)
  done;
  match until with
  | Some hrz when t.clock < hrz && t.pending = 0 -> t.clock <- hrz
  | _ -> ()

let pending t = t.pending
let events_processed t = t.processed
